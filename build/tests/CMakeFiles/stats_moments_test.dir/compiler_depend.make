# Empty compiler generated dependencies file for stats_moments_test.
# This may be replaced when dependencies are built.
