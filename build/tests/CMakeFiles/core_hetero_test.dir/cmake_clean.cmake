file(REMOVE_RECURSE
  "CMakeFiles/core_hetero_test.dir/core_hetero_test.cpp.o"
  "CMakeFiles/core_hetero_test.dir/core_hetero_test.cpp.o.d"
  "core_hetero_test"
  "core_hetero_test.pdb"
  "core_hetero_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_hetero_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
