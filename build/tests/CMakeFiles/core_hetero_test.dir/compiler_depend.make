# Empty compiler generated dependencies file for core_hetero_test.
# This may be replaced when dependencies are built.
