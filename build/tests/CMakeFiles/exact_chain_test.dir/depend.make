# Empty dependencies file for exact_chain_test.
# This may be replaced when dependencies are built.
