file(REMOVE_RECURSE
  "CMakeFiles/exact_chain_test.dir/exact_chain_test.cpp.o"
  "CMakeFiles/exact_chain_test.dir/exact_chain_test.cpp.o.d"
  "exact_chain_test"
  "exact_chain_test.pdb"
  "exact_chain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
