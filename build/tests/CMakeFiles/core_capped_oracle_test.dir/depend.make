# Empty dependencies file for core_capped_oracle_test.
# This may be replaced when dependencies are built.
