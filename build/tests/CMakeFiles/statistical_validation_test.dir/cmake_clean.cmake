file(REMOVE_RECURSE
  "CMakeFiles/statistical_validation_test.dir/statistical_validation_test.cpp.o"
  "CMakeFiles/statistical_validation_test.dir/statistical_validation_test.cpp.o.d"
  "statistical_validation_test"
  "statistical_validation_test.pdb"
  "statistical_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statistical_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
