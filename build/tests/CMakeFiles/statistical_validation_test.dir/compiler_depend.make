# Empty compiler generated dependencies file for statistical_validation_test.
# This may be replaced when dependencies are built.
