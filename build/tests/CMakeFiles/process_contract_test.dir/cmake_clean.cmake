file(REMOVE_RECURSE
  "CMakeFiles/process_contract_test.dir/process_contract_test.cpp.o"
  "CMakeFiles/process_contract_test.dir/process_contract_test.cpp.o.d"
  "process_contract_test"
  "process_contract_test.pdb"
  "process_contract_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_contract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
