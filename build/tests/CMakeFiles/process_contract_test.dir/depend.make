# Empty dependencies file for process_contract_test.
# This may be replaced when dependencies are built.
