file(REMOVE_RECURSE
  "CMakeFiles/io_csv_reader_test.dir/io_csv_reader_test.cpp.o"
  "CMakeFiles/io_csv_reader_test.dir/io_csv_reader_test.cpp.o.d"
  "io_csv_reader_test"
  "io_csv_reader_test.pdb"
  "io_csv_reader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_csv_reader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
