file(REMOVE_RECURSE
  "CMakeFiles/core_related_work_test.dir/core_related_work_test.cpp.o"
  "CMakeFiles/core_related_work_test.dir/core_related_work_test.cpp.o.d"
  "core_related_work_test"
  "core_related_work_test.pdb"
  "core_related_work_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_related_work_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
