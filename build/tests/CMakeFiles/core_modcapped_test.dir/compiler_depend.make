# Empty compiler generated dependencies file for core_modcapped_test.
# This may be replaced when dependencies are built.
