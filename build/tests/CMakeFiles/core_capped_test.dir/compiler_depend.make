# Empty compiler generated dependencies file for core_capped_test.
# This may be replaced when dependencies are built.
