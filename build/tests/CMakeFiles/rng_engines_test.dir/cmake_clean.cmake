file(REMOVE_RECURSE
  "CMakeFiles/rng_engines_test.dir/rng_engines_test.cpp.o"
  "CMakeFiles/rng_engines_test.dir/rng_engines_test.cpp.o.d"
  "rng_engines_test"
  "rng_engines_test.pdb"
  "rng_engines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rng_engines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
