# Empty compiler generated dependencies file for rng_engines_test.
# This may be replaced when dependencies are built.
