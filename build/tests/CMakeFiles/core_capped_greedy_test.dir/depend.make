# Empty dependencies file for core_capped_greedy_test.
# This may be replaced when dependencies are built.
