# Empty dependencies file for rng_distributions_test.
# This may be replaced when dependencies are built.
