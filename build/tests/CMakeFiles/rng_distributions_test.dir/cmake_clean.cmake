file(REMOVE_RECURSE
  "CMakeFiles/rng_distributions_test.dir/rng_distributions_test.cpp.o"
  "CMakeFiles/rng_distributions_test.dir/rng_distributions_test.cpp.o.d"
  "rng_distributions_test"
  "rng_distributions_test.pdb"
  "rng_distributions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rng_distributions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
