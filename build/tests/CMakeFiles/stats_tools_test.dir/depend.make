# Empty dependencies file for stats_tools_test.
# This may be replaced when dependencies are built.
