file(REMOVE_RECURSE
  "CMakeFiles/stats_tools_test.dir/stats_tools_test.cpp.o"
  "CMakeFiles/stats_tools_test.dir/stats_tools_test.cpp.o.d"
  "stats_tools_test"
  "stats_tools_test.pdb"
  "stats_tools_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_tools_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
