file(REMOVE_RECURSE
  "CMakeFiles/supermarket_test.dir/supermarket_test.cpp.o"
  "CMakeFiles/supermarket_test.dir/supermarket_test.cpp.o.d"
  "supermarket_test"
  "supermarket_test.pdb"
  "supermarket_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supermarket_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
