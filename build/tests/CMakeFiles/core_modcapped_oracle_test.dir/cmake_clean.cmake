file(REMOVE_RECURSE
  "CMakeFiles/core_modcapped_oracle_test.dir/core_modcapped_oracle_test.cpp.o"
  "CMakeFiles/core_modcapped_oracle_test.dir/core_modcapped_oracle_test.cpp.o.d"
  "core_modcapped_oracle_test"
  "core_modcapped_oracle_test.pdb"
  "core_modcapped_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_modcapped_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
