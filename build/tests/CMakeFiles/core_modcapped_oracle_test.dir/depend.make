# Empty dependencies file for core_modcapped_oracle_test.
# This may be replaced when dependencies are built.
