# Empty dependencies file for sim_trace_checkpoint_test.
# This may be replaced when dependencies are built.
