# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_server_farm]=] "/root/repo/build/examples/server_farm" "--n" "512" "--days" "1")
set_tests_properties([=[example_server_farm]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_sweet_spot_finder]=] "/root/repo/build/examples/sweet_spot_finder" "--n" "1024" "--lambda" "0.9375" "--cmax" "4" "--rounds" "150")
set_tests_properties([=[example_sweet_spot_finder]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_process_zoo]=] "/root/repo/build/examples/process_zoo" "--n" "512")
set_tests_properties([=[example_process_zoo]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_simulate]=] "/root/repo/build/examples/simulate" "--n" "512" "--lambda" "0.875" "--rounds" "100" "--json" "true")
set_tests_properties([=[example_simulate]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_simulate_capped_greedy]=] "/root/repo/build/examples/simulate" "--process" "capped-greedy" "--n" "512" "--lambda" "0.875" "--rounds" "100" "--d" "2")
set_tests_properties([=[example_simulate_capped_greedy]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_simulate_bad_flag_fails]=] "/root/repo/build/examples/simulate" "--process" "bogus")
set_tests_properties([=[example_simulate_bad_flag_fails]=] PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
