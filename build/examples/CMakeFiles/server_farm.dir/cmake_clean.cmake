file(REMOVE_RECURSE
  "CMakeFiles/server_farm.dir/server_farm.cpp.o"
  "CMakeFiles/server_farm.dir/server_farm.cpp.o.d"
  "server_farm"
  "server_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
