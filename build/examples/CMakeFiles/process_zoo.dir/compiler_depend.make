# Empty compiler generated dependencies file for process_zoo.
# This may be replaced when dependencies are built.
