file(REMOVE_RECURSE
  "CMakeFiles/process_zoo.dir/process_zoo.cpp.o"
  "CMakeFiles/process_zoo.dir/process_zoo.cpp.o.d"
  "process_zoo"
  "process_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
