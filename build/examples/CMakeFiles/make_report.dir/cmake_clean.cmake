file(REMOVE_RECURSE
  "CMakeFiles/make_report.dir/make_report.cpp.o"
  "CMakeFiles/make_report.dir/make_report.cpp.o.d"
  "make_report"
  "make_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/make_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
