# Empty compiler generated dependencies file for sweet_spot_finder.
# This may be replaced when dependencies are built.
