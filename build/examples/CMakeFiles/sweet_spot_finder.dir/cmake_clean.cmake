file(REMOVE_RECURSE
  "CMakeFiles/sweet_spot_finder.dir/sweet_spot_finder.cpp.o"
  "CMakeFiles/sweet_spot_finder.dir/sweet_spot_finder.cpp.o.d"
  "sweet_spot_finder"
  "sweet_spot_finder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweet_spot_finder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
