# Empty dependencies file for bench_wait_distribution.
# This may be replaced when dependencies are built.
