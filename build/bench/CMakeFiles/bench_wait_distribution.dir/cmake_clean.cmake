file(REMOVE_RECURSE
  "CMakeFiles/bench_wait_distribution.dir/bench_wait_distribution.cpp.o"
  "CMakeFiles/bench_wait_distribution.dir/bench_wait_distribution.cpp.o.d"
  "bench_wait_distribution"
  "bench_wait_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wait_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
