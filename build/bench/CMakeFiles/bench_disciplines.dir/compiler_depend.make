# Empty compiler generated dependencies file for bench_disciplines.
# This may be replaced when dependencies are built.
