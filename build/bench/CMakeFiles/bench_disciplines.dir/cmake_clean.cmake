file(REMOVE_RECURSE
  "CMakeFiles/bench_disciplines.dir/bench_disciplines.cpp.o"
  "CMakeFiles/bench_disciplines.dir/bench_disciplines.cpp.o.d"
  "bench_disciplines"
  "bench_disciplines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_disciplines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
