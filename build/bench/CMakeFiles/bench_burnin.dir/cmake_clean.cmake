file(REMOVE_RECURSE
  "CMakeFiles/bench_burnin.dir/bench_burnin.cpp.o"
  "CMakeFiles/bench_burnin.dir/bench_burnin.cpp.o.d"
  "bench_burnin"
  "bench_burnin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_burnin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
