# Empty compiler generated dependencies file for bench_burnin.
# This may be replaced when dependencies are built.
