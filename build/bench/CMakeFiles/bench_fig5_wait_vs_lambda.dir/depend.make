# Empty dependencies file for bench_fig5_wait_vs_lambda.
# This may be replaced when dependencies are built.
