file(REMOVE_RECURSE
  "CMakeFiles/bench_exact_chain.dir/bench_exact_chain.cpp.o"
  "CMakeFiles/bench_exact_chain.dir/bench_exact_chain.cpp.o.d"
  "bench_exact_chain"
  "bench_exact_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exact_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
