file(REMOVE_RECURSE
  "CMakeFiles/bench_compare_greedy.dir/bench_compare_greedy.cpp.o"
  "CMakeFiles/bench_compare_greedy.dir/bench_compare_greedy.cpp.o.d"
  "bench_compare_greedy"
  "bench_compare_greedy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compare_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
