# Empty dependencies file for bench_compare_greedy.
# This may be replaced when dependencies are built.
