# Empty dependencies file for bench_dchoice.
# This may be replaced when dependencies are built.
