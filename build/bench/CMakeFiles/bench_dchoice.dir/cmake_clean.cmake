file(REMOVE_RECURSE
  "CMakeFiles/bench_dchoice.dir/bench_dchoice.cpp.o"
  "CMakeFiles/bench_dchoice.dir/bench_dchoice.cpp.o.d"
  "bench_dchoice"
  "bench_dchoice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dchoice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
