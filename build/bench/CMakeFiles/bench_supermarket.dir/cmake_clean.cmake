file(REMOVE_RECURSE
  "CMakeFiles/bench_supermarket.dir/bench_supermarket.cpp.o"
  "CMakeFiles/bench_supermarket.dir/bench_supermarket.cpp.o.d"
  "bench_supermarket"
  "bench_supermarket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_supermarket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
