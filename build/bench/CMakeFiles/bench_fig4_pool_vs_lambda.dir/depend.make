# Empty dependencies file for bench_fig4_pool_vs_lambda.
# This may be replaced when dependencies are built.
