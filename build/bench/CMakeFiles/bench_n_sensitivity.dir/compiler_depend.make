# Empty compiler generated dependencies file for bench_n_sensitivity.
# This may be replaced when dependencies are built.
