file(REMOVE_RECURSE
  "CMakeFiles/bench_n_sensitivity.dir/bench_n_sensitivity.cpp.o"
  "CMakeFiles/bench_n_sensitivity.dir/bench_n_sensitivity.cpp.o.d"
  "bench_n_sensitivity"
  "bench_n_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_n_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
