# Empty dependencies file for bench_sweet_spot.
# This may be replaced when dependencies are built.
