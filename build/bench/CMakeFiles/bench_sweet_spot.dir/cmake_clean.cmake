file(REMOVE_RECURSE
  "CMakeFiles/bench_sweet_spot.dir/bench_sweet_spot.cpp.o"
  "CMakeFiles/bench_sweet_spot.dir/bench_sweet_spot.cpp.o.d"
  "bench_sweet_spot"
  "bench_sweet_spot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweet_spot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
