file(REMOVE_RECURSE
  "CMakeFiles/bench_arrival_models.dir/bench_arrival_models.cpp.o"
  "CMakeFiles/bench_arrival_models.dir/bench_arrival_models.cpp.o.d"
  "bench_arrival_models"
  "bench_arrival_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_arrival_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
