# Empty dependencies file for bench_arrival_models.
# This may be replaced when dependencies are built.
