# Empty dependencies file for bench_modcapped.
# This may be replaced when dependencies are built.
