file(REMOVE_RECURSE
  "CMakeFiles/bench_modcapped.dir/bench_modcapped.cpp.o"
  "CMakeFiles/bench_modcapped.dir/bench_modcapped.cpp.o.d"
  "bench_modcapped"
  "bench_modcapped.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_modcapped.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
