
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_failures.cpp" "bench/CMakeFiles/bench_failures.dir/bench_failures.cpp.o" "gcc" "bench/CMakeFiles/bench_failures.dir/bench_failures.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/iba_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/iba_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/iba_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/iba_io.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/iba_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/iba_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/iba_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/concurrency/CMakeFiles/iba_concurrency.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
