# Empty dependencies file for bench_fig4_pool_vs_c.
# This may be replaced when dependencies are built.
