file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_pool_vs_c.dir/bench_fig4_pool_vs_c.cpp.o"
  "CMakeFiles/bench_fig4_pool_vs_c.dir/bench_fig4_pool_vs_c.cpp.o.d"
  "bench_fig4_pool_vs_c"
  "bench_fig4_pool_vs_c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_pool_vs_c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
