file(REMOVE_RECURSE
  "CMakeFiles/iba_rng.dir/alias.cpp.o"
  "CMakeFiles/iba_rng.dir/alias.cpp.o.d"
  "CMakeFiles/iba_rng.dir/distributions.cpp.o"
  "CMakeFiles/iba_rng.dir/distributions.cpp.o.d"
  "CMakeFiles/iba_rng.dir/seed.cpp.o"
  "CMakeFiles/iba_rng.dir/seed.cpp.o.d"
  "libiba_rng.a"
  "libiba_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iba_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
