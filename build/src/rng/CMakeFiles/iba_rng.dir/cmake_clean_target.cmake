file(REMOVE_RECURSE
  "libiba_rng.a"
)
