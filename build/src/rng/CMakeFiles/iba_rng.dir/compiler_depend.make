# Empty compiler generated dependencies file for iba_rng.
# This may be replaced when dependencies are built.
