file(REMOVE_RECURSE
  "libiba_core.a"
)
