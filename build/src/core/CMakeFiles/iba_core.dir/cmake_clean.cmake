file(REMOVE_RECURSE
  "CMakeFiles/iba_core.dir/adler_fifo.cpp.o"
  "CMakeFiles/iba_core.dir/adler_fifo.cpp.o.d"
  "CMakeFiles/iba_core.dir/becchetti.cpp.o"
  "CMakeFiles/iba_core.dir/becchetti.cpp.o.d"
  "CMakeFiles/iba_core.dir/capped.cpp.o"
  "CMakeFiles/iba_core.dir/capped.cpp.o.d"
  "CMakeFiles/iba_core.dir/capped_greedy.cpp.o"
  "CMakeFiles/iba_core.dir/capped_greedy.cpp.o.d"
  "CMakeFiles/iba_core.dir/collision.cpp.o"
  "CMakeFiles/iba_core.dir/collision.cpp.o.d"
  "CMakeFiles/iba_core.dir/coupled.cpp.o"
  "CMakeFiles/iba_core.dir/coupled.cpp.o.d"
  "CMakeFiles/iba_core.dir/greedy.cpp.o"
  "CMakeFiles/iba_core.dir/greedy.cpp.o.d"
  "CMakeFiles/iba_core.dir/hetero_capped.cpp.o"
  "CMakeFiles/iba_core.dir/hetero_capped.cpp.o.d"
  "CMakeFiles/iba_core.dir/modcapped.cpp.o"
  "CMakeFiles/iba_core.dir/modcapped.cpp.o.d"
  "CMakeFiles/iba_core.dir/oracle.cpp.o"
  "CMakeFiles/iba_core.dir/oracle.cpp.o.d"
  "CMakeFiles/iba_core.dir/reallocation.cpp.o"
  "CMakeFiles/iba_core.dir/reallocation.cpp.o.d"
  "CMakeFiles/iba_core.dir/static_allocation.cpp.o"
  "CMakeFiles/iba_core.dir/static_allocation.cpp.o.d"
  "CMakeFiles/iba_core.dir/supermarket.cpp.o"
  "CMakeFiles/iba_core.dir/supermarket.cpp.o.d"
  "CMakeFiles/iba_core.dir/threshold.cpp.o"
  "CMakeFiles/iba_core.dir/threshold.cpp.o.d"
  "libiba_core.a"
  "libiba_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iba_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
