# Empty compiler generated dependencies file for iba_core.
# This may be replaced when dependencies are built.
