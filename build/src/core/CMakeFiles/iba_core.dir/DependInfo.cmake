
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adler_fifo.cpp" "src/core/CMakeFiles/iba_core.dir/adler_fifo.cpp.o" "gcc" "src/core/CMakeFiles/iba_core.dir/adler_fifo.cpp.o.d"
  "/root/repo/src/core/becchetti.cpp" "src/core/CMakeFiles/iba_core.dir/becchetti.cpp.o" "gcc" "src/core/CMakeFiles/iba_core.dir/becchetti.cpp.o.d"
  "/root/repo/src/core/capped.cpp" "src/core/CMakeFiles/iba_core.dir/capped.cpp.o" "gcc" "src/core/CMakeFiles/iba_core.dir/capped.cpp.o.d"
  "/root/repo/src/core/capped_greedy.cpp" "src/core/CMakeFiles/iba_core.dir/capped_greedy.cpp.o" "gcc" "src/core/CMakeFiles/iba_core.dir/capped_greedy.cpp.o.d"
  "/root/repo/src/core/collision.cpp" "src/core/CMakeFiles/iba_core.dir/collision.cpp.o" "gcc" "src/core/CMakeFiles/iba_core.dir/collision.cpp.o.d"
  "/root/repo/src/core/coupled.cpp" "src/core/CMakeFiles/iba_core.dir/coupled.cpp.o" "gcc" "src/core/CMakeFiles/iba_core.dir/coupled.cpp.o.d"
  "/root/repo/src/core/greedy.cpp" "src/core/CMakeFiles/iba_core.dir/greedy.cpp.o" "gcc" "src/core/CMakeFiles/iba_core.dir/greedy.cpp.o.d"
  "/root/repo/src/core/hetero_capped.cpp" "src/core/CMakeFiles/iba_core.dir/hetero_capped.cpp.o" "gcc" "src/core/CMakeFiles/iba_core.dir/hetero_capped.cpp.o.d"
  "/root/repo/src/core/modcapped.cpp" "src/core/CMakeFiles/iba_core.dir/modcapped.cpp.o" "gcc" "src/core/CMakeFiles/iba_core.dir/modcapped.cpp.o.d"
  "/root/repo/src/core/oracle.cpp" "src/core/CMakeFiles/iba_core.dir/oracle.cpp.o" "gcc" "src/core/CMakeFiles/iba_core.dir/oracle.cpp.o.d"
  "/root/repo/src/core/reallocation.cpp" "src/core/CMakeFiles/iba_core.dir/reallocation.cpp.o" "gcc" "src/core/CMakeFiles/iba_core.dir/reallocation.cpp.o.d"
  "/root/repo/src/core/static_allocation.cpp" "src/core/CMakeFiles/iba_core.dir/static_allocation.cpp.o" "gcc" "src/core/CMakeFiles/iba_core.dir/static_allocation.cpp.o.d"
  "/root/repo/src/core/supermarket.cpp" "src/core/CMakeFiles/iba_core.dir/supermarket.cpp.o" "gcc" "src/core/CMakeFiles/iba_core.dir/supermarket.cpp.o.d"
  "/root/repo/src/core/threshold.cpp" "src/core/CMakeFiles/iba_core.dir/threshold.cpp.o" "gcc" "src/core/CMakeFiles/iba_core.dir/threshold.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rng/CMakeFiles/iba_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/iba_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/iba_queueing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
