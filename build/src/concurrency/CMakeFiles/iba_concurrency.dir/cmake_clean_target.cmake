file(REMOVE_RECURSE
  "libiba_concurrency.a"
)
