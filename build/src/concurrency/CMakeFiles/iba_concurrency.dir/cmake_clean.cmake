file(REMOVE_RECURSE
  "CMakeFiles/iba_concurrency.dir/thread_pool.cpp.o"
  "CMakeFiles/iba_concurrency.dir/thread_pool.cpp.o.d"
  "libiba_concurrency.a"
  "libiba_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iba_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
