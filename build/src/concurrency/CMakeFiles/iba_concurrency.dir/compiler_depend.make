# Empty compiler generated dependencies file for iba_concurrency.
# This may be replaced when dependencies are built.
