file(REMOVE_RECURSE
  "libiba_io.a"
)
