file(REMOVE_RECURSE
  "CMakeFiles/iba_io.dir/cli.cpp.o"
  "CMakeFiles/iba_io.dir/cli.cpp.o.d"
  "CMakeFiles/iba_io.dir/csv.cpp.o"
  "CMakeFiles/iba_io.dir/csv.cpp.o.d"
  "CMakeFiles/iba_io.dir/csv_reader.cpp.o"
  "CMakeFiles/iba_io.dir/csv_reader.cpp.o.d"
  "CMakeFiles/iba_io.dir/json.cpp.o"
  "CMakeFiles/iba_io.dir/json.cpp.o.d"
  "CMakeFiles/iba_io.dir/plot.cpp.o"
  "CMakeFiles/iba_io.dir/plot.cpp.o.d"
  "CMakeFiles/iba_io.dir/table.cpp.o"
  "CMakeFiles/iba_io.dir/table.cpp.o.d"
  "libiba_io.a"
  "libiba_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iba_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
