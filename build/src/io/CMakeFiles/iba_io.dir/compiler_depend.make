# Empty compiler generated dependencies file for iba_io.
# This may be replaced when dependencies are built.
