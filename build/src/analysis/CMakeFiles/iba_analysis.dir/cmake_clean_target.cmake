file(REMOVE_RECURSE
  "libiba_analysis.a"
)
