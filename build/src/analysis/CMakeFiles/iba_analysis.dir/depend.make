# Empty dependencies file for iba_analysis.
# This may be replaced when dependencies are built.
