
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/bounds.cpp" "src/analysis/CMakeFiles/iba_analysis.dir/bounds.cpp.o" "gcc" "src/analysis/CMakeFiles/iba_analysis.dir/bounds.cpp.o.d"
  "/root/repo/src/analysis/exact_chain.cpp" "src/analysis/CMakeFiles/iba_analysis.dir/exact_chain.cpp.o" "gcc" "src/analysis/CMakeFiles/iba_analysis.dir/exact_chain.cpp.o.d"
  "/root/repo/src/analysis/tail_bounds.cpp" "src/analysis/CMakeFiles/iba_analysis.dir/tail_bounds.cpp.o" "gcc" "src/analysis/CMakeFiles/iba_analysis.dir/tail_bounds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
