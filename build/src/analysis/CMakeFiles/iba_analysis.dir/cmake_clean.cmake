file(REMOVE_RECURSE
  "CMakeFiles/iba_analysis.dir/bounds.cpp.o"
  "CMakeFiles/iba_analysis.dir/bounds.cpp.o.d"
  "CMakeFiles/iba_analysis.dir/exact_chain.cpp.o"
  "CMakeFiles/iba_analysis.dir/exact_chain.cpp.o.d"
  "CMakeFiles/iba_analysis.dir/tail_bounds.cpp.o"
  "CMakeFiles/iba_analysis.dir/tail_bounds.cpp.o.d"
  "libiba_analysis.a"
  "libiba_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iba_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
