file(REMOVE_RECURSE
  "libiba_sim.a"
)
