# Empty dependencies file for iba_sim.
# This may be replaced when dependencies are built.
