file(REMOVE_RECURSE
  "CMakeFiles/iba_sim.dir/checkpoint.cpp.o"
  "CMakeFiles/iba_sim.dir/checkpoint.cpp.o.d"
  "CMakeFiles/iba_sim.dir/config.cpp.o"
  "CMakeFiles/iba_sim.dir/config.cpp.o.d"
  "CMakeFiles/iba_sim.dir/runner.cpp.o"
  "CMakeFiles/iba_sim.dir/runner.cpp.o.d"
  "CMakeFiles/iba_sim.dir/sweep.cpp.o"
  "CMakeFiles/iba_sim.dir/sweep.cpp.o.d"
  "libiba_sim.a"
  "libiba_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iba_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
