file(REMOVE_RECURSE
  "libiba_queueing.a"
)
