# Empty compiler generated dependencies file for iba_queueing.
# This may be replaced when dependencies are built.
