file(REMOVE_RECURSE
  "CMakeFiles/iba_queueing.dir/bin_table.cpp.o"
  "CMakeFiles/iba_queueing.dir/bin_table.cpp.o.d"
  "CMakeFiles/iba_queueing.dir/unbounded_bin_table.cpp.o"
  "CMakeFiles/iba_queueing.dir/unbounded_bin_table.cpp.o.d"
  "libiba_queueing.a"
  "libiba_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iba_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
