file(REMOVE_RECURSE
  "CMakeFiles/iba_stats.dir/autocorrelation.cpp.o"
  "CMakeFiles/iba_stats.dir/autocorrelation.cpp.o.d"
  "CMakeFiles/iba_stats.dir/ecdf.cpp.o"
  "CMakeFiles/iba_stats.dir/ecdf.cpp.o.d"
  "CMakeFiles/iba_stats.dir/linear_fit.cpp.o"
  "CMakeFiles/iba_stats.dir/linear_fit.cpp.o.d"
  "CMakeFiles/iba_stats.dir/summary.cpp.o"
  "CMakeFiles/iba_stats.dir/summary.cpp.o.d"
  "libiba_stats.a"
  "libiba_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iba_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
