# Empty compiler generated dependencies file for iba_stats.
# This may be replaced when dependencies are built.
