file(REMOVE_RECURSE
  "libiba_stats.a"
)
