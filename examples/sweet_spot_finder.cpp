// Sweet-spot finder: the library as a capacity-planning tool.
//
// Given a server count and an arrival rate, sweeps the buffer size c,
// measures average/maximum waiting time for each, and reports the
// empirical optimum next to the paper's Θ(√ln(1/(1−λ))) prediction and
// the Theorem 2 guarantee at the chosen c.
//
//   $ ./sweet_spot_finder --n 8192 --lambda 0.99 [--cmax 10]
#include <cstdio>
#include <vector>

#include "analysis/bounds.hpp"
#include "io/cli.hpp"
#include "io/table.hpp"
#include "sim/config.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  using namespace iba;
  io::ArgParser parser("sweet_spot_finder",
                       "find the waiting-time-optimal buffer size");
  parser.add_flag("n", "number of servers", "8192");
  parser.add_flag("lambda", "arrival rate in (0,1); lambda*n integral",
                  "0.96875");
  parser.add_flag("cmax", "largest buffer size to try", "10");
  parser.add_flag("rounds", "measured rounds per candidate", "800");
  parser.add_flag("seed", "random seed", "3");
  if (!parser.parse_or_exit(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(parser.get_uint("n"));
  const double lambda = parser.get_double("lambda");
  const auto c_max = static_cast<std::uint32_t>(parser.get_uint("cmax"));

  io::Table table({"c", "wait_avg", "wait_max", "pool/n", "thm2_wait_bound"});
  table.set_title("Buffer-size sweep");

  std::uint32_t best_c = 1;
  double best_wait = 0;
  for (std::uint32_t c = 1; c <= c_max; ++c) {
    // from_rate validates that lambda*n is integral.
    const auto capped = core::CappedConfig::from_rate(n, lambda, c);
    sim::SimConfig config;
    config.n = n;
    config.capacity = c;
    config.lambda_n = capped.lambda_n;
    config.burn_in = sim::suggested_burn_in(lambda);
    config.auto_burn_in = false;
    config.measure_rounds = parser.get_uint("rounds");
    config.seed = parser.get_uint("seed");

    const auto result = sim::run_capped(config);
    if (c == 1 || result.wait_mean < best_wait) {
      best_wait = result.wait_mean;
      best_c = c;
    }
    table.add_row({io::Table::format_number(c),
                   io::Table::format_number(result.wait_mean),
                   io::Table::format_number(
                       static_cast<double>(result.wait_max)),
                   io::Table::format_number(result.normalized_pool.mean()),
                   io::Table::format_number(
                       analysis::wait_bound_thm2(n, lambda, c))});
  }
  table.print();

  std::printf("\nempirical optimum : c = %u (avg wait %.2f rounds)\n",
              best_c, best_wait);
  std::printf("theory prediction : c ~ sqrt(ln(1/(1-lambda))) = %.2f "
              "-> c = %u\n",
              analysis::sweet_spot_prediction(lambda),
              analysis::suggest_capacity(lambda));
  return 0;
}
