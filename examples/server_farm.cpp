// Server farm: the paper's motivating scenario as an application.
//
// A farm of n servers with bounded accept queues (buffer size c) serves
// a diurnal request load: λ(t) follows a day/night pattern peaking at
// 97% utilization. Clients whose requests are rejected retry next round
// (the pool). The example compares buffer sizes c ∈ {1, 2, 4, 8} on the
// same workload and reports latency statistics per configuration —
// showing that a small buffer (the paper's sweet spot) beats both the
// bufferless and the large-buffer farm on tail latency.
//
// Live observability, the way a production deployment would run it:
//
//   --listen <port>     embedded scrape endpoint (0 = ephemeral port):
//                       GET /metrics (Prometheus), /healthz, /spans
//                       (JSON-lines of recently completed ball spans),
//                       /timeseries (multi-tier per-round series of the
//                       running configuration), /profile (per-phase
//                       ns/ball from the phase timers)
//   --telemetry-out F   append one JSON-lines registry snapshot per
//                       simulated quarter-day to F
//   --trace-sample R    trace a deterministic R-fraction of requests
//                       through their lifecycle (feeds /spans)
//   --throttle-us U     sleep U µs per round, to scrape a long-lived farm
//
// Every round is pushed onto a bounded SPSC ring; a tailer thread drains
// it into a shared registry that both the snapshot file and the scrape
// endpoint read — the serving loop never blocks on an observer.
//
//   $ ./server_farm --n 4096 --days 3 --listen 9464 --trace-sample 0.02
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "analysis/bounds.hpp"
#include "core/capped.hpp"
#include "io/cli.hpp"
#include "io/table.hpp"
#include "rng/seed.hpp"
#include "stats/welford.hpp"
#include "telemetry/ball_trace.hpp"
#include "telemetry/export.hpp"
#include "telemetry/log.hpp"
#include "telemetry/phase_timers.hpp"
#include "telemetry/round_trace.hpp"
#include "telemetry/scrape_server.hpp"
#include "telemetry/shared_registry.hpp"
#include "telemetry/timeseries.hpp"

namespace {

// One simulated "day" of diurnal load: λ swings between 55% and 97%.
constexpr std::uint64_t kRoundsPerDay = 4000;

std::uint64_t diurnal_lambda_n(std::uint32_t n, std::uint64_t round) {
  const double phase = 2.0 * 3.14159265358979 *
                       static_cast<double>(round % kRoundsPerDay) /
                       static_cast<double>(kRoundsPerDay);
  const double lambda = 0.76 + 0.21 * std::sin(phase);  // 0.55 … 0.97
  return static_cast<std::uint64_t>(lambda * static_cast<double>(n));
}

struct FarmReport {
  std::uint32_t capacity;
  double wait_avg;
  double wait_p99;
  std::uint64_t wait_max;
  double peak_backlog;
  double utilization;
  // Populated only by an adaptive run (--adaptive).
  std::uint32_t final_capacity = 0;
  std::uint64_t capacity_changes = 0;
  std::uint64_t grows = 0;
  std::uint64_t shrinks = 0;
  double lambda_hat = 0.0;
};

/// Tails a RoundTrace from its own thread: folds every event into the
/// shared registry (which /metrics serves) and — when a sink is given —
/// appends one JSON-lines snapshot per `snapshot_rounds` consumed
/// events. The serving loop never blocks on it — when the tailer falls
/// behind, events are dropped and counted.
class LiveExporter {
 public:
  LiveExporter(iba::telemetry::RoundTrace& trace,
               iba::telemetry::SharedRegistry& registry, std::ostream* out,
               std::uint32_t capacity, std::uint64_t snapshot_rounds)
      : trace_(trace), registry_(registry), out_(out), capacity_(capacity),
        snapshot_rounds_(snapshot_rounds),
        thread_([this] { run(); }) {}

  ~LiveExporter() {
    done_.store(true, std::memory_order_release);
    thread_.join();
  }

 private:
  void drain() {
    iba::telemetry::RoundEvent event;
    while (trace_.try_pop(event)) {
      const auto& m = event.metrics;
      registry_.with([&](iba::telemetry::Registry& r) {
        r.gauge("capacity").set(capacity_);
        r.counter("rounds_total").inc();
        r.counter("balls_generated_total").inc(m.generated);
        r.counter("balls_deleted_total").inc(m.deleted);
        r.gauge("pool_size").set(static_cast<double>(m.pool_size));
        r.gauge("max_load").set(static_cast<double>(m.max_load));
        r.histogram("pool_size_rounds").observe(m.pool_size);
        r.counter("step_ns_total").inc(event.step_ns);
      });
      if (++consumed_ % snapshot_rounds_ == 0) snapshot();
    }
  }

  void snapshot() {
    registry_.with([&](iba::telemetry::Registry& r) {
      r.counter("trace_dropped_total")
          .inc(trace_.dropped() - last_dropped_);
      last_dropped_ = trace_.dropped();
      if (out_ != nullptr) iba::telemetry::write_json_line(r, *out_);
    });
  }

  void run() {
    while (!done_.load(std::memory_order_acquire)) {
      drain();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    drain();     // whatever arrived before the producer finished
    snapshot();  // final state
  }

  iba::telemetry::RoundTrace& trace_;
  iba::telemetry::SharedRegistry& registry_;
  std::ostream* out_;
  std::uint32_t capacity_;
  std::uint64_t snapshot_rounds_;
  std::uint64_t consumed_ = 0;
  std::uint64_t last_dropped_ = 0;
  std::atomic<bool> done_{false};
  std::thread thread_;
};

struct FarmOptions {
  std::uint32_t n = 4096;
  std::uint64_t days = 3;
  std::uint64_t seed = 7;
  double trace_sample = 0.0;
  std::uint64_t throttle_us = 0;
};

/// Live observation state shared with the scrape server's /timeseries
/// and /profile endpoints. The serving loop writes under the mutex (one
/// uncontended lock per round); the server thread renders under it.
struct LiveObservation {
  std::mutex mutex;
  iba::telemetry::TimeSeries series;
  iba::telemetry::PhaseTimers timers;
};

FarmReport run_farm(const FarmOptions& options, std::uint32_t capacity,
                    iba::telemetry::SharedRegistry& registry,
                    std::ostream* snapshot_out, bool live,
                    iba::telemetry::SpanRing* span_ring,
                    LiveObservation* observation = nullptr,
                    iba::control::ControlConfig control = {}) {
  using namespace iba;
  const std::uint32_t n = options.n;
  core::CappedConfig config;
  config.n = n;
  config.capacity = capacity;
  config.lambda_n = diurnal_lambda_n(n, 0);
  config.control = control;
  core::Capped farm(config, core::Engine(options.seed));

  // /timeseries and /profile describe the configuration currently
  // running; each run starts both afresh.
  if (observation != nullptr) {
    const std::lock_guard<std::mutex> lock(observation->mutex);
    observation->series.reset();
    observation->timers.reset();
    farm.set_time_series(&observation->series);
    farm.set_phase_timers(&observation->timers);
  }
  const auto step_observed = [&]() -> core::RoundMetrics {
    if (observation != nullptr) {
      const std::lock_guard<std::mutex> lock(observation->mutex);
      return farm.step();
    }
    return farm.step();
  };

  // Lifecycle tracing: a deterministic sample of requests feeds /spans.
  std::optional<telemetry::BallTracer> tracer;
  if (options.trace_sample > 0.0) {
    telemetry::BallTraceConfig trace_config;
    trace_config.seed = rng::derive_seed(options.seed, capacity);
    trace_config.sample_rate = options.trace_sample;
    tracer.emplace(trace_config);
    tracer->set_live_ring(span_ring);
    farm.set_ball_tracer(&*tracer);
  }

  // Warm up one day before measuring.
  for (std::uint64_t t = 0; t < kRoundsPerDay; ++t) {
    farm.set_lambda_n(diurnal_lambda_n(n, t));
    (void)step_observed();
  }
  farm.reset_wait_stats();
  if (tracer.has_value()) tracer->clear_completed();

  // Live telemetry: bounded ring between the serving loop (producer)
  // and the exporter thread (consumer), one snapshot per quarter-day.
  telemetry::RoundTrace trace(1024);
  std::optional<LiveExporter> exporter;
  if (live) {
    exporter.emplace(trace, registry, snapshot_out, capacity,
                     kRoundsPerDay / 4);
  }

  double peak_backlog = 0;
  std::uint64_t served = 0;
  const std::uint64_t horizon = options.days * kRoundsPerDay;
  for (std::uint64_t t = 0; t < horizon; ++t) {
    farm.set_lambda_n(diurnal_lambda_n(n, kRoundsPerDay + t));
    core::RoundMetrics m;
    if (live) {
      // Only clocked when someone is listening.
      const auto start = std::chrono::steady_clock::now();
      m = step_observed();
      const auto ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
      (void)trace.try_push({m, ns});
    } else {
      m = step_observed();
    }
    peak_backlog = std::max(
        peak_backlog, static_cast<double>(m.pool_size) / n);
    served += m.deleted;
    if (options.throttle_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options.throttle_us));
    }
  }
  exporter.reset();  // drain and write the final snapshot

  FarmReport report{
      capacity,
      farm.waits().mean(),
      static_cast<double>(farm.waits().quantile_upper_bound(0.99)),
      farm.waits().max(),
      peak_backlog,
      static_cast<double>(served) / (static_cast<double>(horizon) * n)};
  if (const auto* controller = farm.controller(); controller != nullptr) {
    report.final_capacity = farm.capacity();
    report.capacity_changes = controller->changes_total();
    report.grows = controller->grows_total();
    report.shrinks = controller->shrinks_total();
    report.lambda_hat = controller->estimator().lambda_ewma();
  }
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iba;
  io::ArgParser parser("server_farm",
                       "diurnal-load server farm with bounded accept queues");
  parser.add_flag("n", "number of servers", "4096");
  parser.add_flag("days", "measured days (4000 rounds each)", "3");
  parser.add_flag("seed", "random seed", "7");
  parser.add_flag("telemetry-out",
                  "append live JSON-lines metric snapshots to this file "
                  "(one per simulated quarter-day)",
                  "");
  parser.add_flag("listen",
                  "serve GET /metrics, /healthz and /spans on this port "
                  "while the farm runs (0 = ephemeral)",
                  "");
  parser.add_flag("trace-sample",
                  "fraction of requests traced through their lifecycle "
                  "(feeds /spans)",
                  "0");
  parser.add_flag("throttle-us",
                  "sleep this many microseconds per round (gives scrapers "
                  "time on small farms)",
                  "0");
  parser.add_flag("adaptive",
                  "also run a farm that retunes its buffer size live "
                  "(none|static|sweet-spot|aimd)",
                  "none");
  if (!parser.parse_or_exit(argc, argv)) return 0;
  control::Policy adaptive_policy = control::Policy::kNone;
  if (!control::policy_from_string(parser.get("adaptive"), adaptive_policy)) {
    io::fail_usage("server_farm: --adaptive must be one of "
                   "none|static|sweet-spot|aimd (got '" +
                   parser.get("adaptive") + "')");
  }
  FarmOptions options;
  options.n = static_cast<std::uint32_t>(parser.get_uint("n"));
  options.days = parser.get_uint("days");
  options.seed = parser.get_uint("seed");
  options.trace_sample = parser.get_double("trace-sample");
  options.throttle_us = parser.get_uint("throttle-us");
  const std::string telemetry_path = parser.get("telemetry-out");
  const bool listening = parser.provided("listen");

  std::ofstream telemetry_file;
  if (!telemetry_path.empty()) {
    telemetry_file.open(telemetry_path);
    if (!telemetry_file) {
      telemetry::log_error("telemetry_open_failed", {{"path", telemetry_path}});
      return 1;
    }
  }

  // One shared registry + span ring behind both observers: the snapshot
  // file and the scrape endpoint see the same live state.
  telemetry::SharedRegistry registry;
  telemetry::SpanRing span_ring(4096);
  std::optional<LiveObservation> observation;
  std::optional<telemetry::ScrapeServer> server;
  if (listening) {
    observation.emplace();
    const auto port = static_cast<std::uint16_t>(parser.get_uint("listen"));
    // /spans drains the ring: each request returns the spans completed
    // since the previous one (the server thread is the single consumer).
    // /timeseries and /profile render the currently running
    // configuration's trajectory and per-phase timing under the shared
    // observation mutex.
    server.emplace(
        port, registry,
        [&span_ring] {
          std::vector<telemetry::BallSpan> spans;
          telemetry::BallSpan span;
          while (span_ring.try_pop(span)) spans.push_back(span);
          return spans;
        },
        [&observation] {
          const std::lock_guard<std::mutex> lock(observation->mutex);
          return observation->series.render_text();
        },
        [&observation] {
          const std::lock_guard<std::mutex> lock(observation->mutex);
          return telemetry::render_profile_text(observation->timers);
        });
    std::printf("scrape endpoint: http://localhost:%u/metrics "
                "(/healthz, /spans, /timeseries, /profile)\n",
                server->port());
  }
  const bool live = telemetry_file.is_open() || listening;

  std::printf("server farm: %u servers, diurnal load 55%%..97%%, "
              "%llu day(s) measured\n\n",
              options.n, static_cast<unsigned long long>(options.days));

  io::Table table({"buffer c", "latency avg", "latency p99<=", "latency max",
                   "peak backlog/server", "utilization"});
  table.set_title("Latency (in rounds) per buffer size");
  for (const std::uint32_t c : {1u, 2u, 4u, 8u}) {
    const auto report = run_farm(
        options, c, registry,
        telemetry_file.is_open() ? &telemetry_file : nullptr, live,
        &span_ring, observation.has_value() ? &*observation : nullptr);
    table.add_row({io::Table::format_number(report.capacity),
                   io::Table::format_number(report.wait_avg),
                   io::Table::format_number(report.wait_p99),
                   io::Table::format_number(
                       static_cast<double>(report.wait_max)),
                   io::Table::format_number(report.peak_backlog),
                   io::Table::format_number(report.utilization)});
  }
  table.print();

  if (adaptive_policy != control::Policy::kNone) {
    // The adaptive farm starts at the worst fixed configuration (c = 1)
    // and must find its own way to the sweet spot while the diurnal load
    // swings underneath it. Window/cooldown are sized to the quarter-day
    // so the controller tracks the cycle instead of chasing noise.
    control::ControlConfig control;
    control.policy = adaptive_policy;
    control.c_max = 16;
    control.window = 256;
    control.cooldown = kRoundsPerDay / 16;
    const auto report = run_farm(
        options, 1, registry,
        telemetry_file.is_open() ? &telemetry_file : nullptr, live,
        &span_ring, observation.has_value() ? &*observation : nullptr,
        control);
    std::printf("\nadaptive farm (--adaptive %s): started at c = 1, "
                "finished at c = %u after %llu change(s) "
                "(%llu up, %llu down), lambda_hat = %.3f\n",
                std::string(control::to_string(adaptive_policy)).c_str(),
                report.final_capacity,
                static_cast<unsigned long long>(report.capacity_changes),
                static_cast<unsigned long long>(report.grows),
                static_cast<unsigned long long>(report.shrinks),
                report.lambda_hat);
    std::printf("  latency avg %.3f, p99<= %.0f, max %llu, "
                "peak backlog/server %.3f, utilization %.3f\n",
                report.wait_avg, report.wait_p99,
                static_cast<unsigned long long>(report.wait_max),
                report.peak_backlog, report.utilization);
  }

  if (server.has_value()) server->stop();

  std::printf("\npaper guidance: at the 97%% peak, the sweet spot is c ~ "
              "sqrt(ln(1/(1-lambda))) = %.1f -> choose c = %u\n",
              analysis::sweet_spot_prediction(0.97),
              analysis::suggest_capacity(0.97));
  return 0;
}
