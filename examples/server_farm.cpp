// Server farm: the paper's motivating scenario as an application.
//
// A farm of n servers with bounded accept queues (buffer size c) serves
// a diurnal request load: λ(t) follows a day/night pattern peaking at
// 97% utilization. Clients whose requests are rejected retry next round
// (the pool). The example compares buffer sizes c ∈ {1, 2, 4, 8} on the
// same workload and reports latency statistics per configuration —
// showing that a small buffer (the paper's sweet spot) beats both the
// bufferless and the large-buffer farm on tail latency.
//
//   $ ./server_farm [--n 4096] [--days 3]
#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/bounds.hpp"
#include "core/capped.hpp"
#include "io/cli.hpp"
#include "io/table.hpp"
#include "stats/welford.hpp"

namespace {

// One simulated "day" of diurnal load: λ swings between 55% and 97%.
constexpr std::uint64_t kRoundsPerDay = 4000;

std::uint64_t diurnal_lambda_n(std::uint32_t n, std::uint64_t round) {
  const double phase = 2.0 * 3.14159265358979 *
                       static_cast<double>(round % kRoundsPerDay) /
                       static_cast<double>(kRoundsPerDay);
  const double lambda = 0.76 + 0.21 * std::sin(phase);  // 0.55 … 0.97
  return static_cast<std::uint64_t>(lambda * static_cast<double>(n));
}

struct FarmReport {
  std::uint32_t capacity;
  double wait_avg;
  double wait_p99;
  std::uint64_t wait_max;
  double peak_backlog;
  double utilization;
};

FarmReport run_farm(std::uint32_t n, std::uint32_t capacity,
                    std::uint64_t days, std::uint64_t seed) {
  using namespace iba;
  core::CappedConfig config;
  config.n = n;
  config.capacity = capacity;
  config.lambda_n = diurnal_lambda_n(n, 0);
  core::Capped farm(config, core::Engine(seed));

  // Warm up one day before measuring.
  for (std::uint64_t t = 0; t < kRoundsPerDay; ++t) {
    farm.set_lambda_n(diurnal_lambda_n(n, t));
    (void)farm.step();
  }
  farm.reset_wait_stats();

  double peak_backlog = 0;
  std::uint64_t served = 0;
  const std::uint64_t horizon = days * kRoundsPerDay;
  for (std::uint64_t t = 0; t < horizon; ++t) {
    farm.set_lambda_n(diurnal_lambda_n(n, kRoundsPerDay + t));
    const auto m = farm.step();
    peak_backlog = std::max(
        peak_backlog, static_cast<double>(m.pool_size) / n);
    served += m.deleted;
  }

  return {capacity,
          farm.waits().mean(),
          static_cast<double>(farm.waits().quantile_upper_bound(0.99)),
          farm.waits().max(),
          peak_backlog,
          static_cast<double>(served) / (static_cast<double>(horizon) * n)};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iba;
  io::ArgParser parser("server_farm",
                       "diurnal-load server farm with bounded accept queues");
  parser.add_flag("n", "number of servers", "4096");
  parser.add_flag("days", "measured days (4000 rounds each)", "3");
  parser.add_flag("seed", "random seed", "7");
  if (!parser.parse(argc, argv)) return 0;
  const auto n = static_cast<std::uint32_t>(parser.get_uint("n"));
  const auto days = parser.get_uint("days");
  const auto seed = parser.get_uint("seed");

  std::printf("server farm: %u servers, diurnal load 55%%..97%%, "
              "%llu day(s) measured\n\n",
              n, static_cast<unsigned long long>(days));

  io::Table table({"buffer c", "latency avg", "latency p99<=", "latency max",
                   "peak backlog/server", "utilization"});
  table.set_title("Latency (in rounds) per buffer size");
  for (const std::uint32_t c : {1u, 2u, 4u, 8u}) {
    const auto report = run_farm(n, c, days, seed);
    table.add_row({io::Table::format_number(report.capacity),
                   io::Table::format_number(report.wait_avg),
                   io::Table::format_number(report.wait_p99),
                   io::Table::format_number(
                       static_cast<double>(report.wait_max)),
                   io::Table::format_number(report.peak_backlog),
                   io::Table::format_number(report.utilization)});
  }
  table.print();

  std::printf("\npaper guidance: at the 97%% peak, the sweet spot is c ~ "
              "sqrt(ln(1/(1-lambda))) = %.1f -> choose c = %u\n",
              analysis::sweet_spot_prediction(0.97),
              analysis::suggest_capacity(0.97));
  return 0;
}
