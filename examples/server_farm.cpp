// Server farm: the paper's motivating scenario as an application.
//
// A farm of n servers with bounded accept queues (buffer size c) serves
// a diurnal request load: λ(t) follows a day/night pattern peaking at
// 97% utilization. Clients whose requests are rejected retry next round
// (the pool). The example compares buffer sizes c ∈ {1, 2, 4, 8} on the
// same workload and reports latency statistics per configuration —
// showing that a small buffer (the paper's sweet spot) beats both the
// bufferless and the large-buffer farm on tail latency.
//
// With --telemetry-out the farm runs with live telemetry: every round is
// pushed onto a bounded SPSC trace ring; a tailer thread drains it into a
// shared metrics registry and appends one JSON-lines snapshot per
// simulated quarter-day — the pattern a production deployment would use
// to watch pool drift and tail latency without touching the serving loop.
//
//   $ ./server_farm [--n 4096] [--days 3] [--telemetry-out farm.jsonl]
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <optional>
#include <thread>
#include <vector>

#include "analysis/bounds.hpp"
#include "core/capped.hpp"
#include "io/cli.hpp"
#include "io/table.hpp"
#include "stats/welford.hpp"
#include "telemetry/export.hpp"
#include "telemetry/round_trace.hpp"
#include "telemetry/shared_registry.hpp"

namespace {

// One simulated "day" of diurnal load: λ swings between 55% and 97%.
constexpr std::uint64_t kRoundsPerDay = 4000;

std::uint64_t diurnal_lambda_n(std::uint32_t n, std::uint64_t round) {
  const double phase = 2.0 * 3.14159265358979 *
                       static_cast<double>(round % kRoundsPerDay) /
                       static_cast<double>(kRoundsPerDay);
  const double lambda = 0.76 + 0.21 * std::sin(phase);  // 0.55 … 0.97
  return static_cast<std::uint64_t>(lambda * static_cast<double>(n));
}

struct FarmReport {
  std::uint32_t capacity;
  double wait_avg;
  double wait_p99;
  std::uint64_t wait_max;
  double peak_backlog;
  double utilization;
};

/// Tails a RoundTrace from its own thread: folds every event into a
/// SharedRegistry and appends one JSON-lines snapshot per
/// `snapshot_rounds` consumed events. The serving loop never blocks on
/// it — when the tailer falls behind, events are dropped and counted.
class LiveExporter {
 public:
  LiveExporter(iba::telemetry::RoundTrace& trace, std::ostream& out,
               std::uint32_t capacity, std::uint64_t snapshot_rounds)
      : trace_(trace), out_(out), capacity_(capacity),
        snapshot_rounds_(snapshot_rounds),
        thread_([this] { run(); }) {}

  ~LiveExporter() {
    done_.store(true, std::memory_order_release);
    thread_.join();
  }

 private:
  void drain() {
    iba::telemetry::RoundEvent event;
    while (trace_.try_pop(event)) {
      const auto& m = event.metrics;
      registry_.with([&](iba::telemetry::Registry& r) {
        r.gauge("capacity").set(capacity_);
        r.counter("rounds_total").inc();
        r.counter("balls_generated_total").inc(m.generated);
        r.counter("balls_deleted_total").inc(m.deleted);
        r.gauge("pool_size").set(static_cast<double>(m.pool_size));
        r.gauge("max_load").set(static_cast<double>(m.max_load));
        r.histogram("pool_size_rounds").observe(m.pool_size);
        r.counter("step_ns_total").inc(event.step_ns);
      });
      if (++consumed_ % snapshot_rounds_ == 0) snapshot();
    }
  }

  void snapshot() {
    registry_.with([&](iba::telemetry::Registry& r) {
      r.counter("trace_dropped_total")
          .inc(trace_.dropped() - last_dropped_);
      last_dropped_ = trace_.dropped();
      iba::telemetry::write_json_line(r, out_);
    });
  }

  void run() {
    while (!done_.load(std::memory_order_acquire)) {
      drain();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    drain();     // whatever arrived before the producer finished
    snapshot();  // final state
  }

  iba::telemetry::RoundTrace& trace_;
  std::ostream& out_;
  std::uint32_t capacity_;
  std::uint64_t snapshot_rounds_;
  iba::telemetry::SharedRegistry registry_;
  std::uint64_t consumed_ = 0;
  std::uint64_t last_dropped_ = 0;
  std::atomic<bool> done_{false};
  std::thread thread_;
};

FarmReport run_farm(std::uint32_t n, std::uint32_t capacity,
                    std::uint64_t days, std::uint64_t seed,
                    std::ostream* telemetry_out) {
  using namespace iba;
  core::CappedConfig config;
  config.n = n;
  config.capacity = capacity;
  config.lambda_n = diurnal_lambda_n(n, 0);
  core::Capped farm(config, core::Engine(seed));

  // Warm up one day before measuring.
  for (std::uint64_t t = 0; t < kRoundsPerDay; ++t) {
    farm.set_lambda_n(diurnal_lambda_n(n, t));
    (void)farm.step();
  }
  farm.reset_wait_stats();

  // Live telemetry: bounded ring between the serving loop (producer)
  // and the exporter thread (consumer), one snapshot per quarter-day.
  telemetry::RoundTrace trace(1024);
  std::optional<LiveExporter> exporter;
  if (telemetry_out != nullptr) {
    exporter.emplace(trace, *telemetry_out, capacity, kRoundsPerDay / 4);
  }

  double peak_backlog = 0;
  std::uint64_t served = 0;
  const std::uint64_t horizon = days * kRoundsPerDay;
  for (std::uint64_t t = 0; t < horizon; ++t) {
    farm.set_lambda_n(diurnal_lambda_n(n, kRoundsPerDay + t));
    core::RoundMetrics m;
    if (telemetry_out != nullptr) {
      // Only clocked when someone is listening.
      const auto start = std::chrono::steady_clock::now();
      m = farm.step();
      const auto ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
      (void)trace.try_push({m, ns});
    } else {
      m = farm.step();
    }
    peak_backlog = std::max(
        peak_backlog, static_cast<double>(m.pool_size) / n);
    served += m.deleted;
  }
  exporter.reset();  // drain and write the final snapshot

  return {capacity,
          farm.waits().mean(),
          static_cast<double>(farm.waits().quantile_upper_bound(0.99)),
          farm.waits().max(),
          peak_backlog,
          static_cast<double>(served) / (static_cast<double>(horizon) * n)};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iba;
  io::ArgParser parser("server_farm",
                       "diurnal-load server farm with bounded accept queues");
  parser.add_flag("n", "number of servers", "4096");
  parser.add_flag("days", "measured days (4000 rounds each)", "3");
  parser.add_flag("seed", "random seed", "7");
  parser.add_flag("telemetry-out",
                  "append live JSON-lines metric snapshots to this file "
                  "(one per simulated quarter-day)",
                  "");
  if (!parser.parse(argc, argv)) return 0;
  const auto n = static_cast<std::uint32_t>(parser.get_uint("n"));
  const auto days = parser.get_uint("days");
  const auto seed = parser.get_uint("seed");
  const std::string telemetry_path = parser.get("telemetry-out");

  std::ofstream telemetry_file;
  if (!telemetry_path.empty()) {
    telemetry_file.open(telemetry_path);
    if (!telemetry_file) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   telemetry_path.c_str());
      return 1;
    }
  }

  std::printf("server farm: %u servers, diurnal load 55%%..97%%, "
              "%llu day(s) measured\n\n",
              n, static_cast<unsigned long long>(days));

  io::Table table({"buffer c", "latency avg", "latency p99<=", "latency max",
                   "peak backlog/server", "utilization"});
  table.set_title("Latency (in rounds) per buffer size");
  for (const std::uint32_t c : {1u, 2u, 4u, 8u}) {
    const auto report = run_farm(
        n, c, days, seed, telemetry_file.is_open() ? &telemetry_file : nullptr);
    table.add_row({io::Table::format_number(report.capacity),
                   io::Table::format_number(report.wait_avg),
                   io::Table::format_number(report.wait_p99),
                   io::Table::format_number(
                       static_cast<double>(report.wait_max)),
                   io::Table::format_number(report.peak_backlog),
                   io::Table::format_number(report.utilization)});
  }
  table.print();

  std::printf("\npaper guidance: at the 97%% peak, the sweet spot is c ~ "
              "sqrt(ln(1/(1-lambda))) = %.1f -> choose c = %u\n",
              analysis::sweet_spot_prediction(0.97),
              analysis::suggest_capacity(0.97));
  return 0;
}
