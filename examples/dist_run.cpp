// dist_run — the multi-process distributed engine (docs/DISTRIBUTED.md).
//
// One coordinator plus W workers, each its own process, round-
// synchronized over TCP. The artifact is byte-identical to the
// single-process run of the same (scenario, seed):
//
//   $ ./dist_run --role coordinator --listen 127.0.0.1:7601 --workers 4
//       --scenario scenarios/steady_baseline.scn --out dist.artifact &
//   $ for i in 0 1 2 3; do
//       ./dist_run --role worker --connect 127.0.0.1:7601 --index $i &
//     done; wait
//   $ ./scenario_run --scenario scenarios/steady_baseline.scn --out solo.artifact
//   $ cmp dist.artifact solo.artifact
//
// Kill-a-worker resume: run the coordinator with --checkpoint-out B
// --checkpoint-every K, kill -9 any process mid-run (the coordinator
// exits 4 when a worker vanishes), then rerun every role with --resume;
// the finished artifact is still byte-identical to the uninterrupted
// single-process run.
//
// Exit codes: 0 success, 1 runtime error, 2 usage error, 3 expectation
// or golden violation, 4 a worker was lost (crash / hang / bad frame).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "artifact/artifact.hpp"
#include "dist/coordinator.hpp"
#include "dist/runner.hpp"
#include "dist/worker.hpp"
#include "io/cli.hpp"
#include "net/socket.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace iba;

int run_coordinator(const io::ArgParser& parser) {
  const std::string scenario_path = parser.get("scenario");
  if (scenario_path.empty()) {
    throw io::UsageError("dist_run: --scenario is required for the coordinator");
  }
  const scenario::Scenario scn = scenario::load_scenario_file(scenario_path);
  const std::uint32_t workers =
      static_cast<std::uint32_t>(parser.get_uint_range("workers", 1, 65535));

  dist::DistRunOptions options;
  if (parser.provided("seed")) options.seed = parser.get_uint("seed");
  options.checkpoint_base = parser.get("checkpoint-out");
  options.checkpoint_every = parser.get_uint("checkpoint-every");
  options.resume = parser.get_bool("resume");
  options.stop_after = parser.get_uint("stop-after");
  options.timeout_ms =
      static_cast<int>(parser.get_uint_range("timeout-ms", 1, 3'600'000));
  options.throttle_us = parser.get_uint("throttle-us");
  if (options.checkpoint_every > 0 && options.checkpoint_base.empty()) {
    throw io::UsageError(
        "dist_run: --checkpoint-every requires --checkpoint-out");
  }
  if (options.stop_after > 0 && options.checkpoint_base.empty()) {
    throw io::UsageError("dist_run: --stop-after requires --checkpoint-out");
  }
  if (options.resume && options.checkpoint_base.empty()) {
    throw io::UsageError("dist_run: --resume requires --checkpoint-out");
  }

  const std::string out_path = parser.get("out");
  const std::string golden_path = parser.get("golden");
  io::guard_overwrite(out_path, parser.get_bool("force"), "--out");

  const io::HostPort endpoint =
      io::parse_host_port(parser.get("listen"), "--listen");
  const net::Socket listener = net::listen_tcp(endpoint.host, endpoint.port);
  std::fprintf(stderr, "[dist] coordinator: %s (digest %s), waiting for %u "
               "worker(s) on port %u\n",
               scn.name.c_str(), scn.digest().c_str(), workers,
               net::local_port(listener));

  // Accept every worker before the run starts; the hello handshake
  // (inside the Coordinator) maps connections to bin-range slots, so
  // the accept order here is irrelevant.
  std::vector<net::Socket> accepted;
  accepted.reserve(workers);
  for (std::uint32_t i = 0; i < workers; ++i) {
    net::Socket client = net::accept_client(listener, options.timeout_ms);
    if (!client.valid()) {
      std::fprintf(stderr,
                   "[dist] FAIL only %u of %u workers connected within "
                   "%d ms\n",
                   i, workers, options.timeout_ms);
      return 4;
    }
    accepted.push_back(std::move(client));
  }
  std::vector<int> fds;
  fds.reserve(workers);
  for (const net::Socket& socket : accepted) fds.push_back(socket.fd());

  scenario::RunOutcome outcome;
  try {
    outcome = dist::run_distributed(scn, fds, options);
  } catch (const dist::WorkerLost& error) {
    std::fprintf(stderr, "[dist] FAIL %s\n", error.what());
    return 4;
  }
  if (!outcome.complete) {
    std::fprintf(stderr,
                 "[dist] stopped after %llu rounds, checkpoint at %s\n",
                 static_cast<unsigned long long>(outcome.rounds_done),
                 options.checkpoint_base.c_str());
    return 0;
  }

  const std::string text = artifact::render_artifact(outcome.artifact);
  if (!out_path.empty()) {
    artifact::write_artifact(outcome.artifact, out_path);
    std::fprintf(stderr, "[dist] wrote %s (%zu bytes)\n", out_path.c_str(),
                 text.size());
  } else if (golden_path.empty()) {
    std::fputs(text.c_str(), stdout);
  }

  for (const std::string& failure : outcome.failures) {
    std::fprintf(stderr, "[dist] FAIL %s\n", failure.c_str());
  }

  if (!golden_path.empty()) {
    const std::string golden = artifact::read_artifact_text(golden_path);
    if (golden != text) {
      std::fprintf(stderr,
                   "[dist] FAIL golden mismatch: %s differs from this run "
                   "(%zu vs %zu bytes)\n",
                   golden_path.c_str(), golden.size(), text.size());
      return 3;
    }
    std::fprintf(stderr, "[dist] golden match: %s\n", golden_path.c_str());
  }

  return outcome.ok() ? 0 : 3;
}

int run_worker(const io::ArgParser& parser) {
  const io::HostPort endpoint =
      io::parse_host_port(parser.get("connect"), "--connect");
  const std::uint32_t index =
      static_cast<std::uint32_t>(parser.get_uint_range("index", 0, 65534));
  const net::Socket socket = net::connect_tcp(endpoint.host, endpoint.port);
  dist::Worker worker(socket.fd(), index);
  const bool clean = worker.run();
  std::fprintf(stderr,
               "[dist] worker %u: %s after %llu round(s), %llu ball(s) held\n",
               index, clean ? "shutdown" : "coordinator hung up",
               static_cast<unsigned long long>(worker.rounds_served()),
               static_cast<unsigned long long>(worker.total_load()));
  // A vanished coordinator is routine during kill-and-resume drills: the
  // restarted coordinator spawns fresh workers, so exit clean either way.
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  io::ArgParser parser("dist_run",
                       "multi-process distributed engine: coordinator + "
                       "bin-range workers over TCP, byte-identical to the "
                       "single-process run");
  parser.add_flag("role", "coordinator | worker (required)", "");
  parser.add_flag("listen", "coordinator: host:port to listen on",
                  "127.0.0.1:7600");
  parser.add_flag("connect", "worker: coordinator host:port", "");
  parser.add_flag("index", "worker: bin-range slot in [0, workers)", "0");
  parser.add_flag("workers", "coordinator: worker count", "2");
  parser.add_flag("scenario", "coordinator: scenario file to run", "");
  parser.add_flag("out", "write the artifact here (default: stdout)", "");
  parser.add_flag("golden",
                  "compare the artifact against this golden file; any byte "
                  "difference exits 3",
                  "");
  parser.add_flag("seed", "override the scenario's seed", "");
  parser.add_flag("checkpoint-out",
                  "distributed checkpoint base path (manifest + coordinator "
                  "+ shard files)",
                  "");
  parser.add_flag("checkpoint-every",
                  "checkpoint cadence in rounds (requires --checkpoint-out; "
                  "0 = scenario's run.checkpoint-every)",
                  "0");
  parser.add_flag("resume",
                  "resume from the --checkpoint-out manifest instead of "
                  "starting fresh",
                  "false");
  parser.add_flag("stop-after",
                  "stop after this many total rounds and checkpoint "
                  "(kill-and-resume testing; requires --checkpoint-out)",
                  "0");
  parser.add_flag("timeout-ms",
                  "per-response worker deadline; a silent worker past this "
                  "is treated as lost (exit 4)",
                  "30000");
  parser.add_flag("throttle-us",
                  "coordinator: sleep this long after each round (widens "
                  "the kill window in drills)",
                  "0");
  parser.add_flag("force", "overwrite existing output files", "false");

  try {
    if (!parser.parse_or_exit(argc, argv)) return 0;
    const std::string role = parser.get("role");
    if (role == "coordinator") return run_coordinator(parser);
    if (role == "worker") return run_worker(parser);
    throw io::UsageError(
        "dist_run: --role expects coordinator or worker, got '" + role + "'");
  } catch (const scenario::ScenarioError& error) {
    io::fail_usage(error.what());
  } catch (const iba::ContractViolation& error) {
    io::fail_usage(error.what());  // covers io::UsageError too
  } catch (const net::NetError& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
