// Process zoo: a guided tour of every allocation process in the library,
// run on one shared workload (n bins, λ = 7/8) and summarized side by
// side — CAPPED at three capacities, the c = ∞ degeneration, the batch
// GREEDY[d] baselines of PODC'16, plus the static/self-stabilizing
// related-work processes with their own natural workloads.
//
//   $ ./process_zoo [--n 4096]
#include <cmath>
#include <cstdio>
#include <string>

#include "core/adler_fifo.hpp"
#include "core/becchetti.hpp"
#include "core/capped.hpp"
#include "core/collision.hpp"
#include "core/greedy.hpp"
#include "core/reallocation.hpp"
#include "core/static_allocation.hpp"
#include "core/supermarket.hpp"
#include "core/threshold.hpp"
#include "io/cli.hpp"
#include "io/table.hpp"
#include "sim/runner.hpp"

namespace {

using namespace iba;

sim::RunSpec shared_spec(double lambda) {
  sim::RunSpec spec;
  spec.burn_in = sim::suggested_burn_in(lambda);
  spec.auto_burn_in = false;
  spec.measure_rounds = 600;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  io::ArgParser parser("process_zoo",
                       "every process in the library on one workload");
  parser.add_flag("n", "number of bins", "4096");
  parser.add_flag("seed", "random seed", "11");
  if (!parser.parse_or_exit(argc, argv)) return 0;
  const auto n = static_cast<std::uint32_t>(parser.get_uint("n"));
  const auto seed = parser.get_uint("seed");
  const std::uint64_t lambda_n = static_cast<std::uint64_t>(n) * 7 / 8;
  const double lambda = 7.0 / 8.0;

  std::printf("infinite processes: n=%u, lambda=7/8, 600 measured rounds\n\n",
              n);
  io::Table table({"process", "wait_avg", "wait_max", "pool/n", "load/n",
                   "max_load"});
  table.set_title("Infinite parallel processes");

  for (const std::uint32_t c : {1u, 2u, 4u}) {
    core::CappedConfig config;
    config.n = n;
    config.capacity = c;
    config.lambda_n = lambda_n;
    core::Capped process(config, core::Engine(seed));
    const auto r = sim::run_experiment(process, shared_spec(lambda));
    table.add_row({"CAPPED(c=" + std::to_string(c) + ")",
                   io::Table::format_number(r.wait_mean),
                   io::Table::format_number(static_cast<double>(r.wait_max)),
                   io::Table::format_number(r.normalized_pool.mean()),
                   io::Table::format_number(
                       (r.system_load.mean() - r.pool.mean()) / n),
                   io::Table::format_number(r.max_load.mean())});
  }
  {
    core::CappedConfig config;
    config.n = n;
    config.capacity = core::Capped::kInfiniteCapacity;
    config.lambda_n = lambda_n;
    core::Capped process(config, core::Engine(seed));
    const auto r = sim::run_experiment(process, shared_spec(lambda));
    table.add_row({"CAPPED(inf) = GREEDY[1]",
                   io::Table::format_number(r.wait_mean),
                   io::Table::format_number(static_cast<double>(r.wait_max)),
                   io::Table::format_number(r.normalized_pool.mean()),
                   io::Table::format_number(
                       (r.system_load.mean() - r.pool.mean()) / n),
                   io::Table::format_number(r.max_load.mean())});
  }
  for (const std::uint32_t d : {1u, 2u}) {
    core::BatchGreedyConfig config;
    config.n = n;
    config.d = d;
    config.lambda_n = lambda_n;
    core::BatchGreedy process(config, core::Engine(seed));
    const auto r = sim::run_experiment(process, shared_spec(lambda));
    table.add_row({"GREEDY[" + std::to_string(d) + "] batch",
                   io::Table::format_number(r.wait_mean),
                   io::Table::format_number(static_cast<double>(r.wait_max)),
                   "0",
                   io::Table::format_number(r.system_load.mean() / n),
                   io::Table::format_number(r.max_load.mean())});
  }
  {
    core::AdlerFifoConfig config{.n = n, .d = 2, .m = n / 20};
    core::AdlerFifo process(config, core::Engine(seed));
    const auto r = sim::run_experiment(process, shared_spec(0.5));
    table.add_row({"Adler FIFO[d=2] (m=n/20)",
                   io::Table::format_number(r.wait_mean),
                   io::Table::format_number(static_cast<double>(r.wait_max)),
                   "0",
                   io::Table::format_number(r.system_load.mean() / n),
                   io::Table::format_number(r.max_load.mean())});
  }
  table.print();

  std::printf("\nstatic / self-stabilizing related work:\n\n");
  io::Table zoo({"process", "result"});
  zoo.set_title("One-shot anchors");
  {
    const auto thr = core::run_threshold(n, n, 1, core::Engine(seed));
    zoo.add_row({"THRESHOLD[1], m=n",
                 "done in " + std::to_string(thr.rounds) + " rounds (lnln n=" +
                     io::Table::format_number(std::log(std::log(n))) +
                     "), max load " + std::to_string(thr.max_load)});
  }
  {
    const auto oc = core::one_choice(n, n, core::Engine(seed + 1));
    const auto g2 = core::greedy_d(n, n, 2, core::Engine(seed + 2));
    zoo.add_row({"static 1-choice, m=n",
                 "max load " + std::to_string(oc.max_load) + " (ln/lnln=" +
                     io::Table::format_number(std::log(n) /
                                              std::log(std::log(n))) +
                     ")"});
    zoo.add_row({"static GREEDY[2], m=n",
                 "max load " + std::to_string(g2.max_load) +
                     " (the power of two choices)"});
  }
  {
    const auto left = core::always_go_left(n, n, 2, core::Engine(seed + 7));
    zoo.add_row({"ALWAYS-GO-LEFT[2], m=n",
                 "max load " + std::to_string(left.max_load) +
                     " (asymmetric tie-break beats GREEDY[2])"});
  }
  {
    const auto collision =
        core::run_collision_protocol(n, n, 2, 2, core::Engine(seed + 8));
    zoo.add_row({"Stemann collision (bound 2)",
                 "done in " + std::to_string(collision.rounds) +
                     " rounds, max load " +
                     std::to_string(collision.max_load)});
  }
  {
    auto chain =
        core::SequentialReallocation::round_robin(n, 2, core::Engine(seed + 9));
    std::uint64_t worst = 0;
    for (int round = 0; round < 100; ++round) {
      worst = std::max(worst, chain.step().max_load);
    }
    zoo.add_row({"sequential reallocation[d=2]",
                 "max load " + std::to_string(worst) +
                     " over 100n single-ball steps"});
  }
  {
    core::SupermarketConfig config;
    config.n = n;
    config.d = 2;
    config.lambda = 0.9;
    core::Supermarket system(config, core::Engine(seed + 10));
    system.advance(150.0);
    zoo.add_row({"supermarket (continuous, d=2)",
                 "Pr[q>=3] = " +
                     io::Table::format_number(system.tail_fraction(3)) +
                     " vs fixed point " +
                     io::Table::format_number(
                         core::Supermarket::fixed_point_tail(0.9, 2, 3))});
  }
  {
    auto process = core::RepeatedBallsIntoBins::adversarial(
        n, core::Engine(seed + 3));
    std::uint64_t rounds = 0;
    const auto target =
        static_cast<std::uint64_t>(2 * std::log2(static_cast<double>(n)));
    while (process.max_load() > target && rounds < 50ull * n) {
      (void)process.step();
      ++rounds;
    }
    zoo.add_row({"repeated balls-into-bins",
                 "adversarial start -> max load " +
                     std::to_string(process.max_load()) + " after " +
                     std::to_string(rounds) + " rounds (O(n))"});
  }
  zoo.print();
  return 0;
}
