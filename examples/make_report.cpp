// make_report — post-processes the CSV output of the bench suite into a
// single Markdown summary (results/REPORT.md): one section per
// experiment with the key columns and automatic pass/fail shape checks.
// Demonstrates the CSV-reader half of the IO library.
//
//   $ for b in build/bench/bench_*; do $b; done   # writes results/*.csv
//   $ ./build/examples/make_report --dir results
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "io/cli.hpp"
#include "io/csv_reader.hpp"

namespace {

using iba::io::CsvDocument;
using iba::io::read_csv_file;

struct Check {
  std::string description;
  bool passed;
};

std::vector<Check> check_figure4(const CsvDocument& doc) {
  std::vector<Check> checks;
  const auto pool = doc.numeric_column("pool_over_n");
  const auto reference = doc.numeric_column("reference");
  bool below = true;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    below = below && pool[i] <= reference[i];
  }
  checks.push_back({"every point below the dashed reference", below});
  return checks;
}

std::vector<Check> check_figure5(const CsvDocument& doc) {
  std::vector<Check> checks;
  const auto wait_max = doc.numeric_column("wait_max");
  const auto reference = doc.numeric_column("reference");
  bool below = true;
  for (std::size_t i = 0; i < wait_max.size(); ++i) {
    below = below && wait_max[i] <= reference[i];
  }
  checks.push_back({"max waiting time below the reference", below});
  return checks;
}

std::vector<Check> check_theory(const CsvDocument& doc) {
  const auto holds = doc.numeric_column("holds");
  bool all = true;
  for (const double h : holds) all = all && h > 0.5;
  return {{"Theorem 1/2 bounds hold at every grid cell", all}};
}

std::vector<Check> check_modcapped(const CsvDocument& doc) {
  const auto violations = doc.numeric_column("violations");
  bool none = true;
  for (const double v : violations) none = none && v == 0.0;
  return {{"zero coupling-dominance violations", none}};
}

void emit_section(std::ofstream& out, const std::string& title,
                  const std::string& path,
                  const std::vector<Check>& checks) {
  out << "## " << title << "\n\n";
  out << "Source: `" << path << "`\n\n";
  for (const Check& check : checks) {
    out << "- " << (check.passed ? "✅" : "❌") << " " << check.description
        << "\n";
  }
  out << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  iba::io::ArgParser parser("make_report",
                            "summarize bench CSVs into Markdown");
  parser.add_flag("dir", "directory containing the bench CSVs", "results");
  parser.add_flag("out", "output Markdown path (default <dir>/REPORT.md)",
                  "");
  if (!parser.parse_or_exit(argc, argv)) return 0;
  const std::string dir = parser.get("dir");
  const std::string out_path =
      parser.get("out").empty() ? dir + "/REPORT.md" : parser.get("out");

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "# iba bench report\n\n"
      << "Automated shape checks over the CSVs in `" << dir << "`.\n\n";

  struct Section {
    const char* file;
    const char* title;
    std::vector<Check> (*checker)(const CsvDocument&);
  };
  const std::vector<Section> sections = {
      {"fig4_pool_vs_c.csv", "Figure 4 (left)", &check_figure4},
      {"fig4_pool_vs_lambda.csv", "Figure 4 (right)", &check_figure4},
      {"fig5_wait_vs_c.csv", "Figure 5 (left)", &check_figure5},
      {"fig5_wait_vs_lambda.csv", "Figure 5 (right)", &check_figure5},
      {"theory_vs_sim.csv", "Theorem slack", &check_theory},
      {"modcapped.csv", "MODCAPPED coupling", &check_modcapped},
  };

  int sections_written = 0, failures = 0;
  for (const Section& section : sections) {
    const std::string path = dir + "/" + section.file;
    if (!std::filesystem::exists(path)) {
      std::fprintf(stderr, "[skip] %s not found\n", path.c_str());
      continue;
    }
    try {
      const auto doc = read_csv_file(path);
      const auto checks = section.checker(doc);
      emit_section(out, section.title, path, checks);
      ++sections_written;
      for (const Check& check : checks) failures += check.passed ? 0 : 1;
    } catch (const std::exception& error) {
      std::fprintf(stderr, "[error] %s: %s\n", path.c_str(), error.what());
      ++failures;
    }
  }

  out << "---\n" << sections_written << " sections, " << failures
      << " failed checks.\n";
  std::printf("wrote %s (%d sections, %d failed checks)\n", out_path.c_str(),
              sections_written, failures);
  return failures == 0 ? 0 : 1;
}
