// postmortem — inspect flight-recorder bundles (docs/TELEMETRY.md).
//
//   $ ./postmortem --bundle crash.postmortem
//     # verify CRC + pretty-print trigger, decisions, events, series
//   $ ./postmortem --bundle crash.postmortem --plot pool_size
//     # ASCII plot of one recorded column over the bundle window
//   $ ./postmortem --bundle a.postmortem --diff b.postmortem
//     # byte-compare two bundles; first differing lines on mismatch
//
// Exit codes: 0 success (and identical bundles under --diff), 1 runtime
// error (missing / torn / CRC-damaged bundle), 2 usage error, 3 bundle
// difference under --diff.
#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "io/cli.hpp"
#include "telemetry/flight_recorder.hpp"

namespace {

using namespace iba;

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void print_bundle(const telemetry::PostmortemBundle& bundle) {
  std::printf("postmortem bundle v%u\n", bundle.version);
  std::printf("  trigger  = %s @ round %llu\n", bundle.trigger.c_str(),
              static_cast<unsigned long long>(bundle.round));
  std::printf("  detail   = %s\n", bundle.detail.c_str());
  std::printf("  scenario = %s (digest %s)\n", bundle.scenario.c_str(),
              bundle.digest.c_str());
  std::printf("  seed     = %llu, n = %llu, engine = %s\n",
              static_cast<unsigned long long>(bundle.seed),
              static_cast<unsigned long long>(bundle.n),
              bundle.engine.c_str());
  std::printf("  decisions (%zu):\n", bundle.decisions.size());
  for (const std::string& line : bundle.decisions) {
    std::printf("    %s\n", line.c_str());
  }
  std::printf("  events (%zu):\n", bundle.events.size());
  for (const std::string& line : bundle.events) {
    std::printf("    %s\n", line.c_str());
  }
  std::printf("  timeseries: %llu sample(s) at cadence %llu\n",
              static_cast<unsigned long long>(bundle.samples),
              static_cast<unsigned long long>(bundle.cadence));
  for (const auto& [name, values] : bundle.series) {
    if (values.empty()) continue;
    const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
    std::printf("    %-18s min %llu  max %llu  last %llu\n", name.c_str(),
                static_cast<unsigned long long>(*lo),
                static_cast<unsigned long long>(*hi),
                static_cast<unsigned long long>(values.back()));
  }
}

/// ASCII plot: `height` rows tall, samples bucket-averaged down to at
/// most `width` columns, oldest sample on the left.
void plot_column(const std::string& name,
                 const std::vector<std::uint64_t>& values, std::size_t width,
                 std::size_t height) {
  std::vector<double> points;
  if (values.size() <= width) {
    points.assign(values.begin(), values.end());
  } else {
    points.resize(width);
    for (std::size_t i = 0; i < width; ++i) {
      const std::size_t from = i * values.size() / width;
      const std::size_t to =
          std::max(from + 1, (i + 1) * values.size() / width);
      double sum = 0.0;
      for (std::size_t j = from; j < to; ++j) {
        sum += static_cast<double>(values[j]);
      }
      points[i] = sum / static_cast<double>(to - from);
    }
  }
  double lo = points.front();
  double hi = points.front();
  for (const double p : points) {
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  const double span = hi > lo ? hi - lo : 1.0;
  std::printf("%s (%zu sample(s), min %.6g, max %.6g)\n", name.c_str(),
              values.size(), lo, hi);
  for (std::size_t row = 0; row < height; ++row) {
    // Row 0 is the top band; a point prints in every band at or below
    // its value, giving a filled column chart.
    const double threshold =
        lo + span * static_cast<double>(height - row - 1) /
                 static_cast<double>(height);
    std::string line;
    line.reserve(points.size());
    for (const double p : points) {
      line += p >= threshold ? '#' : ' ';
    }
    std::printf("  %10.6g |%s\n",
                lo + span * static_cast<double>(height - row) /
                         static_cast<double>(height),
        line.c_str());
  }
  std::printf("  %10s +%s\n", "", std::string(points.size(), '-').c_str());
}

int run(const io::ArgParser& parser) {
  const std::string bundle_path = parser.get("bundle");
  if (bundle_path.empty()) {
    throw io::UsageError("postmortem: --bundle is required");
  }
  const telemetry::PostmortemBundle bundle =
      telemetry::read_bundle_file(bundle_path);

  const std::string diff_path = parser.get("diff");
  if (!diff_path.empty()) {
    const telemetry::PostmortemBundle other =
        telemetry::read_bundle_file(diff_path);
    if (bundle.text == other.text) {
      std::printf("bundles identical (%zu bytes)\n", bundle.text.size());
      return 0;
    }
    const std::vector<std::string> a = split_lines(bundle.text);
    const std::vector<std::string> b = split_lines(other.text);
    std::printf("bundles differ (%zu vs %zu bytes):\n", bundle.text.size(),
                other.text.size());
    const std::size_t rows = std::max(a.size(), b.size());
    std::size_t shown = 0;
    for (std::size_t i = 0; i < rows && shown < 16; ++i) {
      const std::string& left = i < a.size() ? a[i] : "<eof>";
      const std::string& right = i < b.size() ? b[i] : "<eof>";
      if (left == right) continue;
      std::printf("  line %zu:\n    - %s\n    + %s\n", i + 1, left.c_str(),
                  right.c_str());
      ++shown;
    }
    return 3;
  }

  const std::string plot = parser.get("plot");
  if (!plot.empty()) {
    for (const auto& [name, values] : bundle.series) {
      if (name != plot) continue;
      if (values.empty()) {
        std::fprintf(stderr, "postmortem: column '%s' holds no samples\n",
                     plot.c_str());
        return 1;
      }
      plot_column(name, values,
                  static_cast<std::size_t>(
                      parser.get_uint_range("width", 8, 512)),
                  static_cast<std::size_t>(
                      parser.get_uint_range("height", 2, 64)));
      return 0;
    }
    std::string known;
    for (const auto& [name, values] : bundle.series) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    throw io::UsageError("postmortem: unknown column '" + plot +
                         "' (have: " + known + ")");
  }

  print_bundle(bundle);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  io::ArgParser parser("postmortem",
                       "verify and inspect flight-recorder postmortem "
                       "bundles");
  parser.add_flag("bundle", "bundle file to read (required)", "");
  parser.add_flag("diff",
                  "compare --bundle against this second bundle; exit 3 "
                  "and show the first differing lines on mismatch",
                  "");
  parser.add_flag("plot",
                  "ASCII-plot this recorded column (e.g. pool_size, "
                  "max_load, shed) over the bundle window",
                  "");
  parser.add_flag("width", "plot width, columns", "72");
  parser.add_flag("height", "plot height, rows", "12");

  try {
    if (!parser.parse_or_exit(argc, argv)) return 0;
    return run(parser);
  } catch (const iba::ContractViolation& error) {
    io::fail_usage(error.what());  // covers io::UsageError
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
