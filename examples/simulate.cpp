// simulate — the library's kitchen-sink command-line driver: every
// process, policy, and measurement knob behind one binary, with table,
// JSON, trace-CSV, and checkpoint outputs. The tool a downstream user
// reaches for before writing code against the API.
//
//   $ ./simulate --process capped --n 8192 --c 2 --lambda 0.9375
//   $ ./simulate --process capped-greedy --d 2 --trace-csv trace.csv
//   $ ./simulate --faults "crash@50:bins=0-63,down=20" --audit-every 1
//   $ ./simulate --checkpoint-every 500 --checkpoint-out state.ckpt
//   $ ./simulate --resume state.ckpt --rounds 1000   # bit-identical
//
// Exit codes: 0 success, 1 runtime error, 2 usage error (bad flag or
// out-of-domain parameter), 3 invariant violation detected by the
// auditor.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "analysis/bounds.hpp"
#include "core/capped.hpp"
#include "core/capped_greedy.hpp"
#include "core/greedy.hpp"
#include "core/modcapped.hpp"
#include "fault/auditor.hpp"
#include "fault/fault_plan.hpp"
#include "io/cli.hpp"
#include "io/json.hpp"
#include "io/table.hpp"
#include "sim/checkpoint.hpp"
#include "sim/config.hpp"
#include "sim/runner.hpp"
#include "sim/trace.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/timeseries.hpp"

namespace {

using namespace iba;

core::ArrivalModel parse_arrival(const std::string& text) {
  if (text == "deterministic") return core::ArrivalModel::kDeterministic;
  if (text == "binomial") return core::ArrivalModel::kBinomial;
  if (text == "poisson") return core::ArrivalModel::kPoisson;
  throw io::UsageError("simulate: unknown --arrival '" + text + "'");
}

core::DeletionDiscipline parse_deletion(const std::string& text) {
  if (text == "fifo") return core::DeletionDiscipline::kFifo;
  if (text == "lifo") return core::DeletionDiscipline::kLifo;
  if (text == "uniform") return core::DeletionDiscipline::kUniform;
  throw io::UsageError("simulate: unknown --deletion '" + text + "'");
}

core::AcceptanceOrder parse_acceptance(const std::string& text) {
  if (text == "oldest-first") return core::AcceptanceOrder::kOldestFirst;
  if (text == "youngest-first") return core::AcceptanceOrder::kYoungestFirst;
  throw io::UsageError("simulate: unknown --acceptance '" + text + "'");
}

/// --c: a finite capacity in [1, 65535] or "inf".
std::uint32_t parse_capacity(const io::ArgParser& parser) {
  if (parser.get("c") == "inf") return core::Capped::kInfiniteCapacity;
  return static_cast<std::uint32_t>(parser.get_uint_range("c", 1, 65535));
}

/// The --control* flag family, range-validated (bad values exit 2).
control::ControlConfig parse_control(const io::ArgParser& parser) {
  control::ControlConfig ctrl;
  const std::string name = parser.get("control");
  if (!control::policy_from_string(name, ctrl.policy)) {
    throw io::UsageError(
        "simulate: --control expects none, static, sweet-spot or aimd, "
        "got '" + name + "'");
  }
  ctrl.c_max =
      static_cast<std::uint32_t>(parser.get_uint_range("c-max", 1, 65535));
  ctrl.window = static_cast<std::uint32_t>(
      parser.get_uint_range("control-window", 1, 1u << 16));
  ctrl.cooldown = static_cast<std::uint32_t>(
      parser.get_uint_range("cooldown", 1, 1u << 20));
  ctrl.hysteresis =
      parser.get_double_range("control-hysteresis", 0.0, 1.0, false, false);
  ctrl.admission_target = parser.get_uint("admission-target");
  return ctrl;
}

template <core::AllocationProcess P>
sim::RunResult run_with_trace(P& process, const sim::RunSpec& spec,
                              const std::string& trace_path) {
  if (trace_path.empty()) return sim::run_experiment(process, spec);
  // Tracing run: record the measurement window manually so the trace
  // lines up with the reported statistics.
  for (std::uint64_t i = 0; i < spec.burn_in; ++i) (void)process.step();
  if constexpr (requires { process.reset_wait_stats(); }) {
    process.reset_wait_stats();
  }
  sim::TraceRecorder trace;
  // run_experiment would hide per-round data; drive the loop here.
  sim::RunResult result;
  result.burn_in_used = spec.burn_in;
  result.measured_rounds = spec.measure_rounds;
  double wait_sum = 0;
  for (std::uint64_t i = 0; i < spec.measure_rounds; ++i) {
    const auto m = process.step();
    trace.observe(m);
    result.pool.add(static_cast<double>(m.pool_size));
    result.normalized_pool.add(static_cast<double>(m.pool_size) /
                               static_cast<double>(process.n()));
    result.max_load.add(static_cast<double>(m.max_load));
    result.system_load.add(static_cast<double>(m.pool_size + m.total_load));
    result.deletions += m.wait_count;
    wait_sum += m.wait_sum;
    if (m.wait_max > result.wait_max) result.wait_max = m.wait_max;
  }
  if (result.deletions > 0) {
    result.wait_mean = wait_sum / static_cast<double>(result.deletions);
  }
  if constexpr (requires { process.waits(); }) {
    result.wait_stddev = process.waits().stddev();
    result.wait_p99_upper =
        static_cast<double>(process.waits().quantile_upper_bound(0.99));
  }
  trace.write_csv(trace_path);
  std::fprintf(stderr, "[trace] wrote %s (%zu rounds)\n", trace_path.c_str(),
               static_cast<std::size_t>(spec.measure_rounds));
  return result;
}

void report(const std::string& process_name, std::uint32_t n, double lambda,
            const sim::RunResult& result, bool as_json) {
  if (as_json) {
    io::JsonWriter json(std::cout);
    json.begin_object()
        .key("process").value(process_name)
        .key("n").value(static_cast<std::uint64_t>(n))
        .key("lambda").value(lambda)
        .key("burn_in").value(result.burn_in_used)
        .key("measured_rounds").value(result.measured_rounds)
        .key("pool_mean").value(result.pool.mean())
        .key("pool_over_n").value(result.normalized_pool.mean())
        .key("pool_max").value(result.pool.max())
        .key("wait_mean").value(result.wait_mean)
        .key("wait_max").value(result.wait_max)
        .key("wait_p99_upper").value(result.wait_p99_upper)
        .key("deletions").value(result.deletions)
        .key("max_load_mean").value(result.max_load.mean())
        .key("rounds_per_second").value(result.rounds_per_second)
        .end_object();
    std::cout << '\n';
    return;
  }
  io::Table table({"metric", "value"});
  table.set_title(process_name + " results");
  table.add_row({"burn-in rounds",
                 io::Table::format_number(
                     static_cast<double>(result.burn_in_used))});
  table.add_row({"measured rounds",
                 io::Table::format_number(
                     static_cast<double>(result.measured_rounds))});
  table.add_row({"pool size (avg)",
                 io::Table::format_number(result.pool.mean())});
  table.add_row({"pool / n",
                 io::Table::format_number(result.normalized_pool.mean())});
  table.add_row({"waiting time (avg)",
                 io::Table::format_number(result.wait_mean)});
  table.add_row({"waiting time (p99<=)",
                 io::Table::format_number(result.wait_p99_upper)});
  table.add_row({"waiting time (max)",
                 io::Table::format_number(
                     static_cast<double>(result.wait_max))});
  table.add_row({"max load (avg)",
                 io::Table::format_number(result.max_load.mean())});
  table.add_row({"throughput (rounds/s)",
                 io::Table::format_number(result.rounds_per_second)});
  table.print();
}

/// The CAPPED driver: fault injection, online auditing, periodic
/// crash-safe checkpoints, resume, and per-round tracing in one loop.
/// Returns the process exit code.
int run_capped_cli(const io::ArgParser& parser, sim::RunSpec spec,
                   std::uint32_t n, double lambda, std::uint64_t lambda_n,
                   std::uint64_t seed) {
  core::CappedConfig config;
  config.n = n;
  config.capacity = parse_capacity(parser);
  config.lambda_n = lambda_n;
  config.arrival = parse_arrival(parser.get("arrival"));
  config.deletion = parse_deletion(parser.get("deletion"));
  config.acceptance = parse_acceptance(parser.get("acceptance"));
  config.failure_probability =
      parser.get_double_range("failure-prob", 0.0, 1.0, false, true);
  const std::string kernel_name = parser.get("kernel");
  if (!core::kernel_from_string(kernel_name, config.kernel)) {
    throw io::UsageError("simulate: --kernel expects bin-major or scalar, "
                         "got '" + kernel_name + "'");
  }
  config.shards =
      static_cast<std::uint32_t>(parser.get_uint_range("shards", 1, n));
  config.pin_threads = parser.get_bool("pin-threads");
  config.arena.enabled = parser.get_bool("arena");
  config.arena.huge_pages = parser.get_bool("huge-pages");
  if (config.arena.huge_pages && !config.arena.enabled) {
    throw io::UsageError("simulate: --huge-pages requires --arena true");
  }
  config.pool_limit = parser.get_uint("pool-limit");
  const std::string bp_name = parser.get("backpressure");
  if (!core::backpressure_from_string(bp_name, config.backpressure)) {
    throw io::UsageError("simulate: --backpressure expects none, shed or "
                         "defer, got '" + bp_name + "'");
  }
  if (config.backpressure != core::BackpressureMode::kNone &&
      config.pool_limit == 0) {
    throw io::UsageError(
        "simulate: --backpressure requires --pool-limit > 0");
  }
  config.backoff_rounds = static_cast<std::uint32_t>(
      parser.get_uint_range("backoff", 1, 1u << 20));
  config.control = parse_control(parser);
  if (config.control.enabled()) {
    if (config.capacity == core::Capped::kInfiniteCapacity) {
      throw io::UsageError(
          "simulate: --control requires a finite --c (not inf)");
    }
    if (config.capacity > config.control.c_max) {
      throw io::UsageError("simulate: --c " +
                           std::to_string(config.capacity) +
                           " exceeds --c-max " +
                           std::to_string(config.control.c_max));
    }
    if (config.control.admission_target > 0 &&
        config.backpressure == core::BackpressureMode::kNone) {
      throw io::UsageError(
          "simulate: --admission-target requires --backpressure shed or "
          "defer (and --pool-limit)");
    }
  } else if (parser.get_uint("admission-target") > 0) {
    throw io::UsageError(
        "simulate: --admission-target requires --control (static, "
        "sweet-spot or aimd)");
  }

  const std::string fault_text = parser.get("faults");
  const std::uint64_t fault_seed = parser.get_uint("fault-seed");
  std::string resume_path = parser.get("resume");
  if (resume_path.empty()) resume_path = parser.get("checkpoint-in");
  const std::string checkpoint_out = parser.get("checkpoint-out");
  const std::uint64_t checkpoint_every = parser.get_uint("checkpoint-every");
  if (checkpoint_every > 0 && checkpoint_out.empty()) {
    throw io::UsageError(
        "simulate: --checkpoint-every requires --checkpoint-out");
  }
  const std::uint64_t audit_every = parser.get_uint("audit-every");
  const std::string trace_path = parser.get("trace-csv");

  std::unique_ptr<core::Capped> process;
  std::unique_ptr<fault::FaultPlan> plan;
  bool resumed = false;
  if (!resume_path.empty()) {
    resumed = true;
    sim::Checkpoint ckpt = sim::load_checkpoint_full(resume_path);
    // The checkpoint's control configuration is authoritative (it is
    // part of the resumed trajectory); a conflicting --control on the
    // command line is a hard usage error, not a silent override.
    if (parser.provided("control") &&
        config.control.policy != ckpt.snapshot.config.control.policy) {
      throw io::UsageError(
          "simulate: --control '" +
          std::string(control::to_string(config.control.policy)) +
          "' disagrees with checkpoint field control.policy = '" +
          std::string(
              control::to_string(ckpt.snapshot.config.control.policy)) +
          "' (resume keeps the saved policy; drop --control or re-run "
          "fresh)");
    }
    process = std::make_unique<core::Capped>(ckpt.snapshot);
    if (ckpt.has_fault_state) {
      // The checkpoint's schedule is authoritative: the plan resumes the
      // recorded fault trajectory, not a fresh one. Under adaptive
      // control the plan validates against c_max (the capacity ceiling)
      // — the saved capacity may be mid-shrink.
      const auto& rc = ckpt.snapshot.config;
      plan = std::make_unique<fault::FaultPlan>(
          fault::parse_schedule(ckpt.fault_schedule), rc.n,
          rc.control.enabled() ? rc.control.c_max : rc.capacity,
          ckpt.fault_seed);
      plan->restore(ckpt.fault_state);
    }
    std::fprintf(stderr, "[checkpoint] resumed from %s at round %llu%s\n",
                 resume_path.c_str(),
                 static_cast<unsigned long long>(process->round()),
                 plan != nullptr ? " (fault plan restored)" : "");
    spec.burn_in = 0;  // the checkpoint is already in steady state
  } else {
    process = std::make_unique<core::Capped>(config, core::Engine(seed));
    if (!fault_text.empty()) {
      plan = std::make_unique<fault::FaultPlan>(
          fault::parse_schedule(fault_text), config.n,
          config.control.enabled() ? config.control.c_max : config.capacity,
          fault_seed);
    }
  }
  if (plan != nullptr) process->set_fault_plan(plan.get());

  std::optional<fault::InvariantAuditor> auditor;
  if (audit_every > 0) auditor.emplace(audit_every);

  // Recording: a per-round time series and an armed flight recorder
  // whose bundle dumps on the first auditor violation. Both inert with
  // -DIBA_TELEMETRY=OFF.
  const std::string timeseries_out = parser.get("timeseries-out");
  const std::string flight_recorder = parser.get("flight-recorder");
  const bool recording = telemetry::TimeSeries::kEnabled &&
                         (!timeseries_out.empty() || !flight_recorder.empty());
  std::optional<telemetry::TimeSeries> series;
  std::optional<telemetry::FlightRecorder> recorder;
  std::uint64_t seen_violations = 0;
  if (recording) {
    telemetry::TimeSeriesConfig ts_config;
    ts_config.cadence = parser.get_uint_range("ts-cadence", 1, UINT64_MAX);
    series.emplace(ts_config);
    recorder.emplace();
    recorder->attach_time_series(&*series);
    recorder->set_context("simulate", "-", seed, process->n());
    process->set_time_series(&*series);
  }
  const auto record_round = [&] {
    if (!recording || !auditor.has_value() ||
        auditor->violation_count() <= seen_violations) {
      return;
    }
    seen_violations = auditor->violation_count();
    std::string detail = "invariant violation";
    if (!auditor->violations().empty()) {
      const auto& v = auditor->violations().back();
      detail = v.invariant + ": " + v.detail;
    }
    recorder->note_event(process->round(), "audit-violation", detail);
    if (recorder->trigger(telemetry::TriggerKind::kAuditorViolation,
                          process->round(), detail) &&
        !flight_recorder.empty()) {
      recorder->write_bundle(flight_recorder);
      std::fprintf(stderr, "[recorder] wrote %s\n", flight_recorder.c_str());
    }
  };

  const auto save = [&](const std::string& path) {
    sim::Checkpoint ckpt;
    ckpt.snapshot = process->snapshot();
    if (plan != nullptr) {
      ckpt.has_fault_state = true;
      ckpt.fault_schedule = fault::to_string(plan->schedule());
      ckpt.fault_seed = plan->seed();
      ckpt.fault_state = plan->state();
    }
    sim::save_checkpoint(ckpt, path);
  };

  sim::TraceRecorder trace;
  sim::RunResult result;
  result.burn_in_used = spec.burn_in;
  result.measured_rounds = spec.measure_rounds;
  double wait_sum = 0;
  std::uint64_t since_checkpoint = 0;
  const auto maybe_checkpoint = [&] {
    if (checkpoint_every == 0) return;
    if (++since_checkpoint < checkpoint_every) return;
    since_checkpoint = 0;
    save(checkpoint_out);
  };

  for (std::uint64_t i = 0; i < spec.burn_in; ++i) {
    const auto m = process->step();
    if (auditor.has_value()) auditor->observe(*process, m);
    record_round();
    maybe_checkpoint();
  }
  // A resumed run continues the saved cumulative wait statistics
  // bit-for-bit; resetting them would fork from the uninterrupted run.
  if (!resumed) process->reset_wait_stats();

  for (std::uint64_t i = 0; i < spec.measure_rounds; ++i) {
    const auto m = process->step();
    if (auditor.has_value()) auditor->observe(*process, m);
    record_round();
    if (!trace_path.empty()) trace.observe(m);
    result.pool.add(static_cast<double>(m.pool_size));
    result.normalized_pool.add(static_cast<double>(m.pool_size) /
                               static_cast<double>(process->n()));
    result.max_load.add(static_cast<double>(m.max_load));
    result.system_load.add(static_cast<double>(m.pool_size + m.total_load));
    result.deletions += m.wait_count;
    wait_sum += m.wait_sum;
    if (m.wait_max > result.wait_max) result.wait_max = m.wait_max;
    maybe_checkpoint();
  }
  if (result.deletions > 0) {
    result.wait_mean = wait_sum / static_cast<double>(result.deletions);
  }
  result.wait_stddev = process->waits().stddev();
  result.wait_p99_upper =
      static_cast<double>(process->waits().quantile_upper_bound(0.99));
  if (!trace_path.empty()) {
    trace.write_csv(trace_path);
    std::fprintf(stderr, "[trace] wrote %s (%zu rounds)\n", trace_path.c_str(),
                 static_cast<std::size_t>(spec.measure_rounds));
  }

  // Report the geometry actually run — on resume that is the
  // checkpoint's, not the CLI defaults.
  report("CAPPED", process->n(), process->lambda(), result,
         parser.get_bool("json"));
  (void)n;
  (void)lambda;
  if (process->controller() != nullptr) {
    const control::Controller* ctl = process->controller();
    std::fprintf(
        stderr,
        "[control] policy=%s capacity_now=%u lambda_hat=%.4f changes=%llu "
        "grows=%llu shrinks=%llu\n",
        std::string(control::to_string(ctl->config().policy)).c_str(),
        process->capacity(), ctl->estimator().lambda_ewma(),
        static_cast<unsigned long long>(ctl->changes_total()),
        static_cast<unsigned long long>(ctl->grows_total()),
        static_cast<unsigned long long>(ctl->shrinks_total()));
    for (const auto& d : ctl->decisions()) {
      std::fprintf(stderr,
                   "[control] round %llu: c %u -> %u, pool_limit %llu -> "
                   "%llu (lambda_hat=%.4f wait=%.2f)\n",
                   static_cast<unsigned long long>(d.round), d.old_capacity,
                   d.new_capacity,
                   static_cast<unsigned long long>(d.old_pool_limit),
                   static_cast<unsigned long long>(d.new_pool_limit),
                   d.lambda_hat, d.mean_wait);
    }
  }
  if (plan != nullptr) {
    std::fprintf(stderr,
                 "[faults] crashes=%llu repairs=%llu straggler_skips=%llu "
                 "down_now=%llu\n",
                 static_cast<unsigned long long>(plan->crashes_total()),
                 static_cast<unsigned long long>(plan->repairs_total()),
                 static_cast<unsigned long long>(plan->straggler_skips_total()),
                 static_cast<unsigned long long>(plan->down_bins()));
  }
  if (!checkpoint_out.empty()) {
    save(checkpoint_out);
    std::fprintf(stderr, "[checkpoint] saved %s\n", checkpoint_out.c_str());
  }
  if (recording && !timeseries_out.empty()) {
    std::ofstream ts_out(timeseries_out, std::ios::binary);
    ts_out << series->render_text();
    if (!ts_out) {
      throw std::runtime_error("simulate: cannot write " + timeseries_out);
    }
    std::fprintf(stderr, "[timeseries] wrote %s (%llu rounds)\n",
                 timeseries_out.c_str(),
                 static_cast<unsigned long long>(series->rounds_observed()));
  }
  if (auditor.has_value()) {
    std::fprintf(stderr,
                 "[audit] rounds=%llu deep=%llu violations=%llu\n",
                 static_cast<unsigned long long>(auditor->rounds_audited()),
                 static_cast<unsigned long long>(auditor->deep_audits()),
                 static_cast<unsigned long long>(auditor->violation_count()));
    if (!auditor->ok()) {
      for (const auto& v : auditor->violations()) {
        std::fprintf(stderr, "[audit] round %llu: %s: %s\n",
                     static_cast<unsigned long long>(v.round),
                     v.invariant.c_str(), v.detail.c_str());
      }
      return 3;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  io::ArgParser parser("simulate",
                       "run any iba allocation process with full control");
  parser.add_flag("process", "capped | modcapped | greedy | capped-greedy",
                  "capped");
  parser.add_flag("n", "number of bins", "8192");
  parser.add_flag("c", "buffer capacity, 1..65535 or inf", "2");
  parser.add_flag("d", "choices per ball (greedy / capped-greedy)", "2");
  parser.add_flag("lambda", "arrival rate in (0, 1); lambda*n integral",
                  "0.9375");
  parser.add_flag("rounds", "measured rounds", "1000");
  parser.add_flag("burnin", "burn-in rounds (0 = auto)", "0");
  parser.add_flag("seed", "random seed", "1");
  parser.add_flag("arrival", "deterministic | binomial | poisson",
                  "deterministic");
  parser.add_flag("deletion", "fifo | lifo | uniform", "fifo");
  parser.add_flag("acceptance", "oldest-first | youngest-first",
                  "oldest-first");
  parser.add_flag("failure-prob", "per-bin service failure probability",
                  "0");
  parser.add_flag("kernel", "bin-major | scalar (capped only)", "bin-major");
  parser.add_flag("shards",
                  "parallel bin ranges per round (capped bin-major only)",
                  "1");
  parser.add_flag("pin-threads",
                  "pin shard workers to CPUs, best-effort; never changes "
                  "results (capped only)",
                  "false");
  parser.add_flag("arena",
                  "back bin/scratch state with the mmap arena "
                  "(first-touch NUMA placement; capped only)",
                  "false");
  parser.add_flag("huge-pages",
                  "advise MADV_HUGEPAGE on arena mappings (needs --arena)",
                  "false");
  parser.add_flag("pool-limit",
                  "pool bound for backpressure (0 = unbounded)", "0");
  parser.add_flag("backpressure", "none | shed | defer (capped only)",
                  "none");
  parser.add_flag("backoff", "defer-retry backoff, rounds", "4");
  parser.add_flag("control",
                  "adaptive capacity policy: none | static | sweet-spot | "
                  "aimd (capped only)",
                  "none");
  parser.add_flag("c-max", "controller capacity ceiling, 1..65535", "16");
  parser.add_flag("control-window", "estimator window, rounds", "64");
  parser.add_flag("cooldown",
                  "min rounds between applied control changes", "128");
  parser.add_flag("control-hysteresis",
                  "policy dead band in [0, 1]", "0.1");
  parser.add_flag("admission-target",
                  "AIMD the pool limit toward this p95 wait bound "
                  "(0 = off; requires backpressure)",
                  "0");
  parser.add_flag("faults",
                  "fault schedule, e.g. 'crash@50:bins=0-63,down=20;"
                  "random-crash:p=0.001,down=5-40' (capped only)",
                  "");
  parser.add_flag("fault-seed", "seed of the fault RNG stream", "1");
  parser.add_flag("audit-every",
                  "run deep invariant audits every K rounds (0 = off; "
                  "violations exit 3)",
                  "0");
  parser.add_flag("trace-csv", "write per-round trace CSV to this path", "");
  parser.add_flag("timeseries-out",
                  "write the multi-tier per-round time series here "
                  "(capped only)",
                  "");
  parser.add_flag("ts-cadence",
                  "time-series sampling cadence, rounds", "1");
  parser.add_flag("flight-recorder",
                  "arm the flight recorder; the postmortem bundle lands "
                  "here on the first auditor violation (capped only)",
                  "");
  parser.add_flag("checkpoint-in", "resume a capped run from this file", "");
  parser.add_flag("resume", "alias for --checkpoint-in", "");
  parser.add_flag("checkpoint-out", "save capped state after the run", "");
  parser.add_flag("checkpoint-every",
                  "also checkpoint every K rounds during the run "
                  "(requires --checkpoint-out)",
                  "0");
  parser.add_flag("json", "emit the result as JSON", "false");
  parser.add_flag("force", "overwrite existing output files", "false");

  try {
    if (!parser.parse_or_exit(argc, argv)) return 0;

    const auto n =
        static_cast<std::uint32_t>(parser.get_uint_range("n", 1, 1u << 28));
    const double lambda =
        parser.get_double_range("lambda", 0.0, 1.0, true, true);
    const auto process_name = parser.get("process");
    const bool as_json = parser.get_bool("json");
    const auto trace_path = parser.get("trace-csv");
    // Shared overwrite guard (same contract as the benches and
    // scenario_run): existing outputs are a usage error without --force.
    const bool force = parser.get_bool("force");
    io::guard_overwrite(trace_path, force, "--trace-csv");
    io::guard_overwrite(parser.get("checkpoint-out"), force,
                        "--checkpoint-out");
    io::guard_overwrite(parser.get("timeseries-out"), force,
                        "--timeseries-out");
    io::guard_overwrite(parser.get("flight-recorder"), force,
                        "--flight-recorder");

    sim::RunSpec spec;
    spec.measure_rounds = parser.get_uint_range("rounds", 1, UINT64_MAX);
    spec.burn_in = parser.provided("burnin") && parser.get_uint("burnin") > 0
                       ? parser.get_uint("burnin")
                       : sim::suggested_burn_in(lambda);
    spec.auto_burn_in = false;

    const auto seed = parser.get_uint("seed");
    const auto lambda_n = core::CappedConfig::from_rate(n, lambda, 1).lambda_n;

    if (process_name == "capped") {
      return run_capped_cli(parser, spec, n, lambda, lambda_n, seed);
    } else if (process_name == "modcapped") {
      core::ModCappedConfig config;
      config.n = n;
      config.capacity =
          static_cast<std::uint32_t>(parser.get_uint_range("c", 1, 65535));
      config.lambda_n = lambda_n;
      core::ModCapped process(config, core::Engine(seed));
      const auto result = run_with_trace(process, spec, trace_path);
      report("MODCAPPED", n, lambda, result, as_json);
    } else if (process_name == "greedy") {
      core::BatchGreedyConfig config;
      config.n = n;
      config.d = static_cast<std::uint32_t>(parser.get_uint_range("d", 1, 16));
      config.lambda_n = lambda_n;
      core::BatchGreedy process(config, core::Engine(seed));
      const auto result = run_with_trace(process, spec, trace_path);
      report("GREEDY[" + std::to_string(config.d) + "]", n, lambda, result,
             as_json);
    } else if (process_name == "capped-greedy") {
      core::CappedGreedyConfig config;
      config.n = n;
      config.capacity =
          static_cast<std::uint32_t>(parser.get_uint_range("c", 1, 65535));
      config.d = static_cast<std::uint32_t>(parser.get_uint_range("d", 1, 16));
      config.lambda_n = lambda_n;
      core::CappedGreedy process(config, core::Engine(seed));
      const auto result = run_with_trace(process, spec, trace_path);
      report("CAPPED-GREEDY", n, lambda, result, as_json);
    } else {
      throw io::UsageError("simulate: unknown --process '" + process_name +
                           "'");
    }
  } catch (const io::UsageError& error) {
    io::fail_usage(error.what());
  } catch (const fault::ScheduleError& error) {
    io::fail_usage(error.what());
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return 0;
}
