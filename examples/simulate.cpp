// simulate — the library's kitchen-sink command-line driver: every
// process, policy, and measurement knob behind one binary, with table,
// JSON, trace-CSV, and checkpoint outputs. The tool a downstream user
// reaches for before writing code against the API.
//
//   $ ./simulate --process capped --n 8192 --c 2 --lambda 0.9375
//   $ ./simulate --process capped-greedy --d 2 --trace-csv trace.csv
//   $ ./simulate --checkpoint-out state.ckpt   # ... later:
//   $ ./simulate --checkpoint-in state.ckpt --rounds 1000
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "analysis/bounds.hpp"
#include "core/capped.hpp"
#include "core/capped_greedy.hpp"
#include "core/greedy.hpp"
#include "core/modcapped.hpp"
#include "io/cli.hpp"
#include "io/json.hpp"
#include "io/table.hpp"
#include "sim/checkpoint.hpp"
#include "sim/config.hpp"
#include "sim/runner.hpp"
#include "sim/trace.hpp"

namespace {

using namespace iba;

core::ArrivalModel parse_arrival(const std::string& text) {
  if (text == "deterministic") return core::ArrivalModel::kDeterministic;
  if (text == "binomial") return core::ArrivalModel::kBinomial;
  if (text == "poisson") return core::ArrivalModel::kPoisson;
  throw ContractViolation("simulate: unknown --arrival '" + text + "'");
}

core::DeletionDiscipline parse_deletion(const std::string& text) {
  if (text == "fifo") return core::DeletionDiscipline::kFifo;
  if (text == "lifo") return core::DeletionDiscipline::kLifo;
  if (text == "uniform") return core::DeletionDiscipline::kUniform;
  throw ContractViolation("simulate: unknown --deletion '" + text + "'");
}

core::AcceptanceOrder parse_acceptance(const std::string& text) {
  if (text == "oldest-first") return core::AcceptanceOrder::kOldestFirst;
  if (text == "youngest-first") return core::AcceptanceOrder::kYoungestFirst;
  throw ContractViolation("simulate: unknown --acceptance '" + text + "'");
}

template <core::AllocationProcess P>
sim::RunResult run_with_trace(P& process, const sim::RunSpec& spec,
                              const std::string& trace_path) {
  if (trace_path.empty()) return sim::run_experiment(process, spec);
  // Tracing run: record the measurement window manually so the trace
  // lines up with the reported statistics.
  for (std::uint64_t i = 0; i < spec.burn_in; ++i) (void)process.step();
  if constexpr (requires { process.reset_wait_stats(); }) {
    process.reset_wait_stats();
  }
  sim::TraceRecorder trace;
  // run_experiment would hide per-round data; drive the loop here.
  sim::RunResult result;
  result.burn_in_used = spec.burn_in;
  result.measured_rounds = spec.measure_rounds;
  double wait_sum = 0;
  for (std::uint64_t i = 0; i < spec.measure_rounds; ++i) {
    const auto m = process.step();
    trace.observe(m);
    result.pool.add(static_cast<double>(m.pool_size));
    result.normalized_pool.add(static_cast<double>(m.pool_size) /
                               static_cast<double>(process.n()));
    result.max_load.add(static_cast<double>(m.max_load));
    result.system_load.add(static_cast<double>(m.pool_size + m.total_load));
    result.deletions += m.wait_count;
    wait_sum += m.wait_sum;
    if (m.wait_max > result.wait_max) result.wait_max = m.wait_max;
  }
  if (result.deletions > 0) {
    result.wait_mean = wait_sum / static_cast<double>(result.deletions);
  }
  if constexpr (requires { process.waits(); }) {
    result.wait_stddev = process.waits().stddev();
    result.wait_p99_upper =
        static_cast<double>(process.waits().quantile_upper_bound(0.99));
  }
  trace.write_csv(trace_path);
  std::fprintf(stderr, "[trace] wrote %s (%zu rounds)\n", trace_path.c_str(),
               static_cast<std::size_t>(spec.measure_rounds));
  return result;
}

void report(const std::string& process_name, std::uint32_t n, double lambda,
            const sim::RunResult& result, bool as_json) {
  if (as_json) {
    io::JsonWriter json(std::cout);
    json.begin_object()
        .key("process").value(process_name)
        .key("n").value(static_cast<std::uint64_t>(n))
        .key("lambda").value(lambda)
        .key("burn_in").value(result.burn_in_used)
        .key("measured_rounds").value(result.measured_rounds)
        .key("pool_mean").value(result.pool.mean())
        .key("pool_over_n").value(result.normalized_pool.mean())
        .key("pool_max").value(result.pool.max())
        .key("wait_mean").value(result.wait_mean)
        .key("wait_max").value(result.wait_max)
        .key("wait_p99_upper").value(result.wait_p99_upper)
        .key("deletions").value(result.deletions)
        .key("max_load_mean").value(result.max_load.mean())
        .key("rounds_per_second").value(result.rounds_per_second)
        .end_object();
    std::cout << '\n';
    return;
  }
  io::Table table({"metric", "value"});
  table.set_title(process_name + " results");
  table.add_row({"burn-in rounds",
                 io::Table::format_number(
                     static_cast<double>(result.burn_in_used))});
  table.add_row({"measured rounds",
                 io::Table::format_number(
                     static_cast<double>(result.measured_rounds))});
  table.add_row({"pool size (avg)",
                 io::Table::format_number(result.pool.mean())});
  table.add_row({"pool / n",
                 io::Table::format_number(result.normalized_pool.mean())});
  table.add_row({"waiting time (avg)",
                 io::Table::format_number(result.wait_mean)});
  table.add_row({"waiting time (p99<=)",
                 io::Table::format_number(result.wait_p99_upper)});
  table.add_row({"waiting time (max)",
                 io::Table::format_number(
                     static_cast<double>(result.wait_max))});
  table.add_row({"max load (avg)",
                 io::Table::format_number(result.max_load.mean())});
  table.add_row({"throughput (rounds/s)",
                 io::Table::format_number(result.rounds_per_second)});
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  io::ArgParser parser("simulate",
                       "run any iba allocation process with full control");
  parser.add_flag("process", "capped | modcapped | greedy | capped-greedy",
                  "capped");
  parser.add_flag("n", "number of bins", "8192");
  parser.add_flag("c", "buffer capacity (0 = infinite)", "2");
  parser.add_flag("d", "choices per ball (greedy / capped-greedy)", "2");
  parser.add_flag("lambda", "arrival rate; lambda*n must be integral",
                  "0.9375");
  parser.add_flag("rounds", "measured rounds", "1000");
  parser.add_flag("burnin", "burn-in rounds (0 = auto)", "0");
  parser.add_flag("seed", "random seed", "1");
  parser.add_flag("arrival", "deterministic | binomial | poisson",
                  "deterministic");
  parser.add_flag("deletion", "fifo | lifo | uniform", "fifo");
  parser.add_flag("acceptance", "oldest-first | youngest-first",
                  "oldest-first");
  parser.add_flag("failure-prob", "per-bin service failure probability",
                  "0");
  parser.add_flag("trace-csv", "write per-round trace CSV to this path", "");
  parser.add_flag("checkpoint-in", "resume a capped run from this file", "");
  parser.add_flag("checkpoint-out", "save capped state after the run", "");
  parser.add_flag("json", "emit the result as JSON", "false");

  try {
    if (!parser.parse(argc, argv)) return 0;

    const auto n = static_cast<std::uint32_t>(parser.get_uint("n"));
    const double lambda = parser.get_double("lambda");
    const auto process_name = parser.get("process");
    const bool as_json = parser.get_bool("json");
    const auto trace_path = parser.get("trace-csv");

    sim::RunSpec spec;
    spec.measure_rounds = parser.get_uint("rounds");
    spec.burn_in = parser.provided("burnin") && parser.get_uint("burnin") > 0
                       ? parser.get_uint("burnin")
                       : sim::suggested_burn_in(lambda);
    spec.auto_burn_in = false;

    const auto seed = parser.get_uint("seed");
    const auto lambda_n = core::CappedConfig::from_rate(n, lambda, 1).lambda_n;

    if (process_name == "capped") {
      core::CappedConfig config;
      config.n = n;
      const auto c = parser.get_uint("c");
      config.capacity = c == 0 ? core::Capped::kInfiniteCapacity
                               : static_cast<std::uint32_t>(c);
      config.lambda_n = lambda_n;
      config.arrival = parse_arrival(parser.get("arrival"));
      config.deletion = parse_deletion(parser.get("deletion"));
      config.acceptance = parse_acceptance(parser.get("acceptance"));
      config.failure_probability = parser.get_double("failure-prob");

      std::unique_ptr<core::Capped> process;
      const auto checkpoint_in = parser.get("checkpoint-in");
      if (!checkpoint_in.empty()) {
        process = std::make_unique<core::Capped>(
            sim::load_checkpoint(checkpoint_in));
        std::fprintf(stderr, "[checkpoint] resumed from %s at round %llu\n",
                     checkpoint_in.c_str(),
                     static_cast<unsigned long long>(process->round()));
        spec.burn_in = 0;  // the checkpoint is already in steady state
      } else {
        process =
            std::make_unique<core::Capped>(config, core::Engine(seed));
      }
      const auto result = run_with_trace(*process, spec, trace_path);
      report("CAPPED", n, lambda, result, as_json);
      const auto checkpoint_out = parser.get("checkpoint-out");
      if (!checkpoint_out.empty()) {
        sim::save_checkpoint(process->snapshot(), checkpoint_out);
        std::fprintf(stderr, "[checkpoint] saved %s\n",
                     checkpoint_out.c_str());
      }
    } else if (process_name == "modcapped") {
      core::ModCappedConfig config;
      config.n = n;
      config.capacity = static_cast<std::uint32_t>(parser.get_uint("c"));
      config.lambda_n = lambda_n;
      core::ModCapped process(config, core::Engine(seed));
      const auto result = run_with_trace(process, spec, trace_path);
      report("MODCAPPED", n, lambda, result, as_json);
    } else if (process_name == "greedy") {
      core::BatchGreedyConfig config;
      config.n = n;
      config.d = static_cast<std::uint32_t>(parser.get_uint("d"));
      config.lambda_n = lambda_n;
      core::BatchGreedy process(config, core::Engine(seed));
      const auto result = run_with_trace(process, spec, trace_path);
      report("GREEDY[" + std::to_string(config.d) + "]", n, lambda, result,
             as_json);
    } else if (process_name == "capped-greedy") {
      core::CappedGreedyConfig config;
      config.n = n;
      config.capacity = static_cast<std::uint32_t>(parser.get_uint("c"));
      config.d = static_cast<std::uint32_t>(parser.get_uint("d"));
      config.lambda_n = lambda_n;
      core::CappedGreedy process(config, core::Engine(seed));
      const auto result = run_with_trace(process, spec, trace_path);
      report("CAPPED-GREEDY", n, lambda, result, as_json);
    } else {
      throw ContractViolation("simulate: unknown --process '" +
                              process_name + "'");
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return 0;
}
