// Quickstart: the smallest complete use of the library.
//
// Builds CAPPED(c = 2, λ = 0.9) on n = 4096 servers, runs it to steady
// state, and prints the pool size and waiting-time summary next to the
// paper's Theorem 2 guarantees.
//
//   $ ./quickstart
#include <cstdio>

#include "analysis/bounds.hpp"
#include "core/capped.hpp"
#include "sim/config.hpp"
#include "sim/runner.hpp"

int main() {
  using namespace iba;

  // 1. Describe the system: n servers, buffer size c, arrival rate λ.
  sim::SimConfig config;
  config.n = 4096;
  config.capacity = 2;
  config.lambda_n = 4096 * 9 / 10;  // λ = 0.9, λ·n integral
  config.burn_in = sim::suggested_burn_in(config.lambda());
  config.auto_burn_in = false;
  config.measure_rounds = 1000;
  config.seed = 42;

  // 2. Run: burn-in to steady state, then measure 1000 rounds.
  const sim::RunResult result = sim::run_capped(config);

  // 3. Compare with the paper's Theorem 2.
  const double lambda = config.lambda();
  const double pool_bound =
      analysis::pool_bound_thm2(config.n, lambda, config.capacity);
  const double wait_bound =
      analysis::wait_bound_thm2(config.n, lambda, config.capacity);

  std::printf("CAPPED(c=%u, lambda=%.2f) on n=%u bins, %llu rounds "
              "(after %llu burn-in)\n\n",
              config.capacity, lambda, config.n,
              static_cast<unsigned long long>(result.measured_rounds),
              static_cast<unsigned long long>(result.burn_in_used));
  std::printf("pool size      : avg %.1f balls (%.4f per bin)\n",
              result.pool.mean(), result.normalized_pool.mean());
  std::printf("                 Theorem 2 bound: %.0f balls (w.h.p.)\n",
              pool_bound);
  std::printf("waiting time   : avg %.2f rounds, max %llu rounds\n",
              result.wait_mean,
              static_cast<unsigned long long>(result.wait_max));
  std::printf("                 Theorem 2 bound: %.1f rounds (w.h.p.)\n",
              wait_bound);
  std::printf("suggested c    : %u (sweet spot ~ sqrt(ln(1/(1-lambda))))\n",
              analysis::suggest_capacity(lambda));
  std::printf("throughput     : %.0f rounds/s, %.1f ns per request\n",
              result.rounds_per_second, result.ns_per_ball);
  return 0;
}
