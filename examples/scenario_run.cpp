// scenario_run — execute a declarative scenario file and emit its
// canonical result artifact (docs/SCENARIOS.md).
//
//   $ ./scenario_run --scenario scenarios/steady_baseline.scn --out run.artifact
//   $ ./scenario_run --scenario s.scn --kernel scalar --out a2.artifact
//     # byte-identical to the bin-major run: cmp run.artifact a2.artifact
//   $ ./scenario_run --scenario s.scn --golden tests/goldens/s.artifact
//     # regression check: exit 3 on any byte difference
//   $ ./scenario_run --scenario s.scn --checkpoint-out s.ckpt --stop-after 400
//   $ ./scenario_run --scenario s.scn --resume s.ckpt --out resumed.artifact
//     # resumed.artifact is byte-identical to the uninterrupted run
//
// Exit codes: 0 success, 1 runtime error, 2 usage error (bad flag,
// malformed scenario — the diagnostic names file:line, section and key),
// 3 expectation/audit/golden violation.
#include <cstdio>
#include <optional>
#include <string>

#include "artifact/artifact.hpp"
#include "fault/schedule.hpp"
#include "io/cli.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "telemetry/flight_recorder.hpp"

namespace {

using namespace iba;

int run(const io::ArgParser& parser) {
  const std::string path = parser.get("scenario");
  if (path.empty()) {
    throw io::UsageError("scenario_run: --scenario is required");
  }
  const scenario::Scenario scn = scenario::load_scenario_file(path);

  scenario::RunOptions options;
  if (parser.provided("kernel")) {
    core::RoundKernel kernel{};
    if (!core::kernel_from_string(parser.get("kernel"), kernel)) {
      throw io::UsageError(
          "scenario_run: --kernel expects bin-major or scalar, got '" +
          parser.get("kernel") + "'");
    }
    options.kernel = kernel;
  }
  if (parser.provided("shards")) {
    options.shards =
        static_cast<std::uint32_t>(parser.get_uint_range("shards", 1, 256));
  }
  if (parser.provided("seed")) options.seed = parser.get_uint("seed");
  options.checkpoint_out = parser.get("checkpoint-out");
  options.checkpoint_every = parser.get_uint("checkpoint-every");
  options.resume = parser.get("resume");
  options.stop_after = parser.get_uint("stop-after");
  if (options.checkpoint_every > 0 && options.checkpoint_out.empty()) {
    throw io::UsageError(
        "scenario_run: --checkpoint-every requires --checkpoint-out");
  }
  if (options.stop_after > 0 && options.checkpoint_out.empty()) {
    throw io::UsageError(
        "scenario_run: --stop-after requires --checkpoint-out");
  }
  options.timeseries_out = parser.get("timeseries-out");
  options.flight_recorder = parser.get("flight-recorder");
  options.debug_trigger = parser.get("debug-trigger");
  if (!options.debug_trigger.empty()) {
    telemetry::TriggerKind kind{};
    if (!telemetry::trigger_from_name(options.debug_trigger, kind)) {
      throw io::UsageError(
          "scenario_run: --debug-trigger expects auditor-violation | "
          "expectation-failure | shed-spike | resume-mismatch | manual, "
          "got '" +
          options.debug_trigger + "'");
    }
  }

  const std::string out_path = parser.get("out");
  const std::string golden_path = parser.get("golden");
  const bool force = parser.get_bool("force");
  io::guard_overwrite(out_path, force, "--out");
  io::guard_overwrite(options.timeseries_out, force, "--timeseries-out");
  io::guard_overwrite(options.flight_recorder, force, "--flight-recorder");

  if (parser.get_bool("print-canonical")) {
    std::fputs(scn.canonical_text().c_str(), stdout);
    return 0;
  }

  std::fprintf(stderr,
               "[scenario] %s (digest %s): n=%u c=%u rounds=%llu+%llu\n",
               scn.name.c_str(), scn.digest().c_str(), scn.n, scn.capacity,
               static_cast<unsigned long long>(scn.burn_in),
               static_cast<unsigned long long>(scn.rounds));

  const scenario::RunOutcome outcome = scenario::run_scenario(scn, options);
  if (!outcome.complete) {
    std::fprintf(stderr,
                 "[scenario] stopped after %llu rounds, checkpoint at %s\n",
                 static_cast<unsigned long long>(outcome.rounds_done),
                 options.checkpoint_out.c_str());
    return 0;
  }

  const std::string text = artifact::render_artifact(outcome.artifact);
  if (!out_path.empty()) {
    artifact::write_artifact(outcome.artifact, out_path);
    std::fprintf(stderr, "[scenario] wrote %s (%zu bytes)\n",
                 out_path.c_str(), text.size());
  } else if (golden_path.empty()) {
    std::fputs(text.c_str(), stdout);
  }

  for (const std::string& failure : outcome.failures) {
    std::fprintf(stderr, "[scenario] FAIL %s\n", failure.c_str());
  }

  if (!golden_path.empty()) {
    const std::string golden = artifact::read_artifact_text(golden_path);
    if (golden != text) {
      std::fprintf(stderr,
                   "[scenario] FAIL golden mismatch: %s differs from this "
                   "run (%zu vs %zu bytes); regenerate with "
                   "scripts/update_goldens.sh if the change is intended\n",
                   golden_path.c_str(), golden.size(), text.size());
      return 3;
    }
    std::fprintf(stderr, "[scenario] golden match: %s\n",
                 golden_path.c_str());
  }

  return outcome.ok() ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  io::ArgParser parser("scenario_run",
                       "run a declarative scenario file and emit its "
                       "canonical result artifact");
  parser.add_flag("scenario", "scenario file to run (required)", "");
  parser.add_flag("out",
                  "write the artifact here (default: print to stdout)", "");
  parser.add_flag("golden",
                  "compare the artifact against this golden file; any byte "
                  "difference exits 3",
                  "");
  parser.add_flag("kernel",
                  "override the scenario's kernel: bin-major | scalar "
                  "(artifact bytes are invariant in this)",
                  "");
  parser.add_flag("shards",
                  "override the scenario's shard count (artifact bytes are "
                  "invariant in this)",
                  "");
  parser.add_flag("seed", "override the scenario's seed", "");
  parser.add_flag("checkpoint-out", "checkpoint path (with .progress sidecar)",
                  "");
  parser.add_flag("checkpoint-every",
                  "checkpoint cadence in rounds (requires --checkpoint-out; "
                  "0 = scenario's run.checkpoint-every)",
                  "0");
  parser.add_flag("resume", "resume from this checkpoint", "");
  parser.add_flag("stop-after",
                  "stop after this many total rounds and checkpoint "
                  "(kill-and-resume testing; requires --checkpoint-out)",
                  "0");
  parser.add_flag("timeseries-out",
                  "write the multi-tier time series here after a complete "
                  "run (forces recording on; bytes depend only on scenario "
                  "semantics + seed)",
                  "");
  parser.add_flag("flight-recorder",
                  "arm the flight recorder; the postmortem bundle lands "
                  "here when a trigger fires",
                  "");
  parser.add_flag("debug-trigger",
                  "fire this trigger after the run for exercising the "
                  "bundle path (auditor-violation | expectation-failure | "
                  "shed-spike | resume-mismatch | manual)",
                  "");
  parser.add_flag("print-canonical",
                  "print the canonical scenario text and digest inputs, "
                  "then exit",
                  "false");
  parser.add_flag("force", "overwrite existing output files", "false");

  try {
    if (!parser.parse_or_exit(argc, argv)) return 0;
    return run(parser);
  } catch (const scenario::ScenarioError& error) {
    io::fail_usage(error.what());
  } catch (const fault::ScheduleError& error) {
    io::fail_usage(error.what());
  } catch (const iba::ContractViolation& error) {
    io::fail_usage(error.what());  // covers io::UsageError too
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
