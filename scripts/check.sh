#!/usr/bin/env bash
# Build and run the test suite under the default preset and under ASan.
#
#   scripts/check.sh            # default + asan
#   scripts/check.sh default    # just one preset
#   scripts/check.sh ubsan no-telemetry
#
# Any argument must name a configure preset from CMakePresets.json.
set -euo pipefail

cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan)
fi

jobs=$(nproc 2>/dev/null || echo 2)

for preset in "${presets[@]}"; do
  echo "==> [$preset] configure"
  cmake --preset "$preset"
  echo "==> [$preset] build"
  cmake --build --preset "$preset" -j "$jobs"
  echo "==> [$preset] test"
  ctest --preset "$preset"
done

echo "All presets passed: ${presets[*]}"
