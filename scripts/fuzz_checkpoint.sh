#!/usr/bin/env bash
# Deterministic corruption fuzz of the checkpoint loader: generate a
# real checkpoint with the simulate example, then feed the loader a
# battery of bit-flipped, truncated, and garbage variants. Every corrupt
# file must be REJECTED with a clean non-zero exit (no crash, no signal
# death, no silent acceptance); the pristine file must still resume.
#
#   scripts/fuzz_checkpoint.sh [build-dir]     # default: build
#
# Exits 0 when every case behaves, 1 otherwise.
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"
simulate="$build_dir/examples/simulate"

if [ ! -x "$simulate" ]; then
  echo "error: $simulate not built (cmake --build $build_dir)" >&2
  exit 1
fi

work="$(mktemp -d "${TMPDIR:-/tmp}/iba_fuzz_ckpt.XXXXXX")"
trap 'rm -rf "$work"' EXIT
ckpt="$work/seed.ckpt"

echo "==> generating seed checkpoint"
"$simulate" --n 512 --lambda 0.875 --rounds 80 --seed 7 \
  --faults 'crash@30:bins=0-255,down=10;random-crash:p=0.01,down=5' \
  --checkpoint-out "$ckpt" --checkpoint-every 40 >/dev/null
[ -s "$ckpt" ] || { echo "FAIL: no checkpoint written" >&2; exit 1; }

# Resuming the pristine file must work (exit 0).
if ! "$simulate" --resume "$ckpt" --rounds 20 >/dev/null 2>&1; then
  echo "FAIL: pristine checkpoint rejected" >&2
  exit 1
fi
echo "    pristine checkpoint resumes: ok"

size=$(stat -c %s "$ckpt")
fails=0
cases=0

# try <name> <file>: the loader must exit 1 (clean rejection) — not 0
# (silent acceptance) and not >=128 (killed by a signal).
try() {
  local name="$1" file="$2" rc=0
  "$simulate" --resume "$file" --rounds 5 >/dev/null 2>&1 || rc=$?
  cases=$((cases + 1))
  if [ "$rc" -eq 0 ]; then
    echo "FAIL: $name was accepted" >&2
    fails=$((fails + 1))
  elif [ "$rc" -ge 128 ]; then
    echo "FAIL: $name crashed the loader (exit $rc)" >&2
    fails=$((fails + 1))
  fi
}

echo "==> bit flips (deterministic offsets)"
# Offsets spread over the file: header, early body, middle, tail.
for offset in 0 5 17 40 100 $((size / 4)) $((size / 2)) \
              $((3 * size / 4)) $((size - 2)); do
  [ "$offset" -lt "$size" ] || continue
  mutant="$work/flip_$offset"
  cp "$ckpt" "$mutant"
  # Flip one bit of the byte at `offset`.
  byte=$(dd if="$ckpt" bs=1 skip="$offset" count=1 2>/dev/null | od -An -tu1)
  flipped=$((byte ^ 4))
  printf "$(printf '\\%03o' "$flipped")" |
    dd of="$mutant" bs=1 seek="$offset" count=1 conv=notrunc 2>/dev/null
  try "bit flip at offset $offset" "$mutant"
done

echo "==> truncations"
for keep in 0 1 10 $((size / 10)) $((size / 2)) $((size - 1)); do
  mutant="$work/trunc_$keep"
  head -c "$keep" "$ckpt" > "$mutant" || true
  try "truncation to $keep bytes" "$mutant"
done

echo "==> garbage and format attacks"
printf 'not a checkpoint\n' > "$work/garbage"
try "plain-text garbage" "$work/garbage"
head -c 512 /dev/zero > "$work/zeros"
try "all-zero file" "$work/zeros"
printf 'iba-checkpoint 1 0 0\n' > "$work/downlevel"
try "downlevel v1 header" "$work/downlevel"
printf 'iba-checkpoint 2 0 999999999\n' > "$work/liar"
try "length-lying header" "$work/liar"
{ cat "$ckpt"; printf 'trailing garbage'; } > "$work/appended"
try "appended trailing bytes" "$work/appended"

# v3 control-plane corruptions. Flipping body bytes alone is caught by
# the CRC before the parser ever sees the field, so these cases rewrite
# the header with a freshly computed CRC-32 (same IEEE polynomial as
# zlib) — the mutation must then be rejected by the *named-field*
# validation layer, not the checksum.
mutate() {
  python3 - "$1" "$2" "$3" <<'PY'
import sys, zlib

mode, src, dst = sys.argv[1:4]
data = open(src, 'rb').read()
body = data[data.index(b'\n') + 1:]
version = 3

if mode == 'truncate-estimator':
    # Cut the body off 20 bytes into the estimator ring dump.
    at = body.index(b'control-estimator')
    body = body[:body.index(b'\n', at) + 20]
elif mode == 'policy-oob':
    # Config token 14 is the control policy enum; 9 is out of range.
    lines = body.split(b'\n')
    for i, line in enumerate(lines):
        if line.startswith(b'config '):
            toks = line.split()
            assert len(toks) == 20, toks
            toks[14] = b'9'
            lines[i] = b' '.join(toks)
            break
    body = b'\n'.join(lines)
elif mode == 'cooldown-flip':
    # Flip bit 40 of cooldown_until: the loader bounds it by
    # round + cooldown, so the inflated value must be rejected.
    at = body.index(b'control-controller')
    eol = body.index(b'\n', at)
    toks = body[at:eol].split()
    toks[1] = str(int(toks[1]) ^ (1 << 40)).encode()
    body = body[:at] + b' '.join(toks) + body[eol:]
elif mode == 'to-v2':
    # Downlevel a control-free v3 body to format v2: drop the six
    # control config tokens and the 'control 0' section flag.
    out = []
    for line in body.split(b'\n'):
        if line.startswith(b'config '):
            toks = line.split()
            assert len(toks) == 20, toks
            line = b' '.join(toks[:14])
        if line == b'control 0':
            continue
        out.append(line)
    body = b'\n'.join(out)
    version = 2
else:
    sys.exit('unknown mutate mode: ' + mode)

header = b'iba-checkpoint %d %d %d\n' % (
    version, zlib.crc32(body) & 0xFFFFFFFF, len(body))
open(dst, 'wb').write(header + body)
PY
}

echo "==> v3 control-plane field corruptions (CRC recomputed)"
cckpt="$work/control.ckpt"
# λ = 1 − 2⁻⁵ from c = 1 so the controller actually applies a change
# before the save: counters, cooldown and policy memory are non-trivial.
"$simulate" --n 512 --lambda 0.96875 --c 1 --rounds 80 --seed 7 \
  --control sweet-spot --c-max 8 --control-window 16 --cooldown 8 \
  --checkpoint-out "$cckpt" --checkpoint-every 40 >/dev/null
[ -s "$cckpt" ] || { echo "FAIL: no control checkpoint written" >&2; exit 1; }
if ! "$simulate" --resume "$cckpt" --rounds 20 >/dev/null 2>&1; then
  echo "FAIL: pristine control checkpoint rejected" >&2
  exit 1
fi
echo "    pristine control checkpoint resumes: ok"

mutate truncate-estimator "$cckpt" "$work/est_trunc"
try "truncated estimator block (valid CRC)" "$work/est_trunc"
mutate policy-oob "$cckpt" "$work/policy_oob"
try "control policy id out of range (valid CRC)" "$work/policy_oob"
mutate cooldown-flip "$cckpt" "$work/cooldown_flip"
try "cooldown_until bit flip (valid CRC)" "$work/cooldown_flip"

echo "==> v2 downlevel load"
# The loader keeps kMinVersion = 2: a control-free body downleveled to
# the v2 layout must still load and resume (exit 0), with control off.
mutate to-v2 "$ckpt" "$work/downlevel_v2"
cases=$((cases + 1))
if ! "$simulate" --resume "$work/downlevel_v2" --rounds 20 >/dev/null 2>&1; then
  echo "FAIL: v2 downlevel checkpoint rejected" >&2
  fails=$((fails + 1))
else
  echo "    v2 downlevel checkpoint resumes: ok"
fi

echo "==> $cases corrupt variants tested, $fails misbehaved"
if [ "$fails" -ne 0 ]; then
  exit 1
fi
echo "fuzz_checkpoint: all corrupt checkpoints cleanly rejected"
