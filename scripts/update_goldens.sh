#!/usr/bin/env bash
# Regenerate the golden artifacts for the scenario bank (tests/goldens/)
# and print a per-scenario diff summary. Run after an INTENDED behavior
# change; commit the regenerated goldens together with the change that
# caused them. CI (scenario-regression) and scenario_golden_test fail on
# any byte drift against these files.
#
#   scripts/update_goldens.sh [build-dir]   (default: build)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
runner="$build/examples/scenario_run"
goldens="$repo/tests/goldens"

if [[ ! -x "$runner" ]]; then
  echo "error: $runner not built (cmake -B build -S . && cmake --build build -j)" >&2
  exit 1
fi

mkdir -p "$goldens"
changed=0
for scn in "$repo"/scenarios/*.scn; do
  name="$(basename "$scn" .scn)"
  golden="$goldens/$name.artifact"
  fresh="$(mktemp)"
  "$runner" --scenario "$scn" --out "$fresh" --force true 2>/dev/null \
    || { echo "FAIL  $name (scenario_run exited $?)"; rm -f "$fresh"; exit 1; }
  if [[ ! -f "$golden" ]]; then
    mv "$fresh" "$golden"
    echo "NEW   $name"
    changed=1
  elif cmp -s "$golden" "$fresh"; then
    rm -f "$fresh"
    echo "OK    $name (unchanged)"
  else
    # Summarize which artifact lines moved before overwriting.
    echo "DRIFT $name:"
    diff --unified=0 "$golden" "$fresh" | grep -E '^[+-][^+-]' | sed 's/^/        /'
    mv "$fresh" "$golden"
    changed=1
  fi
done

if [[ "$changed" == 1 ]]; then
  echo
  echo "goldens updated — review the drift above and commit tests/goldens/"
else
  echo
  echo "all goldens already match"
fi
