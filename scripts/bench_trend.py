#!/usr/bin/env python3
"""Perf-regression gate over bench_kernel_throughput JSON results.

Compares a freshly measured BENCH_kernel.json against the committed
baseline and fails (exit 1) when any kernel variant regressed beyond the
tolerance band. Stdlib only — runs anywhere CI has a python3.

    $ ./build-release/bench/bench_kernel_throughput --quick true \
          --json fresh.json
    $ scripts/bench_trend.py --baseline BENCH_kernel.json \
          --fresh fresh.json --mode normalized --tolerance 0.10

Rows are keyed by (kernel, shards) and compared on balls_per_sec
(higher is better). Two modes:

  absolute    each row must reach baseline * (1 - tolerance). Right when
              baseline and fresh ran on the same machine.
  normalized  (default) per-row speed ratios fresh/baseline are computed
              and each row must reach median-of-the-OTHER-rows' ratios
              * (1 - tolerance). A uniformly slower CI runner shifts
              every ratio equally and passes; one kernel regressing
              relative to the others fails (the leave-one-out scale
              keeps the regressed row from dragging its own bar down).
              This is the mode for gating against a committed baseline
              that was measured on different hardware. A genuine
              single-kernel speedup can trip the other rows — that is
              the cue to regenerate the committed baseline.

--synthetic-slowdown PCT is a self-test hook: it slows the fastest
fresh row down by PCT percent before comparing, so CI can assert the
gate actually trips (the run must then exit 1).

Exit codes: 0 within tolerance, 1 regression detected, 2 usage/IO error.
"""

import argparse
import json
import statistics
import sys


def load_rows(path):
    """Returns {(kernel, shards): balls_per_sec} from a bench JSON."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as error:
        sys.exit(f"bench_trend: cannot read {path}: {error}")
    rows = {}
    for row in doc.get("results", []):
        key = (row.get("kernel", "?"), int(row.get("shards", 1)))
        speed = float(row.get("balls_per_sec", 0.0))
        if speed <= 0.0:
            sys.exit(f"bench_trend: {path}: row {key} has no "
                     "balls_per_sec — refusing to gate on it")
        rows[key] = speed
    if not rows:
        sys.exit(f"bench_trend: {path}: no results[] rows")
    return rows


def main():
    parser = argparse.ArgumentParser(
        description="fail when bench_kernel_throughput regressed beyond "
                    "the tolerance band")
    parser.add_argument("--baseline", default="BENCH_kernel.json",
                        help="committed baseline JSON (default: "
                             "BENCH_kernel.json)")
    parser.add_argument("--fresh", required=True,
                        help="freshly measured JSON to gate")
    parser.add_argument("--mode", choices=("absolute", "normalized"),
                        default="normalized")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional slowdown (default 0.10)")
    parser.add_argument("--synthetic-slowdown", type=float, default=0.0,
                        metavar="PCT",
                        help="self-test: slow the fastest fresh row down "
                             "by PCT%% before comparing")
    parser.add_argument("--report", default="",
                        help="also write the comparison table here")
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        sys.exit("bench_trend: --tolerance must be in [0, 1)")

    baseline = load_rows(args.baseline)
    fresh = load_rows(args.fresh)

    if args.synthetic_slowdown > 0.0:
        victim = max(fresh, key=fresh.get)
        fresh[victim] *= 1.0 - args.synthetic_slowdown / 100.0
        print(f"bench_trend: synthetic {args.synthetic_slowdown:g}% "
              f"slowdown applied to {victim[0]} shards={victim[1]}")

    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        sys.exit("bench_trend: baseline and fresh share no "
                 "(kernel, shards) rows")
    for key in sorted(set(baseline) ^ set(fresh)):
        side = "baseline" if key in baseline else "fresh"
        print(f"bench_trend: note: {key[0]} shards={key[1]} only in "
              f"{side}; skipped")

    ratios = {key: fresh[key] / baseline[key] for key in shared}

    def scale_for(key):
        if args.mode == "absolute":
            return 1.0
        others = [ratios[k] for k in shared if k != key]
        return statistics.median(others) if others else 1.0

    lines = [f"bench_trend: mode={args.mode} "
             f"tolerance={args.tolerance:.0%}"]
    failures = 0
    for key in shared:
        kernel, shards = key
        floor = scale_for(key) * (1.0 - args.tolerance)
        verdict = "ok" if ratios[key] >= floor else "REGRESSED"
        failures += verdict != "ok"
        lines.append(
            f"  {kernel:<10} shards={shards}  "
            f"baseline {baseline[key]:14,.0f} balls/s  "
            f"fresh {fresh[key]:14,.0f} balls/s  "
            f"ratio {ratios[key]:.3f}  floor {floor:.3f}  {verdict}")
    lines.append(
        f"bench_trend: {'FAIL' if failures else 'PASS'} — "
        f"{failures} of {len(shared)} row(s) below the floor")

    report = "\n".join(lines) + "\n"
    print(report, end="")
    if args.report:
        try:
            with open(args.report, "w", encoding="utf-8") as handle:
                handle.write(report)
        except OSError as error:
            sys.exit(f"bench_trend: cannot write {args.report}: {error}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
