// Unit and property tests of the CAPPED(c, λ) process: configuration
// contracts, conservation of balls, load/capacity invariants, FIFO
// semantics, determinism, and the c = ∞ degeneration to GREEDY[1].
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "core/capped.hpp"
#include "core/greedy.hpp"
#include "rng/seed.hpp"

namespace {

using iba::core::BatchGreedy;
using iba::core::BatchGreedyConfig;
using iba::core::Capped;
using iba::core::CappedConfig;
using iba::core::Engine;
using iba::core::RoundMetrics;

CappedConfig make_config(std::uint32_t n, std::uint32_t c,
                         std::uint64_t lambda_n) {
  CappedConfig config;
  config.n = n;
  config.capacity = c;
  config.lambda_n = lambda_n;
  return config;
}

TEST(CappedConfig, FromRateComputesLambdaN) {
  const auto config = CappedConfig::from_rate(1024, 0.75, 2);
  EXPECT_EQ(config.lambda_n, 768u);
  EXPECT_DOUBLE_EQ(config.lambda(), 0.75);
}

TEST(CappedConfig, FromRateRejectsNonIntegralLambdaN) {
  EXPECT_THROW((void)CappedConfig::from_rate(10, 0.123, 1),
               iba::ContractViolation);
}

TEST(CappedConfig, ValidateRejectsBadParameters) {
  EXPECT_THROW(make_config(0, 1, 0).validate(), iba::ContractViolation);
  EXPECT_THROW(make_config(8, 0, 4).validate(), iba::ContractViolation);
  EXPECT_THROW(make_config(8, 1, 9).validate(), iba::ContractViolation);
}

TEST(Capped, EmptySystemStaysEmptyWithZeroArrivals) {
  Capped process(make_config(16, 2, 0), Engine(1));
  for (int i = 0; i < 10; ++i) {
    const auto m = process.step();
    EXPECT_EQ(m.thrown, 0u);
    EXPECT_EQ(m.deleted, 0u);
    EXPECT_EQ(m.pool_size, 0u);
    EXPECT_EQ(m.total_load, 0u);
  }
}

TEST(Capped, FirstRoundBasics) {
  // Round 1 starts with empty bins: every accepted ball has age 0, and
  // with capacity ≥ 1 every bin that received a request deletes a ball
  // of waiting time 0.
  Capped process(make_config(64, 1, 32), Engine(2));
  const auto m = process.step();
  EXPECT_EQ(m.round, 1u);
  EXPECT_EQ(m.generated, 32u);
  EXPECT_EQ(m.thrown, 32u);
  EXPECT_EQ(m.accepted, m.deleted);  // c = 1: accepted bins delete same round
  EXPECT_EQ(m.wait_max, 0u);
  EXPECT_EQ(m.pool_size + m.accepted, 32u);
  EXPECT_EQ(m.total_load, 0u);  // c = 1 empties every round
}

TEST(Capped, DeterministicGivenSeed) {
  Capped a(make_config(128, 3, 96), Engine(42));
  Capped b(make_config(128, 3, 96), Engine(42));
  for (int i = 0; i < 200; ++i) {
    const auto ma = a.step();
    const auto mb = b.step();
    EXPECT_EQ(ma.pool_size, mb.pool_size);
    EXPECT_EQ(ma.deleted, mb.deleted);
    EXPECT_EQ(ma.max_load, mb.max_load);
    EXPECT_EQ(ma.wait_max, mb.wait_max);
  }
}

TEST(Capped, DifferentSeedsDiverge) {
  Capped a(make_config(128, 2, 120), Engine(1));
  Capped b(make_config(128, 2, 120), Engine(2));
  bool diverged = false;
  for (int i = 0; i < 100 && !diverged; ++i) {
    diverged = a.step().pool_size != b.step().pool_size;
  }
  EXPECT_TRUE(diverged);
}

TEST(Capped, StepWithChoicesRejectsWrongCount) {
  Capped process(make_config(8, 1, 4), Engine(3));
  std::vector<std::uint32_t> too_few(3, 0);
  EXPECT_THROW((void)process.step_with_choices(too_few),
               iba::ContractViolation);
}

TEST(Capped, StepWithChoicesIsDeterministicAllocation) {
  // All balls choose bin 0 with capacity 2: exactly two accepted, the
  // rest stay in the pool; one deletion at the end of the round.
  Capped process(make_config(4, 2, 4), Engine(4));
  const std::vector<std::uint32_t> choices(4, 0);
  const auto m = process.step_with_choices(choices);
  EXPECT_EQ(m.accepted, 2u);
  EXPECT_EQ(m.pool_size, 2u);
  EXPECT_EQ(m.deleted, 1u);
  EXPECT_EQ(process.load(0), 1u);
  EXPECT_EQ(process.load(1), 0u);
}

TEST(Capped, OldestFirstAcceptance) {
  // Force a survivor, then make old and new balls compete for one bin:
  // the survivor (older) must win the slot.
  Capped process(make_config(2, 1, 2), Engine(5));
  // Round 1: both balls to bin 0 → one accepted+deleted, one survivor.
  (void)process.step_with_choices(std::vector<std::uint32_t>{0, 0});
  ASSERT_EQ(process.pool_size(), 1u);
  // Round 2: survivor (label 1) and two new balls (label 2) all to bin 1.
  // Pool order is oldest-first, so choices[0] belongs to the survivor.
  const auto m = process.step_with_choices(std::vector<std::uint32_t>{1, 1, 1});
  EXPECT_EQ(m.accepted, 1u);
  EXPECT_EQ(m.deleted, 1u);
  // The deleted ball must be the survivor: age 1 at round 2.
  EXPECT_EQ(m.wait_max, 1u);
  EXPECT_EQ(m.pool_size, 2u);  // both new balls rejected
}

struct SweepParam {
  std::uint32_t n;
  std::uint32_t c;
  std::uint64_t lambda_n;
};

class CappedSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CappedSweep, ConservationAndInvariantsOverManyRounds) {
  const auto param = GetParam();
  Capped process(make_config(param.n, param.c, param.lambda_n),
                 Engine(iba::rng::derive_seed(99, param.n + param.c)));
  std::uint64_t deleted_total = 0;
  for (int round = 1; round <= 400; ++round) {
    const auto m = process.step();
    deleted_total += m.deleted;

    // Conservation: generated = pool + in-bins + deleted, every round.
    EXPECT_EQ(process.generated_total(),
              m.pool_size + m.total_load + process.deleted_total());
    EXPECT_EQ(process.deleted_total(), deleted_total);

    // Per-round flow: thrown = pool(t−1) + generated = accepted + survivors.
    EXPECT_EQ(m.thrown, m.accepted + m.pool_size);

    // Capacity invariant.
    EXPECT_LE(m.max_load, param.c);

    // A bin deletes iff it is non-empty after allocation; deletions are
    // bounded by bins and by available balls.
    EXPECT_LE(m.deleted, param.n);
    EXPECT_LE(m.deleted, m.total_load + m.deleted);

    // Wait stats belong to deleted balls.
    EXPECT_EQ(m.wait_count, m.deleted);
  }
  // Per-bin load within capacity.
  for (std::uint32_t bin = 0; bin < param.n; ++bin) {
    EXPECT_LE(process.load(bin), param.c);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, CappedSweep,
    ::testing::Values(SweepParam{16, 1, 8}, SweepParam{16, 1, 15},
                      SweepParam{64, 2, 48}, SweepParam{64, 4, 63},
                      SweepParam{256, 1, 192}, SweepParam{256, 3, 255},
                      SweepParam{1024, 2, 1023}, SweepParam{32, 8, 31},
                      SweepParam{128, 5, 64}, SweepParam{512, 2, 511}));

TEST(Capped, WaitRecorderMatchesRoundMetrics) {
  Capped process(make_config(32, 2, 24), Engine(7));
  double wait_sum = 0;
  std::uint64_t wait_count = 0, wait_max = 0;
  for (int i = 0; i < 100; ++i) {
    const auto m = process.step();
    wait_sum += m.wait_sum;
    wait_count += m.wait_count;
    wait_max = std::max(wait_max, m.wait_max);
  }
  EXPECT_EQ(process.waits().count(), wait_count);
  EXPECT_EQ(process.waits().max(), wait_max);
  if (wait_count > 0) {
    EXPECT_NEAR(process.waits().mean(),
                wait_sum / static_cast<double>(wait_count), 1e-9);
  }
}

TEST(Capped, ResetWaitStatsKeepsDynamics) {
  Capped process(make_config(32, 2, 24), Engine(8));
  for (int i = 0; i < 50; ++i) (void)process.step();
  const auto pool_before = process.pool_size();
  process.reset_wait_stats();
  EXPECT_EQ(process.waits().count(), 0u);
  EXPECT_EQ(process.pool_size(), pool_before);
}

TEST(Capped, FullSaturationLambdaOne) {
  // λ = 1: arrivals equal service capacity; pool grows slowly (Θ(√n)-ish
  // fluctuations) but the process must stay well-defined.
  Capped process(make_config(64, 2, 64), Engine(9));
  for (int i = 0; i < 200; ++i) {
    const auto m = process.step();
    EXPECT_EQ(m.generated, 64u);
    EXPECT_LE(m.max_load, 2u);
  }
  EXPECT_EQ(process.generated_total(), 200u * 64u);
}

TEST(Capped, InfiniteCapacityNeverRejects) {
  CappedConfig config = make_config(32, Capped::kInfiniteCapacity, 24);
  Capped process(config, Engine(10));
  for (int i = 0; i < 200; ++i) {
    const auto m = process.step();
    EXPECT_EQ(m.accepted, m.thrown);
    EXPECT_EQ(m.pool_size, 0u);
  }
}

TEST(Capped, InfiniteCapacityMatchesBatchGreedy1) {
  // CAPPED(∞, λ) ≡ GREEDY[1]: same engine ⇒ identical trajectories.
  // (Both draw exactly λn uniform bins per round in arrival order:
  // CAPPED's pool is always empty, so the thrown balls are the new ones.)
  CappedConfig cc = make_config(64, Capped::kInfiniteCapacity, 48);
  BatchGreedyConfig gc;
  gc.n = 64;
  gc.d = 1;
  gc.lambda_n = 48;
  Capped capped(cc, Engine(123));
  BatchGreedy greedy(gc, Engine(123));
  for (int i = 0; i < 300; ++i) {
    const auto mc = capped.step();
    const auto mg = greedy.step();
    ASSERT_EQ(mc.total_load, mg.total_load) << "round " << i;
    ASSERT_EQ(mc.max_load, mg.max_load) << "round " << i;
    ASSERT_EQ(mc.deleted, mg.deleted) << "round " << i;
    ASSERT_EQ(mc.wait_max, mg.wait_max) << "round " << i;
  }
  EXPECT_EQ(capped.waits().count(), greedy.waits().count());
  EXPECT_NEAR(capped.waits().mean(), greedy.waits().mean(), 1e-12);
}

}  // namespace
