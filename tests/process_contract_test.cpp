// Cross-process contract suite: every round-based process in the
// library, driven through the Checked<P> flow-invariant wrapper and the
// generic runner, under one typed test. Guards the AllocationProcess
// concept's semantics as the zoo grows.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/adler_fifo.hpp"
#include "core/becchetti.hpp"
#include "core/capped.hpp"
#include "core/capped_greedy.hpp"
#include "core/greedy.hpp"
#include "core/hetero_capped.hpp"
#include "core/modcapped.hpp"
#include "core/reallocation.hpp"
#include "sim/runner.hpp"
#include "sim/trace.hpp"

namespace {

using namespace iba;
using core::Engine;

// Factory types: each makes a small instance of one process and states
// which flow checks apply to it.
struct CappedFactory {
  using Process = core::Capped;
  static Process make() {
    core::CappedConfig config;
    config.n = 128;
    config.capacity = 2;
    config.lambda_n = 96;
    return Process(config, Engine(1));
  }
  static sim::CheckOptions checks() { return {}; }
};

struct CappedInfiniteFactory {
  using Process = core::Capped;
  static Process make() {
    core::CappedConfig config;
    config.n = 128;
    config.capacity = core::Capped::kInfiniteCapacity;
    config.lambda_n = 96;
    return Process(config, Engine(2));
  }
  static sim::CheckOptions checks() { return {}; }
};

struct ModCappedFactory {
  using Process = core::ModCapped;
  static Process make() {
    core::ModCappedConfig config;
    config.n = 64;
    config.capacity = 3;
    config.lambda_n = 48;
    config.m_star = 300;
    return Process(config, Engine(3));
  }
  static sim::CheckOptions checks() { return {}; }
};

struct BatchGreedyFactory {
  using Process = core::BatchGreedy;
  static Process make() {
    return Process({.n = 128, .d = 2, .lambda_n = 96}, Engine(4));
  }
  static sim::CheckOptions checks() { return {}; }
};

struct CappedGreedyFactory {
  using Process = core::CappedGreedy;
  static Process make() {
    core::CappedGreedyConfig config;
    config.n = 128;
    config.capacity = 2;
    config.d = 2;
    config.lambda_n = 96;
    return Process(config, Engine(5));
  }
  static sim::CheckOptions checks() { return {}; }
};

struct HeteroFactory {
  using Process = core::HeteroCapped;
  static Process make() {
    return Process(core::HeteroCappedConfig::uniform(128, 2, 96), Engine(6));
  }
  static sim::CheckOptions checks() { return {}; }
};

struct BecchettiFactory {
  using Process = core::RepeatedBallsIntoBins;
  static Process make() {
    return core::RepeatedBallsIntoBins::uniform(128, Engine(7));
  }
  static sim::CheckOptions checks() {
    sim::CheckOptions options;
    options.check_wait_counts = false;  // no per-ball waiting times
    return options;
  }
};

struct ReallocationFactory {
  using Process = core::SequentialReallocation;
  static Process make() {
    return core::SequentialReallocation::round_robin(128, 2, Engine(8));
  }
  static sim::CheckOptions checks() {
    sim::CheckOptions options;
    options.check_wait_counts = false;
    options.check_pool_flow = false;  // reallocation has no pool semantics
    options.check_load_flow = false;  // accepted = deleted = n by design
    return options;
  }
};

struct AdlerFactory {
  using Process = core::AdlerFifo;
  static Process make() {
    return Process({.n = 256, .d = 2, .m = 10}, Engine(9));
  }
  static sim::CheckOptions checks() {
    sim::CheckOptions options;
    options.check_load_flow = false;  // copies make load ≠ accepted − deleted
    return options;
  }
};

template <typename Factory>
class ProcessContract : public ::testing::Test {};

using Factories =
    ::testing::Types<CappedFactory, CappedInfiniteFactory, ModCappedFactory,
                     BatchGreedyFactory, CappedGreedyFactory, HeteroFactory,
                     BecchettiFactory, ReallocationFactory, AdlerFactory>;
TYPED_TEST_SUITE(ProcessContract, Factories);

TYPED_TEST(ProcessContract, RoundsAreSequentialAndFlowsConsistent) {
  auto process = TypeParam::make();
  sim::Checked checked(process, TypeParam::checks());
  for (int round = 1; round <= 250; ++round) {
    const auto m = checked.step();
    ASSERT_EQ(m.round, static_cast<std::uint64_t>(round));
    ASSERT_LE(m.deleted, process.n());
  }
  EXPECT_EQ(checked.violations(), 0u)
      << (checked.violation_log().empty() ? "?"
                                          : checked.violation_log()[0]);
}

TYPED_TEST(ProcessContract, WorksWithGenericRunner) {
  auto process = TypeParam::make();
  sim::RunSpec spec;
  spec.burn_in = 40;
  spec.auto_burn_in = false;
  spec.measure_rounds = 60;
  const auto result = sim::run_experiment(process, spec);
  EXPECT_EQ(result.measured_rounds, 60u);
  EXPECT_EQ(result.pool.count(), 60u);
  EXPECT_GE(result.system_load.mean(), 0.0);
}

TYPED_TEST(ProcessContract, DeterministicAcrossInstances) {
  auto a = TypeParam::make();
  auto b = TypeParam::make();
  for (int round = 0; round < 100; ++round) {
    const auto ma = a.step();
    const auto mb = b.step();
    ASSERT_EQ(ma.total_load, mb.total_load) << "round " << round;
    ASSERT_EQ(ma.max_load, mb.max_load) << "round " << round;
    ASSERT_EQ(ma.deleted, mb.deleted) << "round " << round;
  }
}

}  // namespace
