// Tests for histograms, P² quantiles, reservoir sampling, ECDF, bootstrap
// CIs, and the burn-in / autocorrelation diagnostics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "rng/bounded.hpp"
#include "rng/xoshiro256.hpp"
#include "stats/autocorrelation.hpp"
#include "stats/bootstrap.hpp"
#include "stats/ecdf.hpp"
#include "stats/histogram.hpp"
#include "stats/p2_quantile.hpp"
#include "stats/reservoir.hpp"

namespace {

using namespace iba::stats;

TEST(Histogram, BinEdgesAndCounts) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_EQ(h.bin_lo(0), 0.0);
  EXPECT_EQ(h.bin_hi(0), 2.0);
  EXPECT_EQ(h.bin_lo(4), 8.0);
  h.add(0.0);
  h.add(1.999);
  h.add(2.0);
  h.add(9.999);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 1.0, 2);
  h.add(-0.5);
  h.add(1.0);
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 0.0, 3), iba::ContractViolation);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), iba::ContractViolation);
}

TEST(Log2Histogram, DyadicBinning) {
  Log2Histogram h;
  h.add(0);   // bin 0
  h.add(1);   // bin 1: [1, 2)
  h.add(2);   // bin 2: [2, 4)
  h.add(3);   // bin 2
  h.add(4);   // bin 3: [4, 8)
  h.add(7);   // bin 3
  h.add(8);   // bin 4
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 2u);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.max(), 8u);
  EXPECT_EQ(Log2Histogram::bin_lo(3), 4u);
  EXPECT_EQ(Log2Histogram::bin_hi(3), 8u);
}

TEST(Log2Histogram, QuantileUpperBoundBracketsExact) {
  Log2Histogram h;
  for (std::uint64_t v = 0; v < 1000; ++v) h.add(v);
  const auto q50 = h.quantile_upper_bound(0.5);
  EXPECT_GE(q50, 499u);   // not below the exact median
  EXPECT_LE(q50, 1023u);  // within the dyadic bin of the median
  EXPECT_EQ(h.quantile_upper_bound(1.0), 1023u);
}

TEST(Log2Histogram, MergeAddsCounts) {
  Log2Histogram a, b;
  a.add(1);
  a.add(100);
  b.add(5000);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.max(), 5000u);
}

TEST(P2Quantile, ExactForSmallSamples) {
  P2Quantile q(0.5);
  q.add(3);
  EXPECT_EQ(q.value(), 3.0);
  q.add(1);
  q.add(2);
  EXPECT_EQ(q.value(), 2.0);  // median of {1,2,3}
}

TEST(P2Quantile, RejectsDegenerateQuantile) {
  EXPECT_THROW(P2Quantile(0.0), iba::ContractViolation);
  EXPECT_THROW(P2Quantile(1.0), iba::ContractViolation);
}

TEST(P2Quantile, ConvergesOnUniform) {
  iba::rng::Xoshiro256pp eng(11);
  P2Quantile p50(0.5), p95(0.95);
  for (int i = 0; i < 100000; ++i) {
    const double u = iba::rng::uniform01(eng);
    p50.add(u);
    p95.add(u);
  }
  EXPECT_NEAR(p50.value(), 0.5, 0.02);
  EXPECT_NEAR(p95.value(), 0.95, 0.02);
}

TEST(P2Quantile, ConvergesOnSkewedData) {
  iba::rng::Xoshiro256pp eng(12);
  P2Quantile p90(0.9);
  // Exp(1): true p90 = ln 10 ≈ 2.3026.
  for (int i = 0; i < 200000; ++i) {
    p90.add(-std::log(iba::rng::uniform01_open_low(eng)));
  }
  EXPECT_NEAR(p90.value(), std::log(10.0), 0.1);
}

TEST(Reservoir, KeepsEverythingBelowCapacity) {
  iba::rng::Xoshiro256pp eng(1);
  ReservoirSample<int> r(10);
  for (int i = 0; i < 5; ++i) r.add(eng, i);
  EXPECT_EQ(r.sample().size(), 5u);
  EXPECT_EQ(r.seen(), 5u);
}

TEST(Reservoir, UniformInclusionProbability) {
  // Each of 1000 values should land in a 100-slot reservoir w.p. 0.1;
  // check inclusion frequency of a fixed element across many trials.
  int included = 0;
  const int kTrials = 2000;
  for (int trial = 0; trial < kTrials; ++trial) {
    iba::rng::Xoshiro256pp eng(static_cast<std::uint64_t>(trial) + 99);
    ReservoirSample<int> r(100);
    for (int v = 0; v < 1000; ++v) r.add(eng, v);
    const auto& s = r.sample();
    included += std::count(s.begin(), s.end(), 123) > 0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(included) / kTrials, 0.1, 0.03);
}

TEST(Ecdf, CdfAndQuantile) {
  Ecdf e({4.0, 1.0, 3.0, 2.0});
  EXPECT_EQ(e.cdf(0.5), 0.0);
  EXPECT_EQ(e.cdf(1.0), 0.25);
  EXPECT_EQ(e.cdf(2.5), 0.5);
  EXPECT_EQ(e.cdf(100.0), 1.0);
  EXPECT_EQ(e.quantile(0.0), 1.0);
  EXPECT_EQ(e.quantile(0.5), 2.0);
  EXPECT_EQ(e.quantile(1.0), 4.0);
}

TEST(Ecdf, KsDistanceIdenticalAndDisjoint) {
  Ecdf a({1, 2, 3, 4, 5});
  Ecdf b({1, 2, 3, 4, 5});
  EXPECT_NEAR(Ecdf::ks_distance(a, b), 0.0, 1e-12);
  Ecdf c({10, 11, 12});
  EXPECT_NEAR(Ecdf::ks_distance(a, c), 1.0, 1e-12);
}

TEST(Ecdf, KsDistanceDetectsShift) {
  iba::rng::Xoshiro256pp eng(5);
  std::vector<double> xs, ys;
  for (int i = 0; i < 20000; ++i) {
    xs.push_back(iba::rng::uniform01(eng));
    ys.push_back(iba::rng::uniform01(eng) + 0.25);
  }
  EXPECT_NEAR(Ecdf::ks_distance(Ecdf(xs), Ecdf(ys)), 0.25, 0.02);
}

TEST(Bootstrap, CiContainsTrueMeanOfConstantSample) {
  iba::rng::Xoshiro256pp eng(6);
  const auto ci = bootstrap_mean_ci(eng, {5.0, 5.0, 5.0, 5.0});
  EXPECT_EQ(ci.point, 5.0);
  EXPECT_EQ(ci.lo, 5.0);
  EXPECT_EQ(ci.hi, 5.0);
}

TEST(Bootstrap, CiWidthShrinksWithSampleSize) {
  iba::rng::Xoshiro256pp eng(7);
  std::vector<double> small, large;
  for (int i = 0; i < 20; ++i) small.push_back(iba::rng::uniform01(eng));
  for (int i = 0; i < 2000; ++i) large.push_back(iba::rng::uniform01(eng));
  const auto ci_small = bootstrap_mean_ci(eng, small);
  const auto ci_large = bootstrap_mean_ci(eng, large);
  EXPECT_LT(ci_large.half_width(), ci_small.half_width());
  EXPECT_LE(ci_large.lo, ci_large.point);
  EXPECT_GE(ci_large.hi, ci_large.point);
}

TEST(Bootstrap, RejectsBadInput) {
  iba::rng::Xoshiro256pp eng(8);
  EXPECT_THROW((void)bootstrap_mean_ci(eng, {}), iba::ContractViolation);
  EXPECT_THROW((void)bootstrap_mean_ci(eng, {1.0}, 1.5),
               iba::ContractViolation);
}

TEST(Autocorrelation, WhiteNoiseNearZero) {
  iba::rng::Xoshiro256pp eng(9);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(iba::rng::uniform01(eng));
  EXPECT_NEAR(autocorrelation(xs, 1), 0.0, 0.02);
  EXPECT_NEAR(autocorrelation(xs, 10), 0.0, 0.02);
}

TEST(Autocorrelation, PersistentSeriesNearOne) {
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(i < 500 ? 0.0 : 1.0);
  EXPECT_GT(autocorrelation(xs, 1), 0.95);
}

TEST(Autocorrelation, DegenerateInputs) {
  EXPECT_EQ(autocorrelation({}, 1), 0.0);
  EXPECT_EQ(autocorrelation({1.0, 1.0, 1.0}, 1), 0.0);  // zero variance
  EXPECT_EQ(autocorrelation({1.0, 2.0}, 5), 0.0);       // lag too large
}

TEST(EffectiveSampleSize, IidKeepsMostSamples) {
  iba::rng::Xoshiro256pp eng(10);
  std::vector<double> xs;
  for (int i = 0; i < 10000; ++i) xs.push_back(iba::rng::uniform01(eng));
  EXPECT_GT(effective_sample_size(xs), 5000.0);
}

TEST(EffectiveSampleSize, CorrelatedSeriesShrinks) {
  iba::rng::Xoshiro256pp eng(11);
  std::vector<double> xs;
  double x = 0.0;
  for (int i = 0; i < 10000; ++i) {
    x = 0.95 * x + iba::rng::uniform01(eng);  // AR(1), strongly correlated
    xs.push_back(x);
  }
  EXPECT_LT(effective_sample_size(xs), 2000.0);
}

TEST(MserTruncation, DetectsWarmupRamp) {
  // 200 rounds of ramp then 1000 rounds of stationary noise: the cut
  // should land near the end of the ramp.
  iba::rng::Xoshiro256pp eng(12);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(static_cast<double>(i));
  for (int i = 0; i < 1000; ++i)
    xs.push_back(200.0 + iba::rng::uniform01(eng));
  const auto cut = mser_truncation_point(xs);
  EXPECT_GE(cut, 150u);
  EXPECT_LE(cut, 400u);
}

TEST(MserTruncation, StationarySeriesCutsLittle) {
  iba::rng::Xoshiro256pp eng(13);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(iba::rng::uniform01(eng));
  EXPECT_LE(mser_truncation_point(xs), 300u);
}

TEST(WindowsAgree, DetectsStabilization) {
  std::vector<double> ramp;
  for (int i = 0; i < 100; ++i) ramp.push_back(i);
  EXPECT_FALSE(windows_agree(ramp, 50, 0.01));

  std::vector<double> flat(100, 7.0);
  EXPECT_TRUE(windows_agree(flat, 50, 0.01));

  EXPECT_FALSE(windows_agree(flat, 0, 0.01));   // degenerate window
  EXPECT_FALSE(windows_agree(flat, 100, 0.01)); // not enough data
}

}  // namespace
