// Unit tests for the PRNG engines: known-answer vectors, determinism,
// jump-ahead disjointness, bounded-draw exactness and uniformity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <unordered_set>
#include <vector>

#include "rng/bounded.hpp"
#include "rng/philox.hpp"
#include "rng/seed.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"

namespace {

using namespace iba::rng;

TEST(SplitMix64, KnownAnswerSeedZero) {
  // First outputs of splitmix64 for seed 0, per Vigna's reference code.
  SplitMix64 sm(0);
  EXPECT_EQ(sm(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm(), 0x06c45d188009454fULL);
}

TEST(SplitMix64, HashMatchesFirstOutput) {
  for (std::uint64_t seed : {0ULL, 1ULL, 42ULL, 0xdeadbeefULL}) {
    SplitMix64 sm(seed);
    EXPECT_EQ(splitmix64_hash(seed), sm());
  }
}

TEST(SplitMix64, DistinctSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256pp, Deterministic) {
  Xoshiro256pp a(12345), b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256pp, EqualityTracksState) {
  Xoshiro256pp a(7), b(7);
  EXPECT_EQ(a, b);
  (void)a();
  EXPECT_FALSE(a == b);
  (void)b();
  EXPECT_EQ(a, b);
}

TEST(Xoshiro256pp, JumpProducesDisjointStream) {
  Xoshiro256pp base(99);
  Xoshiro256pp jumped = base;
  jumped.jump();
  EXPECT_FALSE(base == jumped);

  std::unordered_set<std::uint64_t> head;
  for (int i = 0; i < 4096; ++i) head.insert(base());
  int collisions = 0;
  for (int i = 0; i < 4096; ++i) collisions += head.count(jumped());
  // 64-bit outputs: any overlap of two 4k windows is astronomically unlikely
  // unless the streams coincide.
  EXPECT_EQ(collisions, 0);
}

TEST(Xoshiro256pp, LongJumpDistinctFromJump) {
  Xoshiro256pp a(5), b(5);
  a.jump();
  b.long_jump();
  EXPECT_FALSE(a == b);
}

TEST(Xoshiro256ss, DeterministicAndDistinctFromPp) {
  Xoshiro256ss a(12345), b(12345);
  Xoshiro256pp c(12345);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    const auto x = a();
    EXPECT_EQ(x, b());
    if (x != c()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Xoshiro256pp, Uniform01MeanAndRange) {
  Xoshiro256pp eng(2024);
  double sum = 0;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double u = uniform01(eng);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.005);
}

TEST(Philox4x32, KnownAnswerZeros) {
  // Random123 known-answer test: philox4x32-10, counter = 0, key = 0.
  const auto out = Philox4x32::block({0, 0, 0, 0}, {0, 0});
  EXPECT_EQ(out[0], 0x6627e8d5u);
  EXPECT_EQ(out[1], 0xe169c58du);
  EXPECT_EQ(out[2], 0xbc57ac4cu);
  EXPECT_EQ(out[3], 0x9b00dbd8u);
}

TEST(Philox4x32, SeekIsRandomAccess) {
  Philox4x32 seq(42);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 64; ++i) first.push_back(seq());

  Philox4x32 seeked(42);
  seeked.seek(10);  // block 10 covers sequential outputs 20, 21
  EXPECT_EQ(seeked(), first[20]);
  EXPECT_EQ(seeked(), first[21]);
}

TEST(Philox4x32, DistinctKeysDistinctStreams) {
  Philox4x32 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Bounded, RangeOneAlwaysZero) {
  Xoshiro256pp eng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(bounded(eng, 1), 0u);
}

TEST(Bounded, StaysInRange) {
  Xoshiro256pp eng(3);
  for (std::uint64_t range : {2ULL, 3ULL, 7ULL, 1000ULL, (1ULL << 40) + 9}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(bounded(eng, range), range);
  }
}

TEST(Bounded, ChiSquareUniformOverSmallRange) {
  // 7 buckets, 700k draws: chi-square with 6 dof; 33.1 is far beyond the
  // 99.999th percentile, so a correct implementation fails ~never.
  Xoshiro256pp eng(77);
  constexpr std::uint64_t kRange = 7;
  constexpr int kDraws = 700000;
  std::array<int, kRange> counts{};
  for (int i = 0; i < kDraws; ++i) ++counts[bounded(eng, kRange)];
  const double expected = static_cast<double>(kDraws) / kRange;
  double chi2 = 0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 33.1);
}

TEST(FillBounded, MatchesSequentialBounded32Exactly) {
  // The batched fill must consume the engine word-for-word like the
  // sequential loop — the simulator's determinism contract depends on
  // the two producing the same stream, including across the rare
  // rejection-resampling path (small ranges near 2^32 make rejections
  // likely; odd lengths exercise the unrolled-block tail).
  for (const std::uint32_t range :
       {1u, 2u, 7u, 97u, 1u << 16, 3221225473u /* 0.75·2^32: ~25% reject */,
        4294967291u /* largest prime < 2^32 */}) {
    for (const std::size_t length : {0u, 1u, 3u, 4u, 5u, 1023u}) {
      Xoshiro256pp batched(42), sequential(42);
      std::vector<std::uint32_t> out(length);
      iba::rng::fill_bounded(batched, out, range);
      for (std::size_t i = 0; i < length; ++i) {
        ASSERT_EQ(out[i], iba::rng::bounded32(sequential, range))
            << "range " << range << " index " << i;
      }
      // Both engines must be in the same state afterwards.
      EXPECT_EQ(batched(), sequential()) << "range " << range;
    }
  }
}

TEST(Bounded, UniformInClosedInterval) {
  Xoshiro256pp eng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = uniform_in(eng, 10, 13);
    ASSERT_GE(v, 10u);
    ASSERT_LE(v, 13u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values hit in 1000 draws
}

TEST(Seed, DeriveSeedInjectiveOverStreams) {
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t s = 0; s < 100000; ++s) {
    seen.insert(derive_seed(123456789, s));
  }
  EXPECT_EQ(seen.size(), 100000u);
}

TEST(Seed, DeterministicAcrossCalls) {
  EXPECT_EQ(derive_seed(1, 2), derive_seed(1, 2));
  EXPECT_NE(derive_seed(1, 2), derive_seed(2, 1));
}

TEST(Seed, SequenceMatchesDeriveSeeds) {
  SeedSequence seq(42);
  const auto expected = derive_seeds(42, 5);
  for (std::uint64_t e : expected) EXPECT_EQ(seq.next(), e);
}

TEST(Seed, SplitNamespacesAreDisjoint) {
  SeedSequence parent(42);
  SeedSequence child = parent.split();
  std::unordered_set<std::uint64_t> all;
  for (int i = 0; i < 1000; ++i) {
    all.insert(parent.next());
    all.insert(child.next());
  }
  EXPECT_EQ(all.size(), 2000u);
}

}  // namespace
