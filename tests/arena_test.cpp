// Unit tests of the core::Arena mmap/huge-page allocator and the
// grow-only ArenaBuffer that fronts it: zeroing and alignment
// guarantees, the mmap threshold, graceful fallback when disabled,
// allocation accounting (the "no allocations at steady state" signal),
// and the buffer's geometric-growth / content-preservation contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <utility>

#include "core/arena.hpp"

namespace {

using iba::core::Arena;
using iba::core::ArenaBuffer;
using iba::core::ArenaConfig;

bool all_zero(const void* ptr, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(ptr);
  for (std::size_t i = 0; i < bytes; ++i) {
    if (p[i] != 0) return false;
  }
  return true;
}

TEST(Arena, SmallAllocationsComeFromTheHeapZeroedAndAligned) {
  ArenaConfig config;
  config.enabled = true;
  Arena arena(config);
  void* ptr = arena.allocate(4096);  // below kMmapThreshold
  ASSERT_NE(ptr, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ptr) % 64, 0u);
  EXPECT_TRUE(all_zero(ptr, 4096));
  EXPECT_EQ(arena.allocation_count(), 1u);
  EXPECT_GE(arena.live_bytes(), 4096u);
  EXPECT_EQ(arena.mapped_bytes(), 0u);
  arena.deallocate(ptr);
  EXPECT_EQ(arena.live_bytes(), 0u);
}

TEST(Arena, LargeAllocationsAreMappedWhenEnabled) {
  ArenaConfig config;
  config.enabled = true;
  Arena arena(config);
  const std::size_t bytes = Arena::kMmapThreshold + 12345;
  void* ptr = arena.allocate(bytes);
  ASSERT_NE(ptr, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ptr) % 64, 0u);
  EXPECT_TRUE(all_zero(ptr, bytes));
  if (Arena::mmap_supported()) {
    // Mapped length rounds up to the 2 MiB huge-page granule.
    EXPECT_GE(arena.mapped_bytes(), bytes);
    EXPECT_EQ(arena.mapped_bytes() % (std::size_t{2} << 20), 0u);
  } else {
    EXPECT_EQ(arena.mapped_bytes(), 0u);
  }
  // Writable end to end.
  std::memset(ptr, 0xAB, bytes);
  arena.deallocate(ptr);
  EXPECT_EQ(arena.mapped_bytes(), 0u);
  EXPECT_EQ(arena.live_bytes(), 0u);
}

TEST(Arena, DisabledArenaNeverMaps) {
  Arena arena;  // default config: disabled
  void* ptr = arena.allocate(Arena::kMmapThreshold * 4);
  ASSERT_NE(ptr, nullptr);
  EXPECT_TRUE(all_zero(ptr, Arena::kMmapThreshold * 4));
  EXPECT_EQ(arena.mapped_bytes(), 0u);
  EXPECT_EQ(arena.huge_advised_bytes(), 0u);
  arena.deallocate(ptr);
}

TEST(Arena, HugePageAdviceIsBoundedByMappedBytes) {
  // madvise(MADV_HUGEPAGE) may be refused (THP off, non-Linux) — that
  // must degrade to plain mapped memory, never fail.
  ArenaConfig config;
  config.enabled = true;
  config.huge_pages = true;
  Arena arena(config);
  const std::size_t bytes = Arena::kMmapThreshold * 3;
  void* ptr = arena.allocate(bytes);
  ASSERT_NE(ptr, nullptr);
  EXPECT_TRUE(all_zero(ptr, bytes));
  EXPECT_LE(arena.huge_advised_bytes(), arena.mapped_bytes());
  std::memset(ptr, 1, bytes);  // still plain writable memory
  arena.deallocate(ptr);
  EXPECT_EQ(arena.huge_advised_bytes(), 0u);
}

TEST(Arena, ZeroBytesReturnsNull) {
  ArenaConfig config;
  config.enabled = true;
  Arena arena(config);
  EXPECT_EQ(arena.allocate(0), nullptr);
  arena.deallocate(nullptr);  // no-op
  EXPECT_EQ(arena.allocation_count(), 0u);
}

TEST(Arena, DestructorReleasesOutstandingBlocks) {
  // Blocks not explicitly deallocated are reclaimed by the destructor
  // (ASan would flag a leak or a bad munmap here).
  ArenaConfig config;
  config.enabled = true;
  Arena arena(config);
  (void)arena.allocate(512);
  (void)arena.allocate(Arena::kMmapThreshold * 2);
  EXPECT_EQ(arena.allocation_count(), 2u);
}

TEST(ArenaBuffer, ResizePreservesContentsAndZeroesFreshCapacity) {
  ArenaBuffer<std::uint32_t> buffer;  // heap-backed (no arena attached)
  buffer.resize(100);
  EXPECT_TRUE(all_zero(buffer.data(), 100 * sizeof(std::uint32_t)));
  std::iota(buffer.begin(), buffer.end(), 1u);
  buffer.resize(1000);
  ASSERT_EQ(buffer.size(), 1000u);
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(buffer[i], i + 1) << "grow lost element " << i;
  }
  // Capacity beyond the old size was never written: still zero.
  for (std::size_t i = 100; i < 1000; ++i) {
    EXPECT_EQ(buffer[i], 0u) << "fresh element " << i << " not zeroed";
  }
}

TEST(ArenaBuffer, ShrinkThenRegrowDoesNotReallocate) {
  ArenaConfig config;
  config.enabled = true;
  Arena arena(config);
  ArenaBuffer<std::uint64_t> buffer;
  buffer.set_arena(&arena);
  buffer.resize(5000);
  const std::uint64_t allocs = arena.allocation_count();
  const std::uint64_t* data = buffer.data();
  // The round loop's pattern: resize down and up within capacity.
  for (int round = 0; round < 50; ++round) {
    buffer.resize(4000 + static_cast<std::size_t>(round) % 1000);
  }
  buffer.clear();
  buffer.resize(5000);
  EXPECT_EQ(arena.allocation_count(), allocs)
      << "within-capacity resizes must not allocate";
  EXPECT_EQ(buffer.data(), data);
}

TEST(ArenaBuffer, GeometricGrowthAbsorbsJitter) {
  // Growing by a whisker (the ±√ν round-to-round throw jitter) must
  // reallocate at most once more: geometric headroom covers the rest.
  ArenaBuffer<std::uint32_t> buffer;
  buffer.resize(1'000'000);
  buffer.resize(1'000'500);  // first wobble: grows with 50% headroom
  const std::size_t settled = buffer.capacity();
  for (std::size_t jitter = 0; jitter < 5000; jitter += 500) {
    buffer.resize(1'000'500 + jitter);
  }
  EXPECT_EQ(buffer.capacity(), settled)
      << "headroom should absorb subsequent jitter";
}

TEST(ArenaBuffer, AssignFillsExactly) {
  ArenaBuffer<std::uint32_t> buffer;
  buffer.assign(257, 7u);
  ASSERT_EQ(buffer.size(), 257u);
  for (const std::uint32_t v : buffer) EXPECT_EQ(v, 7u);
  buffer.assign(100, 9u);
  ASSERT_EQ(buffer.size(), 100u);
  for (const std::uint32_t v : buffer) EXPECT_EQ(v, 9u);
}

TEST(ArenaBuffer, MoveTransfersOwnership) {
  ArenaConfig config;
  config.enabled = true;
  Arena arena(config);
  ArenaBuffer<std::uint32_t> a;
  a.set_arena(&arena);
  a.resize(300'000);  // above the threshold once widened to bytes
  a[0] = 42;
  const std::uint32_t* data = a.data();
  ArenaBuffer<std::uint32_t> b = std::move(a);
  EXPECT_EQ(b.data(), data);
  EXPECT_EQ(b.size(), 300'000u);
  EXPECT_EQ(b[0], 42u);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.size(), 0u);

  ArenaBuffer<std::uint32_t> c;
  c.resize(10);
  c = std::move(b);
  EXPECT_EQ(c.data(), data);
  EXPECT_EQ(c[0], 42u);
}

TEST(ArenaBuffer, ArenaBackedBuffersUseMappedMemoryWhenLarge) {
  if (!Arena::mmap_supported()) GTEST_SKIP() << "no mmap on this platform";
  ArenaConfig config;
  config.enabled = true;
  Arena arena(config);
  ArenaBuffer<std::uint64_t> buffer;
  buffer.set_arena(&arena);
  buffer.resize(Arena::kMmapThreshold);  // 8 MiB of u64 — mapped
  EXPECT_GT(arena.mapped_bytes(), 0u);
  buffer.resize(0);
  buffer.resize(Arena::kMmapThreshold);
  EXPECT_EQ(arena.allocation_count(), 1u);
}

}  // namespace
