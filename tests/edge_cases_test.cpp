// Edge-of-the-parameter-space tests across all processes: the smallest
// systems (n = 1, n = 2), empty workloads, capacity larger than load,
// saturated systems — cheap configurations where off-by-one errors hide.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/adler_fifo.hpp"
#include "core/becchetti.hpp"
#include "core/capped.hpp"
#include "core/capped_greedy.hpp"
#include "core/greedy.hpp"
#include "core/hetero_capped.hpp"
#include "core/modcapped.hpp"
#include "core/static_allocation.hpp"
#include "core/threshold.hpp"

namespace {

using namespace iba::core;

TEST(EdgeCases, SingleBinCapped) {
  // n = 1: every ball goes to the one bin; it accepts c per round and
  // deletes 1; with λn = 1 the system is critically loaded.
  CappedConfig config;
  config.n = 1;
  config.capacity = 2;
  config.lambda_n = 1;
  Capped process(config, Engine(1));
  for (int i = 0; i < 100; ++i) {
    const auto m = process.step();
    EXPECT_EQ(m.deleted, 1u);       // always non-empty after round 1
    EXPECT_LE(m.max_load, 2u);
  }
  EXPECT_EQ(process.generated_total(), 100u);
  EXPECT_EQ(process.deleted_total(), 100u - process.total_load());
}

TEST(EdgeCases, TwoBinsSaturated) {
  CappedConfig config;
  config.n = 2;
  config.capacity = 1;
  config.lambda_n = 2;
  Capped process(config, Engine(2));
  for (int i = 0; i < 200; ++i) {
    const auto m = process.step();
    EXPECT_LE(m.deleted, 2u);
    EXPECT_EQ(m.thrown, m.accepted + m.pool_size);
  }
}

TEST(EdgeCases, CappedZeroArrivalsWithPrefilledState) {
  // Drain behaviour: arrivals stop after 50 rounds; the system must
  // empty completely and stay empty.
  CappedConfig config;
  config.n = 64;
  config.capacity = 2;
  config.lambda_n = 48;
  Capped process(config, Engine(3));
  for (int i = 0; i < 50; ++i) (void)process.step();
  process.set_lambda_n(0);
  for (int i = 0; i < 200; ++i) (void)process.step();
  EXPECT_EQ(process.pool_size(), 0u);
  EXPECT_EQ(process.total_load(), 0u);
  EXPECT_EQ(process.generated_total(), process.deleted_total());
  const auto m = process.step();
  EXPECT_EQ(m.thrown, 0u);
  EXPECT_EQ(m.deleted, 0u);
}

TEST(EdgeCases, CapacityLargerThanSystemNeverRejects) {
  CappedConfig config;
  config.n = 16;
  config.capacity = 1000;  // effectively infinite for this horizon
  config.lambda_n = 12;
  Capped process(config, Engine(4));
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(process.step().pool_size, 0u);
  }
}

TEST(EdgeCases, ModCappedSmallestSystem) {
  ModCappedConfig config;
  config.n = 2;
  config.capacity = 1;
  config.lambda_n = 1;
  config.m_star = 4;
  ModCapped process(config, Engine(5));
  for (int i = 0; i < 100; ++i) {
    const auto m = process.step();
    EXPECT_GE(m.thrown, 4u);
    EXPECT_LE(m.max_load, 1u);
  }
}

TEST(EdgeCases, BatchGreedyZeroArrivals) {
  BatchGreedyConfig config{.n = 8, .d = 2, .lambda_n = 0};
  BatchGreedy process(config, Engine(6));
  for (int i = 0; i < 50; ++i) {
    const auto m = process.step();
    EXPECT_EQ(m.thrown, 0u);
    EXPECT_EQ(m.total_load, 0u);
  }
}

TEST(EdgeCases, CappedGreedySingleBin) {
  CappedGreedyConfig config;
  config.n = 1;
  config.capacity = 3;
  config.d = 2;
  config.lambda_n = 1;
  CappedGreedy process(config, Engine(7));
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(process.step().max_load, 3u);
  }
}

TEST(EdgeCases, HeteroSingleBin) {
  HeteroCappedConfig config;
  config.capacities = {5};
  config.lambda_n = 1;
  HeteroCapped process(config, Engine(8));
  for (int i = 0; i < 100; ++i) {
    const auto m = process.step();
    EXPECT_EQ(m.deleted, 1u);
    EXPECT_LE(m.max_load, 5u);
  }
}

TEST(EdgeCases, StaticAllocationsZeroBalls) {
  const auto oc = one_choice(8, 0, Engine(9));
  EXPECT_EQ(oc.max_load, 0u);
  EXPECT_EQ(oc.empty_bins, 8u);
  const auto gd = greedy_d(8, 0, 2, Engine(10));
  EXPECT_EQ(gd.max_load, 0u);
  const auto agl = always_go_left(8, 0, 2, Engine(11));
  EXPECT_EQ(agl.max_load, 0u);
}

TEST(EdgeCases, StaticAllocationSingleBin) {
  const auto result = one_choice(1, 100, Engine(12));
  EXPECT_EQ(result.max_load, 100u);
  EXPECT_EQ(result.empty_bins, 0u);
}

TEST(EdgeCases, ThresholdSingleBallSingleBin) {
  const auto result = run_threshold(1, 1, 1, Engine(13));
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.rounds, 1u);
  EXPECT_EQ(result.max_load, 1u);
}

TEST(EdgeCases, BecchettiSingleBin) {
  auto process = RepeatedBallsIntoBins::uniform(1, Engine(14));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(process.step().max_load, 1u);  // the ball bounces in place
  }
}

TEST(EdgeCases, AdlerZeroArrivals) {
  AdlerFifoConfig config{.n = 8, .d = 2, .m = 0};
  AdlerFifo process(config, Engine(15));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(process.step().deleted, 0u);
  }
  EXPECT_EQ(process.in_flight(), 0u);
}

TEST(EdgeCases, WaitRecorderOnIdleSystem) {
  CappedConfig config;
  config.n = 4;
  config.capacity = 1;
  config.lambda_n = 0;
  Capped process(config, Engine(16));
  for (int i = 0; i < 20; ++i) (void)process.step();
  EXPECT_EQ(process.waits().count(), 0u);
  EXPECT_EQ(process.waits().max(), 0u);
  EXPECT_EQ(process.waits().quantile_upper_bound(0.99), 0u);
}

TEST(EdgeCases, SnapshotOfFreshProcess) {
  CappedConfig config;
  config.n = 8;
  config.capacity = 2;
  config.lambda_n = 4;
  Capped original(config, Engine(17));
  Capped restored(original.snapshot());  // snapshot before any step
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(original.step().pool_size, restored.step().pool_size);
  }
}

}  // namespace
