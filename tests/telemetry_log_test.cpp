// Structured logger: line formats (key=value and JSON), level
// filtering, env-style parsing, quoting rules, and determinism of the
// emitted bytes.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/log.hpp"

namespace {

using iba::telemetry::LogFormat;
using iba::telemetry::Logger;
using iba::telemetry::LogLevel;
using iba::telemetry::parse_log_level;

TEST(Log, KeyValueLineCarriesEventAndTypedFields) {
  std::ostringstream out;
  Logger logger(&out, LogLevel::kDebug, LogFormat::kKeyValue);
  logger.info("cell_start", {{"cell", "n=256 c=2"},
                             {"rounds", std::uint64_t{300}},
                             {"offset", std::int64_t{-3}},
                             {"lambda", 0.875},
                             {"csv", true}});
  EXPECT_EQ(out.str(),
            "level=info event=cell_start cell=\"n=256 c=2\" rounds=300 "
            "offset=-3 lambda=0.875 csv=true\n");
}

TEST(Log, JsonLinesAreValidObjectsWithTypedValues) {
  std::ostringstream out;
  Logger logger(&out, LogLevel::kDebug, LogFormat::kJson);
  logger.warn("overwrite", {{"path", "a b.json"}, {"rows", 7u}});
  EXPECT_EQ(out.str(),
            "{\"level\":\"warn\",\"event\":\"overwrite\","
            "\"path\":\"a b.json\",\"rows\":7}\n");
}

TEST(Log, LevelsBelowThresholdAreDropped) {
  std::ostringstream out;
  Logger logger(&out, LogLevel::kWarn, LogFormat::kKeyValue);
  logger.debug("hidden");
  logger.info("hidden");
  EXPECT_TRUE(out.str().empty());
  EXPECT_FALSE(logger.enabled(LogLevel::kInfo));
  logger.error("visible");
  EXPECT_EQ(out.str(), "level=error event=visible\n");

  logger.set_level(LogLevel::kOff);
  logger.error("also hidden");
  EXPECT_EQ(out.str(), "level=error event=visible\n");
}

TEST(Log, ParseLevelAcceptsNamesCaseInsensitively) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("none"), LogLevel::kOff);
  EXPECT_FALSE(parse_log_level("chatty").has_value());
}

TEST(Log, KvQuotingEscapesOnlyWhenNeeded) {
  std::ostringstream out;
  Logger logger(&out, LogLevel::kDebug, LogFormat::kKeyValue);
  logger.info("q", {{"bare", "simple-value_1"},
                    {"spaced", "two words"},
                    {"quoted", "say \"hi\""},
                    {"empty", ""}});
  EXPECT_EQ(out.str(),
            "level=info event=q bare=simple-value_1 spaced=\"two words\" "
            "quoted=\"say \\\"hi\\\"\" empty=\"\"\n");
}

TEST(Log, ConcurrentWritersNeverInterleaveWithinALine) {
  std::ostringstream out;
  Logger logger(&out, LogLevel::kInfo, LogFormat::kKeyValue);
  constexpr int kThreads = 4;
  constexpr int kLines = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&logger, t] {
      for (int i = 0; i < kLines; ++i) {
        logger.info("tick", {{"writer", std::int64_t{t}}});
      }
    });
  }
  for (auto& thread : threads) thread.join();

  std::istringstream in(out.str());
  std::string line;
  int count = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(line.rfind("level=info event=tick writer=", 0) == 0) << line;
    ++count;
  }
  EXPECT_EQ(count, kThreads * kLines);
}

TEST(Log, GlobalLoggerExistsAndFiltersByLevel) {
  Logger& global = Logger::global();
  const LogLevel before = global.level();
  global.set_level(LogLevel::kOff);
  EXPECT_FALSE(global.enabled(LogLevel::kError));
  iba::telemetry::log_error("must_not_crash", {{"k", 1u}});
  global.set_level(before);
}

}  // namespace
