// Crash-safe checkpoint/resume (format v2): kill-and-resume byte
// identity with and without an attached fault plan, atomicity of the
// writer, and rejection of corrupt / truncated / downlevel files with
// messages naming the problem.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/crc32.hpp"
#include "core/capped.hpp"
#include "fault/fault_plan.hpp"
#include "fault/schedule.hpp"
#include "sim/checkpoint.hpp"

namespace {

using namespace iba;
using core::Capped;
using core::CappedConfig;
using core::Engine;
using core::RoundKernel;

class CheckpointResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("iba_ckpt_resume_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

CappedConfig rich_config() {
  // Exercise every persisted knob: bin-major kernel, sharding, and
  // defer-retry backpressure.
  CappedConfig config;
  config.n = 256;
  config.capacity = 3;
  config.lambda_n = 240;
  config.kernel = RoundKernel::kBinMajor;
  config.shards = 2;
  config.pool_limit = 200;
  config.backpressure = core::BackpressureMode::kDeferRetry;
  config.backoff_rounds = 3;
  return config;
}

void expect_same_round(const core::RoundMetrics& a,
                       const core::RoundMetrics& b, std::uint64_t round) {
  ASSERT_EQ(a.round, b.round) << "round " << round;
  ASSERT_EQ(a.generated, b.generated) << "round " << round;
  ASSERT_EQ(a.thrown, b.thrown) << "round " << round;
  ASSERT_EQ(a.accepted, b.accepted) << "round " << round;
  ASSERT_EQ(a.deleted, b.deleted) << "round " << round;
  ASSERT_EQ(a.pool_size, b.pool_size) << "round " << round;
  ASSERT_EQ(a.total_load, b.total_load) << "round " << round;
  ASSERT_EQ(a.max_load, b.max_load) << "round " << round;
  ASSERT_EQ(a.shed, b.shed) << "round " << round;
  ASSERT_EQ(a.deferred, b.deferred) << "round " << round;
  ASSERT_EQ(a.requeued, b.requeued) << "round " << round;
  ASSERT_EQ(a.faulted_bins, b.faulted_bins) << "round " << round;
  ASSERT_EQ(a.wait_count, b.wait_count) << "round " << round;
  ASSERT_DOUBLE_EQ(a.wait_sum, b.wait_sum) << "round " << round;
  ASSERT_EQ(a.wait_max, b.wait_max) << "round " << round;
}

void expect_same_final_state(const Capped& a, const Capped& b) {
  EXPECT_EQ(a.round(), b.round());
  EXPECT_EQ(a.generated_total(), b.generated_total());
  EXPECT_EQ(a.deleted_total(), b.deleted_total());
  EXPECT_EQ(a.shed_total(), b.shed_total());
  EXPECT_EQ(a.deferred_total(), b.deferred_total());
  EXPECT_EQ(a.pool_size(), b.pool_size());
  EXPECT_EQ(a.total_load(), b.total_load());
  EXPECT_EQ(a.waits().count(), b.waits().count());
  EXPECT_EQ(a.waits().moments().sum(), b.waits().moments().sum());
  EXPECT_EQ(a.waits().moments().sumsq_hi(), b.waits().moments().sumsq_hi());
  EXPECT_EQ(a.waits().moments().sumsq_lo(), b.waits().moments().sumsq_lo());
  EXPECT_EQ(a.waits().histogram().counts(), b.waits().histogram().counts());
  for (std::uint32_t bin = 0; bin < a.n(); ++bin) {
    ASSERT_EQ(a.load(bin), b.load(bin)) << "bin " << bin;
  }
}

TEST_F(CheckpointResumeTest, KillAndResumeIsByteIdentical) {
  // Reference: 200 uninterrupted rounds.
  Capped reference(rich_config(), Engine(42));
  std::vector<core::RoundMetrics> expected;
  for (int r = 0; r < 200; ++r) expected.push_back(reference.step());

  // Killed run: stop at round 120, persist, reload, continue.
  Capped first_life(rich_config(), Engine(42));
  for (int r = 0; r < 120; ++r) (void)first_life.step();
  const std::string file = path("ckpt");
  sim::save_checkpoint(first_life.snapshot(), file);

  Capped second_life(sim::load_checkpoint(file));
  for (int r = 120; r < 200; ++r) {
    const auto m = second_life.step();
    expect_same_round(expected[static_cast<std::size_t>(r)], m,
                      static_cast<std::uint64_t>(r + 1));
  }
  expect_same_final_state(reference, second_life);
}

TEST_F(CheckpointResumeTest, KillAndResumeWithFaultPlanIsByteIdentical) {
  const char* schedule =
      "crash@100:bins=0-63,down=30,retain;"
      "random-crash:p=0.004,down=5-25;"
      "degrade@110:bins=200-255,cap=1,for=60;"
      "straggle:bins=100-119,period=4,phase=2";
  const std::uint64_t fault_seed = 9;
  const auto make_plan = [&] {
    return fault::FaultPlan(fault::parse_schedule(schedule), 256, 3,
                            fault_seed);
  };

  Capped reference(rich_config(), Engine(42));
  fault::FaultPlan reference_plan = make_plan();
  reference.set_fault_plan(&reference_plan);
  std::vector<core::RoundMetrics> expected;
  for (int r = 0; r < 250; ++r) expected.push_back(reference.step());

  // Kill at round 130 — mid-outage, mid-degradation — and persist both
  // the process snapshot and the plan's dynamic state.
  Capped first_life(rich_config(), Engine(42));
  fault::FaultPlan first_plan = make_plan();
  first_life.set_fault_plan(&first_plan);
  for (int r = 0; r < 130; ++r) (void)first_life.step();

  sim::Checkpoint out;
  out.snapshot = first_life.snapshot();
  out.has_fault_state = true;
  out.fault_schedule = fault::to_string(first_plan.schedule());
  out.fault_seed = first_plan.seed();
  out.fault_state = first_plan.state();
  const std::string file = path("ckpt_fault");
  sim::save_checkpoint(out, file);

  const sim::Checkpoint in = sim::load_checkpoint_full(file);
  ASSERT_TRUE(in.has_fault_state);
  EXPECT_EQ(in.fault_seed, fault_seed);
  Capped second_life(in.snapshot);
  fault::FaultPlan second_plan(fault::parse_schedule(in.fault_schedule), 256,
                               3, in.fault_seed);
  second_plan.restore(in.fault_state);
  second_life.set_fault_plan(&second_plan);

  for (int r = 130; r < 250; ++r) {
    const auto m = second_life.step();
    expect_same_round(expected[static_cast<std::size_t>(r)], m,
                      static_cast<std::uint64_t>(r + 1));
  }
  expect_same_final_state(reference, second_life);
  EXPECT_EQ(second_plan.crashes_total(), reference_plan.crashes_total());
  EXPECT_EQ(second_plan.repairs_total(), reference_plan.repairs_total());
  EXPECT_EQ(second_plan.straggler_skips_total(),
            reference_plan.straggler_skips_total());
}

TEST_F(CheckpointResumeTest, PlainLoaderRejectsFaultBearingFiles) {
  Capped p(rich_config(), Engine(1));
  fault::FaultPlan plan(fault::parse_schedule("crash@5:bins=0,down=2"), 256,
                        3, 1);
  p.set_fault_plan(&plan);
  for (int r = 0; r < 10; ++r) (void)p.step();
  sim::Checkpoint out;
  out.snapshot = p.snapshot();
  out.has_fault_state = true;
  out.fault_schedule = fault::to_string(plan.schedule());
  out.fault_seed = plan.seed();
  out.fault_state = plan.state();
  const std::string file = path("with_fault");
  sim::save_checkpoint(out, file);
  EXPECT_NO_THROW((void)sim::load_checkpoint_full(file));
  try {
    (void)sim::load_checkpoint(file);
    FAIL() << "fault-bearing checkpoint accepted by the plain loader";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("fault"), std::string::npos)
        << e.what();
  }
}

TEST_F(CheckpointResumeTest, SaveIsAtomicOverExistingFile) {
  // A save over an existing checkpoint must never leave a torn file:
  // the tmp staging file is gone and the content equals a fresh save.
  Capped p(rich_config(), Engine(2));
  for (int r = 0; r < 50; ++r) (void)p.step();
  const std::string file = path("ckpt");
  sim::save_checkpoint(p.snapshot(), file);
  const auto size_before = std::filesystem::file_size(file);

  for (int r = 0; r < 50; ++r) (void)p.step();
  sim::save_checkpoint(p.snapshot(), file);
  EXPECT_FALSE(std::filesystem::exists(file + ".tmp"))
      << "staging file must not survive a successful save";
  EXPECT_NO_THROW((void)sim::load_checkpoint(file));
  EXPECT_NE(std::filesystem::file_size(file), 0u);
  (void)size_before;

  // A failed save (unwritable staging path) leaves the old file intact.
  const std::string blocked = path("sub") + "/ckpt";
  EXPECT_THROW(sim::save_checkpoint(p.snapshot(), blocked),
               std::runtime_error);
}

std::string slurp(const std::string& file) {
  std::ifstream in(file, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void spit(const std::string& file, const std::string& content) {
  std::ofstream out(file, std::ios::binary | std::ios::trunc);
  out << content;
}

TEST_F(CheckpointResumeTest, BitFlipsAreRejectedByCrc) {
  Capped p(rich_config(), Engine(3));
  for (int r = 0; r < 40; ++r) (void)p.step();
  const std::string file = path("ckpt");
  sim::save_checkpoint(p.snapshot(), file);
  const std::string good = slurp(file);
  ASSERT_FALSE(good.empty());

  const std::size_t header_end = good.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  // Flip one bit at a spread of body offsets; every mutant must be
  // rejected, none may be silently accepted.
  for (const std::size_t offset :
       {header_end + 1, header_end + 17, good.size() / 2, good.size() - 2}) {
    std::string bad = good;
    bad[offset] = static_cast<char>(bad[offset] ^ 0x08);
    const std::string mutant = path("mutant");
    spit(mutant, bad);
    try {
      (void)sim::load_checkpoint(mutant);
      FAIL() << "accepted checkpoint with flipped bit at offset " << offset;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos)
          << "offset " << offset << ": " << e.what();
    }
  }
}

TEST_F(CheckpointResumeTest, TruncationIsRejected) {
  Capped p(rich_config(), Engine(4));
  for (int r = 0; r < 40; ++r) (void)p.step();
  const std::string file = path("ckpt");
  sim::save_checkpoint(p.snapshot(), file);
  const std::string good = slurp(file);

  for (const double fraction : {0.1, 0.5, 0.9}) {
    const std::string cut = path("cut");
    spit(cut, good.substr(0, static_cast<std::size_t>(
                                 static_cast<double>(good.size()) * fraction)));
    EXPECT_THROW((void)sim::load_checkpoint(cut), std::runtime_error)
        << "fraction " << fraction;
  }
  spit(path("empty"), "");
  EXPECT_THROW((void)sim::load_checkpoint(path("empty")), std::runtime_error);
  EXPECT_THROW((void)sim::load_checkpoint(path("missing")),
               std::runtime_error);
}

TEST_F(CheckpointResumeTest, DownlevelAndForeignFilesAreNamed) {
  const std::string v1 = path("v1");
  spit(v1, "iba-checkpoint 1\nconfig 8 1 4\n");
  try {
    (void)sim::load_checkpoint(v1);
    FAIL() << "v1 file accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }

  const std::string foreign = path("foreign");
  spit(foreign, "not-a-checkpoint at all\n");
  EXPECT_THROW((void)sim::load_checkpoint(foreign), std::runtime_error);
}

TEST_F(CheckpointResumeTest, MalformedFieldsAreNamed) {
  // Rebuild a structurally valid file (header CRC/length recomputed)
  // with one field driven out of domain: the loader's message must name
  // the field rather than crash or accept it.
  Capped p(rich_config(), Engine(5));
  for (int r = 0; r < 30; ++r) (void)p.step();
  const std::string file = path("ckpt");
  sim::save_checkpoint(p.snapshot(), file);
  const std::string good = slurp(file);
  const std::size_t header_end = good.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  const std::string body = good.substr(header_end + 1);

  // The config line is positional:
  // config n capacity lambda_n arrival deletion acceptance prob
  //        failure_mode kernel shards pool_limit backpressure backoff
  struct Case {
    std::size_t token;        // index into the config line (0 = "config")
    const char* replacement;  // out-of-domain value
    const char* expect;       // substring the error must carry
  } const cases[] = {
      {4, "7", "arrival"},
      {9, "9", "kernel"},
      {12, "5", "backpressure"},
      {1, "0", "n"},
  };
  for (const Case& c : cases) {
    const std::size_t line_end = body.find('\n');
    ASSERT_NE(line_end, std::string::npos);
    std::istringstream line(body.substr(0, line_end));
    std::vector<std::string> tokens;
    std::string token;
    while (line >> token) tokens.push_back(token);
    ASSERT_GT(tokens.size(), c.token);
    tokens[c.token] = c.replacement;
    std::string rebuilt_line;
    for (const auto& t : tokens) {
      if (!rebuilt_line.empty()) rebuilt_line += ' ';
      rebuilt_line += t;
    }
    const std::string mutated = rebuilt_line + body.substr(line_end);
    const std::uint32_t crc = common::crc32(mutated);
    const std::string rebuilt = "iba-checkpoint 3 " + std::to_string(crc) +
                                " " + std::to_string(mutated.size()) + "\n" +
                                mutated;
    const std::string mutant = path("mutant");
    spit(mutant, rebuilt);
    try {
      (void)sim::load_checkpoint(mutant);
      FAIL() << "accepted out-of-domain token " << c.token;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(c.expect), std::string::npos)
          << "token " << c.token << " -> " << e.what();
    }
  }
}

// -- format v3: adaptive-control state -------------------------------

CappedConfig control_config() {
  // rich_config plus the full control plane: sweet-spot capacity tuning
  // AND wait-targeted admission control riding on the defer-retry
  // backpressure — every serialized control field is live.
  CappedConfig config = rich_config();
  config.control.policy = iba::control::Policy::kSweetSpot;
  config.control.c_max = 8;
  config.control.window = 8;
  config.control.cooldown = 16;
  config.control.admission_target = 1;
  return config;
}

TEST_F(CheckpointResumeTest, KillAndResumeMidAdaptationIsByteIdentical) {
  // λ collapses at round 100 so the kill at 120 lands mid-adaptation:
  // the estimator window straddles the change, the capacity may still
  // be draining, and the admission loop has moved the pool limit off
  // its configured baseline.
  const auto drive = [](Capped& p, int from, int to,
                        std::vector<core::RoundMetrics>* out) {
    for (int r = from; r < to; ++r) {
      if (p.round() + 1 == 100) p.set_lambda_n(100);
      const auto m = p.step();
      if (out != nullptr) out->push_back(m);
    }
  };

  Capped reference(control_config(), Engine(42));
  std::vector<core::RoundMetrics> expected;
  drive(reference, 0, 220, &expected);

  Capped first_life(control_config(), Engine(42));
  drive(first_life, 0, 120, nullptr);
  const std::string file = path("ckpt_control");
  sim::save_checkpoint(first_life.snapshot(), file);

  Capped second_life(sim::load_checkpoint(file));
  ASSERT_NE(second_life.controller(), nullptr);
  std::vector<core::RoundMetrics> resumed;
  drive(second_life, 120, 220, &resumed);
  for (std::size_t i = 0; i < resumed.size(); ++i) {
    expect_same_round(expected[120 + i], resumed[i],
                      static_cast<std::uint64_t>(121 + i));
  }
  expect_same_final_state(reference, second_life);
  EXPECT_TRUE(reference.snapshot().controller ==
              second_life.snapshot().controller)
      << "controller state diverged after resume";
  EXPECT_EQ(reference.capacity(), second_life.capacity());
  EXPECT_EQ(reference.config().pool_limit, second_life.config().pool_limit);
}

std::string reheader(const std::string& body, int version) {
  return "iba-checkpoint " + std::to_string(version) + " " +
         std::to_string(common::crc32(body)) + " " +
         std::to_string(body.size()) + "\n" + body;
}

TEST_F(CheckpointResumeTest, V2DownlevelFilesLoadWithControlDisabled) {
  // A v2 file is a v3 file minus the six control tokens on the config
  // line and the control section; rebuilding one from a control-free
  // save must load and resume exactly like its v3 twin.
  Capped p(rich_config(), Engine(6));
  for (int r = 0; r < 60; ++r) (void)p.step();
  const std::string v3_file = path("v3");
  sim::save_checkpoint(p.snapshot(), v3_file);
  const std::string v3 = slurp(v3_file);
  const std::size_t header_end = v3.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  std::string body = v3.substr(header_end + 1);

  // Drop the trailing 6 control tokens from the config line.
  const std::size_t config_end = body.find('\n');
  ASSERT_NE(config_end, std::string::npos);
  std::istringstream config_line(body.substr(0, config_end));
  std::vector<std::string> tokens;
  std::string token;
  while (config_line >> token) tokens.push_back(token);
  ASSERT_EQ(tokens.size(), 20u) << "v3 config line should carry 19 fields";
  std::string v2_config;
  for (std::size_t i = 0; i + 6 < tokens.size(); ++i) {
    if (!v2_config.empty()) v2_config += ' ';
    v2_config += tokens[i];
  }
  body = v2_config + body.substr(config_end);
  // Drop the "control 0" section line.
  const std::size_t control_at = body.find("\ncontrol 0\n");
  ASSERT_NE(control_at, std::string::npos);
  body.erase(control_at, std::string("\ncontrol 0").size());

  const std::string v2_file = path("v2");
  spit(v2_file, reheader(body, 2));
  const core::CappedSnapshot snap = sim::load_checkpoint(v2_file);
  EXPECT_FALSE(snap.config.control.enabled());

  Capped resumed(snap);
  for (int r = 60; r < 120; ++r) {
    const auto m = p.step();
    const auto b = resumed.step();
    expect_same_round(m, b, m.round);
  }
  expect_same_final_state(p, resumed);
}

TEST_F(CheckpointResumeTest, V3CorruptControlFieldsAreNamed) {
  Capped p(control_config(), Engine(8));
  for (int r = 0; r < 60; ++r) (void)p.step();
  const std::string file = path("ckpt");
  sim::save_checkpoint(p.snapshot(), file);
  const std::string good = slurp(file);
  const std::size_t header_end = good.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  const std::string body = good.substr(header_end + 1);

  const auto expect_rejection = [&](const std::string& mutated_body,
                                    const char* expect,
                                    const char* what) {
    const std::string mutant = path("mutant");
    spit(mutant, reheader(mutated_body, 3));
    try {
      (void)sim::load_checkpoint(mutant);
      FAIL() << what << ": corrupt file accepted";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(expect), std::string::npos)
          << what << " -> " << e.what();
    }
  };

  // Policy id out of range (config token 14, first control field).
  {
    const std::size_t config_end = body.find('\n');
    std::istringstream line(body.substr(0, config_end));
    std::vector<std::string> tokens;
    std::string token;
    while (line >> token) tokens.push_back(token);
    ASSERT_GT(tokens.size(), 14u);
    tokens[14] = "9";
    std::string rebuilt;
    for (const auto& t : tokens) {
      if (!rebuilt.empty()) rebuilt += ' ';
      rebuilt += t;
    }
    expect_rejection(rebuilt + body.substr(config_end), "control policy",
                     "policy id");
  }

  // Cooldown bit-flip: cooldown_until beyond round + cooldown can never
  // be produced by the controller (it always arms round + cooldown).
  {
    const std::size_t line_at = body.find("control-controller ");
    ASSERT_NE(line_at, std::string::npos);
    const std::size_t value_at = line_at + std::string("control-controller ").size();
    const std::size_t value_end = body.find(' ', value_at);
    std::string mutated = body.substr(0, value_at) + "9999999" +
                          body.substr(value_end);
    expect_rejection(mutated, "cooldown_until", "cooldown bit-flip");
  }

  // Truncated estimator block: the file ends mid-ring.
  {
    const std::size_t est_at = body.find("control-estimator");
    ASSERT_NE(est_at, std::string::npos);
    const std::size_t cut = body.find('\n', est_at) + 20;
    ASSERT_LT(cut, body.size());
    expect_rejection(body.substr(0, cut), "estimator", "truncated estimator");
  }

  // Control flag contradicting the config's policy.
  {
    const std::size_t flag_at = body.find("\ncontrol 1\n");
    ASSERT_NE(flag_at, std::string::npos);
    std::string mutated = body;
    mutated[flag_at + std::string("\ncontrol ").size()] = '0';
    expect_rejection(mutated, "disagrees", "control flag mismatch");
  }
}

}  // namespace
