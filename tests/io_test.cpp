// Tests for the IO helpers: CSV escaping and structure, JSON writer
// validity and escaping, table rendering, and CLI flag parsing including
// error paths.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/assert.hpp"

#include "io/cli.hpp"
#include "io/csv.hpp"
#include "io/json.hpp"
#include "io/plot.hpp"
#include "io/table.hpp"

namespace {

using namespace iba::io;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Csv, EscapeRules) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, HeaderAndRows) {
  const auto path = temp_path("iba_csv_test.csv");
  {
    CsvWriter csv(path);
    csv.header({"c", "pool"});
    csv.row(std::vector<std::string>{"1", "2.5"});
    csv.row(std::vector<double>{2.0, 1.25});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  EXPECT_EQ(slurp(path), "c,pool\n1,2.5\n2,1.25\n");
  std::filesystem::remove(path);
}

TEST(Csv, RejectsMismatchedRowWidth) {
  const auto path = temp_path("iba_csv_test2.csv");
  CsvWriter csv(path);
  csv.header({"a", "b"});
  EXPECT_THROW(csv.row(std::vector<std::string>{"only-one"}),
               iba::ContractViolation);
  std::filesystem::remove(path);
}

TEST(Csv, RejectsUnopenablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x/y.csv"), std::runtime_error);
}

TEST(Json, ObjectWithAllScalarTypes) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object()
      .key("name").value("iba")
      .key("pi").value(3.5)
      .key("count").value(std::uint64_t{42})
      .key("delta").value(std::int64_t{-7})
      .key("ok").value(true)
      .key("missing").null()
      .end_object();
  EXPECT_TRUE(json.complete());
  EXPECT_EQ(out.str(),
            R"({"name":"iba","pi":3.5,"count":42,"delta":-7,"ok":true,)"
            R"("missing":null})");
}

TEST(Json, NestedArraysAndObjects) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object()
      .key("rows").begin_array()
      .begin_object().key("c").value(std::uint64_t{1}).end_object()
      .begin_object().key("c").value(std::uint64_t{2}).end_object()
      .end_array()
      .end_object();
  EXPECT_EQ(out.str(), R"({"rows":[{"c":1},{"c":2}]})");
}

TEST(Json, EscapesControlCharacters) {
  EXPECT_EQ(JsonWriter::escape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonWriter::escape("q\"q"), "q\\\"q");
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_array().value(std::nan("")).end_array();
  EXPECT_EQ(out.str(), "[null]");
}

TEST(Json, MisuseThrows) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  EXPECT_THROW(json.value("no key"), iba::ContractViolation);
  json.key("k");
  EXPECT_THROW(json.key("second key"), iba::ContractViolation);
  json.value("v");
  EXPECT_THROW(json.end_array(), iba::ContractViolation);
}

TEST(Table, RendersAlignedColumns) {
  Table table({"c", "pool/n"});
  table.add_row(std::vector<std::string>{"1", "2.39"});
  table.add_row(std::vector<double>{2.0, 1.6931});
  const auto text = table.to_string();
  EXPECT_NE(text.find("c  pool/n"), std::string::npos);
  EXPECT_NE(text.find("1  2.39"), std::string::npos);
  EXPECT_NE(text.find("2  1.693"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
}

TEST(Table, TitleAndRowCount) {
  Table table({"x"});
  table.set_title("Figure 4 (left)");
  table.add_row(std::vector<double>{1.0});
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_EQ(table.to_string().rfind("Figure 4 (left)\n", 0), 0u);
}

TEST(Table, RejectsBadShape) {
  EXPECT_THROW(Table({}), iba::ContractViolation);
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row(std::vector<std::string>{"1"}),
               iba::ContractViolation);
}

TEST(Plot, RendersSeriesMarkersAndLegend) {
  AsciiPlot plot(40, 10);
  plot.set_title("pool vs c");
  plot.set_x_label("capacity c");
  plot.add_series("measured", {1, 2, 3, 4}, {4.0, 2.0, 1.3, 1.0});
  plot.add_series("reference", {1, 2, 3, 4}, {5.0, 2.5, 1.7, 1.25});
  const auto text = plot.to_string();
  EXPECT_NE(text.find("pool vs c"), std::string::npos);
  EXPECT_NE(text.find("capacity c"), std::string::npos);
  EXPECT_NE(text.find("o = measured"), std::string::npos);
  EXPECT_NE(text.find("x = reference"), std::string::npos);
  EXPECT_NE(text.find('o'), std::string::npos);
  EXPECT_NE(text.find('|'), std::string::npos);  // y axis
  EXPECT_NE(text.find('+'), std::string::npos);  // origin
}

TEST(Plot, EmptyPlotIsPlaceholder) {
  AsciiPlot plot(20, 5);
  EXPECT_NE(plot.to_string().find("(empty plot)"), std::string::npos);
}

TEST(Plot, DegenerateRangesAreSafe) {
  AsciiPlot plot(20, 5);
  plot.add_series("flat", {1, 2, 3}, {7.0, 7.0, 7.0});   // zero y-range
  plot.add_series("point", {2}, {7.0});                   // single point
  EXPECT_FALSE(plot.to_string().empty());
}

TEST(Plot, RejectsBadShapes) {
  EXPECT_THROW(AsciiPlot(2, 2), iba::ContractViolation);
  AsciiPlot plot(20, 5);
  EXPECT_THROW(plot.add_series("bad", {1, 2}, {1}), iba::ContractViolation);
}

TEST(Cli, ParsesBothFlagSyntaxes) {
  ArgParser parser("prog", "test");
  parser.add_flag("n", "bins", "8192");
  parser.add_flag("lambda", "rate", "0.75");
  const char* argv[] = {"prog", "--n", "1024", "--lambda=0.99"};
  ASSERT_TRUE(parser.parse(4, argv));
  EXPECT_EQ(parser.get_uint("n"), 1024u);
  EXPECT_DOUBLE_EQ(parser.get_double("lambda"), 0.99);
  EXPECT_TRUE(parser.provided("n"));
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  ArgParser parser("prog", "test");
  parser.add_flag("rounds", "measured rounds", "1000");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parser.parse(1, argv));
  EXPECT_EQ(parser.get_uint("rounds"), 1000u);
  EXPECT_FALSE(parser.provided("rounds"));
}

TEST(Cli, HelpShortCircuits) {
  ArgParser parser("prog", "test");
  parser.add_flag("n", "bins", "1");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(parser.parse(2, argv));
  EXPECT_NE(parser.help_text().find("--n"), std::string::npos);
}

TEST(Cli, ErrorsOnMisuse) {
  ArgParser parser("prog", "test");
  parser.add_flag("n", "bins", "1");
  const char* unknown[] = {"prog", "--bogus", "3"};
  EXPECT_THROW((void)parser.parse(3, unknown), iba::ContractViolation);

  ArgParser parser2("prog", "test");
  parser2.add_flag("n", "bins", "1");
  const char* missing[] = {"prog", "--n"};
  EXPECT_THROW((void)parser2.parse(2, missing), iba::ContractViolation);

  ArgParser parser3("prog", "test");
  parser3.add_flag("n", "bins", "not-a-number");
  const char* none[] = {"prog"};
  ASSERT_TRUE(parser3.parse(1, none));
  EXPECT_THROW((void)parser3.get_uint("n"), iba::ContractViolation);
  EXPECT_THROW((void)parser3.get_bool("n"), iba::ContractViolation);
}

TEST(Cli, BooleanParsing) {
  ArgParser parser("prog", "test");
  parser.add_flag("csv", "write csv", "true");
  const char* argv[] = {"prog", "--csv", "off"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_FALSE(parser.get_bool("csv"));
}

TEST(Cli, NegativeRejectedForUnsigned) {
  ArgParser parser("prog", "test");
  parser.add_flag("n", "bins", "-5");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parser.parse(1, argv));
  EXPECT_EQ(parser.get_int("n"), -5);
  EXPECT_THROW((void)parser.get_uint("n"), iba::ContractViolation);
}


TEST(Cli, ParseHostPortAcceptsTheDocumentedShapes) {
  const HostPort plain = parse_host_port("127.0.0.1:9000", "--listen");
  EXPECT_EQ(plain.host, "127.0.0.1");
  EXPECT_EQ(plain.port, 9000);

  const HostPort named = parse_host_port("localhost:80", "--listen");
  EXPECT_EQ(named.host, "localhost");
  EXPECT_EQ(named.port, 80);

  const HostPort v6 = parse_host_port("[::1]:9000", "--listen");
  EXPECT_EQ(v6.host, "::1");
  EXPECT_EQ(v6.port, 9000);

  const HostPort any = parse_host_port(":9000", "--listen");
  EXPECT_EQ(any.host, "");
  EXPECT_EQ(any.port, 9000);

  const HostPort bare = parse_host_port("9000", "--listen");
  EXPECT_EQ(bare.host, "");
  EXPECT_EQ(bare.port, 9000);

  EXPECT_EQ(parse_host_port("h:65535", "--x").port, 65535);
  EXPECT_EQ(parse_host_port("h:1", "--x").port, 1);
}

TEST(Cli, ParseHostPortRejectsMalformedInput) {
  for (const char* bad :
       {"", "host:", ":", "host:0", "host:65536", "host:999999",
        "host:12x", "::1:9000", "[::1]9000", "[::1", "host:-1"}) {
    EXPECT_THROW((void)parse_host_port(bad, "--listen"), UsageError)
        << "'" << bad << "' should have been rejected";
  }
  // The diagnostic names the flag and the offending text.
  try {
    (void)parse_host_port("host:70000", "--connect");
    FAIL();
  } catch (const UsageError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("--connect"), std::string::npos) << what;
    EXPECT_NE(what.find("host:70000"), std::string::npos) << what;
  }
}

}  // namespace
