// Scenario DSL parser: accepted grammar, defaults, canonical-text fixed
// point, digest stability, and the negative battery — every malformed
// input must fail with a ScenarioError whose message names the
// origin:line, [section] and key (the exit-2 contract of scenario_run).
#include <gtest/gtest.h>

#include <string>

#include "scenario/scenario.hpp"

namespace iba::scenario {
namespace {

constexpr const char* kMinimal = R"(
[system]
n = 1024
c = 2

[arrival]
model = constant
lambda = 0.875

[run]
rounds = 100
)";

TEST(ScenarioParser, MinimalScenarioGetsDefaults) {
  const Scenario scn = parse_scenario(kMinimal, "test.scn");
  EXPECT_EQ(scn.n, 1024u);
  EXPECT_EQ(scn.capacity, 2u);
  EXPECT_EQ(scn.arrival.pattern, ArrivalPattern::kConstant);
  EXPECT_EQ(scn.arrival.distribution, core::ArrivalModel::kDeterministic);
  EXPECT_DOUBLE_EQ(scn.arrival.lambda, 0.875);
  EXPECT_EQ(scn.rounds, 100u);
  EXPECT_EQ(scn.burn_in, 0u);
  EXPECT_EQ(scn.seed, 1u);
  EXPECT_EQ(scn.kernel, core::RoundKernel::kBinMajor);
  EXPECT_EQ(scn.shards, 1u);
  EXPECT_TRUE(scn.fault_schedule.empty());
  EXPECT_FALSE(scn.control.enabled());
  EXPECT_FALSE(scn.expect.audit);
}

TEST(ScenarioParser, CanonicalTextIsAFixedPoint) {
  const Scenario scn = parse_scenario(kMinimal, "test.scn");
  const std::string canon = scn.canonical_text();
  const Scenario reparsed = parse_scenario(canon, "canon.scn");
  EXPECT_EQ(reparsed.canonical_text(), canon);
  EXPECT_EQ(reparsed.digest(), scn.digest());
}

TEST(ScenarioParser, DigestIgnoresExecutionHints) {
  const Scenario base = parse_scenario(kMinimal, "test.scn");
  const Scenario hinted = parse_scenario(R"(
[system]
n = 1024
c = 2
kernel = scalar

[arrival]
model = constant
lambda = 0.875

[run]
rounds = 100
checkpoint-every = 10
)",
                                         "test.scn");
  EXPECT_EQ(hinted.kernel, core::RoundKernel::kScalar);
  EXPECT_EQ(hinted.digest(), base.digest());

  // Semantics DO move the digest.
  Scenario other = base;
  other.seed = 2;
  EXPECT_NE(other.digest(), base.digest());
}

TEST(ScenarioParser, ParsesEveryArrivalPattern) {
  const Scenario sine = parse_scenario(R"(
[system]
n = 512
c = 1
[arrival]
model = sinusoid
lambda = 0.5
amplitude = 0.25
period = 64
phase = 8
[run]
rounds = 10
)",
                                       "t");
  EXPECT_EQ(sine.arrival.pattern, ArrivalPattern::kSinusoid);
  EXPECT_EQ(sine.arrival.period, 64u);
  EXPECT_EQ(sine.arrival.phase, 8u);

  const Scenario regimes = parse_scenario(R"(
[system]
n = 512
c = 1
[arrival]
model = regimes
schedule = 1:0.25; 50:0.75
[run]
rounds = 10
)",
                                          "t");
  ASSERT_EQ(regimes.arrival.regimes.size(), 2u);
  EXPECT_EQ(regimes.arrival.regimes[1].from, 50u);

  const Scenario trace = parse_scenario(R"(
[system]
n = 512
c = 1
[arrival]
model = trace
counts = 1, 2, 3
loop = off
[run]
rounds = 10
)",
                                        "t");
  ASSERT_EQ(trace.arrival.trace.size(), 3u);
  EXPECT_FALSE(trace.arrival.trace_loop);
}

TEST(ScenarioParser, FaultScheduleIsCanonicalized) {
  const Scenario scn = parse_scenario(R"(
[system]
n = 512
c = 1
[arrival]
model = constant
lambda = 0.5
[faults]
schedule = crash@10:bins=0-3,down=5
[run]
rounds = 20
)",
                                      "t");
  EXPECT_FALSE(scn.fault_schedule.empty());
  EXPECT_NE(scn.fault_schedule.find("crash@10"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Negative battery: each case must throw with a diagnostic naming the
// offending location.

void expect_error(const std::string& text, const std::string& needle) {
  try {
    (void)parse_scenario(text, "bad.scn");
    FAIL() << "expected ScenarioError containing '" << needle << "'";
  } catch (const ScenarioError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(needle), std::string::npos)
        << "diagnostic '" << what << "' lacks '" << needle << "'";
    EXPECT_NE(what.find("bad.scn:"), std::string::npos)
        << "diagnostic '" << what << "' lacks the origin:line prefix";
  }
}

TEST(ScenarioParserNegative, UnknownSection) {
  expect_error("[bogus]\nx = 1\n", "unknown section [bogus]");
}

TEST(ScenarioParserNegative, DuplicateSection) {
  expect_error("[system]\nn = 8\n[system]\nc = 1\n",
               "duplicate section [system]");
}

TEST(ScenarioParserNegative, KeyBeforeSection) {
  expect_error("n = 8\n", "before any [section]");
}

TEST(ScenarioParserNegative, DuplicateKey) {
  expect_error("[system]\nn = 8\nn = 9\n", "[system] n: duplicate key");
}

TEST(ScenarioParserNegative, UnknownKeyIsRejected) {
  expect_error(std::string(kMinimal) + "\n[expect]\nbogus-bound = 3\n",
               "[expect] bogus-bound: unknown key");
}

TEST(ScenarioParserNegative, MissingSystemSection) {
  expect_error("[arrival]\nmodel = constant\nlambda = 0.5\n[run]\nrounds = 1\n",
               "missing required section [system]");
}

TEST(ScenarioParserNegative, MissingRequiredKey) {
  expect_error("[system]\nc = 1\n[arrival]\nmodel = constant\nlambda = 0.5\n"
               "[run]\nrounds = 1\n",
               "[system] n: missing required key");
}

TEST(ScenarioParserNegative, OutOfRangeValue) {
  expect_error("[system]\nn = 8\nc = 0\n[arrival]\nmodel = constant\n"
               "lambda = 0.5\n[run]\nrounds = 1\n",
               "[system] c: value 0 out of range");
}

TEST(ScenarioParserNegative, MalformedNumber) {
  expect_error("[system]\nn = eight\nc = 1\n[arrival]\nmodel = constant\n"
               "lambda = 0.5\n[run]\nrounds = 1\n",
               "[system] n: expected an unsigned integer");
}

TEST(ScenarioParserNegative, UnknownArrivalModel) {
  expect_error("[system]\nn = 8\nc = 1\n[arrival]\nmodel = fractal\n"
               "[run]\nrounds = 1\n",
               "[arrival] model: unknown arrival model 'fractal'");
}

TEST(ScenarioParserNegative, SinusoidAmplitudeOverflow) {
  expect_error("[system]\nn = 8\nc = 1\n[arrival]\nmodel = sinusoid\n"
               "lambda = 0.9\namplitude = 0.2\nperiod = 16\n"
               "[run]\nrounds = 1\n",
               "[arrival] amplitude: lambda + amplitude exceeds 1");
}

TEST(ScenarioParserNegative, RegimesMustStartAtRoundOne) {
  expect_error("[system]\nn = 8\nc = 1\n[arrival]\nmodel = regimes\n"
               "schedule = 5:0.5\n[run]\nrounds = 1\n",
               "first regime must start at round 1");
}

TEST(ScenarioParserNegative, RegimesMustAscend) {
  expect_error("[system]\nn = 8\nc = 1\n[arrival]\nmodel = regimes\n"
               "schedule = 1:0.5; 10:0.6; 10:0.7\n[run]\nrounds = 1\n",
               "strictly ascending");
}

TEST(ScenarioParserNegative, TraceNeedsExactlyOneSource) {
  expect_error("[system]\nn = 8\nc = 1\n[arrival]\nmodel = trace\n"
               "[run]\nrounds = 1\n",
               "exactly one of trace=");
  expect_error("[system]\nn = 8\nc = 1\n[arrival]\nmodel = trace\n"
               "trace = x.trace\ncounts = 1,2\n[run]\nrounds = 1\n",
               "exactly one of trace=");
}

TEST(ScenarioParserNegative, TraceCountAboveNIsRejected) {
  expect_error("[system]\nn = 8\nc = 1\n[arrival]\nmodel = trace\n"
               "counts = 4, 9\n[run]\nrounds = 1\n",
               "[arrival] counts: trace count 9 exceeds n=8");
}

TEST(ScenarioParserNegative, ZipfParamWithoutZipfSkew) {
  expect_error("[system]\nn = 8\nc = 1\n[arrival]\nmodel = constant\n"
               "lambda = 0.5\nzipf-s = 2\n[run]\nrounds = 1\n",
               "[arrival] zipf-s: only meaningful with skew = zipf");
}

TEST(ScenarioParserNegative, AuditEveryWithoutAudit) {
  expect_error(std::string(kMinimal) + "\n[expect]\naudit-every = 8\n",
               "[expect] audit-every: only meaningful with audit = on");
}

TEST(ScenarioParserNegative, ShardsRequireBinMajor) {
  expect_error("[system]\nn = 8\nc = 1\nkernel = scalar\nshards = 4\n"
               "[arrival]\nmodel = constant\nlambda = 0.5\n[run]\nrounds = 1\n",
               "[system] shards: sharding requires kernel = bin-major");
}

TEST(ScenarioParserNegative, BadFaultScheduleIsNamed) {
  expect_error("[system]\nn = 8\nc = 1\n[arrival]\nmodel = constant\n"
               "lambda = 0.5\n[faults]\nschedule = explode@9\n"
               "[run]\nrounds = 1\n",
               "[faults] schedule:");
}

TEST(ScenarioParserNegative, AdmissionTargetNeedsBackpressure) {
  expect_error("[system]\nn = 8\nc = 1\n[arrival]\nmodel = constant\n"
               "lambda = 0.5\n[control]\npolicy = sweet-spot\n"
               "admission-target = 100\n[run]\nrounds = 1\n",
               "[control] admission-target: requires a [backpressure]");
}

TEST(ScenarioParserNegative, BadBooleanValue) {
  expect_error("[system]\nn = 8\nc = 1\n[arrival]\nmodel = trace\n"
               "counts = 1\nloop = maybe\n[run]\nrounds = 1\n",
               "[arrival] loop: expected on/off");
}

TEST(ScenarioParserNegative, UnsupportedVersion) {
  expect_error("[scenario]\nversion = 2\n" + std::string(kMinimal),
               "[scenario] version: value 2 out of range [1, 1]");
}

TEST(ScenarioParserNegative, MissingFileHasClearError) {
  try {
    (void)load_scenario_file("/nonexistent/x.scn");
    FAIL();
  } catch (const ScenarioError& error) {
    EXPECT_NE(std::string(error.what()).find("cannot open scenario file"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace iba::scenario
