// Tests of the fault subsystem: the schedule grammar (parse, round-trip,
// diagnostics), FaultPlan semantics (crash/repair timing, state loss vs
// retention, degradation, stragglers, crash-fullest, determinism), and
// the InvariantAuditor (clean on real runs, alarms on fabricated
// violations).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/capped.hpp"
#include "fault/auditor.hpp"
#include "fault/fault_plan.hpp"
#include "fault/schedule.hpp"
#include "telemetry/registry.hpp"

namespace {

using namespace iba;
using core::Capped;
using core::CappedConfig;
using core::Engine;
using fault::Event;
using fault::EventKind;
using fault::FaultPlan;
using fault::FaultSchedule;
using fault::InvariantAuditor;
using fault::parse_schedule;
using fault::ScheduleError;

CappedConfig small_config() {
  CappedConfig config;
  config.n = 64;
  config.capacity = 2;
  config.lambda_n = 56;
  return config;
}

std::uint64_t load_of(const Capped& p) {
  return p.total_load();
}

// ---------------------------------------------------------------- grammar

TEST(Schedule, ParsesEveryKind) {
  const auto s = parse_schedule(
      "crash@10:bins=0-4+9,down=5;"
      "crash-fullest@20:k=3,down=2-8,retain;"
      "degrade@5:bins=1,cap=1,for=10;"
      "straggle:bins=2-3,period=4,phase=1,from=7,for=100;"
      "random-crash:p=0.25,down=6,from=2,until=50;"
      "rolling@30:width=8,gap=10,count=3,down=12,retain");
  ASSERT_EQ(s.events.size(), 6u);
  EXPECT_EQ(s.events[0].kind, EventKind::kCrash);
  EXPECT_EQ(s.events[0].at, 10u);
  EXPECT_EQ(s.events[0].down_lo, 5u);
  EXPECT_EQ(s.events[0].down_hi, 5u);
  EXPECT_FALSE(s.events[0].retain);
  EXPECT_EQ(s.events[1].kind, EventKind::kCrashFullest);
  EXPECT_EQ(s.events[1].k, 3u);
  EXPECT_EQ(s.events[1].down_lo, 2u);
  EXPECT_EQ(s.events[1].down_hi, 8u);
  EXPECT_TRUE(s.events[1].retain);
  EXPECT_EQ(s.events[2].kind, EventKind::kDegrade);
  EXPECT_EQ(s.events[2].cap, 1u);
  EXPECT_EQ(s.events[2].duration, 10u);
  EXPECT_EQ(s.events[3].kind, EventKind::kStraggle);
  EXPECT_EQ(s.events[3].period, 4u);
  EXPECT_EQ(s.events[3].phase, 1u);
  EXPECT_EQ(s.events[4].kind, EventKind::kRandomCrash);
  EXPECT_DOUBLE_EQ(s.events[4].p, 0.25);
  EXPECT_EQ(s.events[4].until, 50u);
  EXPECT_EQ(s.events[5].kind, EventKind::kRolling);
  EXPECT_EQ(s.events[5].width, 8u);
  EXPECT_EQ(s.events[5].count, 3u);
}

TEST(Schedule, RoundTripsThroughToString) {
  const char* text =
      "crash@10:bins=0-4+9,down=5;"
      "degrade@5:bins=1,cap=1,for=10;"
      "random-crash:p=0.25,down=6,from=2,until=50";
  const auto parsed = parse_schedule(text);
  const auto rendered = fault::to_string(parsed);
  const auto reparsed = parse_schedule(rendered);
  EXPECT_EQ(fault::to_string(reparsed), rendered);
  ASSERT_EQ(reparsed.events.size(), parsed.events.size());
  EXPECT_EQ(reparsed.events[0].bins.ranges, parsed.events[0].bins.ranges);
}

TEST(Schedule, DiagnosticsNameTheProblem) {
  const auto message = [](const char* text) {
    try {
      (void)parse_schedule(text);
    } catch (const ScheduleError& e) {
      return std::string(e.what());
    }
    return std::string("(no error)");
  };
  EXPECT_NE(message("crash@5:down=5").find("bins"), std::string::npos);
  EXPECT_NE(message("crash:bins=1,down=5").find("@"), std::string::npos)
      << message("crash:bins=1,down=5");
  EXPECT_NE(message("crash@5:bins=9-3,down=5").find("range"),
            std::string::npos);
  EXPECT_NE(message("random-crash:p=1.5,down=5").find("p"),
            std::string::npos);
  EXPECT_NE(message("crash@5:bins=1,down=5,zap=2").find("zap"),
            std::string::npos);
  EXPECT_NE(message("frobnicate@5:bins=1").find("frobnicate"),
            std::string::npos);
  EXPECT_THROW((void)parse_schedule("straggle:bins=1,period=0"),
               ScheduleError);
  EXPECT_THROW((void)parse_schedule("crash@0:bins=1,down=5"), ScheduleError);
}

TEST(Schedule, PlanCtorValidatesAgainstGeometry) {
  EXPECT_THROW(FaultPlan(parse_schedule("crash@5:bins=64,down=5"), 64, 2, 1),
               ScheduleError);
  EXPECT_THROW(
      FaultPlan(parse_schedule("degrade@5:bins=1,cap=9,for=5"), 64, 2, 1),
      ScheduleError);
  EXPECT_THROW(
      FaultPlan(parse_schedule("crash-fullest@5:k=65,down=5"), 64, 2, 1),
      ScheduleError);
  EXPECT_NO_THROW(
      FaultPlan(parse_schedule("crash@5:bins=63,down=5"), 64, 2, 1));
}

// ---------------------------------------------------------------- plan

TEST(FaultPlanSemantics, CrashDowntimeAndRepairTiming) {
  // Bin 0 crashes at round 10 with down=3: no service in rounds 10-12,
  // repaired at the start of round 13.
  Capped p(small_config(), Engine(1));
  FaultPlan plan(parse_schedule("crash@10:bins=0,down=3,retain"), 64, 2, 1);
  p.set_fault_plan(&plan);
  for (int r = 1; r <= 9; ++r) (void)p.step();
  EXPECT_EQ(plan.crashes_total(), 0u);
  const auto m10 = p.step();
  EXPECT_EQ(plan.crashes_total(), 1u);
  EXPECT_EQ(m10.faulted_bins, 1u);
  (void)p.step();  // 11
  const auto m12 = p.step();
  EXPECT_EQ(m12.faulted_bins, 1u);
  EXPECT_EQ(plan.repairs_total(), 0u);
  const auto m13 = p.step();
  EXPECT_EQ(m13.faulted_bins, 0u);
  EXPECT_EQ(plan.repairs_total(), 1u);
}

TEST(FaultPlanSemantics, StateLossDrainsRetentionKeeps) {
  const char* retain_text = "crash@30:bins=0-63,down=5,retain";
  const char* loss_text = "crash@30:bins=0-63,down=5";

  // Retention: balls stay buffered through the outage.
  Capped retained(small_config(), Engine(3));
  FaultPlan retain_plan(parse_schedule(retain_text), 64, 2, 1);
  retained.set_fault_plan(&retain_plan);
  for (int r = 1; r <= 29; ++r) (void)retained.step();
  const std::uint64_t before = load_of(retained);
  ASSERT_GT(before, 0u);
  const auto mr = retained.step();
  EXPECT_EQ(mr.requeued, 0u);
  EXPECT_EQ(load_of(retained), before + mr.accepted);  // nothing deleted,
  EXPECT_EQ(mr.deleted, 0u);                           // nothing drained

  // State loss: every buffered ball returns to the pool that round.
  Capped lossy(small_config(), Engine(3));
  FaultPlan loss_plan(parse_schedule(loss_text), 64, 2, 1);
  lossy.set_fault_plan(&loss_plan);
  for (int r = 1; r <= 29; ++r) (void)lossy.step();
  const auto ml = lossy.step();
  EXPECT_GT(ml.requeued, 0u);
  EXPECT_EQ(load_of(lossy), 0u);
  EXPECT_EQ(ml.deleted, 0u);

  // Conservation holds in both runs.
  for (Capped* p : {&retained, &lossy}) {
    EXPECT_EQ(p->generated_total(),
              p->pool_size() + p->total_load() + p->deleted_total());
  }
}

TEST(FaultPlanSemantics, DegradeLowersAcceptanceBound) {
  // All bins degraded to cap=1 for rounds 5..204. With an effective
  // capacity of 1 every bin that accepts immediately serves, so the
  // end-of-round load of every bin is 0 throughout the degraded window
  // (with capacity 2 it can carry 1). Service keeps running at the
  // reduced bound, and after expiry bins buffer again.
  CappedConfig config = small_config();
  config.lambda_n = 62;  // pressure, so the bound binds
  Capped p(config, Engine(5));
  FaultPlan plan(parse_schedule("degrade@5:bins=0-63,cap=1,for=200"), 64, 2,
                 1);
  p.set_fault_plan(&plan);
  std::uint64_t deleted_degraded = 0;
  for (int r = 1; r <= 204; ++r) {
    const auto m = p.step();
    if (r >= 6) {
      ASSERT_EQ(p.total_load(), 0u) << "round " << r;
      deleted_degraded += m.deleted;
    }
  }
  EXPECT_GT(deleted_degraded, 0u) << "service must continue while degraded";
  std::uint64_t max_load_after = 0;
  for (int r = 205; r <= 260; ++r) {
    (void)p.step();
    for (std::uint32_t bin = 0; bin < 64; ++bin) {
      max_load_after = std::max(max_load_after, p.load(bin));
    }
  }
  EXPECT_GE(max_load_after, 1u) << "degradation should have expired";
}

TEST(FaultPlanSemantics, StragglersServeOnlyOnBeat) {
  // Period 3: the bin serves on rounds where (round - phase) % 3 == 0
  // and skips otherwise; skips are counted.
  Capped p(small_config(), Engine(7));
  FaultPlan plan(parse_schedule("straggle:bins=0-63,period=3"), 64, 2, 1);
  p.set_fault_plan(&plan);
  std::uint64_t served_on_beat = 0;
  for (int r = 1; r <= 30; ++r) {
    const auto m = p.step();
    if (r % 3 == 0) {
      EXPECT_EQ(m.faulted_bins, 0u) << "round " << r;
      served_on_beat += m.deleted;
    } else {
      EXPECT_EQ(m.faulted_bins, 64u) << "round " << r;
      EXPECT_EQ(m.deleted, 0u) << "round " << r;
    }
  }
  EXPECT_GT(served_on_beat, 0u);
  EXPECT_GT(plan.straggler_skips_total(), 0u);
}

TEST(FaultPlanSemantics, CrashFullestPicksTheLoadedBins) {
  // Manufacture imbalance: degrade all but bins 5 and 9 to cap 1, let
  // load build, then crash-fullest k=2 — bins 5 and 9 must be hit.
  CappedConfig config = small_config();
  config.lambda_n = 62;
  Capped p(config, Engine(9));
  FaultPlan plan(
      parse_schedule("degrade@1:bins=0-4+6-8+10-63,cap=1,for=300;"
                     "crash-fullest@50:k=2,down=10,retain"),
      64, 2, 1);
  p.set_fault_plan(&plan);
  for (int r = 1; r <= 49; ++r) (void)p.step();
  // Only bins 5 and 9 can reach load 2.
  const bool candidates_loaded = p.load(5) == 2 || p.load(9) == 2;
  const auto m = p.step();  // round 50
  EXPECT_EQ(plan.crashes_total(), 2u);
  EXPECT_EQ(m.faulted_bins, 2u);
  if (candidates_loaded) {
    // The fullest selection must include a maximal-load bin.
    EXPECT_TRUE(plan.down_bins() == 2);
  }
}

TEST(FaultPlanSemantics, DeterministicAcrossReplays) {
  const char* text =
      "random-crash:p=0.05,down=3-9;straggle:bins=0-9,period=2";
  std::uint64_t crashes = 0;
  std::uint64_t pool = 0;
  for (int replay = 0; replay < 2; ++replay) {
    Capped p(small_config(), Engine(11));
    FaultPlan plan(parse_schedule(text), 64, 2, 42);
    p.set_fault_plan(&plan);
    for (int r = 0; r < 200; ++r) (void)p.step();
    if (replay == 0) {
      crashes = plan.crashes_total();
      pool = p.pool_size();
      EXPECT_GT(crashes, 0u);
    } else {
      EXPECT_EQ(plan.crashes_total(), crashes);
      EXPECT_EQ(p.pool_size(), pool);
    }
  }
}

TEST(FaultPlanSemantics, FaultSeedIsItsOwnStream) {
  // Different fault seeds give different fault trajectories for the
  // same allocation seed — and never perturb a no-fire window.
  const char* text = "random-crash:p=0.05,down=5,from=100";
  Capped a(small_config(), Engine(13));
  Capped b(small_config(), Engine(13));
  FaultPlan plan_a(parse_schedule(text), 64, 2, 1);
  FaultPlan plan_b(parse_schedule(text), 64, 2, 2);
  a.set_fault_plan(&plan_a);
  b.set_fault_plan(&plan_b);
  for (int r = 0; r < 99; ++r) {
    const auto ma = a.step();
    const auto mb = b.step();
    ASSERT_EQ(ma.pool_size, mb.pool_size) << "pre-fault rounds must agree";
  }
  for (int r = 99; r < 400; ++r) {
    (void)a.step();
    (void)b.step();
  }
  EXPECT_NE(plan_a.crashes_total(), plan_b.crashes_total());
}

TEST(FaultPlanSemantics, InfiniteCapacityRejected) {
  CappedConfig config = small_config();
  config.capacity = Capped::kInfiniteCapacity;
  Capped p(config, Engine(1));
  FaultPlan plan(parse_schedule("crash@5:bins=0,down=2"), 64, 2, 1);
  EXPECT_THROW(p.set_fault_plan(&plan), ContractViolation);
}

// ---------------------------------------------------------------- auditor

TEST(Auditor, CleanOnRealRunsEvenUnderFaults) {
  telemetry::Registry registry;
  Capped p(small_config(), Engine(17));
  FaultPlan plan(
      parse_schedule("crash@20:bins=0-31,down=10;random-crash:p=0.01,"
                     "down=3-9;straggle:bins=40-50,period=3"),
      64, 2, 1);
  p.set_fault_plan(&plan);
  InvariantAuditor auditor(/*cadence=*/1, &registry);
  for (int r = 0; r < 300; ++r) auditor.observe(p, p.step());
  EXPECT_TRUE(auditor.ok()) << (auditor.violations().empty()
                                    ? std::string("?")
                                    : auditor.violations().front().detail);
  EXPECT_EQ(auditor.rounds_audited(), 300u);
  EXPECT_EQ(auditor.deep_audits(), 300u);
  EXPECT_EQ(registry.counter("audit_violations_total").value(), 0u);
  // Counter mutations compile out with -DIBA_TELEMETRY=OFF.
  EXPECT_EQ(registry.counter("audit_rounds_total").value(),
            IBA_TELEMETRY_ENABLED != 0 ? 300u : 0u);
}

// Age monotonicity inside a bin is NOT an invariant once a queue can
// carry balls accepted in different rounds: a retrying old ball is
// legitimately accepted behind a younger resident (oldest-first ranks
// only the balls thrown to the bin that round). A straggler that skips
// service keeps such a pair visible at the audit point (this exact
// setup flagged fifo_order before the check was scoped), and capacity
// >= 3 exposes it even unfaulted. The auditor must stay silent there.
TEST(Auditor, FifoCheckScopedToSoundRegime) {
  {
    CappedConfig config;
    config.n = 2048;
    config.capacity = 2;
    config.lambda_n = 1920;
    Capped p(config, Engine(11));
    FaultPlan plan(parse_schedule("straggle:bins=1500-1599,period=3"),
                   config.n, config.capacity, 1);
    p.set_fault_plan(&plan);
    InvariantAuditor auditor(/*cadence=*/1);
    for (int r = 0; r < 60; ++r) auditor.observe(p, p.step());
    EXPECT_TRUE(auditor.ok()) << (auditor.violations().empty()
                                      ? std::string("?")
                                      : auditor.violations().front().detail);
  }
  {
    CappedConfig config = small_config();
    config.capacity = 3;
    Capped p(config, Engine(23));
    InvariantAuditor auditor(/*cadence=*/1);
    for (int r = 0; r < 400; ++r) auditor.observe(p, p.step());
    EXPECT_TRUE(auditor.ok()) << (auditor.violations().empty()
                                      ? std::string("?")
                                      : auditor.violations().front().detail);
  }
}

TEST(Auditor, CadenceThrottlesDeepChecks) {
  Capped p(small_config(), Engine(19));
  InvariantAuditor auditor(/*cadence=*/10);
  for (int r = 0; r < 100; ++r) auditor.observe(p, p.step());
  EXPECT_EQ(auditor.rounds_audited(), 100u);
  EXPECT_EQ(auditor.deep_audits(), 10u);
  EXPECT_TRUE(auditor.ok());
}

TEST(Auditor, FlagsFabricatedViolations) {
  telemetry::Registry registry;
  Capped p(small_config(), Engine(21));
  InvariantAuditor auditor(/*cadence=*/1, &registry);
  auto m = p.step();
  m.wait_count = m.deleted + 5;  // break wait-per-delete
  m.round = 7;                   // break round coherence (process is at 1)
  auditor.observe(p, m);
  EXPECT_FALSE(auditor.ok());
  EXPECT_GE(auditor.violation_count(), 2u);
  // Counter mutations compile out with -DIBA_TELEMETRY=OFF.
  EXPECT_EQ(registry.counter("audit_violations_total").value(),
            IBA_TELEMETRY_ENABLED != 0 ? auditor.violation_count() : 0u);
  bool saw_wait = false;
  bool saw_round = false;
  for (const auto& v : auditor.violations()) {
    if (v.invariant == "wait_per_delete") saw_wait = true;
    if (v.invariant == "round_coherent") saw_round = true;
  }
  EXPECT_TRUE(saw_wait);
  EXPECT_TRUE(saw_round);
}

TEST(Auditor, DetectsConservationBreakInDoctoredProcess) {
  // Restore a snapshot whose generated_total was tampered with: the
  // deep conservation check must fire on the next observed round.
  Capped p(small_config(), Engine(23));
  for (int r = 0; r < 50; ++r) (void)p.step();
  auto snap = p.snapshot();
  snap.generated_total += 3;  // three phantom balls
  Capped doctored(snap);
  InvariantAuditor auditor(/*cadence=*/1);
  auditor.observe(doctored, doctored.step());
  EXPECT_FALSE(auditor.ok());
  bool saw = false;
  for (const auto& v : auditor.violations()) {
    if (v.invariant == "conservation") saw = true;
  }
  EXPECT_TRUE(saw);
}

}  // namespace
