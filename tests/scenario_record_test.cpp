// Scenario-level recording: the [record] section parses and stays out
// of the digest, a recorded run writes a deterministic time series, the
// trigger battery lands CRC-bound bundles, and the bundle/series bytes
// are invariant across kernels, shard counts and kill-and-resume — the
// acceptance contract of the flight recorder. Skipped where it needs
// samples under -DIBA_TELEMETRY=OFF.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/assert.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/timeseries.hpp"

namespace iba::scenario {
namespace {

constexpr bool kOn = telemetry::TimeSeries::kEnabled;

constexpr const char* kBase = R"(
[system]
n = 512
c = 2

[arrival]
model = constant
lambda = 0.9375

[run]
rounds = 120
burn-in = 40
seed = 7
)";

constexpr const char* kRecorded = R"(
[system]
n = 512
c = 2

[arrival]
model = constant
lambda = 0.9375

[run]
rounds = 120
burn-in = 40
seed = 7

[record]
timeseries = true
cadence = 2
window = 16
shed-spike = 50
)";

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

TEST(ScenarioRecord, SectionParsesWithDefaults) {
  const Scenario plain = parse_scenario(kBase, "test.scn");
  EXPECT_FALSE(plain.record.timeseries);
  EXPECT_EQ(plain.record.cadence, 1u);
  EXPECT_EQ(plain.record.window, 64u);
  EXPECT_EQ(plain.record.shed_spike, 0u);

  const Scenario recorded = parse_scenario(kRecorded, "test.scn");
  EXPECT_TRUE(recorded.record.timeseries);
  EXPECT_EQ(recorded.record.cadence, 2u);
  EXPECT_EQ(recorded.record.window, 16u);
  EXPECT_EQ(recorded.record.shed_spike, 50u);
}

TEST(ScenarioRecord, RecordSectionIsAnExecutionHint) {
  const Scenario plain = parse_scenario(kBase, "test.scn");
  const Scenario recorded = parse_scenario(kRecorded, "test.scn");
  // Recording must not change what the scenario *is*: same canonical
  // text, same digest, same artifact bytes.
  EXPECT_EQ(plain.canonical_text(), recorded.canonical_text());
  EXPECT_EQ(plain.digest(), recorded.digest());
}

TEST(ScenarioRecord, RecordingLeavesTheArtifactUntouched) {
  if (!kOn) GTEST_SKIP() << "telemetry compiled out";
  const Scenario scn = parse_scenario(kRecorded, "test.scn");
  TempFile series("record_test.timeseries");

  const RunOutcome bare = run_scenario(parse_scenario(kBase, "test.scn"));
  RunOptions options;
  options.timeseries_out = series.path;
  const RunOutcome recorded = run_scenario(scn, options);
  EXPECT_EQ(artifact::render_artifact(recorded.artifact),
            artifact::render_artifact(bare.artifact));

  const std::string text = read_file(series.path);
  EXPECT_EQ(text.rfind("iba-timeseries 1\n", 0), 0u) << text.substr(0, 40);
  EXPECT_NE(text.find("cadence = 2"), std::string::npos);
}

TEST(ScenarioRecord, DebugTriggerLandsAVerifiedBundle) {
  if (!kOn) GTEST_SKIP() << "telemetry compiled out";
  const Scenario scn = parse_scenario(kRecorded, "test.scn");
  TempFile bundle("record_test.postmortem");
  RunOptions options;
  options.flight_recorder = bundle.path;
  options.debug_trigger = "manual";
  (void)run_scenario(scn, options);

  const telemetry::PostmortemBundle parsed =
      telemetry::read_bundle_file(bundle.path);
  EXPECT_EQ(parsed.trigger, "manual");
  EXPECT_EQ(parsed.scenario, scn.name);
  EXPECT_EQ(parsed.digest, scn.digest());
  EXPECT_EQ(parsed.seed, 7u);
  EXPECT_EQ(parsed.n, 512u);
  EXPECT_NE(parsed.engine, "0");  // fingerprint was stamped
  EXPECT_EQ(parsed.round, 160u);  // fired after burn-in + rounds
  EXPECT_EQ(parsed.cadence, 2u);
  EXPECT_GT(parsed.samples, 0u);
}

TEST(ScenarioRecord, ExpectationFailureFiresTheRecorder) {
  if (!kOn) GTEST_SKIP() << "telemetry compiled out";
  // An impossible expectation: the pool can never be this empty at
  // λ ≈ 0.94, so the [expect] evaluation must fail and fire the trigger.
  Scenario scn = parse_scenario(kRecorded, "test.scn");
  scn.expect.max_pool_over_n = 1e-9;
  TempFile bundle("record_test_expect.postmortem");
  RunOptions options;
  options.flight_recorder = bundle.path;
  const RunOutcome outcome = run_scenario(scn, options);
  EXPECT_FALSE(outcome.expectations_ok);
  const telemetry::PostmortemBundle parsed =
      telemetry::read_bundle_file(bundle.path);
  EXPECT_EQ(parsed.trigger, "expectation-failure");
}

TEST(ScenarioRecord, BundleBytesAreKernelAndShardInvariant) {
  if (!kOn) GTEST_SKIP() << "telemetry compiled out";
  const Scenario scn = parse_scenario(kRecorded, "test.scn");

  auto bundle_of = [&](RunOptions options, const std::string& path) {
    TempFile bundle(path);
    options.flight_recorder = bundle.path;
    options.debug_trigger = "manual";
    (void)run_scenario(scn, options);
    return read_file(bundle.path);
  };

  RunOptions bin_major;
  const std::string reference = bundle_of(bin_major, "rb_ref.postmortem");
  ASSERT_FALSE(reference.empty());

  RunOptions scalar;
  scalar.kernel = core::RoundKernel::kScalar;
  EXPECT_EQ(bundle_of(scalar, "rb_scalar.postmortem"), reference);

  RunOptions sharded;
  sharded.shards = 4;
  EXPECT_EQ(bundle_of(sharded, "rb_sharded.postmortem"), reference);
}

TEST(ScenarioRecord, KillAndResumeReproducesSeriesAndBundle) {
  if (!kOn) GTEST_SKIP() << "telemetry compiled out";
  const Scenario scn = parse_scenario(kRecorded, "test.scn");

  TempFile ref_series("rr_ref.timeseries");
  TempFile ref_bundle("rr_ref.postmortem");
  {
    RunOptions options;
    options.timeseries_out = ref_series.path;
    options.flight_recorder = ref_bundle.path;
    options.debug_trigger = "manual";
    (void)run_scenario(scn, options);
  }

  TempFile ckpt("rr.ckpt");
  TempFile ckpt_progress("rr.ckpt.progress");
  TempFile ckpt_record("rr.ckpt.record");
  TempFile res_series("rr_res.timeseries");
  TempFile res_bundle("rr_res.postmortem");
  {
    RunOptions first;
    first.timeseries_out = res_series.path;
    first.flight_recorder = res_bundle.path;
    first.checkpoint_out = ckpt.path;
    first.stop_after = 90;  // mid-run, mid-fold
    const RunOutcome stopped = run_scenario(scn, first);
    EXPECT_FALSE(stopped.complete);
  }
  {
    RunOptions second;
    second.timeseries_out = res_series.path;
    second.flight_recorder = res_bundle.path;
    second.debug_trigger = "manual";
    second.resume = ckpt.path;
    const RunOutcome finished = run_scenario(scn, second);
    EXPECT_TRUE(finished.complete);
  }
  EXPECT_EQ(read_file(res_series.path), read_file(ref_series.path));
  EXPECT_EQ(read_file(res_bundle.path), read_file(ref_bundle.path));
}

TEST(ScenarioRecord, ResumingARecordingRunRequiresTheSidecar) {
  if (!kOn) GTEST_SKIP() << "telemetry compiled out";
  const Scenario scn = parse_scenario(kRecorded, "test.scn");
  TempFile ckpt("rs.ckpt");
  TempFile ckpt_progress("rs.ckpt.progress");
  TempFile ckpt_record("rs.ckpt.record");
  TempFile series("rs.timeseries");
  {
    RunOptions first;
    first.timeseries_out = series.path;
    first.checkpoint_out = ckpt.path;
    first.stop_after = 90;
    (void)run_scenario(scn, first);
  }
  std::remove(ckpt_record.path.c_str());
  RunOptions second;
  second.timeseries_out = series.path;
  second.resume = ckpt.path;
  EXPECT_THROW((void)run_scenario(scn, second), std::runtime_error);
}

TEST(ScenarioRecord, BadDebugTriggerIsAContractViolation) {
  const Scenario scn = parse_scenario(kBase, "test.scn");
  RunOptions options;
  options.flight_recorder = "never_written.postmortem";
  options.debug_trigger = "no-such-trigger";
  EXPECT_THROW((void)run_scenario(scn, options), iba::ContractViolation);
}

}  // namespace
}  // namespace iba::scenario
