// Telemetry subsystem: registry instruments, merge semantics, the SPSC
// round trace (including a real producer/consumer thread pair), phase
// timers, and golden-file round-trips through both exporters.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "telemetry/export.hpp"
#include "telemetry/phase_timers.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/round_trace.hpp"
#include "telemetry/shared_registry.hpp"

namespace {

using iba::telemetry::DyadicHistogram;
using iba::telemetry::PhaseTimers;
using iba::telemetry::Phase;
using iba::telemetry::Registry;
using iba::telemetry::RoundEvent;
using iba::telemetry::RoundTrace;
using iba::telemetry::SharedRegistry;
using iba::telemetry::SpscRing;

#if IBA_TELEMETRY_ENABLED

TEST(Registry, CountersAccumulateAndAreStable) {
  Registry registry;
  auto& counter = registry.counter("events_total");
  counter.inc();
  counter.inc(41);
  // Same name resolves to the same instrument.
  EXPECT_EQ(registry.counter("events_total").value(), 42u);
  // Creating more instruments must not invalidate the first handle.
  for (int i = 0; i < 100; ++i) {
    (void)registry.counter("other_" + std::to_string(i));
  }
  counter.inc();
  EXPECT_EQ(registry.counter("events_total").value(), 43u);
}

TEST(Registry, GaugeTracksLastAndMax) {
  Registry registry;
  auto& gauge = registry.gauge("pool");
  gauge.set(5.0);
  gauge.set(9.0);
  gauge.set(2.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.0);
  EXPECT_DOUBLE_EQ(gauge.max(), 9.0);
}

TEST(Registry, HistogramCountsSumAndQuantiles) {
  Registry registry;
  auto& histogram = registry.histogram("wait");
  for (std::uint64_t v = 0; v < 100; ++v) histogram.observe(v);
  EXPECT_EQ(histogram.count(), 100u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 4950.0);
  EXPECT_EQ(histogram.max(), 99u);
  EXPECT_GE(histogram.quantile_upper_bound(0.99), 98u);
  EXPECT_LE(histogram.quantile_upper_bound(0.99), 127u);
}

TEST(Registry, MergeSemantics) {
  Registry a;
  a.counter("c").inc(10);
  a.gauge("g").set(3.0);
  a.histogram("h").observe(4);

  Registry b;
  b.counter("c").inc(5);
  b.counter("only_b").inc(1);
  b.gauge("g").set(7.0);
  b.histogram("h").observe(8);

  a.merge(b);
  EXPECT_EQ(a.counter("c").value(), 15u);       // counters: sum
  EXPECT_EQ(a.counter("only_b").value(), 1u);   // created on demand
  EXPECT_DOUBLE_EQ(a.gauge("g").value(), 7.0);  // gauges: max
  EXPECT_EQ(a.histogram("h").count(), 2u);      // histograms: bucket sum
  EXPECT_DOUBLE_EQ(a.histogram("h").sum(), 12.0);
}

TEST(Registry, ShiftedHistogramBucketsAtCoarserGranularity) {
  Registry registry;
  auto& ns_hist = registry.histogram("step_ns", 10);  // ~µs resolution
  EXPECT_EQ(ns_hist.shift(), 10u);
  ns_hist.observe(1 << 10);
  ns_hist.observe((1 << 11) - 1);  // same 2^shift bucket as 1<<10
  EXPECT_EQ(ns_hist.count(), 2u);
  EXPECT_EQ(ns_hist.buckets().count(1), 2u);  // both land in bucket [1,2)
  EXPECT_EQ(ns_hist.max(), (1u << 11) - 1);
  // Quantile bounds are scaled back into value space.
  EXPECT_GE(ns_hist.quantile_upper_bound(1.0), (1u << 11) - 1);

  // Re-resolving with the same shift is fine; a different shift is a
  // contract violation — one name must mean one bucket layout.
  EXPECT_EQ(&registry.histogram("step_ns", 10), &ns_hist);
  EXPECT_THROW((void)registry.histogram("step_ns", 3),
               iba::ContractViolation);
  // The shift-less accessor on an existing shifted histogram just
  // returns it — only an explicit conflicting shift is rejected.
  EXPECT_EQ(registry.histogram("step_ns").shift(), 10u);
}

TEST(Registry, HistogramMergeRejectsMismatchedLayouts) {
  DyadicHistogram coarse(10), fine(0);
  coarse.observe(2048);
  fine.observe(2048);
  EXPECT_FALSE(coarse.layout_compatible(fine));
  EXPECT_THROW(coarse.merge(fine), iba::ContractViolation);

  Registry a, b;
  a.histogram("step_ns", 10).observe(4096);
  b.histogram("step_ns").observe(4096);
  try {
    a.merge(b);
    FAIL() << "merge of mismatched layouts must throw";
  } catch (const iba::ContractViolation& e) {
    // The error must name the metric so the operator can find the caller.
    EXPECT_NE(std::string(e.what()).find("step_ns"), std::string::npos)
        << e.what();
  }
}

TEST(Registry, MergeAdoptsAbsentHistogramsWithTheirShift) {
  Registry source;
  source.histogram("step_ns", 10).observe(2048);
  source.histogram("wait_rounds").observe(5);

  Registry target;
  target.merge(source);
  EXPECT_EQ(target.histogram("step_ns", 10).shift(), 10u);
  EXPECT_EQ(target.histogram("step_ns", 10).count(), 1u);
  EXPECT_EQ(target.histogram("wait_rounds").shift(), 0u);
  // A second merge now goes down the layout-checked path and still works.
  target.merge(source);
  EXPECT_EQ(target.histogram("step_ns", 10).count(), 2u);

  // Shifted histograms survive the exporters: le edges are scaled back
  // into value space (4096 >> 10 = 4 sits in the bucket whose scaled
  // upper edge is 4·2^10 − 1 = 4095).
  std::ostringstream prom;
  iba::telemetry::write_prometheus(target, prom);
  EXPECT_NE(prom.str().find("iba_step_ns_bucket{le=\"4095\"} 2"),
            std::string::npos)
      << prom.str();
}

TEST(Registry, MergeOrderGivesIdenticalExports) {
  // Simulates the replication path: replica registries merged in replica
  // order must export identical bytes no matter how they were produced.
  auto make_replica = [](std::uint64_t salt) {
    Registry r;
    r.counter("rounds_total").inc(100 + salt);
    r.gauge("pool_size").set(static_cast<double>(salt) * 0.25);
    r.histogram("wait_rounds").observe(salt);
    return r;
  };
  Registry merged_a, merged_b;
  for (std::uint64_t salt : {3u, 1u, 2u}) {
    merged_a.merge(make_replica(salt));
    merged_b.merge(make_replica(salt));
  }
  std::ostringstream a, b;
  iba::telemetry::write_prometheus(merged_a, a);
  iba::telemetry::write_prometheus(merged_b, b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Export, PrometheusGolden) {
  Registry registry;
  registry.counter("balls_deleted_total").inc(7);
  registry.gauge("pool_size").set(12.5);
  auto& histogram = registry.histogram("wait_rounds");
  histogram.observe(0);
  histogram.observe(1);
  histogram.observe(5);

  std::ostringstream out;
  iba::telemetry::write_prometheus(registry, out);
  const std::string expected =
      "# TYPE iba_balls_deleted_total counter\n"
      "iba_balls_deleted_total 7\n"
      "# TYPE iba_pool_size gauge\n"
      "iba_pool_size 12.5\n"
      "# TYPE iba_wait_rounds histogram\n"
      "iba_wait_rounds_bucket{le=\"0\"} 1\n"
      "iba_wait_rounds_bucket{le=\"1\"} 2\n"
      "iba_wait_rounds_bucket{le=\"3\"} 2\n"
      "iba_wait_rounds_bucket{le=\"7\"} 3\n"
      "iba_wait_rounds_bucket{le=\"+Inf\"} 3\n"
      "iba_wait_rounds_sum 6\n"
      "iba_wait_rounds_count 3\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(Export, JsonLinesGolden) {
  Registry registry;
  registry.counter("balls_deleted_total").inc(7);
  registry.gauge("pool_size").set(12.5);
  auto& histogram = registry.histogram("wait_rounds");
  histogram.observe(0);
  histogram.observe(1);
  histogram.observe(5);

  std::ostringstream out;
  iba::telemetry::write_json_line(registry, out);
  const std::string expected =
      "{\"counters\":{\"balls_deleted_total\":7},"
      "\"gauges\":{\"pool_size\":{\"value\":12.5,\"max\":12.5}},"
      "\"histograms\":{\"wait_rounds\":{\"count\":3,\"sum\":6,\"max\":5,"
      "\"buckets\":[{\"le\":0,\"count\":1},{\"le\":1,\"count\":1},"
      "{\"le\":7,\"count\":1}]}}}\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(Export, RoundTripThroughBothExportersAgrees) {
  // The same registry must tell the same story through both formats:
  // identical counter values, identical histogram count/sum.
  Registry registry;
  registry.counter("rounds_total").inc(1000);
  registry.histogram("wait_rounds").observe(42);

  std::ostringstream prom, jsonl;
  iba::telemetry::write_prometheus(registry, prom);
  iba::telemetry::write_json_line(registry, jsonl);
  EXPECT_NE(prom.str().find("iba_rounds_total 1000"), std::string::npos);
  EXPECT_NE(jsonl.str().find("\"rounds_total\":1000"), std::string::npos);
  EXPECT_NE(prom.str().find("iba_wait_rounds_count 1"), std::string::npos);
  EXPECT_NE(jsonl.str().find("\"count\":1"), std::string::npos);
}

TEST(Export, SanitizesMetricNames) {
  EXPECT_EQ(iba::telemetry::sanitize_metric_name("a.b c-d"), "a_b_c_d");
  EXPECT_EQ(iba::telemetry::sanitize_metric_name("9lives"), "_9lives");
  EXPECT_EQ(iba::telemetry::sanitize_metric_name("ok_name:x"), "ok_name:x");
}

TEST(Export, SnapshotFilePicksFormatByExtension) {
  Registry registry;
  registry.counter("c").inc(1);
  const std::string prom_path = ::testing::TempDir() + "snap.prom";
  const std::string json_path = ::testing::TempDir() + "snap.jsonl";
  ASSERT_TRUE(iba::telemetry::write_snapshot_file(registry, prom_path));
  ASSERT_TRUE(iba::telemetry::write_snapshot_file(registry, json_path));
  std::ifstream prom(prom_path), jsonl(json_path);
  std::string prom_first, json_first;
  std::getline(prom, prom_first);
  std::getline(jsonl, json_first);
  EXPECT_EQ(prom_first, "# TYPE iba_c counter");
  EXPECT_EQ(json_first.front(), '{');
}

TEST(PhaseTimersTest, AccumulatesAndReportsNsPerBall) {
  PhaseTimers timers;
  timers.add(Phase::kThrow, 1000, 10);
  timers.add(Phase::kThrow, 3000, 10);
  EXPECT_EQ(timers.ns(Phase::kThrow), 4000u);
  EXPECT_EQ(timers.balls(Phase::kThrow), 20u);
  EXPECT_EQ(timers.calls(Phase::kThrow), 2u);
  EXPECT_DOUBLE_EQ(timers.ns_per_ball(Phase::kThrow), 200.0);
  EXPECT_DOUBLE_EQ(timers.ns_per_ball(Phase::kDelete), 0.0);

  PhaseTimers other;
  other.add(Phase::kThrow, 1000, 5);
  timers.merge(other);
  EXPECT_EQ(timers.ns(Phase::kThrow), 5000u);
  EXPECT_EQ(timers.balls(Phase::kThrow), 25u);
}

TEST(PhaseTimersTest, ScopedTimerRecordsOnceAndStopDisarms) {
  PhaseTimers timers;
  {
    iba::telemetry::ScopedPhaseTimer timer(&timers, Phase::kAccept, 3);
    timer.stop();
    // Destructor must not double-record after stop().
  }
  EXPECT_EQ(timers.calls(Phase::kAccept), 1u);
  EXPECT_EQ(timers.balls(Phase::kAccept), 3u);
}

TEST(PhaseTimersTest, NullSinkIsInert) {
  iba::telemetry::ScopedPhaseTimer timer(nullptr, Phase::kMeasure);
  timer.stop();  // must not crash
}

TEST(PhaseTimersTest, RecordedIntoRegistryAsCounters) {
  PhaseTimers timers;
  timers.add(Phase::kThrow, 500, 50);
  Registry registry;
  iba::telemetry::record_phase_timers(registry, timers);
  EXPECT_EQ(registry.counter("phase_throw_ns_total").value(), 500u);
  EXPECT_EQ(registry.counter("phase_throw_balls_total").value(), 50u);
  EXPECT_EQ(registry.counter("phase_throw_calls_total").value(), 1u);
  // Untouched phases are omitted.
  EXPECT_EQ(registry.counters().count("phase_delete_ns_total"), 0u);
}

TEST(RoundTraceTest, FifoOrderAndWraparound) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (int lap = 0; lap < 3; ++lap) {
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(lap * 10 + i));
    int out = -1;
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(ring.try_pop(out));
      EXPECT_EQ(out, lap * 10 + i);
    }
    EXPECT_FALSE(ring.try_pop(out));
  }
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(RoundTraceTest, CountsDropsWhenFull) {
  SpscRing<int> ring(2);
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_FALSE(ring.try_push(3));
  EXPECT_FALSE(ring.try_push(4));
  EXPECT_EQ(ring.dropped(), 2u);
  int out = 0;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 1);  // dropped events never displace accepted ones
  EXPECT_TRUE(ring.try_push(5));
  EXPECT_EQ(ring.dropped(), 2u);
}

TEST(RoundTraceTest, RoundsCapacityUpToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  SpscRing<int> tiny(1);
  EXPECT_EQ(tiny.capacity(), 2u);
}

TEST(RoundTraceTest, ConcurrentProducerConsumerDeliversEverythingAccepted) {
  RoundTrace trace(64);
  constexpr std::uint64_t kEvents = 20000;
  std::uint64_t consumed = 0;
  std::uint64_t consumed_rounds_sum = 0;

  std::thread consumer([&] {
    RoundEvent event;
    // Run until the producer's sentinel (round == 0 never occurs
    // otherwise; rounds start at 1).
    for (;;) {
      if (!trace.try_pop(event)) {
        std::this_thread::yield();
        continue;
      }
      if (event.metrics.round == 0) break;
      ++consumed;
      consumed_rounds_sum += event.metrics.round;
    }
  });

  std::uint64_t accepted = 0;
  std::uint64_t accepted_rounds_sum = 0;
  for (std::uint64_t r = 1; r <= kEvents; ++r) {
    RoundEvent event;
    event.metrics.round = r;
    if (trace.try_push(event)) {
      ++accepted;
      accepted_rounds_sum += r;
    }
  }
  // Only the producer mutates the drop counter, so this read is exact.
  const std::uint64_t dropped_in_loop = trace.dropped();
  RoundEvent sentinel;  // round == 0
  while (!trace.try_push(sentinel)) std::this_thread::yield();
  consumer.join();

  EXPECT_EQ(consumed, accepted);
  EXPECT_EQ(consumed_rounds_sum, accepted_rounds_sum);
  EXPECT_EQ(accepted + dropped_in_loop, kEvents);
}

TEST(SharedRegistryTest, ConcurrentMergesAllLand) {
  SharedRegistry shared;
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&shared] {
      for (int i = 0; i < 1000; ++i) {
        Registry local;
        local.counter("hits_total").inc();
        shared.merge(local);
      }
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(shared.snapshot().counter("hits_total").value(), 4000u);
}

#else  // telemetry compiled out: instruments must be inert but usable

TEST(RegistryDisabled, InstrumentsAreNoOps) {
  Registry registry;
  registry.counter("c").inc(5);
  registry.gauge("g").set(1.0);
  registry.histogram("h").observe(3);
  EXPECT_TRUE(registry.empty());
  std::ostringstream out;
  iba::telemetry::write_prometheus(registry, out);
  EXPECT_TRUE(out.str().empty());
}

#endif  // IBA_TELEMETRY_ENABLED

}  // namespace
