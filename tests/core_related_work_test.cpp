// Tests for the remaining related-work protocols: ALWAYS-GO-LEFT[d],
// Stemann's collision protocol, and the infinite sequential
// reallocation chain.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>

#include "core/collision.hpp"
#include "core/reallocation.hpp"
#include "core/static_allocation.hpp"

namespace {

using namespace iba::core;

TEST(AlwaysGoLeft, Validation) {
  EXPECT_THROW((void)always_go_left(0, 1, 2, Engine(1)),
               iba::ContractViolation);
  EXPECT_THROW((void)always_go_left(8, 8, 1, Engine(1)),
               iba::ContractViolation);
  EXPECT_THROW((void)always_go_left(2, 2, 3, Engine(1)),
               iba::ContractViolation);
}

TEST(AlwaysGoLeft, ConservesBalls) {
  const auto result = always_go_left(100, 1000, 2, Engine(2));
  EXPECT_EQ(std::accumulate(result.loads.begin(), result.loads.end(),
                            std::uint64_t{0}),
            1000u);
  EXPECT_DOUBLE_EQ(result.average_load, 10.0);
}

TEST(AlwaysGoLeft, AtLeastAsGoodAsGreedyD) {
  // Vöcking: the asymmetric tie-break strictly improves the constant;
  // at m = n the max load should never exceed GREEDY[d]'s.
  const std::uint32_t n = 1 << 14;
  const auto left = always_go_left(n, n, 2, Engine(3));
  const auto greedy = greedy_d(n, n, 2, Engine(4));
  EXPECT_LE(left.max_load, greedy.max_load);
  EXPECT_LE(left.max_load, 5u);  // lnln n/(2 ln φ2) + O(1) is tiny here
}

TEST(AlwaysGoLeft, HandlesRemainderGroups) {
  // n not divisible by d: the last group absorbs the remainder and
  // every bin stays reachable.
  const auto result = always_go_left(10, 5000, 3, Engine(5));
  EXPECT_EQ(std::accumulate(result.loads.begin(), result.loads.end(),
                            std::uint64_t{0}),
            5000u);
  for (const auto load : result.loads) EXPECT_GT(load, 0u);
}

TEST(Collision, Validation) {
  EXPECT_THROW((void)run_collision_protocol(0, 1, 2, 1, Engine(1)),
               iba::ContractViolation);
  EXPECT_THROW((void)run_collision_protocol(8, 8, 0, 1, Engine(1)),
               iba::ContractViolation);
  EXPECT_THROW((void)run_collision_protocol(8, 8, 2, 0, Engine(1)),
               iba::ContractViolation);
}

TEST(Collision, ZeroBallsFinishImmediately) {
  const auto result = run_collision_protocol(8, 0, 2, 1, Engine(2));
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.rounds, 0u);
}

TEST(Collision, AllBallsAllocatedAndAccounted) {
  const auto result = run_collision_protocol(1024, 1024, 2, 2, Engine(3));
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(std::accumulate(result.loads.begin(), result.loads.end(),
                            std::uint64_t{0}),
            1024u);
  const auto allocated = std::accumulate(result.allocated_per_round.begin(),
                                         result.allocated_per_round.end(),
                                         std::uint64_t{0});
  EXPECT_EQ(allocated, 1024u);
}

TEST(Collision, FinishesInLogLogRoundsWithSmallLoad) {
  // Stemann: m = n, d = 2, collision bound 2 → O(log log n) rounds and
  // max load ≤ bound · rounds (in practice far less).
  const std::uint32_t n = 1 << 14;
  const auto result = run_collision_protocol(n, n, 2, 2, Engine(4));
  EXPECT_TRUE(result.completed);
  EXPECT_LE(result.rounds, 10u);
  EXPECT_LE(result.max_load, 2 * result.rounds);
  EXPECT_LE(result.max_load, 8u);
}

TEST(Collision, LargerBoundFewerRounds) {
  const std::uint32_t n = 1 << 12;
  const auto tight = run_collision_protocol(n, n, 2, 1, Engine(5), 10000);
  const auto loose = run_collision_protocol(n, n, 2, 4, Engine(5), 10000);
  ASSERT_TRUE(loose.completed);
  if (tight.completed) {
    EXPECT_LE(loose.rounds, tight.rounds);
  }
}

TEST(Reallocation, Validation) {
  EXPECT_THROW(SequentialReallocation({}, 4, 2, Engine(1)),
               iba::ContractViolation);
  EXPECT_THROW(SequentialReallocation({5}, 4, 2, Engine(1)),
               iba::ContractViolation);
  EXPECT_THROW(SequentialReallocation({0}, 0, 2, Engine(1)),
               iba::ContractViolation);
}

TEST(Reallocation, ConservesBalls) {
  auto chain = SequentialReallocation::round_robin(256, 2, Engine(2));
  EXPECT_EQ(chain.balls(), 256u);
  for (int i = 0; i < 100; ++i) {
    const auto m = chain.step();
    EXPECT_EQ(m.total_load, 256u);
    std::uint64_t total = 0;
    for (std::uint32_t bin = 0; bin < 256; ++bin) total += chain.load(bin);
    EXPECT_EQ(total, 256u);
  }
}

TEST(Reallocation, TwoChoiceKeepsMaxLoadTiny) {
  // Cole et al.: max load ln ln n / ln d + O(1) throughout poly time.
  auto chain = SequentialReallocation::round_robin(1 << 12, 2, Engine(3));
  std::uint64_t worst = 0;
  for (int round = 0; round < 200; ++round) {
    worst = std::max(worst, chain.step().max_load);
  }
  EXPECT_LE(worst, 5u);
}

TEST(Reallocation, RecoversFromAdversarialStart) {
  // All balls start in bin 0; after O(n log n) single-ball steps the
  // configuration must be balanced (every ball has been touched w.h.p.).
  const std::uint32_t n = 1 << 10;
  auto chain = SequentialReallocation::adversarial(n, 2, Engine(4));
  EXPECT_EQ(chain.max_load(), n);
  const auto rounds = static_cast<int>(
      3.0 * std::log(static_cast<double>(n))) + 1;
  for (int round = 0; round < rounds; ++round) (void)chain.step();
  EXPECT_LE(chain.max_load(), 6u);
}

TEST(Reallocation, OneChoiceWorseThanTwo) {
  auto one = SequentialReallocation::round_robin(1 << 12, 1, Engine(5));
  auto two = SequentialReallocation::round_robin(1 << 12, 2, Engine(6));
  std::uint64_t worst_one = 0, worst_two = 0;
  for (int round = 0; round < 100; ++round) {
    worst_one = std::max(worst_one, one.step().max_load);
    worst_two = std::max(worst_two, two.step().max_load);
  }
  EXPECT_GT(worst_one, worst_two);
}

}  // namespace
