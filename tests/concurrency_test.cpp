// Tests for the thread pool: result delivery, ordering-independent
// correctness, exception propagation, wait_idle semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "concurrency/thread_pool.hpp"

namespace {

using iba::concurrency::ThreadPool;
using iba::concurrency::parallel_for;
using iba::concurrency::parallel_for_ranges;

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.thread_count(), 2u);
  auto fut = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& fut : futures) fut.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    (void)pool.submit([&done] { ++done; });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(1);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)fut.get(), std::runtime_error);
}

TEST(ThreadPool, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
  auto fut = pool.submit([] { return 1; });
  EXPECT_EQ(fut.get(), 1);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  parallel_for(pool, 100, [&](std::size_t i) { ++hits[i]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelFor, PropagatesTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 10,
                            [](std::size_t i) {
                              if (i == 5) throw std::runtime_error("task 5");
                            }),
               std::runtime_error);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  parallel_for(pool, 0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForRanges, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  for (const std::size_t ranges : {1u, 2u, 3u, 7u}) {
    std::vector<std::atomic<int>> hits(100);
    parallel_for_ranges(pool, 100, ranges,
                        [&](std::size_t, std::size_t begin, std::size_t end) {
                          for (std::size_t i = begin; i < end; ++i) ++hits[i];
                        });
    for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ParallelForRanges, PartitionIsDeterministicAndBalanced) {
  // The split must be a pure function of (count, ranges): sizes differ by
  // at most one and larger chunks come first — sharded kernels rely on
  // this to pre-draw randomness per range.
  ThreadPool pool(2);
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> chunks(5);
  parallel_for_ranges(pool, 17, 5,
                      [&](std::size_t r, std::size_t begin, std::size_t end) {
                        const std::lock_guard lock(mutex);
                        chunks[r] = {begin, end};
                      });
  EXPECT_EQ(chunks, (std::vector<std::pair<std::size_t, std::size_t>>{
                        {0, 4}, {4, 8}, {8, 11}, {11, 14}, {14, 17}}));
}

TEST(ParallelForRanges, MoreRangesThanItemsSkipsEmptyChunks) {
  ThreadPool pool(2);
  std::atomic<int> invocations{0};
  std::vector<std::atomic<int>> hits(3);
  parallel_for_ranges(pool, 3, 8,
                      [&](std::size_t, std::size_t begin, std::size_t end) {
                        ++invocations;
                        for (std::size_t i = begin; i < end; ++i) ++hits[i];
                      });
  EXPECT_EQ(invocations.load(), 3);  // chunks beyond count never run
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelForRanges, PropagatesTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for_ranges(pool, 10, 3,
                          [](std::size_t r, std::size_t, std::size_t) {
                            if (r == 1) throw std::runtime_error("range 1");
                          }),
      std::runtime_error);
}

TEST(ParallelForRanges, RejectsZeroRanges) {
  ThreadPool pool(1);
  EXPECT_THROW(parallel_for_ranges(
                   pool, 4, 0, [](std::size_t, std::size_t, std::size_t) {}),
               iba::ContractViolation);
}

// Regression: a pool must stay usable after wait_idle — earlier drafts of
// such pools latch an "idle" flag or miss the wake notify on the next
// submit, hanging the second batch. Cycle through several
// submit/wait_idle generations, including empty ones.
TEST(ThreadPool, ReusableAcrossWaitIdleGenerations) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int generation = 1; generation <= 5; ++generation) {
    for (int i = 0; i < 20; ++i) {
      (void)pool.submit([&done] { ++done; });
    }
    pool.wait_idle();
    EXPECT_EQ(done.load(), generation * 20);
    pool.wait_idle();  // idle pool: must return immediately, not hang
  }
}

// Regression: wait_idle must cover tasks that are *running* but already
// popped from the queue, not just a non-empty queue.
TEST(ThreadPool, WaitIdleSeesInFlightTasks) {
  ThreadPool pool(1);
  std::atomic<bool> entered{false};
  std::atomic<bool> finished{false};
  (void)pool.submit([&] {
    entered = true;
    while (!finished) std::this_thread::yield();
  });
  while (!entered) std::this_thread::yield();
  // The queue is now empty but the task is mid-flight; release it from a
  // second thread and verify wait_idle only returns after it completes.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    finished = true;
  });
  pool.wait_idle();
  EXPECT_TRUE(finished.load());
  releaser.join();
}

// Regression: the destructor drains every queued task before joining (the
// documented contract), and a single-worker pool preserves FIFO order —
// replication correctness depends on tasks never being skipped.
TEST(ThreadPool, PinningIsBestEffortAndInert) {
  // Pinning is a placement hint: every worker must still run tasks, and
  // results cannot depend on it. pinned_count() reports how many stuck
  // (Linux: all of them; elsewhere: zero — both are valid).
  ThreadPool pinned(4, /*pin_threads=*/true);
  EXPECT_EQ(pinned.thread_count(), 4u);
  EXPECT_LE(pinned.pinned_count(), pinned.thread_count());
#if defined(__linux__)
  EXPECT_EQ(pinned.pinned_count(), pinned.thread_count());
#else
  EXPECT_EQ(pinned.pinned_count(), 0u);
#endif

  // Same deterministic range partition with and without pinning: the
  // partition is a pure function of (count, ranges), so the per-range
  // sums must agree exactly whichever workers ran them.
  const auto run_partition = [](bool pin) {
    ThreadPool pool(4, pin);
    std::vector<std::uint64_t> sums(7, 0);
    parallel_for_ranges(pool, 1000, 7,
                        [&sums](std::size_t i, std::size_t lo, std::size_t hi) {
                          std::uint64_t s = 0;
                          for (std::size_t k = lo; k < hi; ++k) s += k * k;
                          sums[i] = s;
                        });
    return sums;
  };
  EXPECT_EQ(run_partition(true), run_partition(false));
}

TEST(ThreadPool, UnpinnedPoolReportsZeroPinned) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.pinned_count(), 0u);
}

TEST(ThreadPool, DestructorDrainsQueueInOrder) {
  std::vector<int> order;
  std::mutex order_mutex;
  {
    ThreadPool pool(1);
    // A slow head task guarantees the rest are still queued at ~ThreadPool.
    (void)pool.submit(
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(20)); });
    for (int i = 0; i < 32; ++i) {
      (void)pool.submit([&order, &order_mutex, i] {
        const std::lock_guard lock(order_mutex);
        order.push_back(i);
      });
    }
  }  // destructor must run all 32, front to back
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

}  // namespace
