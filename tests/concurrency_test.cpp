// Tests for the thread pool: result delivery, ordering-independent
// correctness, exception propagation, wait_idle semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "concurrency/thread_pool.hpp"

namespace {

using iba::concurrency::ThreadPool;
using iba::concurrency::parallel_for;

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.thread_count(), 2u);
  auto fut = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& fut : futures) fut.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    (void)pool.submit([&done] { ++done; });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(1);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)fut.get(), std::runtime_error);
}

TEST(ThreadPool, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
  auto fut = pool.submit([] { return 1; });
  EXPECT_EQ(fut.get(), 1);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  parallel_for(pool, 100, [&](std::size_t i) { ++hits[i]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelFor, PropagatesTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 10,
                            [](std::size_t i) {
                              if (i == 5) throw std::runtime_error("task 5");
                            }),
               std::runtime_error);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  parallel_for(pool, 0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

}  // namespace
