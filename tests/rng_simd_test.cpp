// Bit-exactness battery for the vectorized fill_bounded: the AVX2 path
// must produce the exact scalar stream — values AND engine position —
// for every length, range, and rejection pattern, and the runtime
// dispatch must degrade to scalar when asked (env/flag) or when the CPU
// cannot run AVX2.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "rng/bounded.hpp"
#include "rng/simd.hpp"
#include "rng/xoshiro256.hpp"

namespace {

using iba::rng::SimdBackend;
using iba::rng::Xoshiro256pp;

/// Pins a backend for one test and always restores auto-resolution.
class BackendGuard {
 public:
  explicit BackendGuard(SimdBackend backend) {
    iba::rng::set_simd_backend(backend);
  }
  ~BackendGuard() { iba::rng::reset_simd_backend(); }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;
};

/// Engine that replays a scripted word sequence, then falls back to a
/// real engine. Lets tests force the Lemire rejection path, which real
/// 64-bit streams hit with probability ~range/2^64 (never in practice).
class ScriptedEngine {
 public:
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  ScriptedEngine(std::vector<std::uint64_t> script, std::uint64_t seed)
      : script_(std::move(script)), fallback_(seed) {}

  result_type operator()() {
    ++drawn_;
    if (pos_ < script_.size()) {
      return script_[pos_++];
    }
    return fallback_();
  }

  [[nodiscard]] std::size_t words_drawn() const { return drawn_; }

 private:
  std::vector<std::uint64_t> script_;
  std::size_t pos_ = 0;
  std::size_t drawn_ = 0;
  Xoshiro256pp fallback_;
};

constexpr std::uint32_t kRanges[] = {
    1u,           2u,          3u,
    7u,           97u,         1u << 16,
    (1u << 16) + 1u,           2147483647u /* 2^31 - 1 */,
    3221225473u /* 0.75·2^32 */, 4294967291u /* largest prime < 2^32 */,
    4294967295u /* 2^32 - 1 */};

TEST(SimdDispatch, ResolutionRule) {
  using iba::rng::resolve_simd_backend;
  EXPECT_EQ(resolve_simd_backend("scalar", true), SimdBackend::kScalar);
  EXPECT_EQ(resolve_simd_backend("scalar", false), SimdBackend::kScalar);
  EXPECT_EQ(resolve_simd_backend("avx2", true), SimdBackend::kAvx2);
  EXPECT_EQ(resolve_simd_backend("avx2", false), SimdBackend::kScalar);
  EXPECT_EQ(resolve_simd_backend(nullptr, true), SimdBackend::kAvx2);
  EXPECT_EQ(resolve_simd_backend(nullptr, false), SimdBackend::kScalar);
  EXPECT_EQ(resolve_simd_backend("auto", true), SimdBackend::kAvx2);
  EXPECT_EQ(resolve_simd_backend("garbage", false), SimdBackend::kScalar);
}

TEST(SimdDispatch, BackendNamesAndOverride) {
  EXPECT_STREQ(iba::rng::simd_backend_name(SimdBackend::kScalar), "scalar");
  EXPECT_STREQ(iba::rng::simd_backend_name(SimdBackend::kAvx2), "avx2");
  {
    BackendGuard guard(SimdBackend::kScalar);
    EXPECT_EQ(iba::rng::active_simd_backend(), SimdBackend::kScalar);
  }
  // After reset the backend is env/probe resolved again — never an
  // unsupported one.
  if (!iba::rng::avx2_supported()) {
    EXPECT_EQ(iba::rng::active_simd_backend(), SimdBackend::kScalar);
  }
}

TEST(SimdDispatch, ForcingAvx2WithoutSupportDegradesToScalar) {
  if (iba::rng::avx2_supported()) {
    GTEST_SKIP() << "host has AVX2; degrade rule covered by ResolutionRule";
  }
  BackendGuard guard(SimdBackend::kAvx2);
  EXPECT_EQ(iba::rng::active_simd_backend(), SimdBackend::kScalar);
}

// Lengths 0..67 cross every boundary the AVX2 path has: below the
// dispatch threshold, exactly one 8-wide block, partial batches, and
// every tail residue mod 8.
TEST(SimdFillBounded, MatchesScalarStreamAllLengthsAllRanges) {
  if (!iba::rng::avx2_supported()) {
    GTEST_SKIP() << "no AVX2 on this host";
  }
  for (const std::uint32_t range : kRanges) {
    for (std::size_t length = 0; length <= 67; ++length) {
      Xoshiro256pp simd_engine(1234 + length), scalar_engine(1234 + length);
      std::vector<std::uint32_t> simd_out(length, 0xA5A5A5A5u);
      std::vector<std::uint32_t> scalar_out(length, 0x5A5A5A5Au);
      {
        BackendGuard guard(SimdBackend::kAvx2);
        iba::rng::fill_bounded(simd_engine, simd_out, range);
      }
      iba::rng::fill_bounded_scalar(scalar_engine, scalar_out, range);
      ASSERT_EQ(simd_out, scalar_out)
          << "range " << range << " length " << length;
      // Stream position must match too: the next word agrees.
      ASSERT_EQ(simd_engine(), scalar_engine())
          << "range " << range << " length " << length;
    }
  }
}

TEST(SimdFillBounded, LargeFillMatchesSequentialBounded32) {
  if (!iba::rng::avx2_supported()) {
    GTEST_SKIP() << "no AVX2 on this host";
  }
  constexpr std::uint32_t kRange = 999983;  // prime, odd threshold
  constexpr std::size_t kLength = 100003;   // > many 512-word batches, odd
  Xoshiro256pp simd_engine(77), sequential(77);
  std::vector<std::uint32_t> out(kLength);
  {
    BackendGuard guard(SimdBackend::kAvx2);
    iba::rng::fill_bounded(simd_engine, out, kRange);
  }
  for (std::size_t i = 0; i < kLength; ++i) {
    ASSERT_EQ(out[i], iba::rng::bounded32(sequential, kRange)) << i;
  }
  EXPECT_EQ(simd_engine(), sequential());
}

// Forces the rejection-replay path. A zero word makes low64 = 0 <
// threshold for every non-power-of-two range, so the scalar algorithm
// redraws — the SIMD path must consume the identical extra words.
TEST(SimdFillBounded, RejectionReplayMatchesScalar) {
  if (!iba::rng::avx2_supported()) {
    GTEST_SKIP() << "no AVX2 on this host";
  }
  constexpr std::uint32_t kRange = 4294967291u;  // threshold = 25
  const std::vector<std::vector<std::uint64_t>> scripts = {
      {0},                         // reject at the very first draw
      {5, 0},                      // reject mid-first-block
      {0, 0, 0},                   // consecutive rejections
      {9, 9, 9, 9, 9, 9, 9, 0},    // reject in lane 8 of the first block
      std::vector<std::uint64_t>(17, 0),  // spans three 8-wide blocks
  };
  for (std::size_t which = 0; which < scripts.size(); ++which) {
    for (const std::size_t length : {8u, 9u, 24u, 65u}) {
      ScriptedEngine simd_engine(scripts[which], 314);
      ScriptedEngine scalar_engine(scripts[which], 314);
      std::vector<std::uint32_t> simd_out(length), scalar_out(length);
      {
        BackendGuard guard(SimdBackend::kAvx2);
        iba::rng::fill_bounded(simd_engine, simd_out, kRange);
      }
      iba::rng::fill_bounded_scalar(scalar_engine, scalar_out, kRange);
      ASSERT_EQ(simd_out, scalar_out) << "script " << which << " length "
                                      << length;
      ASSERT_EQ(simd_engine.words_drawn(), scalar_engine.words_drawn())
          << "script " << which << " length " << length;
      // Rejections really happened: more words than outputs.
      EXPECT_GT(simd_engine.words_drawn(), length);
    }
  }
}

// A rejection word placed deep inside a batch exercises the replay of a
// long buffered suffix (reduce stops at the tripped block; everything
// after is replayed scalar from the buffer).
TEST(SimdFillBounded, RejectionDeepInBatchReplaysBufferedSuffix) {
  if (!iba::rng::avx2_supported()) {
    GTEST_SKIP() << "no AVX2 on this host";
  }
  constexpr std::uint32_t kRange = 3221225473u;
  for (const std::size_t reject_at : {40u, 511u, 512u, 700u}) {
    std::vector<std::uint64_t> script(reject_at + 1, 123456789ULL);
    script[reject_at] = 0;
    ScriptedEngine simd_engine(script, 2718);
    ScriptedEngine scalar_engine(script, 2718);
    constexpr std::size_t kLength = 1000;
    std::vector<std::uint32_t> simd_out(kLength), scalar_out(kLength);
    {
      BackendGuard guard(SimdBackend::kAvx2);
      iba::rng::fill_bounded(simd_engine, simd_out, kRange);
    }
    iba::rng::fill_bounded_scalar(scalar_engine, scalar_out, kRange);
    ASSERT_EQ(simd_out, scalar_out) << "reject_at " << reject_at;
    ASSERT_EQ(simd_engine.words_drawn(), scalar_engine.words_drawn());
  }
}

// The dispatcher itself (not the forced paths): whatever backend the
// environment resolved, fill_bounded must equal the scalar reference.
TEST(SimdFillBounded, DispatchedFillAlwaysMatchesScalarReference) {
  for (const std::uint32_t range : {7u, 4294967291u}) {
    for (const std::size_t length : {0u, 13u, 64u, 1000u}) {
      Xoshiro256pp dispatched(99), reference(99);
      std::vector<std::uint32_t> a(length), b(length);
      iba::rng::fill_bounded(dispatched, a, range);
      iba::rng::fill_bounded_scalar(reference, b, range);
      ASSERT_EQ(a, b) << "range " << range << " length " << length;
      ASSERT_EQ(dispatched(), reference());
    }
  }
}

}  // namespace
