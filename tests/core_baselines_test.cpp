// Tests of the baseline processes: batch GREEDY[d], THRESHOLD[T], static
// one-choice / GREEDY[d], repeated balls-into-bins, and the Adler d-copy
// FIFO process.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>

#include "analysis/bounds.hpp"
#include "core/adler_fifo.hpp"
#include "core/becchetti.hpp"
#include "core/greedy.hpp"
#include "core/static_allocation.hpp"
#include "core/threshold.hpp"

namespace {

using namespace iba::core;

TEST(BatchGreedy, ConfigValidation) {
  BatchGreedyConfig config;
  config.n = 0;
  config.d = 1;
  config.lambda_n = 0;
  EXPECT_THROW(config.validate(), iba::ContractViolation);
  config.n = 8;
  config.d = 0;
  EXPECT_THROW(config.validate(), iba::ContractViolation);
  config.d = 2;
  config.lambda_n = 9;
  EXPECT_THROW(config.validate(), iba::ContractViolation);
}

TEST(BatchGreedy, EveryBallIsQueuedImmediately) {
  BatchGreedyConfig config{.n = 32, .d = 2, .lambda_n = 24};
  BatchGreedy process(config, Engine(1));
  std::uint64_t generated = 0, deleted = 0;
  for (int i = 0; i < 200; ++i) {
    const auto m = process.step();
    EXPECT_EQ(m.accepted, 24u);
    EXPECT_EQ(m.pool_size, 0u);
    generated += m.generated;
    deleted += m.deleted;
    EXPECT_EQ(generated, deleted + process.total_load());
  }
}

TEST(BatchGreedy, TwoChoicesBeatOneChoiceOnMaxLoad) {
  BatchGreedyConfig one{.n = 1024, .d = 1, .lambda_n = 1023};
  BatchGreedyConfig two{.n = 1024, .d = 2, .lambda_n = 1023};
  BatchGreedy p1(one, Engine(2));
  BatchGreedy p2(two, Engine(3));
  std::uint64_t max1 = 0, max2 = 0;
  for (int i = 0; i < 400; ++i) {
    max1 = std::max(max1, p1.step().max_load);
    max2 = std::max(max2, p2.step().max_load);
  }
  EXPECT_LT(max2, max1);  // the power of two choices
}

TEST(BatchGreedy, OneChoiceMatchesMD1MeanField) {
  // Each GREEDY[1] bin receives ≈Poisson(λ) arrivals per round with unit
  // service — an M/D/1 queue. Check the measured mean wait against
  // Little's-law λ/(2(1−λ)) (within the discrete-time approximation).
  const double lambda = 0.75;
  BatchGreedyConfig config{.n = 4096, .d = 1, .lambda_n = 3072};
  BatchGreedy process(config, Engine(31));
  for (int i = 0; i < 3000; ++i) (void)process.step();
  process.reset_wait_stats();
  for (int i = 0; i < 3000; ++i) (void)process.step();
  const double predicted = iba::analysis::greedy1_mean_wait(lambda);  // 1.5
  EXPECT_NEAR(process.waits().mean(), predicted, 0.35 * predicted);
  // And the mean queue length via the companion formula.
  EXPECT_NEAR(iba::analysis::greedy1_mean_queue(lambda),
              lambda * predicted, 1e-12);
}

TEST(BatchGreedy, DeterministicGivenSeed) {
  BatchGreedyConfig config{.n = 64, .d = 2, .lambda_n = 32};
  BatchGreedy a(config, Engine(7)), b(config, Engine(7));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.step().max_load, b.step().max_load);
  }
}

TEST(Threshold, RejectsBadParameters) {
  EXPECT_THROW((void)run_threshold(0, 10, 1, Engine(1)),
               iba::ContractViolation);
  EXPECT_THROW((void)run_threshold(10, 10, 0, Engine(1)),
               iba::ContractViolation);
}

TEST(Threshold, AllocatesEverythingAndCountsLoads) {
  const auto result = run_threshold(64, 64, 1, Engine(2));
  EXPECT_TRUE(result.completed);
  const auto total = std::accumulate(result.loads.begin(), result.loads.end(),
                                     std::uint64_t{0});
  EXPECT_EQ(total, 64u);
  EXPECT_GE(result.rounds, 1u);
  // THRESHOLD[1] accepts ≤ 1 ball per bin per round → max load ≤ rounds.
  EXPECT_LE(result.max_load, result.rounds);
}

TEST(Threshold, ZeroBallsTerminatesImmediately) {
  const auto result = run_threshold(16, 0, 1, Engine(3));
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.rounds, 0u);
  EXPECT_EQ(result.max_load, 0u);
}

TEST(Threshold, RoundLimitReported) {
  // 100 balls into 1 bin with threshold 1 takes 100 rounds; cap at 10.
  const auto result = run_threshold(1, 100, 1, Engine(4), 10);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.rounds, 10u);
  EXPECT_EQ(result.max_load, 10u);
}

TEST(Threshold, ThresholdOneTerminatesInLogLogRounds) {
  // Adler et al.: THRESHOLD[1] with m = n finishes in ln ln n + O(1)
  // rounds w.h.p. For n = 2^14, ln ln n ≈ 2.3; allow generous slack.
  const auto result = run_threshold(1 << 14, 1 << 14, 1, Engine(5));
  EXPECT_TRUE(result.completed);
  EXPECT_LE(result.rounds, 12u);
}

TEST(Threshold, HeavilyLoadedWithMOverNThreshold) {
  // Lenzen et al. regime: m = 8n with threshold m/n + 1 finishes fast
  // and achieves max load m/n + O(1).
  const std::uint32_t n = 4096;
  const std::uint64_t m = 8 * n;
  const auto result = run_threshold(n, m, 9, Engine(6));
  EXPECT_TRUE(result.completed);
  EXPECT_LE(result.rounds, 12u);
  EXPECT_LE(result.max_load, 8u + 9u * 3u);
}

TEST(StaticAllocation, OneChoiceBasics) {
  const auto result = one_choice(100, 1000, Engine(7));
  const auto total = std::accumulate(result.loads.begin(), result.loads.end(),
                                     std::uint64_t{0});
  EXPECT_EQ(total, 1000u);
  EXPECT_DOUBLE_EQ(result.average_load, 10.0);
  EXPECT_GE(result.max_load, 10u);
}

TEST(StaticAllocation, GreedyDBeatsOneChoice) {
  const std::uint32_t n = 1 << 14;
  const auto d1 = one_choice(n, n, Engine(8));
  const auto d2 = greedy_d(n, n, 2, Engine(9));
  // Theory: d1 max ≈ ln n / ln ln n ≈ 4.3; d2 max ≈ ln ln n / ln 2 + O(1).
  EXPECT_GT(d1.max_load, d2.max_load);
  EXPECT_LE(d2.max_load, 8u);
  EXPECT_GE(d1.max_load, 4u);
  EXPECT_LE(d1.max_load, 14u);
}

TEST(StaticAllocation, HeavilyLoadedOneChoiceConcentration) {
  // m = n·ln n·16: max load ≈ m/n + √(2·(m/n)·ln n) within small factors.
  const std::uint32_t n = 1 << 12;
  const double ln_n = std::log(n);
  const auto m = static_cast<std::uint64_t>(16.0 * ln_n) * n;
  const auto result = one_choice(n, m, Engine(10));
  const double avg = result.average_load;
  const double spread = std::sqrt(2.0 * avg * ln_n);
  EXPECT_GT(static_cast<double>(result.max_load), avg);
  EXPECT_LT(static_cast<double>(result.max_load), avg + 3.0 * spread);
}

TEST(StaticAllocation, LoadHistogramTotals) {
  const auto result = one_choice(64, 256, Engine(11));
  const auto hist = load_histogram(result.loads);
  std::uint64_t bins = 0, balls = 0;
  for (std::size_t k = 0; k < hist.size(); ++k) {
    bins += hist[k];
    balls += hist[k] * k;
  }
  EXPECT_EQ(bins, 64u);
  EXPECT_EQ(balls, 256u);
  EXPECT_EQ(hist.size(), result.max_load + 1);
}

TEST(RepeatedBallsIntoBins, ConservesBalls) {
  auto process = RepeatedBallsIntoBins::adversarial(128, Engine(12));
  EXPECT_EQ(process.balls(), 128u);
  for (int i = 0; i < 200; ++i) {
    const auto m = process.step();
    EXPECT_EQ(m.total_load, 128u);
    std::uint64_t total = 0;
    for (std::uint32_t bin = 0; bin < 128; ++bin) total += process.load(bin);
    EXPECT_EQ(total, 128u);
  }
}

TEST(RepeatedBallsIntoBins, RecoversFromAdversarialStart) {
  // Becchetti et al.: from all-in-one-bin, O(n) rounds reach max load
  // O(log n). n = 512 → after 4n rounds expect max load ≤ ~5·log2(n).
  const std::uint32_t n = 512;
  auto process = RepeatedBallsIntoBins::adversarial(n, Engine(13));
  EXPECT_EQ(process.max_load(), n);
  for (std::uint32_t i = 0; i < 4 * n; ++i) (void)process.step();
  EXPECT_LE(process.max_load(), 45u);
}

TEST(RepeatedBallsIntoBins, UniformStartStaysBalanced) {
  auto process = RepeatedBallsIntoBins::uniform(256, Engine(14));
  std::uint64_t worst = 0;
  for (int i = 0; i < 500; ++i) worst = std::max(worst, process.step().max_load);
  EXPECT_LE(worst, 12u);  // O(log n / log log n)-ish, generous margin
}

TEST(AdlerFifo, ConfigValidation) {
  AdlerFifoConfig config{.n = 0, .d = 2, .m = 1};
  EXPECT_THROW(config.validate(), iba::ContractViolation);
  config.n = 8;
  config.d = 0;
  EXPECT_THROW(config.validate(), iba::ContractViolation);
}

TEST(AdlerFifo, ServesEveryBallExactlyOnce) {
  AdlerFifoConfig config{.n = 256, .d = 2, .m = 10};  // m < n/(3de)
  AdlerFifo process(config, Engine(15));
  std::uint64_t generated = 0, served = 0;
  for (int i = 0; i < 500; ++i) {
    const auto m = process.step();
    generated += m.generated;
    served += m.deleted;
  }
  EXPECT_EQ(generated, served + process.in_flight());
  EXPECT_EQ(process.waits().count(), served);
}

TEST(AdlerFifo, StableWithConstantWaitingTimes) {
  // Under the theory's arrival bound the expected waiting time is O(1)
  // and the system does not accumulate balls.
  AdlerFifoConfig config{.n = 1024, .d = 2, .m = 60};  // < n/(3·2·e) ≈ 62.8
  AdlerFifo process(config, Engine(16));
  for (int i = 0; i < 2000; ++i) (void)process.step();
  EXPECT_LT(process.in_flight(), 300u);
  EXPECT_LT(process.waits().mean(), 3.0);
  EXPECT_LE(process.waits().max(), 20u);
}

TEST(AdlerFifo, DeterministicGivenSeed) {
  AdlerFifoConfig config{.n = 64, .d = 3, .m = 4};
  AdlerFifo a(config, Engine(17)), b(config, Engine(17));
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.step().deleted, b.step().deleted);
  }
  EXPECT_EQ(a.in_flight(), b.in_flight());
}

}  // namespace
