// Tests for the storage substrate: RingBuffer, BinTable,
// UnboundedBinTable, AgedPool — FIFO semantics, accounting invariants,
// and contract checks.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "queueing/aged_pool.hpp"
#include "queueing/bin_table.hpp"
#include "queueing/ring_buffer.hpp"
#include "queueing/unbounded_bin_table.hpp"

namespace {

using namespace iba::queueing;

TEST(RingBuffer, FifoOrder) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.pop_front(), 1);
  EXPECT_EQ(rb.pop_front(), 2);
  rb.push(4);
  rb.push(5);
  EXPECT_EQ(rb.pop_front(), 3);
  EXPECT_EQ(rb.pop_front(), 4);
  EXPECT_EQ(rb.pop_front(), 5);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, WrapsManyTimes) {
  RingBuffer<std::uint64_t> rb(4);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    rb.push(i);
    EXPECT_EQ(rb.pop_front(), i);
  }
}

TEST(RingBuffer, FrontAndIndexing) {
  RingBuffer<int> rb(4);
  rb.push(10);
  rb.push(20);
  rb.push(30);
  EXPECT_EQ(rb.front(), 10);
  EXPECT_EQ(rb.at(0), 10);
  EXPECT_EQ(rb.at(2), 30);
  EXPECT_EQ(rb.size(), 3u);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> rb(2);
  rb.push(1);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(9);
  EXPECT_EQ(rb.front(), 9);
}

TEST(RingBuffer, RejectsZeroCapacity) {
  EXPECT_THROW(RingBuffer<int>(0), iba::ContractViolation);
}

TEST(BinTable, ConstructionInvariants) {
  BinTable bt(8, 3);
  EXPECT_EQ(bt.bins(), 8u);
  EXPECT_EQ(bt.capacity(), 3u);
  EXPECT_EQ(bt.total_load(), 0u);
  EXPECT_EQ(bt.max_load(), 0u);
  EXPECT_EQ(bt.empty_bins(), 8u);
  EXPECT_THROW(BinTable(0, 1), iba::ContractViolation);
  EXPECT_THROW(BinTable(1, 0), iba::ContractViolation);
}

TEST(BinTable, PerBinFifo) {
  BinTable bt(2, 3);
  bt.push(0, 100);
  bt.push(1, 200);
  bt.push(0, 101);
  bt.push(0, 102);
  EXPECT_EQ(bt.load(0), 3u);
  EXPECT_EQ(bt.load(1), 1u);
  EXPECT_EQ(bt.total_load(), 4u);
  EXPECT_EQ(bt.max_load(), 3u);
  EXPECT_EQ(bt.empty_bins(), 0u);

  EXPECT_EQ(bt.pop_front(0), 100u);
  EXPECT_EQ(bt.pop_front(0), 101u);
  bt.push(0, 103);
  EXPECT_EQ(bt.pop_front(0), 102u);
  EXPECT_EQ(bt.pop_front(0), 103u);
  EXPECT_EQ(bt.pop_front(1), 200u);
  EXPECT_EQ(bt.total_load(), 0u);
}

TEST(BinTable, PeekDoesNotConsume) {
  BinTable bt(1, 4);
  bt.push(0, 7);
  bt.push(0, 8);
  EXPECT_EQ(bt.peek(0, 0), 7u);
  EXPECT_EQ(bt.peek(0, 1), 8u);
  EXPECT_EQ(bt.load(0), 2u);
}

TEST(BinTable, PopBackIsLifo) {
  BinTable bt(1, 4);
  bt.push(0, 1);
  bt.push(0, 2);
  bt.push(0, 3);
  EXPECT_EQ(bt.pop_back(0), 3u);
  EXPECT_EQ(bt.pop_back(0), 2u);
  bt.push(0, 4);
  EXPECT_EQ(bt.pop_front(0), 1u);
  EXPECT_EQ(bt.pop_back(0), 4u);
  EXPECT_EQ(bt.total_load(), 0u);
}

TEST(BinTable, PopAtPreservesRemainderOrder) {
  BinTable bt(1, 5);
  for (std::uint64_t v = 1; v <= 5; ++v) bt.push(0, v);
  EXPECT_EQ(bt.pop_at(0, 2), 3u);  // remove the middle element
  EXPECT_EQ(bt.pop_front(0), 1u);
  EXPECT_EQ(bt.pop_front(0), 2u);
  EXPECT_EQ(bt.pop_front(0), 4u);
  EXPECT_EQ(bt.pop_front(0), 5u);
}

TEST(BinTable, PopAtEndsEqualFrontAndBack) {
  BinTable bt(1, 3);
  bt.push(0, 10);
  bt.push(0, 20);
  bt.push(0, 30);
  EXPECT_EQ(bt.pop_at(0, 0), 10u);  // == pop_front
  EXPECT_EQ(bt.pop_at(0, 1), 30u);  // == pop_back
  EXPECT_EQ(bt.pop_at(0, 0), 20u);
}

TEST(BinTable, PopAtWrapsAroundRing) {
  BinTable bt(1, 3);
  // Advance the head so the queue wraps physically.
  bt.push(0, 1);
  bt.push(0, 2);
  (void)bt.pop_front(0);
  (void)bt.pop_front(0);
  bt.push(0, 3);
  bt.push(0, 4);
  bt.push(0, 5);
  EXPECT_EQ(bt.pop_at(0, 1), 4u);
  EXPECT_EQ(bt.pop_front(0), 3u);
  EXPECT_EQ(bt.pop_front(0), 5u);
}

TEST(BinTable, CycleThroughCapacityManyRounds) {
  // Simulates many accept/delete rounds per bin; ring indices must wrap.
  BinTable bt(4, 2);
  std::uint64_t next_label = 0;
  std::vector<std::uint64_t> expected_front(4, 0);
  for (int round = 0; round < 500; ++round) {
    for (std::uint32_t b = 0; b < 4; ++b) {
      if (bt.load(b) < 2) bt.push(b, next_label++);
    }
    for (std::uint32_t b = 0; b < 4; ++b) {
      if (bt.load(b) > 0) {
        const auto lab = bt.pop_front(b);
        EXPECT_GE(lab, expected_front[b]);
        expected_front[b] = lab;
      }
    }
  }
  EXPECT_LE(bt.max_load(), 2u);
}

TEST(BinTable, HeadWrapsAtEveryOffset) {
  // Drive the head cursor through every physical slot and verify FIFO
  // semantics and peek at each offset — the conditional-wrap arithmetic
  // must behave exactly like the old modulo indexing.
  const std::uint32_t capacity = 5;
  BinTable bt(1, capacity);
  std::uint64_t next = 1, expect = 1;
  for (int cycle = 0; cycle < 4 * static_cast<int>(capacity); ++cycle) {
    while (bt.load(0) < capacity) bt.push(0, next++);
    for (std::uint32_t i = 0; i < capacity; ++i) {
      EXPECT_EQ(bt.peek(0, i), expect + i);
    }
    EXPECT_EQ(bt.pop_front(0), expect++);
    EXPECT_EQ(bt.pop_front(0), expect++);
  }
}

TEST(BinTable, PopBackAcrossWrap) {
  BinTable bt(1, 3);
  bt.push(0, 1);
  bt.push(0, 2);
  bt.push(0, 3);
  (void)bt.pop_front(0);
  (void)bt.pop_front(0);
  bt.push(0, 4);  // physically wraps past slot capacity-1
  bt.push(0, 5);
  EXPECT_EQ(bt.pop_back(0), 5u);
  EXPECT_EQ(bt.pop_back(0), 4u);
  EXPECT_EQ(bt.pop_back(0), 3u);
}

TEST(BinTable, PushBulkMatchesSequentialPush) {
  BinTable bulk(2, 4);
  BinTable seq(2, 4);
  // Wrap the heads first so bulk slots cross the physical boundary.
  for (std::uint32_t b = 0; b < 2; ++b) {
    bulk.push(b, 0);
    seq.push(b, 0);
    (void)bulk.pop_front(b);
    (void)seq.pop_front(b);
  }
  bulk.adjust_total_load(0);
  const std::uint64_t labels[] = {11, 22, 33};
  bulk.push_bulk(0, 3, [&](std::uint32_t k) { return labels[k]; });
  bulk.adjust_total_load(3);
  for (const std::uint64_t label : labels) seq.push(0, label);
  EXPECT_EQ(bulk.total_load(), seq.total_load());
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(bulk.peek(0, i), seq.peek(0, i));
  }
}

TEST(BinTable, DrainBulkVisitsFrontToBack) {
  BinTable bt(1, 4);
  bt.push(0, 1);
  bt.push(0, 2);
  (void)bt.pop_front(0);
  bt.push(0, 3);
  bt.push(0, 4);
  bt.push(0, 5);  // queue 2,3,4,5 with head mid-ring
  std::vector<std::uint64_t> drained;
  bt.drain_bulk(0, [&](std::uint64_t label) { drained.push_back(label); });
  bt.adjust_total_load(-static_cast<std::int64_t>(drained.size()));
  EXPECT_EQ(drained, (std::vector<std::uint64_t>{2, 3, 4, 5}));
  EXPECT_EQ(bt.load(0), 0u);
  EXPECT_EQ(bt.total_load(), 0u);
}

TEST(BinTable, RemoveAtDefersTotalLoad) {
  BinTable bt(1, 3);
  bt.push(0, 7);
  bt.push(0, 8);
  EXPECT_EQ(bt.remove_at(0, 0), 7u);
  EXPECT_EQ(bt.total_load(), 2u);  // deferred
  bt.adjust_total_load(-1);
  EXPECT_EQ(bt.total_load(), 1u);
  EXPECT_EQ(bt.load(0), 1u);
}

TEST(BinTable, ClearResetsAll) {
  BinTable bt(3, 2);
  bt.push(0, 1);
  bt.push(2, 2);
  bt.clear();
  EXPECT_EQ(bt.total_load(), 0u);
  EXPECT_EQ(bt.empty_bins(), 3u);
  bt.push(0, 5);
  EXPECT_EQ(bt.pop_front(0), 5u);
}

TEST(UnboundedBinTable, FifoAndLoads) {
  UnboundedBinTable ut(2);
  for (std::uint64_t i = 0; i < 100; ++i) ut.push(0, i);
  ut.push(1, 999);
  EXPECT_EQ(ut.load(0), 100u);
  EXPECT_EQ(ut.max_load(), 100u);
  EXPECT_EQ(ut.total_load(), 101u);
  EXPECT_EQ(ut.empty_bins(), 0u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(ut.pop_front(0), i);
  EXPECT_EQ(ut.empty_bins(), 1u);
}

TEST(UnboundedBinTable, CompactionPreservesOrder) {
  UnboundedBinTable ut(1);
  // Interleave pushes and pops past the compaction threshold.
  std::uint64_t next = 0, expect = 0;
  for (int i = 0; i < 50; ++i) ut.push(0, next++);
  for (int round = 0; round < 1000; ++round) {
    ut.push(0, next++);
    ASSERT_EQ(ut.pop_front(0), expect++);
  }
  EXPECT_EQ(ut.load(0), 50u);
}

TEST(UnboundedBinTable, ItemsViewsQueueWithoutDraining) {
  UnboundedBinTable ut(2);
  for (std::uint64_t i = 0; i < 100; ++i) ut.push(0, i);
  for (std::uint64_t i = 0; i < 70; ++i) (void)ut.pop_front(0);
  const auto view = ut.items(0);  // head is mid-storage (or compacted)
  ASSERT_EQ(view.size(), 30u);
  for (std::size_t i = 0; i < view.size(); ++i) {
    EXPECT_EQ(view[i], 70 + i);
  }
  EXPECT_EQ(ut.load(0), 30u);  // nothing consumed
  EXPECT_EQ(ut.items(1).size(), 0u);
}

TEST(UnboundedBinTable, PushBulkAndAdjustTotalLoad) {
  UnboundedBinTable ut(1);
  ut.push_bulk(0, 4, [](std::uint64_t k) { return 10 * (k + 1); });
  EXPECT_EQ(ut.total_load(), 0u);  // deferred
  ut.adjust_total_load(4);
  EXPECT_EQ(ut.total_load(), 4u);
  const auto view = ut.items(0);
  ASSERT_EQ(view.size(), 4u);
  EXPECT_EQ(view[0], 10u);
  EXPECT_EQ(view[3], 40u);
  EXPECT_EQ(ut.remove_front(0), 10u);
  ut.adjust_total_load(-1);
  EXPECT_EQ(ut.total_load(), 3u);
}

TEST(UnboundedBinTable, RejectsZeroBins) {
  EXPECT_THROW(UnboundedBinTable(0), iba::ContractViolation);
}

TEST(AgedPool, CoalescesSameLabel) {
  AgedPool pool;
  pool.add(5, 10);
  pool.add(5, 3);
  pool.add(6, 1);
  EXPECT_EQ(pool.total(), 14u);
  EXPECT_EQ(pool.bucket_count(), 2u);
  EXPECT_EQ(pool.oldest(), 5u);
}

TEST(AgedPool, IgnoresZeroCount) {
  AgedPool pool;
  pool.add(1, 0);
  EXPECT_TRUE(pool.empty());
  EXPECT_EQ(pool.bucket_count(), 0u);
}

TEST(AgedPool, OldestAge) {
  AgedPool pool;
  EXPECT_EQ(pool.oldest_age(10), 0u);
  pool.add(7, 2);
  pool.add(9, 1);
  EXPECT_EQ(pool.oldest_age(10), 3u);
}

TEST(AgedPool, CountOlderOrEqual) {
  AgedPool pool;
  pool.add(1, 5);
  pool.add(3, 7);
  pool.add(8, 2);
  EXPECT_EQ(pool.count_older_or_equal(0), 0u);
  EXPECT_EQ(pool.count_older_or_equal(1), 5u);
  EXPECT_EQ(pool.count_older_or_equal(3), 12u);
  EXPECT_EQ(pool.count_older_or_equal(100), 14u);
}

TEST(AgedPool, SwapExchangesContents) {
  AgedPool a, b;
  a.add(1, 10);
  b.add(2, 20);
  a.swap(b);
  EXPECT_EQ(a.total(), 20u);
  EXPECT_EQ(a.oldest(), 2u);
  EXPECT_EQ(b.total(), 10u);
}

TEST(AgedPool, IterationIsOldestFirst) {
  AgedPool pool;
  pool.add(2, 1);
  pool.add(4, 1);
  pool.add(9, 1);
  std::uint64_t prev = 0;
  for (const auto& bucket : pool.buckets()) {
    EXPECT_GT(bucket.label, prev);
    prev = bucket.label;
  }
}

}  // namespace
