// Tests for the storage substrate: RingBuffer, BinTable,
// UnboundedBinTable, AgedPool — FIFO semantics, accounting invariants,
// and contract checks.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "queueing/aged_pool.hpp"
#include "queueing/bin_table.hpp"
#include "queueing/ring_buffer.hpp"
#include "queueing/unbounded_bin_table.hpp"

namespace {

using namespace iba::queueing;

TEST(RingBuffer, FifoOrder) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.pop_front(), 1);
  EXPECT_EQ(rb.pop_front(), 2);
  rb.push(4);
  rb.push(5);
  EXPECT_EQ(rb.pop_front(), 3);
  EXPECT_EQ(rb.pop_front(), 4);
  EXPECT_EQ(rb.pop_front(), 5);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, WrapsManyTimes) {
  RingBuffer<std::uint64_t> rb(4);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    rb.push(i);
    EXPECT_EQ(rb.pop_front(), i);
  }
}

TEST(RingBuffer, FrontAndIndexing) {
  RingBuffer<int> rb(4);
  rb.push(10);
  rb.push(20);
  rb.push(30);
  EXPECT_EQ(rb.front(), 10);
  EXPECT_EQ(rb.at(0), 10);
  EXPECT_EQ(rb.at(2), 30);
  EXPECT_EQ(rb.size(), 3u);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> rb(2);
  rb.push(1);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(9);
  EXPECT_EQ(rb.front(), 9);
}

TEST(RingBuffer, RejectsZeroCapacity) {
  EXPECT_THROW(RingBuffer<int>(0), iba::ContractViolation);
}

TEST(BinTable, ConstructionInvariants) {
  BinTable bt(8, 3);
  EXPECT_EQ(bt.bins(), 8u);
  EXPECT_EQ(bt.capacity(), 3u);
  EXPECT_EQ(bt.total_load(), 0u);
  EXPECT_EQ(bt.max_load(), 0u);
  EXPECT_EQ(bt.empty_bins(), 8u);
  EXPECT_THROW(BinTable(0, 1), iba::ContractViolation);
  EXPECT_THROW(BinTable(1, 0), iba::ContractViolation);
}

TEST(BinTable, PerBinFifo) {
  BinTable bt(2, 3);
  bt.push(0, 100);
  bt.push(1, 200);
  bt.push(0, 101);
  bt.push(0, 102);
  EXPECT_EQ(bt.load(0), 3u);
  EXPECT_EQ(bt.load(1), 1u);
  EXPECT_EQ(bt.total_load(), 4u);
  EXPECT_EQ(bt.max_load(), 3u);
  EXPECT_EQ(bt.empty_bins(), 0u);

  EXPECT_EQ(bt.pop_front(0), 100u);
  EXPECT_EQ(bt.pop_front(0), 101u);
  bt.push(0, 103);
  EXPECT_EQ(bt.pop_front(0), 102u);
  EXPECT_EQ(bt.pop_front(0), 103u);
  EXPECT_EQ(bt.pop_front(1), 200u);
  EXPECT_EQ(bt.total_load(), 0u);
}

TEST(BinTable, PeekDoesNotConsume) {
  BinTable bt(1, 4);
  bt.push(0, 7);
  bt.push(0, 8);
  EXPECT_EQ(bt.peek(0, 0), 7u);
  EXPECT_EQ(bt.peek(0, 1), 8u);
  EXPECT_EQ(bt.load(0), 2u);
}

TEST(BinTable, PopBackIsLifo) {
  BinTable bt(1, 4);
  bt.push(0, 1);
  bt.push(0, 2);
  bt.push(0, 3);
  EXPECT_EQ(bt.pop_back(0), 3u);
  EXPECT_EQ(bt.pop_back(0), 2u);
  bt.push(0, 4);
  EXPECT_EQ(bt.pop_front(0), 1u);
  EXPECT_EQ(bt.pop_back(0), 4u);
  EXPECT_EQ(bt.total_load(), 0u);
}

TEST(BinTable, PopAtPreservesRemainderOrder) {
  BinTable bt(1, 5);
  for (std::uint64_t v = 1; v <= 5; ++v) bt.push(0, v);
  EXPECT_EQ(bt.pop_at(0, 2), 3u);  // remove the middle element
  EXPECT_EQ(bt.pop_front(0), 1u);
  EXPECT_EQ(bt.pop_front(0), 2u);
  EXPECT_EQ(bt.pop_front(0), 4u);
  EXPECT_EQ(bt.pop_front(0), 5u);
}

TEST(BinTable, PopAtEndsEqualFrontAndBack) {
  BinTable bt(1, 3);
  bt.push(0, 10);
  bt.push(0, 20);
  bt.push(0, 30);
  EXPECT_EQ(bt.pop_at(0, 0), 10u);  // == pop_front
  EXPECT_EQ(bt.pop_at(0, 1), 30u);  // == pop_back
  EXPECT_EQ(bt.pop_at(0, 0), 20u);
}

TEST(BinTable, PopAtWrapsAroundRing) {
  BinTable bt(1, 3);
  // Advance the head so the queue wraps physically.
  bt.push(0, 1);
  bt.push(0, 2);
  (void)bt.pop_front(0);
  (void)bt.pop_front(0);
  bt.push(0, 3);
  bt.push(0, 4);
  bt.push(0, 5);
  EXPECT_EQ(bt.pop_at(0, 1), 4u);
  EXPECT_EQ(bt.pop_front(0), 3u);
  EXPECT_EQ(bt.pop_front(0), 5u);
}

TEST(BinTable, CycleThroughCapacityManyRounds) {
  // Simulates many accept/delete rounds per bin; ring indices must wrap.
  BinTable bt(4, 2);
  std::uint64_t next_label = 0;
  std::vector<std::uint64_t> expected_front(4, 0);
  for (int round = 0; round < 500; ++round) {
    for (std::uint32_t b = 0; b < 4; ++b) {
      if (bt.load(b) < 2) bt.push(b, next_label++);
    }
    for (std::uint32_t b = 0; b < 4; ++b) {
      if (bt.load(b) > 0) {
        const auto lab = bt.pop_front(b);
        EXPECT_GE(lab, expected_front[b]);
        expected_front[b] = lab;
      }
    }
  }
  EXPECT_LE(bt.max_load(), 2u);
}

TEST(BinTable, ClearResetsAll) {
  BinTable bt(3, 2);
  bt.push(0, 1);
  bt.push(2, 2);
  bt.clear();
  EXPECT_EQ(bt.total_load(), 0u);
  EXPECT_EQ(bt.empty_bins(), 3u);
  bt.push(0, 5);
  EXPECT_EQ(bt.pop_front(0), 5u);
}

TEST(UnboundedBinTable, FifoAndLoads) {
  UnboundedBinTable ut(2);
  for (std::uint64_t i = 0; i < 100; ++i) ut.push(0, i);
  ut.push(1, 999);
  EXPECT_EQ(ut.load(0), 100u);
  EXPECT_EQ(ut.max_load(), 100u);
  EXPECT_EQ(ut.total_load(), 101u);
  EXPECT_EQ(ut.empty_bins(), 0u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(ut.pop_front(0), i);
  EXPECT_EQ(ut.empty_bins(), 1u);
}

TEST(UnboundedBinTable, CompactionPreservesOrder) {
  UnboundedBinTable ut(1);
  // Interleave pushes and pops past the compaction threshold.
  std::uint64_t next = 0, expect = 0;
  for (int i = 0; i < 50; ++i) ut.push(0, next++);
  for (int round = 0; round < 1000; ++round) {
    ut.push(0, next++);
    ASSERT_EQ(ut.pop_front(0), expect++);
  }
  EXPECT_EQ(ut.load(0), 50u);
}

TEST(UnboundedBinTable, RejectsZeroBins) {
  EXPECT_THROW(UnboundedBinTable(0), iba::ContractViolation);
}

TEST(AgedPool, CoalescesSameLabel) {
  AgedPool pool;
  pool.add(5, 10);
  pool.add(5, 3);
  pool.add(6, 1);
  EXPECT_EQ(pool.total(), 14u);
  EXPECT_EQ(pool.bucket_count(), 2u);
  EXPECT_EQ(pool.oldest(), 5u);
}

TEST(AgedPool, IgnoresZeroCount) {
  AgedPool pool;
  pool.add(1, 0);
  EXPECT_TRUE(pool.empty());
  EXPECT_EQ(pool.bucket_count(), 0u);
}

TEST(AgedPool, OldestAge) {
  AgedPool pool;
  EXPECT_EQ(pool.oldest_age(10), 0u);
  pool.add(7, 2);
  pool.add(9, 1);
  EXPECT_EQ(pool.oldest_age(10), 3u);
}

TEST(AgedPool, CountOlderOrEqual) {
  AgedPool pool;
  pool.add(1, 5);
  pool.add(3, 7);
  pool.add(8, 2);
  EXPECT_EQ(pool.count_older_or_equal(0), 0u);
  EXPECT_EQ(pool.count_older_or_equal(1), 5u);
  EXPECT_EQ(pool.count_older_or_equal(3), 12u);
  EXPECT_EQ(pool.count_older_or_equal(100), 14u);
}

TEST(AgedPool, SwapExchangesContents) {
  AgedPool a, b;
  a.add(1, 10);
  b.add(2, 20);
  a.swap(b);
  EXPECT_EQ(a.total(), 20u);
  EXPECT_EQ(a.oldest(), 2u);
  EXPECT_EQ(b.total(), 10u);
}

TEST(AgedPool, IterationIsOldestFirst) {
  AgedPool pool;
  pool.add(2, 1);
  pool.add(4, 1);
  pool.add(9, 1);
  std::uint64_t prev = 0;
  for (const auto& bucket : pool.buckets()) {
    EXPECT_GT(bucket.label, prev);
    prev = bucket.label;
  }
}

}  // namespace
