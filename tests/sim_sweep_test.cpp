// Tests for the sweep builder: cell enumeration, series labeling,
// non-integral-λ cell skipping, and end-to-end execution.
#include <gtest/gtest.h>

#include <set>

#include "sim/sweep.hpp"

namespace {

using namespace iba::sim;

SimConfig tiny_base() {
  SimConfig base;
  base.n = 256;
  base.capacity = 1;
  base.lambda_n = 192;
  base.burn_in = 20;
  base.auto_burn_in = false;
  base.measure_rounds = 30;
  base.seed = 9;
  return base;
}

TEST(Sweep, CapacityAxisWithLambdaSeries) {
  const auto cells = SweepBuilder(tiny_base())
                         .over_capacity(1, 5)
                         .series_lambda_exponents({2, 4})
                         .build();
  ASSERT_EQ(cells.size(), 10u);
  std::set<std::string> series;
  for (const auto& cell : cells) {
    series.insert(cell.series);
    EXPECT_GE(cell.config.capacity, 1u);
    EXPECT_LE(cell.config.capacity, 5u);
    EXPECT_EQ(cell.config.n, 256u);
  }
  EXPECT_EQ(series.size(), 2u);
  EXPECT_TRUE(series.contains("lambda=1-2^-2"));
  // λ = 1 − 2^-4 at n = 256 → λn = 240.
  EXPECT_EQ(cells.back().config.lambda_n, 240u);
}

TEST(Sweep, LambdaAxisWithCapacitySeries) {
  const auto cells = SweepBuilder(tiny_base())
                         .over_lambda_exponent(1, 8)
                         .series_capacities({1, 3})
                         .build();
  ASSERT_EQ(cells.size(), 16u);
  EXPECT_EQ(cells[0].config.lambda_n, 128u);  // i = 1 → λ = 1/2
  EXPECT_EQ(cells[0].series, "c=1");
  EXPECT_EQ(cells[15].series, "c=3");
}

TEST(Sweep, SkipsNonIntegralLambdaCells) {
  // n = 256: λ = 1 − 2^-9 would need λn = 255.5 → skipped.
  const auto cells =
      SweepBuilder(tiny_base()).over_lambda_exponent(8, 10).build();
  EXPECT_EQ(cells.size(), 1u);  // only i = 8 survives
  EXPECT_EQ(cells[0].config.lambda_n, 255u);
}

TEST(Sweep, NAxisRescalesLambdaN) {
  const auto cells = SweepBuilder(tiny_base()).over_log2_n(8, 11).build();
  ASSERT_EQ(cells.size(), 4u);
  for (const auto& cell : cells) {
    EXPECT_DOUBLE_EQ(cell.config.lambda(), 0.75);
  }
  EXPECT_EQ(cells[3].config.n, 2048u);
  EXPECT_EQ(cells[3].config.lambda_n, 1536u);
}

TEST(Sweep, BuilderMisuseThrows) {
  EXPECT_THROW(SweepBuilder(tiny_base()).build(), iba::ContractViolation);
  EXPECT_THROW(
      SweepBuilder(tiny_base()).over_capacity(1, 2).over_capacity(3, 4),
      iba::ContractViolation);
  EXPECT_THROW(SweepBuilder(tiny_base()).over_capacity(3, 2),
               iba::ContractViolation);
  EXPECT_THROW(SweepBuilder(tiny_base()).series_capacities({}),
               iba::ContractViolation);
}

TEST(Sweep, RunSweepExecutesEveryCell) {
  const auto cells = SweepBuilder(tiny_base())
                         .over_capacity(1, 3)
                         .build();
  int callbacks = 0;
  const auto outcomes = run_sweep(cells, [&](const SweepOutcome& outcome) {
    ++callbacks;
    EXPECT_EQ(outcome.result.measured_rounds, 30u);
  });
  EXPECT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(callbacks, 3);
  // Pool shrinks with capacity on this workload.
  EXPECT_GT(outcomes[0].result.pool.mean(), outcomes[2].result.pool.mean());
}

}  // namespace
