// Cross-validation of the optimized CAPPED(c, λ) simulator against the
// explicit-ball OracleCapped reference implementation: driven with the
// same bin-choice streams, the two must produce identical trajectories
// (pool sizes, loads, deletions, waiting times) round for round.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/capped.hpp"
#include "core/oracle.hpp"
#include "rng/bounded.hpp"
#include "rng/seed.hpp"

namespace {

using iba::core::Capped;
using iba::core::CappedConfig;
using iba::core::Engine;
using iba::core::OracleCapped;

struct Param {
  std::uint32_t n;
  std::uint32_t c;
  std::uint64_t lambda_n;
  std::uint64_t seed;
};

class OracleLockstep : public ::testing::TestWithParam<Param> {};

TEST_P(OracleLockstep, TrajectoriesIdentical) {
  const auto param = GetParam();
  CappedConfig config;
  config.n = param.n;
  config.capacity = param.c;
  config.lambda_n = param.lambda_n;

  Capped fast(config, Engine(0));
  OracleCapped oracle(config, Engine(0));
  Engine choice_engine(param.seed);

  for (int round = 1; round <= 300; ++round) {
    ASSERT_EQ(fast.balls_to_throw(), oracle.balls_to_throw())
        << "round " << round;
    std::vector<std::uint32_t> choices(fast.balls_to_throw());
    for (auto& choice : choices) {
      choice = iba::rng::bounded32(choice_engine, param.n);
    }

    const auto mf = fast.step_with_choices(choices);
    const auto mo = oracle.step_with_choices(choices);

    ASSERT_EQ(mf.pool_size, mo.pool_size) << "round " << round;
    ASSERT_EQ(mf.accepted, mo.accepted) << "round " << round;
    ASSERT_EQ(mf.deleted, mo.deleted) << "round " << round;
    ASSERT_EQ(mf.total_load, mo.total_load) << "round " << round;
    ASSERT_EQ(mf.max_load, mo.max_load) << "round " << round;
    ASSERT_EQ(mf.empty_bins, mo.empty_bins) << "round " << round;
    ASSERT_EQ(mf.wait_max, mo.wait_max) << "round " << round;
    ASSERT_DOUBLE_EQ(mf.wait_sum, mo.wait_sum) << "round " << round;

    for (std::uint32_t bin = 0; bin < param.n; ++bin) {
      ASSERT_EQ(fast.load(bin), oracle.load(bin))
          << "round " << round << " bin " << bin;
    }
  }

  // Cumulative waiting-time statistics agree exactly.
  EXPECT_EQ(fast.waits().count(), oracle.waits().count());
  EXPECT_EQ(fast.waits().max(), oracle.waits().max());
  EXPECT_NEAR(fast.waits().mean(), oracle.waits().mean(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, OracleLockstep,
    ::testing::Values(Param{8, 1, 4, 11}, Param{8, 1, 7, 12},
                      Param{32, 2, 24, 13}, Param{32, 3, 31, 14},
                      Param{64, 1, 63, 15}, Param{64, 5, 48, 16},
                      Param{16, 2, 16, 17},  // λ = 1 saturation
                      Param{128, 4, 127, 18}, Param{7, 2, 5, 19},
                      Param{100, 10, 90, 20}));

}  // namespace
