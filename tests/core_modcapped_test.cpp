// Tests of MODCAPPED(c, λ): Eq. (5) buffer-capacity algebra, forced ball
// generation (≥ m* thrown per round), drain-phase emptiness at phase
// boundaries, and the Lemma-1/6 coupling invariants via CoupledRun.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "core/capped.hpp"
#include "core/coupled.hpp"
#include "core/modcapped.hpp"
#include "rng/seed.hpp"

namespace {

using iba::core::CappedConfig;
using iba::core::CoupledRun;
using iba::core::Engine;
using iba::core::ModCapped;
using iba::core::ModCappedConfig;

ModCappedConfig make_config(std::uint32_t n, std::uint32_t c,
                            std::uint64_t lambda_n,
                            std::uint64_t m_star = 0) {
  ModCappedConfig config;
  config.n = n;
  config.capacity = c;
  config.lambda_n = lambda_n;
  config.m_star = m_star;
  return config;
}

TEST(ModCappedConfig, MStarDefaultsMatchPaperFormulas) {
  // c = 1 (Section III): m* = ln(1/(1−λ))·n + 2n.
  {
    const auto config = make_config(1000, 1, 750);  // λ = 3/4
    const double expected = std::log(4.0) * 1000 + 2000;
    EXPECT_EQ(config.m_star_default(),
              static_cast<std::uint64_t>(std::ceil(expected)));
  }
  // general c (Section IV): m* = (2/c)·ln(1/(1−λ))·n + 6·c·n.
  {
    const auto config = make_config(1000, 3, 750);
    const double expected = 2.0 / 3.0 * std::log(4.0) * 1000 + 18000;
    EXPECT_EQ(config.m_star_default(),
              static_cast<std::uint64_t>(std::ceil(expected)));
  }
}

TEST(ModCappedConfig, RejectsLambdaOne) {
  EXPECT_THROW(make_config(16, 1, 16).validate(), iba::ContractViolation);
  EXPECT_NO_THROW(make_config(16, 1, 15).validate());
}

TEST(ModCapped, ThrowsAtLeastMStarEveryRound) {
  ModCapped process(make_config(64, 2, 32, 500), Engine(1));
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(process.balls_to_throw(), 500u);
    const auto m = process.step();
    EXPECT_GE(m.thrown, 500u);
  }
}

TEST(ModCapped, GenerationIsMaxOfArrivalAndDeficit) {
  // With a small m*, once the pool exceeds m* the process generates
  // exactly λn; below it generates the deficit when larger.
  ModCapped process(make_config(32, 1, 8, 40), Engine(2));
  const auto first = process.step();  // pool was 0 → deficit 40 > λn = 8
  EXPECT_EQ(first.generated, 40u);
  for (int i = 0; i < 50; ++i) {
    const auto m = process.step();
    const std::uint64_t expected_min = std::max<std::uint64_t>(8, 0);
    EXPECT_GE(m.generated, expected_min);
    EXPECT_GE(m.thrown, 40u);
  }
}

class BufferAlgebra : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BufferAlgebra, CapacitiesFollowEquationFive) {
  const std::uint32_t c = GetParam();
  ModCapped process(make_config(16, c, 8), Engine(3));
  for (std::uint64_t t = 1; t <= 6 * c + 1; ++t) {
    (void)process.step();
    const std::uint64_t j = t / c;
    const auto expected_drain = static_cast<std::uint32_t>((j + 1) * c - t);
    const auto expected_fill = static_cast<std::uint32_t>(t - j * c);
    EXPECT_EQ(process.drain_capacity(), expected_drain) << "t=" << t;
    EXPECT_EQ(process.fill_capacity(), expected_fill) << "t=" << t;
    // Active capacities sum to the bin capacity c (the paper's invariant).
    EXPECT_EQ(process.drain_capacity() + process.fill_capacity(), c);
    // Loads never exceed the time-varying capacities.
    for (std::uint32_t bin = 0; bin < 16; ++bin) {
      EXPECT_LE(process.drain_load(bin) +
                    (process.round() % c == 0 ? 0 : 0),  // post-deletion
                expected_drain);
      EXPECT_LE(process.fill_load(bin), expected_fill);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, BufferAlgebra,
                         ::testing::Values(1u, 2u, 3u, 4u, 7u));

TEST(ModCapped, ConservationOverManyRounds) {
  ModCapped process(make_config(64, 3, 48), Engine(4));
  for (int i = 0; i < 300; ++i) {
    (void)process.step();
    EXPECT_EQ(process.generated_total(),
              process.pool_size() + process.total_load() +
                  process.deleted_total());
  }
}

TEST(ModCapped, UnitCapacityDegeneratesToSectionThree) {
  // For c = 1 the fill buffer has capacity 0 every round and the drain
  // buffer capacity 1: bins empty at the start of every round.
  ModCapped process(make_config(32, 1, 16), Engine(5));
  for (int i = 0; i < 100; ++i) {
    const auto m = process.step();
    EXPECT_EQ(process.fill_capacity(), 0u);
    EXPECT_EQ(process.drain_capacity(), 1u);
    EXPECT_EQ(m.total_load, 0u);  // capacity-1 buffer deletes same round
    EXPECT_EQ(m.accepted, m.deleted);
  }
}

struct CoupleParam {
  std::uint32_t n;
  std::uint32_t c;
  std::uint64_t lambda_n;
  std::uint64_t seed;
};

class CouplingDominance : public ::testing::TestWithParam<CoupleParam> {};

TEST_P(CouplingDominance, PoolAndLoadsDominatedEveryRound) {
  // Executable Lemma 1 / Lemma 6: under the shared-choice coupling,
  // m^C(t) ≤ m^M(t) and ℓ_i^C(t) ≤ ℓ_i^M(t) must hold deterministically.
  const auto param = GetParam();
  CappedConfig config;
  config.n = param.n;
  config.capacity = param.c;
  config.lambda_n = param.lambda_n;
  CoupledRun coupled(config, Engine(param.seed));
  for (int round = 1; round <= 200; ++round) {
    const auto result = coupled.step();
    ASSERT_TRUE(result.pool_dominated)
        << "round " << round << ": m^C=" << result.capped.pool_size
        << " > m^M=" << result.modcapped.pool_size;
    ASSERT_TRUE(result.loads_dominated) << "round " << round;
  }
  EXPECT_EQ(coupled.violations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, CouplingDominance,
    ::testing::Values(CoupleParam{16, 1, 8, 1}, CoupleParam{16, 1, 15, 2},
                      CoupleParam{32, 2, 24, 3}, CoupleParam{32, 3, 31, 4},
                      CoupleParam{64, 1, 48, 5}, CoupleParam{64, 4, 63, 6},
                      CoupleParam{128, 2, 127, 7}, CoupleParam{8, 5, 7, 8},
                      CoupleParam{100, 3, 75, 9}, CoupleParam{48, 2, 36, 10}));

TEST(ModCapped, PoolStaysBelowTwiceMStarInPractice) {
  // Lemma 7 says Pr[m^M(t) ≥ 2m*] ≤ 2^(−2n); at n = 256 a violation in
  // 2000 rounds would be astronomical.
  const auto config = make_config(256, 2, 192);
  ModCapped process(config, Engine(6));
  const std::uint64_t bound = 2 * process.m_star();
  for (int i = 0; i < 2000; ++i) {
    const auto m = process.step();
    ASSERT_LT(m.pool_size, bound) << "round " << i;
  }
}

}  // namespace
