// FlightRecorder: trigger latch semantics, bundle rendering + CRC
// verification (including the corruption battery), the file round-trip
// through the atomic writer, bounded logs, and the state round-trip the
// checkpoint's .record sidecar depends on. Behavior that needs the
// instruments is skipped under -DIBA_TELEMETRY=OFF, where trigger()
// never latches.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/timeseries.hpp"

namespace iba::telemetry {
namespace {

constexpr bool kOn = TimeSeries::kEnabled;

TimeSeriesSample make_sample(std::uint64_t round) {
  TimeSeriesSample s;
  s.round = round;
  s.pool_size = 100 + round % 13;
  s.generated = 50;
  s.deleted = 49;
  s.max_load = 2;
  s.capacity = 2;
  return s;
}

RecordedDecision make_decision(std::uint64_t round) {
  RecordedDecision d;
  d.round = round;
  d.old_capacity = 2;
  d.new_capacity = 3;
  d.old_pool_limit = 0;
  d.new_pool_limit = 0;
  d.lambda_hat_micro = 937500;
  return d;
}

/// A recorder with context, some history, and a latched trigger.
FlightRecorder make_armed(const TimeSeries* series = nullptr) {
  FlightRecorder recorder({.window = 8});
  recorder.attach_time_series(series);
  recorder.set_context("unit", "deadbeef", 42, 1024);
  recorder.set_engine_fingerprint("0badcafe");
  recorder.note_decision(make_decision(10));
  recorder.note_event(11, "fault", "crashes +3");
  recorder.trigger(TriggerKind::kShedSpike, 12, "shed 99 > threshold 10");
  return recorder;
}

TEST(FlightRecorder, TriggerNamesRoundTrip) {
  for (std::size_t i = 0; i < kTriggerKindCount; ++i) {
    const auto kind = static_cast<TriggerKind>(i);
    TriggerKind parsed{};
    ASSERT_TRUE(trigger_from_name(trigger_name(kind), parsed))
        << trigger_name(kind);
    EXPECT_EQ(parsed, kind);
  }
  TriggerKind parsed{};
  EXPECT_FALSE(trigger_from_name("no-such-trigger", parsed));
}

TEST(FlightRecorder, FirstTriggerLatches) {
  if (!kOn) GTEST_SKIP() << "telemetry compiled out";
  FlightRecorder recorder;
  EXPECT_FALSE(recorder.triggered());
  EXPECT_TRUE(recorder.trigger(TriggerKind::kAuditorViolation, 7, "first"));
  EXPECT_FALSE(recorder.trigger(TriggerKind::kManual, 9, "second"));
  EXPECT_EQ(recorder.trigger_kind(), TriggerKind::kAuditorViolation);
  EXPECT_EQ(recorder.trigger_round(), 7u);
  // Both triggers land in the event log even though only one latched.
  EXPECT_EQ(recorder.event_count(), 2u);
}

TEST(FlightRecorder, DisabledBuildNeverLatches) {
  if (kOn) GTEST_SKIP() << "telemetry compiled in";
  FlightRecorder recorder;
  EXPECT_FALSE(recorder.trigger(TriggerKind::kManual, 1, "noop"));
  EXPECT_FALSE(recorder.triggered());
  recorder.note_event(1, "fault", "ignored");
  EXPECT_EQ(recorder.event_count(), 0u);
}

TEST(FlightRecorder, RenderRequiresALatchedTrigger) {
  FlightRecorder recorder;
  EXPECT_THROW((void)recorder.render_bundle(), std::runtime_error);
}

TEST(FlightRecorder, LogsStayBounded) {
  if (!kOn) GTEST_SKIP() << "telemetry compiled out";
  FlightRecorder recorder({.window = 4, .max_decisions = 5, .max_events = 5});
  for (std::uint64_t r = 0; r < 50; ++r) {
    recorder.note_decision(make_decision(r));
    recorder.note_event(r, "fault", "x");
  }
  EXPECT_EQ(recorder.decision_count(), 5u);
  EXPECT_EQ(recorder.event_count(), 5u);
}

TEST(FlightRecorder, BundleVerifiesAndParses) {
  if (!kOn) GTEST_SKIP() << "telemetry compiled out";
  TimeSeries series;
  for (std::uint64_t r = 1; r <= 20; ++r) series.observe(make_sample(r));
  const FlightRecorder recorder = make_armed(&series);

  const std::string text = recorder.render_bundle();
  EXPECT_NO_THROW(verify_bundle_text(text));

  const std::string path = "flight_recorder_test.bundle";
  recorder.write_bundle(path);
  const PostmortemBundle bundle = read_bundle_file(path);
  std::remove(path.c_str());

  EXPECT_EQ(bundle.text, text);
  EXPECT_EQ(bundle.version, 1u);
  EXPECT_EQ(bundle.trigger, "shed-spike");
  EXPECT_EQ(bundle.round, 12u);
  EXPECT_EQ(bundle.scenario, "unit");
  EXPECT_EQ(bundle.digest, "deadbeef");
  EXPECT_EQ(bundle.seed, 42u);
  EXPECT_EQ(bundle.n, 1024u);
  EXPECT_EQ(bundle.engine, "0badcafe");
  ASSERT_EQ(bundle.decisions.size(), 1u);
  EXPECT_EQ(bundle.decisions[0],
            "round 10 capacity 2 -> 3 pool-limit 0 -> 0 "
            "lambda-micro 937500");
  // fault event + the trigger's own event
  ASSERT_EQ(bundle.events.size(), 2u);
  EXPECT_EQ(bundle.samples, 8u);  // window=8 of the 20 observed

  // The parsed series resolves the delta coding back to raw values.
  bool found_pool = false;
  for (const auto& [name, values] : bundle.series) {
    if (name != "pool_size") continue;
    found_pool = true;
    ASSERT_EQ(values.size(), 8u);
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_EQ(values[i], make_sample(13 + i).pool_size);
    }
  }
  EXPECT_TRUE(found_pool);
}

TEST(FlightRecorder, CorruptedBundlesAreRejected) {
  if (!kOn) GTEST_SKIP() << "telemetry compiled out";
  const std::string text = make_armed().render_bundle();
  EXPECT_NO_THROW(verify_bundle_text(text));

  // Flip one payload byte: CRC mismatch.
  std::string flipped = text;
  flipped[text.find("shed-spike")] = 'X';
  EXPECT_THROW(verify_bundle_text(flipped), std::runtime_error);
  // Truncate the trailer: structural damage.
  EXPECT_THROW(verify_bundle_text(text.substr(0, text.size() - 2)),
               std::runtime_error);
  // Forge the stated CRC itself.
  std::string forged = text;
  forged.replace(forged.rfind("crc32 = ") + 8, 8, "00000000");
  if (forged != text) {
    EXPECT_THROW(verify_bundle_text(forged), std::runtime_error);
  }
  // Wrong magic / version.
  EXPECT_THROW(verify_bundle_text("iba-checkpoint 1\nend\n"),
               std::runtime_error);
  EXPECT_THROW(verify_bundle_text(""), std::runtime_error);
}

TEST(FlightRecorder, StateRoundTripPreservesTheBundle) {
  if (!kOn) GTEST_SKIP() << "telemetry compiled out";
  TimeSeries series;
  for (std::uint64_t r = 1; r <= 20; ++r) series.observe(make_sample(r));
  const FlightRecorder recorder = make_armed(&series);

  FlightRecorder restored({.window = 8});
  restored.attach_time_series(&series);
  restored.set_engine_fingerprint("0badcafe");
  restored.restore_state(recorder.state_text());
  EXPECT_TRUE(restored.triggered());
  EXPECT_EQ(restored.trigger_kind(), TriggerKind::kShedSpike);
  EXPECT_EQ(restored.render_bundle(), recorder.render_bundle());
}

TEST(FlightRecorder, RestoreRejectsGarbage) {
  FlightRecorder recorder;
  EXPECT_THROW(recorder.restore_state("not a state"), std::runtime_error);
  EXPECT_THROW(recorder.restore_state("trigger-kind = bogus\n"),
               std::runtime_error);
}

}  // namespace
}  // namespace iba::telemetry
