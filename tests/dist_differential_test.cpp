// The distributed engine's core contract: a coordinator plus W
// bin-range workers produces BYTE-IDENTICAL artifacts to the
// single-process run of the same (scenario, seed) — including through
// a worker kill and resume. Workers here are real dist::Worker
// instances on threads over AF_UNIX socketpairs, so the full wire
// protocol (hello/init/round/checkpoint/shutdown frames) is exercised
// in-process.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "artifact/artifact.hpp"
#include "common/assert.hpp"
#include "dist/coordinator.hpp"
#include "dist/protocol.hpp"
#include "dist/runner.hpp"
#include "dist/worker.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace iba::dist {
namespace {

// The distributed member of the scenario bank, minus the file: audit
// off (no node holds the full state), defer backpressure, Poisson
// arrivals — every coordinator-side feature the engine supports.
constexpr const char* kBank = R"(
[scenario]
name = dist_probe

[system]
n = 256
c = 2

[arrival]
model = constant
distribution = poisson
lambda = 0.875

[backpressure]
mode = defer
pool-limit = 512
backoff = 4

[run]
rounds = 96
burn-in = 24
seed = 21

[expect]
max-shed = 0
)";

// Zipf skew + the sweet-spot controller: the coordinator must drive
// the BinChoiceSampler and the control plane exactly as the
// single-process runner does.
constexpr const char* kSkewControl = R"(
[scenario]
name = dist_skew_control

[system]
n = 256
c = 1

[arrival]
model = sinusoid
lambda = 0.75
amplitude = 0.125
period = 24
skew = zipf
zipf-s = 1

[control]
policy = sweet-spot
c-max = 8
window = 16
cooldown = 8
hysteresis = 0.1

[run]
rounds = 96
burn-in = 24
seed = 9
)";

/// Real workers on threads, one socketpair each. The coordinator-side
/// fds go to run_distributed; kill() simulates a kill -9 by shutting
/// the worker's socket down under it (its blocked read sees EOF and
/// the thread exits, exactly like a vanished process).
class WorkerFleet {
 public:
  explicit WorkerFleet(std::uint32_t count) {
    coordinator_side_.reserve(count);
    worker_side_.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      auto [coordinator, worker] = net::socket_pair();
      coordinator_side_.push_back(std::move(coordinator));
      worker_side_.push_back(std::move(worker));
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      threads_.emplace_back([fd = worker_side_[i].fd(), i] {
        try {
          Worker(fd, i).run();
        } catch (...) {
          // Transport errors after a mid-run kill are the test's doing.
        }
      });
    }
  }

  WorkerFleet(const WorkerFleet&) = delete;
  WorkerFleet& operator=(const WorkerFleet&) = delete;

  ~WorkerFleet() {
    for (net::Socket& socket : coordinator_side_) socket.close();
    for (std::thread& thread : threads_) thread.join();
  }

  [[nodiscard]] std::vector<int> fds() const {
    std::vector<int> fds;
    fds.reserve(coordinator_side_.size());
    for (const net::Socket& socket : coordinator_side_) {
      fds.push_back(socket.fd());
    }
    return fds;
  }

  /// kill -9 equivalent: both directions of worker w's socket go dead.
  void kill(std::uint32_t worker) {
    ::shutdown(worker_side_[worker].fd(), SHUT_RDWR);
  }

 private:
  std::vector<net::Socket> coordinator_side_;
  std::vector<net::Socket> worker_side_;
  std::vector<std::thread> threads_;
};

std::string single_process_bytes(const scenario::Scenario& scn) {
  const scenario::RunOutcome outcome = scenario::run_scenario(scn);
  EXPECT_TRUE(outcome.complete);
  return artifact::render_artifact(outcome.artifact);
}

std::string distributed_bytes(const scenario::Scenario& scn,
                              std::uint32_t workers,
                              const DistRunOptions& options = {}) {
  WorkerFleet fleet(workers);
  const scenario::RunOutcome outcome =
      run_distributed(scn, fleet.fds(), options);
  EXPECT_TRUE(outcome.complete);
  return artifact::render_artifact(outcome.artifact);
}

std::string checkpoint_base(const char* name) {
  const auto dir =
      std::filesystem::temp_directory_path() / "iba_dist_differential_test";
  std::filesystem::create_directories(dir);
  const std::string base = (dir / name).string();
  // Stale generations from a previous test run would trip the resume
  // identity checks in confusing ways; start clean.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string path = entry.path().string();
    if (path.rfind(base, 0) == 0) std::filesystem::remove(entry.path());
  }
  return base;
}

TEST(DistDifferential, FourWorkersMatchSingleProcessByteForByte) {
  const scenario::Scenario scn = scenario::parse_scenario(kBank, "bank.scn");
  const std::string baseline = single_process_bytes(scn);
  EXPECT_EQ(distributed_bytes(scn, 4), baseline);
}

TEST(DistDifferential, WorkerCountIsInvisible) {
  const scenario::Scenario scn = scenario::parse_scenario(kBank, "bank.scn");
  const std::string baseline = single_process_bytes(scn);
  // 1 worker (degenerate), 3 (uneven 256 = 86+85+85), 7 (very uneven).
  EXPECT_EQ(distributed_bytes(scn, 1), baseline);
  EXPECT_EQ(distributed_bytes(scn, 3), baseline);
  EXPECT_EQ(distributed_bytes(scn, 7), baseline);
}

TEST(DistDifferential, SkewAndControlPlaneMatchSingleProcess) {
  const scenario::Scenario scn =
      scenario::parse_scenario(kSkewControl, "skew.scn");
  const std::string baseline = single_process_bytes(scn);
  EXPECT_EQ(distributed_bytes(scn, 4), baseline);
}

TEST(DistDifferential, KilledWorkerSurfacesAsWorkerLost) {
  const scenario::Scenario scn = scenario::parse_scenario(kBank, "bank.scn");
  const std::string base = checkpoint_base("killed");

  WorkerFleet fleet(4);
  DistRunOptions options;
  options.checkpoint_base = base;
  options.checkpoint_every = 16;
  options.timeout_ms = 5'000;
  options.on_round = [&fleet](std::uint64_t round) {
    if (round == 40) fleet.kill(2);
  };
  EXPECT_THROW(
      {
        try {
          (void)run_distributed(scn, fleet.fds(), options);
        } catch (const WorkerLost& error) {
          EXPECT_EQ(error.worker(), 2u);
          throw;
        }
      },
      WorkerLost);
}

TEST(DistDifferential, KillAndResumeReproducesTheBytes) {
  const scenario::Scenario scn = scenario::parse_scenario(kBank, "bank.scn");
  const std::string baseline = single_process_bytes(scn);
  const std::string base = checkpoint_base("resume");

  // Run until the round-32 checkpoint has committed, then kill a
  // worker: the manifest on disk points at round 32.
  {
    WorkerFleet fleet(4);
    DistRunOptions options;
    options.checkpoint_base = base;
    options.checkpoint_every = 32;
    options.timeout_ms = 5'000;
    options.on_round = [&fleet](std::uint64_t round) {
      if (round == 33) fleet.kill(1);
    };
    EXPECT_THROW((void)run_distributed(scn, fleet.fds(), options), WorkerLost);
  }

  // Fresh processes, same checkpoint base: the finished artifact must
  // match the uninterrupted single-process run byte for byte.
  DistRunOptions resume;
  resume.checkpoint_base = base;
  resume.resume = true;
  resume.timeout_ms = 5'000;
  EXPECT_EQ(distributed_bytes(scn, 4, resume), baseline);
}

TEST(DistDifferential, CoordinatorStopAndResumeReproducesTheBytes) {
  // The coordinator-death drill: stop_after persists a generation and
  // exits (CI kills the real process with -9 between checkpoints; the
  // committed manifest is the same artifact either way).
  const scenario::Scenario scn =
      scenario::parse_scenario(kSkewControl, "skew.scn");
  const std::string baseline = single_process_bytes(scn);
  const std::string base = checkpoint_base("coord");

  {
    WorkerFleet fleet(3);
    DistRunOptions options;
    options.checkpoint_base = base;
    options.stop_after = 50;  // mid-measured-window (burn-in 24, total 120)
    options.timeout_ms = 5'000;
    const scenario::RunOutcome stopped =
        run_distributed(scn, fleet.fds(), options);
    EXPECT_FALSE(stopped.complete);
    EXPECT_EQ(stopped.rounds_done, 50u);
  }

  DistRunOptions resume;
  resume.checkpoint_base = base;
  resume.resume = true;
  resume.timeout_ms = 5'000;
  // Shard files are per-worker, so resuming with a different worker
  // count must be rejected (the manifest records the geometry).
  {
    WorkerFleet fleet(4);
    EXPECT_THROW((void)run_distributed(scn, fleet.fds(), resume),
                 ContractViolation);
  }
  EXPECT_EQ(distributed_bytes(scn, 3, resume), baseline);
}

TEST(DistDifferential, StragglerPastTheDeadlineIsLost) {
  const scenario::Scenario scn = scenario::parse_scenario(kBank, "bank.scn");

  // Slot 0: a real worker. Slot 1: a straggler that handshakes, then
  // goes silent on the first round frame.
  auto [c0, w0] = net::socket_pair();
  auto [c1, w1] = net::socket_pair();
  std::thread real([fd = w0.fd()] {
    try {
      Worker(fd, 0).run();
    } catch (...) {
    }
  });
  std::thread straggler([fd = w1.fd()] {
    try {
      send_hello(fd, HelloMsg{kProtocolVersion, 1});
      std::uint32_t type = 0;
      std::vector<std::uint8_t> payload;
      ASSERT_TRUE(net::read_frame(fd, type, payload));
      ASSERT_EQ(type, static_cast<std::uint32_t>(kMsgInit));
      net::WireReader in(payload);
      const InitMsg init = decode_init(in);
      send_init_ack(fd, InitAckMsg{init.round, 0});
      // Receive the first round frame, then stall past any deadline.
      ASSERT_TRUE(net::read_frame(fd, type, payload));
      std::this_thread::sleep_for(std::chrono::milliseconds(1'500));
    } catch (...) {
    }
  });

  DistRunOptions options;
  options.timeout_ms = 100;
  try {
    (void)run_distributed(scn, {c0.fd(), c1.fd()}, options);
    FAIL() << "a silent worker must surface as WorkerLost";
  } catch (const WorkerLost& error) {
    EXPECT_EQ(error.worker(), 1u);
    EXPECT_NE(std::string(error.what()).find("no response"),
              std::string::npos)
        << error.what();
  }
  c0.close();
  c1.close();
  real.join();
  straggler.join();
}

TEST(DistDifferential, HandshakeRejectsBadVersionAndDuplicateSlots) {
  const scenario::Scenario scn = scenario::parse_scenario(kBank, "bank.scn");

  {  // wrong protocol version
    auto [c, w] = net::socket_pair();
    send_hello(w.fd(), HelloMsg{kProtocolVersion + 1, 0});
    DistRunOptions options;
    options.timeout_ms = 1'000;
    EXPECT_THROW((void)run_distributed(scn, {c.fd()}, options), WorkerLost);
  }
  {  // two connections claiming the same bin-range slot
    auto [c0, w0] = net::socket_pair();
    auto [c1, w1] = net::socket_pair();
    send_hello(w0.fd(), HelloMsg{kProtocolVersion, 0});
    send_hello(w1.fd(), HelloMsg{kProtocolVersion, 0});
    DistRunOptions options;
    options.timeout_ms = 1'000;
    EXPECT_THROW((void)run_distributed(scn, {c0.fd(), c1.fd()}, options),
                 WorkerLost);
  }
}

TEST(DistDifferential, HelloOrderIsIrrelevant) {
  // Workers announce their slot; connection order must not matter.
  // Reverse the fd order handed to the coordinator relative to the
  // slots the workers claim.
  const scenario::Scenario scn = scenario::parse_scenario(kBank, "bank.scn");
  const std::string baseline = single_process_bytes(scn);

  std::vector<net::Socket> coordinator_side;
  std::vector<net::Socket> worker_side;
  for (int i = 0; i < 4; ++i) {
    auto [c, w] = net::socket_pair();
    coordinator_side.push_back(std::move(c));
    worker_side.push_back(std::move(w));
  }
  std::vector<std::thread> threads;
  for (std::uint32_t i = 0; i < 4; ++i) {
    // The worker on socketpair i serves slot 3 - i.
    threads.emplace_back([fd = worker_side[i].fd(), slot = 3 - i] {
      try {
        Worker(fd, slot).run();
      } catch (...) {
      }
    });
  }
  std::vector<int> fds;
  for (const net::Socket& socket : coordinator_side) fds.push_back(socket.fd());
  const scenario::RunOutcome outcome = run_distributed(scn, fds);
  EXPECT_TRUE(outcome.complete);
  EXPECT_EQ(artifact::render_artifact(outcome.artifact), baseline);
  for (net::Socket& socket : coordinator_side) socket.close();
  for (std::thread& thread : threads) thread.join();
}

TEST(DistDifferential, DistributedScenariosRejectUnsupportedFeatures) {
  // Fault schedules and the auditor need the full in-process state.
  constexpr const char* kFaulted = R"(
[scenario]
name = dist_faulted
[system]
n = 64
c = 2
[arrival]
model = constant
lambda = 0.5
[faults]
schedule = crash@8:bins=0-3,down=4
[run]
rounds = 16
seed = 1
)";
  const scenario::Scenario faulted =
      scenario::parse_scenario(kFaulted, "faulted.scn");
  WorkerFleet fleet(1);
  EXPECT_THROW((void)run_distributed(faulted, fleet.fds()), ContractViolation);
}

}  // namespace
}  // namespace iba::dist
