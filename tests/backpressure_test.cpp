// Backpressure semantics: bounded pool with shed or defer-retry
// admission, conservation including shed/deferred balls, snapshot
// round-trips, kernel byte-identity, and config validation.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/capped.hpp"
#include "fault/fault_plan.hpp"
#include "fault/schedule.hpp"

namespace {

using namespace iba;
using core::BackpressureMode;
using core::Capped;
using core::CappedConfig;
using core::Engine;
using core::RoundKernel;

CappedConfig pressured_config() {
  // lambda close to 1 with a tiny pool limit, so the bound binds often.
  CappedConfig config;
  config.n = 128;
  config.capacity = 2;
  config.lambda_n = 124;
  config.pool_limit = 64;
  return config;
}

void expect_same_round(const core::RoundMetrics& a,
                       const core::RoundMetrics& b, int round) {
  ASSERT_EQ(a.round, b.round) << "round " << round;
  ASSERT_EQ(a.generated, b.generated) << "round " << round;
  ASSERT_EQ(a.thrown, b.thrown) << "round " << round;
  ASSERT_EQ(a.accepted, b.accepted) << "round " << round;
  ASSERT_EQ(a.deleted, b.deleted) << "round " << round;
  ASSERT_EQ(a.pool_size, b.pool_size) << "round " << round;
  ASSERT_EQ(a.total_load, b.total_load) << "round " << round;
  ASSERT_EQ(a.shed, b.shed) << "round " << round;
  ASSERT_EQ(a.deferred, b.deferred) << "round " << round;
  ASSERT_EQ(a.wait_count, b.wait_count) << "round " << round;
  ASSERT_DOUBLE_EQ(a.wait_sum, b.wait_sum) << "round " << round;
}

TEST(Backpressure, ShedDropsArrivalsAndConserves) {
  CappedConfig config = pressured_config();
  config.backpressure = BackpressureMode::kShed;
  Capped p(config, Engine(1));
  std::uint64_t shed_seen = 0;
  for (int r = 0; r < 400; ++r) {
    const auto m = p.step();
    shed_seen += m.shed;
    ASSERT_LE(m.pool_size, config.pool_limit) << "round " << r;
    ASSERT_EQ(p.generated_total(), p.pool_size() + p.total_load() +
                                       p.deleted_total() + p.shed_total())
        << "round " << r;
  }
  EXPECT_GT(shed_seen, 0u) << "pool limit never bound — test is vacuous";
  EXPECT_EQ(shed_seen, p.shed_total());
  EXPECT_EQ(p.deferred_total(), 0u);
}

TEST(Backpressure, DeferRetryParksArrivalsAndConserves) {
  CappedConfig config = pressured_config();
  config.backpressure = BackpressureMode::kDeferRetry;
  config.backoff_rounds = 3;
  Capped p(config, Engine(1));
  std::uint64_t max_deferred = 0;
  for (int r = 0; r < 400; ++r) {
    const auto m = p.step();
    max_deferred = std::max(max_deferred, m.deferred);
    ASSERT_LE(m.pool_size, config.pool_limit) << "round " << r;
    ASSERT_EQ(m.shed, 0u) << "defer-retry never sheds";
    ASSERT_EQ(p.generated_total(),
              p.pool_size() + p.deferred_total() + p.total_load() +
                  p.deleted_total())
        << "round " << r;
  }
  EXPECT_GT(max_deferred, 0u) << "pool limit never bound — test is vacuous";
  EXPECT_EQ(p.shed_total(), 0u);
}

TEST(Backpressure, DeferredBallsEventuallyAdmitted) {
  // Transient pressure: a mass crash with state loss dumps every
  // buffered ball back into the pool, blowing past the admission bound
  // (requeued balls are in flight, the bound applies to arrivals only).
  // Arrivals defer during the spike and must all be re-admitted once
  // the outage ends and the pool drains below the limit.
  CappedConfig config;
  config.n = 128;
  config.capacity = 2;
  config.lambda_n = 96;
  config.pool_limit = 160;
  config.backpressure = BackpressureMode::kDeferRetry;
  config.backoff_rounds = 2;
  Capped p(config, Engine(3));
  fault::FaultPlan plan(
      fault::parse_schedule("crash@50:bins=0-127,down=20"), 128, 2, 1);
  p.set_fault_plan(&plan);
  bool deferred_hit = false;
  bool drained_after = false;
  for (int r = 0; r < 600; ++r) {
    const auto m = p.step();
    if (m.deferred > 0) deferred_hit = true;
    if (deferred_hit && m.deferred == 0) drained_after = true;
    ASSERT_EQ(p.generated_total(),
              p.pool_size() + p.deferred_total() + p.total_load() +
                  p.deleted_total())
        << "round " << r;
  }
  EXPECT_TRUE(deferred_hit) << "the crash never pressured the pool";
  EXPECT_TRUE(drained_after) << "deferred balls never re-admitted";
  EXPECT_EQ(p.shed_total(), 0u);
}

TEST(Backpressure, SnapshotRoundTripPreservesShedAndDeferred) {
  for (const BackpressureMode mode :
       {BackpressureMode::kShed, BackpressureMode::kDeferRetry}) {
    CappedConfig config = pressured_config();
    config.backpressure = mode;
    config.backoff_rounds = 4;
    Capped original(config, Engine(5));
    for (int r = 0; r < 150; ++r) (void)original.step();

    Capped restored(original.snapshot());
    EXPECT_EQ(restored.shed_total(), original.shed_total());
    EXPECT_EQ(restored.deferred_total(), original.deferred_total());
    EXPECT_EQ(restored.pool_size(), original.pool_size());

    for (int r = 150; r < 300; ++r) {
      const auto ma = original.step();
      const auto mb = restored.step();
      expect_same_round(ma, mb, r);
    }
  }
}

TEST(Backpressure, KernelsByteIdenticalUnderBackpressure) {
  for (const BackpressureMode mode :
       {BackpressureMode::kShed, BackpressureMode::kDeferRetry}) {
    CappedConfig scalar_config = pressured_config();
    scalar_config.backpressure = mode;
    scalar_config.backoff_rounds = 3;
    scalar_config.kernel = RoundKernel::kScalar;

    CappedConfig bin_major = scalar_config;
    bin_major.kernel = RoundKernel::kBinMajor;

    CappedConfig sharded = bin_major;
    sharded.shards = 4;

    Capped a(scalar_config, Engine(7));
    Capped b(bin_major, Engine(7));
    Capped c(sharded, Engine(7));
    for (int r = 0; r < 300; ++r) {
      const auto ma = a.step();
      const auto mb = b.step();
      const auto mc = c.step();
      expect_same_round(ma, mb, r);
      expect_same_round(ma, mc, r);
    }
    EXPECT_EQ(a.shed_total(), b.shed_total());
    EXPECT_EQ(a.shed_total(), c.shed_total());
    EXPECT_EQ(a.deferred_total(), c.deferred_total());
  }
}

TEST(Backpressure, ConfigValidationRejectsNonsense) {
  CappedConfig config = pressured_config();
  config.backpressure = BackpressureMode::kShed;
  config.pool_limit = 0;  // a mode without a bound is meaningless
  EXPECT_THROW(Capped(config, Engine(1)), ContractViolation);

  CappedConfig defer = pressured_config();
  defer.backpressure = BackpressureMode::kDeferRetry;
  defer.backoff_rounds = 0;  // retries must wait at least one round
  EXPECT_THROW(Capped(defer, Engine(1)), ContractViolation);
}

}  // namespace
