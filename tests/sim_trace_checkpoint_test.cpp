// Tests for TraceRecorder, the Checked<P> invariant wrapper, and the
// snapshot/checkpoint machinery (bit-identical continuation, file
// round-trips, format error paths).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "core/capped.hpp"
#include "core/greedy.hpp"
#include "sim/checkpoint.hpp"
#include "sim/trace.hpp"

namespace {

using namespace iba;
using core::Capped;
using core::CappedConfig;
using core::Engine;

CappedConfig small_config() {
  CappedConfig config;
  config.n = 128;
  config.capacity = 3;
  config.lambda_n = 96;
  return config;
}

std::string temp_file(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(TraceRecorder, CapturesSeries) {
  Capped process(small_config(), Engine(1));
  sim::TraceRecorder trace;
  for (int i = 0; i < 50; ++i) trace.observe(process.step());
  EXPECT_EQ(trace.size(), 50u);
  EXPECT_EQ(trace.pool().size(), 50u);
  EXPECT_EQ(trace.max_load().size(), 50u);
  // Loads are bounded by capacity throughout.
  for (double ml : trace.max_load()) EXPECT_LE(ml, 3.0);
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
}

TEST(TraceRecorder, WritesCsv) {
  Capped process(small_config(), Engine(2));
  sim::TraceRecorder trace;
  for (int i = 0; i < 5; ++i) trace.observe(process.step());
  const auto path = temp_file("iba_trace_test.csv");
  trace.write_csv(path);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "round,pool,total_load,max_load,deleted,wait_max");
  int lines = 0;
  for (std::string line; std::getline(in, line);) ++lines;
  EXPECT_EQ(lines, 5);
  std::filesystem::remove(path);
}

TEST(Checked, RealProcessesProduceNoViolations) {
  Capped capped(small_config(), Engine(3));
  sim::Checked checked(capped);
  for (int i = 0; i < 300; ++i) (void)checked.step();
  EXPECT_EQ(checked.violations(), 0u);
  EXPECT_TRUE(checked.violation_log().empty());

  core::BatchGreedyConfig greedy_config{.n = 64, .d = 2, .lambda_n = 48};
  core::BatchGreedy greedy(greedy_config, Engine(4));
  sim::Checked checked_greedy(greedy);
  for (int i = 0; i < 300; ++i) (void)checked_greedy.step();
  EXPECT_EQ(checked_greedy.violations(), 0u);
}

TEST(Checked, WrappingMidRunStartsClean) {
  Capped process(small_config(), Engine(5));
  for (int i = 0; i < 100; ++i) (void)process.step();
  sim::Checked checked(process);  // wrap after 100 rounds
  for (int i = 0; i < 100; ++i) (void)checked.step();
  EXPECT_EQ(checked.violations(), 0u);
}

namespace fake {

// A deliberately broken process to prove the checker catches defects.
struct BrokenProcess {
  std::uint64_t round_ = 0;
  core::RoundMetrics step() {
    core::RoundMetrics m;
    round_ += 2;  // skips rounds
    m.round = round_;
    m.thrown = 10;
    m.accepted = 4;
    m.pool_size = 3;  // 4 + 3 != 10: pool-flow violation
    m.deleted = 1;
    m.wait_count = 0;  // != deleted: wait-count violation
    m.total_load = 99;  // breaks load flow
    return m;
  }
  [[nodiscard]] std::uint32_t n() const { return 1; }
  [[nodiscard]] std::uint64_t round() const { return round_; }
};

}  // namespace fake

TEST(Checked, FlagsBrokenMetrics) {
  fake::BrokenProcess broken;
  sim::Checked checked(broken);
  (void)checked.step();
  EXPECT_EQ(checked.violations(), 4u);  // sequence, pool, load, waits
  EXPECT_FALSE(checked.violation_log().empty());
}

TEST(Checked, OptionsDisableIndividualChecks) {
  fake::BrokenProcess broken;
  sim::CheckOptions options;
  options.check_round_sequence = false;
  options.check_wait_counts = false;
  sim::Checked checked(broken, options);
  (void)checked.step();
  EXPECT_EQ(checked.violations(), 2u);  // only pool + load flow
}

TEST(Snapshot, RestoredProcessContinuesIdentically) {
  Capped original(small_config(), Engine(6));
  for (int i = 0; i < 200; ++i) (void)original.step();

  const auto snap = original.snapshot();
  Capped restored(snap);
  EXPECT_EQ(restored.round(), original.round());
  EXPECT_EQ(restored.pool_size(), original.pool_size());
  EXPECT_EQ(restored.total_load(), original.total_load());

  for (int i = 0; i < 200; ++i) {
    const auto mo = original.step();
    const auto mr = restored.step();
    ASSERT_EQ(mo.pool_size, mr.pool_size) << "round " << mo.round;
    ASSERT_EQ(mo.deleted, mr.deleted);
    ASSERT_EQ(mo.wait_max, mr.wait_max);
    ASSERT_EQ(mo.max_load, mr.max_load);
  }
}

TEST(Snapshot, InfiniteCapacityRoundTrips) {
  CappedConfig config = small_config();
  config.capacity = Capped::kInfiniteCapacity;
  config.lambda_n = 120;  // high load builds real queues
  Capped original(config, Engine(7));
  for (int i = 0; i < 150; ++i) (void)original.step();

  Capped restored(original.snapshot());
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(original.step().total_load, restored.step().total_load);
  }
}

TEST(Checkpoint, FileRoundTripPreservesTrajectory) {
  CappedConfig config = small_config();
  config.deletion = core::DeletionDiscipline::kLifo;
  config.failure_probability = 0.05;
  Capped original(config, Engine(8));
  for (int i = 0; i < 120; ++i) (void)original.step();

  const auto path = temp_file("iba_checkpoint_test.ckpt");
  sim::save_checkpoint(original.snapshot(), path);
  Capped restored(sim::load_checkpoint(path));
  std::filesystem::remove(path);

  EXPECT_EQ(restored.capacity(), original.capacity());
  for (int i = 0; i < 150; ++i) {
    const auto mo = original.step();
    const auto mr = restored.step();
    ASSERT_EQ(mo.pool_size, mr.pool_size);
    ASSERT_EQ(mo.deleted, mr.deleted);
  }
}

TEST(Checkpoint, RejectsMissingFile) {
  EXPECT_THROW((void)sim::load_checkpoint("/nonexistent/iba.ckpt"),
               std::runtime_error);
}

TEST(Checkpoint, RejectsBadMagicAndTruncation) {
  const auto path = temp_file("iba_checkpoint_bad.ckpt");
  {
    std::ofstream out(path);
    out << "not-a-checkpoint 1\n";
  }
  EXPECT_THROW((void)sim::load_checkpoint(path), std::runtime_error);
  {
    std::ofstream out(path);
    out << "iba-checkpoint 1\nconfig 4 2\n";  // truncated
  }
  EXPECT_THROW((void)sim::load_checkpoint(path), std::runtime_error);
  {
    std::ofstream out(path);
    out << "iba-checkpoint 99\n";  // wrong version
  }
  EXPECT_THROW((void)sim::load_checkpoint(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Checkpoint, RejectsOverfullQueue) {
  Capped process(small_config(), Engine(9));
  for (int i = 0; i < 50; ++i) (void)process.step();
  auto snap = process.snapshot();
  snap.bin_queues[0] = {1, 2, 3, 4, 5};  // capacity is 3
  const auto path = temp_file("iba_checkpoint_overfull.ckpt");
  sim::save_checkpoint(snap, path);
  EXPECT_THROW((void)sim::load_checkpoint(path), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
