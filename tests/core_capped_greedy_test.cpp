// Tests for the d-choice CAPPED extension: config contracts, exact
// d = 1 degeneration to CAPPED, conservation, and the expected benefit
// of the second choice.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/capped.hpp"
#include "core/capped_greedy.hpp"

namespace {

using namespace iba::core;

CappedGreedyConfig make_config(std::uint32_t n, std::uint32_t c,
                               std::uint32_t d, std::uint64_t lambda_n) {
  CappedGreedyConfig config;
  config.n = n;
  config.capacity = c;
  config.d = d;
  config.lambda_n = lambda_n;
  return config;
}

TEST(CappedGreedyConfig, Validation) {
  EXPECT_THROW(make_config(0, 1, 2, 0).validate(), iba::ContractViolation);
  EXPECT_THROW(make_config(8, 0, 2, 4).validate(), iba::ContractViolation);
  EXPECT_THROW(make_config(8, 1, 0, 4).validate(), iba::ContractViolation);
  EXPECT_THROW(make_config(8, 1, 2, 9).validate(), iba::ContractViolation);
  EXPECT_THROW(
      make_config(8, CappedConfig::kInfiniteCapacity, 2, 4).validate(),
      iba::ContractViolation);
  EXPECT_NO_THROW(make_config(8, 2, 2, 6).validate());
}

TEST(CappedGreedy, DOneMatchesCappedExactly) {
  // With d = 1 both processes draw one uniform bin per pool ball in the
  // same order from the same engine: trajectories must coincide.
  CappedConfig capped_config;
  capped_config.n = 256;
  capped_config.capacity = 2;
  capped_config.lambda_n = 192;
  Capped capped(capped_config, Engine(77));
  CappedGreedy greedy(make_config(256, 2, 1, 192), Engine(77));
  for (int round = 0; round < 300; ++round) {
    const auto mc = capped.step();
    const auto mg = greedy.step();
    ASSERT_EQ(mc.pool_size, mg.pool_size) << "round " << round;
    ASSERT_EQ(mc.deleted, mg.deleted) << "round " << round;
    ASSERT_EQ(mc.max_load, mg.max_load) << "round " << round;
    ASSERT_EQ(mc.wait_max, mg.wait_max) << "round " << round;
  }
  EXPECT_EQ(capped.waits().count(), greedy.waits().count());
  EXPECT_NEAR(capped.waits().mean(), greedy.waits().mean(), 1e-12);
}

TEST(CappedGreedy, ConservationAndCapacityInvariants) {
  CappedGreedy process(make_config(128, 3, 2, 120), Engine(5));
  for (int i = 0; i < 400; ++i) {
    const auto m = process.step();
    ASSERT_EQ(m.thrown, m.accepted + m.pool_size);
    ASSERT_LE(m.max_load, 3u);
    ASSERT_EQ(process.generated_total(),
              process.pool_size() + process.total_load() +
                  process.deleted_total());
  }
  for (std::uint32_t bin = 0; bin < 128; ++bin) {
    EXPECT_LE(process.load(bin), 3u);
  }
}

TEST(CappedGreedy, SecondChoiceShrinksPool) {
  // d = 2 spreads requests away from full bins, so fewer balls bounce
  // back into the pool at high load.
  auto mean_pool = [](std::uint32_t d) {
    CappedGreedy process(make_config(1024, 1, d, 1008), Engine(6));
    for (int i = 0; i < 1500; ++i) (void)process.step();
    double pool = 0;
    for (int i = 0; i < 500; ++i) {
      pool += static_cast<double>(process.step().pool_size);
    }
    return pool / 500.0;
  };
  const double d1 = mean_pool(1);
  const double d2 = mean_pool(2);
  EXPECT_LT(d2, d1);
}

TEST(CappedGreedy, DeterministicGivenSeed) {
  CappedGreedy a(make_config(64, 2, 2, 48), Engine(9));
  CappedGreedy b(make_config(64, 2, 2, 48), Engine(9));
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(a.step().pool_size, b.step().pool_size);
  }
}

TEST(CappedGreedy, ResetWaitStats) {
  CappedGreedy process(make_config(64, 2, 2, 48), Engine(10));
  for (int i = 0; i < 50; ++i) (void)process.step();
  EXPECT_GT(process.waits().count(), 0u);
  process.reset_wait_stats();
  EXPECT_EQ(process.waits().count(), 0u);
}

}  // namespace
