// Long-horizon tests: the paper's guarantees hold "at any (even
// exponentially large) time". These runs push tens of thousands of
// rounds at moderate n and assert the Theorem 1/2 bounds, conservation,
// and stationarity of the pool — the executable version of positive
// recurrence.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/bounds.hpp"
#include "core/capped.hpp"
#include "stats/autocorrelation.hpp"
#include "stats/welford.hpp"

namespace {

using namespace iba;
using core::Capped;
using core::CappedConfig;
using core::Engine;

struct LongParam {
  std::uint32_t n;
  std::uint32_t c;
  std::uint64_t lambda_n;
};

class LongRun : public ::testing::TestWithParam<LongParam> {};

TEST_P(LongRun, BoundsHoldForTwentyThousandRounds) {
  const auto p = GetParam();
  CappedConfig config;
  config.n = p.n;
  config.capacity = p.c;
  config.lambda_n = p.lambda_n;
  const double lambda = config.lambda();
  Capped process(config, Engine(p.n + p.c));

  const double pool_bound =
      p.c == 1 ? analysis::pool_bound_thm1(p.n, lambda)
               : analysis::pool_bound_thm2(p.n, lambda, p.c);
  const double wait_bound =
      p.c == 1 ? analysis::wait_bound_thm1(p.n, lambda)
               : analysis::wait_bound_thm2(p.n, lambda, p.c);

  for (int round = 0; round < 20000; ++round) {
    const auto m = process.step();
    ASSERT_LT(static_cast<double>(m.pool_size), pool_bound)
        << "round " << round;
    ASSERT_LT(static_cast<double>(m.wait_max), wait_bound)
        << "round " << round;
  }
  EXPECT_EQ(process.generated_total(),
            process.pool_size() + process.total_load() +
                process.deleted_total());
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, LongRun,
    ::testing::Values(LongParam{512, 1, 384}, LongParam{512, 2, 496},
                      LongParam{1024, 1, 1008}, LongParam{1024, 3, 960},
                      LongParam{256, 2, 255}));

TEST(LongRun, PoolIsStationaryAfterBurnIn) {
  // Positive recurrence in practice: after burn-in, the first and second
  // halves of a long window have statistically indistinguishable means.
  CappedConfig config;
  config.n = 1024;
  config.capacity = 2;
  config.lambda_n = 960;
  Capped process(config, Engine(5));
  for (int i = 0; i < 3000; ++i) (void)process.step();

  stats::OnlineMoments first_half, second_half;
  std::vector<double> series;
  const int window = 10000;
  for (int i = 0; i < window; ++i) {
    const auto pool = static_cast<double>(process.step().pool_size);
    series.push_back(pool);
    (i < window / 2 ? first_half : second_half).add(pool);
  }
  // Means agree within a few combined standard errors (autocorrelation
  // inflates the true sem, so use a generous factor on top).
  const double sem = first_half.sem() + second_half.sem();
  EXPECT_NEAR(first_half.mean(), second_half.mean(), 12 * sem + 1.0);
  // And the process decorrelates: the ESS is far above the lag-1 floor.
  EXPECT_GT(stats::effective_sample_size(series), 50.0);
}

TEST(LongRun, ReturnsToLowLoadInfinitelyOften) {
  // Positive recurrence: the pool keeps returning below its long-run
  // mean; count returns over a long horizon.
  CappedConfig config;
  config.n = 512;
  config.capacity = 1;
  config.lambda_n = 448;  // λ = 7/8
  Capped process(config, Engine(6));
  for (int i = 0; i < 2000; ++i) (void)process.step();

  const double mean_field =
      analysis::mean_field_pool_c1(config.lambda()) * config.n;
  int returns = 0;
  bool above = false;
  for (int i = 0; i < 20000; ++i) {
    const auto pool = static_cast<double>(process.step().pool_size);
    if (pool > mean_field) {
      above = true;
    } else if (above) {
      ++returns;
      above = false;
    }
  }
  EXPECT_GT(returns, 100);  // crosses its mean level over and over
}

}  // namespace
