// The determinism contract of the scenario engine: artifact bytes are a
// function of (scenario semantics, seed) only. Kernel choice, shard
// count, and kill-and-resume must leave them unchanged; a different
// seed must not.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "artifact/artifact.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace iba::scenario {
namespace {

// A scenario that exercises most moving parts at once: time-varying
// rate, Zipf skew, a crash, and the auditor.
constexpr const char* kLoaded = R"(
[scenario]
name = determinism_probe

[system]
n = 512
c = 2

[arrival]
model = sinusoid
lambda = 0.75
amplitude = 0.125
period = 48
skew = zipf
zipf-s = 1

[faults]
schedule = crash@40:bins=0-7,down=12

[run]
rounds = 120
burn-in = 32
seed = 21

[expect]
audit = on
audit-every = 16
)";

std::string run_bytes(const Scenario& scn, const RunOptions& options = {}) {
  const RunOutcome outcome = run_scenario(scn, options);
  EXPECT_TRUE(outcome.complete);
  EXPECT_TRUE(outcome.ok()) << (outcome.failures.empty()
                                    ? "?"
                                    : outcome.failures.front());
  return artifact::render_artifact(outcome.artifact);
}

TEST(ScenarioDeterminism, KernelAndShardsLeaveBytesUnchanged) {
  const Scenario scn = parse_scenario(kLoaded, "det.scn");
  const std::string baseline = run_bytes(scn);

  RunOptions scalar;
  scalar.kernel = core::RoundKernel::kScalar;
  EXPECT_EQ(run_bytes(scn, scalar), baseline);

  RunOptions sharded;
  sharded.kernel = core::RoundKernel::kBinMajor;
  sharded.shards = 4;
  EXPECT_EQ(run_bytes(scn, sharded), baseline);
}

TEST(ScenarioDeterminism, RepeatRunsAreIdentical) {
  const Scenario scn = parse_scenario(kLoaded, "det.scn");
  EXPECT_EQ(run_bytes(scn), run_bytes(scn));
}

TEST(ScenarioDeterminism, SeedMovesTheBytes) {
  const Scenario scn = parse_scenario(kLoaded, "det.scn");
  RunOptions reseeded;
  reseeded.seed = 22;
  EXPECT_NE(run_bytes(scn, reseeded), run_bytes(scn));
}

TEST(ScenarioDeterminism, KillAndResumeReproducesTheRun) {
  const Scenario scn = parse_scenario(kLoaded, "det.scn");
  const std::string baseline = run_bytes(scn);

  const auto dir = std::filesystem::temp_directory_path() /
                   "iba_scenario_determinism_test";
  std::filesystem::create_directories(dir);
  const std::string ckpt = (dir / "probe.ckpt").string();

  // Kill mid-measured-window (burn-in is 32, total is 152)...
  RunOptions first;
  first.checkpoint_out = ckpt;
  first.stop_after = 90;
  const RunOutcome stopped = run_scenario(scn, first);
  EXPECT_FALSE(stopped.complete);
  EXPECT_EQ(stopped.rounds_done, 90u);

  // ...and resume on a DIFFERENT kernel: still byte-identical.
  RunOptions second;
  second.resume = ckpt;
  second.kernel = core::RoundKernel::kScalar;
  EXPECT_EQ(run_bytes(scn, second), baseline);

  // Kill inside the burn-in too (before the wait-stats reset).
  RunOptions early;
  early.checkpoint_out = ckpt;
  early.stop_after = 20;
  (void)run_scenario(scn, early);
  RunOptions finish;
  finish.resume = ckpt;
  EXPECT_EQ(run_bytes(scn, finish), baseline);

  std::filesystem::remove_all(dir);
}

TEST(ScenarioDeterminism, InconsistentOptionsAreRejected) {
  const Scenario scn = parse_scenario(kLoaded, "det.scn");
  RunOptions no_ckpt;
  no_ckpt.stop_after = 10;
  EXPECT_THROW((void)run_scenario(scn, no_ckpt), iba::ContractViolation);

  RunOptions scalar_sharded;
  scalar_sharded.kernel = core::RoundKernel::kScalar;
  scalar_sharded.shards = 4;
  EXPECT_THROW((void)run_scenario(scn, scalar_sharded),
               iba::ContractViolation);
}

TEST(ScenarioDeterminism, ResumeRejectsForeignCheckpoint) {
  const Scenario scn = parse_scenario(kLoaded, "det.scn");
  const auto dir = std::filesystem::temp_directory_path() /
                   "iba_scenario_foreign_ckpt_test";
  std::filesystem::create_directories(dir);
  const std::string ckpt = (dir / "probe.ckpt").string();
  RunOptions first;
  first.checkpoint_out = ckpt;
  first.stop_after = 40;
  (void)run_scenario(scn, first);

  // A scenario with different semantics must refuse this checkpoint.
  Scenario other = scn;
  other.seed = 99;
  RunOptions resume;
  resume.resume = ckpt;
  EXPECT_THROW((void)run_scenario(other, resume), iba::ContractViolation);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace iba::scenario
