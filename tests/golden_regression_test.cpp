// Golden regression tests: exact trajectories for fixed seeds, locked in
// when the implementation was validated against the explicit-ball
// oracles. Any future change to the allocation logic, the RNG, or the
// consumption order of random draws will trip these — deliberately.
// (If a change is *intended* to alter trajectories, regenerate the
// constants and say so in the commit.)
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/capped.hpp"
#include "core/greedy.hpp"
#include "core/modcapped.hpp"

namespace {

using namespace iba::core;

TEST(Golden, CappedTrajectorySeed12345) {
  CappedConfig config;
  config.n = 64;
  config.capacity = 2;
  config.lambda_n = 48;
  Capped process(config, Engine(12345));

  const std::vector<std::uint64_t> expected_pools = {3, 8, 5,  11, 10, 11,
                                                     9, 6, 8,  12, 12, 14};
  for (std::size_t i = 0; i < expected_pools.size(); ++i) {
    ASSERT_EQ(process.step().pool_size, expected_pools[i])
        << "round " << (i + 1);
  }

  std::uint64_t sum = 0, mix = 0;
  for (int i = 0; i < 988; ++i) {
    const auto m = process.step();
    sum += m.pool_size;
    mix ^= m.pool_size * static_cast<std::uint64_t>(i + 1);
  }
  EXPECT_EQ(sum, 10154u);
  EXPECT_EQ(mix, 5463u);
  EXPECT_EQ(process.waits().count(), 47971u);
  EXPECT_EQ(process.waits().max(), 3u);
}

TEST(Golden, ModCappedTrajectorySeed777) {
  ModCappedConfig config;
  config.n = 32;
  config.capacity = 3;
  config.lambda_n = 24;
  config.m_star = 200;
  ModCapped process(config, Engine(777));
  std::uint64_t sum = 0;
  for (int i = 0; i < 500; ++i) sum += process.step().pool_size;
  EXPECT_EQ(sum, 83936u);
  EXPECT_EQ(process.total_load(), 64u);
}

TEST(Golden, BatchGreedyTrajectorySeed999) {
  BatchGreedyConfig config;
  config.n = 64;
  config.d = 2;
  config.lambda_n = 48;
  BatchGreedy process(config, Engine(999));
  std::uint64_t max_load_sum = 0;
  for (int i = 0; i < 500; ++i) max_load_sum += process.step().max_load;
  EXPECT_EQ(max_load_sum, 1398u);
  EXPECT_EQ(process.total_load(), 22u);
}

}  // namespace
