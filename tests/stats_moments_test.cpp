// Tests for OnlineMoments (Welford/Pébay) and Summary: agreement with
// two-pass reference computations, merge correctness, and edge cases.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/bounded.hpp"
#include "rng/xoshiro256.hpp"
#include "stats/summary.hpp"
#include "stats/welford.hpp"

namespace {

using iba::stats::OnlineMoments;
using iba::stats::Summary;

struct Reference {
  double mean = 0, var_pop = 0, var_sample = 0, skew = 0, kurt = 0;
};

Reference two_pass(const std::vector<double>& xs) {
  Reference r;
  const double n = static_cast<double>(xs.size());
  for (double x : xs) r.mean += x;
  r.mean /= n;
  double m2 = 0, m3 = 0, m4 = 0;
  for (double x : xs) {
    const double d = x - r.mean;
    m2 += d * d;
    m3 += d * d * d;
    m4 += d * d * d * d;
  }
  r.var_pop = m2 / n;
  r.var_sample = xs.size() > 1 ? m2 / (n - 1) : 0;
  r.skew = m2 > 0 ? std::sqrt(n) * m3 / std::pow(m2, 1.5) : 0;
  r.kurt = m2 > 0 ? n * m4 / (m2 * m2) - 3.0 : 0;
  return r;
}

std::vector<double> lognormal_like_sample(std::uint64_t seed, int count) {
  iba::rng::Xoshiro256pp eng(seed);
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const double u = iba::rng::uniform01_open_low(eng);
    xs.push_back(std::exp(2 * u) + 0.1 * static_cast<double>(i % 7));
  }
  return xs;
}

TEST(OnlineMoments, EmptyAccumulator) {
  OnlineMoments m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_EQ(m.mean(), 0.0);
  EXPECT_EQ(m.variance(), 0.0);
  EXPECT_EQ(m.sample_variance(), 0.0);
  EXPECT_EQ(m.sem(), 0.0);
}

TEST(OnlineMoments, SingleValue) {
  OnlineMoments m;
  m.add(42.0);
  EXPECT_EQ(m.count(), 1u);
  EXPECT_EQ(m.mean(), 42.0);
  EXPECT_EQ(m.variance(), 0.0);
  EXPECT_EQ(m.min(), 42.0);
  EXPECT_EQ(m.max(), 42.0);
}

TEST(OnlineMoments, MatchesTwoPassReference) {
  const auto xs = lognormal_like_sample(7, 5000);
  const auto ref = two_pass(xs);
  OnlineMoments m;
  for (double x : xs) m.add(x);
  EXPECT_NEAR(m.mean(), ref.mean, 1e-9 * std::abs(ref.mean));
  EXPECT_NEAR(m.variance(), ref.var_pop, 1e-8 * ref.var_pop);
  EXPECT_NEAR(m.sample_variance(), ref.var_sample, 1e-8 * ref.var_sample);
  EXPECT_NEAR(m.skewness(), ref.skew, 1e-6);
  EXPECT_NEAR(m.kurtosis(), ref.kurt, 1e-6);
}

TEST(OnlineMoments, MergeEqualsConcatenation) {
  const auto xs = lognormal_like_sample(8, 3000);
  OnlineMoments whole, left, right;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    whole.add(xs[i]);
    (i < 1000 ? left : right).add(xs[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10 * std::abs(whole.mean()));
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8 * whole.variance());
  EXPECT_NEAR(left.skewness(), whole.skewness(), 1e-6);
  EXPECT_NEAR(left.kurtosis(), whole.kurtosis(), 1e-6);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(OnlineMoments, MergeWithEmptySides) {
  OnlineMoments a, b;
  a.add(1.0);
  a.add(2.0);
  OnlineMoments a_copy = a;
  a.merge(b);  // merging empty changes nothing
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), a_copy.mean());
  b.merge(a);  // merging into empty copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), 1.5);
}

TEST(OnlineMoments, ShiftInvarianceOfVariance) {
  // Catastrophic-cancellation check: huge offset must not destroy variance.
  OnlineMoments near_zero, shifted;
  const double offset = 1e12;
  iba::rng::Xoshiro256pp eng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = iba::rng::uniform01(eng);
    near_zero.add(x);
    shifted.add(x + offset);
  }
  EXPECT_NEAR(shifted.variance(), near_zero.variance(),
              0.01 * near_zero.variance());
}

TEST(OnlineMoments, ResetClearsState) {
  OnlineMoments m;
  m.add(1);
  m.add(2);
  m.reset();
  EXPECT_EQ(m.count(), 0u);
  EXPECT_EQ(m.mean(), 0.0);
}

TEST(OnlineMoments, SymmetricDataHasZeroSkew) {
  OnlineMoments m;
  for (int i = -100; i <= 100; ++i) m.add(i);
  EXPECT_NEAR(m.skewness(), 0.0, 1e-9);
}

TEST(Summary, TracksMomentsAndQuantiles) {
  Summary s;
  for (int i = 1; i <= 1000; ++i) s.add(i);
  EXPECT_EQ(s.count(), 1000u);
  EXPECT_NEAR(s.mean(), 500.5, 1e-9);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 1000.0);
  EXPECT_NEAR(s.p50(), 500.0, 15.0);
  EXPECT_NEAR(s.p90(), 900.0, 20.0);
  EXPECT_NEAR(s.p99(), 990.0, 10.0);
}

TEST(Summary, EmptySummaryIsSafe) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_FALSE(s.to_string().empty());
}

TEST(Summary, ToStringContainsMean) {
  Summary s;
  s.add(5.0);
  s.add(5.0);
  EXPECT_NE(s.to_string().find('5'), std::string::npos);
}

}  // namespace
