// Differential validation of ModCapped against an independent,
// explicit-ball transcription of Section IV-A: per-bin request lists,
// per-buffer capacities from Eq. (5), two-pass preference-maximizing
// placement, and drain-phase deletion. Driven with shared bin choices,
// both implementations must produce identical pool/load/deletion
// trajectories.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "core/modcapped.hpp"
#include "rng/bounded.hpp"
#include "rng/seed.hpp"

namespace {

using namespace iba;
using core::Engine;
using core::ModCapped;
using core::ModCappedConfig;

/// Naive reference MODCAPPED: every ball explicit, buffers as deques.
class OracleModCapped {
 public:
  explicit OracleModCapped(const ModCappedConfig& config)
      : config_(config),
        m_star_(config.m_star != 0 ? config.m_star
                                   : config.m_star_default()),
        drain_(config.n),
        fill_(config.n) {}

  [[nodiscard]] std::uint64_t balls_to_throw() const {
    const std::uint64_t pool = pool_.size();
    const std::uint64_t forced = pool < m_star_ ? m_star_ - pool : 0;
    return pool + std::max<std::uint64_t>(config_.lambda_n, forced);
  }

  struct Step {
    std::uint64_t pool_size;
    std::uint64_t total_load;
    std::uint64_t deleted;
    std::uint64_t accepted;
  };

  Step step_with_choices(const std::vector<std::uint32_t>& choices) {
    const std::uint64_t generated = balls_to_throw() - pool_.size();
    ++round_;
    if (round_ % config_.capacity == 0) {
      for (std::uint32_t bin = 0; bin < config_.n; ++bin) {
        EXPECT_TRUE(drain_[bin].empty());
        std::swap(drain_[bin], fill_[bin]);
        fill_[bin].clear();
      }
    }
    for (std::uint64_t k = 0; k < generated; ++k) pool_.push_back(round_);

    const std::uint64_t j = round_ / config_.capacity;
    const auto cap_drain =
        static_cast<std::size_t>((j + 1) * config_.capacity - round_);
    const auto cap_fill =
        static_cast<std::size_t>(round_ - j * config_.capacity);

    // Pass 1: preferred buffer (alternating by throw index, even → drain).
    std::vector<bool> placed(pool_.size(), false);
    std::vector<std::size_t> overflow;
    std::uint64_t accepted = 0;
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      const std::uint32_t bin = choices[i];
      const bool prefers_drain = (i % 2) == 0;
      auto& preferred = prefers_drain ? drain_[bin] : fill_[bin];
      const std::size_t cap = prefers_drain ? cap_drain : cap_fill;
      if (preferred.size() < cap) {
        preferred.push_back(pool_[i]);
        placed[i] = true;
        ++accepted;
      } else {
        overflow.push_back(i);
      }
    }
    // Pass 2: any remaining room, in pool order.
    for (const std::size_t i : overflow) {
      const std::uint32_t bin = choices[i];
      if (drain_[bin].size() < cap_drain) {
        drain_[bin].push_back(pool_[i]);
        placed[i] = true;
        ++accepted;
      } else if (fill_[bin].size() < cap_fill) {
        fill_[bin].push_back(pool_[i]);
        placed[i] = true;
        ++accepted;
      }
    }

    std::vector<std::uint64_t> survivors;
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      if (!placed[i]) survivors.push_back(pool_[i]);
    }
    pool_ = std::move(survivors);

    std::uint64_t deleted = 0;
    for (std::uint32_t bin = 0; bin < config_.n; ++bin) {
      if (!drain_[bin].empty()) {
        drain_[bin].pop_front();
        ++deleted;
      }
    }

    std::uint64_t total_load = 0;
    for (std::uint32_t bin = 0; bin < config_.n; ++bin) {
      total_load += drain_[bin].size() + fill_[bin].size();
    }
    return {pool_.size(), total_load, deleted, accepted};
  }

  [[nodiscard]] std::uint64_t load(std::uint32_t bin) const {
    return drain_[bin].size() + fill_[bin].size();
  }

 private:
  ModCappedConfig config_;
  std::uint64_t m_star_;
  std::uint64_t round_ = 0;
  std::vector<std::uint64_t> pool_;  // labels, oldest-first
  std::vector<std::deque<std::uint64_t>> drain_;
  std::vector<std::deque<std::uint64_t>> fill_;
};

struct Param {
  std::uint32_t n;
  std::uint32_t c;
  std::uint64_t lambda_n;
  std::uint64_t m_star;
  std::uint64_t seed;
};

class ModCappedOracle : public ::testing::TestWithParam<Param> {};

TEST_P(ModCappedOracle, TrajectoriesIdentical) {
  const auto p = GetParam();
  ModCappedConfig config;
  config.n = p.n;
  config.capacity = p.c;
  config.lambda_n = p.lambda_n;
  config.m_star = p.m_star;  // small m* keeps the oracle fast

  ModCapped fast(config, Engine(0));
  OracleModCapped oracle(config);
  Engine choice_engine(p.seed);

  for (int round = 1; round <= 150; ++round) {
    ASSERT_EQ(fast.balls_to_throw(), oracle.balls_to_throw())
        << "round " << round;
    std::vector<std::uint32_t> choices(fast.balls_to_throw());
    for (auto& choice : choices) {
      choice = rng::bounded32(choice_engine, p.n);
    }
    const auto mf = fast.step_with_choices(choices);
    const auto mo = oracle.step_with_choices(choices);
    ASSERT_EQ(mf.pool_size, mo.pool_size) << "round " << round;
    ASSERT_EQ(mf.total_load, mo.total_load) << "round " << round;
    ASSERT_EQ(mf.deleted, mo.deleted) << "round " << round;
    ASSERT_EQ(mf.accepted, mo.accepted) << "round " << round;
    for (std::uint32_t bin = 0; bin < p.n; ++bin) {
      ASSERT_EQ(fast.load(bin), oracle.load(bin))
          << "round " << round << " bin " << bin;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, ModCappedOracle,
    ::testing::Values(Param{8, 1, 4, 24, 1}, Param{8, 2, 6, 40, 2},
                      Param{16, 3, 12, 80, 3}, Param{16, 4, 15, 100, 4},
                      Param{32, 2, 24, 120, 5}, Param{7, 3, 5, 35, 6},
                      Param{64, 5, 48, 400, 7}, Param{10, 2, 9, 60, 8}));

}  // namespace
