// Tests for the alias-table sampler and the non-uniform-bins CAPPED
// extension: distribution correctness, conservation, uniform-case
// equivalence with the homogeneous process, and heterogeneity behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/capped.hpp"
#include "core/hetero_capped.hpp"
#include "rng/alias.hpp"
#include "rng/xoshiro256.hpp"

namespace {

using namespace iba;
using core::Engine;
using core::HeteroCapped;
using core::HeteroCappedConfig;

TEST(AliasTable, RejectsBadWeights) {
  EXPECT_THROW(rng::AliasTable({}), ContractViolation);
  EXPECT_THROW(rng::AliasTable({1.0, -0.5}), ContractViolation);
  EXPECT_THROW(rng::AliasTable({0.0, 0.0}), ContractViolation);
}

TEST(AliasTable, NormalizesWeights) {
  rng::AliasTable table({2.0, 6.0});
  EXPECT_NEAR(table.outcome_probability(0), 0.25, 1e-12);
  EXPECT_NEAR(table.outcome_probability(1), 0.75, 1e-12);
  EXPECT_EQ(table.size(), 2u);
}

TEST(AliasTable, SingleOutcomeAlwaysSampled) {
  rng::AliasTable table({5.0});
  rng::Xoshiro256pp engine(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.sample(engine), 0u);
}

TEST(AliasTable, EmpiricalFrequenciesMatchWeights) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0, 0.0, 10.0};
  rng::AliasTable table(weights);
  rng::Xoshiro256pp engine(2);
  std::vector<int> counts(weights.size(), 0);
  const int draws = 400000;
  for (int i = 0; i < draws; ++i) ++counts[table.sample(engine)];
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double expected = weights[i] / total;
    EXPECT_NEAR(static_cast<double>(counts[i]) / draws, expected, 0.005)
        << "outcome " << i;
  }
  EXPECT_EQ(counts[4], 0);  // zero-weight outcome never sampled
}

TEST(AliasTable, UniformWeightsChiSquare) {
  rng::AliasTable table(std::vector<double>(8, 1.0));
  rng::Xoshiro256pp engine(3);
  std::vector<int> counts(8, 0);
  const int draws = 800000;
  for (int i = 0; i < draws; ++i) ++counts[table.sample(engine)];
  double chi2 = 0;
  const double expected = draws / 8.0;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 35.0);  // far beyond the 99.999th pct of chi2(7)
}

TEST(HeteroCappedConfig, Validation) {
  HeteroCappedConfig config;
  EXPECT_THROW(config.validate(), ContractViolation);
  config.capacities = {2, 0, 1};
  EXPECT_THROW(config.validate(), ContractViolation);
  config.capacities = {2, 1, 1};
  config.weights = {1.0, 2.0};  // wrong length
  EXPECT_THROW(config.validate(), ContractViolation);
  config.weights.clear();
  config.lambda_n = 4;  // > n
  EXPECT_THROW(config.validate(), ContractViolation);
  config.lambda_n = 2;
  EXPECT_NO_THROW(config.validate());
  EXPECT_EQ(config.total_capacity(), 4u);
}

TEST(HeteroCapped, ConservationAndPerBinCapacity) {
  HeteroCappedConfig config;
  config.capacities = {1, 2, 3, 4, 1, 2, 3, 4};
  config.lambda_n = 6;
  HeteroCapped process(config, Engine(4));
  for (int i = 0; i < 500; ++i) {
    const auto m = process.step();
    ASSERT_EQ(m.thrown, m.accepted + m.pool_size);
    ASSERT_EQ(process.generated_total(),
              process.pool_size() + process.total_load() +
                  process.deleted_total());
    for (std::uint32_t bin = 0; bin < 8; ++bin) {
      ASSERT_LE(process.load(bin), process.capacity(bin));
    }
  }
}

TEST(HeteroCapped, UniformCaseBehavesLikeCapped) {
  // Same semantics at equal capacities/uniform weights: steady-state
  // statistics must agree (engines diverge, so compare distributions).
  const std::uint32_t n = 1024;
  core::CappedConfig capped_config;
  capped_config.n = n;
  capped_config.capacity = 2;
  capped_config.lambda_n = 960;
  core::Capped capped(capped_config, Engine(5));

  HeteroCapped hetero(HeteroCappedConfig::uniform(n, 2, 960), Engine(6));

  auto mean_pool = [](auto& process) {
    for (int i = 0; i < 2000; ++i) (void)process.step();
    double pool = 0;
    for (int i = 0; i < 1000; ++i) {
      pool += static_cast<double>(process.step().pool_size);
    }
    return pool / 1000.0;
  };
  const double pool_capped = mean_pool(capped);
  const double pool_hetero = mean_pool(hetero);
  EXPECT_NEAR(pool_hetero, pool_capped, 0.1 * pool_capped + 5.0);
}

TEST(HeteroCapped, WeightedRoutingLoadsBigBinsMore) {
  // Two classes of bins (capacity 1 vs 4) with capacity-proportional
  // weights: the big bins must carry proportionally more deletions.
  HeteroCappedConfig config;
  const std::uint32_t n = 512;
  config.capacities.assign(n, 1);
  config.weights.assign(n, 1.0);
  for (std::uint32_t i = 0; i < n / 2; ++i) {
    config.capacities[i] = 4;
    config.weights[i] = 4.0;
  }
  config.lambda_n = n * 3 / 4;
  HeteroCapped process(config, Engine(7));
  for (int i = 0; i < 2000; ++i) (void)process.step();
  double big_load = 0, small_load = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    (i < n / 2 ? big_load : small_load) +=
        static_cast<double>(process.load(i));
  }
  EXPECT_GT(big_load, 2.0 * small_load);
}

TEST(HeteroCapped, SkewedWeightsIncreaseWaitingTimes) {
  // Misrouted load (heavy weight on a few bins) hurts: compare uniform
  // routing against a badly skewed one at equal capacity.
  auto max_wait = [](std::vector<double> weights, std::uint64_t seed) {
    HeteroCappedConfig config;
    config.capacities.assign(256, 2);
    config.weights = std::move(weights);
    config.lambda_n = 192;
    HeteroCapped process(config, Engine(seed));
    for (int i = 0; i < 3000; ++i) (void)process.step();
    return process.waits().mean();
  };
  std::vector<double> skewed(256, 1.0);
  for (int i = 0; i < 16; ++i) skewed[i] = 30.0;  // hot spots
  const double uniform_wait = max_wait({}, 8);
  const double skewed_wait = max_wait(skewed, 9);
  EXPECT_GT(skewed_wait, 1.5 * uniform_wait);
}

TEST(HeteroCapped, DeterministicGivenSeed) {
  const auto config = HeteroCappedConfig::uniform(64, 2, 48);
  HeteroCapped a(config, Engine(10)), b(config, Engine(10));
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(a.step().pool_size, b.step().pool_size);
  }
}

}  // namespace
