// Direct unit tests for the measurement primitives of core: RoundMetrics
// defaults and WaitRecorder semantics (moments, dyadic quantile bounds,
// reset, merge behaviour via the underlying histogram).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/capped.hpp"
#include "core/metrics.hpp"

namespace {

using iba::core::RoundMetrics;
using iba::core::WaitRecorder;

TEST(RoundMetrics, DefaultConstructedIsAllZero) {
  const RoundMetrics m;
  EXPECT_EQ(m.round, 0u);
  EXPECT_EQ(m.generated, 0u);
  EXPECT_EQ(m.thrown, 0u);
  EXPECT_EQ(m.accepted, 0u);
  EXPECT_EQ(m.deleted, 0u);
  EXPECT_EQ(m.pool_size, 0u);
  EXPECT_EQ(m.total_load, 0u);
  EXPECT_EQ(m.max_load, 0u);
  EXPECT_EQ(m.empty_bins, 0u);
  EXPECT_EQ(m.wait_count, 0u);
  EXPECT_EQ(m.wait_sum, 0.0);
  EXPECT_EQ(m.wait_max, 0u);
  EXPECT_EQ(m.requeued, 0u);
  EXPECT_EQ(m.oldest_pool_age, 0u);
}

TEST(WaitRecorder, EmptyRecorder) {
  const WaitRecorder recorder;
  EXPECT_EQ(recorder.count(), 0u);
  EXPECT_EQ(recorder.mean(), 0.0);
  EXPECT_EQ(recorder.max(), 0u);
  EXPECT_EQ(recorder.quantile_upper_bound(0.5), 0u);
}

TEST(WaitRecorder, MomentsMatchHandComputation) {
  WaitRecorder recorder;
  for (const std::uint64_t wait : {0u, 1u, 1u, 2u, 6u}) {
    recorder.record(wait);
  }
  EXPECT_EQ(recorder.count(), 5u);
  EXPECT_DOUBLE_EQ(recorder.mean(), 2.0);
  EXPECT_EQ(recorder.max(), 6u);
  // Sample stddev of {0,1,1,2,6}: variance = (4+1+1+0+16)/4 = 5.5.
  EXPECT_NEAR(recorder.stddev() * recorder.stddev(), 5.5, 1e-12);
}

TEST(WaitRecorder, QuantileUpperBoundIsDyadicallyTight) {
  WaitRecorder recorder;
  for (std::uint64_t w = 0; w < 100; ++w) recorder.record(w);
  const auto p50 = recorder.quantile_upper_bound(0.5);
  EXPECT_GE(p50, 49u);       // not below the exact median
  EXPECT_LE(p50, 63u);       // within the dyadic bucket [32, 64)
  const auto p99 = recorder.quantile_upper_bound(0.99);
  EXPECT_GE(p99, 98u);
  EXPECT_LE(p99, 127u);
}

TEST(WaitRecorder, HistogramExposureAndReset) {
  WaitRecorder recorder;
  recorder.record(3);
  recorder.record(5);
  EXPECT_EQ(recorder.histogram().total(), 2u);
  EXPECT_EQ(recorder.histogram().count(2), 1u);  // value 3 → bucket [2,4)
  EXPECT_EQ(recorder.histogram().count(3), 1u);  // value 5 → bucket [4,8)
  recorder.reset();
  EXPECT_EQ(recorder.count(), 0u);
  EXPECT_EQ(recorder.histogram().total(), 0u);
  recorder.record(1);
  EXPECT_EQ(recorder.count(), 1u);
}

TEST(WaitRecorder, MomentsAccessorConsistent) {
  WaitRecorder recorder;
  for (int i = 1; i <= 1000; ++i) recorder.record(static_cast<std::uint64_t>(i % 17));
  EXPECT_EQ(recorder.moments().count(), 1000u);
  EXPECT_DOUBLE_EQ(recorder.moments().mean(), recorder.mean());
}

// The dyadic contract, stated precisely: for any sample set and any q,
// quantile_upper_bound(q) is (a) >= the exact q-quantile and (b) < twice
// the exact q-quantile rounded up to its bucket top — i.e. the bound is
// the top of the dyadic bucket [2^(k-1), 2^k) the exact quantile lies in.
TEST(WaitRecorder, QuantileUpperBoundBracketsExactQuantile) {
  for (const std::uint64_t scale : {1u, 3u, 17u, 1000u}) {
    WaitRecorder recorder;
    std::vector<std::uint64_t> values;
    for (std::uint64_t i = 0; i < 500; ++i) {
      const std::uint64_t v = (i * i) % (scale * 64 + 1);
      recorder.record(v);
      values.push_back(v);
    }
    std::sort(values.begin(), values.end());
    for (const double q : {0.1, 0.5, 0.9, 0.99, 1.0}) {
      const auto rank = static_cast<std::size_t>(
          std::ceil(q * static_cast<double>(values.size())));
      const std::uint64_t exact = values[rank == 0 ? 0 : rank - 1];
      const std::uint64_t bound = recorder.quantile_upper_bound(q);
      EXPECT_GE(bound, exact) << "scale=" << scale << " q=" << q;
      // Upper edge of the exact value's dyadic bucket.
      const std::uint64_t bucket_top =
          exact <= 1 ? exact : (std::bit_ceil(exact + 1) - 1);
      EXPECT_LE(bound, bucket_top) << "scale=" << scale << " q=" << q;
    }
  }
}

TEST(WaitRecorder, QuantileUpperBoundPowerOfTwoEdges) {
  WaitRecorder recorder;
  // 2^k sits in bucket [2^k, 2^(k+1)), so the dyadic upper bound for a
  // point mass at 2^k is 2^(k+1) - 1.
  recorder.record(64);
  EXPECT_EQ(recorder.quantile_upper_bound(0.5), 127u);
  EXPECT_EQ(recorder.quantile_upper_bound(1.0), 127u);
  recorder.reset();
  // 2^k - 1 is the top of its own bucket: the bound is exact there.
  recorder.record(63);
  EXPECT_EQ(recorder.quantile_upper_bound(1.0), 63u);
  recorder.reset();
  recorder.record(0);
  EXPECT_EQ(recorder.quantile_upper_bound(1.0), 0u);
  recorder.record(1);
  EXPECT_EQ(recorder.quantile_upper_bound(0.25), 0u);
  EXPECT_EQ(recorder.quantile_upper_bound(1.0), 1u);
}

// Per-round flow conservation under the crash-requeue failure path:
// generated + requeued must equal accepted + pool growth each round, and
// the lifetime ledger generated = pool + in-bins + deleted must hold —
// crashing bins return balls to the pool without creating or losing any.
TEST(RoundMetrics, ConservationUnderCrashRequeue) {
  using iba::core::Capped;
  using iba::core::CappedConfig;
  using iba::core::FailureMode;

  CappedConfig config;
  config.n = 128;
  config.capacity = 2;
  config.lambda_n = 112;  // λ = 7/8
  config.failure_probability = 0.2;  // frequent crashes
  config.failure_mode = FailureMode::kCrashRequeue;
  Capped process(config, iba::core::Engine(99));

  std::uint64_t previous_pool = 0;
  std::uint64_t total_requeued = 0;
  for (int round = 0; round < 500; ++round) {
    const RoundMetrics m = process.step();
    // Round-local flow: every thrown ball (old pool + generated) is
    // either accepted or back in the pool; crashed buffers re-enter the
    // pool on top.
    EXPECT_EQ(m.thrown, previous_pool + m.generated);
    EXPECT_EQ(m.thrown + m.requeued, m.accepted + m.pool_size);
    // The ISSUE's phrasing: generated + requeued = accepted + pool delta.
    EXPECT_EQ(m.generated + m.requeued,
              m.accepted + m.pool_size - previous_pool);
    previous_pool = m.pool_size;
    total_requeued += m.requeued;
    // Lifetime ledger.
    EXPECT_EQ(process.generated_total(),
              process.pool_size() + process.total_load() +
                  process.deleted_total());
  }
  EXPECT_GT(total_requeued, 0u) << "failure path never exercised";
}

}  // namespace
