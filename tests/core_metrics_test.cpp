// Direct unit tests for the measurement primitives of core: RoundMetrics
// defaults and WaitRecorder semantics (moments, dyadic quantile bounds,
// reset, merge behaviour via the underlying histogram).
#include <gtest/gtest.h>

#include <cstdint>

#include "core/metrics.hpp"

namespace {

using iba::core::RoundMetrics;
using iba::core::WaitRecorder;

TEST(RoundMetrics, DefaultConstructedIsAllZero) {
  const RoundMetrics m;
  EXPECT_EQ(m.round, 0u);
  EXPECT_EQ(m.generated, 0u);
  EXPECT_EQ(m.thrown, 0u);
  EXPECT_EQ(m.accepted, 0u);
  EXPECT_EQ(m.deleted, 0u);
  EXPECT_EQ(m.pool_size, 0u);
  EXPECT_EQ(m.total_load, 0u);
  EXPECT_EQ(m.max_load, 0u);
  EXPECT_EQ(m.empty_bins, 0u);
  EXPECT_EQ(m.wait_count, 0u);
  EXPECT_EQ(m.wait_sum, 0.0);
  EXPECT_EQ(m.wait_max, 0u);
  EXPECT_EQ(m.requeued, 0u);
  EXPECT_EQ(m.oldest_pool_age, 0u);
}

TEST(WaitRecorder, EmptyRecorder) {
  const WaitRecorder recorder;
  EXPECT_EQ(recorder.count(), 0u);
  EXPECT_EQ(recorder.mean(), 0.0);
  EXPECT_EQ(recorder.max(), 0u);
  EXPECT_EQ(recorder.quantile_upper_bound(0.5), 0u);
}

TEST(WaitRecorder, MomentsMatchHandComputation) {
  WaitRecorder recorder;
  for (const std::uint64_t wait : {0u, 1u, 1u, 2u, 6u}) {
    recorder.record(wait);
  }
  EXPECT_EQ(recorder.count(), 5u);
  EXPECT_DOUBLE_EQ(recorder.mean(), 2.0);
  EXPECT_EQ(recorder.max(), 6u);
  // Sample stddev of {0,1,1,2,6}: variance = (4+1+1+0+16)/4 = 5.5.
  EXPECT_NEAR(recorder.stddev() * recorder.stddev(), 5.5, 1e-12);
}

TEST(WaitRecorder, QuantileUpperBoundIsDyadicallyTight) {
  WaitRecorder recorder;
  for (std::uint64_t w = 0; w < 100; ++w) recorder.record(w);
  const auto p50 = recorder.quantile_upper_bound(0.5);
  EXPECT_GE(p50, 49u);       // not below the exact median
  EXPECT_LE(p50, 63u);       // within the dyadic bucket [32, 64)
  const auto p99 = recorder.quantile_upper_bound(0.99);
  EXPECT_GE(p99, 98u);
  EXPECT_LE(p99, 127u);
}

TEST(WaitRecorder, HistogramExposureAndReset) {
  WaitRecorder recorder;
  recorder.record(3);
  recorder.record(5);
  EXPECT_EQ(recorder.histogram().total(), 2u);
  EXPECT_EQ(recorder.histogram().count(2), 1u);  // value 3 → bucket [2,4)
  EXPECT_EQ(recorder.histogram().count(3), 1u);  // value 5 → bucket [4,8)
  recorder.reset();
  EXPECT_EQ(recorder.count(), 0u);
  EXPECT_EQ(recorder.histogram().total(), 0u);
  recorder.record(1);
  EXPECT_EQ(recorder.count(), 1u);
}

TEST(WaitRecorder, MomentsAccessorConsistent) {
  WaitRecorder recorder;
  for (int i = 1; i <= 1000; ++i) recorder.record(static_cast<std::uint64_t>(i % 17));
  EXPECT_EQ(recorder.moments().count(), 1000u);
  EXPECT_DOUBLE_EQ(recorder.moments().mean(), recorder.mean());
}

}  // namespace
