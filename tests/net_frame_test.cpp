// Wire-level tests for the framed transport (net/frame.hpp) over real
// AF_UNIX socketpairs: round trips, every corruption class the header
// promises to detect (bit flips under the CRC, bad magic, oversized
// length, truncation), and partial-read reassembly when the sender
// dribbles bytes.
#include "net/frame.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"

namespace iba::net {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& text) {
  return std::vector<std::uint8_t>(text.begin(), text.end());
}

TEST(NetFrameTest, RoundTripPreservesTypeAndPayload) {
  auto [a, b] = socket_pair();
  const std::vector<std::uint8_t> sent = bytes_of("hello, frames");
  write_frame(a.fd(), 7, sent);

  std::uint32_t type = 0;
  std::vector<std::uint8_t> received;
  ASSERT_TRUE(read_frame(b.fd(), type, received));
  EXPECT_EQ(type, 7u);
  EXPECT_EQ(received, sent);
}

TEST(NetFrameTest, EmptyPayloadRoundTrips) {
  auto [a, b] = socket_pair();
  write_frame(a.fd(), 42, {});
  std::uint32_t type = 0;
  std::vector<std::uint8_t> received{0xAA};  // must be cleared by the read
  ASSERT_TRUE(read_frame(b.fd(), type, received));
  EXPECT_EQ(type, 42u);
  EXPECT_TRUE(received.empty());
}

TEST(NetFrameTest, BackToBackFramesStaySynchronized) {
  auto [a, b] = socket_pair();
  for (std::uint32_t i = 0; i < 16; ++i) {
    write_frame(a.fd(), i, bytes_of(std::string(i * 7, 'x')));
  }
  std::uint32_t type = 0;
  std::vector<std::uint8_t> payload;
  for (std::uint32_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(read_frame(b.fd(), type, payload));
    EXPECT_EQ(type, i);
    EXPECT_EQ(payload.size(), i * 7);
  }
}

TEST(NetFrameTest, CleanEofBeforeHeaderReturnsFalse) {
  auto [a, b] = socket_pair();
  a.close();
  std::uint32_t type = 0;
  std::vector<std::uint8_t> payload;
  EXPECT_FALSE(read_frame(b.fd(), type, payload));
}

// Captures one encoded frame by writing it into a socketpair and
// draining the bytes — so corruption tests operate on exactly what the
// production encoder emits.
std::vector<std::uint8_t> encode_frame(std::uint32_t type,
                                       const std::vector<std::uint8_t>& body) {
  auto [a, b] = socket_pair();
  write_frame(a.fd(), type, body);
  std::vector<std::uint8_t> wire(kFrameHeaderBytes + body.size());
  read_full(b.fd(), wire.data(), wire.size());
  return wire;
}

void write_raw(int fd, const std::vector<std::uint8_t>& wire) {
  write_full(fd, wire.data(), wire.size());
}

TEST(NetFrameTest, EveryBitFlipPastTheMagicIsRejected) {
  const std::vector<std::uint8_t> wire = encode_frame(3, bytes_of("payload"));
  // Flip one bit in each byte of type, length, crc, and payload; every
  // mutant must be rejected (the CRC covers all of them).
  for (std::size_t i = 4; i < wire.size(); ++i) {
    std::vector<std::uint8_t> mutant = wire;
    mutant[i] ^= 0x10;
    auto [a, b] = socket_pair();
    write_raw(a.fd(), mutant);
    a.close();
    std::uint32_t type = 0;
    std::vector<std::uint8_t> payload;
    // A flipped length byte usually announces more payload than was
    // sent, which surfaces as truncation (PeerClosed) rather than a CRC
    // mismatch; both reject the frame. NetError covers the two.
    EXPECT_THROW((void)read_frame(b.fd(), type, payload), NetError)
        << "bit flip at offset " << i << " slipped through";
  }
}

TEST(NetFrameTest, BadMagicIsRejected) {
  std::vector<std::uint8_t> wire = encode_frame(1, bytes_of("x"));
  wire[0] ^= 0xFF;
  auto [a, b] = socket_pair();
  write_raw(a.fd(), wire);
  std::uint32_t type = 0;
  std::vector<std::uint8_t> payload;
  EXPECT_THROW((void)read_frame(b.fd(), type, payload), FrameError);
}

TEST(NetFrameTest, OversizedLengthIsRejectedBeforeAllocating) {
  std::vector<std::uint8_t> wire = encode_frame(1, bytes_of("x"));
  const std::uint32_t huge = 0x40000000u;  // 1 GiB, over a 1 KiB ceiling
  std::memcpy(wire.data() + 8, &huge, sizeof(huge));
  auto [a, b] = socket_pair();
  write_raw(a.fd(), wire);
  std::uint32_t type = 0;
  std::vector<std::uint8_t> payload;
  EXPECT_THROW((void)read_frame(b.fd(), type, payload, /*max_payload=*/1024),
               FrameError);
}

TEST(NetFrameTest, TruncationMidFrameThrowsPeerClosed) {
  const std::vector<std::uint8_t> wire = encode_frame(5, bytes_of("truncated"));
  for (const std::size_t keep : {std::size_t{3}, kFrameHeaderBytes,
                                 wire.size() - 1}) {
    auto [a, b] = socket_pair();
    write_full(a.fd(), wire.data(), keep);
    a.close();
    std::uint32_t type = 0;
    std::vector<std::uint8_t> payload;
    EXPECT_THROW((void)read_frame(b.fd(), type, payload), PeerClosed)
        << "with " << keep << " of " << wire.size() << " bytes delivered";
  }
}

TEST(NetFrameTest, PartialReadsReassembleAcrossDribbledWrites) {
  // A sender that trickles one byte at a time exercises read_full's
  // partial-read loop: the reader must block and reassemble, never see
  // a short frame.
  const std::vector<std::uint8_t> body = bytes_of(std::string(257, 'd'));
  const std::vector<std::uint8_t> wire = encode_frame(9, body);
  auto [a, b] = socket_pair();
  std::thread dribbler([&a, &wire] {
    for (const std::uint8_t byte : wire) {
      write_full(a.fd(), &byte, 1);
    }
  });
  std::uint32_t type = 0;
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(read_frame(b.fd(), type, payload));
  dribbler.join();
  EXPECT_EQ(type, 9u);
  EXPECT_EQ(payload, body);
}

TEST(NetFrameTest, WireWriterReaderRoundTripAllScalars) {
  WireWriter out;
  out.u32(0xDEADBEEFu);
  out.u64(0x0123456789ABCDEFull);
  out.str("label");
  out.u64_vec({1, 2, 3});
  out.str("");  // empty strings are legal

  WireReader in(out.span());
  EXPECT_EQ(in.u32("a"), 0xDEADBEEFu);
  EXPECT_EQ(in.u64("b"), 0x0123456789ABCDEFull);
  EXPECT_EQ(in.str("c"), "label");
  EXPECT_EQ(in.u64_vec("d"), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(in.str("e"), "");
  in.expect_end("test payload");
}

TEST(NetFrameTest, WireReaderRejectsOverrunAndTrailingBytes) {
  WireWriter out;
  out.u32(7);
  WireReader short_read(out.span());
  EXPECT_THROW((void)short_read.u64("needs 8"), FrameError);

  WireReader trailing(out.span());
  EXPECT_THROW(trailing.expect_end("no fields read"), FrameError);

  // A string whose declared length runs past the payload end.
  WireWriter lying;
  lying.u32(1000);
  WireReader reader(lying.span());
  EXPECT_THROW((void)reader.str("truncated string"), FrameError);
}

}  // namespace
}  // namespace iba::net
