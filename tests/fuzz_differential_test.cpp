// Randomized differential testing: many random (n, c, λ, seed)
// configurations, each run in lockstep against the explicit-ball oracle
// and through the invariant checker. Any divergence or accounting
// violation is a bug in the optimized simulator.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/capped.hpp"
#include "core/oracle.hpp"
#include "rng/bounded.hpp"
#include "rng/seed.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/trace.hpp"

namespace {

using namespace iba;
using core::Capped;
using core::CappedConfig;
using core::Engine;

CappedConfig random_config(rng::Xoshiro256pp& meta) {
  CappedConfig config;
  config.n = static_cast<std::uint32_t>(2 + rng::bounded(meta, 200));
  config.capacity = static_cast<std::uint32_t>(1 + rng::bounded(meta, 8));
  config.lambda_n = rng::bounded(meta, config.n + 1);  // λ ∈ [0, 1]
  return config;
}

TEST(FuzzDifferential, OptimizedMatchesOracleOnRandomConfigs) {
  rng::Xoshiro256pp meta(20210707);
  for (int trial = 0; trial < 60; ++trial) {
    const CappedConfig config = random_config(meta);
    Capped fast(config, Engine(0));
    core::OracleCapped oracle(config, Engine(0));
    Engine choices_engine(rng::derive_seed(1, static_cast<std::uint64_t>(trial)));

    for (int round = 0; round < 120; ++round) {
      std::vector<std::uint32_t> choices(fast.balls_to_throw());
      for (auto& choice : choices) {
        choice = rng::bounded32(choices_engine, config.n);
      }
      const auto mf = fast.step_with_choices(choices);
      const auto mo = oracle.step_with_choices(choices);
      ASSERT_EQ(mf.pool_size, mo.pool_size)
          << "trial " << trial << " round " << round << " n=" << config.n
          << " c=" << config.capacity << " lambda_n=" << config.lambda_n;
      ASSERT_EQ(mf.deleted, mo.deleted);
      ASSERT_EQ(mf.max_load, mo.max_load);
      ASSERT_DOUBLE_EQ(mf.wait_sum, mo.wait_sum);
    }
  }
}

TEST(FuzzDifferential, InvariantCheckerCleanOnRandomConfigs) {
  rng::Xoshiro256pp meta(777);
  for (int trial = 0; trial < 40; ++trial) {
    CappedConfig config = random_config(meta);
    // Exercise random policy combinations too.
    config.deletion = static_cast<core::DeletionDiscipline>(
        rng::bounded(meta, 3));
    config.acceptance = static_cast<core::AcceptanceOrder>(
        rng::bounded(meta, 2));
    config.arrival = static_cast<core::ArrivalModel>(rng::bounded(meta, 3));
    config.failure_probability =
        static_cast<double>(rng::bounded(meta, 40)) / 100.0;

    Capped process(config, Engine(rng::derive_seed(2, static_cast<std::uint64_t>(trial))));
    sim::Checked checked(process);
    for (int round = 0; round < 200; ++round) (void)checked.step();
    ASSERT_EQ(checked.violations(), 0u)
        << "trial " << trial << ": " <<
        (checked.violation_log().empty() ? "?" : checked.violation_log()[0]);
  }
}

TEST(FuzzDifferential, SnapshotRestoreOnRandomConfigs) {
  rng::Xoshiro256pp meta(4242);
  for (int trial = 0; trial < 25; ++trial) {
    const CappedConfig config = random_config(meta);
    Capped original(config, Engine(rng::derive_seed(3, static_cast<std::uint64_t>(trial))));
    const auto warm = 1 + rng::bounded(meta, 150);
    for (std::uint64_t i = 0; i < warm; ++i) (void)original.step();
    Capped restored(original.snapshot());
    for (int round = 0; round < 80; ++round) {
      const auto mo = original.step();
      const auto mr = restored.step();
      ASSERT_EQ(mo.pool_size, mr.pool_size) << "trial " << trial;
      ASSERT_EQ(mo.deleted, mr.deleted) << "trial " << trial;
    }
  }
}

}  // namespace
