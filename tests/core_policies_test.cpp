// Tests for the CAPPED policy extensions: stochastic arrival models
// (paper footnote 2), deletion disciplines, acceptance-order ablation,
// and bin failure injection.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/capped.hpp"
#include "core/policies.hpp"

namespace {

using namespace iba::core;

CappedConfig base_config() {
  CappedConfig config;
  config.n = 512;
  config.capacity = 2;
  config.lambda_n = 384;  // λ = 3/4
  return config;
}

TEST(Policies, ToStringCoversAllValues) {
  EXPECT_EQ(to_string(ArrivalModel::kDeterministic), "deterministic");
  EXPECT_EQ(to_string(ArrivalModel::kBinomial), "binomial");
  EXPECT_EQ(to_string(ArrivalModel::kPoisson), "poisson");
  EXPECT_EQ(to_string(DeletionDiscipline::kFifo), "fifo");
  EXPECT_EQ(to_string(DeletionDiscipline::kLifo), "lifo");
  EXPECT_EQ(to_string(DeletionDiscipline::kUniform), "uniform");
  EXPECT_EQ(to_string(AcceptanceOrder::kOldestFirst), "oldest-first");
  EXPECT_EQ(to_string(AcceptanceOrder::kYoungestFirst), "youngest-first");
}

TEST(ArrivalModels, BinomialMatchesExpectedRate) {
  CappedConfig config = base_config();
  config.arrival = ArrivalModel::kBinomial;
  Capped process(config, Engine(1));
  double generated = 0;
  const int rounds = 2000;
  for (int i = 0; i < rounds; ++i) {
    generated += static_cast<double>(process.step().generated);
  }
  // E[generated] = λn = 384 per round; sd of the mean ≈ 0.22.
  EXPECT_NEAR(generated / rounds, 384.0, 3.0);
}

TEST(ArrivalModels, PoissonMatchesExpectedRate) {
  CappedConfig config = base_config();
  config.arrival = ArrivalModel::kPoisson;
  Capped process(config, Engine(2));
  double generated = 0;
  const int rounds = 2000;
  for (int i = 0; i < rounds; ++i) {
    generated += static_cast<double>(process.step().generated);
  }
  EXPECT_NEAR(generated / rounds, 384.0, 3.0);
}

TEST(ArrivalModels, ConservationHoldsUnderStochasticArrivals) {
  for (const auto model : {ArrivalModel::kBinomial, ArrivalModel::kPoisson}) {
    CappedConfig config = base_config();
    config.arrival = model;
    Capped process(config, Engine(3));
    for (int i = 0; i < 500; ++i) {
      const auto m = process.step();
      ASSERT_EQ(m.thrown, m.accepted + m.pool_size);
      ASSERT_EQ(process.generated_total(),
                process.pool_size() + process.total_load() +
                    process.deleted_total());
    }
  }
}

TEST(ArrivalModels, StepWithChoicesRequiresDeterministic) {
  CappedConfig config = base_config();
  config.arrival = ArrivalModel::kPoisson;
  Capped process(config, Engine(4));
  std::vector<std::uint32_t> choices(process.balls_to_throw(), 0);
  EXPECT_THROW((void)process.step_with_choices(choices),
               iba::ContractViolation);
}

TEST(ArrivalModels, StochasticModelsStayStable) {
  // The footnote-2 claim: the results adjust to probabilistic generation.
  // Check the pool stays in the same ballpark as the deterministic model.
  double pools[3] = {0, 0, 0};
  int index = 0;
  for (const auto model :
       {ArrivalModel::kDeterministic, ArrivalModel::kBinomial,
        ArrivalModel::kPoisson}) {
    CappedConfig config = base_config();
    config.arrival = model;
    Capped process(config, Engine(5));
    for (int i = 0; i < 500; ++i) (void)process.step();  // burn in
    double pool = 0;
    for (int i = 0; i < 500; ++i) {
      pool += static_cast<double>(process.step().pool_size);
    }
    pools[index++] = pool / 500.0;
  }
  EXPECT_NEAR(pools[1], pools[0], 0.3 * pools[0] + 10);
  EXPECT_NEAR(pools[2], pools[0], 0.3 * pools[0] + 10);
}

TEST(DeletionDiscipline, AllDisciplinesConserveBalls) {
  for (const auto discipline :
       {DeletionDiscipline::kFifo, DeletionDiscipline::kLifo,
        DeletionDiscipline::kUniform}) {
    CappedConfig config = base_config();
    config.capacity = 4;
    config.deletion = discipline;
    Capped process(config, Engine(6));
    for (int i = 0; i < 400; ++i) {
      const auto m = process.step();
      ASSERT_LE(m.max_load, 4u);
      ASSERT_EQ(process.generated_total(),
                process.pool_size() + process.total_load() +
                    process.deleted_total());
    }
  }
}

TEST(DeletionDiscipline, LifoProducesWorseTailThanFifo) {
  // LIFO starves early arrivals under load: its maximum waiting time
  // must (weakly) dominate FIFO's on the same horizon.
  auto run = [](DeletionDiscipline discipline) {
    CappedConfig config = base_config();
    config.n = 1024;
    config.lambda_n = 1008;  // λ = 63/64, enough pressure to matter
    config.capacity = 3;
    config.deletion = discipline;
    Capped process(config, Engine(7));
    for (int i = 0; i < 3000; ++i) (void)process.step();
    return process.waits().max();
  };
  const auto fifo_max = run(DeletionDiscipline::kFifo);
  const auto lifo_max = run(DeletionDiscipline::kLifo);
  EXPECT_GT(lifo_max, fifo_max);
}

TEST(DeletionDiscipline, PoolDynamicsUnaffectedByDiscipline) {
  // Which ball a bin deletes does not change *how many* balls it holds:
  // pool-size trajectories agree across disciplines under one seed for
  // FIFO and LIFO (uniform consumes extra randomness, so it is excluded).
  CappedConfig fifo_config = base_config();
  fifo_config.deletion = DeletionDiscipline::kFifo;
  CappedConfig lifo_config = base_config();
  lifo_config.deletion = DeletionDiscipline::kLifo;
  Capped fifo(fifo_config, Engine(8));
  Capped lifo(lifo_config, Engine(8));
  for (int i = 0; i < 300; ++i) {
    ASSERT_EQ(fifo.step().pool_size, lifo.step().pool_size);
  }
}

TEST(AcceptanceOrder, YoungestFirstStarvesOldBalls) {
  // The paper's oldest-first preference is what caps the waiting time;
  // inverting it lets survivors starve.
  auto run = [](AcceptanceOrder order) {
    CappedConfig config;
    config.n = 1024;
    config.capacity = 1;
    config.lambda_n = 992;  // λ = 31/32
    config.acceptance = order;
    Capped process(config, Engine(9));
    for (int i = 0; i < 4000; ++i) (void)process.step();
    return process.waits().max();
  };
  const auto oldest = run(AcceptanceOrder::kOldestFirst);
  const auto youngest = run(AcceptanceOrder::kYoungestFirst);
  EXPECT_GT(youngest, 2 * oldest);
}

TEST(AcceptanceOrder, YoungestFirstConservesAndKeepsPoolSize) {
  // Acceptance order permutes which balls survive, not how many.
  CappedConfig config = base_config();
  config.acceptance = AcceptanceOrder::kYoungestFirst;
  Capped inverted(config, Engine(10));
  CappedConfig normal = base_config();
  Capped standard(normal, Engine(10));
  for (int i = 0; i < 300; ++i) {
    const auto mi = inverted.step();
    const auto ms = standard.step();
    ASSERT_EQ(mi.pool_size, ms.pool_size);
    ASSERT_EQ(mi.accepted, ms.accepted);
    ASSERT_EQ(inverted.generated_total(),
              inverted.pool_size() + inverted.total_load() +
                  inverted.deleted_total());
  }
}

TEST(FailureInjection, ValidatesProbability) {
  CappedConfig config = base_config();
  config.failure_probability = 1.0;
  EXPECT_THROW(config.validate(), iba::ContractViolation);
  config.failure_probability = -0.1;
  EXPECT_THROW(config.validate(), iba::ContractViolation);
}

TEST(FailureInjection, ReducesThroughputProportionally) {
  // Saturate the system: λ = 1 with 30% failures is overloaded, so the
  // pool grows until every bin receives requests every round. Then each
  // bin serves with probability exactly 1 − φ, and throughput per bin
  // per round converges to 0.7.
  CappedConfig config;
  config.n = 1024;
  config.capacity = 1;
  config.lambda_n = 1024;  // λ = 1
  config.failure_probability = 0.3;
  Capped process(config, Engine(11));
  for (int i = 0; i < 500; ++i) (void)process.step();  // build the backlog

  std::uint64_t deleted = 0;
  const int rounds = 1000;
  for (int i = 0; i < rounds; ++i) deleted += process.step().deleted;
  const double per_bin_rate =
      static_cast<double>(deleted) / (static_cast<double>(rounds) * 1024.0);
  EXPECT_NEAR(per_bin_rate, 0.7, 0.02);
}

TEST(FailureInjection, SystemStillStableWithSlack) {
  // λ = 1/2 with 20% failures: effective capacity 0.8 > λ, so the pool
  // must remain bounded.
  CappedConfig config;
  config.n = 1024;
  config.capacity = 2;
  config.lambda_n = 512;
  config.failure_probability = 0.2;
  Capped process(config, Engine(12));
  for (int i = 0; i < 2000; ++i) (void)process.step();
  std::uint64_t worst_pool = 0;
  for (int i = 0; i < 1000; ++i) {
    worst_pool = std::max(worst_pool, process.step().pool_size);
  }
  EXPECT_LT(worst_pool, 3000u);  // far below any runaway growth
  EXPECT_EQ(process.generated_total(),
            process.pool_size() + process.total_load() +
                process.deleted_total());
}

TEST(FailureInjection, CrashRequeueValidation) {
  CappedConfig config = base_config();
  config.capacity = CappedConfig::kInfiniteCapacity;
  config.failure_mode = FailureMode::kCrashRequeue;
  config.failure_probability = 0.1;
  EXPECT_THROW(config.validate(), iba::ContractViolation);
  config.capacity = 2;
  EXPECT_NO_THROW(config.validate());
}

TEST(FailureInjection, CrashRequeueConservesBalls) {
  CappedConfig config = base_config();
  config.capacity = 3;
  config.failure_probability = 0.15;
  config.failure_mode = FailureMode::kCrashRequeue;
  Capped process(config, Engine(20));
  std::uint64_t requeued_total = 0;
  for (int i = 0; i < 800; ++i) {
    const auto m = process.step();
    requeued_total += m.requeued;
    // Requeued balls are back in the pool at end of round.
    ASSERT_EQ(m.thrown + m.requeued, m.accepted + m.pool_size);
    ASSERT_EQ(process.generated_total(),
              process.pool_size() + process.total_load() +
                  process.deleted_total());
  }
  EXPECT_GT(requeued_total, 0u);  // crashes actually happened
}

TEST(FailureInjection, CrashRequeuePreservesBallAges) {
  // A requeued ball keeps its original label: the oldest pool age keeps
  // growing through a crash rather than resetting.
  CappedConfig config = base_config();
  config.n = 256;
  config.lambda_n = 224;
  config.capacity = 2;
  config.failure_probability = 0.2;
  config.failure_mode = FailureMode::kCrashRequeue;
  Capped process(config, Engine(21));
  std::uint64_t worst_age = 0;
  for (int i = 0; i < 1500; ++i) {
    worst_age = std::max(worst_age, process.step().oldest_pool_age);
  }
  EXPECT_GT(worst_age, 2u);  // crashes push some balls to age > 2
}

TEST(FailureInjection, CrashRequeueHarsherThanSkip) {
  // Losing buffered work is strictly worse than skipping a service:
  // same φ, worse average waiting time.
  auto mean_wait = [](FailureMode mode) {
    CappedConfig config;
    config.n = 1024;
    config.capacity = 3;
    config.lambda_n = 768;
    config.failure_probability = 0.15;
    config.failure_mode = mode;
    Capped process(config, Engine(22));
    for (int i = 0; i < 2000; ++i) (void)process.step();
    return process.waits().mean();
  };
  EXPECT_GT(mean_wait(FailureMode::kCrashRequeue),
            mean_wait(FailureMode::kSkipService));
}

TEST(OldestPoolAge, TracksStarvationDepth) {
  // Under the paper's oldest-first rule, the oldest unallocated ball is
  // young (it wins the next allocation w.h.p.); the metric is small.
  CappedConfig config = base_config();
  Capped process(config, Engine(23));
  std::uint64_t worst = 0;
  for (int i = 0; i < 1000; ++i) {
    worst = std::max(worst, process.step().oldest_pool_age);
  }
  EXPECT_LE(worst, 12u);

  // Under youngest-first acceptance the pool's head can starve for far
  // longer.
  config.acceptance = AcceptanceOrder::kYoungestFirst;
  config.n = 1024;
  config.lambda_n = 992;
  config.capacity = 1;
  Capped inverted(config, Engine(24));
  std::uint64_t worst_inverted = 0;
  for (int i = 0; i < 2000; ++i) {
    worst_inverted = std::max(worst_inverted,
                              inverted.step().oldest_pool_age);
  }
  EXPECT_GT(worst_inverted, worst);
}

TEST(FailureInjection, ZeroProbabilityMatchesBaseline) {
  CappedConfig with_flag = base_config();
  with_flag.failure_probability = 0.0;
  Capped a(with_flag, Engine(13));
  Capped b(base_config(), Engine(13));
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(a.step().pool_size, b.step().pool_size);
  }
}

}  // namespace
