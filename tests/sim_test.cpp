// Integration tests of the simulation engine: config validation, burn-in
// behaviour, measurement aggregation, determinism, and replication
// (sequential ≡ parallel).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bounds.hpp"
#include "concurrency/thread_pool.hpp"
#include "core/greedy.hpp"
#include "sim/config.hpp"
#include "sim/replication.hpp"
#include "sim/runner.hpp"

namespace {

using namespace iba::sim;

SimConfig small_config() {
  SimConfig config;
  config.n = 512;
  config.capacity = 2;
  config.lambda_n = 384;  // λ = 3/4
  config.burn_in = 100;
  config.auto_burn_in = false;
  config.measure_rounds = 300;
  config.seed = 7;
  return config;
}

TEST(SimConfig, ValidationAndLabel) {
  SimConfig config = small_config();
  EXPECT_NO_THROW(config.validate());
  EXPECT_NE(config.label().find("c=2"), std::string::npos);
  config.lambda_n = config.n + 1;
  EXPECT_THROW(config.validate(), iba::ContractViolation);
  config = small_config();
  config.measure_rounds = 0;
  EXPECT_THROW(config.validate(), iba::ContractViolation);
}

TEST(SimConfig, LambdaHelpers) {
  EXPECT_DOUBLE_EQ(lambda_one_minus_2pow(1), 0.5);
  EXPECT_DOUBLE_EQ(lambda_one_minus_2pow(10), 1.0 - 1.0 / 1024.0);
  EXPECT_EQ(lambda_n_for(1024, 2), 768u);
  EXPECT_EQ(lambda_n_for(1 << 15, 10), (1u << 15) - 32u);
}

TEST(Runner, MeasuresRequestedRounds) {
  const auto result = run_capped(small_config());
  EXPECT_EQ(result.measured_rounds, 300u);
  EXPECT_EQ(result.burn_in_used, 100u);
  EXPECT_EQ(result.pool.count(), 300u);
  EXPECT_GT(result.deletions, 0u);
  EXPECT_GT(result.rounds_per_second, 0.0);
}

TEST(Runner, DeterministicForSameSeed) {
  const auto a = run_capped(small_config());
  const auto b = run_capped(small_config());
  EXPECT_DOUBLE_EQ(a.normalized_pool.mean(), b.normalized_pool.mean());
  EXPECT_DOUBLE_EQ(a.wait_mean, b.wait_mean);
  EXPECT_EQ(a.wait_max, b.wait_max);
}

TEST(Runner, AutoBurnInExtendsPastFloor) {
  SimConfig config = small_config();
  config.n = 1024;
  config.lambda_n = 1023;  // λ close to 1: slow ramp-up
  config.burn_in = 10;
  config.auto_burn_in = true;
  config.max_burn_in = 20000;
  const auto result = run_capped(config);
  EXPECT_GT(result.burn_in_used, 10u);
  EXPECT_LE(result.burn_in_used, 20000u);
}

TEST(Runner, NormalizedPoolNearPaperReference) {
  // After stabilization the normalized pool should sit near the paper's
  // empirical law ln(1/(1−λ))/c + 1 (±50% tolerance at small n).
  SimConfig config;
  config.n = 4096;
  config.capacity = 1;
  config.lambda_n = 3072;  // λ = 3/4
  config.auto_burn_in = true;
  config.burn_in = 200;
  config.measure_rounds = 500;
  config.seed = 11;
  const auto result = run_capped(config);
  // The c = 1 mean-field steady state is sharp: pool/n = ln(1/(1−λ)) − λ.
  const double mean_field = iba::analysis::mean_field_pool_c1(0.75);
  EXPECT_NEAR(result.normalized_pool.mean(), mean_field, 0.2 * mean_field);
  // The paper's dashed reference curve upper-bounds the measurement.
  EXPECT_LT(result.normalized_pool.mean(),
            iba::analysis::fig4_reference(0.75, 1));
  // And safely below the Theorem 1 w.h.p. bound.
  EXPECT_LT(result.pool.max(),
            iba::analysis::pool_bound_thm1(config.n, 0.75));
}

TEST(Runner, WaitStatsResetAfterBurnIn) {
  // wait_max reflects the measurement window only: for a stabilized c=1
  // λ=1/2 system it is small even though burn-in started from empty.
  SimConfig config;
  config.n = 1024;
  config.capacity = 1;
  config.lambda_n = 512;
  config.burn_in = 200;
  config.auto_burn_in = false;
  config.measure_rounds = 200;
  const auto result = run_capped(config);
  EXPECT_GT(result.deletions, 0u);
  EXPECT_LT(result.wait_mean, 10.0);
  EXPECT_LE(result.wait_max, 64u);
}

TEST(Runner, WorksWithOtherProcesses) {
  iba::core::BatchGreedyConfig config{.n = 256, .d = 2, .lambda_n = 192};
  iba::core::BatchGreedy process(config, iba::core::Engine(3));
  RunSpec spec;
  spec.burn_in = 100;
  spec.auto_burn_in = false;
  spec.measure_rounds = 200;
  const auto result = run_experiment(process, spec);
  EXPECT_EQ(result.measured_rounds, 200u);
  EXPECT_EQ(result.pool.mean(), 0.0);  // GREEDY[d] has no pool
  EXPECT_GT(result.system_load.mean(), 0.0);
}

TEST(Replication, AggregatesAndBuildsCis) {
  auto fn = [](std::uint64_t seed) {
    SimConfig config = small_config();
    config.seed = seed;
    config.measure_rounds = 100;
    config.burn_in = 50;
    return run_capped(config);
  };
  const auto result = replicate(fn, 5, 99);
  EXPECT_EQ(result.runs.size(), 5u);
  EXPECT_LE(result.normalized_pool.lo, result.normalized_pool.point);
  EXPECT_GE(result.normalized_pool.hi, result.normalized_pool.point);
  EXPECT_GT(result.wait_mean.point, 0.0);
}

TEST(Replication, ParallelMatchesSequential) {
  auto fn = [](std::uint64_t seed) {
    SimConfig config = small_config();
    config.seed = seed;
    config.measure_rounds = 80;
    config.burn_in = 40;
    return run_capped(config);
  };
  const auto seq = replicate(fn, 4, 1234);
  iba::concurrency::ThreadPool pool(3);
  const auto par = replicate_parallel(fn, 4, 1234, pool);
  ASSERT_EQ(seq.runs.size(), par.runs.size());
  for (std::size_t r = 0; r < seq.runs.size(); ++r) {
    EXPECT_DOUBLE_EQ(seq.runs[r].normalized_pool.mean(),
                     par.runs[r].normalized_pool.mean());
    EXPECT_EQ(seq.runs[r].wait_max, par.runs[r].wait_max);
  }
  EXPECT_DOUBLE_EQ(seq.normalized_pool.point, par.normalized_pool.point);
}

TEST(Replication, RejectsZeroReplications) {
  auto fn = [](std::uint64_t) { return RunResult{}; };
  EXPECT_THROW((void)replicate(fn, 0, 1), iba::ContractViolation);
}

}  // namespace
