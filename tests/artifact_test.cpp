// Artifact serialization: canonical rendering, CRC binding, atomic file
// round-trip, and rejection of corrupted/truncated/version-skewed text.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "artifact/artifact.hpp"

namespace iba::artifact {
namespace {

ResultArtifact sample_artifact() {
  ResultArtifact a;
  a.scenario_name = "sample";
  a.scenario_digest = "0123abcd";
  a.seed = 42;
  a.n = 1024;
  a.capacity_initial = 2;
  a.burn_in = 64;
  a.rounds = 256;
  a.generated_total = 229376;
  a.deleted_total = 228900;
  a.pool_sum = 120000;
  a.pool_min = 400;
  a.pool_max = 520;
  a.pool_last = 470;
  a.wait_count = 228900;
  a.wait_sum = 250000;
  a.wait_sumsq_hi = 0;
  a.wait_sumsq_lo = 400000;
  a.wait_max = 5;
  a.wait_p50 = 1;
  a.wait_p99 = 4;
  a.wait_histogram = {100000, 90000, 38900};
  a.checks.push_back({"max-wait-max", "8", "5", true});
  return a;
}

TEST(Artifact, RenderIsStableAndVerifiable) {
  const ResultArtifact a = sample_artifact();
  const std::string text = render_artifact(a);
  EXPECT_EQ(text, render_artifact(a));  // rendering is pure
  EXPECT_NO_THROW(verify_artifact_text(text));

  // Shape: versioned header first, CRC trailer last.
  EXPECT_EQ(text.rfind("iba-artifact 1\n", 0), 0u);
  EXPECT_NE(text.find("\nend\ncrc32 = "), std::string::npos);
  EXPECT_NE(text.find("scenario = sample\n"), std::string::npos);
  EXPECT_NE(text.find("histogram = 100000 90000 38900\n"),
            std::string::npos);
  EXPECT_NE(text.find("max-wait-max = bound 8 observed 5 pass\n"),
            std::string::npos);
}

TEST(Artifact, EveryFieldMovesTheBytes) {
  const std::string base = render_artifact(sample_artifact());
  ResultArtifact mutated = sample_artifact();
  mutated.wait_sum += 1;
  EXPECT_NE(render_artifact(mutated), base);
  mutated = sample_artifact();
  mutated.checks[0].pass = false;
  const std::string failed = render_artifact(mutated);
  EXPECT_NE(failed, base);
  EXPECT_NE(failed.find("FAIL"), std::string::npos);
}

TEST(Artifact, CorruptionIsDetected) {
  std::string text = render_artifact(sample_artifact());

  // Flip one digit in the body: CRC mismatch.
  std::string corrupted = text;
  const std::size_t pos = corrupted.find("pool-max = 520");
  ASSERT_NE(pos, std::string::npos);
  corrupted[pos + 11] = '6';
  EXPECT_THROW(verify_artifact_text(corrupted), std::runtime_error);

  // Truncation: missing trailer.
  EXPECT_THROW(verify_artifact_text(text.substr(0, text.size() / 2)),
               std::runtime_error);

  // Version skew.
  std::string skewed = text;
  skewed.replace(0, 14, "iba-artifact 9");
  EXPECT_THROW(verify_artifact_text(skewed), std::runtime_error);

  // Wrong magic entirely.
  EXPECT_THROW(verify_artifact_text("not an artifact\n"),
               std::runtime_error);
}

TEST(Artifact, FileRoundTripIsExact) {
  const auto dir =
      std::filesystem::temp_directory_path() / "iba_artifact_test";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "sample.artifact").string();

  const ResultArtifact a = sample_artifact();
  write_artifact(a, path);
  EXPECT_EQ(read_artifact_text(path), render_artifact(a));

  // Overwrite is atomic: a second write lands cleanly.
  write_artifact(a, path);
  EXPECT_EQ(read_artifact_text(path), render_artifact(a));

  // A corrupted file on disk is rejected at read time.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "iba-artifact 1\ngarbage\nend\ncrc32 = 00000000\n";
  }
  EXPECT_THROW((void)read_artifact_text(path), std::runtime_error);

  EXPECT_THROW((void)read_artifact_text((dir / "missing").string()),
               std::runtime_error);
  std::filesystem::remove_all(dir);
}

TEST(Artifact, OptionalSectionsAppearOnlyWhenPresent) {
  ResultArtifact plain = sample_artifact();
  const std::string base = render_artifact(plain);
  EXPECT_EQ(base.find("[faults]"), std::string::npos);
  EXPECT_EQ(base.find("[control]"), std::string::npos);
  EXPECT_EQ(base.find("[audit]"), std::string::npos);

  ResultArtifact full = sample_artifact();
  full.has_faults = true;
  full.crashes = 3;
  full.has_control = true;
  full.capacity_final = 4;
  full.audited = true;
  full.audit_rounds = 320;
  const std::string text = render_artifact(full);
  EXPECT_NE(text.find("[faults]"), std::string::npos);
  EXPECT_NE(text.find("[control]"), std::string::npos);
  EXPECT_NE(text.find("[audit]"), std::string::npos);
  EXPECT_NO_THROW(verify_artifact_text(text));
}

}  // namespace
}  // namespace iba::artifact
