// Exact-vs-simulated validation: the occupancy DP against closed forms,
// and the exact stationary pool distribution of CAPPED(1, λ) against a
// long simulation of the real process — zero statistical slack beyond
// the simulation's own noise.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "analysis/exact_chain.hpp"
#include "core/capped.hpp"

namespace {

using namespace iba;
using analysis::CappedUnitChain;
using analysis::occupancy_distribution;

TEST(Occupancy, ClosedFormAnchors) {
  // 1 ball: exactly one bin occupied.
  auto d1 = occupancy_distribution(4, 1);
  ASSERT_EQ(d1.size(), 2u);
  EXPECT_NEAR(d1[0], 0.0, 1e-15);
  EXPECT_NEAR(d1[1], 1.0, 1e-15);

  // 2 balls into n bins: same bin w.p. 1/n.
  auto d2 = occupancy_distribution(4, 2);
  ASSERT_EQ(d2.size(), 3u);
  EXPECT_NEAR(d2[1], 0.25, 1e-12);
  EXPECT_NEAR(d2[2], 0.75, 1e-12);

  // 3 balls into 2 bins: both occupied unless all collide (2·(1/2)^3).
  auto d3 = occupancy_distribution(2, 3);
  EXPECT_NEAR(d3[1], 0.25, 1e-12);
  EXPECT_NEAR(d3[2], 0.75, 1e-12);
}

TEST(Occupancy, DistributionSumsToOneAndMeanMatches) {
  for (const std::uint32_t n : {3u, 7u, 16u}) {
    for (const std::uint64_t balls : {0ull, 1ull, 5ull, 40ull}) {
      const auto dist = occupancy_distribution(n, balls);
      const double total =
          std::accumulate(dist.begin(), dist.end(), 0.0);
      EXPECT_NEAR(total, 1.0, 1e-12) << n << " " << balls;
      // E[occupied] = n·(1 − (1 − 1/n)^balls).
      double mean = 0;
      for (std::size_t j = 0; j < dist.size(); ++j) {
        mean += static_cast<double>(j) * dist[j];
      }
      const double expected =
          n * (1.0 - std::pow(1.0 - 1.0 / n, static_cast<double>(balls)));
      EXPECT_NEAR(mean, expected, 1e-9) << n << " " << balls;
    }
  }
}

TEST(Chain, TransitionRowsAreStochastic) {
  CappedUnitChain chain(8, 6, 40);
  for (std::uint64_t from = 0; from <= 40; ++from) {
    double row = 0;
    for (std::uint64_t to = 0; to <= 40; ++to) {
      row += chain.transition(from, to);
    }
    EXPECT_NEAR(row, 1.0, 1e-12) << "from " << from;
  }
}

TEST(Chain, ZeroArrivalsAbsorbAtEmpty) {
  CappedUnitChain chain(4, 0, 10);
  EXPECT_NEAR(chain.transition(0, 0), 1.0, 1e-12);
  const auto pi = chain.stationary();
  EXPECT_NEAR(pi[0], 1.0, 1e-9);
}

TEST(Chain, StationaryMatchesLongSimulation) {
  // n = 16, λ = 3/4 (λn = 12): exact stationary pool distribution vs
  // 200k simulated rounds. The truncation at 64 is far above the
  // support (pool bound ~ 2·ln4·16 + 64 ≈ 108... the chain rarely
  // exceeds ~30 at n = 16).
  const std::uint32_t n = 16;
  const std::uint64_t lambda_n = 12;
  CappedUnitChain chain(n, lambda_n, 64);
  const auto pi = chain.stationary();
  const double exact_mean = CappedUnitChain::mean(pi);

  core::CappedConfig config;
  config.n = n;
  config.capacity = 1;
  config.lambda_n = lambda_n;
  core::Capped process(config, core::Engine(42));
  for (int i = 0; i < 2000; ++i) (void)process.step();  // burn in

  const int rounds = 200000;
  std::vector<double> empirical(65, 0.0);
  double sim_mean = 0;
  for (int i = 0; i < rounds; ++i) {
    const auto pool = process.step().pool_size;
    ++empirical[std::min<std::uint64_t>(pool, 64)];
    sim_mean += static_cast<double>(pool);
  }
  sim_mean /= rounds;
  for (auto& p : empirical) p /= rounds;

  // Means agree tightly...
  EXPECT_NEAR(sim_mean, exact_mean, 0.05 * exact_mean + 0.05);
  // ...and so do the full distributions (total variation distance).
  double tv = 0;
  for (std::size_t m = 0; m < empirical.size(); ++m) {
    tv += std::abs(empirical[m] - pi[m]);
  }
  EXPECT_LT(tv / 2, 0.02);
}

TEST(Chain, StationaryMeanScalesWithLambda) {
  CappedUnitChain low(12, 6, 60);   // λ = 1/2
  CappedUnitChain high(12, 11, 60); // λ = 11/12
  EXPECT_LT(CappedUnitChain::mean(low.stationary()),
            CappedUnitChain::mean(high.stationary()));
}

TEST(Chain, RejectsBadParameters) {
  EXPECT_THROW(CappedUnitChain(0, 0, 5), iba::ContractViolation);
  EXPECT_THROW(CappedUnitChain(4, 5, 10), iba::ContractViolation);
  EXPECT_THROW(CappedUnitChain(4, 3, 2), iba::ContractViolation);
  EXPECT_THROW((void)occupancy_distribution(0, 3), iba::ContractViolation);
}

}  // namespace
