// Unit tests of the adaptive control plane (src/control/): the online
// estimator's exact windowed statistics and serializable state, the
// capacity policies (including the lockstep pin between
// control::sweet_spot_capacity and analysis::suggest_capacity — two
// implementations of the paper's c* = round(√(ln(1/(1−λ))))), the
// controller's warm-up/cooldown discipline, and the auditor's
// dynamic-capacity invariant — including the broken-shrink regression
// where an overfull bin re-grows between deep audits.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "analysis/bounds.hpp"
#include "control/controller.hpp"
#include "control/estimator.hpp"
#include "control/policy.hpp"
#include "core/capped.hpp"
#include "fault/auditor.hpp"

namespace {

using namespace iba;
using control::ControlConfig;
using control::Controller;
using control::DecisionInput;
using control::OnlineEstimator;
using control::Policy;
using control::PolicyState;
using core::Capped;
using core::CappedConfig;
using core::Engine;
using core::RoundMetrics;

RoundMetrics metrics(std::uint64_t generated, std::uint64_t pool,
                     std::uint64_t wait_sum, std::uint64_t wait_count) {
  RoundMetrics m;
  m.generated = generated;
  m.pool_size = pool;
  m.wait_sum = static_cast<double>(wait_sum);
  m.wait_count = wait_count;
  return m;
}

// -- estimator -------------------------------------------------------

TEST(OnlineEstimator, WindowedLambdaIsExact) {
  OnlineEstimator est(/*n=*/100, /*window=*/4);
  EXPECT_FALSE(est.warm());
  EXPECT_DOUBLE_EQ(est.lambda_window(), 0.0);
  est.observe(metrics(50, 0, 0, 0));
  est.observe(metrics(70, 0, 0, 0));
  EXPECT_DOUBLE_EQ(est.lambda_window(), 120.0 / 200.0);
  est.observe(metrics(90, 0, 0, 0));
  est.observe(metrics(90, 0, 0, 0));
  EXPECT_TRUE(est.warm());
  EXPECT_DOUBLE_EQ(est.lambda_window(), 300.0 / 400.0);
  // Eviction: the first sample (50) leaves the window.
  est.observe(metrics(100, 0, 0, 0));
  EXPECT_DOUBLE_EQ(est.lambda_window(), 350.0 / 400.0);
}

TEST(OnlineEstimator, EwmaInitializesFromFirstObservation) {
  OnlineEstimator est(/*n=*/100, /*window=*/9);  // α = 0.2
  est.observe(metrics(80, 0, 0, 0));
  EXPECT_DOUBLE_EQ(est.lambda_ewma(), 0.8);
  est.observe(metrics(30, 0, 0, 0));
  EXPECT_DOUBLE_EQ(est.lambda_ewma(), 0.8 + 0.2 * (0.3 - 0.8));
}

TEST(OnlineEstimator, PoolTrendTracksBacklogDrift) {
  OnlineEstimator est(/*n=*/64, /*window=*/4);
  est.observe(metrics(0, 100, 0, 0));
  EXPECT_DOUBLE_EQ(est.pool_trend(), 0.0);  // needs two samples
  est.observe(metrics(0, 130, 0, 0));
  EXPECT_DOUBLE_EQ(est.pool_trend(), 30.0);
  est.observe(metrics(0, 160, 0, 0));
  est.observe(metrics(0, 190, 0, 0));
  EXPECT_DOUBLE_EQ(est.pool_trend(), 30.0);  // (190-100)/3
  // Shrinking backlog: negative trend.
  est.observe(metrics(0, 40, 0, 0));  // evicts the 100 sample
  EXPECT_LT(est.pool_trend(), 0.0);
}

TEST(OnlineEstimator, WaitMeanAndQuantileUpperBound) {
  OnlineEstimator est(/*n=*/64, /*window=*/4);
  EXPECT_DOUBLE_EQ(est.mean_wait(), 0.0);
  est.observe(metrics(0, 0, 30, 10));  // per-round mean 3
  est.observe(metrics(0, 0, 50, 10));  // per-round mean 5
  EXPECT_DOUBLE_EQ(est.mean_wait(), 80.0 / 20.0);
  // Dyadic upper bound: round means 3 and 5 live in buckets [2,3] and
  // [4,7]; the median upper bound is 3, the max upper bound 7.
  EXPECT_EQ(est.wait_quantile_upper(0.5), 3u);
  EXPECT_EQ(est.wait_quantile_upper(1.0), 7u);
  EXPECT_LE(est.mean_wait(), 2.0 * static_cast<double>(
                                       est.wait_quantile_upper(1.0)));
}

TEST(OnlineEstimator, StateRoundTripContinuesBitForBit) {
  OnlineEstimator a(/*n=*/64, /*window=*/8);
  for (std::uint64_t r = 0; r < 13; ++r) {
    a.observe(metrics(40 + (r * 7) % 25, 10 * r, 3 * r, r % 5));
  }
  OnlineEstimator b(/*n=*/64, /*window=*/8);
  b.restore(a.state());
  EXPECT_EQ(a.state(), b.state());
  EXPECT_DOUBLE_EQ(a.lambda_window(), b.lambda_window());
  EXPECT_DOUBLE_EQ(a.lambda_ewma(), b.lambda_ewma());
  EXPECT_DOUBLE_EQ(a.mean_wait(), b.mean_wait());
  EXPECT_EQ(a.wait_quantile_upper(0.95), b.wait_quantile_upper(0.95));
  // The restored estimator must keep evolving identically.
  for (std::uint64_t r = 0; r < 10; ++r) {
    const RoundMetrics m = metrics(60, 5 * r, 2 * r, r % 3);
    a.observe(m);
    b.observe(m);
  }
  EXPECT_EQ(a.state(), b.state());
  EXPECT_DOUBLE_EQ(a.lambda_ewma(), b.lambda_ewma());
}

TEST(OnlineEstimator, RestoreRejectsIllFittingState) {
  OnlineEstimator small(/*n=*/64, /*window=*/4);
  OnlineEstimator big(/*n=*/64, /*window=*/8);
  for (int r = 0; r < 10; ++r) big.observe(metrics(30, 0, 0, 0));
  EXPECT_THROW(small.restore(big.state()), ContractViolation);

  auto state = small.state();
  state.head = 4;  // == window: out of range
  EXPECT_THROW(small.restore(state), ContractViolation);
  state.head = 0;
  state.filled = 3;
  state.rounds = 2;  // filled > rounds observed: impossible
  EXPECT_THROW(small.restore(state), ContractViolation);
}

// -- policies --------------------------------------------------------

TEST(Policy, SweetSpotMatchesAnalysisSuggestion) {
  // control::sweet_spot_capacity must stay in lockstep with
  // analysis::suggest_capacity (same closed form, duplicated only to
  // avoid a core -> analysis dependency cycle).
  for (double lambda = 0.05; lambda < 0.9995; lambda += 0.005) {
    EXPECT_EQ(control::sweet_spot_capacity(lambda, /*c_max=*/64),
              analysis::suggest_capacity(lambda))
        << "lambda=" << lambda;
  }
}

TEST(Policy, SweetSpotClampsToRange) {
  EXPECT_EQ(control::sweet_spot_capacity(0.0, 8), 1u);
  EXPECT_EQ(control::sweet_spot_capacity(-0.5, 8), 1u);  // clamped input
  // λ → 1: raw capacity diverges but the clamp holds.
  EXPECT_EQ(control::sweet_spot_capacity(1.0, 3), 3u);
  EXPECT_EQ(control::sweet_spot_capacity(0.99999999, 2), 2u);
}

TEST(Policy, SweetSpotDeadBandSuppressesFlapping) {
  // λ = 0.9375 puts the raw sweet spot at √(ln 16) ≈ 1.665 → c* = 2.
  // From c = 2 the distance |1.665 − 2| = 0.335 is inside the 0.5 dead
  // band, so the policy holds; from c = 4 it moves.
  OnlineEstimator est(/*n=*/64, /*window=*/4);
  for (int r = 0; r < 4; ++r) est.observe(metrics(60, 0, 0, 0));
  PolicyState state;
  DecisionInput input;
  input.n = 64;
  input.c_max = 8;
  input.hysteresis = 0.1;
  input.current_capacity = 2;
  EXPECT_EQ(control::decide_capacity(Policy::kSweetSpot, est, input, state),
            2u);
  input.current_capacity = 4;
  EXPECT_EQ(control::decide_capacity(Policy::kSweetSpot, est, input, state),
            2u);
}

TEST(Policy, StaticNeverMoves) {
  OnlineEstimator est(/*n=*/64, /*window=*/2);
  for (int r = 0; r < 4; ++r) est.observe(metrics(64, 1000, 500, 10));
  PolicyState state;
  DecisionInput input;
  input.n = 64;
  input.c_max = 8;
  input.current_capacity = 3;
  EXPECT_EQ(control::decide_capacity(Policy::kStatic, est, input, state), 3u);
}

TEST(Policy, AimdGrowsOnBacklogGrowth) {
  // Pool grows by ~n/2 per round — far past the 1% threshold — so AIMD
  // must add a buffer slot regardless of wait history.
  OnlineEstimator est(/*n=*/64, /*window=*/4);
  for (std::uint64_t r = 0; r < 4; ++r) {
    est.observe(metrics(64, 1000 + 32 * r, 10, 10));
  }
  PolicyState state;
  DecisionInput input;
  input.n = 64;
  input.c_max = 8;
  input.current_capacity = 3;
  EXPECT_EQ(control::decide_capacity(Policy::kAimd, est, input, state), 4u);
  EXPECT_EQ(state.direction, 1);
  // And the clamp holds at the ceiling.
  input.current_capacity = 8;
  EXPECT_EQ(control::decide_capacity(Policy::kAimd, est, input, state), 8u);
}

TEST(Policy, ConfigValidation) {
  ControlConfig config;
  config.policy = Policy::kSweetSpot;
  EXPECT_NO_THROW(config.validate());
  config.c_max = 0;
  EXPECT_THROW(config.validate(), ContractViolation);
  config.c_max = 16;
  config.window = 0;
  EXPECT_THROW(config.validate(), ContractViolation);
  config.window = 64;
  config.hysteresis = 1.5;
  EXPECT_THROW(config.validate(), ContractViolation);
  config.hysteresis = 0.1;
  config.cooldown = 0;
  EXPECT_THROW(config.validate(), ContractViolation);
}

TEST(Policy, CappedConfigRejectsBadControlCombinations) {
  CappedConfig config;
  config.n = 64;
  config.capacity = 32;
  config.lambda_n = 60;
  config.control.policy = Policy::kSweetSpot;
  config.control.c_max = 16;  // capacity 32 > c_max
  EXPECT_THROW(config.validate(), ContractViolation);
  config.capacity = 4;
  EXPECT_NO_THROW(config.validate());
  // Admission control needs a backpressure mode to act through.
  config.control.admission_target = 5;
  EXPECT_THROW(config.validate(), ContractViolation);
  // Control over infinite capacity is meaningless.
  config.control.admission_target = 0;
  config.capacity = CappedConfig::kInfiniteCapacity;
  EXPECT_THROW(config.validate(), ContractViolation);
}

// -- controller ------------------------------------------------------

TEST(Controller, HoldsUntilWarmThenDecides) {
  ControlConfig config;
  config.policy = Policy::kSweetSpot;
  config.c_max = 8;
  config.window = 4;
  config.cooldown = 10;
  Controller controller(config, /*n=*/64, /*base_pool_limit=*/0);
  // λ = 62/64 ≈ 0.969 → c* = 2; but no decision before the window fills.
  for (std::uint64_t r = 1; r <= 3; ++r) {
    controller.observe(metrics(62, 0, 0, 0));
    EXPECT_FALSE(controller.decide(r + 1, 1, 0).has_value()) << r;
  }
  controller.observe(metrics(62, 0, 0, 0));
  const auto decision = controller.decide(5, 1, 0);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->capacity, 2u);
  EXPECT_EQ(controller.changes_total(), 1u);
  EXPECT_EQ(controller.grows_total(), 1u);
  ASSERT_EQ(controller.decisions().size(), 1u);
  EXPECT_EQ(controller.decisions().front().round, 5u);
}

TEST(Controller, CooldownRateLimitsChanges) {
  ControlConfig config;
  config.policy = Policy::kSweetSpot;
  config.c_max = 8;
  config.window = 2;
  config.cooldown = 20;
  Controller controller(config, /*n=*/64, /*base_pool_limit=*/0);
  controller.observe(metrics(62, 0, 0, 0));
  controller.observe(metrics(62, 0, 0, 0));
  ASSERT_TRUE(controller.decide(3, 1, 0).has_value());  // 1 -> 2, arms 23
  // λ collapses; the target is 1 again, but the cooldown gates it.
  for (std::uint64_t r = 3; r < 22; ++r) {
    controller.observe(metrics(4, 0, 0, 0));
    EXPECT_FALSE(controller.decide(r + 1, 2, 0).has_value()) << r;
  }
  controller.observe(metrics(4, 0, 0, 0));
  const auto late = controller.decide(23, 2, 0);
  ASSERT_TRUE(late.has_value());
  EXPECT_EQ(late->capacity, 1u);
  EXPECT_EQ(controller.shrinks_total(), 1u);
}

TEST(Controller, NoChangeDoesNotConsumeCooldown) {
  ControlConfig config;
  config.policy = Policy::kSweetSpot;
  config.c_max = 8;
  config.window = 2;
  config.cooldown = 50;
  Controller controller(config, /*n=*/64, /*base_pool_limit=*/0);
  controller.observe(metrics(62, 0, 0, 0));
  controller.observe(metrics(62, 0, 0, 0));
  // Already at the target: refusing to change is free, so a real change
  // right after must not be blocked by a phantom cooldown.
  EXPECT_FALSE(controller.decide(3, 2, 0).has_value());
  controller.observe(metrics(62, 0, 0, 0));
  const auto decision = controller.decide(4, 1, 0);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->capacity, 2u);
}

TEST(Controller, StateRoundTripDecidesIdentically) {
  ControlConfig config;
  config.policy = Policy::kAimd;
  config.c_max = 8;
  config.window = 4;
  config.cooldown = 6;
  Controller a(config, /*n=*/64, /*base_pool_limit=*/0);
  std::uint32_t capacity = 2;
  for (std::uint64_t r = 1; r <= 30; ++r) {
    a.observe(metrics(60, 40 * r, 8 * r, 20));
    if (const auto d = a.decide(r + 1, capacity, 0)) capacity = d->capacity;
  }
  Controller b(config, /*n=*/64, /*base_pool_limit=*/0);
  b.restore(a.state());
  EXPECT_EQ(a.state(), b.state());
  std::uint32_t capacity_b = capacity;
  for (std::uint64_t r = 31; r <= 60; ++r) {
    const RoundMetrics m = metrics(60, 40 * r, 8 * r, 20);
    a.observe(m);
    b.observe(m);
    const auto da = a.decide(r + 1, capacity, 0);
    const auto db = b.decide(r + 1, capacity_b, 0);
    ASSERT_EQ(da.has_value(), db.has_value()) << r;
    if (da.has_value()) {
      EXPECT_EQ(da->capacity, db->capacity) << r;
      capacity = da->capacity;
      capacity_b = db->capacity;
    }
  }
  EXPECT_EQ(a.state(), b.state());
}

// -- auditor: dynamic-capacity invariant -----------------------------

CappedConfig audited_config(std::uint32_t capacity, std::uint32_t c_max) {
  CappedConfig config;
  config.n = 64;
  config.capacity = capacity;
  // λ = 1 with service failing half the time: deletions can't keep up,
  // so a deep pool builds and every bin saturates at its capacity.
  config.lambda_n = 64;
  config.failure_probability = 0.5;
  config.control.policy = Policy::kStatic;
  config.control.c_max = c_max;
  return config;
}

TEST(AuditorControl, HealthyAdaptiveShrinkPassesEveryRound) {
  // A real sweet-spot shrink: λ drops mid-run, capacity follows, and
  // the overfull bins drain monotonically — the auditor must stay green
  // at cadence 1 through the whole transition.
  CappedConfig config;
  config.n = 64;
  config.capacity = 4;
  config.lambda_n = 64;
  config.control.policy = Policy::kSweetSpot;
  config.control.c_max = 8;
  config.control.window = 16;
  config.control.cooldown = 8;
  Capped process(config, Engine(7));
  fault::InvariantAuditor auditor(/*cadence=*/1);
  for (int r = 0; r < 100; ++r) auditor.observe(process, process.step());
  process.set_lambda_n(20);
  for (int r = 0; r < 200; ++r) auditor.observe(process, process.step());
  EXPECT_TRUE(auditor.ok()) << auditor.violations().front().detail;
  ASSERT_NE(process.controller(), nullptr);
}

TEST(AuditorControl, BrokenShrinkTripsCapacityDrain) {
  // Regression for the drain invariant: if a "shrink" lets an overfull
  // bin re-fill (here forced by flapping set_capacity between deep
  // audits), the bin's overfull load grows — which a correct drain can
  // never do — and the auditor must name capacity_drain.
  Capped process(audited_config(/*capacity=*/10, /*c_max=*/16), Engine(11));
  fault::InvariantAuditor auditor(/*cadence=*/3);
  const auto step = [&] { auditor.observe(process, process.step()); };
  while (process.round() < 30) step();  // bins saturate at load 10
  process.set_capacity(1);
  while (process.round() < 33) step();  // deep audit at 33: drained to 7
  ASSERT_TRUE(auditor.ok());
  process.set_capacity(10);
  while (process.round() < 35) step();  // bins silently re-fill
  process.set_capacity(1);
  while (process.round() < 36) step();  // deep audit at 36: 9 > 7
  ASSERT_FALSE(auditor.ok());
  EXPECT_EQ(auditor.violations().front().invariant, "capacity_drain");
}

TEST(AuditorControl, SnapshotRestoreEnforcesTheCeiling) {
  // A snapshot whose queues exceed the capacity is only legitimate
  // mid-shrink, i.e. with control enabled and queues within c_max;
  // anything else is corrupt state and must be rejected on restore.
  Capped process(audited_config(/*capacity=*/10, /*c_max=*/16), Engine(13));
  while (process.round() < 30) (void)process.step();  // bins at load 10
  const core::CappedSnapshot snap = process.snapshot();

  core::CappedSnapshot mid_shrink = snap;
  mid_shrink.config.capacity = 4;  // shrink decided, bins still draining
  EXPECT_NO_THROW(Capped{mid_shrink});

  core::CappedSnapshot above_ceiling = snap;
  above_ceiling.config.capacity = 8;
  above_ceiling.config.control.c_max = 8;  // queues of 10 beat the clamp
  EXPECT_THROW(Capped{above_ceiling}, ContractViolation);

  core::CappedSnapshot no_control = snap;
  no_control.config.capacity = 4;
  no_control.config.control = control::ControlConfig{};  // disabled
  EXPECT_THROW(Capped{no_control}, ContractViolation);
}

}  // namespace
