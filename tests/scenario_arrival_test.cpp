// scenario::ArrivalModel — rate_at() unit behavior for every pattern,
// the platform-deterministic sine, quantization parity with the
// historical sim::lambda_n_for, and statistical sanity of the Zipf
// bin-choice sampler.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "common/assert.hpp"
#include "scenario/arrival.hpp"
#include "sim/config.hpp"

namespace iba::scenario {
namespace {

TEST(ArrivalModel, ConstantQuantizationMatchesSimHelpers) {
  // The benches historically used sim::lambda_n_for(n, i); the port to
  // ArrivalModel::constant must reproduce it exactly.
  for (const std::uint32_t n : {512u, 1024u, 8192u, 8191u, 1000u}) {
    for (const std::uint32_t i : {1u, 2u, 4u, 6u, 8u}) {
      const auto model =
          ArrivalModel::constant(sim::lambda_one_minus_2pow(i));
      EXPECT_EQ(model.rate_at(1, n), sim::lambda_n_for(n, i))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(ArrivalModel, ConstantIsNotTimeVarying) {
  const auto model = ArrivalModel::constant(0.875);
  EXPECT_FALSE(model.time_varying());
  EXPECT_EQ(model.rate_at(1, 1024), 896u);
  EXPECT_EQ(model.rate_at(1000000, 1024), 896u);
}

TEST(ArrivalModel, SinusoidOscillatesWithinBounds) {
  ArrivalModel model;
  model.pattern = ArrivalPattern::kSinusoid;
  model.lambda = 0.5;
  model.amplitude = 0.25;
  model.period = 64;
  model.validate(1024);
  EXPECT_TRUE(model.time_varying());

  std::uint64_t lo = UINT64_MAX, hi = 0;
  for (std::uint64_t r = 1; r <= 64; ++r) {
    const std::uint64_t rate = model.rate_at(r, 1024);
    lo = std::min(lo, rate);
    hi = std::max(hi, rate);
    // Periodicity: exact repetition one period later.
    EXPECT_EQ(model.rate_at(r + 64, 1024), rate);
  }
  EXPECT_EQ(lo, 256u);  // (0.5 - 0.25) * 1024
  EXPECT_EQ(hi, 768u);  // (0.5 + 0.25) * 1024
  // Round 1 is phase 0: sin(0) = 0, so the base rate.
  EXPECT_EQ(model.rate_at(1, 1024), 512u);
}

TEST(ArrivalModel, SinusoidPhaseShifts) {
  ArrivalModel base;
  base.pattern = ArrivalPattern::kSinusoid;
  base.lambda = 0.5;
  base.amplitude = 0.25;
  base.period = 64;
  ArrivalModel shifted = base;
  shifted.phase = 16;
  for (std::uint64_t r = 1; r <= 128; ++r) {
    EXPECT_EQ(shifted.rate_at(r, 1024), base.rate_at(r + 16, 1024));
  }
}

TEST(ArrivalModel, BurstWindowsAreExact) {
  ArrivalModel model;
  model.pattern = ArrivalPattern::kBursts;
  model.lambda = 0.25;
  model.burst_lambda = 0.75;
  model.period = 10;
  model.burst_width = 3;
  model.burst_start = 5;
  model.validate(100);

  const auto rate = [&](std::uint64_t r) { return model.rate_at(r, 100); };
  EXPECT_EQ(rate(1), 25u);   // before the first burst
  EXPECT_EQ(rate(4), 25u);
  EXPECT_EQ(rate(5), 75u);   // burst rounds 5, 6, 7
  EXPECT_EQ(rate(7), 75u);
  EXPECT_EQ(rate(8), 25u);   // quiet rounds 8..14
  EXPECT_EQ(rate(14), 25u);
  EXPECT_EQ(rate(15), 75u);  // next burst, one period later
}

TEST(ArrivalModel, RegimesArePiecewiseConstant) {
  ArrivalModel model;
  model.pattern = ArrivalPattern::kRegimes;
  model.regimes = {{1, 0.25}, {10, 0.75}, {20, 0.5}};
  model.validate(100);
  EXPECT_EQ(model.rate_at(1, 100), 25u);
  EXPECT_EQ(model.rate_at(9, 100), 25u);
  EXPECT_EQ(model.rate_at(10, 100), 75u);
  EXPECT_EQ(model.rate_at(19, 100), 75u);
  EXPECT_EQ(model.rate_at(20, 100), 50u);
  EXPECT_EQ(model.rate_at(1000, 100), 50u);
}

TEST(ArrivalModel, TraceLoopsOrHolds) {
  ArrivalModel model;
  model.pattern = ArrivalPattern::kTrace;
  model.trace = {5, 10, 15};
  model.trace_loop = true;
  model.validate(100);
  EXPECT_EQ(model.rate_at(1, 100), 5u);
  EXPECT_EQ(model.rate_at(3, 100), 15u);
  EXPECT_EQ(model.rate_at(4, 100), 5u);  // wrapped
  model.trace_loop = false;
  EXPECT_EQ(model.rate_at(4, 100), 15u);  // held
  EXPECT_EQ(model.rate_at(400, 100), 15u);
}

TEST(ArrivalModel, ValidateRejectsBadModels) {
  ArrivalModel empty_trace;
  empty_trace.pattern = ArrivalPattern::kTrace;
  EXPECT_THROW(empty_trace.validate(100), iba::ContractViolation);

  ArrivalModel bad_rate;
  bad_rate.lambda = 1.5;
  EXPECT_THROW(bad_rate.validate(100), iba::ContractViolation);
}

TEST(ArrivalSine, MatchesLibmWithinApproximationError) {
  // Bhaskara I on each half wave: |error| < 0.0017. The point is not
  // precision — it is that the value is reproducible without libm.
  for (int i = 0; i < 1000; ++i) {
    const double x = static_cast<double>(i) / 1000.0;
    const double approx = detail::sin_turn(x);
    const double exact = std::sin(2.0 * std::numbers::pi * x);
    EXPECT_NEAR(approx, exact, 0.0017) << "x=" << x;
  }
  EXPECT_EQ(detail::sin_turn(0.0), 0.0);
  EXPECT_EQ(detail::sin_turn(0.25), 1.0);
  EXPECT_EQ(detail::sin_turn(0.75), -1.0);
}

TEST(ZipfSampler, StatisticallyMatchesZipfWeights) {
  const std::uint32_t n = 64;
  ZipfBinSampler sampler(n, 1.0);
  core::Engine engine(123);

  std::vector<std::uint32_t> draws(200000);
  sampler.fill(engine, draws);
  std::vector<std::uint64_t> counts(n, 0);
  for (const std::uint32_t bin : draws) {
    ASSERT_LT(bin, n);
    ++counts[bin];
  }

  // P[bin i] = (1/(i+1)) / H_n. Check the head against the harmonic
  // normalization with a generous tolerance (±10% relative at 200k).
  double harmonic = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) harmonic += 1.0 / (i + 1.0);
  for (const std::uint32_t i : {0u, 1u, 3u, 7u}) {
    const double expected = draws.size() / ((i + 1.0) * harmonic);
    EXPECT_NEAR(static_cast<double>(counts[i]), expected, 0.1 * expected)
        << "bin " << i;
  }
  // Strict head-vs-tail ordering.
  EXPECT_GT(counts[0], 4 * counts[n - 1]);
}

TEST(ZipfSampler, DeterministicInTheSeed) {
  ZipfBinSampler a(256, 1.0), b(256, 1.0);
  core::Engine ea(7), eb(7);
  std::vector<std::uint32_t> da(4096), db(4096);
  a.fill(ea, da);
  b.fill(eb, db);
  EXPECT_EQ(da, db);
}

TEST(ZipfSampler, SkewZeroIsNearUniform) {
  const std::uint32_t n = 16;
  ZipfBinSampler sampler(n, 0.0);
  core::Engine engine(9);
  std::vector<std::uint32_t> draws(160000);
  sampler.fill(engine, draws);
  std::vector<std::uint64_t> counts(n, 0);
  for (const std::uint32_t bin : draws) ++counts[bin];
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]), 10000.0, 500.0) << i;
  }
}

TEST(ArrivalModel, MakeSamplerOnlyForZipf) {
  const auto uniform = ArrivalModel::constant(0.5);
  EXPECT_EQ(uniform.make_sampler(64), nullptr);
  ArrivalModel zipf = uniform;
  zipf.skew = BinSkew::kZipf;
  zipf.zipf_s = 1.0;
  EXPECT_NE(zipf.make_sampler(64), nullptr);
}

}  // namespace
}  // namespace iba::scenario
