// Ball-lifecycle span tracing: flow conservation at full sampling,
// per-span invariants (pool + bin-queue decomposition of the wait, throw
// accounting), deterministic sampling (same seed ⇒ byte-identical span
// streams, sequential vs. parallel replication), crash-requeue coverage,
// discipline coverage, and registry recording.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "concurrency/thread_pool.hpp"
#include "core/capped.hpp"
#include "rng/seed.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/config.hpp"
#include "sim/replication.hpp"
#include "sim/runner.hpp"
#include "telemetry/ball_trace.hpp"
#include "telemetry/export.hpp"
#include "telemetry/registry.hpp"

namespace {

using iba::core::Capped;
using iba::core::CappedConfig;
using iba::core::Engine;
using iba::telemetry::BallSpan;
using iba::telemetry::BallTraceConfig;
using iba::telemetry::BallTracer;
using iba::telemetry::kSpanAttemptCap;

[[maybe_unused]] iba::sim::SimConfig small_config(std::uint64_t seed) {
  iba::sim::SimConfig config;
  config.n = 256;
  config.capacity = 2;
  config.lambda_n = 224;  // λ = 7/8
  config.burn_in = 200;
  config.auto_burn_in = false;
  config.measure_rounds = 300;
  config.seed = seed;
  return config;
}

[[maybe_unused]] std::string spans_to_string(
    const std::deque<BallSpan>& spans) {
  std::ostringstream out;
  for (const BallSpan& span : spans) {
    iba::telemetry::write_span_json(span, out);
  }
  return out.str();
}

[[maybe_unused]] void check_span_invariants(const BallSpan& span,
                                            std::uint32_t capacity) {
  EXPECT_LE(span.arrival_round, span.accept_round) << span.ball_id;
  EXPECT_LE(span.accept_round, span.service_round) << span.ball_id;
  EXPECT_EQ(span.pool_rounds + span.bin_rounds, span.wait()) << span.ball_id;
  EXPECT_EQ(span.throws, span.failed_throws + span.requeues + 1)
      << span.ball_id;
  EXPECT_LT(span.queue_depth, capacity) << span.ball_id;
  const std::uint32_t expect_recorded =
      span.failed_throws < kSpanAttemptCap ? span.failed_throws
                                           : kSpanAttemptCap;
  EXPECT_EQ(span.recorded_failed, expect_recorded) << span.ball_id;
  for (std::uint32_t i = 0; i < span.recorded_failed; ++i) {
    EXPECT_EQ(span.failed[i].load, capacity) << span.ball_id;
    EXPECT_GE(span.failed[i].round, span.arrival_round) << span.ball_id;
    EXPECT_LE(span.failed[i].round, span.service_round) << span.ball_id;
  }
}

#if IBA_TELEMETRY_ENABLED

TEST(BallTrace, FullSamplingConservesEveryBall) {
  CappedConfig config;
  config.n = 128;
  config.capacity = 2;
  config.lambda_n = 112;
  Capped process(config, Engine(7));

  BallTraceConfig trace;
  trace.seed = 7;
  trace.sample_rate = 1.0;
  trace.completed_capacity = 1u << 20;
  BallTracer tracer(trace);
  process.set_ball_tracer(&tracer);

  std::uint64_t deleted = 0;
  for (int round = 0; round < 400; ++round) {
    deleted += process.step().deleted;
  }

  // Every generated ball was sampled; every sampled ball is either
  // completed or still in flight.
  EXPECT_EQ(tracer.sampled_arrivals(), process.generated_total());
  EXPECT_EQ(tracer.skipped_samples(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.completed_total() + tracer.active_count(),
            tracer.sampled_arrivals());
  EXPECT_EQ(tracer.completed_total(), deleted);
  EXPECT_EQ(tracer.completed().size(), deleted);

  for (const BallSpan& span : tracer.completed()) {
    check_span_invariants(span, config.capacity);
  }

  // At full sampling the spans ARE the wait statistics: mean and max of
  // span waits must reproduce the process's own WaitRecorder exactly.
  double wait_sum = 0.0;
  std::uint64_t wait_max = 0;
  for (const BallSpan& span : tracer.completed()) {
    wait_sum += static_cast<double>(span.wait());
    if (span.wait() > wait_max) wait_max = span.wait();
  }
  ASSERT_GT(deleted, 0u);
  EXPECT_NEAR(wait_sum / static_cast<double>(deleted),
              process.waits().mean(), 1e-9);
  EXPECT_EQ(wait_max, process.waits().max());

  // The decomposition histograms cover exactly the completed spans.
  EXPECT_EQ(tracer.pool_wait().count(), tracer.completed_total());
  EXPECT_EQ(tracer.bin_wait().count(), tracer.completed_total());
  EXPECT_NEAR(tracer.pool_wait().sum() + tracer.bin_wait().sum(), wait_sum,
              1e-9);
}

TEST(BallTrace, BallIdsAreTheGenerationSequence) {
  CappedConfig config;
  config.n = 64;
  config.capacity = 2;
  config.lambda_n = 48;
  Capped process(config, Engine(11));

  BallTraceConfig trace;
  trace.seed = 11;
  trace.sample_rate = 1.0;
  trace.completed_capacity = 1u << 18;
  BallTracer tracer(trace);
  process.set_ball_tracer(&tracer);
  for (int round = 0; round < 200; ++round) process.step();

  // At full sampling, completed + active ids partition
  // [0, generated_total): check ids are unique and in range.
  std::vector<bool> seen(process.generated_total(), false);
  for (const BallSpan& span : tracer.completed()) {
    ASSERT_LT(span.ball_id, seen.size());
    EXPECT_FALSE(seen[span.ball_id]) << "duplicate span " << span.ball_id;
    seen[span.ball_id] = true;
  }
}

TEST(BallTrace, SameSeedSameSpanBytes) {
  auto run_once = [] {
    CappedConfig config;
    config.n = 256;
    config.capacity = 2;
    config.lambda_n = 224;
    Capped process(config, Engine(42));
    BallTraceConfig trace;
    trace.seed = 42;
    trace.sample_rate = 0.25;
    trace.completed_capacity = 1u << 18;
    BallTracer tracer(trace);
    process.set_ball_tracer(&tracer);
    for (int round = 0; round < 300; ++round) process.step();
    return spans_to_string(tracer.completed());
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(BallTrace, PartialSamplingTracesExactlyTheHashedSubset) {
  CappedConfig config;
  config.n = 256;
  config.capacity = 2;
  config.lambda_n = 224;
  Capped process(config, Engine(3));
  BallTraceConfig trace;
  trace.seed = 3;
  trace.sample_rate = 0.25;
  trace.completed_capacity = 1u << 18;
  BallTracer tracer(trace);
  process.set_ball_tracer(&tracer);
  for (int round = 0; round < 300; ++round) process.step();

  EXPECT_GT(tracer.completed_total(), 0u);
  EXPECT_LT(tracer.sampled_arrivals(), process.generated_total());
  for (const BallSpan& span : tracer.completed()) {
    EXPECT_TRUE(tracer.is_sampled(span.ball_id)) << span.ball_id;
    check_span_invariants(span, config.capacity);
  }

  // The sampler is a pure function of (seed, id): an independent tracer
  // with the same seed agrees on every decision.
  BallTracer same_seed(trace);
  trace.seed = 4;
  BallTracer other_seed(trace);
  std::uint64_t agree = 0, differ = 0;
  for (std::uint64_t id = 0; id < 4096; ++id) {
    EXPECT_EQ(tracer.is_sampled(id), same_seed.is_sampled(id));
    if (tracer.is_sampled(id) == other_seed.is_sampled(id)) {
      ++agree;
    } else {
      ++differ;
    }
  }
  EXPECT_GT(differ, 0u);  // different seed ⇒ different subset
  EXPECT_GT(agree, 0u);
}

TEST(BallTrace, CompletedRingDropsOldestAndCounts) {
  CappedConfig config;
  config.n = 64;
  config.capacity = 2;
  config.lambda_n = 56;
  Capped process(config, Engine(5));
  BallTraceConfig trace;
  trace.seed = 5;
  trace.sample_rate = 1.0;
  trace.completed_capacity = 32;
  BallTracer tracer(trace);
  process.set_ball_tracer(&tracer);
  for (int round = 0; round < 200; ++round) process.step();

  EXPECT_EQ(tracer.completed().size(), 32u);
  EXPECT_GT(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.dropped() + tracer.completed().size(),
            tracer.completed_total());
  // The buffer keeps the newest spans.
  EXPECT_EQ(tracer.completed().back().service_round, process.round());
}

TEST(BallTrace, CrashRequeueDecomposesStints) {
  CappedConfig config;
  config.n = 64;
  config.capacity = 2;
  config.lambda_n = 48;
  config.failure_probability = 0.2;
  config.failure_mode = iba::core::FailureMode::kCrashRequeue;
  Capped process(config, Engine(13));
  BallTraceConfig trace;
  trace.seed = 13;
  trace.sample_rate = 1.0;
  trace.completed_capacity = 1u << 18;
  BallTracer tracer(trace);
  process.set_ball_tracer(&tracer);

  std::uint64_t deleted = 0;
  for (int round = 0; round < 300; ++round) deleted += process.step().deleted;

  EXPECT_EQ(tracer.completed_total(), deleted);
  std::uint64_t requeues = 0;
  for (const BallSpan& span : tracer.completed()) {
    check_span_invariants(span, config.capacity);
    requeues += span.requeues;
  }
  // p = 0.2 over 300 rounds × 64 bins: requeues are essentially certain.
  EXPECT_GT(requeues, 0u);
}

TEST(BallTrace, CoversAllDisciplinesAndAcceptanceOrders) {
  struct Case {
    iba::core::DeletionDiscipline deletion;
    iba::core::AcceptanceOrder acceptance;
  };
  const Case cases[] = {
      {iba::core::DeletionDiscipline::kLifo,
       iba::core::AcceptanceOrder::kOldestFirst},
      {iba::core::DeletionDiscipline::kUniform,
       iba::core::AcceptanceOrder::kOldestFirst},
      {iba::core::DeletionDiscipline::kFifo,
       iba::core::AcceptanceOrder::kYoungestFirst},
  };
  for (const Case& test_case : cases) {
    CappedConfig config;
    config.n = 64;
    config.capacity = 3;
    config.lambda_n = 48;
    config.deletion = test_case.deletion;
    config.acceptance = test_case.acceptance;
    Capped process(config, Engine(17));
    BallTraceConfig trace;
    trace.seed = 17;
    trace.sample_rate = 1.0;
    trace.completed_capacity = 1u << 18;
    BallTracer tracer(trace);
    process.set_ball_tracer(&tracer);

    std::uint64_t deleted = 0;
    for (int round = 0; round < 200; ++round) {
      deleted += process.step().deleted;
    }
    EXPECT_EQ(tracer.completed_total(), deleted);
    EXPECT_EQ(tracer.completed_total() + tracer.active_count(),
              tracer.sampled_arrivals());
    for (const BallSpan& span : tracer.completed()) {
      check_span_invariants(span, config.capacity);
    }
  }
}

TEST(BallTrace, InfiniteCapacityNeverRejects) {
  CappedConfig config;
  config.n = 64;
  config.capacity = CappedConfig::kInfiniteCapacity;
  config.lambda_n = 48;
  Capped process(config, Engine(23));
  BallTraceConfig trace;
  trace.seed = 23;
  trace.sample_rate = 1.0;
  trace.completed_capacity = 1u << 18;
  BallTracer tracer(trace);
  process.set_ball_tracer(&tracer);
  for (int round = 0; round < 200; ++round) process.step();

  ASSERT_GT(tracer.completed_total(), 0u);
  for (const BallSpan& span : tracer.completed()) {
    EXPECT_EQ(span.failed_throws, 0u);
    EXPECT_EQ(span.throws, 1u);
    EXPECT_EQ(span.pool_rounds, 0u);
    EXPECT_EQ(span.bin_rounds, span.wait());
  }
}

TEST(BallTrace, ClearCompletedKeepsLifetimeCounters) {
  CappedConfig config;
  config.n = 64;
  config.capacity = 2;
  config.lambda_n = 48;
  Capped process(config, Engine(29));
  BallTraceConfig trace;
  trace.seed = 29;
  trace.sample_rate = 1.0;
  BallTracer tracer(trace);
  process.set_ball_tracer(&tracer);
  for (int round = 0; round < 100; ++round) process.step();

  const std::uint64_t completed_before = tracer.completed_total();
  const std::uint64_t sampled_before = tracer.sampled_arrivals();
  ASSERT_GT(completed_before, 0u);
  tracer.clear_completed();
  EXPECT_TRUE(tracer.completed().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.pool_wait().count(), 0u);
  EXPECT_EQ(tracer.bin_wait().count(), 0u);
  EXPECT_EQ(tracer.completed_total(), completed_before);
  EXPECT_EQ(tracer.sampled_arrivals(), sampled_before);

  // Tracing continues seamlessly after the clear.
  for (int round = 0; round < 50; ++round) process.step();
  EXPECT_GT(tracer.completed_total(), completed_before);
  for (const BallSpan& span : tracer.completed()) {
    check_span_invariants(span, config.capacity);
  }
}

TEST(BallTrace, LiveRingReceivesCompletedSpans) {
  CappedConfig config;
  config.n = 64;
  config.capacity = 2;
  config.lambda_n = 48;
  Capped process(config, Engine(31));
  BallTraceConfig trace;
  trace.seed = 31;
  trace.sample_rate = 1.0;
  trace.completed_capacity = 1u << 18;
  BallTracer tracer(trace);
  iba::telemetry::SpanRing ring(1u << 16);
  tracer.set_live_ring(&ring);
  process.set_ball_tracer(&tracer);
  for (int round = 0; round < 100; ++round) process.step();

  ASSERT_GT(tracer.completed_total(), 0u);
  std::uint64_t drained = 0;
  BallSpan span;
  std::uint64_t last_service = 0;
  while (ring.try_pop(span)) {
    ++drained;
    EXPECT_GE(span.service_round, last_service);  // completion order
    last_service = span.service_round;
  }
  EXPECT_EQ(drained, tracer.completed_total());
}

TEST(BallTrace, RunnerClearsBurnInSpansAndRecordsRegistry) {
  const auto config = small_config(99);
  iba::telemetry::Registry registry;
  BallTraceConfig trace;
  trace.seed = config.seed;
  trace.sample_rate = 1.0;
  trace.completed_capacity = 1u << 20;
  BallTracer tracer(trace);
  iba::sim::RunTelemetry telemetry;
  telemetry.registry = &registry;
  telemetry.ball_trace = &tracer;

  const auto result = iba::sim::run_capped(
      config, iba::sim::RunSpec::from_config(config), telemetry);

  // Burn-in spans were cleared: buffered spans all completed during the
  // measurement window.
  ASSERT_FALSE(tracer.completed().empty());
  for (const BallSpan& span : tracer.completed()) {
    EXPECT_GE(span.service_round, config.burn_in);
  }
  // At full sampling, the measured spans are the measured deletions.
  EXPECT_EQ(tracer.completed().size() + tracer.dropped(), result.deletions);

  EXPECT_EQ(registry.counter("spans_completed_total").value(),
            tracer.completed_total());
  EXPECT_EQ(registry.counter("spans_sampled_total").value(),
            tracer.sampled_arrivals());
  EXPECT_EQ(registry.histogram("span_pool_rounds").count(),
            tracer.completed().size() + tracer.dropped());
  EXPECT_EQ(registry.histogram("span_binq_rounds").count(),
            tracer.completed().size() + tracer.dropped());
}

TEST(BallTrace, ReplicationSpanStreamsAreThreadCountInvariant) {
  constexpr std::size_t kReplicas = 4;
  const std::uint64_t master_seed = 2026;

  // Each replica owns a tracer seeded by its derived seed; the serialized
  // span stream is captured per replica seed.
  auto run_with_spans = [](std::map<std::uint64_t, std::string>& streams,
                           std::mutex& mutex) {
    return [&streams, &mutex](std::uint64_t seed,
                              iba::sim::RunTelemetry telemetry) {
      auto config = small_config(seed);
      BallTraceConfig trace;
      trace.seed = seed;
      trace.sample_rate = 0.1;
      trace.completed_capacity = 1u << 18;
      BallTracer tracer(trace);
      telemetry.ball_trace = &tracer;
      const auto result = iba::sim::run_capped(
          config, iba::sim::RunSpec::from_config(config), telemetry);
      const std::lock_guard lock(mutex);
      streams[seed] = spans_to_string(tracer.completed());
      return result;
    };
  };

  std::map<std::uint64_t, std::string> seq_streams, par_streams;
  std::mutex seq_mutex, par_mutex;

  iba::telemetry::Registry sequential;
  (void)iba::sim::replicate(run_with_spans(seq_streams, seq_mutex), kReplicas,
                            master_seed, sequential);

  iba::concurrency::ThreadPool pool(4);
  iba::telemetry::Registry parallel;
  (void)iba::sim::replicate_parallel(run_with_spans(par_streams, par_mutex),
                                     kReplicas, master_seed, pool, parallel);

  ASSERT_EQ(seq_streams.size(), kReplicas);
  ASSERT_EQ(par_streams.size(), kReplicas);
  for (const auto& [seed, stream] : seq_streams) {
    ASSERT_TRUE(par_streams.contains(seed));
    EXPECT_FALSE(stream.empty());
    EXPECT_EQ(stream, par_streams.at(seed)) << "seed " << seed;
  }

  // The merged registries — including the span_* aggregates — export to
  // identical bytes regardless of thread count.
  std::ostringstream seq_out, par_out;
  iba::telemetry::write_prometheus(sequential, seq_out);
  iba::telemetry::write_prometheus(parallel, par_out);
  EXPECT_EQ(seq_out.str(), par_out.str());
  EXPECT_NE(seq_out.str().find("spans_completed_total"), std::string::npos);
}

TEST(BallTrace, ZeroRateTracesNothing) {
  CappedConfig config;
  config.n = 64;
  config.capacity = 2;
  config.lambda_n = 48;
  Capped process(config, Engine(37));
  BallTraceConfig trace;
  trace.seed = 37;
  trace.sample_rate = 0.0;
  BallTracer tracer(trace);
  process.set_ball_tracer(&tracer);
  for (int round = 0; round < 100; ++round) process.step();
  EXPECT_EQ(tracer.sampled_arrivals(), 0u);
  EXPECT_EQ(tracer.completed_total(), 0u);
  EXPECT_TRUE(tracer.completed().empty());
  EXPECT_FALSE(tracer.is_sampled(0));
}

#else  // IBA_TELEMETRY_ENABLED == 0

TEST(BallTraceDisabled, TracerIsAnInertShell) {
  BallTraceConfig trace;
  trace.sample_rate = 1.0;
  BallTracer tracer(trace);
  tracer.on_arrivals(0, 0, 8);
  tracer.on_throw(0, 0, 0, true);
  tracer.on_delete(0, 0, 0);
  tracer.on_requeue(0, 0);
  tracer.on_round_end(0);
  EXPECT_TRUE(tracer.completed().empty());
  EXPECT_EQ(tracer.completed_total(), 0u);
  EXPECT_FALSE(tracer.is_sampled(1));

  // Attaching to a process is still legal and changes nothing.
  CappedConfig config;
  config.n = 64;
  config.capacity = 2;
  config.lambda_n = 48;
  Capped process(config, Engine(1));
  process.set_ball_tracer(&tracer);
  for (int round = 0; round < 50; ++round) process.step();
  EXPECT_TRUE(tracer.completed().empty());
}

#endif

}  // namespace
