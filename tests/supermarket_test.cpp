// Tests of the continuous-time supermarket model against its classical
// closed forms: M/M/1 for d = 1, the doubly exponential two-choice fixed
// point for d = 2, and Little's law.
#include <gtest/gtest.h>

#include <cmath>

#include "core/supermarket.hpp"

namespace {

using iba::core::Engine;
using iba::core::Supermarket;
using iba::core::SupermarketConfig;

SupermarketConfig make_config(std::uint32_t n, std::uint32_t d,
                              double lambda) {
  SupermarketConfig config;
  config.n = n;
  config.d = d;
  config.lambda = lambda;
  return config;
}

TEST(Supermarket, Validation) {
  EXPECT_THROW(make_config(0, 2, 0.5).validate(), iba::ContractViolation);
  EXPECT_THROW(make_config(8, 0, 0.5).validate(), iba::ContractViolation);
  EXPECT_THROW(make_config(8, 2, 0.0).validate(), iba::ContractViolation);
  EXPECT_THROW(make_config(8, 2, 1.0).validate(), iba::ContractViolation);
}

TEST(Supermarket, FixedPointFormula) {
  EXPECT_DOUBLE_EQ(Supermarket::fixed_point_tail(0.9, 1, 0), 1.0);
  EXPECT_NEAR(Supermarket::fixed_point_tail(0.9, 1, 3), std::pow(0.9, 3),
              1e-12);
  // d = 2: exponent (2^k − 1)/(2 − 1) = 2^k − 1.
  EXPECT_NEAR(Supermarket::fixed_point_tail(0.9, 2, 3), std::pow(0.9, 7),
              1e-12);
}

TEST(Supermarket, TimeAdvancesAndConserves) {
  Supermarket system(make_config(128, 2, 0.7), Engine(1));
  const auto events = system.advance(50.0);
  EXPECT_GT(events, 0u);
  EXPECT_DOUBLE_EQ(system.now(), 50.0);
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < 128; ++i) total += system.queue_length(i);
  EXPECT_EQ(total, system.customers_in_system());
}

TEST(Supermarket, MM1QueueLengthsForDOne) {
  // d = 1: independent M/M/1 queues; Pr[length ≥ k] = λ^k, mean queue
  // λ/(1−λ).
  const double lambda = 0.6;
  Supermarket system(make_config(4096, 1, lambda), Engine(2));
  system.advance(200.0);  // warm up well past 1/(1−λ)² time constants

  double tail1 = 0, tail2 = 0, mean = 0;
  const int samples = 60;
  for (int s = 0; s < samples; ++s) {
    system.advance(5.0);
    tail1 += system.tail_fraction(1);
    tail2 += system.tail_fraction(2);
    mean += static_cast<double>(system.customers_in_system()) / 4096.0;
  }
  tail1 /= samples;
  tail2 /= samples;
  mean /= samples;
  EXPECT_NEAR(tail1, lambda, 0.03);
  EXPECT_NEAR(tail2, lambda * lambda, 0.03);
  EXPECT_NEAR(mean, lambda / (1 - lambda), 0.1);
}

TEST(Supermarket, TwoChoicesMatchDoublyExponentialFixedPoint) {
  const double lambda = 0.9;
  Supermarket system(make_config(8192, 2, lambda), Engine(3));
  system.advance(300.0);

  double tail2 = 0, tail3 = 0, tail4 = 0;
  const int samples = 50;
  for (int s = 0; s < samples; ++s) {
    system.advance(5.0);
    tail2 += system.tail_fraction(2);
    tail3 += system.tail_fraction(3);
    tail4 += system.tail_fraction(4);
  }
  tail2 /= samples;
  tail3 /= samples;
  tail4 /= samples;
  EXPECT_NEAR(tail2, Supermarket::fixed_point_tail(lambda, 2, 2), 0.03);
  EXPECT_NEAR(tail3, Supermarket::fixed_point_tail(lambda, 2, 3), 0.03);
  EXPECT_NEAR(tail4, Supermarket::fixed_point_tail(lambda, 2, 4), 0.02);
}

TEST(Supermarket, TwoChoicesShrinkSojournTimes) {
  // Mitzenmacher's headline: d = 2 reduces the expected time in system
  // dramatically at high load.
  const double lambda = 0.95;
  Supermarket one(make_config(2048, 1, lambda), Engine(4));
  Supermarket two(make_config(2048, 2, lambda), Engine(5));
  one.advance(400.0);
  two.advance(400.0);
  one.reset_sojourn_stats();
  two.reset_sojourn_stats();
  one.advance(200.0);
  two.advance(200.0);
  ASSERT_GT(one.sojourn().count(), 1000u);
  ASSERT_GT(two.sojourn().count(), 1000u);
  // M/M/1: E[T] = 1/(1−λ) = 20; two-choice is far smaller.
  EXPECT_GT(one.sojourn().mean(), 10.0);
  EXPECT_LT(two.sojourn().mean(), 0.5 * one.sojourn().mean());
}

TEST(Supermarket, DeterministicGivenSeed) {
  Supermarket a(make_config(64, 2, 0.8), Engine(6));
  Supermarket b(make_config(64, 2, 0.8), Engine(6));
  a.advance(20.0);
  b.advance(20.0);
  EXPECT_EQ(a.customers_in_system(), b.customers_in_system());
  for (std::uint32_t i = 0; i < 64; ++i) {
    ASSERT_EQ(a.queue_length(i), b.queue_length(i));
  }
}

}  // namespace
