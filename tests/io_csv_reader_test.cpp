// Tests for the CSV reader: RFC-4180 quoting, round-trips with
// CsvWriter, numeric columns, and malformed-input rejection.
#include <gtest/gtest.h>

#include <filesystem>

#include "io/csv.hpp"
#include "io/csv_reader.hpp"

namespace {

using namespace iba::io;

TEST(CsvReader, ParsesSimpleDocument) {
  const auto doc = parse_csv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_EQ(doc.header.size(), 3u);
  EXPECT_EQ(doc.header[0], "a");
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1][2], "6");
}

TEST(CsvReader, HandlesQuotingAndEscapes) {
  const auto doc =
      parse_csv("name,note\n\"x,y\",\"say \"\"hi\"\"\"\n\"multi\nline\",z\n");
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0][0], "x,y");
  EXPECT_EQ(doc.rows[0][1], "say \"hi\"");
  EXPECT_EQ(doc.rows[1][0], "multi\nline");
}

TEST(CsvReader, HandlesCrLfAndMissingTrailingNewline) {
  const auto doc = parse_csv("a,b\r\n1,2\r\n3,4");
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1][1], "4");
}

TEST(CsvReader, EmptyInputAndHeaderOnly) {
  EXPECT_TRUE(parse_csv("").header.empty());
  const auto doc = parse_csv("x,y\n");
  EXPECT_EQ(doc.header.size(), 2u);
  EXPECT_TRUE(doc.rows.empty());
}

TEST(CsvReader, RejectsMalformed) {
  EXPECT_THROW((void)parse_csv("a,b\n\"unterminated\n"), std::runtime_error);
  EXPECT_THROW((void)parse_csv("a,b\n1,2,3\n"), std::runtime_error);
  EXPECT_THROW((void)read_csv_file("/nonexistent/iba.csv"),
               std::runtime_error);
}

TEST(CsvReader, ColumnLookupAndNumericColumn) {
  const auto doc = parse_csv("c,pool\n1,2.5\n2,1.25\n");
  ASSERT_TRUE(doc.column("pool").has_value());
  EXPECT_EQ(*doc.column("pool"), 1u);
  EXPECT_FALSE(doc.column("missing").has_value());
  const auto values = doc.numeric_column("pool");
  ASSERT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values[0], 2.5);
  EXPECT_DOUBLE_EQ(values[1], 1.25);
  EXPECT_THROW((void)doc.numeric_column("missing"), std::runtime_error);
}

TEST(CsvReader, RejectsNonNumericCells) {
  const auto doc = parse_csv("v\nnot-a-number\n");
  EXPECT_THROW((void)doc.numeric_column("v"), std::runtime_error);
}

TEST(CsvReader, RoundTripsWithWriter) {
  const auto path =
      (std::filesystem::temp_directory_path() / "iba_roundtrip.csv").string();
  {
    CsvWriter writer(path);
    writer.header({"label", "value"});
    writer.row(std::vector<std::string>{"plain", "1"});
    writer.row(std::vector<std::string>{"with,comma", "2"});
    writer.row(std::vector<std::string>{"with \"quotes\"", "3"});
    writer.row(std::vector<std::string>{"with\nnewline", "4"});
  }
  const auto doc = read_csv_file(path);
  std::filesystem::remove(path);
  ASSERT_EQ(doc.rows.size(), 4u);
  EXPECT_EQ(doc.rows[0][0], "plain");
  EXPECT_EQ(doc.rows[1][0], "with,comma");
  EXPECT_EQ(doc.rows[2][0], "with \"quotes\"");
  EXPECT_EQ(doc.rows[3][0], "with\nnewline");
  const auto values = doc.numeric_column("value");
  EXPECT_DOUBLE_EQ(values[3], 4.0);
}

}  // namespace
