// Golden-artifact regression: every scenario in scenarios/*.scn must
// reproduce its committed golden in tests/goldens/ byte for byte, pass
// its own [expect] bounds, and audit clean. Regenerate intentionally
// with scripts/update_goldens.sh.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>

#include "artifact/artifact.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

#ifndef IBA_REPO_DIR
#error "IBA_REPO_DIR must point at the repository root"
#endif

namespace iba::scenario {
namespace {

namespace fs = std::filesystem;

const fs::path kRepo = IBA_REPO_DIR;

std::set<fs::path> bank_files() {
  std::set<fs::path> files;  // sorted for stable test order
  for (const auto& entry : fs::directory_iterator(kRepo / "scenarios")) {
    if (entry.path().extension() == ".scn") files.insert(entry.path());
  }
  return files;
}

TEST(ScenarioGoldens, BankIsNonTrivial) {
  EXPECT_GE(bank_files().size(), 8u)
      << "the scenario bank should keep at least 8 members";
}

TEST(ScenarioGoldens, EveryScenarioMatchesItsGolden) {
  for (const fs::path& path : bank_files()) {
    SCOPED_TRACE(path.filename().string());
    const Scenario scn = load_scenario_file(path.string());
    EXPECT_EQ(scn.name, path.stem().string())
        << "scenario name should match its file name";

    const RunOutcome outcome = run_scenario(scn);
    ASSERT_TRUE(outcome.complete);
    EXPECT_TRUE(outcome.audit_ok);
    EXPECT_TRUE(outcome.expectations_ok)
        << (outcome.failures.empty() ? "?" : outcome.failures.front());
    EXPECT_TRUE(outcome.artifact.all_checks_pass());

    const fs::path golden =
        kRepo / "tests" / "goldens" / (path.stem().string() + ".artifact");
    ASSERT_TRUE(fs::exists(golden))
        << "missing golden — run scripts/update_goldens.sh";
    const std::string expected =
        artifact::read_artifact_text(golden.string());
    const std::string actual = artifact::render_artifact(outcome.artifact);
    EXPECT_EQ(actual, expected)
        << path.stem().string()
        << " drifted from its golden; if intended, regenerate with "
           "scripts/update_goldens.sh and commit the diff";
  }
}

TEST(ScenarioGoldens, NoOrphanGoldens) {
  std::set<std::string> names;
  for (const fs::path& path : bank_files()) names.insert(path.stem().string());
  for (const auto& entry :
       fs::directory_iterator(kRepo / "tests" / "goldens")) {
    if (entry.path().extension() != ".artifact") continue;
    EXPECT_TRUE(names.contains(entry.path().stem().string()))
        << entry.path().filename().string()
        << " has no matching scenario in scenarios/";
  }
}

TEST(ScenarioGoldens, GoldenDigestsMatchTheirScenarios) {
  // The digest line inside each golden must equal the digest of today's
  // scenario file — catches edits to a .scn without a golden refresh
  // even when the run would coincidentally produce the same numbers.
  for (const fs::path& path : bank_files()) {
    SCOPED_TRACE(path.filename().string());
    const Scenario scn = load_scenario_file(path.string());
    const fs::path golden =
        kRepo / "tests" / "goldens" / (path.stem().string() + ".artifact");
    if (!fs::exists(golden)) continue;  // reported by the main test
    const std::string text = artifact::read_artifact_text(golden.string());
    EXPECT_NE(text.find("digest = " + scn.digest() + "\n"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace iba::scenario
