// Tests of the closed-form bounds: hand-computed anchor values,
// monotonicity in every parameter the theory predicts, consistency of the
// Chernoff bounds with exact binomial tails, and the sweet-spot helper.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bounds.hpp"
#include "analysis/tail_bounds.hpp"
#include "common/assert.hpp"

namespace {

using namespace iba::analysis;

TEST(Bounds, LogTermAnchors) {
  EXPECT_DOUBLE_EQ(log_term(0.0), 0.0);
  EXPECT_NEAR(log_term(0.75), std::log(4.0), 1e-12);
  EXPECT_NEAR(log_term(1.0 - 1.0 / 1024.0), std::log(1024.0), 1e-9);
  EXPECT_THROW((void)log_term(1.0), iba::ContractViolation);
  EXPECT_THROW((void)log_term(-0.1), iba::ContractViolation);
}

TEST(Bounds, Theorem1PoolAnchor) {
  // λ = 3/4, n = 1000: 2·ln4·1000 + 4000 ≈ 6772.6.
  EXPECT_NEAR(pool_bound_thm1(1000, 0.75), 2 * std::log(4.0) * 1000 + 4000,
              1e-9);
}

TEST(Bounds, Theorem2ReducesTowardsTheorem1Shape) {
  // At c = 1 the Theorem-2 pool bound is 4·ln(1/(1−λ))·n + 12n — same
  // shape as Theorem 1 with weaker constants, as the paper notes.
  const double t2 = pool_bound_thm2(1000, 0.75, 1);
  EXPECT_NEAR(t2, 4 * std::log(4.0) * 1000 + 12000, 1e-9);
  EXPECT_GT(t2, pool_bound_thm1(1000, 0.75));
}

TEST(Bounds, PoolBoundMonotonicity) {
  // Increasing λ increases the bound; increasing c decreases the
  // 1/c-term (until the O(c·n) term dominates).
  EXPECT_LT(pool_bound_thm2(1024, 0.5, 2), pool_bound_thm2(1024, 0.99, 2));
  const double high_lambda = 1.0 - std::pow(2.0, -20);
  EXPECT_GT(pool_bound_thm2(1024, high_lambda, 1),
            pool_bound_thm2(1024, high_lambda, 2));
}

TEST(Bounds, WaitBoundHasInteriorMinimumInC) {
  // For large λ the waiting-time bound must dip and come back up as c
  // grows — the sweet spot the paper identifies.
  const std::uint32_t n = 1 << 15;
  const double lambda = 1.0 - std::pow(2.0, -13);
  double prev = wait_bound_thm2(n, lambda, 1);
  bool decreased = false, increased_after = false;
  for (std::uint32_t c = 2; c <= 16; ++c) {
    const double cur = wait_bound_thm2(n, lambda, c);
    if (cur < prev) decreased = true;
    if (decreased && cur > prev) increased_after = true;
    prev = cur;
  }
  EXPECT_TRUE(decreased);
  EXPECT_TRUE(increased_after);
}

TEST(Bounds, MStarMatchesPaperText) {
  EXPECT_NEAR(m_star_unit(1000, 0.75), std::log(4.0) * 1000 + 2000, 1e-9);
  EXPECT_NEAR(m_star(1000, 0.75, 3),
              2.0 / 3.0 * std::log(4.0) * 1000 + 18000, 1e-9);
  // Note: m_star(·, ·, 1) = ln·n + 6n intentionally differs from
  // m_star_unit (the Section IV constants are weaker).
  EXPECT_GT(m_star(1000, 0.75, 1), m_star_unit(1000, 0.75));
}

TEST(Bounds, Fig4ReferenceAnchors) {
  EXPECT_NEAR(fig4_reference(0.75, 1), std::log(4.0) + 1.0, 1e-12);
  EXPECT_NEAR(fig4_reference(0.75, 2), std::log(4.0) / 2 + 1.0, 1e-12);
  const double lambda10 = 1.0 - std::pow(2.0, -10);
  EXPECT_NEAR(fig4_reference(lambda10, 1), 10 * std::log(2.0) + 1.0, 1e-9);
}

TEST(Bounds, Fig5ReferenceAnchors) {
  const std::uint32_t n = 1 << 15;  // log2 log2 n = log2 15
  EXPECT_NEAR(fig5_reference(n, 0.75, 2),
              std::log(4.0) / 2 + std::log2(15.0) + 2.0, 1e-9);
}

TEST(Bounds, LogLogN) {
  EXPECT_DOUBLE_EQ(log_log_n(1), 0.0);
  EXPECT_DOUBLE_EQ(log_log_n(4), 1.0);
  EXPECT_DOUBLE_EQ(log_log_n(16), 2.0);
  EXPECT_NEAR(log_log_n(1 << 15), std::log2(15.0), 1e-12);
}

TEST(Bounds, MeanFieldPoolAnchorsAndEnvelope) {
  EXPECT_NEAR(mean_field_pool_c1(0.75), std::log(4.0) - 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(mean_field_pool_c1(0.0), 0.0);
  // The Fig. 4 dashed curve upper-bounds the mean-field value everywhere.
  for (double lambda : {0.1, 0.5, 0.9, 0.999}) {
    EXPECT_LT(mean_field_pool_c1(lambda), fig4_reference(lambda, 1));
  }
}

TEST(Bounds, SweetSpotGrowsWithLambda) {
  EXPECT_LT(sweet_spot_prediction(0.5), sweet_spot_prediction(0.99));
  EXPECT_NEAR(sweet_spot_prediction(1.0 - std::exp(-9.0)), 3.0, 1e-9);
  EXPECT_EQ(suggest_capacity(0.5), 1u);
  EXPECT_EQ(suggest_capacity(1.0 - std::exp(-9.0)), 3u);
}

TEST(Bounds, GreedyBaselineScalesOrdering) {
  // GREEDY[1] is worse than GREEDY[2] and explodes as λ → 1.
  const std::uint32_t n = 1 << 15;
  EXPECT_GT(greedy1_wait_scale(n, 0.75), greedy2_wait_scale(n, 0.75));
  EXPECT_GT(greedy1_wait_scale(n, 0.999), 100 * greedy1_wait_scale(n, 0.5));
}

TEST(TailBounds, Lemma8RespectsPrecondition) {
  EXPECT_DOUBLE_EQ(chernoff_lemma8(1.0, 1.0), 1.0);  // R < 2e·mean
  EXPECT_NEAR(chernoff_lemma8(10.0, 1.0), std::exp2(-10.0), 1e-15);
  EXPECT_THROW((void)chernoff_lemma8(-1.0, 1.0), iba::ContractViolation);
}

TEST(TailBounds, Lemma9Anchor) {
  EXPECT_NEAR(chernoff_lemma9(1.0, 3.0), std::exp(-1.0), 1e-12);
  EXPECT_THROW((void)chernoff_lemma9(0.0, 1.0), iba::ContractViolation);
}

TEST(TailBounds, ExpectedEmptyBins) {
  EXPECT_NEAR(expected_empty_bins(100, 0), 100.0, 1e-12);
  // m = n: E[Z]/n → 1/e.
  EXPECT_NEAR(expected_empty_bins(100000, 100000) / 100000.0,
              1.0 / std::exp(1.0), 1e-4);
}

TEST(TailBounds, EmptyBinsDeviationBoundShrinks) {
  const double ez = expected_empty_bins(1000, 2000);
  const double loose = empty_bins_deviation_bound(1000, ez, 10.0);
  const double tight = empty_bins_deviation_bound(1000, ez, 200.0);
  EXPECT_GT(loose, tight);
  EXPECT_LE(loose, 1.0);
  EXPECT_GT(tight, 0.0);
}

TEST(TailBounds, ExactBinomialTailAnchors) {
  // B(4, 1/2): Pr[X ≥ 2] = 11/16.
  EXPECT_NEAR(binomial_upper_tail(4, 0.5, 2), 11.0 / 16.0, 1e-12);
  EXPECT_DOUBLE_EQ(binomial_upper_tail(10, 0.3, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_upper_tail(10, 0.3, 11), 0.0);
  EXPECT_DOUBLE_EQ(binomial_upper_tail(10, 0.0, 1), 0.0);
  EXPECT_DOUBLE_EQ(binomial_upper_tail(10, 1.0, 10), 1.0);
}

TEST(TailBounds, ChernoffDominatesExactTail) {
  for (std::uint64_t k = 60; k <= 100; k += 10) {
    const double exact = binomial_upper_tail(100, 0.5, k);
    const double chernoff = binomial_upper_tail_chernoff(100, 0.5, k);
    EXPECT_GE(chernoff, exact) << "k=" << k;
  }
}

TEST(TailBounds, MissProbabilityMatchesLemmaUsage) {
  // Pr[bin receives none of m balls] = (1 − 1/n)^m ≤ e^(−m/n); with
  // m = m*(unit) = ln(1/(1−λ))n + 2n this is ≤ e^(−2)·(1−λ) (Lemma 2).
  const std::uint32_t n = 4096;
  const double lambda = 0.75;
  const auto m = static_cast<std::uint64_t>(m_star_unit(n, lambda));
  const double p = miss_probability(n, m);
  EXPECT_LE(p, std::exp(-2.0) * (1.0 - lambda));
  EXPECT_GT(p, 0.0);
}

}  // namespace
