// End-to-end telemetry wiring: run_experiment populating a registry with
// conserved flow counters, the round trace capturing measured rounds,
// phase timers splitting real step time, and — the key operational
// property — sequential vs. thread-pool replication merging replica
// registries to byte-identical exports for the same master seed.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "concurrency/thread_pool.hpp"
#include "core/capped.hpp"
#include "sim/replication.hpp"
#include "sim/runner.hpp"
#include "telemetry/export.hpp"

namespace {

using namespace iba;

#if IBA_TELEMETRY_ENABLED

sim::SimConfig small_config(std::uint64_t seed) {
  sim::SimConfig config;
  config.n = 256;
  config.capacity = 2;
  config.lambda_n = 224;  // λ = 7/8
  config.burn_in = 200;
  config.auto_burn_in = false;
  config.measure_rounds = 300;
  config.seed = seed;
  return config;
}

TEST(SimTelemetry, RegistryCountersMatchRunResult) {
  const auto config = small_config(11);
  telemetry::Registry registry;
  sim::RunTelemetry hooks;
  hooks.registry = &registry;
  const auto result =
      sim::run_capped(config, sim::RunSpec::from_config(config), hooks);

  EXPECT_EQ(registry.counter("rounds_total").value(), config.measure_rounds);
  EXPECT_EQ(registry.counter("runs_total").value(), 1u);
  EXPECT_EQ(registry.counter("balls_deleted_total").value(),
            result.deletions);
  // Flow conservation over the measured window: every thrown ball was
  // either accepted or stayed in the pool (requeues re-enter the pool).
  EXPECT_GT(registry.counter("balls_thrown_total").value(), 0u);
  EXPECT_GE(registry.counter("balls_thrown_total").value(),
            registry.counter("balls_accepted_total").value());
  // The wait histogram covers exactly the measured deletions.
  EXPECT_EQ(registry.histogram("wait_rounds").count(), result.deletions);
  const double wait_sum = registry.histogram("wait_rounds").sum();
  EXPECT_NEAR(wait_sum,
              result.wait_mean * static_cast<double>(result.deletions),
              1e-6 * (1.0 + wait_sum));
}

TEST(SimTelemetry, SameSeedSameRegistryBytes) {
  const auto config = small_config(42);
  std::string exports[2];
  for (auto& text : exports) {
    telemetry::Registry registry;
    sim::RunTelemetry hooks;
    hooks.registry = &registry;
    (void)sim::run_capped(config, sim::RunSpec::from_config(config), hooks);
    std::ostringstream out;
    telemetry::write_prometheus(registry, out);
    text = out.str();
  }
  EXPECT_FALSE(exports[0].empty());
  EXPECT_EQ(exports[0], exports[1]);
}

TEST(SimTelemetry, RoundTraceCapturesMeasuredRounds) {
  const auto config = small_config(7);
  telemetry::RoundTrace trace(1u << 10);  // larger than measure_rounds
  sim::RunTelemetry hooks;
  hooks.trace = &trace;
  (void)sim::run_capped(config, sim::RunSpec::from_config(config), hooks);

  EXPECT_EQ(trace.size(), config.measure_rounds);
  EXPECT_EQ(trace.dropped(), 0u);
  telemetry::RoundEvent event;
  ASSERT_TRUE(trace.try_pop(event));
  // First traced round follows the burn-in.
  EXPECT_EQ(event.metrics.round, config.burn_in + 1);
  EXPECT_GT(event.step_ns, 0u);
}

TEST(SimTelemetry, RoundTraceDropsInsteadOfGrowing) {
  const auto config = small_config(7);
  telemetry::RoundTrace trace(64);  // much smaller than measure_rounds
  sim::RunTelemetry hooks;
  hooks.trace = &trace;
  (void)sim::run_capped(config, sim::RunSpec::from_config(config), hooks);
  EXPECT_LE(trace.size(), trace.capacity());
  EXPECT_EQ(trace.size() + trace.dropped(), config.measure_rounds);
}

TEST(SimTelemetry, PhaseTimersSplitStepTime) {
  const auto config = small_config(3);
  telemetry::PhaseTimers timers;
  sim::RunTelemetry hooks;
  hooks.timers = &timers;
  (void)sim::run_capped(config, sim::RunSpec::from_config(config), hooks);

  using telemetry::Phase;
  // Burn-in and measurement each ran rounds.
  EXPECT_EQ(timers.calls(Phase::kBurnIn), 1u);
  EXPECT_EQ(timers.calls(Phase::kMeasure), 1u);
  EXPECT_GT(timers.ns(Phase::kMeasure), 0u);
  // The process-internal phases saw one call per round (burn-in and
  // measured) and real time.
  const std::uint64_t total_rounds = config.burn_in + config.measure_rounds;
  EXPECT_EQ(timers.calls(Phase::kThrow), total_rounds);
  EXPECT_EQ(timers.calls(Phase::kAccept), total_rounds);
  EXPECT_EQ(timers.calls(Phase::kDelete), total_rounds);
  EXPECT_GT(timers.balls(Phase::kThrow), 0u);
  EXPECT_GT(timers.ns_per_ball(Phase::kAccept), 0.0);
  // The inner phases are contained in burn-in + measure.
  EXPECT_LE(timers.ns(Phase::kThrow) + timers.ns(Phase::kAccept) +
                timers.ns(Phase::kDelete),
            timers.ns(Phase::kBurnIn) + timers.ns(Phase::kMeasure));
}

TEST(SimTelemetry, ReplicaMergeIsThreadCountInvariant) {
  const std::uint64_t master_seed = 2021;
  constexpr std::size_t kReplicas = 6;
  auto run_one = [](std::uint64_t seed, sim::RunTelemetry hooks) {
    const auto config = small_config(seed);
    return sim::run_capped(config, sim::RunSpec::from_config(config), hooks);
  };

  telemetry::Registry sequential;
  const auto result_seq =
      sim::replicate(run_one, kReplicas, master_seed, sequential);

  concurrency::ThreadPool pool(4);
  telemetry::Registry parallel;
  const auto result_par = sim::replicate_parallel(run_one, kReplicas,
                                                  master_seed, pool, parallel);

  EXPECT_EQ(result_seq.runs.size(), result_par.runs.size());
  std::ostringstream seq_prom, par_prom, seq_json, par_json;
  telemetry::write_prometheus(sequential, seq_prom);
  telemetry::write_prometheus(parallel, par_prom);
  telemetry::write_json_line(sequential, seq_json);
  telemetry::write_json_line(parallel, par_json);
  EXPECT_FALSE(seq_prom.str().empty());
  EXPECT_EQ(seq_prom.str(), par_prom.str());
  EXPECT_EQ(seq_json.str(), par_json.str());
  // Merged counters cover all replicas.
  EXPECT_EQ(sequential.counter("rounds_total").value(),
            kReplicas * small_config(0).measure_rounds);
}

#endif  // IBA_TELEMETRY_ENABLED

}  // namespace
