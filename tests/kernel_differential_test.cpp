// Differential tests of the round kernels: the scalar ball-at-a-time
// path, the bin-major counting-sort kernel, and its sharded execution
// (1 / 2 / 7 shards) must produce byte-identical trajectories — every
// RoundMetrics field, the waiting-time statistics (including the
// order-sensitive Welford moments), snapshots (pool, bin queues, engine
// state), ball-trace span streams, snapshot-resume behaviour and
// step_with_choices — across deletion disciplines, acceptance orders,
// arrival models and crash-requeue failures.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/capped.hpp"
#include "rng/bounded.hpp"
#include "rng/xoshiro256.hpp"
#include "telemetry/ball_trace.hpp"
#include "telemetry/export.hpp"

namespace {

using iba::core::AcceptanceOrder;
using iba::core::ArrivalModel;
using iba::core::Capped;
using iba::core::CappedConfig;
using iba::core::CappedSnapshot;
using iba::core::DeletionDiscipline;
using iba::core::Engine;
using iba::core::FailureMode;
using iba::core::RoundKernel;
using iba::core::RoundMetrics;

struct Scenario {
  const char* name;
  CappedConfig config;
};

CappedConfig base_config() {
  CappedConfig config;
  config.n = 64;
  config.capacity = 2;
  config.lambda_n = 60;
  return config;
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> all;
  all.push_back({"base_fifo_oldest", base_config()});
  {
    auto c = base_config();
    c.deletion = DeletionDiscipline::kLifo;
    all.push_back({"lifo", c});
  }
  {
    auto c = base_config();
    c.deletion = DeletionDiscipline::kUniform;
    all.push_back({"uniform_deletion", c});
  }
  {
    auto c = base_config();
    c.acceptance = AcceptanceOrder::kYoungestFirst;
    all.push_back({"youngest_first", c});
  }
  {
    auto c = base_config();
    c.arrival = ArrivalModel::kBinomial;
    all.push_back({"binomial_arrivals", c});
  }
  {
    auto c = base_config();
    c.arrival = ArrivalModel::kPoisson;
    all.push_back({"poisson_arrivals", c});
  }
  {
    auto c = base_config();
    c.failure_probability = 0.2;
    all.push_back({"failures_skip", c});
  }
  {
    auto c = base_config();
    c.failure_probability = 0.2;
    c.failure_mode = FailureMode::kCrashRequeue;
    c.deletion = DeletionDiscipline::kUniform;
    all.push_back({"failures_crash_requeue", c});
  }
  {
    auto c = base_config();
    c.capacity = Capped::kInfiniteCapacity;
    all.push_back({"infinite_capacity", c});
  }
  {
    auto c = base_config();
    c.capacity = 1;
    c.lambda_n = 64;  // λ = 1, maximal pool pressure
    all.push_back({"c1_lambda1", c});
  }
  {
    auto c = base_config();
    c.n = 97;  // prime: 7 shards get uneven ranges
    c.capacity = 3;
    c.lambda_n = 90;
    all.push_back({"prime_n", c});
  }
  return all;
}

CappedConfig with_kernel(CappedConfig config, RoundKernel kernel,
                         std::uint32_t shards) {
  config.kernel = kernel;
  config.shards = shards;
  return config;
}

struct Variant {
  const char* name;
  RoundKernel kernel;
  std::uint32_t shards;
};

constexpr Variant kVariants[] = {
    {"scalar", RoundKernel::kScalar, 1},
    {"bin_major", RoundKernel::kBinMajor, 1},
    {"bin_major_2", RoundKernel::kBinMajor, 2},
    {"bin_major_7", RoundKernel::kBinMajor, 7},
};

/// Everything observable from one run, for exact comparison.
struct RunCapture {
  std::vector<RoundMetrics> metrics;
  CappedSnapshot snapshot;
  std::uint64_t wait_count = 0;
  double wait_mean = 0.0;
  double wait_stddev = 0.0;
  std::uint64_t wait_max = 0;
  std::uint64_t wait_q99 = 0;
  std::string spans;
};

RunCapture run(const CappedConfig& config, std::uint64_t seed,
               std::uint64_t rounds, bool trace) {
  Capped process(config, Engine(seed));
  iba::telemetry::BallTraceConfig trace_config;
  trace_config.seed = seed;
  trace_config.sample_rate = 1.0;
  trace_config.completed_capacity = 1u << 20;
  iba::telemetry::BallTracer tracer(trace_config);
  if (trace) process.set_ball_tracer(&tracer);

  RunCapture capture;
  capture.metrics.reserve(rounds);
  for (std::uint64_t r = 0; r < rounds; ++r) {
    capture.metrics.push_back(process.step());
  }
  capture.snapshot = process.snapshot();
  capture.wait_count = process.waits().count();
  capture.wait_mean = process.waits().mean();
  capture.wait_stddev = process.waits().stddev();
  capture.wait_max = process.waits().max();
  capture.wait_q99 = process.waits().quantile_upper_bound(0.99);
  if (trace) {
    std::ostringstream out;
    for (const auto& span : tracer.completed()) {
      iba::telemetry::write_span_json(span, out);
    }
    capture.spans = out.str();
  }
  return capture;
}

void expect_metrics_eq(const RoundMetrics& a, const RoundMetrics& b,
                       const char* variant, std::uint64_t round) {
  EXPECT_EQ(a.round, b.round) << variant << " round " << round;
  EXPECT_EQ(a.generated, b.generated) << variant << " round " << round;
  EXPECT_EQ(a.thrown, b.thrown) << variant << " round " << round;
  EXPECT_EQ(a.accepted, b.accepted) << variant << " round " << round;
  EXPECT_EQ(a.deleted, b.deleted) << variant << " round " << round;
  EXPECT_EQ(a.pool_size, b.pool_size) << variant << " round " << round;
  EXPECT_EQ(a.total_load, b.total_load) << variant << " round " << round;
  EXPECT_EQ(a.max_load, b.max_load) << variant << " round " << round;
  EXPECT_EQ(a.empty_bins, b.empty_bins) << variant << " round " << round;
  EXPECT_EQ(a.wait_count, b.wait_count) << variant << " round " << round;
  EXPECT_EQ(a.wait_sum, b.wait_sum) << variant << " round " << round;
  EXPECT_EQ(a.wait_max, b.wait_max) << variant << " round " << round;
  EXPECT_EQ(a.requeued, b.requeued) << variant << " round " << round;
  EXPECT_EQ(a.oldest_pool_age, b.oldest_pool_age)
      << variant << " round " << round;
}

void expect_snapshot_eq(const CappedSnapshot& a, const CappedSnapshot& b,
                        const char* variant) {
  EXPECT_EQ(a.round, b.round) << variant;
  EXPECT_EQ(a.generated_total, b.generated_total) << variant;
  EXPECT_EQ(a.deleted_total, b.deleted_total) << variant;
  EXPECT_EQ(a.engine_state, b.engine_state) << variant;
  ASSERT_EQ(a.pool.size(), b.pool.size()) << variant;
  for (std::size_t i = 0; i < a.pool.size(); ++i) {
    EXPECT_EQ(a.pool[i].label, b.pool[i].label) << variant << " bucket " << i;
    EXPECT_EQ(a.pool[i].count, b.pool[i].count) << variant << " bucket " << i;
  }
  EXPECT_EQ(a.bin_queues, b.bin_queues) << variant;
}

constexpr std::uint64_t kRounds = 250;
constexpr std::uint64_t kSeed = 20210705;

TEST(KernelDifferential, AllVariantsMatchScalarEverywhere) {
  for (const Scenario& scenario : scenarios()) {
    SCOPED_TRACE(scenario.name);
    const RunCapture reference = run(
        with_kernel(scenario.config, RoundKernel::kScalar, 1), kSeed,
        kRounds, /*trace=*/false);
    ASSERT_EQ(reference.metrics.size(), kRounds);
    for (std::size_t v = 1; v < std::size(kVariants); ++v) {
      const Variant& variant = kVariants[v];
      const RunCapture capture =
          run(with_kernel(scenario.config, variant.kernel, variant.shards),
              kSeed, kRounds, /*trace=*/false);
      ASSERT_EQ(capture.metrics.size(), kRounds);
      for (std::uint64_t r = 0; r < kRounds; ++r) {
        expect_metrics_eq(reference.metrics[r], capture.metrics[r],
                          variant.name, r);
      }
      expect_snapshot_eq(reference.snapshot, capture.snapshot, variant.name);
      // Wait statistics must match bit for bit — the Welford moments are
      // accumulation-order-sensitive, so this checks that the sharded
      // delete phase records waits in the scalar path's bin order.
      EXPECT_EQ(reference.wait_count, capture.wait_count) << variant.name;
      EXPECT_EQ(reference.wait_mean, capture.wait_mean) << variant.name;
      EXPECT_EQ(reference.wait_stddev, capture.wait_stddev) << variant.name;
      EXPECT_EQ(reference.wait_max, capture.wait_max) << variant.name;
      EXPECT_EQ(reference.wait_q99, capture.wait_q99) << variant.name;
    }
  }
}

#if IBA_TELEMETRY_ENABLED
TEST(KernelDifferential, SpanStreamsAreByteIdentical) {
  for (const Scenario& scenario : scenarios()) {
    SCOPED_TRACE(scenario.name);
    const RunCapture reference = run(
        with_kernel(scenario.config, RoundKernel::kScalar, 1), kSeed,
        kRounds, /*trace=*/true);
    ASSERT_FALSE(reference.spans.empty());
    for (std::size_t v = 1; v < std::size(kVariants); ++v) {
      const Variant& variant = kVariants[v];
      const RunCapture capture =
          run(with_kernel(scenario.config, variant.kernel, variant.shards),
              kSeed, kRounds, /*trace=*/true);
      EXPECT_EQ(reference.spans, capture.spans)
          << variant.name << " on " << scenario.name;
    }
  }
}
#endif

TEST(KernelDifferential, SnapshotResumeCrossesKernels) {
  // A snapshot taken from a sharded bin-major run, resumed on the scalar
  // kernel, must continue exactly like the uninterrupted sharded run.
  const CappedConfig sharded =
      with_kernel(base_config(), RoundKernel::kBinMajor, 7);
  Capped original(sharded, Engine(kSeed));
  for (int r = 0; r < 120; ++r) (void)original.step();
  CappedSnapshot snap = original.snapshot();
  snap.config.kernel = RoundKernel::kScalar;
  snap.config.shards = 1;
  Capped resumed(snap);
  for (int r = 0; r < 120; ++r) {
    const RoundMetrics a = original.step();
    const RoundMetrics b = resumed.step();
    expect_metrics_eq(a, b, "resumed_scalar", a.round);
  }
  expect_snapshot_eq(original.snapshot(), resumed.snapshot(),
                     "resumed_scalar");
}

TEST(KernelDifferential, StepWithChoicesMatchesAcrossKernels) {
  // Caller-supplied choices (the MODCAPPED coupling path) hit the same
  // kernels; all variants must agree ball for ball.
  const CappedConfig config = base_config();
  std::vector<Capped> variants;
  for (const Variant& variant : kVariants) {
    variants.emplace_back(
        with_kernel(config, variant.kernel, variant.shards), Engine(kSeed));
  }
  Engine choice_engine(99);
  std::vector<std::uint32_t> choices;
  for (int r = 0; r < 200; ++r) {
    const std::uint64_t nu = variants.front().balls_to_throw();
    choices.resize(nu);
    for (auto& c : choices) c = iba::rng::bounded32(choice_engine, config.n);
    const RoundMetrics reference = variants.front().step_with_choices(choices);
    for (std::size_t v = 1; v < variants.size(); ++v) {
      const RoundMetrics m = variants[v].step_with_choices(choices);
      expect_metrics_eq(reference, m, kVariants[v].name, reference.round);
    }
  }
  for (std::size_t v = 1; v < variants.size(); ++v) {
    expect_snapshot_eq(variants.front().snapshot(), variants[v].snapshot(),
                       kVariants[v].name);
  }
}

TEST(KernelDifferential, ShardsBeyondBinsAreHarmless) {
  // More shards than bins: trailing ranges are empty; results unchanged.
  CappedConfig tiny = base_config();
  tiny.n = 5;
  tiny.lambda_n = 4;
  const RunCapture reference =
      run(with_kernel(tiny, RoundKernel::kScalar, 1), kSeed, 150, false);
  const RunCapture wide =
      run(with_kernel(tiny, RoundKernel::kBinMajor, 7), kSeed, 150, false);
  for (std::uint64_t r = 0; r < 150; ++r) {
    expect_metrics_eq(reference.metrics[r], wide.metrics[r], "wide", r);
  }
  expect_snapshot_eq(reference.snapshot, wide.snapshot, "wide");
}

TEST(KernelDifferential, ConfigValidationRejectsShardedScalar) {
  CappedConfig config = base_config();
  config.kernel = RoundKernel::kScalar;
  config.shards = 2;
  EXPECT_THROW(config.validate(), iba::ContractViolation);
  config.shards = 0;
  EXPECT_THROW(config.validate(), iba::ContractViolation);
}

}  // namespace
