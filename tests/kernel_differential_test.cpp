// Differential tests of the round kernels: the scalar ball-at-a-time
// path, the bin-major counting-sort kernel, and its sharded execution
// (2 / 4 / 7 / 8 shards, with and without the mmap arena and worker
// pinning) must produce byte-identical trajectories — every
// RoundMetrics field, the waiting-time statistics (including the
// order-sensitive Welford moments), snapshots (pool, bin queues, engine
// state), ball-trace span streams, snapshot-resume behaviour and
// step_with_choices — across deletion disciplines, acceptance orders,
// arrival models and crash-requeue failures.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/capped.hpp"
#include "fault/fault_plan.hpp"
#include "fault/schedule.hpp"
#include "rng/bounded.hpp"
#include "rng/xoshiro256.hpp"
#include "telemetry/ball_trace.hpp"
#include "telemetry/export.hpp"

namespace {

using iba::core::AcceptanceOrder;
using iba::core::ArrivalModel;
using iba::core::Capped;
using iba::core::CappedConfig;
using iba::core::CappedSnapshot;
using iba::core::DeletionDiscipline;
using iba::core::Engine;
using iba::core::FailureMode;
using iba::core::RoundKernel;
using iba::core::RoundMetrics;

struct Scenario {
  const char* name;
  CappedConfig config;
};

CappedConfig base_config() {
  CappedConfig config;
  config.n = 64;
  config.capacity = 2;
  config.lambda_n = 60;
  return config;
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> all;
  all.push_back({"base_fifo_oldest", base_config()});
  {
    auto c = base_config();
    c.deletion = DeletionDiscipline::kLifo;
    all.push_back({"lifo", c});
  }
  {
    auto c = base_config();
    c.deletion = DeletionDiscipline::kUniform;
    all.push_back({"uniform_deletion", c});
  }
  {
    auto c = base_config();
    c.acceptance = AcceptanceOrder::kYoungestFirst;
    all.push_back({"youngest_first", c});
  }
  {
    auto c = base_config();
    c.arrival = ArrivalModel::kBinomial;
    all.push_back({"binomial_arrivals", c});
  }
  {
    auto c = base_config();
    c.arrival = ArrivalModel::kPoisson;
    all.push_back({"poisson_arrivals", c});
  }
  {
    auto c = base_config();
    c.failure_probability = 0.2;
    all.push_back({"failures_skip", c});
  }
  {
    auto c = base_config();
    c.failure_probability = 0.2;
    c.failure_mode = FailureMode::kCrashRequeue;
    c.deletion = DeletionDiscipline::kUniform;
    all.push_back({"failures_crash_requeue", c});
  }
  {
    auto c = base_config();
    c.capacity = Capped::kInfiniteCapacity;
    all.push_back({"infinite_capacity", c});
  }
  {
    auto c = base_config();
    c.capacity = 1;
    c.lambda_n = 64;  // λ = 1, maximal pool pressure
    all.push_back({"c1_lambda1", c});
  }
  {
    auto c = base_config();
    c.n = 97;  // prime: 7 shards get uneven ranges
    c.capacity = 3;
    c.lambda_n = 90;
    all.push_back({"prime_n", c});
  }
  return all;
}

CappedConfig with_kernel(CappedConfig config, RoundKernel kernel,
                         std::uint32_t shards) {
  config.kernel = kernel;
  config.shards = shards;
  return config;
}

struct Variant {
  const char* name;
  RoundKernel kernel;
  std::uint32_t shards;
  bool arena = false;  ///< mmap arena + MADV_HUGEPAGE — must be byte-inert
  bool pin = false;    ///< worker CPU pinning — must be byte-inert
};

CappedConfig with_variant(CappedConfig config, const Variant& variant) {
  config.kernel = variant.kernel;
  config.shards = variant.shards;
  config.arena.enabled = variant.arena;
  config.arena.huge_pages = variant.arena;  // exercise the madvise path
  config.pin_threads = variant.pin;
  return config;
}

constexpr Variant kVariants[] = {
    {"scalar", RoundKernel::kScalar, 1},
    {"bin_major", RoundKernel::kBinMajor, 1},
    {"bin_major_2", RoundKernel::kBinMajor, 2},
    {"bin_major_4_arena", RoundKernel::kBinMajor, 4, /*arena=*/true},
    {"bin_major_7", RoundKernel::kBinMajor, 7},
    {"bin_major_8_arena_pin", RoundKernel::kBinMajor, 8, /*arena=*/true,
     /*pin=*/true},
};

/// Everything observable from one run, for exact comparison.
struct RunCapture {
  std::vector<RoundMetrics> metrics;
  CappedSnapshot snapshot;
  std::uint64_t wait_count = 0;
  double wait_mean = 0.0;
  double wait_stddev = 0.0;
  std::uint64_t wait_max = 0;
  std::uint64_t wait_q99 = 0;
  std::string spans;
};

RunCapture run(const CappedConfig& config, std::uint64_t seed,
               std::uint64_t rounds, bool trace) {
  Capped process(config, Engine(seed));
  iba::telemetry::BallTraceConfig trace_config;
  trace_config.seed = seed;
  trace_config.sample_rate = 1.0;
  trace_config.completed_capacity = 1u << 20;
  iba::telemetry::BallTracer tracer(trace_config);
  if (trace) process.set_ball_tracer(&tracer);

  RunCapture capture;
  capture.metrics.reserve(rounds);
  for (std::uint64_t r = 0; r < rounds; ++r) {
    capture.metrics.push_back(process.step());
  }
  capture.snapshot = process.snapshot();
  capture.wait_count = process.waits().count();
  capture.wait_mean = process.waits().mean();
  capture.wait_stddev = process.waits().stddev();
  capture.wait_max = process.waits().max();
  capture.wait_q99 = process.waits().quantile_upper_bound(0.99);
  if (trace) {
    std::ostringstream out;
    for (const auto& span : tracer.completed()) {
      iba::telemetry::write_span_json(span, out);
    }
    capture.spans = out.str();
  }
  return capture;
}

void expect_metrics_eq(const RoundMetrics& a, const RoundMetrics& b,
                       const char* variant, std::uint64_t round) {
  EXPECT_EQ(a.round, b.round) << variant << " round " << round;
  EXPECT_EQ(a.generated, b.generated) << variant << " round " << round;
  EXPECT_EQ(a.thrown, b.thrown) << variant << " round " << round;
  EXPECT_EQ(a.accepted, b.accepted) << variant << " round " << round;
  EXPECT_EQ(a.deleted, b.deleted) << variant << " round " << round;
  EXPECT_EQ(a.pool_size, b.pool_size) << variant << " round " << round;
  EXPECT_EQ(a.total_load, b.total_load) << variant << " round " << round;
  EXPECT_EQ(a.max_load, b.max_load) << variant << " round " << round;
  EXPECT_EQ(a.empty_bins, b.empty_bins) << variant << " round " << round;
  EXPECT_EQ(a.wait_count, b.wait_count) << variant << " round " << round;
  EXPECT_EQ(a.wait_sum, b.wait_sum) << variant << " round " << round;
  EXPECT_EQ(a.wait_max, b.wait_max) << variant << " round " << round;
  EXPECT_EQ(a.requeued, b.requeued) << variant << " round " << round;
  EXPECT_EQ(a.oldest_pool_age, b.oldest_pool_age)
      << variant << " round " << round;
  EXPECT_EQ(a.shed, b.shed) << variant << " round " << round;
  EXPECT_EQ(a.deferred, b.deferred) << variant << " round " << round;
  EXPECT_EQ(a.faulted_bins, b.faulted_bins) << variant << " round " << round;
}

void expect_snapshot_eq(const CappedSnapshot& a, const CappedSnapshot& b,
                        const char* variant) {
  EXPECT_EQ(a.round, b.round) << variant;
  EXPECT_EQ(a.generated_total, b.generated_total) << variant;
  EXPECT_EQ(a.deleted_total, b.deleted_total) << variant;
  EXPECT_EQ(a.engine_state, b.engine_state) << variant;
  ASSERT_EQ(a.pool.size(), b.pool.size()) << variant;
  for (std::size_t i = 0; i < a.pool.size(); ++i) {
    EXPECT_EQ(a.pool[i].label, b.pool[i].label) << variant << " bucket " << i;
    EXPECT_EQ(a.pool[i].count, b.pool[i].count) << variant << " bucket " << i;
  }
  EXPECT_EQ(a.bin_queues, b.bin_queues) << variant;
  EXPECT_EQ(a.shed_total, b.shed_total) << variant;
  ASSERT_EQ(a.deferred.size(), b.deferred.size()) << variant;
  for (std::size_t i = 0; i < a.deferred.size(); ++i) {
    EXPECT_EQ(a.deferred[i].label, b.deferred[i].label) << variant;
    EXPECT_EQ(a.deferred[i].count, b.deferred[i].count) << variant;
    EXPECT_EQ(a.deferred[i].ready, b.deferred[i].ready) << variant;
  }
  EXPECT_EQ(a.waits.count, b.waits.count) << variant;
  EXPECT_EQ(a.waits.sum, b.waits.sum) << variant;
  EXPECT_EQ(a.waits.sumsq_hi, b.waits.sumsq_hi) << variant;
  EXPECT_EQ(a.waits.sumsq_lo, b.waits.sumsq_lo) << variant;
  EXPECT_EQ(a.waits.max, b.waits.max) << variant;
  EXPECT_EQ(a.waits.histogram, b.waits.histogram) << variant;
  EXPECT_TRUE(a.controller == b.controller)
      << variant << " controller state diverged";
}

constexpr std::uint64_t kRounds = 250;
constexpr std::uint64_t kSeed = 20210705;

TEST(KernelDifferential, AllVariantsMatchScalarEverywhere) {
  for (const Scenario& scenario : scenarios()) {
    SCOPED_TRACE(scenario.name);
    const RunCapture reference = run(
        with_kernel(scenario.config, RoundKernel::kScalar, 1), kSeed,
        kRounds, /*trace=*/false);
    ASSERT_EQ(reference.metrics.size(), kRounds);
    for (std::size_t v = 1; v < std::size(kVariants); ++v) {
      const Variant& variant = kVariants[v];
      const RunCapture capture =
          run(with_variant(scenario.config, variant),
              kSeed, kRounds, /*trace=*/false);
      ASSERT_EQ(capture.metrics.size(), kRounds);
      for (std::uint64_t r = 0; r < kRounds; ++r) {
        expect_metrics_eq(reference.metrics[r], capture.metrics[r],
                          variant.name, r);
      }
      expect_snapshot_eq(reference.snapshot, capture.snapshot, variant.name);
      // Wait statistics must match bit for bit — the Welford moments are
      // accumulation-order-sensitive, so this checks that the sharded
      // delete phase records waits in the scalar path's bin order.
      EXPECT_EQ(reference.wait_count, capture.wait_count) << variant.name;
      EXPECT_EQ(reference.wait_mean, capture.wait_mean) << variant.name;
      EXPECT_EQ(reference.wait_stddev, capture.wait_stddev) << variant.name;
      EXPECT_EQ(reference.wait_max, capture.wait_max) << variant.name;
      EXPECT_EQ(reference.wait_q99, capture.wait_q99) << variant.name;
    }
  }
}

#if IBA_TELEMETRY_ENABLED
TEST(KernelDifferential, SpanStreamsAreByteIdentical) {
  for (const Scenario& scenario : scenarios()) {
    SCOPED_TRACE(scenario.name);
    const RunCapture reference = run(
        with_kernel(scenario.config, RoundKernel::kScalar, 1), kSeed,
        kRounds, /*trace=*/true);
    ASSERT_FALSE(reference.spans.empty());
    for (std::size_t v = 1; v < std::size(kVariants); ++v) {
      const Variant& variant = kVariants[v];
      const RunCapture capture =
          run(with_variant(scenario.config, variant),
              kSeed, kRounds, /*trace=*/true);
      EXPECT_EQ(reference.spans, capture.spans)
          << variant.name << " on " << scenario.name;
    }
  }
}
#endif

TEST(KernelDifferential, SnapshotResumeCrossesKernels) {
  // A snapshot taken from a sharded bin-major run, resumed on the scalar
  // kernel, must continue exactly like the uninterrupted sharded run.
  const CappedConfig sharded =
      with_kernel(base_config(), RoundKernel::kBinMajor, 7);
  Capped original(sharded, Engine(kSeed));
  for (int r = 0; r < 120; ++r) (void)original.step();
  CappedSnapshot snap = original.snapshot();
  snap.config.kernel = RoundKernel::kScalar;
  snap.config.shards = 1;
  Capped resumed(snap);
  for (int r = 0; r < 120; ++r) {
    const RoundMetrics a = original.step();
    const RoundMetrics b = resumed.step();
    expect_metrics_eq(a, b, "resumed_scalar", a.round);
  }
  expect_snapshot_eq(original.snapshot(), resumed.snapshot(),
                     "resumed_scalar");
}

TEST(KernelDifferential, StepWithChoicesMatchesAcrossKernels) {
  // Caller-supplied choices (the MODCAPPED coupling path) hit the same
  // kernels; all variants must agree ball for ball.
  const CappedConfig config = base_config();
  std::vector<Capped> variants;
  for (const Variant& variant : kVariants) {
    variants.emplace_back(
        with_variant(config, variant), Engine(kSeed));
  }
  Engine choice_engine(99);
  std::vector<std::uint32_t> choices;
  for (int r = 0; r < 200; ++r) {
    const std::uint64_t nu = variants.front().balls_to_throw();
    choices.resize(nu);
    for (auto& c : choices) c = iba::rng::bounded32(choice_engine, config.n);
    const RoundMetrics reference = variants.front().step_with_choices(choices);
    for (std::size_t v = 1; v < variants.size(); ++v) {
      const RoundMetrics m = variants[v].step_with_choices(choices);
      expect_metrics_eq(reference, m, kVariants[v].name, reference.round);
    }
  }
  for (std::size_t v = 1; v < variants.size(); ++v) {
    expect_snapshot_eq(variants.front().snapshot(), variants[v].snapshot(),
                       kVariants[v].name);
  }
}

TEST(KernelDifferential, ShardsBeyondBinsAreHarmless) {
  // More shards than bins: trailing ranges are empty; results unchanged.
  CappedConfig tiny = base_config();
  tiny.n = 5;
  tiny.lambda_n = 4;
  const RunCapture reference =
      run(with_kernel(tiny, RoundKernel::kScalar, 1), kSeed, 150, false);
  const RunCapture wide =
      run(with_kernel(tiny, RoundKernel::kBinMajor, 7), kSeed, 150, false);
  for (std::uint64_t r = 0; r < 150; ++r) {
    expect_metrics_eq(reference.metrics[r], wide.metrics[r], "wide", r);
  }
  expect_snapshot_eq(reference.snapshot, wide.snapshot, "wide");
}

// -- fault injection: every kernel variant must honor an identical
// FaultPlan byte for byte, across every failure mode -----------------

constexpr const char* kFaultSchedules[] = {
    "crash@10:bins=0-15,down=8",
    "crash@10:bins=0-15,down=3-30,retain",
    "crash-fullest@20:k=9,down=5-15",
    "degrade@5:bins=8-40,cap=1,for=60",
    "straggle:bins=3+17-25,period=3,phase=1",
    "random-crash:p=0.01,down=4-12",
    "random-crash:p=0.01,down=6,retain,from=30,until=120",
    "rolling@15:width=10,gap=12,count=5,down=10",
    // everything at once: outages, degradation, stragglers, coins
    "crash@10:bins=0-7,down=40;degrade@20:bins=30-60,cap=1,for=80;"
    "straggle:bins=61-63,period=2;random-crash:p=0.005,down=3-9",
};

RunCapture run_with_faults(const CappedConfig& config, const char* schedule,
                           std::uint64_t seed, std::uint64_t rounds) {
  Capped process(config, Engine(seed));
  iba::fault::FaultPlan plan(iba::fault::parse_schedule(schedule), config.n,
                             config.capacity, seed + 7);
  process.set_fault_plan(&plan);
  RunCapture capture;
  capture.metrics.reserve(rounds);
  for (std::uint64_t r = 0; r < rounds; ++r) {
    capture.metrics.push_back(process.step());
  }
  capture.snapshot = process.snapshot();
  capture.wait_count = process.waits().count();
  capture.wait_mean = process.waits().mean();
  capture.wait_stddev = process.waits().stddev();
  capture.wait_max = process.waits().max();
  capture.wait_q99 = process.waits().quantile_upper_bound(0.99);
  return capture;
}

TEST(FaultDifferential, AllVariantsMatchScalarUnderEverySchedule) {
  // Fault schedules cross every failure-mode scenario: the fault checks
  // must precede the failure coins in every kernel, or streams diverge.
  std::vector<Scenario> faulty;
  faulty.push_back({"base", base_config()});
  {
    auto c = base_config();
    c.failure_probability = 0.2;
    faulty.push_back({"failures_skip", c});
  }
  {
    auto c = base_config();
    c.failure_probability = 0.2;
    c.failure_mode = FailureMode::kCrashRequeue;
    faulty.push_back({"failures_crash_requeue", c});
  }
  {
    auto c = base_config();
    c.deletion = DeletionDiscipline::kUniform;
    faulty.push_back({"uniform_deletion", c});
  }
  for (const Scenario& scenario : faulty) {
    for (const char* schedule : kFaultSchedules) {
      SCOPED_TRACE(std::string(scenario.name) + " / " + schedule);
      const RunCapture reference = run_with_faults(
          with_kernel(scenario.config, RoundKernel::kScalar, 1), schedule,
          kSeed, kRounds);
      // Faults actually fire: at least one round reports faulted bins
      // (degrade-only schedules report 0 — they never stop service).
      for (std::size_t v = 1; v < std::size(kVariants); ++v) {
        const Variant& variant = kVariants[v];
        const RunCapture capture = run_with_faults(
            with_variant(scenario.config, variant),
            schedule, kSeed, kRounds);
        for (std::uint64_t r = 0; r < kRounds; ++r) {
          expect_metrics_eq(reference.metrics[r], capture.metrics[r],
                            variant.name, r);
        }
        expect_snapshot_eq(reference.snapshot, capture.snapshot,
                           variant.name);
        EXPECT_EQ(reference.wait_stddev, capture.wait_stddev) << variant.name;
      }
    }
  }
}

TEST(FaultDifferential, EmptyPlanLeavesTrajectoryUntouched) {
  // A plan whose events never fire must not perturb the allocation RNG:
  // the trajectory equals a run with no plan attached at all.
  const CappedConfig config = base_config();
  const RunCapture bare =
      run(config, kSeed, kRounds, /*trace=*/false);
  const RunCapture planned = run_with_faults(
      config, "crash@100000:bins=0-3,down=5", kSeed, kRounds);
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    expect_metrics_eq(bare.metrics[r], planned.metrics[r], "empty_plan", r);
  }
  expect_snapshot_eq(bare.snapshot, planned.snapshot, "empty_plan");
}

TEST(FaultDifferential, KillAndResumeReproducesUninterruptedRun) {
  // Snapshot process + plan state mid-outage, rebuild both, continue:
  // byte-identical to the uninterrupted run — including on a different
  // kernel and shard count.
  const char* schedule =
      "crash@100:bins=0-31,down=30-60;random-crash:p=0.01,down=10-20;"
      "degrade@110:bins=40-50,cap=1,for=100";
  const CappedConfig config =
      with_kernel(base_config(), RoundKernel::kBinMajor, 2);

  Capped uninterrupted(config, Engine(kSeed));
  iba::fault::FaultPlan plan(iba::fault::parse_schedule(schedule), config.n,
                             config.capacity, 99);
  uninterrupted.set_fault_plan(&plan);
  for (int r = 0; r < 120; ++r) (void)uninterrupted.step();  // mid-outage

  CappedSnapshot snap = uninterrupted.snapshot();
  const iba::fault::FaultPlan::State plan_state = plan.state();
  EXPECT_GT(plan.down_bins(), 0u) << "checkpoint should be mid-outage";

  snap.config.kernel = RoundKernel::kScalar;
  snap.config.shards = 1;
  Capped resumed(snap);
  iba::fault::FaultPlan resumed_plan(iba::fault::parse_schedule(schedule),
                                     config.n, config.capacity, 99);
  resumed_plan.restore(plan_state);
  resumed.set_fault_plan(&resumed_plan);

  for (int r = 0; r < 150; ++r) {
    const RoundMetrics a = uninterrupted.step();
    const RoundMetrics b = resumed.step();
    expect_metrics_eq(a, b, "fault_resume", a.round);
  }
  expect_snapshot_eq(uninterrupted.snapshot(), resumed.snapshot(),
                     "fault_resume");
  EXPECT_EQ(plan.crashes_total(), resumed_plan.crashes_total());
  EXPECT_EQ(plan.repairs_total(), resumed_plan.repairs_total());
}

// -- adaptive control: the controller actuates at round boundaries from
// kernel-independent estimator state, so controller-driven capacity
// changes (including mid-run shrinks and their multi-round drains) must
// keep every kernel variant byte-identical --------------------------

/// λ-drop scenario: saturated (λ = 1) long enough for the sweet spot to
/// grow the buffer, then a collapse to λ ≈ 0.31 that forces a shrink
/// with bins draining from well above the new capacity.
CappedConfig control_config(iba::control::Policy policy) {
  CappedConfig config = base_config();
  config.capacity = 2;
  config.lambda_n = 64;
  config.control.policy = policy;
  config.control.c_max = 8;
  config.control.window = 16;
  config.control.cooldown = 8;
  return config;
}

RunCapture run_lambda_drop(const CappedConfig& config, std::uint64_t seed,
                           std::uint64_t rounds) {
  Capped process(config, Engine(seed));
  RunCapture capture;
  capture.metrics.reserve(rounds);
  for (std::uint64_t r = 0; r < rounds; ++r) {
    if (process.round() + 1 == 100) process.set_lambda_n(20);
    capture.metrics.push_back(process.step());
  }
  capture.snapshot = process.snapshot();
  capture.wait_count = process.waits().count();
  capture.wait_mean = process.waits().mean();
  capture.wait_stddev = process.waits().stddev();
  capture.wait_max = process.waits().max();
  capture.wait_q99 = process.waits().quantile_upper_bound(0.99);
  return capture;
}

TEST(ControlDifferential, AllVariantsMatchScalarUnderEveryPolicy) {
  for (const iba::control::Policy policy :
       {iba::control::Policy::kStatic, iba::control::Policy::kSweetSpot,
        iba::control::Policy::kAimd}) {
    SCOPED_TRACE(std::string("policy=") +
                 std::string(iba::control::to_string(policy)));
    const CappedConfig config = control_config(policy);
    const RunCapture reference = run_lambda_drop(
        with_kernel(config, RoundKernel::kScalar, 1), kSeed, kRounds);
    for (std::size_t v = 1; v < std::size(kVariants); ++v) {
      const Variant& variant = kVariants[v];
      const RunCapture capture = run_lambda_drop(
          with_variant(config, variant), kSeed,
          kRounds);
      for (std::uint64_t r = 0; r < kRounds; ++r) {
        expect_metrics_eq(reference.metrics[r], capture.metrics[r],
                          variant.name, r);
      }
      expect_snapshot_eq(reference.snapshot, capture.snapshot, variant.name);
      EXPECT_EQ(reference.wait_stddev, capture.wait_stddev) << variant.name;
    }
  }
}

TEST(ControlDifferential, StaticControlIsInert) {
  // --control static must not perturb the trajectory at all: byte
  // identity against a run with the control plane disabled, on every
  // kernel (the golden-regression suite relies on this).
  for (const Variant& variant : kVariants) {
    SCOPED_TRACE(variant.name);
    CappedConfig off = with_kernel(base_config(), variant.kernel,
                                   variant.shards);
    CappedConfig on = off;
    on.control.policy = iba::control::Policy::kStatic;
    const RunCapture bare = run(off, kSeed, kRounds, /*trace=*/false);
    const RunCapture controlled = run(on, kSeed, kRounds, /*trace=*/false);
    for (std::uint64_t r = 0; r < kRounds; ++r) {
      expect_metrics_eq(bare.metrics[r], controlled.metrics[r], variant.name,
                        r);
    }
    EXPECT_EQ(bare.snapshot.engine_state, controlled.snapshot.engine_state)
        << variant.name;
    EXPECT_EQ(bare.snapshot.bin_queues, controlled.snapshot.bin_queues)
        << variant.name;
    EXPECT_EQ(bare.wait_stddev, controlled.wait_stddev) << variant.name;
  }
}

TEST(ControlDifferential, KillAndResumeMidShrinkDrain) {
  // Snapshot at the exact round where the controller has shrunk the
  // capacity but bins still hold more than it (the drain window), then
  // resume on a different kernel: byte-identical continuation,
  // including the controller's own state.
  const CappedConfig config = with_kernel(
      control_config(iba::control::Policy::kSweetSpot),
      RoundKernel::kBinMajor, 2);

  // Scout: find the first post-shrink round with an overfull bin.
  std::uint64_t drain_round = 0;
  {
    Capped scout(config, Engine(kSeed));
    for (std::uint64_t r = 0; r < kRounds; ++r) {
      if (scout.round() + 1 == 100) scout.set_lambda_n(20);
      (void)scout.step();
      bool overfull = false;
      for (std::uint32_t bin = 0; bin < scout.n(); ++bin) {
        if (scout.load(bin) > scout.capacity()) overfull = true;
      }
      if (overfull) {
        drain_round = scout.round();
        break;
      }
    }
  }
  ASSERT_GT(drain_round, 100u) << "scenario never produced a draining bin";

  Capped uninterrupted(config, Engine(kSeed));
  for (std::uint64_t r = 0; r < drain_round; ++r) {
    if (uninterrupted.round() + 1 == 100) uninterrupted.set_lambda_n(20);
    (void)uninterrupted.step();
  }
  CappedSnapshot snap = uninterrupted.snapshot();
  snap.config.kernel = RoundKernel::kScalar;
  snap.config.shards = 1;
  Capped resumed(snap);
  ASSERT_NE(resumed.controller(), nullptr);
  for (int r = 0; r < 150; ++r) {
    const RoundMetrics a = uninterrupted.step();
    const RoundMetrics b = resumed.step();
    expect_metrics_eq(a, b, "control_resume", a.round);
  }
  expect_snapshot_eq(uninterrupted.snapshot(), resumed.snapshot(),
                     "control_resume");
  // restore() carries the counters, so totals line up exactly.
  EXPECT_EQ(uninterrupted.controller()->changes_total(),
            resumed.controller()->changes_total());
}

TEST(KernelDifferential, LargeNKillAndResumeWithArena) {
  // The parallel scatter, arena and pinning at realistic scale: at
  // n = 10^7, an arena-backed (huge-paged), pinned, 8-shard run must
  // match the single-shard fused kernel round for round; a snapshot
  // taken mid-flight and resumed under a different execution
  // configuration (4 shards, no arena) must continue byte-identically.
  // Few rounds — byte identity does not need steady state.
  CappedConfig config;
  config.n = 10'000'000;
  config.capacity = 2;
  config.lambda_n = 9'500'000;
  config.kernel = RoundKernel::kBinMajor;
  config.shards = 1;

  constexpr int kLargeRounds = 4;
  Capped reference(config, Engine(kSeed));
  std::vector<RoundMetrics> reference_metrics;
  for (int r = 0; r < kLargeRounds; ++r) {
    reference_metrics.push_back(reference.step());
  }

  CappedConfig sharded = config;
  sharded.shards = 8;
  sharded.arena.enabled = true;
  sharded.arena.huge_pages = true;
  sharded.pin_threads = true;
  Capped uninterrupted(sharded, Engine(kSeed));
  for (int r = 0; r < kLargeRounds / 2; ++r) {
    expect_metrics_eq(reference_metrics[static_cast<std::size_t>(r)],
                      uninterrupted.step(), "large_n_shards8", r);
  }

  CappedSnapshot snap = uninterrupted.snapshot();
  snap.config.shards = 4;  // execution hints are not process state
  snap.config.arena.enabled = false;
  snap.config.arena.huge_pages = false;
  snap.config.pin_threads = false;
  Capped resumed(snap);

  for (int r = kLargeRounds / 2; r < kLargeRounds; ++r) {
    const RoundMetrics expected =
        reference_metrics[static_cast<std::size_t>(r)];
    expect_metrics_eq(expected, uninterrupted.step(), "large_n_shards8", r);
    expect_metrics_eq(expected, resumed.step(), "large_n_resume4", r);
  }
  expect_snapshot_eq(reference.snapshot(), uninterrupted.snapshot(),
                     "large_n_shards8");
  expect_snapshot_eq(reference.snapshot(), resumed.snapshot(),
                     "large_n_resume4");
}

TEST(KernelDifferential, ConfigValidationRejectsShardedScalar) {
  CappedConfig config = base_config();
  config.kernel = RoundKernel::kScalar;
  config.shards = 2;
  EXPECT_THROW(config.validate(), iba::ContractViolation);
  config.shards = 0;
  EXPECT_THROW(config.validate(), iba::ContractViolation);
}

}  // namespace
