// Executable validation of the paper's probabilistic building blocks:
// the miss probability behind Lemmas 2/7, the empty-bins concentration
// of Lemma 10, and — most importantly — the three drain stages of the
// waiting-time analysis (Lemmas 3, 4, 5) measured on the real process.
//
// m(t, t') (the survivors of M(t) still unallocated at the end of round
// t') is exactly pool.count_older_or_equal(t) at round t', which the
// AgedPool exposes directly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "analysis/bounds.hpp"
#include "stats/linear_fit.hpp"
#include "analysis/tail_bounds.hpp"
#include "core/capped.hpp"
#include "core/static_allocation.hpp"
#include "rng/seed.hpp"

namespace {

using namespace iba;
using core::Capped;
using core::CappedConfig;
using core::Engine;

TEST(MissProbability, EmpiricalMatchesFormula) {
  // Throw m balls into n bins repeatedly; the fraction of empty bins
  // estimates the per-bin miss probability (1 − 1/n)^m.
  const std::uint32_t n = 1024;
  for (const std::uint64_t m : {512ull, 1024ull, 3072ull}) {
    double empty_fraction = 0;
    const int trials = 200;
    for (int trial = 0; trial < trials; ++trial) {
      const auto result = core::one_choice(
          n, m, Engine(rng::derive_seed(55, static_cast<std::uint64_t>(trial)) + m));
      empty_fraction += static_cast<double>(result.empty_bins) / n;
    }
    empty_fraction /= trials;
    const double predicted = analysis::miss_probability(n, m);
    EXPECT_NEAR(empty_fraction, predicted, 0.015) << "m=" << m;
  }
}

TEST(EmptyBins, ConcentrationWithinLemma10Band) {
  // Lemma 10: deviations of the empty-bin count beyond a few standard
  // deviations are exponentially unlikely. With λ chosen so the bound is
  // ≤ 1e-6, no trial out of 300 should ever exceed it.
  const std::uint32_t n = 4096;
  const std::uint64_t m = n;
  const double expected = analysis::expected_empty_bins(n, m);
  // Find a deviation where Lemma 10 gives probability < 1e-6.
  double dev = 10;
  while (analysis::empty_bins_deviation_bound(n, expected, dev) > 1e-6) {
    dev += 10;
  }
  for (int trial = 0; trial < 300; ++trial) {
    const auto result = core::one_choice(
        n, m, Engine(rng::derive_seed(77, static_cast<std::uint64_t>(trial))));
    ASSERT_LT(std::abs(static_cast<double>(result.empty_bins) - expected),
              dev)
        << "trial " << trial;
  }
}

// Lemma 2's key inequality: with ≥ m* balls thrown per round, the
// per-round deletion failure probability is at most e^(−2)·(1−λ).
TEST(Lemma2, FailedDeletionRateBelowBound) {
  const std::uint32_t n = 2048;
  const double lambda = 0.75;
  const auto m_star = static_cast<std::uint64_t>(
      analysis::m_star_unit(n, lambda));
  double miss_fraction = 0;
  const int trials = 200;
  for (int trial = 0; trial < trials; ++trial) {
    const auto result = core::one_choice(
        n, m_star, Engine(rng::derive_seed(99, static_cast<std::uint64_t>(trial))));
    miss_fraction += static_cast<double>(result.empty_bins) / n;
  }
  miss_fraction /= trials;
  EXPECT_LE(miss_fraction, std::exp(-2.0) * (1.0 - lambda) * 1.05);
}

namespace drain {

// Runs CAPPED(c, λ) to steady state, marks the pool at some round t,
// and returns the survivor counts m(t, t+k) for k = 0, 1, 2, ...
std::vector<std::uint64_t> survivor_series(std::uint32_t n, std::uint32_t c,
                                           std::uint64_t lambda_n,
                                           std::uint64_t seed,
                                           std::size_t horizon) {
  CappedConfig config;
  config.n = n;
  config.capacity = c;
  config.lambda_n = lambda_n;
  Capped process(config, Engine(seed));
  for (int i = 0; i < 3000; ++i) (void)process.step();  // steady state

  const std::uint64_t t = process.round();
  std::vector<std::uint64_t> series;
  series.push_back(process.pool().count_older_or_equal(t));  // m(t, t)
  for (std::size_t k = 1; k <= horizon; ++k) {
    (void)process.step();
    series.push_back(process.pool().count_older_or_equal(t));
  }
  return series;
}

}  // namespace drain

struct DrainParam {
  std::uint32_t n;
  std::uint32_t c;
  std::uint64_t lambda_n;
  std::uint64_t seed;
};

class DrainStages : public ::testing::TestWithParam<DrainParam> {};

TEST_P(DrainStages, LemmasThreeFourFiveHoldOnTheRealProcess) {
  const auto p = GetParam();
  const double n = p.n;
  const auto series =
      drain::survivor_series(p.n, p.c, p.lambda_n, p.seed, 200);

  const std::uint64_t m_t = series[0];

  // Lemma 3: within Δ = m(t)/(n − n/e) rounds, survivors drop to ≤ 2n.
  const auto delta3 = static_cast<std::size_t>(
      std::ceil(static_cast<double>(m_t) / (n - n / std::exp(1.0))));
  ASSERT_LT(delta3, series.size());
  EXPECT_LE(series[delta3], 2 * p.n) << "Lemma 3 stage";

  // Lemma 4: 19 further rounds push survivors to ≤ n/(2e).
  const std::size_t delta4 = delta3 + 19;
  ASSERT_LT(delta4, series.size());
  EXPECT_LE(static_cast<double>(series[delta4]), n / (2 * std::exp(1.0)))
      << "Lemma 4 stage";

  // Lemma 5: log log n + O(1) further rounds drain the rest. The proof's
  // O(1) is small; allow a slack of 8 rounds.
  const auto loglog = static_cast<std::size_t>(
      std::ceil(analysis::log_log_n(p.n)));
  const std::size_t delta5 = delta4 + loglog + 8;
  ASSERT_LT(delta5, series.size());
  EXPECT_EQ(series[delta5], 0u) << "Lemma 5 stage";

  // Monotonicity: m(t, t') never increases in t'.
  for (std::size_t k = 1; k < series.size(); ++k) {
    ASSERT_LE(series[k], series[k - 1]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, DrainStages,
    ::testing::Values(DrainParam{1024, 1, 768, 1},
                      DrainParam{1024, 1, 1008, 2},
                      DrainParam{2048, 2, 1536, 3},
                      DrainParam{2048, 3, 2016, 4},
                      DrainParam{4096, 2, 4032, 5},
                      DrainParam{1024, 4, 1008, 6}));

TEST(LayeredInduction, BetaRecursionDominatesEmpirically) {
  // Lemma 5's layered induction: β_0 = n/(2e), β_{i+1} = e·β_i²/n should
  // upper-bound the survivor counts once they fall below n/(2e) —
  // checked on a real drain at high λ.
  const std::uint32_t n = 4096;
  const auto series = drain::survivor_series(n, 1, 4032, 11, 200);
  // Find the first k with survivors ≤ n/(2e).
  const double beta0 = n / (2 * std::exp(1.0));
  std::size_t start = 0;
  while (start < series.size() &&
         static_cast<double>(series[start]) > beta0) {
    ++start;
  }
  ASSERT_LT(start, series.size());
  double beta = beta0;
  for (std::size_t i = 0; start + i < series.size(); ++i) {
    // Stop once the recursion's guarantee window ends (β below 1 ball).
    EXPECT_LE(static_cast<double>(series[start + i]), std::max(beta, 8.0))
        << "layer " << i;
    if (beta < 1.0) break;
    beta = std::exp(1.0) * beta * beta / n;
  }
}

TEST(LinearFitSanity, RecoversKnownLine) {
  // (Placed here because the figure benches rely on it to check slopes.)
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.5 * i - 2.0);
  }
  const auto fit = iba::stats::fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 3.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -2.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);

  const auto degenerate = iba::stats::fit_line({2, 2, 2}, {1, 2, 3});
  EXPECT_EQ(degenerate.slope, 0.0);
  EXPECT_NEAR(degenerate.intercept, 2.0, 1e-12);
  EXPECT_EQ(iba::stats::fit_line({}, {}).slope, 0.0);
}

}  // namespace
