// TimeSeries: downsampling exactness (tier sums == full-resolution
// sums), cadence folding, ring bounding, delta-coded rendering, and the
// state round-trip the checkpoint sidecar depends on. Everything that
// needs recorded samples is skipped under -DIBA_TELEMETRY=OFF, where
// observe() compiles to a no-op.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/timeseries.hpp"

namespace iba::telemetry {
namespace {

// Deterministic but non-trivial per-round sample so folds are visible.
TimeSeriesSample make_sample(std::uint64_t round) {
  TimeSeriesSample s;
  s.round = round;
  s.pool_size = 300 + (round * 7) % 97;
  s.total_load = 500 + (round * 13) % 211;
  s.max_load = 1 + (round % 5);
  s.generated = 800 + (round * 31) % 61;
  s.deleted = 790 + (round * 17) % 59;
  s.shed = round % 3;
  s.deferred = round % 4;
  s.requeued = round % 2;
  s.faulted_bins = (round % 50 == 0) ? 8 : 0;
  s.capacity = 2;
  s.lambda_hat_micro = 937500 + (round % 11);
  s.control_changes = round / 100;
  s.wait_p50 = 1;
  s.wait_p95 = 2;
  s.wait_p99 = 4;
  return s;
}

std::size_t column_index(const char* name) {
  const auto& names = TimeSeries::column_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (std::string(names[i]) == name) return i;
  }
  ADD_FAILURE() << "unknown column " << name;
  return 0;
}

TEST(TimeSeries, ColumnMetadataIsConsistent) {
  EXPECT_EQ(TimeSeries::column_names().size(), TimeSeries::kColumns);
  EXPECT_EQ(TimeSeries::column_aggs().size(), TimeSeries::kColumns);
  EXPECT_EQ(column_index("round"), 0u);
  EXPECT_EQ(TimeSeries::column_aggs()[column_index("generated")],
            TimeSeries::Agg::kSum);
  EXPECT_EQ(TimeSeries::column_aggs()[column_index("pool_size")],
            TimeSeries::Agg::kLast);
  EXPECT_EQ(TimeSeries::column_aggs()[column_index("max_load")],
            TimeSeries::Agg::kMax);
}

TEST(TimeSeries, TierStridesArePowersOfKFold) {
  TimeSeries series({.cadence = 4, .tier_capacity = 8});
  EXPECT_EQ(series.tier_stride(0), 4u);
  EXPECT_EQ(series.tier_stride(1), 64u);
  EXPECT_EQ(series.tier_stride(2), 1024u);
}

// The core exactness contract: for a kSum column, any coarser tier
// integrates the flow over its covered rounds exactly; for kLast the
// newest value wins; for kMax the window maximum survives.
TEST(TimeSeries, DownsamplingIsExact) {
  if (!TimeSeries::kEnabled) GTEST_SKIP() << "telemetry compiled out";
  const std::uint64_t rounds = TimeSeries::kFold * TimeSeries::kFold * 3;
  TimeSeries series({.cadence = 1, .tier_capacity = 4096});
  std::vector<TimeSeriesSample> fed;
  for (std::uint64_t r = 1; r <= rounds; ++r) {
    fed.push_back(make_sample(r));
    series.observe(fed.back());
  }
  ASSERT_EQ(series.tier_retained(0), rounds);
  ASSERT_EQ(series.tier_retained(1), rounds / TimeSeries::kFold);
  ASSERT_EQ(series.tier_retained(2),
            rounds / (TimeSeries::kFold * TimeSeries::kFold));

  const std::size_t gen = column_index("generated");
  for (int tier = 0; tier < TimeSeries::kTiers; ++tier) {
    const std::vector<std::uint64_t> column = series.column(tier, gen);
    const std::uint64_t tier_sum =
        std::accumulate(column.begin(), column.end(), std::uint64_t{0});
    std::uint64_t full_sum = 0;
    // Tier t only covers the rounds already folded into it.
    const std::uint64_t covered = column.size() * series.tier_stride(tier);
    for (std::uint64_t i = 0; i < covered; ++i) full_sum += fed[i].generated;
    EXPECT_EQ(tier_sum, full_sum) << "tier " << tier;
  }

  const std::size_t pool = column_index("pool_size");
  const std::vector<std::uint64_t> pool1 = series.column(1, pool);
  ASSERT_FALSE(pool1.empty());
  // Sample i of tier 1 ends at round (i+1)·16; kLast keeps that round.
  EXPECT_EQ(pool1[0], fed[TimeSeries::kFold - 1].pool_size);
  EXPECT_EQ(pool1[1], fed[2 * TimeSeries::kFold - 1].pool_size);

  const std::size_t peak = column_index("max_load");
  const std::vector<std::uint64_t> peak1 = series.column(1, peak);
  std::uint64_t expected = 0;
  for (std::uint64_t i = 0; i < TimeSeries::kFold; ++i) {
    expected = std::max(expected, fed[i].max_load);
  }
  EXPECT_EQ(peak1[0], expected);
}

TEST(TimeSeries, CadenceFoldsRoundsIntoOneTierZeroSample) {
  if (!TimeSeries::kEnabled) GTEST_SKIP() << "telemetry compiled out";
  TimeSeries series({.cadence = 4, .tier_capacity = 64});
  std::uint64_t want_generated = 0;
  std::uint64_t want_peak = 0;
  for (std::uint64_t r = 1; r <= 8; ++r) {
    const TimeSeriesSample s = make_sample(r);
    series.observe(s);
    if (r <= 4) {
      want_generated += s.generated;
      want_peak = std::max(want_peak, s.max_load);
    }
  }
  EXPECT_EQ(series.rounds_observed(), 8u);
  ASSERT_EQ(series.tier_retained(0), 2u);
  EXPECT_EQ(series.column(0, column_index("generated"))[0], want_generated);
  EXPECT_EQ(series.column(0, column_index("max_load"))[0], want_peak);
  EXPECT_EQ(series.column(0, column_index("pool_size"))[0],
            make_sample(4).pool_size);
  EXPECT_EQ(series.column(0, column_index("round"))[0], 4u);
}

TEST(TimeSeries, RingsStayBoundedAndKeepTheNewest) {
  if (!TimeSeries::kEnabled) GTEST_SKIP() << "telemetry compiled out";
  TimeSeries series({.cadence = 1, .tier_capacity = 8});
  for (std::uint64_t r = 1; r <= 100; ++r) series.observe(make_sample(r));
  EXPECT_EQ(series.tier_emitted(0), 100u);
  EXPECT_EQ(series.tier_retained(0), 8u);
  const std::vector<std::uint64_t> rounds =
      series.column(0, column_index("round"));
  ASSERT_EQ(rounds.size(), 8u);
  EXPECT_EQ(rounds.front(), 93u);  // oldest retained
  EXPECT_EQ(rounds.back(), 100u);  // newest
}

TEST(TimeSeries, StateRoundTripPreservesEveryRenderedByte) {
  if (!TimeSeries::kEnabled) GTEST_SKIP() << "telemetry compiled out";
  TimeSeriesConfig config{.cadence = 2, .tier_capacity = 16};
  TimeSeries series(config);
  // 777 rounds: tier-0 mid-cadence, tier-1 mid-fold — the awkward case.
  for (std::uint64_t r = 1; r <= 777; ++r) series.observe(make_sample(r));

  TimeSeries restored(config);
  restored.restore_state(series.state_text());
  EXPECT_EQ(restored.render_text(), series.render_text());
  EXPECT_EQ(restored.render_window(8), series.render_window(8));

  // Continuing both must stay byte-identical: the fold accumulators
  // (not just the rings) round-tripped.
  for (std::uint64_t r = 778; r <= 900; ++r) {
    series.observe(make_sample(r));
    restored.observe(make_sample(r));
  }
  EXPECT_EQ(restored.render_text(), series.render_text());
}

TEST(TimeSeries, RestoreRejectsMismatchedConfigAndGarbage) {
  if (!TimeSeries::kEnabled) GTEST_SKIP() << "telemetry compiled out";
  TimeSeries series({.cadence = 2, .tier_capacity = 16});
  for (std::uint64_t r = 1; r <= 50; ++r) series.observe(make_sample(r));
  const std::string state = series.state_text();

  TimeSeries wrong_cadence({.cadence = 4, .tier_capacity = 16});
  EXPECT_THROW(wrong_cadence.restore_state(state), std::runtime_error);
  TimeSeries ok({.cadence = 2, .tier_capacity = 16});
  EXPECT_THROW(ok.restore_state("not a state"), std::runtime_error);
}

TEST(TimeSeries, DeltaRenderingReconstructs) {
  if (!TimeSeries::kEnabled) GTEST_SKIP() << "telemetry compiled out";
  TimeSeries series({.cadence = 1, .tier_capacity = 32});
  for (std::uint64_t r = 1; r <= 10; ++r) series.observe(make_sample(r));
  const std::string window = series.render_window(10);
  // The round column is 1..10 → rendered as "1" then nine "+1" deltas.
  std::istringstream lines(window);
  std::string line;
  bool found = false;
  while (std::getline(lines, line)) {
    if (line.rfind("col round = ", 0) == 0) {
      EXPECT_EQ(line, "col round = 1 +1 +1 +1 +1 +1 +1 +1 +1 +1");
      found = true;
    }
  }
  EXPECT_TRUE(found) << window;
}

TEST(TimeSeries, DisabledBuildObservesNothing) {
  if (TimeSeries::kEnabled) GTEST_SKIP() << "telemetry compiled in";
  TimeSeries series;
  for (std::uint64_t r = 1; r <= 10; ++r) series.observe(make_sample(r));
  EXPECT_EQ(series.rounds_observed(), 0u);
  EXPECT_EQ(series.tier_retained(0), 0u);
}

}  // namespace
}  // namespace iba::telemetry
