// Unit + statistical tests for the distribution samplers. Statistical
// assertions use generous tolerance bands (≫ 6 sigma) so they are
// deterministic in practice for a correct sampler.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "common/assert.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"

namespace {

using namespace iba::rng;

struct MeanVar {
  double mean = 0;
  double var = 0;
};

template <typename Sampler>
MeanVar sample_moments(Sampler&& draw, int reps) {
  double sum = 0, sumsq = 0;
  for (int i = 0; i < reps; ++i) {
    const double x = static_cast<double>(draw());
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / reps;
  return {mean, sumsq / reps - mean * mean};
}

TEST(Binomial, EdgeCases) {
  Xoshiro256pp eng(1);
  EXPECT_EQ(binomial(eng, 0, 0.5), 0u);
  EXPECT_EQ(binomial(eng, 100, 0.0), 0u);
  EXPECT_EQ(binomial(eng, 100, 1.0), 100u);
  EXPECT_THROW((void)binomial(eng, 10, 1.5), iba::ContractViolation);
  EXPECT_THROW((void)binomial(eng, 10, -0.1), iba::ContractViolation);
}

TEST(Binomial, AlwaysWithinSupport) {
  Xoshiro256pp eng(2);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LE(binomial(eng, 20, 0.3), 20u);
  }
}

TEST(Binomial, MomentsSmallNpInversionPath) {
  Xoshiro256pp eng(3);
  const std::uint64_t n = 50;
  const double p = 0.1;  // n·p = 5 → BINV
  const auto mv = sample_moments([&] { return binomial(eng, n, p); }, 200000);
  EXPECT_NEAR(mv.mean, 5.0, 0.05);
  EXPECT_NEAR(mv.var, 4.5, 0.15);
}

TEST(Binomial, MomentsLargeNpRejectionPath) {
  Xoshiro256pp eng(4);
  const std::uint64_t n = 100000;
  const double p = 0.3;  // n·p = 30000 → BTRS
  const auto mv = sample_moments([&] { return binomial(eng, n, p); }, 100000);
  EXPECT_NEAR(mv.mean, 30000.0, 3.0);
  EXPECT_NEAR(mv.var, 21000.0, 500.0);
}

TEST(Binomial, MomentsHighPReflection) {
  Xoshiro256pp eng(5);
  const auto mv =
      sample_moments([&] { return binomial(eng, 1000, 0.9); }, 100000);
  EXPECT_NEAR(mv.mean, 900.0, 0.5);
  EXPECT_NEAR(mv.var, 90.0, 3.0);
}

TEST(Binomial, ExactDistributionChiSquareSmallN) {
  // n = 4, p = 0.5 → pmf (1,4,6,4,1)/16. Chi-square with 4 dof.
  Xoshiro256pp eng(6);
  const int kDraws = 160000;
  std::array<int, 5> counts{};
  for (int i = 0; i < kDraws; ++i) ++counts[binomial(eng, 4, 0.5)];
  const std::array<double, 5> probs = {1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16,
                                       1.0 / 16};
  double chi2 = 0;
  for (int k = 0; k < 5; ++k) {
    const double expected = kDraws * probs[static_cast<std::size_t>(k)];
    const double d = counts[static_cast<std::size_t>(k)] - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 30.0);  // >99.999th percentile of chi2(4)
}

TEST(Poisson, EdgeCases) {
  Xoshiro256pp eng(7);
  EXPECT_EQ(poisson(eng, 0.0), 0u);
  EXPECT_THROW((void)poisson(eng, -1.0), iba::ContractViolation);
}

TEST(Poisson, MomentsSmallMeanKnuthPath) {
  Xoshiro256pp eng(8);
  const auto mv = sample_moments([&] { return poisson(eng, 3.0); }, 200000);
  EXPECT_NEAR(mv.mean, 3.0, 0.03);
  EXPECT_NEAR(mv.var, 3.0, 0.1);
}

TEST(Poisson, MomentsLargeMeanPtrsPath) {
  Xoshiro256pp eng(9);
  const auto mv = sample_moments([&] { return poisson(eng, 500.0); }, 100000);
  EXPECT_NEAR(mv.mean, 500.0, 0.5);
  EXPECT_NEAR(mv.var, 500.0, 15.0);
}

TEST(Geometric, MeanMatchesTheory) {
  Xoshiro256pp eng(10);
  const double p = 0.25;  // mean failures = (1-p)/p = 3
  const auto mv = sample_moments([&] { return geometric(eng, p); }, 200000);
  EXPECT_NEAR(mv.mean, 3.0, 0.05);
}

TEST(Geometric, POneAlwaysZero) {
  Xoshiro256pp eng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(geometric(eng, 1.0), 0u);
}

TEST(Exponential, MeanMatchesTheory) {
  Xoshiro256pp eng(12);
  double sum = 0;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = exponential(eng, 2.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Bernoulli, FrequencyMatchesP) {
  Xoshiro256pp eng(13);
  int hits = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += bernoulli(eng, 0.2);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.2, 0.01);
}

class BinomialSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(BinomialSweep, MeanWithinFiveSigmaOfTheory) {
  const auto [n, p] = GetParam();
  Xoshiro256pp eng(splitmix64_hash(n) ^ static_cast<std::uint64_t>(p * 1e9));
  const int reps = 20000;
  const auto mv = sample_moments([&] { return binomial(eng, n, p); }, reps);
  const double mean = static_cast<double>(n) * p;
  const double sigma_of_mean =
      std::sqrt(static_cast<double>(n) * p * (1 - p) / reps);
  EXPECT_NEAR(mv.mean, mean, 5 * sigma_of_mean + 1e-9)
      << "n=" << n << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, BinomialSweep,
    ::testing::Combine(::testing::Values(1, 10, 100, 1000, 32768),
                       ::testing::Values(0.01, 0.1, 0.25, 0.5, 0.75, 0.99)));

}  // namespace
