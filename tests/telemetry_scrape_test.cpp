// Scrape-server smoke tests: bind an ephemeral port, issue raw-socket
// HTTP GETs, and check the status lines and bodies of /metrics, /healthz
// and /spans — plus 404/405 handling and idempotent shutdown.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "telemetry/ball_trace.hpp"
#include "telemetry/scrape_server.hpp"
#include "telemetry/shared_registry.hpp"

namespace {

using iba::telemetry::BallSpan;
using iba::telemetry::ScrapeServer;
using iba::telemetry::SharedRegistry;

/// One blocking HTTP exchange against 127.0.0.1:port; returns the whole
/// response (the server closes the connection after each request).
std::string http_get(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0) << std::strerror(errno);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const int rc =
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  EXPECT_EQ(rc, 0) << std::strerror(errno);
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string status_line(const std::string& response) {
  return response.substr(0, response.find("\r\n"));
}

std::string body_of(const std::string& response) {
  const auto pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? std::string() : response.substr(pos + 4);
}

TEST(Scrape, ServesMetricsFromLiveRegistry) {
  SharedRegistry registry;
  registry.with([](iba::telemetry::Registry& r) {
    r.counter("balls_deleted_total").inc(42);
    r.gauge("pool_size").set(17.0);
  });
  ScrapeServer server(0, registry);
  ASSERT_NE(server.port(), 0);

  const std::string response =
      http_get(server.port(), "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(status_line(response), "HTTP/1.1 200 OK");
  EXPECT_NE(response.find("Content-Length:"), std::string::npos);
  const std::string body = body_of(response);
#if IBA_TELEMETRY_ENABLED
  EXPECT_NE(body.find("iba_balls_deleted_total 42"), std::string::npos)
      << body;
  EXPECT_NE(body.find("iba_pool_size 17"), std::string::npos) << body;
#endif

  // The endpoint reads a fresh snapshot on every request.
  registry.with([](iba::telemetry::Registry& r) {
    r.counter("balls_deleted_total").inc(8);
  });
  const std::string after =
      http_get(server.port(), "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
#if IBA_TELEMETRY_ENABLED
  EXPECT_NE(body_of(after).find("iba_balls_deleted_total 50"),
            std::string::npos);
#endif
  EXPECT_GE(server.requests_served(), 2u);
}

TEST(Scrape, HealthzAnswersOk) {
  SharedRegistry registry;
  ScrapeServer server(0, registry);
  const std::string response =
      http_get(server.port(), "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(status_line(response), "HTTP/1.1 200 OK");
  EXPECT_EQ(body_of(response), "ok\n");
}

TEST(Scrape, SpansStreamsJsonLinesFromTheSource) {
  SharedRegistry registry;
  ScrapeServer server(0, registry, [] {
    BallSpan span;
    span.ball_id = 7;
    span.arrival_round = 10;
    span.accept_round = 11;
    span.service_round = 13;
    span.pool_rounds = 1;
    span.bin_rounds = 2;
    span.accept_bin = 3;
    span.throws = 2;
    span.failed_throws = 1;
    return std::vector<BallSpan>{span};
  });
  const std::string response =
      http_get(server.port(), "GET /spans HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(status_line(response), "HTTP/1.1 200 OK");
  const std::string body = body_of(response);
  EXPECT_NE(body.find("\"ball_id\":7"), std::string::npos) << body;
  EXPECT_NE(body.find("\"wait\":3"), std::string::npos) << body;
  EXPECT_EQ(body.back(), '\n');
}

TEST(Scrape, SpansWithoutSourceIsEmpty) {
  SharedRegistry registry;
  ScrapeServer server(0, registry);
  const std::string response =
      http_get(server.port(), "GET /spans HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(status_line(response), "HTTP/1.1 200 OK");
  EXPECT_TRUE(body_of(response).empty());
}

TEST(Scrape, UnknownPathIs404AndPostIs405) {
  SharedRegistry registry;
  ScrapeServer server(0, registry);
  const std::string missing =
      http_get(server.port(), "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(status_line(missing), "HTTP/1.1 404 Not Found");
  const std::string post =
      http_get(server.port(), "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(status_line(post), "HTTP/1.1 405 Method Not Allowed");
}

TEST(Scrape, StopIsIdempotentAndJoins) {
  SharedRegistry registry;
  ScrapeServer server(0, registry);
  const std::uint16_t port = server.port();
  const std::string response =
      http_get(port, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(status_line(response), "HTTP/1.1 200 OK");
  server.stop();
  server.stop();  // second stop must be a no-op
  // After stop, connections are refused (nothing is listening).
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_NE(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  ::close(fd);
}

TEST(Scrape, TwoServersBindDistinctEphemeralPorts) {
  SharedRegistry registry;
  ScrapeServer a(0, registry);
  ScrapeServer b(0, registry);
  EXPECT_NE(a.port(), 0);
  EXPECT_NE(b.port(), 0);
  EXPECT_NE(a.port(), b.port());
}

}  // namespace
