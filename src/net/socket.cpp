#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace iba::net {

namespace {

[[noreturn]] void fail_errno(const std::string& op) {
  throw NetError("net: " + op + ": " + std::strerror(errno));
}

/// getaddrinfo for one IPv4/IPv6 TCP endpoint; the caller frees.
addrinfo* resolve(const std::string& host, std::uint16_t port, bool passive) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = passive ? AI_PASSIVE : 0;
  const std::string service = std::to_string(port);
  addrinfo* result = nullptr;
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               service.c_str(), &hints, &result);
  if (rc != 0) {
    throw NetError("net: cannot resolve '" + host + ":" + service +
                   "': " + ::gai_strerror(rc));
  }
  return result;
}

}  // namespace

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket listen_tcp(const std::string& host, std::uint16_t port, int backlog) {
  addrinfo* addrs = resolve(host, port, /*passive=*/true);
  std::string last_error = "no addresses";
  for (addrinfo* a = addrs; a != nullptr; a = a->ai_next) {
    const int fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
    if (fd < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, a->ai_addr, a->ai_addrlen) == 0 &&
        ::listen(fd, backlog) == 0) {
      ::freeaddrinfo(addrs);
      return Socket(fd);
    }
    last_error = std::strerror(errno);
    ::close(fd);
  }
  ::freeaddrinfo(addrs);
  throw NetError("net: cannot listen on " + host + ":" +
                 std::to_string(port) + ": " + last_error);
}

std::uint16_t local_port(const Socket& socket) {
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    fail_errno("getsockname");
  }
  if (addr.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<const sockaddr_in*>(&addr)->sin_port);
  }
  if (addr.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<const sockaddr_in6*>(&addr)->sin6_port);
  }
  return 0;
}

Socket accept_client(const Socket& listener, int timeout_ms) {
  return accept_client(listener.fd(), timeout_ms);
}

Socket accept_client(int listener_fd, int timeout_ms) {
  if (!wait_readable(listener_fd, timeout_ms)) return Socket();
  for (;;) {
    const int client = ::accept(listener_fd, nullptr, nullptr);
    if (client >= 0) {
      // Request-response protocols (the distributed round loop) stall
      // ~40ms per round under Nagle + delayed ACK; disable it, as
      // connect_tcp already does. Fails harmlessly on non-TCP fds.
      const int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(client);
    }
    if (errno == EINTR) continue;
    // The pending connection can vanish between poll and accept;
    // report a timeout-shaped miss rather than failing the listener.
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
      return Socket();
    }
    fail_errno("accept");
  }
}

Socket connect_tcp(const std::string& host, std::uint16_t port) {
  addrinfo* addrs = resolve(host, port, /*passive=*/false);
  std::string last_error = "no addresses";
  for (addrinfo* a = addrs; a != nullptr; a = a->ai_next) {
    const int fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
    if (fd < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    int rc;
    do {
      rc = ::connect(fd, a->ai_addr, a->ai_addrlen);
    } while (rc != 0 && errno == EINTR);
    if (rc == 0) {
      ::freeaddrinfo(addrs);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    last_error = std::strerror(errno);
    ::close(fd);
  }
  ::freeaddrinfo(addrs);
  throw NetError("net: cannot connect to " + host + ":" +
                 std::to_string(port) + ": " + last_error);
}

std::pair<Socket, Socket> socket_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    fail_errno("socketpair");
  }
  return {Socket(fds[0]), Socket(fds[1])};
}

void write_full(int fd, const void* data, std::size_t size) {
  const char* cursor = static_cast<const char*>(data);
  std::size_t remaining = size;
  while (remaining > 0) {
#ifdef MSG_NOSIGNAL
    const ssize_t n = ::send(fd, cursor, remaining, MSG_NOSIGNAL);
#else
    const ssize_t n = ::write(fd, cursor, remaining);
#endif
    if (n > 0) {
      cursor += n;
      remaining -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      throw PeerClosed("net: peer closed with " + std::to_string(remaining) +
                       " of " + std::to_string(size) + " bytes unwritten");
    }
    fail_errno("write");
  }
}

void read_full(int fd, void* data, std::size_t size) {
  if (!read_full_or_eof(fd, data, size)) {
    throw PeerClosed("net: peer closed before a " + std::to_string(size) +
                     "-byte read");
  }
}

bool read_full_or_eof(int fd, void* data, std::size_t size) {
  char* cursor = static_cast<char*>(data);
  std::size_t have = 0;
  while (have < size) {
    const ssize_t n = ::read(fd, cursor + have, size - have);
    if (n > 0) {
      have += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0 || errno == ECONNRESET) {
      if (have == 0) return false;
      throw PeerClosed("net: peer closed after " + std::to_string(have) +
                       " of " + std::to_string(size) + " bytes");
    }
    fail_errno("read");
  }
  return true;
}

std::size_t read_some(int fd, void* data, std::size_t size) {
  for (;;) {
    const ssize_t n = ::read(fd, data, size);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) return 0;
    fail_errno("read");
  }
}

bool wait_readable(int fd, int timeout_ms) {
  using Clock = std::chrono::steady_clock;
  const auto deadline =
      timeout_ms < 0 ? Clock::time_point::max()
                     : Clock::now() + std::chrono::milliseconds(timeout_ms);
  int remaining = timeout_ms;
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, remaining);
    if (ready > 0) return true;
    if (ready == 0) return false;
    if (errno != EINTR) fail_errno("poll");
    if (timeout_ms >= 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) return false;
      remaining = static_cast<int>(left.count());
    }
  }
}

}  // namespace iba::net
