// Length-prefixed, CRC-32-bound message frames over a byte stream —
// the wire unit of the distributed engine (src/dist/).
//
// Frame layout (all integers little-endian on the wire, regardless of
// host order):
//
//   offset  size  field
//        0     4  magic   "IBAF" (0x46414249)
//        4     4  type    message type (opaque to this layer)
//        8     4  length  payload byte count
//       12     4  crc32   CRC-32 over type ‖ length ‖ payload
//       16     …  payload
//
// The CRC covers the type and length fields as well as the payload, so
// a bit flip anywhere past the magic is detected; the magic itself
// guards against stream desynchronization. read_frame enforces a
// caller-chosen payload ceiling before allocating, so a corrupt length
// can never balloon memory. Truncation surfaces as PeerClosed from the
// underlying read_full; corruption as FrameError.
//
// WireWriter/WireReader are the little-endian scalar codecs the dist
// protocol builds its payloads with — fixed-width, no varints, so every
// encoded message is byte-deterministic across platforms.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/socket.hpp"

namespace iba::net {

/// Corrupt or malformed frame: bad magic, CRC mismatch, payload over
/// the ceiling, or a payload decode running past its end.
class FrameError : public NetError {
 public:
  explicit FrameError(const std::string& what) : NetError(what) {}
};

inline constexpr std::uint32_t kFrameMagic = 0x46414249u;  // "IBAF"
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Default payload ceiling: a round frame at n = 10⁸ with a full pool
/// stays well under this; anything larger is corruption.
inline constexpr std::uint32_t kDefaultMaxPayload = 1u << 30;

/// Writes one frame (header + payload) to `fd`. Throws PeerClosed /
/// NetError from the underlying write.
void write_frame(int fd, std::uint32_t type,
                 std::span<const std::uint8_t> payload);

/// Reads one frame from `fd` into `type` / `payload` (resized to fit).
/// Returns false on a clean EOF before the first header byte (peer
/// done). Throws FrameError on bad magic, oversized length, or CRC
/// mismatch; PeerClosed on truncation mid-frame.
[[nodiscard]] bool read_frame(int fd, std::uint32_t& type,
                              std::vector<std::uint8_t>& payload,
                              std::uint32_t max_payload = kDefaultMaxPayload);

/// Appends little-endian scalars to a growing payload buffer.
class WireWriter {
 public:
  void u32(std::uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      buffer_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    }
  }
  void u64(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      buffer_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    }
  }
  /// Length-prefixed UTF-8/byte string.
  void str(const std::string& value) {
    u32(static_cast<std::uint32_t>(value.size()));
    buffer_.insert(buffer_.end(), value.begin(), value.end());
  }
  void u64_vec(const std::vector<std::uint64_t>& values) {
    u32(static_cast<std::uint32_t>(values.size()));
    for (const std::uint64_t v : values) u64(v);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buffer_;
  }
  [[nodiscard]] std::span<const std::uint8_t> span() const noexcept {
    return buffer_;
  }
  void clear() noexcept { buffer_.clear(); }
  void reserve(std::size_t bytes) { buffer_.reserve(bytes); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Bounds-checked little-endian decoder over one received payload.
/// Every overrun throws FrameError naming the field, so a truncated or
/// type-confused payload can never read out of bounds.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  [[nodiscard]] std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(data_[offset_ + i]) << (8 * i);
    }
    offset_ += 4;
    return value;
  }
  [[nodiscard]] std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(data_[offset_ + i]) << (8 * i);
    }
    offset_ += 8;
    return value;
  }
  [[nodiscard]] std::string str(const char* what) {
    const std::uint32_t size = u32(what);
    need(size, what);
    std::string value(reinterpret_cast<const char*>(data_.data() + offset_),
                      size);
    offset_ += size;
    return value;
  }
  [[nodiscard]] std::vector<std::uint64_t> u64_vec(const char* what) {
    const std::uint32_t count = u32(what);
    need(static_cast<std::size_t>(count) * 8, what);
    std::vector<std::uint64_t> values(count);
    for (std::uint32_t i = 0; i < count; ++i) values[i] = u64(what);
    return values;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - offset_;
  }
  /// Call after the last field: trailing bytes mean a version/type skew.
  void expect_end(const char* what) const {
    if (offset_ != data_.size()) {
      throw FrameError(std::string("frame: trailing bytes after ") + what);
    }
  }

 private:
  void need(std::size_t bytes, const char* what) const {
    if (data_.size() - offset_ < bytes) {
      throw FrameError(std::string("frame: truncated payload at ") + what);
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
};

}  // namespace iba::net
