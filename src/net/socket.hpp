// Minimal POSIX socket layer shared by the distributed engine
// (src/dist/) and the telemetry scrape endpoint — extracted from the
// original telemetry/scrape_server.cpp socket boilerplate and hardened:
// every read/write helper retries EINTR and handles partial transfers,
// which raw send()/recv() call sites historically got wrong (short
// writes on large /timeseries responses).
//
// Design rules:
//  * RAII Socket owns one fd; all helpers also accept a raw fd so the
//    protocol layer (net/frame.hpp) works over socketpairs in tests
//    exactly as over TCP in production.
//  * Errors are exceptions: NetError for syscall failures and timeouts,
//    PeerClosed (a NetError) for a clean EOF — callers that treat a
//    vanished peer as routine (a crashed worker, a scraper that hung
//    up) catch the subtype.
//  * Nothing here draws randomness or reads the clock beyond poll
//    timeouts, so transport can never perturb a simulation trajectory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

namespace iba::net {

/// Transport failure: refused connection, reset, poll timeout, syscall
/// error. The message names the operation and the errno text.
class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

/// The peer closed the connection (clean EOF). Subtype so callers can
/// distinguish "worker went away" from "syscall failed".
class PeerClosed : public NetError {
 public:
  explicit PeerClosed(const std::string& what) : NetError(what) {}
};

/// RAII owner of one socket fd. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { close(); }

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  /// Releases ownership of the fd to the caller.
  [[nodiscard]] int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Binds and listens on `host:port` (TCP, SO_REUSEADDR). Empty host
/// means every interface. Port 0 picks an ephemeral port — read it back
/// with local_port(). Throws NetError when the address cannot be bound.
[[nodiscard]] Socket listen_tcp(const std::string& host, std::uint16_t port,
                                int backlog = 16);

/// The locally bound port of a listening (or connected) socket.
[[nodiscard]] std::uint16_t local_port(const Socket& socket);

/// Accepts one pending connection, waiting up to `timeout_ms`
/// (-1 = forever). Returns an invalid Socket on timeout; retries EINTR.
[[nodiscard]] Socket accept_client(const Socket& listener, int timeout_ms);
/// Raw-fd flavor for callers that manage the listener fd themselves.
[[nodiscard]] Socket accept_client(int listener_fd, int timeout_ms);

/// Connects to `host:port` (TCP). Throws NetError on resolution or
/// connection failure.
[[nodiscard]] Socket connect_tcp(const std::string& host, std::uint16_t port);

/// A connected AF_UNIX socket pair (for in-process tests and fakes).
[[nodiscard]] std::pair<Socket, Socket> socket_pair();

/// Writes exactly `size` bytes, retrying EINTR and partial writes.
/// Throws PeerClosed when the peer resets mid-write, NetError otherwise.
void write_full(int fd, const void* data, std::size_t size);

/// Reads exactly `size` bytes, retrying EINTR and partial reads. Throws
/// PeerClosed on EOF (at any offset; the message says how far it got),
/// NetError on syscall failure.
void read_full(int fd, void* data, std::size_t size);

/// Like read_full, but a clean EOF *before the first byte* returns
/// false instead of throwing — the idle-peer-hung-up case. EOF mid-way
/// still throws PeerClosed (a truncated message is never routine).
[[nodiscard]] bool read_full_or_eof(int fd, void* data, std::size_t size);

/// One read() of at most `size` bytes, retrying EINTR only. Returns the
/// byte count (0 = EOF). For request-line peeks where a partial read is
/// acceptable. Throws NetError on syscall failure.
[[nodiscard]] std::size_t read_some(int fd, void* data, std::size_t size);

/// Waits until `fd` is readable, up to `timeout_ms` (-1 = forever).
/// Returns false on timeout; retries EINTR with the remaining budget.
[[nodiscard]] bool wait_readable(int fd, int timeout_ms);

}  // namespace iba::net
