#include "net/frame.hpp"

#include <array>
#include <cstring>
#include <string_view>

#include "common/crc32.hpp"

namespace iba::net {

namespace {

void put_u32(std::uint8_t* out, std::uint32_t value) noexcept {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

std::uint32_t get_u32(const std::uint8_t* in) noexcept {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  }
  return value;
}

/// CRC-32 over type ‖ length ‖ payload (the bytes after the magic).
std::uint32_t frame_crc(std::uint32_t type, std::uint32_t length,
                        std::span<const std::uint8_t> payload) noexcept {
  // One contiguous pass would need a copy; chain the table CRC by hand
  // instead: crc32(a ‖ b) with the standard inversions is reproduced by
  // un-finalizing between pieces.
  std::array<std::uint8_t, 8> head;
  put_u32(head.data(), type);
  put_u32(head.data() + 4, length);
  const auto& table = common::detail::crc32_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  const auto feed = [&](const std::uint8_t* data, std::size_t size) {
    for (std::size_t i = 0; i < size; ++i) {
      crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
    }
  };
  feed(head.data(), head.size());
  feed(payload.data(), payload.size());
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace

void write_frame(int fd, std::uint32_t type,
                 std::span<const std::uint8_t> payload) {
  const auto length = static_cast<std::uint32_t>(payload.size());
  std::array<std::uint8_t, kFrameHeaderBytes> header;
  put_u32(header.data(), kFrameMagic);
  put_u32(header.data() + 4, type);
  put_u32(header.data() + 8, length);
  put_u32(header.data() + 12, frame_crc(type, length, payload));
  write_full(fd, header.data(), header.size());
  if (!payload.empty()) write_full(fd, payload.data(), payload.size());
}

bool read_frame(int fd, std::uint32_t& type,
                std::vector<std::uint8_t>& payload,
                std::uint32_t max_payload) {
  std::array<std::uint8_t, kFrameHeaderBytes> header;
  if (!read_full_or_eof(fd, header.data(), header.size())) return false;
  const std::uint32_t magic = get_u32(header.data());
  if (magic != kFrameMagic) {
    throw FrameError("frame: bad magic 0x" + [magic] {
      char buf[9];
      std::snprintf(buf, sizeof(buf), "%08x", magic);
      return std::string(buf);
    }());
  }
  type = get_u32(header.data() + 4);
  const std::uint32_t length = get_u32(header.data() + 8);
  const std::uint32_t crc = get_u32(header.data() + 12);
  if (length > max_payload) {
    throw FrameError("frame: payload length " + std::to_string(length) +
                     " exceeds ceiling " + std::to_string(max_payload));
  }
  payload.resize(length);
  if (length > 0) read_full(fd, payload.data(), length);
  if (frame_crc(type, length, payload) != crc) {
    throw FrameError("frame: CRC mismatch on type " + std::to_string(type) +
                     " (" + std::to_string(length) + " bytes)");
  }
  return true;
}

}  // namespace iba::net
