// Summary — the one-stop per-metric digest used in every result row:
// count, mean ± stderr, min/max, and streaming p50/p90/p99.
#pragma once

#include <cstdint>
#include <string>

#include "stats/p2_quantile.hpp"
#include "stats/welford.hpp"

namespace iba::stats {

/// Combines moment and quantile accumulation for one metric stream.
class Summary {
 public:
  void add(double x) noexcept {
    moments_.add(x);
    quantiles_.add(x);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return moments_.count();
  }
  [[nodiscard]] double mean() const noexcept { return moments_.mean(); }
  [[nodiscard]] double stddev() const noexcept { return moments_.stddev(); }
  [[nodiscard]] double sem() const noexcept { return moments_.sem(); }
  [[nodiscard]] double min() const noexcept {
    return moments_.count() ? moments_.min() : 0.0;
  }
  [[nodiscard]] double max() const noexcept {
    return moments_.count() ? moments_.max() : 0.0;
  }
  [[nodiscard]] double p50() const noexcept { return quantiles_.p50(); }
  [[nodiscard]] double p90() const noexcept { return quantiles_.p90(); }
  [[nodiscard]] double p99() const noexcept { return quantiles_.p99(); }

  [[nodiscard]] const OnlineMoments& moments() const noexcept {
    return moments_;
  }

  /// "mean ± sem [min, max]" rendering for log lines and tables.
  [[nodiscard]] std::string to_string() const;

 private:
  OnlineMoments moments_;
  P2QuantileSet quantiles_;
};

}  // namespace iba::stats
