// Reservoir sampling (Vitter's algorithm R) — a uniform fixed-size sample
// of an unbounded stream, used to keep exact-quantile-capable subsets of
// waiting times without unbounded memory.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "common/assert.hpp"
#include "rng/bounded.hpp"

namespace iba::stats {

/// Keeps a uniform random sample of `capacity` elements from everything
/// offered via add(). Deterministic given the injected engine.
template <typename T>
class ReservoirSample {
 public:
  explicit ReservoirSample(std::size_t capacity) : capacity_(capacity) {
    IBA_EXPECT(capacity > 0, "ReservoirSample: capacity must be positive");
    sample_.reserve(capacity);
  }

  template <std::uniform_random_bit_generator Engine>
  void add(Engine& engine, const T& value) {
    ++seen_;
    if (sample_.size() < capacity_) {
      sample_.push_back(value);
      return;
    }
    const std::uint64_t slot = rng::bounded(engine, seen_);
    if (slot < capacity_) sample_[static_cast<std::size_t>(slot)] = value;
  }

  [[nodiscard]] const std::vector<T>& sample() const noexcept {
    return sample_;
  }
  [[nodiscard]] std::uint64_t seen() const noexcept { return seen_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  void reset() noexcept {
    sample_.clear();
    seen_ = 0;
  }

 private:
  std::size_t capacity_;
  std::vector<T> sample_;
  std::uint64_t seen_ = 0;
};

}  // namespace iba::stats
