#include "stats/linear_fit.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace iba::stats {

LinearFit fit_line(const std::vector<double>& xs,
                   const std::vector<double>& ys) noexcept {
  IBA_ASSERT(xs.size() == ys.size());
  LinearFit fit;
  const std::size_t n = xs.size();
  if (n == 0) return fit;

  double x_mean = 0, y_mean = 0;
  for (std::size_t i = 0; i < n; ++i) {
    x_mean += xs[i];
    y_mean += ys[i];
  }
  x_mean /= static_cast<double>(n);
  y_mean /= static_cast<double>(n);

  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - x_mean;
    const double dy = ys[i] - y_mean;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) {  // all x equal: flat fit through the mean
    fit.intercept = y_mean;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = y_mean - fit.slope * x_mean;
  fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace iba::stats
