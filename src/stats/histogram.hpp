// Counting histograms for load and waiting-time distributions.
//
// Histogram      — fixed-width bins over [lo, hi) with under/overflow bins.
// Log2Histogram  — one bin per power of two; the natural shape for
//                  waiting-time tails (compact, O(64) state, exact counts
//                  per dyadic range).
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace iba::stats {

/// Fixed-width histogram over [lo, hi) with `bins` equal cells plus
/// dedicated underflow/overflow counters.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
        counts_(bins, 0) {
    IBA_EXPECT(hi > lo, "Histogram: hi must exceed lo");
    IBA_EXPECT(bins > 0, "Histogram: needs at least one bin");
  }

  void add(double x, std::uint64_t weight = 1) noexcept {
    ++total_;
    if (x < lo_) {
      underflow_ += weight;
    } else if (x >= hi_) {
      overflow_ += weight;
    } else {
      auto idx = static_cast<std::size_t>((x - lo_) / width_);
      if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge
      counts_[idx] += weight;
    }
  }

  [[nodiscard]] std::size_t bin_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const noexcept {
    IBA_ASSERT(bin < counts_.size());
    return counts_[bin];
  }
  [[nodiscard]] double bin_lo(std::size_t bin) const noexcept {
    return lo_ + static_cast<double>(bin) * width_;
  }
  [[nodiscard]] double bin_hi(std::size_t bin) const noexcept {
    return lo_ + static_cast<double>(bin + 1) * width_;
  }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Histogram of non-negative integers with one bin per power of two:
/// bin 0 holds value 0, bin k ≥ 1 holds values in [2^(k−1), 2^k).
class Log2Histogram {
 public:
  void add(std::uint64_t value, std::uint64_t weight = 1) noexcept {
    const std::size_t bin =
        value == 0 ? 0 : static_cast<std::size_t>(64 - std::countl_zero(value));
    if (bin >= counts_.size()) counts_.resize(bin + 1, 0);
    counts_[bin] += weight;
    total_ += weight;
    if (value > max_) max_ = value;
  }

  [[nodiscard]] std::size_t bin_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const noexcept {
    return bin < counts_.size() ? counts_[bin] : 0;
  }
  /// Smallest value belonging to `bin`.
  [[nodiscard]] static std::uint64_t bin_lo(std::size_t bin) noexcept {
    return bin == 0 ? 0 : std::uint64_t{1} << (bin - 1);
  }
  /// One past the largest value belonging to `bin`.
  [[nodiscard]] static std::uint64_t bin_hi(std::size_t bin) noexcept {
    return std::uint64_t{1} << bin;
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }

  /// Upper bound on the q-quantile: the top edge of the bin in which the
  /// q-quantile falls (exact to within a factor of 2).
  [[nodiscard]] std::uint64_t quantile_upper_bound(double q) const noexcept {
    IBA_ASSERT(q >= 0.0 && q <= 1.0);
    if (total_ == 0) return 0;
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total_)));
    std::uint64_t seen = 0;
    for (std::size_t bin = 0; bin < counts_.size(); ++bin) {
      seen += counts_[bin];
      if (seen >= rank) return bin == 0 ? 0 : bin_hi(bin) - 1;
    }
    return max_;
  }

  /// Raw per-bin counts, for serialization (checkpointing).
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept {
    return counts_;
  }

  /// Rebuilds a histogram from serialized state. `total` is implied by
  /// the counts (add() keeps them in lockstep); `max` is not and must be
  /// supplied.
  [[nodiscard]] static Log2Histogram from_counts(
      std::vector<std::uint64_t> counts, std::uint64_t max) {
    Log2Histogram h;
    h.counts_ = std::move(counts);
    h.total_ = 0;
    for (const std::uint64_t c : h.counts_) h.total_ += c;
    h.max_ = max;
    return h;
  }

  void merge(const Log2Histogram& other) {
    if (other.counts_.size() > counts_.size())
      counts_.resize(other.counts_.size(), 0);
    for (std::size_t i = 0; i < other.counts_.size(); ++i)
      counts_[i] += other.counts_[i];
    total_ += other.total_;
    if (other.max_ > max_) max_ = other.max_;
  }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace iba::stats
