// P² streaming quantile estimation (Jain & Chlamtac, CACM 1985).
//
// Estimates a single quantile with five markers and O(1) memory — used for
// waiting-time percentiles over millions of deletions without storing the
// samples. P2QuantileSet bundles the common p50/p90/p99 trio.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>

#include "common/assert.hpp"

namespace iba::stats {

/// Streaming estimator of the q-quantile. Exact for the first five
/// samples; afterwards applies the piecewise-parabolic marker update.
class P2Quantile {
 public:
  explicit P2Quantile(double q) : q_(q) {
    IBA_EXPECT(q > 0.0 && q < 1.0, "P2Quantile: q must lie in (0, 1)");
    desired_ = {0, 2 * q_, 4 * q_, 2 + 2 * q_, 4};
    increments_ = {0, q_ / 2, q_, (1 + q_) / 2, 1};
  }

  void add(double x) noexcept {
    if (count_ < 5) {
      heights_[count_++] = x;
      if (count_ == 5) {
        std::sort(heights_.begin(), heights_.end());
        positions_ = {0, 1, 2, 3, 4};
      }
      return;
    }

    // Locate the cell of x and clamp the extreme markers.
    std::size_t k;
    if (x < heights_[0]) {
      heights_[0] = x;
      k = 0;
    } else if (x >= heights_[4]) {
      heights_[4] = x;
      k = 3;
    } else {
      k = 0;
      while (k < 3 && x >= heights_[k + 1]) ++k;
    }

    for (std::size_t i = k + 1; i < 5; ++i) positions_[i] += 1;
    for (std::size_t i = 0; i < 5; ++i) desired_[i] += increments_[i];
    ++count_;

    // Adjust the three interior markers toward their desired positions.
    for (std::size_t i = 1; i <= 3; ++i) {
      const double d = desired_[i] - positions_[i];
      const double gap_up = positions_[i + 1] - positions_[i];
      const double gap_down = positions_[i - 1] - positions_[i];
      if ((d >= 1 && gap_up > 1) || (d <= -1 && gap_down < -1)) {
        const double sign = d >= 1 ? 1.0 : -1.0;
        const double candidate = parabolic(i, sign);
        if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
          heights_[i] = candidate;
        } else {
          heights_[i] = linear(i, sign);
        }
        positions_[i] += sign;
      }
    }
  }

  /// Current estimate; exact when fewer than five samples were seen.
  [[nodiscard]] double value() const noexcept {
    if (count_ == 0) return 0.0;
    if (count_ < 5) {
      // Exact small-sample quantile (nearest-rank on a sorted copy).
      std::array<double, 5> sorted = heights_;
      std::sort(sorted.begin(), sorted.begin() + static_cast<long>(count_));
      const auto rank = static_cast<std::size_t>(
          std::ceil(q_ * static_cast<double>(count_)));
      return sorted[std::min(count_ - 1, rank > 0 ? rank - 1 : 0)];
    }
    return heights_[2];
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double quantile() const noexcept { return q_; }

 private:
  [[nodiscard]] double parabolic(std::size_t i, double sign) const noexcept {
    const double qi = heights_[i];
    const double np = positions_[i + 1];
    const double nm = positions_[i - 1];
    const double ni = positions_[i];
    return qi + sign / (np - nm) *
                    ((ni - nm + sign) * (heights_[i + 1] - qi) / (np - ni) +
                     (np - ni - sign) * (qi - heights_[i - 1]) / (ni - nm));
  }

  [[nodiscard]] double linear(std::size_t i, double sign) const noexcept {
    const auto j = static_cast<std::size_t>(static_cast<double>(i) + sign);
    return heights_[i] + sign * (heights_[j] - heights_[i]) /
                             (positions_[j] - positions_[i]);
  }

  double q_;
  std::array<double, 5> heights_{};
  std::array<double, 5> positions_{};
  std::array<double, 5> desired_{};
  std::array<double, 5> increments_{};
  std::size_t count_ = 0;
};

/// Convenience bundle tracking median, p90, and p99 of one stream.
class P2QuantileSet {
 public:
  P2QuantileSet() : p50_(0.5), p90_(0.9), p99_(0.99) {}

  void add(double x) noexcept {
    p50_.add(x);
    p90_.add(x);
    p99_.add(x);
  }

  [[nodiscard]] double p50() const noexcept { return p50_.value(); }
  [[nodiscard]] double p90() const noexcept { return p90_.value(); }
  [[nodiscard]] double p99() const noexcept { return p99_.value(); }

 private:
  P2Quantile p50_;
  P2Quantile p90_;
  P2Quantile p99_;
};

}  // namespace iba::stats
