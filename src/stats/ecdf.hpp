// Empirical cumulative distribution function over a stored sample, with
// exact quantiles and two-sample Kolmogorov–Smirnov distance (used by the
// tests to compare simulated distributions against references).
#pragma once

#include <vector>

namespace iba::stats {

/// Immutable ECDF built from a sample (sorted on construction).
class Ecdf {
 public:
  explicit Ecdf(std::vector<double> samples);

  /// F(x) = fraction of samples ≤ x.
  [[nodiscard]] double cdf(double x) const noexcept;

  /// Exact q-quantile (nearest-rank). Requires a non-empty sample.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] const std::vector<double>& sorted() const noexcept {
    return sorted_;
  }

  /// Two-sample Kolmogorov–Smirnov statistic sup_x |F_a(x) − F_b(x)|.
  [[nodiscard]] static double ks_distance(const Ecdf& a, const Ecdf& b);

 private:
  std::vector<double> sorted_;
};

}  // namespace iba::stats
