// Time-series diagnostics for the simulation runner: lag autocorrelation,
// effective sample size, and MSER-style burn-in (warm-up) truncation.
//
// The paper measures "a stabilized system after a burn-in phase of
// suitable length"; mser_truncation_point() makes "suitable" precise by
// choosing the truncation that minimizes the marginal standard error of
// the remaining series (White's MSER rule, batched for robustness).
#pragma once

#include <cstddef>
#include <vector>

namespace iba::stats {

/// Sample autocorrelation of `series` at `lag` (biased estimator).
/// Returns 0 for degenerate inputs (lag ≥ length, zero variance).
[[nodiscard]] double autocorrelation(const std::vector<double>& series,
                                     std::size_t lag) noexcept;

/// Effective sample size n / (1 + 2·Σ ρ_k), truncating the sum at the
/// first non-positive autocorrelation (Geyer's initial positive sequence).
[[nodiscard]] double effective_sample_size(
    const std::vector<double>& series) noexcept;

/// MSER truncation point: the prefix length d minimizing the marginal
/// standard error of series[d..]. Evaluated on `batch`-sized batch means
/// (MSER-5 style) and capped at half the series, per standard practice.
[[nodiscard]] std::size_t mser_truncation_point(
    const std::vector<double>& series, std::size_t batch = 5) noexcept;

/// Heuristic steady-state check: true when the means of the last two
/// `window`-sized windows agree within `rel_tol` (relative) — the runner's
/// cheap online criterion for ending the burn-in phase.
[[nodiscard]] bool windows_agree(const std::vector<double>& series,
                                 std::size_t window, double rel_tol) noexcept;

}  // namespace iba::stats
