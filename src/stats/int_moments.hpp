// Exact online moments for unsigned-integer samples.
//
// Accumulates count, Σx and Σx² in integer registers — Σx in 64 bits,
// Σx² in 128 — so accumulation never rounds and is therefore
// order-independent. That is the property that lets the fused bin-major
// round kernel (core/capped.cpp) record waiting times in the middle of
// its chunked sweep and still match the scalar path bit for bit. It
// also removes Welford's per-sample serial division chain from the
// per-deleted-ball hot path: variance is derived from the exact integer
// sums only at query time.
#pragma once

#include <cmath>
#include <cstdint>

namespace iba::stats {

/// Single-pass exact accumulator for mean/variance of uint64 samples.
/// Merging two accumulators equals accumulating the concatenated
/// samples (integer sums commute). Exact as long as n·Σx² < 2^128 —
/// e.g. 2^40 samples of values up to 2^40, far beyond any
/// waiting-time run.
class UintMoments {
 public:
  __extension__ using Uint128 = unsigned __int128;

  void add(std::uint64_t x) noexcept {
    ++count_;
    sum_ += x;
    sumsq_ += static_cast<Uint128>(x) * x;
  }

  void merge(const UintMoments& other) noexcept {
    count_ += other.count_;
    sum_ += other.sum_;
    sumsq_ += other.sumsq_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  /// Σx² halves, for serialization (checkpointing) without a 128-bit
  /// text representation.
  [[nodiscard]] std::uint64_t sumsq_hi() const noexcept {
    return static_cast<std::uint64_t>(sumsq_ >> 64);
  }
  [[nodiscard]] std::uint64_t sumsq_lo() const noexcept {
    return static_cast<std::uint64_t>(sumsq_);
  }

  /// Rebuilds an accumulator from serialized state (inverse of count()/
  /// sum()/sumsq_hi()/sumsq_lo()).
  [[nodiscard]] static UintMoments from_parts(std::uint64_t count,
                                              std::uint64_t sum,
                                              std::uint64_t sumsq_hi,
                                              std::uint64_t sumsq_lo) noexcept {
    UintMoments m;
    m.count_ = count;
    m.sum_ = sum;
    m.sumsq_ = (static_cast<Uint128>(sumsq_hi) << 64) | sumsq_lo;
    return m;
  }

  [[nodiscard]] double mean() const noexcept {
    return count_ > 0
               ? static_cast<double>(sum_) / static_cast<double>(count_)
               : 0.0;
  }

  /// Population variance (divides by n).
  [[nodiscard]] double variance() const noexcept {
    if (count_ == 0) return 0.0;
    const double n = static_cast<double>(count_);
    return scaled_m2() / (n * n);
  }

  /// Sample variance (divides by n − 1); 0 for fewer than two samples.
  [[nodiscard]] double sample_variance() const noexcept {
    if (count_ < 2) return 0.0;
    const double n = static_cast<double>(count_);
    return scaled_m2() / (n * (n - 1.0));
  }

  [[nodiscard]] double stddev() const noexcept {
    return std::sqrt(sample_variance());
  }

  /// Standard error of the mean.
  [[nodiscard]] double sem() const noexcept {
    return count_ > 0 ? stddev() / std::sqrt(static_cast<double>(count_))
                      : 0.0;
  }

  void reset() noexcept { *this = UintMoments{}; }

 private:
  /// n·Σx² − (Σx)² = n²·variance, computed exactly in 128-bit integers —
  /// non-negative by Cauchy–Schwarz, and no cancellation before the
  /// single rounding to double.
  [[nodiscard]] double scaled_m2() const noexcept {
    const Uint128 n_sumsq = static_cast<Uint128>(count_) * sumsq_;
    const Uint128 sum_sq = static_cast<Uint128>(sum_) * sum_;
    return static_cast<double>(n_sumsq - sum_sq);
  }

  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  Uint128 sumsq_ = 0;
};

}  // namespace iba::stats
