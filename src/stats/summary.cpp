#include "stats/summary.hpp"

#include <cstdio>

namespace iba::stats {

std::string Summary::to_string() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%.4g ± %.2g [%.4g, %.4g]", mean(), sem(),
                min(), max());
  return buf;
}

}  // namespace iba::stats
