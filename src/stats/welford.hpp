// Numerically stable online moment accumulation (Welford / Pébay).
//
// OnlineMoments accumulates count, mean, and central moments M2–M4 in one
// pass with O(1) state, supports merging partial accumulators (for
// parallel replications), and derives variance, skewness, and kurtosis.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/assert.hpp"

namespace iba::stats {

/// Single-pass accumulator for mean/variance/skewness/kurtosis plus
/// min/max. Merge-able: merging two accumulators equals accumulating the
/// concatenated samples (up to rounding).
class OnlineMoments {
 public:
  void add(double x) noexcept {
    const double n1 = static_cast<double>(count_);
    ++count_;
    const double n = static_cast<double>(count_);
    const double delta = x - mean_;
    const double delta_n = delta / n;
    const double delta_n2 = delta_n * delta_n;
    const double term1 = delta * delta_n * n1;
    mean_ += delta_n;
    m4_ += term1 * delta_n2 * (n * n - 3 * n + 3) + 6 * delta_n2 * m2_ -
           4 * delta_n * m3_;
    m3_ += term1 * delta_n * (n - 2) - 3 * delta_n * m2_;
    m2_ += term1;
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Pébay's pairwise update: after merging, *this describes the union of
  /// both sample sets.
  void merge(const OnlineMoments& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double n = na + nb;
    const double delta = other.mean_ - mean_;
    const double delta2 = delta * delta;
    const double delta3 = delta2 * delta;
    const double delta4 = delta2 * delta2;

    const double mean = mean_ + delta * nb / n;
    const double m2 = m2_ + other.m2_ + delta2 * na * nb / n;
    const double m3 = m3_ + other.m3_ +
                      delta3 * na * nb * (na - nb) / (n * n) +
                      3 * delta * (na * other.m2_ - nb * m2_) / n;
    const double m4 =
        m4_ + other.m4_ +
        delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
        6 * delta2 * (na * na * other.m2_ + nb * nb * m2_) / (n * n) +
        4 * delta * (na * other.m3_ - nb * m3_) / n;

    count_ += other.count_;
    mean_ = mean;
    m2_ = m2;
    m3_ = m3;
    m4_ = m4;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Population variance (divides by n).
  [[nodiscard]] double variance() const noexcept {
    return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
  }

  /// Sample variance (divides by n − 1); 0 for fewer than two samples.
  [[nodiscard]] double sample_variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }

  [[nodiscard]] double stddev() const noexcept {
    return std::sqrt(sample_variance());
  }

  /// Standard error of the mean.
  [[nodiscard]] double sem() const noexcept {
    return count_ > 0 ? stddev() / std::sqrt(static_cast<double>(count_))
                      : 0.0;
  }

  [[nodiscard]] double skewness() const noexcept {
    if (count_ < 2 || m2_ == 0.0) return 0.0;
    const double n = static_cast<double>(count_);
    return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
  }

  /// Excess kurtosis (normal distribution → 0).
  [[nodiscard]] double kurtosis() const noexcept {
    if (count_ < 2 || m2_ == 0.0) return 0.0;
    const double n = static_cast<double>(count_);
    return n * m4_ / (m2_ * m2_) - 3.0;
  }

  /// +inf / −inf when empty, so callers should check count() first.
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  void reset() noexcept { *this = OnlineMoments{}; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace iba::stats
