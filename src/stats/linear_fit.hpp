// Ordinary least-squares line fit — used by the benches to verify the
// paper's predicted slopes (e.g. normalized pool vs i has slope ln(2)/c
// in Figure 4 right) rather than eyeballing them.
#pragma once

#include <cstddef>
#include <vector>

namespace iba::stats {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  ///< coefficient of determination

  [[nodiscard]] double at(double x) const noexcept {
    return slope * x + intercept;
  }
};

/// Fits y = slope·x + intercept by least squares. Requires at least two
/// distinct x values; returns a flat fit through the mean otherwise.
[[nodiscard]] LinearFit fit_line(const std::vector<double>& xs,
                                 const std::vector<double>& ys) noexcept;

}  // namespace iba::stats
