#include "stats/ecdf.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace iba::stats {

Ecdf::Ecdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::cdf(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const {
  IBA_EXPECT(!sorted_.empty(), "Ecdf::quantile: empty sample");
  IBA_EXPECT(q >= 0.0 && q <= 1.0, "Ecdf::quantile: q must lie in [0, 1]");
  if (q == 0.0) return sorted_.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  return sorted_[std::min(sorted_.size() - 1, rank - 1)];
}

double Ecdf::ks_distance(const Ecdf& a, const Ecdf& b) {
  IBA_EXPECT(a.size() > 0 && b.size() > 0, "ks_distance: empty sample");
  double sup = 0.0;
  std::size_t ia = 0, ib = 0;
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  while (ia < a.size() && ib < b.size()) {
    const double xa = a.sorted_[ia];
    const double xb = b.sorted_[ib];
    const double x = std::min(xa, xb);
    if (xa <= x) ++ia;
    if (xb <= x) ++ib;
    // consume duplicates of x entirely before evaluating the gap
    while (ia < a.size() && a.sorted_[ia] == x) ++ia;
    while (ib < b.size() && b.sorted_[ib] == x) ++ib;
    const double fa = static_cast<double>(ia) / na;
    const double fb = static_cast<double>(ib) / nb;
    sup = std::max(sup, std::abs(fa - fb));
  }
  return sup;
}

}  // namespace iba::stats
