// Percentile-bootstrap confidence intervals for the mean of a sample —
// used by the replication runner to attach uncertainty to every reported
// metric without distributional assumptions.
#pragma once

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "common/assert.hpp"
#include "rng/bounded.hpp"

namespace iba::stats {

struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
  double point = 0.0;

  [[nodiscard]] double half_width() const noexcept { return (hi - lo) / 2; }
};

/// Percentile bootstrap CI for the mean: resamples `samples` with
/// replacement `resamples` times and reports the (α/2, 1 − α/2) quantiles
/// of the resampled means.
template <std::uniform_random_bit_generator Engine>
[[nodiscard]] ConfidenceInterval bootstrap_mean_ci(
    Engine& engine, const std::vector<double>& samples, double alpha = 0.05,
    std::size_t resamples = 1000) {
  IBA_EXPECT(!samples.empty(), "bootstrap_mean_ci: empty sample");
  IBA_EXPECT(alpha > 0.0 && alpha < 1.0, "bootstrap_mean_ci: bad alpha");

  double sum = 0.0;
  for (double x : samples) sum += x;
  const double point = sum / static_cast<double>(samples.size());
  if (samples.size() == 1) return {point, point, point};

  std::vector<double> means(resamples);
  for (auto& m : means) {
    double s = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      s += samples[rng::bounded(engine, samples.size())];
    }
    m = s / static_cast<double>(samples.size());
  }
  std::sort(means.begin(), means.end());
  const auto lo_idx = static_cast<std::size_t>(
      std::floor(alpha / 2 * static_cast<double>(resamples)));
  const auto hi_idx = std::min(
      resamples - 1, static_cast<std::size_t>(std::ceil(
                         (1 - alpha / 2) * static_cast<double>(resamples))));
  return {means[lo_idx], means[hi_idx], point};
}

}  // namespace iba::stats
