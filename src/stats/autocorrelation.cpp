#include "stats/autocorrelation.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace iba::stats {

namespace {

double mean_of(const std::vector<double>& v, std::size_t from,
               std::size_t to) noexcept {
  double s = 0.0;
  for (std::size_t i = from; i < to; ++i) s += v[i];
  return to > from ? s / static_cast<double>(to - from) : 0.0;
}

}  // namespace

double autocorrelation(const std::vector<double>& series,
                       std::size_t lag) noexcept {
  const std::size_t n = series.size();
  if (lag >= n || n < 2) return 0.0;
  const double mu = mean_of(series, 0, n);
  double var = 0.0;
  for (double x : series) var += (x - mu) * (x - mu);
  if (var == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i + lag < n; ++i) {
    cov += (series[i] - mu) * (series[i + lag] - mu);
  }
  return cov / var;
}

double effective_sample_size(const std::vector<double>& series) noexcept {
  const std::size_t n = series.size();
  if (n < 2) return static_cast<double>(n);
  double rho_sum = 0.0;
  for (std::size_t lag = 1; lag < n / 2; ++lag) {
    const double rho = autocorrelation(series, lag);
    if (rho <= 0.0) break;
    rho_sum += rho;
  }
  return static_cast<double>(n) / (1.0 + 2.0 * rho_sum);
}

std::size_t mser_truncation_point(const std::vector<double>& series,
                                  std::size_t batch) noexcept {
  if (batch == 0) batch = 1;
  const std::size_t batches = series.size() / batch;
  if (batches < 4) return 0;

  // Batch means reduce the series' autocorrelation before applying MSER.
  std::vector<double> bm(batches);
  for (std::size_t b = 0; b < batches; ++b) {
    bm[b] = mean_of(series, b * batch, (b + 1) * batch);
  }

  // Prefix sums for O(1) suffix mean/variance at every candidate cut.
  std::vector<double> ps(batches + 1, 0.0), ps2(batches + 1, 0.0);
  for (std::size_t b = 0; b < batches; ++b) {
    ps[b + 1] = ps[b] + bm[b];
    ps2[b + 1] = ps2[b] + bm[b] * bm[b];
  }

  double best = std::numeric_limits<double>::infinity();
  std::size_t best_cut = 0;
  for (std::size_t d = 0; d <= batches / 2; ++d) {
    const auto k = static_cast<double>(batches - d);
    const double sum = ps[batches] - ps[d];
    const double sum2 = ps2[batches] - ps2[d];
    const double var = sum2 / k - (sum / k) * (sum / k);
    const double mse = var / k;  // marginal standard error (squared)
    if (mse < best) {
      best = mse;
      best_cut = d;
    }
  }
  return best_cut * batch;
}

bool windows_agree(const std::vector<double>& series, std::size_t window,
                   double rel_tol) noexcept {
  if (window == 0 || series.size() < 2 * window) return false;
  const std::size_t n = series.size();
  const double recent = mean_of(series, n - window, n);
  const double previous = mean_of(series, n - 2 * window, n - window);
  const double scale =
      std::max({std::abs(recent), std::abs(previous), 1e-12});
  return std::abs(recent - previous) / scale <= rel_tol;
}

}  // namespace iba::stats
