// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte
// buffers — used by the checkpoint writer to make on-disk corruption
// (bit flips, truncation, trailing garbage) detectable before any field
// is parsed. Table-driven, one 1 KiB table built on first use.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace iba::common {

namespace detail {

inline const std::array<std::uint32_t, 256>& crc32_table() noexcept {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace detail

/// CRC-32 of `data`, with the conventional init/final inversion (matches
/// zlib's crc32() and POSIX cksum tooling that uses the reflected poly).
[[nodiscard]] inline std::uint32_t crc32(std::string_view data) noexcept {
  const auto& table = detail::crc32_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    const auto byte = static_cast<std::uint8_t>(ch);
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace iba::common
