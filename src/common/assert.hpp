// Lightweight contract checking for the iba library.
//
// IBA_ASSERT(cond)        — internal invariant; compiled out in NDEBUG builds.
// IBA_EXPECT(cond, msg)   — precondition on a public API; always checked,
//                           throws iba::ContractViolation on failure.
//
// Rationale (C++ Core Guidelines I.6/E.12): broken *internal* invariants are
// bugs and may abort, while *caller* errors on the public surface are
// reported via exceptions so applications can handle misconfiguration.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace iba {

/// Thrown when a public-API precondition is violated (bad configuration,
/// out-of-range argument, ...). Carries a human-readable explanation.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

namespace detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) noexcept {
  std::fprintf(stderr, "iba: internal invariant violated: %s (%s:%d)\n", expr,
               file, line);
  std::abort();
}

}  // namespace detail
}  // namespace iba

#ifdef NDEBUG
#define IBA_ASSERT(cond) ((void)0)
#else
#define IBA_ASSERT(cond)                                    \
  ((cond) ? (void)0                                         \
          : ::iba::detail::assert_fail(#cond, __FILE__, __LINE__))
#endif

#define IBA_EXPECT(cond, msg)                               \
  ((cond) ? (void)0                                         \
          : throw ::iba::ContractViolation(std::string("iba: ") + (msg)))
