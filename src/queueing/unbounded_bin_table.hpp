// UnboundedBinTable — bins without a capacity limit, for the c = ∞
// baselines (GREEDY[1] ≡ CAPPED(∞, λ) and the batch GREEDY[d] of
// Berenbrink et al. [PODC'16]).
//
// Each bin is a grow-only vector with a head cursor; the storage is
// compacted when the dead prefix dominates, giving amortized O(1)
// push/pop without std::deque's per-block allocation churn.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace iba::queueing {

/// n unbounded FIFO queues of ball labels.
class UnboundedBinTable {
 public:
  using Label = std::uint64_t;

  explicit UnboundedBinTable(std::uint32_t bins);

  void push(std::uint32_t bin, Label label) {
    IBA_ASSERT(bin < queues_.size());
    queues_[bin].items.push_back(label);
    ++total_load_;
  }

  [[nodiscard]] Label pop_front(std::uint32_t bin) {
    --total_load_;
    return remove_front(bin);
  }

  /// pop_front without the total_load_ update — the sharded delete phase
  /// calls this from worker threads (disjoint bin ranges) and commits the
  /// count afterwards via adjust_total_load().
  [[nodiscard]] Label remove_front(std::uint32_t bin) {
    IBA_ASSERT(bin < queues_.size());
    Queue& q = queues_[bin];
    IBA_ASSERT(q.head < q.items.size());
    const Label label = q.items[q.head++];
    if (q.head >= 64 && q.head * 2 >= q.items.size()) q.compact();
    return label;
  }

  /// Appends `count` labels produced by `label_at(k)` for k in [0, count)
  /// to bin `bin`, in order. Defers total_load_ (bin-major bulk accept).
  template <typename LabelAt>
  void push_bulk(std::uint32_t bin, std::uint64_t count, LabelAt&& label_at) {
    IBA_ASSERT(bin < queues_.size());
    Queue& q = queues_[bin];
    for (std::uint64_t k = 0; k < count; ++k) {
      q.items.push_back(label_at(k));  // amortized growth; no exact reserve
    }
  }

  /// Commits the total-load delta of preceding bulk/deferred operations.
  void adjust_total_load(std::int64_t delta) noexcept {
    total_load_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(total_load_) + delta);
  }

  [[nodiscard]] std::uint64_t load(std::uint32_t bin) const noexcept {
    IBA_ASSERT(bin < queues_.size());
    return queues_[bin].items.size() - queues_[bin].head;
  }

  /// Front-to-back view of bin `bin`'s queue — const iteration without
  /// draining (snapshots peek through this instead of copying the whole
  /// table). Invalidated by any mutation of the bin.
  [[nodiscard]] std::span<const Label> items(std::uint32_t bin) const noexcept {
    IBA_ASSERT(bin < queues_.size());
    const Queue& q = queues_[bin];
    return {q.items.data() + q.head, q.items.size() - q.head};
  }

  [[nodiscard]] std::uint32_t bins() const noexcept {
    return static_cast<std::uint32_t>(queues_.size());
  }
  [[nodiscard]] std::uint64_t total_load() const noexcept {
    return total_load_;
  }

  [[nodiscard]] std::uint64_t max_load() const noexcept;
  [[nodiscard]] std::uint32_t empty_bins() const noexcept;

  void clear() noexcept;

 private:
  struct Queue {
    std::vector<Label> items;
    std::size_t head = 0;

    void compact() {
      items.erase(items.begin(),
                  items.begin() + static_cast<std::ptrdiff_t>(head));
      head = 0;
    }
  };

  std::vector<Queue> queues_;
  std::uint64_t total_load_ = 0;
};

}  // namespace iba::queueing
