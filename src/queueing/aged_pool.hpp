// AgedPool — the pool of unallocated balls, bucketed by generation round.
//
// Balls of the same round are indistinguishable, so the pool is a deque of
// (label, count) buckets ordered oldest → youngest. "Bins prefer the
// oldest balls" then falls out of iterating buckets in order while bins
// accept greedily, with no sorting and O(#buckets + #balls) work per round.
// The number of buckets is bounded by the oldest ball's age, which the
// paper shows stays small w.h.p.
#pragma once

#include <cstdint>
#include <deque>

#include "common/assert.hpp"

namespace iba::queueing {

/// Multiset of balls keyed by generation label, ordered oldest-first.
class AgedPool {
 public:
  using Label = std::uint64_t;

  struct Bucket {
    Label label;
    std::uint64_t count;
  };

  /// Adds `count` balls generated in round `label`. Labels must arrive in
  /// non-decreasing order (they do: survivors are re-added oldest-first,
  /// then the new round's balls carry the largest label so far).
  void add(Label label, std::uint64_t count) {
    if (count == 0) return;
    IBA_ASSERT(buckets_.empty() || buckets_.back().label <= label);
    if (!buckets_.empty() && buckets_.back().label == label) {
      buckets_.back().count += count;
    } else {
      buckets_.push_back({label, count});
    }
    total_ += count;
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] bool empty() const noexcept { return total_ == 0; }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return buckets_.size();
  }

  [[nodiscard]] const std::deque<Bucket>& buckets() const noexcept {
    return buckets_;
  }

  /// Label of the oldest ball. Precondition: !empty().
  [[nodiscard]] Label oldest() const noexcept {
    IBA_ASSERT(!buckets_.empty());
    return buckets_.front().label;
  }

  /// Age of the oldest ball at round `now` (0 when empty).
  [[nodiscard]] std::uint64_t oldest_age(std::uint64_t now) const noexcept {
    if (buckets_.empty()) return 0;
    IBA_ASSERT(buckets_.front().label <= now);
    return now - buckets_.front().label;
  }

  /// Number of balls with label ≤ `cutoff` (oldest-first prefix count).
  [[nodiscard]] std::uint64_t count_older_or_equal(
      Label cutoff) const noexcept {
    std::uint64_t count = 0;
    for (const Bucket& b : buckets_) {
      if (b.label > cutoff) break;
      count += b.count;
    }
    return count;
  }

  void clear() noexcept {
    buckets_.clear();
    total_ = 0;
  }

  void swap(AgedPool& other) noexcept {
    buckets_.swap(other.buckets_);
    std::swap(total_, other.total_);
  }

 private:
  std::deque<Bucket> buckets_;
  std::uint64_t total_ = 0;
};

}  // namespace iba::queueing
