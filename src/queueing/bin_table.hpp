// BinTable — the bins of CAPPED(c, λ): n FIFO queues of ball labels, each
// with capacity c, laid out in one flat n×c array (cache-friendly, zero
// per-bin allocation). This is the hot data structure of the simulator.
//
// Slot arithmetic uses conditional wrap instead of `% capacity_`: every
// index that needs wrapping is < 2·capacity by construction (head < c,
// size ≤ c), so one compare-and-subtract replaces an integer division in
// ops that are otherwise one load/store.
//
// Per-bin head and size share one 32-bit word (head in the high 16
// bits, size in the low 16 — hence capacity ≤ 65535). The round
// kernel's hot loops then touch a single cache line per bin for cursor
// state instead of two, and a push is one +1 on the packed word.
//
// The *_bulk / adjust_total_load API exists for the bin-major round
// kernel (core/capped.cpp): shards own disjoint bin ranges, so per-bin
// state is race-free, but total_load_ is shared — bulk operations defer
// it and the kernel commits per-shard deltas once, sequentially.
#pragma once

#include <cstdint>

#include "common/assert.hpp"
#include "core/arena.hpp"

namespace iba::queueing {

/// n bounded FIFO queues of 64-bit ball labels. Queue order is insertion
/// order; pop_front() implements the paper's FIFO deletion.
class BinTable {
 public:
  using Label = std::uint64_t;

  /// Decoding of the packed per-bin cursor word (see packed()).
  static constexpr std::uint32_t kSizeMask = 0xFFFFu;
  static constexpr std::uint32_t kHeadShift = 16;

  /// With an arena, the flat label and cursor arrays come from it
  /// (mapped, optionally huge-paged) and pages stay untouched until the
  /// caller's first-touch pass decides their NUMA placement. Without
  /// one, allocation behaves like the plain heap path. The arena must
  /// outlive the table.
  explicit BinTable(std::uint32_t bins, std::uint32_t capacity,
                    core::Arena* arena = nullptr);

  /// Enqueues `label` at bin `bin`. Precondition: load(bin) < capacity().
  void push(std::uint32_t bin, Label label) noexcept {
    IBA_ASSERT(bin < bins_);
    const std::uint32_t hs = hs_[bin];
    const std::uint32_t size = hs & kSizeMask;
    IBA_ASSERT(size < capacity_);
    std::uint32_t slot = (hs >> kHeadShift) + size;
    if (slot >= capacity_) slot -= capacity_;
    labels_[static_cast<std::size_t>(bin) * capacity_ + slot] = label;
    hs_[bin] = hs + 1;
    ++total_load_;
  }

  /// Dequeues and returns the oldest-enqueued label of bin `bin`.
  [[nodiscard]] Label pop_front(std::uint32_t bin) noexcept {
    --total_load_;
    return remove_at(bin, 0);
  }

  /// Dequeues and returns the newest-enqueued label of bin `bin`
  /// (LIFO service — used by the deletion-discipline ablation).
  [[nodiscard]] Label pop_back(std::uint32_t bin) noexcept {
    IBA_ASSERT(bin < bins_);
    IBA_ASSERT((hs_[bin] & kSizeMask) > 0);
    --total_load_;
    return remove_at(bin, (hs_[bin] & kSizeMask) - 1);
  }

  /// Removes and returns the label `i` positions behind the front,
  /// preserving the relative order of the remainder (O(c) shift —
  /// capacities are small). Used by uniform-random service.
  [[nodiscard]] Label pop_at(std::uint32_t bin, std::uint32_t i) noexcept {
    --total_load_;
    return remove_at(bin, i);
  }

  /// pop_at without the total_load_ update — the sharded delete phase
  /// calls this from worker threads and commits the count afterwards
  /// via adjust_total_load(). Position 0 / size-1 take O(1) fast paths.
  [[nodiscard]] Label remove_at(std::uint32_t bin, std::uint32_t i) noexcept {
    IBA_ASSERT(bin < bins_);
    const std::uint32_t hs = hs_[bin];
    const std::uint32_t size = hs & kSizeMask;
    const std::uint32_t head = hs >> kHeadShift;
    IBA_ASSERT(i < size);
    const std::size_t base = static_cast<std::size_t>(bin) * capacity_;
    if (i == 0) {  // front: advance the head cursor
      const std::uint32_t next = head + 1 == capacity_ ? 0 : head + 1;
      hs_[bin] = (next << kHeadShift) | (size - 1);
      return labels_[base + head];
    }
    hs_[bin] = hs - 1;  // head unchanged, size - 1
    std::uint32_t cur = head + i;
    if (cur >= capacity_) cur -= capacity_;
    const Label label = labels_[base + cur];
    // Shift the suffix forward one slot (no-op when i was the back).
    for (std::uint32_t k = i; k < size - 1; ++k) {
      const std::uint32_t next = cur + 1 == capacity_ ? 0 : cur + 1;
      labels_[base + cur] = labels_[base + next];
      cur = next;
    }
    return label;
  }

  /// Appends `count` labels produced by `label_at(k)` for k in [0, count)
  /// to bin `bin`'s queue, in order. Precondition: they fit. Defers
  /// total_load_ (see adjust_total_load). This is the bin-major kernel's
  /// bulk accept: the slot walk is sequential, so a bin's whole candidate
  /// batch lands in one or two cache lines.
  template <typename LabelAt>
  void push_bulk(std::uint32_t bin, std::uint32_t count,
                 LabelAt&& label_at) noexcept {
    IBA_ASSERT(bin < bins_);
    const std::uint32_t hs = hs_[bin];
    IBA_ASSERT((hs & kSizeMask) + count <= capacity_);
    const std::size_t base = static_cast<std::size_t>(bin) * capacity_;
    std::uint32_t slot = (hs >> kHeadShift) + (hs & kSizeMask);
    if (slot >= capacity_) slot -= capacity_;
    for (std::uint32_t k = 0; k < count; ++k) {
      labels_[base + slot] = label_at(k);
      slot = slot + 1 == capacity_ ? 0 : slot + 1;
    }
    hs_[bin] = hs + count;
  }

  /// Empties bin `bin`, calling `sink(label)` in front-to-back order
  /// (crash-requeue). Defers total_load_.
  template <typename Sink>
  void drain_bulk(std::uint32_t bin, Sink&& sink) noexcept {
    IBA_ASSERT(bin < bins_);
    const std::uint32_t hs = hs_[bin];
    const std::uint32_t size = hs & kSizeMask;
    const std::size_t base = static_cast<std::size_t>(bin) * capacity_;
    std::uint32_t cur = hs >> kHeadShift;
    for (std::uint32_t k = 0; k < size; ++k) {
      sink(labels_[base + cur]);
      cur = cur + 1 == capacity_ ? 0 : cur + 1;
    }
    hs_[bin] = 0;
  }

  /// Commits the total-load delta of preceding bulk/deferred operations.
  /// Callers serialize this (the kernel sums per-shard deltas first).
  void adjust_total_load(std::int64_t delta) noexcept {
    total_load_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(total_load_) + delta);
  }

  [[nodiscard]] std::uint32_t load(std::uint32_t bin) const noexcept {
    IBA_ASSERT(bin < bins_);
    return hs_[bin] & kSizeMask;
  }

  /// Label `i` positions behind the front of `bin` (0 = next to delete).
  [[nodiscard]] Label peek(std::uint32_t bin, std::uint32_t i) const noexcept {
    IBA_ASSERT(bin < bins_);
    IBA_ASSERT(i < (hs_[bin] & kSizeMask));
    std::uint32_t slot = (hs_[bin] >> kHeadShift) + i;
    if (slot >= capacity_) slot -= capacity_;
    return labels_[static_cast<std::size_t>(bin) * capacity_ + slot];
  }

  [[nodiscard]] std::uint32_t bins() const noexcept { return bins_; }
  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t total_load() const noexcept {
    return total_load_;
  }

  /// Direct read of the packed head|size words (decode with kHeadShift /
  /// kSizeMask). The kernel's accept pass walks loads linearly; going
  /// through load() per bin is measurably slower at n = 10^6.
  [[nodiscard]] const std::uint32_t* packed() const noexcept {
    return hs_.data();
  }

  /// Raw mutable views of the per-bin arrays for the fused round kernel
  /// (core/capped.cpp): its chunked sweep updates the packed cursors and
  /// labels in place and commits the total-load delta once per round via
  /// adjust_total_load().
  [[nodiscard]] std::uint32_t* packed_mut() noexcept { return hs_.data(); }
  [[nodiscard]] Label* labels_mut() noexcept { return labels_.data(); }

  /// Re-lays the table out for a larger per-bin capacity, preserving
  /// every queue's contents and FIFO order (each queue is rewritten at
  /// head 0 in the widened flat array). O(n·c′) — called only at a
  /// controller's rare capacity-grow decisions, never on the round hot
  /// path. Shrinking storage is never needed: a lowered *acceptance*
  /// bound drains naturally (core/capped.cpp), and slot arithmetic is
  /// indifferent to spare slots.
  void grow_capacity(std::uint32_t new_capacity);

  /// Maximum end-of-round load over all bins (O(n) scan).
  [[nodiscard]] std::uint32_t max_load() const noexcept;

  /// Number of bins with load 0 (O(n) scan).
  [[nodiscard]] std::uint32_t empty_bins() const noexcept;

  void clear() noexcept;

 private:
  std::uint32_t bins_;
  std::uint32_t capacity_;
  std::uint64_t total_load_ = 0;
  core::Arena* arena_ = nullptr;         // not owned; may be null
  core::ArenaBuffer<Label> labels_;      // n × c slots
  core::ArenaBuffer<std::uint32_t> hs_;  // head<<16 | size, per bin
};

}  // namespace iba::queueing
