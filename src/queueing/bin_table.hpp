// BinTable — the bins of CAPPED(c, λ): n FIFO queues of ball labels, each
// with capacity c, laid out in one flat n×c array (cache-friendly, zero
// per-bin allocation). This is the hot data structure of the simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace iba::queueing {

/// n bounded FIFO queues of 64-bit ball labels. Queue order is insertion
/// order; pop_front() implements the paper's FIFO deletion.
class BinTable {
 public:
  using Label = std::uint64_t;

  BinTable(std::uint32_t bins, std::uint32_t capacity);

  /// Enqueues `label` at bin `bin`. Precondition: load(bin) < capacity().
  void push(std::uint32_t bin, Label label) noexcept {
    IBA_ASSERT(bin < bins_);
    IBA_ASSERT(size_[bin] < capacity_);
    const std::size_t slot =
        static_cast<std::size_t>(bin) * capacity_ +
        (head_[bin] + size_[bin]) % capacity_;
    labels_[slot] = label;
    ++size_[bin];
    ++total_load_;
  }

  /// Dequeues and returns the oldest-enqueued label of bin `bin`.
  [[nodiscard]] Label pop_front(std::uint32_t bin) noexcept {
    IBA_ASSERT(bin < bins_);
    IBA_ASSERT(size_[bin] > 0);
    const std::size_t slot =
        static_cast<std::size_t>(bin) * capacity_ + head_[bin];
    head_[bin] = static_cast<std::uint32_t>((head_[bin] + 1) % capacity_);
    --size_[bin];
    --total_load_;
    return labels_[slot];
  }

  /// Dequeues and returns the newest-enqueued label of bin `bin`
  /// (LIFO service — used by the deletion-discipline ablation).
  [[nodiscard]] Label pop_back(std::uint32_t bin) noexcept {
    IBA_ASSERT(bin < bins_);
    IBA_ASSERT(size_[bin] > 0);
    --size_[bin];
    --total_load_;
    return labels_[static_cast<std::size_t>(bin) * capacity_ +
                   (head_[bin] + size_[bin]) % capacity_];
  }

  /// Removes and returns the label `i` positions behind the front,
  /// preserving the relative order of the remainder (O(c) shift —
  /// capacities are small). Used by uniform-random service.
  [[nodiscard]] Label pop_at(std::uint32_t bin, std::uint32_t i) noexcept {
    IBA_ASSERT(bin < bins_);
    IBA_ASSERT(i < size_[bin]);
    const std::size_t base = static_cast<std::size_t>(bin) * capacity_;
    const Label label = labels_[base + (head_[bin] + i) % capacity_];
    for (std::uint32_t k = i; k + 1 < size_[bin]; ++k) {
      labels_[base + (head_[bin] + k) % capacity_] =
          labels_[base + (head_[bin] + k + 1) % capacity_];
    }
    --size_[bin];
    --total_load_;
    return label;
  }

  [[nodiscard]] std::uint32_t load(std::uint32_t bin) const noexcept {
    IBA_ASSERT(bin < bins_);
    return size_[bin];
  }

  /// Label `i` positions behind the front of `bin` (0 = next to delete).
  [[nodiscard]] Label peek(std::uint32_t bin, std::uint32_t i) const noexcept {
    IBA_ASSERT(bin < bins_);
    IBA_ASSERT(i < size_[bin]);
    return labels_[static_cast<std::size_t>(bin) * capacity_ +
                   (head_[bin] + i) % capacity_];
  }

  [[nodiscard]] std::uint32_t bins() const noexcept { return bins_; }
  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t total_load() const noexcept {
    return total_load_;
  }

  /// Maximum end-of-round load over all bins (O(n) scan).
  [[nodiscard]] std::uint32_t max_load() const noexcept;

  /// Number of bins with load 0 (O(n) scan).
  [[nodiscard]] std::uint32_t empty_bins() const noexcept;

  void clear() noexcept;

 private:
  std::uint32_t bins_;
  std::uint32_t capacity_;
  std::uint64_t total_load_ = 0;
  std::vector<Label> labels_;        // n × c slots
  std::vector<std::uint32_t> head_;  // front index per bin
  std::vector<std::uint32_t> size_;  // current load per bin
};

}  // namespace iba::queueing
