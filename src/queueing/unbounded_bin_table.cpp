#include "queueing/unbounded_bin_table.hpp"

#include <algorithm>

namespace iba::queueing {

UnboundedBinTable::UnboundedBinTable(std::uint32_t bins) : queues_(bins) {
  IBA_EXPECT(bins > 0, "UnboundedBinTable: needs at least one bin");
}

std::uint64_t UnboundedBinTable::max_load() const noexcept {
  std::uint64_t best = 0;
  for (const Queue& q : queues_) {
    best = std::max<std::uint64_t>(best, q.items.size() - q.head);
  }
  return best;
}

std::uint32_t UnboundedBinTable::empty_bins() const noexcept {
  std::uint32_t count = 0;
  for (const Queue& q : queues_) {
    if (q.items.size() == q.head) ++count;
  }
  return count;
}

void UnboundedBinTable::clear() noexcept {
  for (Queue& q : queues_) {
    q.items.clear();
    q.head = 0;
  }
  total_load_ = 0;
}

}  // namespace iba::queueing
