// Fixed-capacity FIFO ring buffer with runtime-chosen capacity.
//
// Backs the per-bin queues of processes whose buffers have a small, known
// bound (MODCAPPED's phase buffers): no allocation after construction,
// O(1) push/pop, indices wrap by masking-free modular arithmetic.
#pragma once

#include <cstddef>
#include <vector>

#include "common/assert.hpp"

namespace iba::queueing {

/// Bounded FIFO of trivially copyable values. push() onto the back,
/// pop_front() from the front; the caller must respect capacity.
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : buf_(capacity > 0 ? capacity : 1) {
    IBA_EXPECT(capacity > 0, "RingBuffer: capacity must be positive");
  }

  void push(const T& value) noexcept {
    IBA_ASSERT(size_ < buf_.size());
    buf_[(head_ + size_) % buf_.size()] = value;
    ++size_;
  }

  [[nodiscard]] T pop_front() noexcept {
    IBA_ASSERT(size_ > 0);
    const T value = buf_[head_];
    head_ = (head_ + 1) % buf_.size();
    --size_;
    return value;
  }

  [[nodiscard]] const T& front() const noexcept {
    IBA_ASSERT(size_ > 0);
    return buf_[head_];
  }

  /// Element `i` positions behind the front (0 = front).
  [[nodiscard]] const T& at(std::size_t i) const noexcept {
    IBA_ASSERT(i < size_);
    return buf_[(head_ + i) % buf_.size()];
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == buf_.size(); }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace iba::queueing
