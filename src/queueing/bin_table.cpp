#include "queueing/bin_table.hpp"

#include <algorithm>

namespace iba::queueing {

BinTable::BinTable(std::uint32_t bins, std::uint32_t capacity)
    : bins_(bins), capacity_(capacity) {
  IBA_EXPECT(bins > 0, "BinTable: needs at least one bin");
  IBA_EXPECT(capacity > 0, "BinTable: capacity must be positive");
  IBA_EXPECT(capacity <= kSizeMask,
             "BinTable: capacity must fit the packed 16-bit size field");
  labels_.resize(static_cast<std::size_t>(bins) * capacity);
  hs_.assign(bins, 0);
}

std::uint32_t BinTable::max_load() const noexcept {
  std::uint32_t max = 0;
  for (const std::uint32_t hs : hs_) {
    if ((hs & kSizeMask) > max) max = hs & kSizeMask;
  }
  return max;
}

std::uint32_t BinTable::empty_bins() const noexcept {
  std::uint32_t empty = 0;
  for (const std::uint32_t hs : hs_) {
    empty += static_cast<std::uint32_t>((hs & kSizeMask) == 0);
  }
  return empty;
}

void BinTable::clear() noexcept {
  std::fill(hs_.begin(), hs_.end(), 0u);
  total_load_ = 0;
}

}  // namespace iba::queueing
