#include "queueing/bin_table.hpp"

#include <algorithm>

namespace iba::queueing {

BinTable::BinTable(std::uint32_t bins, std::uint32_t capacity,
                   core::Arena* arena)
    : bins_(bins), capacity_(capacity), arena_(arena) {
  IBA_EXPECT(bins > 0, "BinTable: needs at least one bin");
  IBA_EXPECT(capacity > 0, "BinTable: capacity must be positive");
  IBA_EXPECT(capacity <= kSizeMask,
             "BinTable: capacity must fit the packed 16-bit size field");
  labels_.set_arena(arena);
  hs_.set_arena(arena);
  // Fresh arena/heap blocks are logically zero, so resize (not assign)
  // keeps mapped pages untouched for the caller's first-touch pass.
  labels_.resize(static_cast<std::size_t>(bins) * capacity);
  hs_.resize(bins);
}

void BinTable::grow_capacity(std::uint32_t new_capacity) {
  IBA_EXPECT(new_capacity >= capacity_,
             "BinTable: grow_capacity cannot shrink the storage");
  IBA_EXPECT(new_capacity <= kSizeMask,
             "BinTable: capacity must fit the packed 16-bit size field");
  if (new_capacity == capacity_) return;
  core::ArenaBuffer<Label> widened;
  widened.set_arena(arena_);
  widened.resize(static_cast<std::size_t>(bins_) * new_capacity);
  for (std::uint32_t bin = 0; bin < bins_; ++bin) {
    const std::uint32_t hs = hs_[bin];
    const std::uint32_t size = hs & kSizeMask;
    std::uint32_t cur = hs >> kHeadShift;
    const std::size_t src = static_cast<std::size_t>(bin) * capacity_;
    const std::size_t dst = static_cast<std::size_t>(bin) * new_capacity;
    for (std::uint32_t k = 0; k < size; ++k) {
      widened[dst + k] = labels_[src + cur];
      cur = cur + 1 == capacity_ ? 0 : cur + 1;
    }
    hs_[bin] = size;  // head 0, same size
  }
  labels_ = std::move(widened);
  capacity_ = new_capacity;
}

std::uint32_t BinTable::max_load() const noexcept {
  std::uint32_t max = 0;
  for (const std::uint32_t hs : hs_) {
    if ((hs & kSizeMask) > max) max = hs & kSizeMask;
  }
  return max;
}

std::uint32_t BinTable::empty_bins() const noexcept {
  std::uint32_t empty = 0;
  for (const std::uint32_t hs : hs_) {
    empty += static_cast<std::uint32_t>((hs & kSizeMask) == 0);
  }
  return empty;
}

void BinTable::clear() noexcept {
  std::fill(hs_.begin(), hs_.end(), 0u);
  total_load_ = 0;
}

}  // namespace iba::queueing
