#include "queueing/bin_table.hpp"

#include <algorithm>

namespace iba::queueing {

BinTable::BinTable(std::uint32_t bins, std::uint32_t capacity)
    : bins_(bins), capacity_(capacity) {
  IBA_EXPECT(bins > 0, "BinTable: needs at least one bin");
  IBA_EXPECT(capacity > 0, "BinTable: capacity must be positive");
  labels_.resize(static_cast<std::size_t>(bins) * capacity);
  head_.assign(bins, 0);
  size_.assign(bins, 0);
}

std::uint32_t BinTable::max_load() const noexcept {
  return *std::max_element(size_.begin(), size_.end());
}

std::uint32_t BinTable::empty_bins() const noexcept {
  return static_cast<std::uint32_t>(
      std::count(size_.begin(), size_.end(), 0u));
}

void BinTable::clear() noexcept {
  std::fill(head_.begin(), head_.end(), 0u);
  std::fill(size_.begin(), size_.end(), 0u);
  total_load_ = 0;
}

}  // namespace iba::queueing
