// A small fixed-size thread pool used by the replication runner to fan
// independent simulation replicas across cores. Determinism is preserved
// by deriving every replica's seed from its index, never from scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/assert.hpp"

namespace iba::concurrency {

/// Fixed-size worker pool. submit() returns a future; tasks run FIFO.
/// The destructor drains outstanding tasks before joining.
class ThreadPool {
 public:
  /// `threads` = 0 picks the hardware concurrency (at least 1).
  /// `pin_threads` pins worker i to CPU (i mod hardware_concurrency) so
  /// a worker's first-touched pages stay on its NUMA node across
  /// rounds. Pinning is best-effort: where the platform has no
  /// sched_setaffinity (or the call fails), the pool runs unpinned and
  /// pinned_count() reports how many workers actually stuck — pinning
  /// is a placement hint and never changes results.
  explicit ThreadPool(std::size_t threads = 0, bool pin_threads = false);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Workers successfully pinned to a CPU (0 when pinning was not
  /// requested or is unsupported here).
  [[nodiscard]] std::size_t pinned_count() const noexcept {
    return pinned_count_;
  }

  /// Schedules `fn` and returns a future for its result.
  template <typename Fn>
  [[nodiscard]] auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    auto future = task->get_future();
    {
      const std::lock_guard lock(mutex_);
      IBA_EXPECT(!stopping_, "ThreadPool: submit after shutdown");
      tasks_.emplace_back([task]() { (*task)(); });
    }
    wake_.notify_one();
    return future;
  }

  /// Blocks until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::size_t running_ = 0;
  std::size_t pinned_count_ = 0;
  bool stopping_ = false;
};

/// Runs fn(i) for i in [0, count) on the pool, blocking until all done.
/// Exceptions from tasks propagate (the first one encountered rethrows).
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

/// Splits [0, count) into `ranges` contiguous chunks whose sizes differ
/// by at most one and runs fn(range_index, begin, end) on the pool,
/// blocking until all complete. The partition is a pure function of
/// (count, ranges) — never of scheduling — so range-sharded algorithms
/// that pre-draw their randomness per range stay deterministic for any
/// thread count. Chunks beyond `count` (ranges > count) are skipped.
/// Exceptions from tasks propagate (the first one encountered rethrows).
void parallel_for_ranges(
    ThreadPool& pool, std::size_t count, std::size_t ranges,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

}  // namespace iba::concurrency
