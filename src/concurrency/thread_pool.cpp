#include "concurrency/thread_pool.hpp"

#include <algorithm>
#include <exception>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace iba::concurrency {

ThreadPool::ThreadPool(std::size_t threads, bool pin_threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  if (pin_threads) {
#if defined(__linux__)
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET(static_cast<int>(i % hw), &set);
      if (pthread_setaffinity_np(workers_[i].native_handle(), sizeof(set),
                                 &set) == 0) {
        ++pinned_count_;
      }
    }
#endif
    // Non-Linux: no affinity API — run unpinned (pinned_count_ stays 0;
    // the owner decides whether that deserves a warning).
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++running_;
    }
    task();
    {
      const std::lock_guard lock(mutex_);
      --running_;
      if (tasks_.empty() && running_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return tasks_.empty() && running_ == 0; });
}

void parallel_for_ranges(
    ThreadPool& pool, std::size_t count, std::size_t ranges,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  IBA_EXPECT(ranges > 0, "parallel_for_ranges: needs at least one range");
  const std::size_t base = count / ranges;
  const std::size_t remainder = count % ranges;
  std::vector<std::future<void>> futures;
  futures.reserve(ranges);
  std::size_t begin = 0;
  for (std::size_t i = 0; i < ranges && begin < count; ++i) {
    const std::size_t size = base + (i < remainder ? 1 : 0);
    const std::size_t end = begin + size;
    futures.push_back(
        pool.submit([&fn, i, begin, end] { fn(i, begin, end); }));
    begin = end;
  }
  // Drain every range before rethrowing: the queued tasks capture fn by
  // reference, so returning while any are still pending would leave them
  // a dangling callable.
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(pool.submit([&fn, i] { fn(i); }));
  }
  // Same drain-then-rethrow as parallel_for_ranges: no task may outlive
  // the caller's fn.
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace iba::concurrency
