// Closed-form side of the paper: the Theorem 1/2 guarantees, the m*
// quantities of the MODCAPPED coupling, the empirical reference curves of
// Section V, and the sweet-spot prediction for the buffer size c.
//
// Keeping the formulas in one translation unit means tests, benches and
// examples all compare simulation against the *same* theory.
#pragma once

#include <cstdint>

namespace iba::analysis {

/// ln(1/(1−λ)) — the load-intensity term every bound is built from.
/// Requires λ ∈ [0, 1).
[[nodiscard]] double log_term(double lambda);

// --- Theorem 1 (unit capacity) ------------------------------------------

/// Pool bound of Theorem 1.1: 2·ln(1/(1−λ))·n + 4n
/// (holds w.p. ≥ 1 − 2^(−2n) at any round).
[[nodiscard]] double pool_bound_thm1(std::uint32_t n, double lambda);

/// Waiting-time bound of Theorem 1.2:
/// (2·ln(1/(1−λ)) + 4)/(1 − 1/e) + log log n + O(1)
/// with the O(1) instantiated to the proof's additive 19 (Lemma 4).
[[nodiscard]] double wait_bound_thm1(std::uint32_t n, double lambda);

// --- Theorem 2 (general capacity) ----------------------------------------

/// Pool bound of Theorem 2.1: (4/c)·ln(1/(1−λ))·n + 12·c·n. The O(c·n)
/// constant 12 is the one realized by the proof (the bound is 2m* with
/// m* = (2/c)·ln(1/(1−λ))·n + 6·c·n).
[[nodiscard]] double pool_bound_thm2(std::uint32_t n, double lambda,
                                     std::uint32_t c);

/// Waiting-time bound of Theorem 2.2:
/// 4·ln(1/(1−λ))/(c·(1 − 1/e)) + log log n + O(c), with the O(c)
/// instantiated to the proof's constants: the pool-drain additive terms
/// (Lemmas 3–5 give 12c/(1 − 1/e) + 19 + O(1)) plus c rounds of buffer
/// residence after allocation.
[[nodiscard]] double wait_bound_thm2(std::uint32_t n, double lambda,
                                     std::uint32_t c);

// --- MODCAPPED coupling ---------------------------------------------------

/// m* of Section III (c = 1): ln(1/(1−λ))·n + 2n.
[[nodiscard]] double m_star_unit(std::uint32_t n, double lambda);

/// m* of Section IV (general c): (2/c)·ln(1/(1−λ))·n + 6·c·n.
[[nodiscard]] double m_star(std::uint32_t n, double lambda, std::uint32_t c);

// --- Section V reference curves (constants dropped, as in the figures) ---

/// Fig. 4 dashed line: normalized pool size (1/c)·ln(1/(1−λ)) + 1.
[[nodiscard]] double fig4_reference(double lambda, std::uint32_t c);

/// Fig. 5 dashed line: waiting time ln(1/(1−λ))/c + log₂ log₂ n + c.
[[nodiscard]] double fig5_reference(std::uint32_t n, double lambda,
                                    std::uint32_t c);

/// Mean-field steady state for c = 1: in equilibrium the number of thrown
/// balls ν satisfies n·(1 − e^(−ν/n)) = λn (deletions match arrivals), so
/// ν/n = ln(1/(1−λ)) and the end-of-round pool is (ln(1/(1−λ)) − λ)·n.
/// Sharp for large n; the paper's dashed +1 curve upper-bounds it.
[[nodiscard]] double mean_field_pool_c1(double lambda);

// --- Design guidance ------------------------------------------------------

/// The theoretical sweet spot c* = Θ(√(ln(1/(1−λ)))) balancing the
/// 1/c-shrinking allocation delay against the +c buffer residence.
[[nodiscard]] double sweet_spot_prediction(double lambda);

/// Integer capacity suggestion: round(max(1, sweet_spot_prediction)).
[[nodiscard]] std::uint32_t suggest_capacity(double lambda);

/// log₂ log₂ n (0 for n < 2), the additive term the drain analysis
/// (Lemma 5 / GREEDY[2]-style layered induction) contributes.
[[nodiscard]] double log_log_n(std::uint32_t n);

// --- Baseline bounds for the comparison benches (PODC'16) ----------------

/// GREEDY[1] batch waiting-time scale: O((1/(1−λ))·log(n/(1−λ))).
[[nodiscard]] double greedy1_wait_scale(std::uint32_t n, double lambda);

/// GREEDY[2] batch waiting-time scale: O(log(n/(1−λ))).
[[nodiscard]] double greedy2_wait_scale(std::uint32_t n, double lambda);

/// Mean-field anchors for the batch GREEDY[1] baseline: each bin is a
/// discrete-time queue with ≈Poisson(λ) arrivals per round and unit
/// service — an M/D/1 queue. Mean number waiting: λ²/(2(1−λ));
/// mean waiting time (Little): λ/(2(1−λ)). Sharp for large n.
[[nodiscard]] double greedy1_mean_queue(double lambda);
[[nodiscard]] double greedy1_mean_wait(double lambda);

}  // namespace iba::analysis
