// The tail bounds of the paper's appendix (Lemmas 8–11), as evaluatable
// functions. Used by tests to sanity-check the probabilistic reasoning
// and offered to library users for capacity-planning estimates.
#pragma once

#include <cstdint>

namespace iba::analysis {

/// Lemma 8 (Chernoff, [Aspnes]): for independent Bernoulli sum X with
/// R ≥ 2e·E[X], Pr[X ≥ R] ≤ 2^(−R). Returns that bound, or 1.0 when the
/// precondition R ≥ 2e·mean fails (the lemma then says nothing).
[[nodiscard]] double chernoff_lemma8(double r, double mean);

/// Lemma 9 (multiplicative Chernoff, [Goemans]):
/// Pr[X ≥ (1+δ)·μ] ≤ exp(−δ²μ/(2+δ)) for δ > 0.
[[nodiscard]] double chernoff_lemma9(double delta, double mu);

/// Lemma 10 ([Motwani-Raghavan Thm 4.18]): concentration of the number Z
/// of empty bins when throwing m balls into n bins:
/// Pr[|Z − E[Z]| ≥ λ] ≤ 2·exp(−λ²(n − 1/2)/(n² − E[Z]²)).
[[nodiscard]] double empty_bins_deviation_bound(std::uint32_t n,
                                                double expected_empty,
                                                double deviation);

/// E[Z] for m balls into n bins: n·(1 − 1/n)^m.
[[nodiscard]] double expected_empty_bins(std::uint32_t n, std::uint64_t m);

/// Exact binomial upper tail Pr[B(n, p) ≥ k] (stable summation from the
/// smaller tail; O(n) worst case). Lemma 11 reduces dependent-round
/// failure counts to exactly this quantity.
[[nodiscard]] double binomial_upper_tail(std::uint64_t n, double p,
                                         std::uint64_t k);

/// Chernoff bound on the same tail: exp(−n·KL(k/n ‖ p)) for k/n > p,
/// 1.0 otherwise. Always ≥ binomial_upper_tail.
[[nodiscard]] double binomial_upper_tail_chernoff(std::uint64_t n, double p,
                                                  std::uint64_t k);

/// Probability that a given bin receives no ball when m balls are thrown
/// u.a.r. into n bins: (1 − 1/n)^m — the "failed deletion attempt"
/// probability at the heart of Lemmas 2 and 7.
[[nodiscard]] double miss_probability(std::uint32_t n, std::uint64_t m);

}  // namespace iba::analysis
