#include "analysis/bounds.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace iba::analysis {

namespace {

constexpr double kOneMinusInvE = 1.0 - 1.0 / 2.718281828459045;

}  // namespace

double log_term(double lambda) {
  IBA_EXPECT(lambda >= 0.0 && lambda < 1.0,
             "log_term: lambda must lie in [0, 1)");
  return std::log(1.0 / (1.0 - lambda));
}

double pool_bound_thm1(std::uint32_t n, double lambda) {
  const double dn = static_cast<double>(n);
  return 2.0 * log_term(lambda) * dn + 4.0 * dn;
}

double wait_bound_thm1(std::uint32_t n, double lambda) {
  return (2.0 * log_term(lambda) + 4.0) / kOneMinusInvE + log_log_n(n) + 19.0;
}

double pool_bound_thm2(std::uint32_t n, double lambda, std::uint32_t c) {
  IBA_EXPECT(c >= 1, "pool_bound_thm2: c must be at least 1");
  const double dn = static_cast<double>(n);
  const double dc = static_cast<double>(c);
  return 4.0 / dc * log_term(lambda) * dn + 12.0 * dc * dn;
}

double wait_bound_thm2(std::uint32_t n, double lambda, std::uint32_t c) {
  IBA_EXPECT(c >= 1, "wait_bound_thm2: c must be at least 1");
  const double dc = static_cast<double>(c);
  // Lemma-3 drain of the Theorem-2 pool bound, then Lemmas 4/5 additive
  // terms, then up to c rounds inside the accepting bin's buffer.
  const double drain =
      (4.0 / dc * log_term(lambda) + 12.0 * dc) / kOneMinusInvE;
  return drain + 19.0 + log_log_n(n) + dc;
}

double m_star_unit(std::uint32_t n, double lambda) {
  const double dn = static_cast<double>(n);
  return log_term(lambda) * dn + 2.0 * dn;
}

double m_star(std::uint32_t n, double lambda, std::uint32_t c) {
  IBA_EXPECT(c >= 1, "m_star: c must be at least 1");
  const double dn = static_cast<double>(n);
  const double dc = static_cast<double>(c);
  return 2.0 / dc * log_term(lambda) * dn + 6.0 * dc * dn;
}

double fig4_reference(double lambda, std::uint32_t c) {
  IBA_EXPECT(c >= 1, "fig4_reference: c must be at least 1");
  return log_term(lambda) / static_cast<double>(c) + 1.0;
}

double fig5_reference(std::uint32_t n, double lambda, std::uint32_t c) {
  IBA_EXPECT(c >= 1, "fig5_reference: c must be at least 1");
  return log_term(lambda) / static_cast<double>(c) + log_log_n(n) +
         static_cast<double>(c);
}

double mean_field_pool_c1(double lambda) {
  return log_term(lambda) - lambda;
}

double sweet_spot_prediction(double lambda) {
  return std::sqrt(log_term(lambda));
}

std::uint32_t suggest_capacity(double lambda) {
  const double c = std::max(1.0, std::round(sweet_spot_prediction(lambda)));
  return static_cast<std::uint32_t>(c);
}

double log_log_n(std::uint32_t n) {
  if (n < 2) return 0.0;
  const double lg = std::log2(static_cast<double>(n));
  return lg < 2.0 ? 0.0 : std::log2(lg);
}

double greedy1_wait_scale(std::uint32_t n, double lambda) {
  IBA_EXPECT(lambda < 1.0, "greedy1_wait_scale: lambda must be below 1");
  const double slack = 1.0 - lambda;
  return 1.0 / slack * std::log(static_cast<double>(n) / slack);
}

double greedy2_wait_scale(std::uint32_t n, double lambda) {
  IBA_EXPECT(lambda < 1.0, "greedy2_wait_scale: lambda must be below 1");
  return std::log(static_cast<double>(n) / (1.0 - lambda));
}

double greedy1_mean_queue(double lambda) {
  IBA_EXPECT(lambda >= 0.0 && lambda < 1.0,
             "greedy1_mean_queue: lambda must lie in [0, 1)");
  return lambda * lambda / (2.0 * (1.0 - lambda));
}

double greedy1_mean_wait(double lambda) {
  IBA_EXPECT(lambda >= 0.0 && lambda < 1.0,
             "greedy1_mean_wait: lambda must lie in [0, 1)");
  return lambda / (2.0 * (1.0 - lambda));
}

}  // namespace iba::analysis
