#include "analysis/exact_chain.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace iba::analysis {

std::vector<double> occupancy_distribution(std::uint32_t n,
                                           std::uint64_t balls) {
  IBA_EXPECT(n > 0, "occupancy_distribution: n must be positive");
  const std::uint64_t max_occupied = std::min<std::uint64_t>(balls, n);
  std::vector<double> dist(max_occupied + 1, 0.0);
  dist[0] = 1.0;
  const double dn = static_cast<double>(n);
  // Add balls one at a time: a ball lands in an occupied bin w.p. j/n.
  for (std::uint64_t ball = 0; ball < balls; ++ball) {
    const std::uint64_t limit = std::min<std::uint64_t>(ball, max_occupied);
    for (std::uint64_t j = std::min(limit + 1, max_occupied);; --j) {
      const double stay = dist[j] * (static_cast<double>(j) / dn);
      const double grow =
          j > 0 ? dist[j - 1] * ((dn - static_cast<double>(j - 1)) / dn)
                : 0.0;
      dist[j] = stay + grow;
      if (j == 0) break;
    }
  }
  return dist;
}

CappedUnitChain::CappedUnitChain(std::uint32_t n, std::uint64_t lambda_n,
                                 std::uint64_t max_pool)
    : n_(n), lambda_n_(lambda_n), max_pool_(max_pool) {
  IBA_EXPECT(n > 0, "CappedUnitChain: n must be positive");
  IBA_EXPECT(lambda_n <= n, "CappedUnitChain: lambda must be at most 1");
  IBA_EXPECT(max_pool >= lambda_n,
             "CappedUnitChain: truncation below one round of arrivals");

  const std::uint64_t states = max_pool_ + 1;
  matrix_.assign(states * states, 0.0);
  for (std::uint64_t from = 0; from < states; ++from) {
    const std::uint64_t thrown = from + lambda_n_;
    const auto occupancy = occupancy_distribution(n_, thrown);
    for (std::uint64_t occupied = 0; occupied < occupancy.size();
         ++occupied) {
      const std::uint64_t to =
          std::min<std::uint64_t>(thrown - occupied, max_pool_);
      matrix_[from * states + to] += occupancy[occupied];
    }
  }
}

double CappedUnitChain::transition(std::uint64_t from,
                                   std::uint64_t to) const {
  IBA_EXPECT(from <= max_pool_ && to <= max_pool_,
             "CappedUnitChain: state out of range");
  return matrix_[from * (max_pool_ + 1) + to];
}

std::vector<double> CappedUnitChain::stationary(std::size_t max_iterations,
                                                double tolerance) const {
  const std::uint64_t states = max_pool_ + 1;
  std::vector<double> pi(states, 0.0);
  pi[0] = 1.0;  // the process starts empty
  std::vector<double> next(states);
  for (std::size_t iteration = 0; iteration < max_iterations; ++iteration) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::uint64_t from = 0; from < states; ++from) {
      if (pi[from] == 0.0) continue;
      const double* row = &matrix_[from * states];
      for (std::uint64_t to = 0; to < states; ++to) {
        next[to] += pi[from] * row[to];
      }
    }
    double diff = 0.0;
    for (std::uint64_t s = 0; s < states; ++s) {
      diff += std::abs(next[s] - pi[s]);
    }
    pi.swap(next);
    if (diff < tolerance) break;
  }
  return pi;
}

double CappedUnitChain::mean(const std::vector<double>& dist) {
  double mu = 0.0;
  for (std::size_t m = 0; m < dist.size(); ++m) {
    mu += static_cast<double>(m) * dist[m];
  }
  return mu;
}

}  // namespace iba::analysis
