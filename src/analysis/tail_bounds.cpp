#include "analysis/tail_bounds.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace iba::analysis {

double chernoff_lemma8(double r, double mean) {
  IBA_EXPECT(r >= 0.0 && mean >= 0.0, "chernoff_lemma8: negative argument");
  constexpr double kTwoE = 2.0 * 2.718281828459045;
  if (r < kTwoE * mean) return 1.0;  // precondition of the lemma not met
  return std::exp2(-r);
}

double chernoff_lemma9(double delta, double mu) {
  IBA_EXPECT(delta > 0.0, "chernoff_lemma9: delta must be positive");
  IBA_EXPECT(mu >= 0.0, "chernoff_lemma9: mu must be non-negative");
  return std::exp(-delta * delta * mu / (2.0 + delta));
}

double empty_bins_deviation_bound(std::uint32_t n, double expected_empty,
                                  double deviation) {
  IBA_EXPECT(n >= 1, "empty_bins_deviation_bound: n must be positive");
  IBA_EXPECT(deviation >= 0.0,
             "empty_bins_deviation_bound: deviation must be non-negative");
  const double dn = static_cast<double>(n);
  const double denom = dn * dn - expected_empty * expected_empty;
  if (denom <= 0.0) return 1.0;
  const double bound =
      2.0 * std::exp(-deviation * deviation * (dn - 0.5) / denom);
  return std::min(1.0, bound);
}

double expected_empty_bins(std::uint32_t n, std::uint64_t m) {
  IBA_EXPECT(n >= 1, "expected_empty_bins: n must be positive");
  const double dn = static_cast<double>(n);
  return dn * std::pow(1.0 - 1.0 / dn, static_cast<double>(m));
}

double binomial_upper_tail(std::uint64_t n, double p, std::uint64_t k) {
  IBA_EXPECT(p >= 0.0 && p <= 1.0, "binomial_upper_tail: bad p");
  if (k == 0) return 1.0;
  if (k > n) return 0.0;
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;

  // Sum the smaller side in log space for stability.
  const double mean = static_cast<double>(n) * p;
  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  auto log_pmf = [&](std::uint64_t i) {
    const double di = static_cast<double>(i);
    const double dn = static_cast<double>(n);
    return std::lgamma(dn + 1) - std::lgamma(di + 1) -
           std::lgamma(dn - di + 1) + di * log_p + (dn - di) * log_q;
  };

  const bool sum_upper = static_cast<double>(k) >= mean;
  double total = 0.0;
  if (sum_upper) {
    for (std::uint64_t i = k; i <= n; ++i) {
      const double term = std::exp(log_pmf(i));
      total += term;
      if (term < 1e-18 * total && i > k + 16) break;  // converged tail
    }
    return std::min(1.0, total);
  }
  for (std::uint64_t i = 0; i < k; ++i) {
    total += std::exp(log_pmf(i));
  }
  return std::clamp(1.0 - total, 0.0, 1.0);
}

double binomial_upper_tail_chernoff(std::uint64_t n, double p,
                                    std::uint64_t k) {
  IBA_EXPECT(p > 0.0 && p < 1.0, "binomial_upper_tail_chernoff: bad p");
  const double a = static_cast<double>(k) / static_cast<double>(n);
  if (a <= p) return 1.0;
  if (a >= 1.0) {
    return std::exp(static_cast<double>(n) * std::log(p));  // Pr[X = n]
  }
  const double kl =
      a * std::log(a / p) + (1.0 - a) * std::log((1.0 - a) / (1.0 - p));
  return std::exp(-static_cast<double>(n) * kl);
}

double miss_probability(std::uint32_t n, std::uint64_t m) {
  IBA_EXPECT(n >= 1, "miss_probability: n must be positive");
  return std::pow(1.0 - 1.0 / static_cast<double>(n),
                  static_cast<double>(m));
}

}  // namespace iba::analysis
