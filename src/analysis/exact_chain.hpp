// Exact finite-Markov-chain analysis of CAPPED(1, λ).
//
// For c = 1 the pool size is itself a Markov chain: every round ν =
// m + λn balls are thrown, the number of deletions equals the number of
// occupied bins, and m' = ν − occupied. The occupancy distribution
// Pr[occupied = j | ν balls, n bins] has an elementary O(ν·n) dynamic
// program (adding one ball hits an occupied bin w.p. j/n), so the whole
// transition matrix — and hence the exact stationary pool distribution —
// is computable for small systems. The tests compare it against long
// simulations, closing the loop between the process, the theory and the
// simulator with zero statistical slack.
#pragma once

#include <cstdint>
#include <vector>

namespace iba::analysis {

/// Pr[exactly j of n bins occupied after throwing balls u.a.r.], for
/// j = 0..min(balls, n). Exact (within fp) via the one-ball DP.
[[nodiscard]] std::vector<double> occupancy_distribution(
    std::uint32_t n, std::uint64_t balls);

/// The exact pool-size Markov chain of CAPPED(1, λ) truncated at
/// max_pool (states m = 0..max_pool; overflow mass is clamped into the
/// last state — choose max_pool well above the typical range).
class CappedUnitChain {
 public:
  CappedUnitChain(std::uint32_t n, std::uint64_t lambda_n,
                  std::uint64_t max_pool);

  /// Transition probability Pr[m(t+1) = to | m(t) = from].
  [[nodiscard]] double transition(std::uint64_t from,
                                  std::uint64_t to) const;

  /// Stationary distribution via power iteration (to fixed tolerance).
  [[nodiscard]] std::vector<double> stationary(
      std::size_t max_iterations = 100000, double tolerance = 1e-12) const;

  /// Mean of a distribution over pool sizes.
  [[nodiscard]] static double mean(const std::vector<double>& dist);

  [[nodiscard]] std::uint64_t state_count() const noexcept {
    return max_pool_ + 1;
  }

 private:
  std::uint32_t n_;
  std::uint64_t lambda_n_;
  std::uint64_t max_pool_;
  // row-major transition matrix, (max_pool+1)^2
  std::vector<double> matrix_;
};

}  // namespace iba::analysis
