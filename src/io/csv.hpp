// Minimal RFC-4180-style CSV writing for experiment results. Every bench
// binary writes its series as CSV next to the human-readable table so the
// figures can be re-plotted with any external tool.
#pragma once

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace iba::io {

/// Streams rows to a CSV file. Fields containing separators, quotes or
/// newlines are quoted and escaped.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Throws std::runtime_error on
  /// failure.
  explicit CsvWriter(const std::string& path);

  /// Writes the header row; must be called before any data row, at most
  /// once.
  void header(const std::vector<std::string>& columns);

  /// Writes one data row; must match the header's column count when a
  /// header was written.
  void row(const std::vector<std::string>& fields);

  /// Convenience for numeric rows.
  void row(const std::vector<double>& values);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

  /// Escapes a single field per RFC 4180.
  [[nodiscard]] static std::string escape(std::string_view field);

 private:
  void write_line(const std::vector<std::string>& fields);

  std::ofstream out_;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
  bool header_written_ = false;
};

}  // namespace iba::io
