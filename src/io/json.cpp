#include "io/json.hpp"

#include <cmath>
#include <cstdio>

#include "common/assert.hpp"

namespace iba::io {

std::string JsonWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (unsigned char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (ch < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += static_cast<char>(ch);
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (!stack_.empty()) {
    if (stack_.back() == Scope::kObject) {
      IBA_EXPECT(key_pending_, "JsonWriter: value inside object needs key()");
      key_pending_ = false;
      return;  // key() already emitted the separator and the key
    }
    if (has_items_.back()) out_ << ',';
    has_items_.back() = true;
  }
}

void JsonWriter::before_key() {
  IBA_EXPECT(!stack_.empty() && stack_.back() == Scope::kObject,
             "JsonWriter: key() outside of object");
  IBA_EXPECT(!key_pending_, "JsonWriter: consecutive key() calls");
  if (has_items_.back()) out_ << ',';
  has_items_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  IBA_EXPECT(!stack_.empty() && stack_.back() == Scope::kObject,
             "JsonWriter: unbalanced end_object");
  IBA_EXPECT(!key_pending_, "JsonWriter: dangling key at end_object");
  out_ << '}';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  IBA_EXPECT(!stack_.empty() && stack_.back() == Scope::kArray,
             "JsonWriter: unbalanced end_array");
  out_ << ']';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  before_key();
  out_ << '"' << escape(name) << "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  out_ << '"' << escape(text) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  before_value();
  if (std::isfinite(number)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", number);
    out_ << buf;
  } else {
    out_ << "null";  // JSON has no Inf/NaN literals
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value();
  out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  before_value();
  out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  out_ << (flag ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ << "null";
  return *this;
}

}  // namespace iba::io
