// Tiny declarative command-line flag parser shared by the bench and
// example binaries: --key value / --key=value, typed getters with
// defaults, generated --help text, and strict unknown-flag rejection.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace iba::io {

/// A user mistake on the command line (unknown flag, malformed number,
/// out-of-domain parameter). Derives from ContractViolation so library
/// callers that already handle contract errors keep working; CLI mains
/// use parse_or_exit() / fail_usage() to map it to exit code 2 with a
/// one-line diagnostic instead of an uncaught-exception abort.
class UsageError : public ContractViolation {
 public:
  explicit UsageError(const std::string& what_arg)
      : ContractViolation(what_arg) {}
};

/// Prints `message` (one line) to stderr and exits with code 2 — the
/// conventional "usage error" status. For validation outside ArgParser.
[[noreturn]] void fail_usage(const std::string& message);

/// The shared overwrite guard of every output-writing binary: refuses to
/// clobber an existing `path` unless `force`, with a one-line stderr
/// diagnostic naming the flag and exit code 2 (a usage error — run again
/// with --force true). With force, prints a one-line overwrite warning
/// instead. No-op when `path` is empty or nothing exists there. Called
/// before any simulation runs, so a misdirected output path fails fast.
void guard_overwrite(const std::string& path, bool force,
                     const std::string& flag);

/// A parsed "host:port" endpoint (see parse_host_port).
struct HostPort {
  std::string host;
  std::uint16_t port = 0;
};

/// Parses "host:port" (e.g. "127.0.0.1:9000", "[::1]:9000", ":9000" for
/// every interface, or a bare "9000"). The port must be an integer in
/// [1, 65535]. Throws UsageError naming `flag` and the offending text on
/// any malformed or out-of-range input — binaries route it through
/// parse_or_exit()/fail_usage() to exit code 2.
[[nodiscard]] HostPort parse_host_port(const std::string& text,
                                       const std::string& flag);

/// Parses "--key value" / "--key=value" flags. Declare flags up front so
/// --help can describe them and typos are rejected.
class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Declares a flag (name without the leading dashes).
  void add_flag(const std::string& name, const std::string& help,
                const std::string& default_value);

  /// Parses argv. Returns false if --help was requested (help printed to
  /// stdout). Throws UsageError on unknown flags or missing values.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  /// Like parse(), but maps UsageError to a one-line stderr diagnostic
  /// and exit code 2 — the front door for every binary main().
  [[nodiscard]] bool parse_or_exit(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] std::uint64_t get_uint(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// get_uint restricted to [lo, hi]; UsageError names the flag and the
  /// domain on violation.
  [[nodiscard]] std::uint64_t get_uint_range(const std::string& name,
                                             std::uint64_t lo,
                                             std::uint64_t hi) const;
  /// get_double restricted to the interval from lo to hi; each end is
  /// open when the corresponding *_open flag is set.
  [[nodiscard]] double get_double_range(const std::string& name, double lo,
                                        double hi, bool lo_open = false,
                                        bool hi_open = false) const;

  /// True when the user supplied the flag explicitly.
  [[nodiscard]] bool provided(const std::string& name) const;

  [[nodiscard]] std::string help_text() const;

 private:
  struct Flag {
    std::string help;
    std::string default_value;
    std::optional<std::string> value;
  };

  [[nodiscard]] const Flag& find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace iba::io
