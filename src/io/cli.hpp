// Tiny declarative command-line flag parser shared by the bench and
// example binaries: --key value / --key=value, typed getters with
// defaults, generated --help text, and strict unknown-flag rejection.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace iba::io {

/// Parses "--key value" / "--key=value" flags. Declare flags up front so
/// --help can describe them and typos are rejected.
class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Declares a flag (name without the leading dashes).
  void add_flag(const std::string& name, const std::string& help,
                const std::string& default_value);

  /// Parses argv. Returns false if --help was requested (help printed to
  /// stdout). Throws ContractViolation on unknown flags or missing values.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] std::uint64_t get_uint(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// True when the user supplied the flag explicitly.
  [[nodiscard]] bool provided(const std::string& name) const;

  [[nodiscard]] std::string help_text() const;

 private:
  struct Flag {
    std::string help;
    std::string default_value;
    std::optional<std::string> value;
  };

  [[nodiscard]] const Flag& find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace iba::io
