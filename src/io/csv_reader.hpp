// RFC-4180-style CSV reading — the counterpart of CsvWriter, used by the
// report tool to post-process bench results and by round-trip tests.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace iba::io {

/// A parsed CSV document: header (first row) + data rows, all as strings.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column, or nullopt.
  [[nodiscard]] std::optional<std::size_t> column(
      const std::string& name) const;

  /// Numeric view of one column (throws on non-numeric cells).
  [[nodiscard]] std::vector<double> numeric_column(
      const std::string& name) const;
};

/// Parses CSV text (quoted fields, embedded separators/quotes/newlines,
/// both \n and \r\n line endings). Throws std::runtime_error on
/// malformed input (unterminated quote, ragged rows).
[[nodiscard]] CsvDocument parse_csv(const std::string& text);

/// Reads and parses a CSV file. Throws std::runtime_error on IO errors.
[[nodiscard]] CsvDocument read_csv_file(const std::string& path);

}  // namespace iba::io
