// Aligned ASCII tables — the bench binaries print the paper's data series
// in this format so "who wins, by what factor" is readable straight from
// the terminal.
#pragma once

#include <string>
#include <vector>

namespace iba::io {

/// Collects rows of string cells and renders them with padded columns,
/// a header rule, and an optional title.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);

  /// Numeric convenience; formats with %.4g.
  void add_row(const std::vector<double>& values);

  void set_title(std::string title) { title_ = std::move(title); }

  [[nodiscard]] std::size_t row_count() const noexcept {
    return rows_.size();
  }

  /// Renders the full table as a string (trailing newline included).
  [[nodiscard]] std::string to_string() const;

  /// Renders and writes to stdout.
  void print() const;

  [[nodiscard]] static std::string format_number(double value);

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace iba::io
