#include "io/csv_reader.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace iba::io {

std::optional<std::size_t> CsvDocument::column(
    const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  return std::nullopt;
}

std::vector<double> CsvDocument::numeric_column(
    const std::string& name) const {
  const auto index = column(name);
  if (!index) {
    throw std::runtime_error("csv: no column named '" + name + "'");
  }
  std::vector<double> values;
  values.reserve(rows.size());
  for (const auto& row : rows) {
    const std::string& cell = row[*index];
    std::size_t pos = 0;
    double value = 0;
    try {
      value = std::stod(cell, &pos);
    } catch (const std::exception&) {
      throw std::runtime_error("csv: non-numeric cell '" + cell +
                               "' in column '" + name + "'");
    }
    if (pos != cell.size()) {
      throw std::runtime_error("csv: trailing junk in cell '" + cell + "'");
    }
    values.push_back(value);
  }
  return values;
}

CsvDocument parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    record.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&] {
    end_field();
    records.push_back(std::move(record));
    record.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += ch;
      }
      continue;
    }
    switch (ch) {
      case '"':
        if (field.empty() && !field_started) {
          in_quotes = true;
          field_started = true;
        } else {
          field += ch;  // stray quote inside unquoted field: keep literal
        }
        break;
      case ',':
        end_field();
        break;
      case '\r':
        break;  // swallowed; \n terminates the record
      case '\n':
        end_record();
        break;
      default:
        field += ch;
        field_started = true;
    }
  }
  if (in_quotes) throw std::runtime_error("csv: unterminated quote");
  if (field_started || !field.empty() || !record.empty()) end_record();

  CsvDocument document;
  if (records.empty()) return document;
  document.header = std::move(records.front());
  for (std::size_t r = 1; r < records.size(); ++r) {
    if (records[r].size() != document.header.size()) {
      throw std::runtime_error("csv: ragged row " + std::to_string(r));
    }
    document.rows.push_back(std::move(records[r]));
  }
  return document;
}

CsvDocument read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("csv: cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse_csv(buffer.str());
}

}  // namespace iba::io
