#include "io/csv.hpp"

#include <cstdio>
#include <stdexcept>

#include "common/assert.hpp"

namespace iba::io {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string quoted = "\"";
  for (char ch : field) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_line(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  IBA_EXPECT(!header_written_ && rows_ == 0,
             "CsvWriter: header must be first and unique");
  columns_ = columns.size();
  header_written_ = true;
  write_line(columns);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  IBA_EXPECT(!header_written_ || fields.size() == columns_,
             "CsvWriter: row width does not match header");
  write_line(fields);
  ++rows_;
}

void CsvWriter::row(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double value : values) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", value);
    fields.emplace_back(buf);
  }
  row(fields);
}

}  // namespace iba::io
