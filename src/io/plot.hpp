// Terminal line plots — the bench binaries render the paper's figure
// curves directly in the terminal so "the shape holds" is visible
// without leaving the shell.
#pragma once

#include <string>
#include <vector>

namespace iba::io {

/// Collects named (x, y) series and renders them into a character grid
/// with y-axis labels and per-series markers.
class AsciiPlot {
 public:
  /// `width`/`height` are the plot area in characters (without axes).
  AsciiPlot(std::size_t width, std::size_t height);

  /// Adds a series; the marker is taken from "ox*+#@%&" in order.
  void add_series(std::string name, std::vector<double> xs,
                  std::vector<double> ys);

  void set_title(std::string title) { title_ = std::move(title); }
  void set_x_label(std::string label) { x_label_ = std::move(label); }

  /// Renders the plot (trailing newline included). Empty plots render a
  /// placeholder line.
  [[nodiscard]] std::string to_string() const;

  void print() const;

 private:
  struct Series {
    std::string name;
    std::vector<double> xs;
    std::vector<double> ys;
    char marker;
  };

  std::size_t width_;
  std::size_t height_;
  std::string title_;
  std::string x_label_;
  std::vector<Series> series_;
};

}  // namespace iba::io
