#include "io/plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/assert.hpp"

namespace iba::io {

namespace {

constexpr char kMarkers[] = "ox*+#@%&";

}  // namespace

AsciiPlot::AsciiPlot(std::size_t width, std::size_t height)
    : width_(width), height_(height) {
  IBA_EXPECT(width >= 8 && height >= 3, "AsciiPlot: plot area too small");
}

void AsciiPlot::add_series(std::string name, std::vector<double> xs,
                           std::vector<double> ys) {
  IBA_EXPECT(xs.size() == ys.size(),
             "AsciiPlot: xs and ys must have equal length");
  const char marker = kMarkers[series_.size() % (sizeof(kMarkers) - 1)];
  series_.push_back({std::move(name), std::move(xs), std::move(ys), marker});
}

std::string AsciiPlot::to_string() const {
  std::string out;
  if (!title_.empty()) out += title_ + '\n';

  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -x_min, y_min = x_min, y_max = -x_min;
  bool any = false;
  for (const Series& s : series_) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      any = true;
      x_min = std::min(x_min, s.xs[i]);
      x_max = std::max(x_max, s.xs[i]);
      y_min = std::min(y_min, s.ys[i]);
      y_max = std::max(y_max, s.ys[i]);
    }
  }
  if (!any) return out + "(empty plot)\n";
  if (x_max == x_min) x_max = x_min + 1;
  if (y_max == y_min) y_max = y_min + 1;

  std::vector<std::string> grid(height_, std::string(width_, ' '));
  for (const Series& s : series_) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      const double fx = (s.xs[i] - x_min) / (x_max - x_min);
      const double fy = (s.ys[i] - y_min) / (y_max - y_min);
      const auto col = static_cast<std::size_t>(
          std::lround(fx * static_cast<double>(width_ - 1)));
      const auto row = static_cast<std::size_t>(
          std::lround((1.0 - fy) * static_cast<double>(height_ - 1)));
      grid[row][col] = s.marker;
    }
  }

  char label[32];
  for (std::size_t row = 0; row < height_; ++row) {
    const double y =
        y_max - (y_max - y_min) * static_cast<double>(row) /
                    static_cast<double>(height_ - 1);
    std::snprintf(label, sizeof(label), "%9.3g |", y);
    out += label + grid[row] + '\n';
  }
  out += std::string(10, ' ') + '+' + std::string(width_, '-') + '\n';
  std::snprintf(label, sizeof(label), "%9.3g", x_min);
  out += std::string(11, ' ') + label;
  std::snprintf(label, sizeof(label), "%.3g", x_max);
  const std::string x_hi = label;
  const std::size_t used = 11 + 9;
  if (width_ > x_hi.size() && used + x_hi.size() < 11 + width_) {
    out += std::string(11 + width_ - used - x_hi.size(), ' ') + x_hi;
  }
  out += '\n';
  if (!x_label_.empty()) {
    out += std::string(11, ' ') + x_label_ + '\n';
  }
  for (const Series& s : series_) {
    out += "  ";
    out += s.marker;
    out += " = " + s.name + '\n';
  }
  return out;
}

void AsciiPlot::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace iba::io
