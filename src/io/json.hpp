// Minimal streaming JSON writer (objects, arrays, scalars, full string
// escaping) — enough to emit machine-readable experiment manifests
// without a third-party dependency.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace iba::io {

/// Writes syntactically valid JSON to an ostream via begin/end nesting
/// calls. Usage errors (value without key inside an object, unbalanced
/// end) throw ContractViolation.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits the key of the next value (objects only).
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// True when every begin_ has been matched by an end_.
  [[nodiscard]] bool complete() const noexcept { return stack_.empty(); }

  [[nodiscard]] static std::string escape(std::string_view text);

 private:
  enum class Scope : std::uint8_t { kObject, kArray };

  void before_value();
  void before_key();

  std::ostream& out_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;
  bool key_pending_ = false;
};

}  // namespace iba::io
