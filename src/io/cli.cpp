#include "io/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "common/assert.hpp"

namespace iba::io {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_flag(const std::string& name, const std::string& help,
                         const std::string& default_value) {
  IBA_EXPECT(!flags_.contains(name), "ArgParser: duplicate flag " + name);
  flags_[name] = Flag{help, default_value, std::nullopt};
  order_.push_back(name);
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help_text().c_str(), stdout);
      return false;
    }
    IBA_EXPECT(arg.rfind("--", 0) == 0,
               "ArgParser: expected --flag, got " + arg);
    arg = arg.substr(2);

    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else {
      IBA_EXPECT(i + 1 < argc, "ArgParser: missing value for --" + arg);
      value = argv[++i];
    }
    const auto it = flags_.find(arg);
    IBA_EXPECT(it != flags_.end(), "ArgParser: unknown flag --" + arg);
    it->second.value = value;
  }
  return true;
}

const ArgParser::Flag& ArgParser::find(const std::string& name) const {
  const auto it = flags_.find(name);
  IBA_EXPECT(it != flags_.end(), "ArgParser: undeclared flag " + name);
  return it->second;
}

std::string ArgParser::get(const std::string& name) const {
  const Flag& flag = find(name);
  return flag.value.value_or(flag.default_value);
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  const std::string text = get(name);
  try {
    std::size_t pos = 0;
    const std::int64_t parsed = std::stoll(text, &pos);
    IBA_EXPECT(pos == text.size(), "ArgParser: trailing junk in --" + name);
    return parsed;
  } catch (const std::invalid_argument&) {
    throw ContractViolation("iba: ArgParser: --" + name +
                            " expects an integer, got '" + text + "'");
  } catch (const std::out_of_range&) {
    throw ContractViolation("iba: ArgParser: --" + name + " out of range");
  }
}

std::uint64_t ArgParser::get_uint(const std::string& name) const {
  const std::int64_t parsed = get_int(name);
  IBA_EXPECT(parsed >= 0, "ArgParser: --" + name + " must be non-negative");
  return static_cast<std::uint64_t>(parsed);
}

double ArgParser::get_double(const std::string& name) const {
  const std::string text = get(name);
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(text, &pos);
    IBA_EXPECT(pos == text.size(), "ArgParser: trailing junk in --" + name);
    return parsed;
  } catch (const std::invalid_argument&) {
    throw ContractViolation("iba: ArgParser: --" + name +
                            " expects a number, got '" + text + "'");
  } catch (const std::out_of_range&) {
    throw ContractViolation("iba: ArgParser: --" + name + " out of range");
  }
}

bool ArgParser::get_bool(const std::string& name) const {
  const std::string text = get(name);
  if (text == "true" || text == "1" || text == "yes" || text == "on") {
    return true;
  }
  if (text == "false" || text == "0" || text == "no" || text == "off") {
    return false;
  }
  throw ContractViolation("iba: ArgParser: --" + name +
                          " expects a boolean, got '" + text + "'");
}

bool ArgParser::provided(const std::string& name) const {
  return find(name).value.has_value();
}

std::string ArgParser::help_text() const {
  std::string out = program_ + " — " + description_ + "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Flag& flag = flags_.at(name);
    out += "  --" + name + " <value>  " + flag.help + " (default: " +
           flag.default_value + ")\n";
  }
  out += "  --help  print this message\n";
  return out;
}

}  // namespace iba::io
