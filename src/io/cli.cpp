#include "io/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <system_error>

#include "common/assert.hpp"

namespace iba::io {

void fail_usage(const std::string& message) {
  std::fprintf(stderr, "%s\n", message.c_str());
  std::exit(2);
}

void guard_overwrite(const std::string& path, bool force,
                     const std::string& flag) {
  if (path.empty()) return;
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return;
  if (force) {
    std::fprintf(stderr, "warning: overwriting %s (%s)\n", path.c_str(),
                 flag.c_str());
    return;
  }
  fail_usage(flag + " " + path +
             ": output exists (pass --force true to overwrite)");
}

HostPort parse_host_port(const std::string& text, const std::string& flag) {
  const auto fail = [&](const std::string& why) -> void {
    throw UsageError(flag + " '" + text + "': " + why);
  };
  if (text.empty()) fail("expected host:port");

  HostPort result;
  std::string port_text;
  if (text.front() == '[') {
    // Bracketed IPv6 literal: [::1]:9000.
    const std::size_t close = text.find(']');
    if (close == std::string::npos) fail("unterminated '[' in host");
    result.host = text.substr(1, close - 1);
    if (close + 1 >= text.size() || text[close + 1] != ':') {
      fail("expected ':port' after the bracketed host");
    }
    port_text = text.substr(close + 2);
  } else {
    const std::size_t colon = text.rfind(':');
    if (colon == std::string::npos) {
      port_text = text;  // bare port: every interface
    } else {
      if (text.find(':') != colon) {
        fail("IPv6 hosts must be bracketed, e.g. [::1]:9000");
      }
      result.host = text.substr(0, colon);
      port_text = text.substr(colon + 1);
    }
  }

  if (port_text.empty()) fail("missing port");
  std::uint64_t port = 0;
  for (const char c : port_text) {
    if (c < '0' || c > '9') fail("port must be an unsigned integer");
    port = port * 10 + static_cast<std::uint64_t>(c - '0');
    if (port > 0xFFFFu) break;
  }
  if (port < 1 || port > 0xFFFFu) fail("port must lie in [1, 65535]");
  result.port = static_cast<std::uint16_t>(port);
  return result;
}

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_flag(const std::string& name, const std::string& help,
                         const std::string& default_value) {
  IBA_EXPECT(!flags_.contains(name), "ArgParser: duplicate flag " + name);
  flags_[name] = Flag{help, default_value, std::nullopt};
  order_.push_back(name);
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help_text().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw UsageError(program_ + ": expected --flag, got '" + arg +
                       "' (see --help)");
    }
    arg = arg.substr(2);

    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else {
      if (i + 1 >= argc) {
        throw UsageError(program_ + ": missing value for --" + arg);
      }
      value = argv[++i];
    }
    const auto it = flags_.find(arg);
    if (it == flags_.end()) {
      throw UsageError(program_ + ": unknown flag --" + arg +
                       " (see --help)");
    }
    it->second.value = value;
  }
  return true;
}

bool ArgParser::parse_or_exit(int argc, const char* const* argv) {
  try {
    return parse(argc, argv);
  } catch (const UsageError& e) {
    fail_usage(e.what());
  }
}

const ArgParser::Flag& ArgParser::find(const std::string& name) const {
  const auto it = flags_.find(name);
  IBA_EXPECT(it != flags_.end(), "ArgParser: undeclared flag " + name);
  return it->second;
}

std::string ArgParser::get(const std::string& name) const {
  const Flag& flag = find(name);
  return flag.value.value_or(flag.default_value);
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  const std::string text = get(name);
  try {
    std::size_t pos = 0;
    const std::int64_t parsed = std::stoll(text, &pos);
    if (pos != text.size()) {
      throw UsageError(program_ + ": trailing junk in --" + name + " '" +
                       text + "'");
    }
    return parsed;
  } catch (const std::invalid_argument&) {
    throw UsageError(program_ + ": --" + name + " expects an integer, got '" +
                     text + "'");
  } catch (const std::out_of_range&) {
    throw UsageError(program_ + ": --" + name + " out of range");
  }
}

std::uint64_t ArgParser::get_uint(const std::string& name) const {
  const std::int64_t parsed = get_int(name);
  if (parsed < 0) {
    throw UsageError(program_ + ": --" + name + " must be non-negative, got " +
                     std::to_string(parsed));
  }
  return static_cast<std::uint64_t>(parsed);
}

double ArgParser::get_double(const std::string& name) const {
  const std::string text = get(name);
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(text, &pos);
    if (pos != text.size()) {
      throw UsageError(program_ + ": trailing junk in --" + name + " '" +
                       text + "'");
    }
    return parsed;
  } catch (const std::invalid_argument&) {
    throw UsageError(program_ + ": --" + name + " expects a number, got '" +
                     text + "'");
  } catch (const std::out_of_range&) {
    throw UsageError(program_ + ": --" + name + " out of range");
  }
}

bool ArgParser::get_bool(const std::string& name) const {
  const std::string text = get(name);
  if (text == "true" || text == "1" || text == "yes" || text == "on") {
    return true;
  }
  if (text == "false" || text == "0" || text == "no" || text == "off") {
    return false;
  }
  throw UsageError(program_ + ": --" + name + " expects a boolean, got '" +
                   text + "'");
}

std::uint64_t ArgParser::get_uint_range(const std::string& name,
                                        std::uint64_t lo,
                                        std::uint64_t hi) const {
  const std::uint64_t parsed = get_uint(name);
  if (parsed < lo || parsed > hi) {
    throw UsageError(program_ + ": --" + name + " must be in [" +
                     std::to_string(lo) + ", " + std::to_string(hi) +
                     "], got " + std::to_string(parsed));
  }
  return parsed;
}

double ArgParser::get_double_range(const std::string& name, double lo,
                                   double hi, bool lo_open,
                                   bool hi_open) const {
  const double parsed = get_double(name);
  const bool below = lo_open ? parsed <= lo : parsed < lo;
  const bool above = hi_open ? parsed >= hi : parsed > hi;
  if (below || above) {
    throw UsageError(program_ + ": --" + name + " must be in " +
                     (lo_open ? "(" : "[") + std::to_string(lo) + ", " +
                     std::to_string(hi) + (hi_open ? ")" : "]") + ", got '" +
                     get(name) + "'");
  }
  return parsed;
}

bool ArgParser::provided(const std::string& name) const {
  return find(name).value.has_value();
}

std::string ArgParser::help_text() const {
  std::string out = program_ + " — " + description_ + "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Flag& flag = flags_.at(name);
    out += "  --" + name + " <value>  " + flag.help + " (default: " +
           flag.default_value + ")\n";
  }
  out += "  --help  print this message\n";
  return out;
}

}  // namespace iba::io
