#include "io/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/assert.hpp"

namespace iba::io {

Table::Table(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  IBA_EXPECT(!columns_.empty(), "Table: needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  IBA_EXPECT(cells.size() == columns_.size(),
             "Table: row width does not match columns");
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double value : values) cells.push_back(format_number(value));
  add_row(std::move(cells));
}

std::string Table::format_number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g", value);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    widths[i] = columns_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) line += "  ";
      line += cells[i];
      line.append(widths[i] - cells[i].size(), ' ');
    }
    // Trim trailing padding for clean diffs.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::string out;
  if (!title_.empty()) out += title_ + '\n';
  out += render_row(columns_);
  std::size_t rule_width = 0;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    rule_width += widths[i] + (i > 0 ? 2 : 0);
  }
  out.append(rule_width, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace iba::io
