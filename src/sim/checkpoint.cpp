#include "sim/checkpoint.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace iba::sim {

namespace {

constexpr const char* kMagic = "iba-checkpoint";
constexpr int kVersion = 1;

[[noreturn]] void fail(const std::string& why) {
  throw std::runtime_error("checkpoint: " + why);
}

template <typename T>
T read_value(std::istream& in, const char* what) {
  T value;
  if (!(in >> value)) fail(std::string("truncated/invalid field: ") + what);
  return value;
}

}  // namespace

void save_checkpoint(const core::CappedSnapshot& snapshot,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) fail("cannot open for writing: " + path);
  out << kMagic << ' ' << kVersion << '\n';
  const auto& config = snapshot.config;
  out << "config " << config.n << ' ' << config.capacity << ' '
      << config.lambda_n << ' ' << static_cast<int>(config.arrival) << ' '
      << static_cast<int>(config.deletion) << ' '
      << static_cast<int>(config.acceptance) << ' ';
  char prob[40];
  std::snprintf(prob, sizeof(prob), "%.17g", config.failure_probability);
  out << prob << '\n';
  out << "state " << snapshot.round << ' ' << snapshot.generated_total << ' '
      << snapshot.deleted_total << '\n';
  out << "engine";
  for (const std::uint64_t word : snapshot.engine_state) out << ' ' << word;
  out << '\n';
  out << "pool " << snapshot.pool.size() << '\n';
  for (const auto& bucket : snapshot.pool) {
    out << bucket.label << ' ' << bucket.count << '\n';
  }
  out << "bins " << snapshot.bin_queues.size() << '\n';
  for (const auto& queue : snapshot.bin_queues) {
    out << queue.size();
    for (const std::uint64_t label : queue) out << ' ' << label;
    out << '\n';
  }
  if (!out) fail("write error: " + path);
}

core::CappedSnapshot load_checkpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open for reading: " + path);

  const auto magic = read_value<std::string>(in, "magic");
  if (magic != kMagic) fail("bad magic '" + magic + "'");
  const auto version = read_value<int>(in, "version");
  if (version != kVersion) {
    fail("unsupported version " + std::to_string(version));
  }

  core::CappedSnapshot snap;
  auto expect_keyword = [&](const char* keyword) {
    const auto word = read_value<std::string>(in, keyword);
    if (word != keyword) fail(std::string("expected '") + keyword + "'");
  };

  expect_keyword("config");
  snap.config.n = read_value<std::uint32_t>(in, "n");
  snap.config.capacity = read_value<std::uint32_t>(in, "capacity");
  snap.config.lambda_n = read_value<std::uint64_t>(in, "lambda_n");
  snap.config.arrival =
      static_cast<core::ArrivalModel>(read_value<int>(in, "arrival"));
  snap.config.deletion =
      static_cast<core::DeletionDiscipline>(read_value<int>(in, "deletion"));
  snap.config.acceptance =
      static_cast<core::AcceptanceOrder>(read_value<int>(in, "acceptance"));
  snap.config.failure_probability =
      read_value<double>(in, "failure_probability");

  expect_keyword("state");
  snap.round = read_value<std::uint64_t>(in, "round");
  snap.generated_total = read_value<std::uint64_t>(in, "generated_total");
  snap.deleted_total = read_value<std::uint64_t>(in, "deleted_total");

  expect_keyword("engine");
  for (auto& word : snap.engine_state) {
    word = read_value<std::uint64_t>(in, "engine word");
  }

  expect_keyword("pool");
  const auto buckets = read_value<std::size_t>(in, "pool size");
  snap.pool.reserve(buckets);
  for (std::size_t i = 0; i < buckets; ++i) {
    const auto label = read_value<std::uint64_t>(in, "bucket label");
    const auto count = read_value<std::uint64_t>(in, "bucket count");
    snap.pool.push_back({label, count});
  }

  expect_keyword("bins");
  const auto bins = read_value<std::size_t>(in, "bin count");
  if (bins != snap.config.n) fail("bin count mismatch");
  snap.bin_queues.resize(bins);
  for (auto& queue : snap.bin_queues) {
    const auto length = read_value<std::size_t>(in, "queue length");
    if (snap.config.capacity != core::CappedConfig::kInfiniteCapacity &&
        length > snap.config.capacity) {
      fail("queue longer than capacity");
    }
    queue.reserve(length);
    for (std::size_t i = 0; i < length; ++i) {
      queue.push_back(read_value<std::uint64_t>(in, "queue label"));
    }
  }
  return snap;
}

}  // namespace iba::sim
