#include "sim/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/crc32.hpp"

namespace iba::sim {

namespace {

constexpr const char* kMagic = "iba-checkpoint";
// v3 adds the adaptive-control fields (config + controller state).
// v2 files (no control plane) still load, with control disabled.
constexpr int kVersion = 3;
constexpr int kMinVersion = 2;

[[noreturn]] void fail(const std::string& why) {
  throw std::runtime_error("checkpoint: " + why);
}

template <typename T>
T read_value(std::istream& in, const char* what) {
  T value;
  if (!(in >> value)) fail(std::string("truncated/invalid field: ") + what);
  return value;
}

/// Reads an integer and checks it names a valid enumerator of E.
template <typename E>
E read_enum(std::istream& in, const char* what, int count) {
  const int raw = read_value<int>(in, what);
  if (raw < 0 || raw >= count) {
    fail(std::string("out-of-range field: ") + what + " = " +
         std::to_string(raw));
  }
  return static_cast<E>(raw);
}

void expect_keyword(std::istream& in, const char* keyword) {
  const auto word = read_value<std::string>(in, keyword);
  if (word != keyword) {
    fail(std::string("expected section '") + keyword + "', found '" + word +
         "'");
  }
}

/// Appends the decimal rendering of `value` to `out` without the
/// allocation churn of std::to_string — render_body is on the
/// checkpoint hot path (bench_fault_recovery budgets it at <= 5% of a
/// run), and a 2^15-bin snapshot is a couple of MB of digits.
void append_number(std::string& out, std::uint64_t value) {
  char digits[20];
  char* end = digits + sizeof(digits);
  char* cursor = end;
  do {
    *--cursor = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);
  out.append(cursor, end);
}

void append_field(std::string& out, std::uint64_t value) {
  out.push_back(' ');
  append_number(out, value);
}

std::string render_body(const Checkpoint& checkpoint) {
  const core::CappedSnapshot& snapshot = checkpoint.snapshot;
  const auto& config = snapshot.config;
  std::string out;
  // ~20 bytes per stored label dominates; reserve once.
  std::size_t labels = snapshot.pool.size() * 2 + snapshot.deferred.size() * 3;
  for (const auto& queue : snapshot.bin_queues) labels += queue.size() + 1;
  out.reserve(512 + labels * 21);

  char prob[40];
  std::snprintf(prob, sizeof(prob), "%.17g", config.failure_probability);
  out += "config";
  append_field(out, config.n);
  append_field(out, config.capacity);
  append_field(out, config.lambda_n);
  append_field(out, static_cast<std::uint64_t>(config.arrival));
  append_field(out, static_cast<std::uint64_t>(config.deletion));
  append_field(out, static_cast<std::uint64_t>(config.acceptance));
  out.push_back(' ');
  out += prob;
  append_field(out, static_cast<std::uint64_t>(config.failure_mode));
  append_field(out, static_cast<std::uint64_t>(config.kernel));
  append_field(out, config.shards);
  append_field(out, config.pool_limit);
  append_field(out, static_cast<std::uint64_t>(config.backpressure));
  append_field(out, config.backoff_rounds);
  // v3: adaptive-control configuration rides on the config line.
  char hysteresis[40];
  std::snprintf(hysteresis, sizeof(hysteresis), "%.17g",
                config.control.hysteresis);
  append_field(out, static_cast<std::uint64_t>(config.control.policy));
  append_field(out, config.control.c_max);
  append_field(out, config.control.window);
  append_field(out, config.control.cooldown);
  out.push_back(' ');
  out += hysteresis;
  append_field(out, config.control.admission_target);
  out.push_back('\n');
  out += "state";
  append_field(out, snapshot.round);
  append_field(out, snapshot.generated_total);
  append_field(out, snapshot.deleted_total);
  append_field(out, snapshot.shed_total);
  out.push_back('\n');
  out += "engine";
  for (const std::uint64_t word : snapshot.engine_state) {
    append_field(out, word);
  }
  out.push_back('\n');
  out += "pool";
  append_field(out, snapshot.pool.size());
  out.push_back('\n');
  for (const auto& bucket : snapshot.pool) {
    append_number(out, bucket.label);
    append_field(out, bucket.count);
    out.push_back('\n');
  }
  out += "deferred";
  append_field(out, snapshot.deferred.size());
  out.push_back('\n');
  for (const auto& bucket : snapshot.deferred) {
    append_number(out, bucket.label);
    append_field(out, bucket.count);
    append_field(out, bucket.ready);
    out.push_back('\n');
  }
  out += "bins";
  append_field(out, snapshot.bin_queues.size());
  out.push_back('\n');
  for (const auto& queue : snapshot.bin_queues) {
    append_number(out, queue.size());
    for (const std::uint64_t label : queue) append_field(out, label);
    out.push_back('\n');
  }
  const core::CappedWaitState& waits = snapshot.waits;
  out += "waits";
  append_field(out, waits.count);
  append_field(out, waits.sum);
  append_field(out, waits.sumsq_hi);
  append_field(out, waits.sumsq_lo);
  append_field(out, waits.max);
  append_field(out, waits.histogram.size());
  for (const std::uint64_t bucket : waits.histogram) {
    append_field(out, bucket);
  }
  out.push_back('\n');
  out += "fault";
  append_field(out, checkpoint.has_fault_state ? 1 : 0);
  out.push_back('\n');
  if (checkpoint.has_fault_state) {
    const fault::FaultPlan::State& fs = checkpoint.fault_state;
    // The schedule text is quoted by length so embedded spaces survive.
    out += "fault-schedule";
    append_field(out, checkpoint.fault_schedule.size());
    out.push_back(' ');
    out += checkpoint.fault_schedule;
    out.push_back('\n');
    out += "fault-seed";
    append_field(out, checkpoint.fault_seed);
    out.push_back('\n');
    out += "fault-engine";
    for (const std::uint64_t word : fs.engine_state) {
      append_field(out, word);
    }
    out.push_back('\n');
    out += "fault-counters";
    append_field(out, fs.last_round);
    append_field(out, fs.crashes);
    append_field(out, fs.repairs);
    append_field(out, fs.straggler_skips);
    out.push_back('\n');
    out += "fault-down";
    append_field(out, fs.down.size());
    out.push_back('\n');
    for (const auto& d : fs.down) {
      append_number(out, d.bin);
      append_field(out, d.until);
      out.push_back('\n');
    }
    out += "fault-degraded";
    append_field(out, fs.degraded.size());
    out.push_back('\n');
    for (const auto& d : fs.degraded) {
      append_number(out, d.bin);
      append_field(out, d.until);
      append_field(out, d.cap);
      out.push_back('\n');
    }
  }
  // v3: controller state (estimator rings + policy memory + cooldown).
  const bool has_control = config.control.enabled();
  out += "control";
  append_field(out, has_control ? 1 : 0);
  out.push_back('\n');
  if (has_control) {
    const control::ControllerState& cs = snapshot.controller;
    out += "control-policy";
    // direction is ±1; encoded as 1 (up) / 0 (down).
    append_field(out, cs.policy.direction > 0 ? 1 : 0);
    append_field(out, cs.policy.has_prev);
    append_field(out, cs.policy.prev_wait_bits);
    append_field(out, cs.policy.has_best);
    append_field(out, cs.policy.best_wait_bits);
    out.push_back('\n');
    out += "control-controller";
    append_field(out, cs.cooldown_until);
    append_field(out, cs.changes);
    append_field(out, cs.grows);
    append_field(out, cs.shrinks);
    append_field(out, cs.admission_limit);
    append_field(out, cs.admission_base);
    out.push_back('\n');
    const control::EstimatorState& es = cs.estimator;
    out += "control-estimator";
    append_field(out, es.head);
    append_field(out, es.filled);
    append_field(out, es.rounds);
    append_field(out, es.ewma_bits);
    append_field(out, es.generated.size());
    out.push_back('\n');
    for (std::size_t i = 0; i < es.generated.size(); ++i) {
      append_number(out, es.generated[i]);
      append_field(out, es.pool[i]);
      append_field(out, es.wait_sum[i]);
      append_field(out, es.wait_count[i]);
      out.push_back('\n');
    }
  }
  out += "end\n";
  return out;
}

}  // namespace

void save_checkpoint(const Checkpoint& checkpoint, const std::string& path) {
  const std::string body = render_body(checkpoint);
  std::ostringstream header;
  header << kMagic << ' ' << kVersion << ' ' << common::crc32(body) << ' '
         << body.size() << '\n';
  const std::string head = header.str();

  // Crash-safe write: tmp file, flush, fsync, atomic rename. A crash at
  // any point leaves either the old checkpoint or the complete new one.
  const std::string tmp = path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) fail("cannot open for writing: " + tmp);
  bool ok = std::fwrite(head.data(), 1, head.size(), out) == head.size() &&
            std::fwrite(body.data(), 1, body.size(), out) == body.size() &&
            std::fflush(out) == 0 && ::fsync(::fileno(out)) == 0;
  ok = (std::fclose(out) == 0) && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    fail("write error: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail("cannot rename " + tmp + " -> " + path);
  }
  // Persist the rename itself (directory entry) where possible.
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dirfd = ::open(dir.c_str(), O_RDONLY);
  if (dirfd >= 0) {
    ::fsync(dirfd);
    ::close(dirfd);
  }
}

void save_checkpoint(const core::CappedSnapshot& snapshot,
                     const std::string& path) {
  Checkpoint checkpoint;
  checkpoint.snapshot = snapshot;
  save_checkpoint(checkpoint, path);
}

Checkpoint load_checkpoint_full(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) fail("cannot open for reading: " + path);

  std::string header_line;
  if (!std::getline(file, header_line)) fail("truncated/invalid field: header");
  std::istringstream header(header_line);
  const auto magic = read_value<std::string>(header, "magic");
  if (magic != kMagic) fail("bad magic '" + magic + "'");
  const auto version = read_value<int>(header, "version");
  if (version < kMinVersion || version > kVersion) {
    fail("unsupported version " + std::to_string(version) + " (expected " +
         std::to_string(kMinVersion) + ".." + std::to_string(kVersion) + ")");
  }
  const auto crc = read_value<std::uint32_t>(header, "crc32");
  const auto length = read_value<std::uint64_t>(header, "body length");

  std::string body((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  if (body.size() != length) {
    fail("body length mismatch: header says " + std::to_string(length) +
         " bytes, file has " + std::to_string(body.size()));
  }
  if (common::crc32(body) != crc) fail("CRC mismatch (corrupt file)");

  std::istringstream in(body);
  Checkpoint checkpoint;
  core::CappedSnapshot& snap = checkpoint.snapshot;

  expect_keyword(in, "config");
  snap.config.n = read_value<std::uint32_t>(in, "n");
  if (snap.config.n == 0) fail("out-of-range field: n = 0");
  snap.config.capacity = read_value<std::uint32_t>(in, "capacity");
  snap.config.lambda_n = read_value<std::uint64_t>(in, "lambda_n");
  snap.config.arrival = read_enum<core::ArrivalModel>(in, "arrival", 3);
  snap.config.deletion = read_enum<core::DeletionDiscipline>(in, "deletion", 3);
  snap.config.acceptance =
      read_enum<core::AcceptanceOrder>(in, "acceptance", 2);
  snap.config.failure_probability =
      read_value<double>(in, "failure_probability");
  if (snap.config.failure_probability < 0.0 ||
      snap.config.failure_probability >= 1.0) {
    fail("out-of-range field: failure_probability");
  }
  snap.config.failure_mode = read_enum<core::FailureMode>(in, "failure_mode", 2);
  snap.config.kernel = read_enum<core::RoundKernel>(in, "kernel", 2);
  snap.config.shards = read_value<std::uint32_t>(in, "shards");
  snap.config.pool_limit = read_value<std::uint64_t>(in, "pool_limit");
  snap.config.backpressure =
      read_enum<core::BackpressureMode>(in, "backpressure", 3);
  snap.config.backoff_rounds = read_value<std::uint32_t>(in, "backoff_rounds");
  if (version >= 3) {
    auto& ctrl = snap.config.control;
    ctrl.policy = read_enum<control::Policy>(in, "control policy", 4);
    ctrl.c_max = read_value<std::uint32_t>(in, "control c_max");
    if (ctrl.c_max < 1 || ctrl.c_max > 0xFFFFu) {
      fail("out-of-range field: control c_max");
    }
    ctrl.window = read_value<std::uint32_t>(in, "control window");
    if (ctrl.window < 1 || ctrl.window > (1u << 16)) {
      fail("out-of-range field: control window");
    }
    ctrl.cooldown = read_value<std::uint32_t>(in, "control cooldown");
    if (ctrl.cooldown < 1) fail("out-of-range field: control cooldown");
    ctrl.hysteresis = read_value<double>(in, "control hysteresis");
    if (ctrl.hysteresis < 0.0 || ctrl.hysteresis > 1.0) {
      fail("out-of-range field: control hysteresis");
    }
    ctrl.admission_target =
        read_value<std::uint64_t>(in, "control admission_target");
  }
  // (v2 files predate the control plane: control stays disabled.)

  expect_keyword(in, "state");
  snap.round = read_value<std::uint64_t>(in, "round");
  snap.generated_total = read_value<std::uint64_t>(in, "generated_total");
  snap.deleted_total = read_value<std::uint64_t>(in, "deleted_total");
  snap.shed_total = read_value<std::uint64_t>(in, "shed_total");

  expect_keyword(in, "engine");
  for (auto& word : snap.engine_state) {
    word = read_value<std::uint64_t>(in, "engine word");
  }

  expect_keyword(in, "pool");
  const auto buckets = read_value<std::size_t>(in, "pool size");
  snap.pool.reserve(buckets);
  std::uint64_t prev_label = 0;
  for (std::size_t i = 0; i < buckets; ++i) {
    const auto label = read_value<std::uint64_t>(in, "pool bucket label");
    const auto count = read_value<std::uint64_t>(in, "pool bucket count");
    if (i > 0 && label <= prev_label) {
      fail("pool buckets not strictly label-ordered");
    }
    prev_label = label;
    snap.pool.push_back({label, count});
  }

  expect_keyword(in, "deferred");
  const auto deferred = read_value<std::size_t>(in, "deferred size");
  snap.deferred.reserve(deferred);
  std::uint64_t prev_ready = 0;
  for (std::size_t i = 0; i < deferred; ++i) {
    core::DeferredBucket bucket;
    bucket.label = read_value<std::uint64_t>(in, "deferred label");
    bucket.count = read_value<std::uint64_t>(in, "deferred count");
    bucket.ready = read_value<std::uint64_t>(in, "deferred ready");
    if (i > 0 && bucket.ready < prev_ready) {
      fail("deferred buckets not ready-ordered");
    }
    prev_ready = bucket.ready;
    snap.deferred.push_back(bucket);
  }

  expect_keyword(in, "bins");
  const auto bins = read_value<std::size_t>(in, "bin count");
  if (bins != snap.config.n) {
    fail("bin count mismatch: config says " + std::to_string(snap.config.n) +
         ", file has " + std::to_string(bins));
  }
  snap.bin_queues.resize(bins);
  // Under adaptive control a mid-shrink bin legitimately holds more
  // than the (already lowered) capacity — but never more than c_max.
  const std::size_t queue_bound =
      snap.config.control.enabled()
          ? std::max<std::size_t>(snap.config.capacity,
                                  snap.config.control.c_max)
          : snap.config.capacity;
  for (auto& queue : snap.bin_queues) {
    const auto length2 = read_value<std::size_t>(in, "queue length");
    if (snap.config.capacity != core::CappedConfig::kInfiniteCapacity &&
        length2 > queue_bound) {
      fail("queue longer than capacity");
    }
    queue.reserve(length2);
    for (std::size_t i = 0; i < length2; ++i) {
      queue.push_back(read_value<std::uint64_t>(in, "queue label"));
    }
  }

  expect_keyword(in, "waits");
  core::CappedWaitState& waits = snap.waits;
  waits.count = read_value<std::uint64_t>(in, "wait count");
  waits.sum = read_value<std::uint64_t>(in, "wait sum");
  waits.sumsq_hi = read_value<std::uint64_t>(in, "wait sumsq_hi");
  waits.sumsq_lo = read_value<std::uint64_t>(in, "wait sumsq_lo");
  waits.max = read_value<std::uint64_t>(in, "wait max");
  const auto wait_buckets = read_value<std::size_t>(in, "wait histogram size");
  if (wait_buckets > 64) fail("out-of-range field: wait histogram size");
  waits.histogram.reserve(wait_buckets);
  std::uint64_t hist_total = 0;
  for (std::size_t i = 0; i < wait_buckets; ++i) {
    const auto bucket = read_value<std::uint64_t>(in, "wait histogram bucket");
    hist_total += bucket;
    waits.histogram.push_back(bucket);
  }
  if (hist_total != waits.count) {
    fail("wait histogram total " + std::to_string(hist_total) +
         " != wait count " + std::to_string(waits.count));
  }

  expect_keyword(in, "fault");
  const auto has_fault = read_value<int>(in, "fault flag");
  if (has_fault != 0 && has_fault != 1) fail("out-of-range field: fault flag");
  checkpoint.has_fault_state = has_fault == 1;
  if (checkpoint.has_fault_state) {
    fault::FaultPlan::State& fs = checkpoint.fault_state;
    expect_keyword(in, "fault-schedule");
    const auto schedule_len =
        read_value<std::size_t>(in, "fault schedule length");
    if (schedule_len > body.size()) {
      fail("out-of-range field: fault schedule length");
    }
    in.get();  // the single separating space
    checkpoint.fault_schedule.resize(schedule_len);
    in.read(checkpoint.fault_schedule.data(),
            static_cast<std::streamsize>(schedule_len));
    if (static_cast<std::size_t>(in.gcount()) != schedule_len) {
      fail("truncated/invalid field: fault schedule text");
    }
    expect_keyword(in, "fault-seed");
    checkpoint.fault_seed = read_value<std::uint64_t>(in, "fault seed");
    expect_keyword(in, "fault-engine");
    for (auto& word : fs.engine_state) {
      word = read_value<std::uint64_t>(in, "fault engine word");
    }
    expect_keyword(in, "fault-counters");
    fs.last_round = read_value<std::uint64_t>(in, "fault last_round");
    fs.crashes = read_value<std::uint64_t>(in, "fault crashes");
    fs.repairs = read_value<std::uint64_t>(in, "fault repairs");
    fs.straggler_skips = read_value<std::uint64_t>(in, "fault straggler_skips");
    expect_keyword(in, "fault-down");
    const auto down = read_value<std::size_t>(in, "fault down count");
    fs.down.reserve(down);
    std::uint32_t prev_bin = 0;
    for (std::size_t i = 0; i < down; ++i) {
      fault::FaultPlan::State::Down d;
      d.bin = read_value<std::uint32_t>(in, "fault down bin");
      d.until = read_value<std::uint64_t>(in, "fault down until");
      if (d.bin >= snap.config.n) fail("out-of-range field: fault down bin");
      if (i > 0 && d.bin <= prev_bin) fail("fault down bins not ascending");
      prev_bin = d.bin;
      fs.down.push_back(d);
    }
    expect_keyword(in, "fault-degraded");
    const auto degraded = read_value<std::size_t>(in, "fault degraded count");
    fs.degraded.reserve(degraded);
    prev_bin = 0;
    for (std::size_t i = 0; i < degraded; ++i) {
      fault::FaultPlan::State::Degraded d;
      d.bin = read_value<std::uint32_t>(in, "fault degraded bin");
      d.until = read_value<std::uint64_t>(in, "fault degraded until");
      d.cap = read_value<std::uint32_t>(in, "fault degraded cap");
      if (d.bin >= snap.config.n) {
        fail("out-of-range field: fault degraded bin");
      }
      if (i > 0 && d.bin <= prev_bin) {
        fail("fault degraded bins not ascending");
      }
      prev_bin = d.bin;
      fs.degraded.push_back(d);
    }
  }

  if (version >= 3) {
    expect_keyword(in, "control");
    const auto has_control = read_value<int>(in, "control flag");
    if (has_control != 0 && has_control != 1) {
      fail("out-of-range field: control flag");
    }
    if ((has_control == 1) != snap.config.control.enabled()) {
      fail("control flag disagrees with config control policy");
    }
    if (has_control == 1) {
      control::ControllerState& cs = snap.controller;
      expect_keyword(in, "control-policy");
      const auto direction = read_value<int>(in, "control direction");
      if (direction != 0 && direction != 1) {
        fail("out-of-range field: control direction");
      }
      cs.policy.direction = direction == 1 ? 1 : -1;
      cs.policy.has_prev = read_value<std::uint32_t>(in, "control has_prev");
      cs.policy.prev_wait_bits =
          read_value<std::uint64_t>(in, "control prev_wait");
      cs.policy.has_best = read_value<std::uint32_t>(in, "control has_best");
      cs.policy.best_wait_bits =
          read_value<std::uint64_t>(in, "control best_wait");
      if (cs.policy.has_prev > 1 || cs.policy.has_best > 1) {
        fail("out-of-range field: control policy flags");
      }
      expect_keyword(in, "control-controller");
      cs.cooldown_until = read_value<std::uint64_t>(in, "control cooldown_until");
      // The cooldown is always armed as round + cooldown, so anything
      // beyond that is a corrupt (e.g. bit-flipped) field.
      if (cs.cooldown_until > snap.round + snap.config.control.cooldown) {
        fail("out-of-range field: control cooldown_until");
      }
      cs.changes = read_value<std::uint64_t>(in, "control changes");
      cs.grows = read_value<std::uint64_t>(in, "control grows");
      cs.shrinks = read_value<std::uint64_t>(in, "control shrinks");
      cs.admission_limit =
          read_value<std::uint64_t>(in, "control admission_limit");
      cs.admission_base =
          read_value<std::uint64_t>(in, "control admission_base");
      expect_keyword(in, "control-estimator");
      control::EstimatorState& es = cs.estimator;
      es.head = read_value<std::uint64_t>(in, "estimator head");
      es.filled = read_value<std::uint64_t>(in, "estimator filled");
      es.rounds = read_value<std::uint64_t>(in, "estimator rounds");
      es.ewma_bits = read_value<std::uint64_t>(in, "estimator ewma");
      const auto window = read_value<std::size_t>(in, "estimator window");
      if (window != snap.config.control.window) {
        fail("out-of-range field: estimator window");
      }
      if (es.head >= window || es.filled > window || es.filled > es.rounds) {
        fail("out-of-range field: estimator cursors");
      }
      es.generated.reserve(window);
      es.pool.reserve(window);
      es.wait_sum.reserve(window);
      es.wait_count.reserve(window);
      for (std::size_t i = 0; i < window; ++i) {
        es.generated.push_back(
            read_value<std::uint64_t>(in, "estimator ring generated"));
        es.pool.push_back(read_value<std::uint64_t>(in, "estimator ring pool"));
        es.wait_sum.push_back(
            read_value<std::uint64_t>(in, "estimator ring wait_sum"));
        es.wait_count.push_back(
            read_value<std::uint64_t>(in, "estimator ring wait_count"));
      }
    }
  }

  expect_keyword(in, "end");
  return checkpoint;
}

core::CappedSnapshot load_checkpoint(const std::string& path) {
  Checkpoint checkpoint = load_checkpoint_full(path);
  if (checkpoint.has_fault_state) {
    fail("file carries fault-plan state; load with load_checkpoint_full");
  }
  return std::move(checkpoint.snapshot);
}

}  // namespace iba::sim
