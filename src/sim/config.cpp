#include "sim/config.hpp"

#include <cmath>
#include <cstdio>

#include "common/assert.hpp"

namespace iba::sim {

core::CappedConfig SimConfig::to_capped() const {
  validate();
  core::CappedConfig config;
  config.n = n;
  config.capacity = capacity;
  config.lambda_n = lambda_n;
  config.kernel = kernel;
  config.shards = shards;
  return config;
}

void SimConfig::validate() const {
  IBA_EXPECT(n > 0, "SimConfig: n must be positive");
  IBA_EXPECT(capacity > 0, "SimConfig: capacity must be positive");
  IBA_EXPECT(lambda_n <= n, "SimConfig: lambda must be at most 1");
  IBA_EXPECT(measure_rounds > 0, "SimConfig: measure_rounds must be positive");
  IBA_EXPECT(shards >= 1, "SimConfig: shards must be at least 1");
  IBA_EXPECT(shards == 1 || kernel == core::RoundKernel::kBinMajor,
             "SimConfig: sharding requires the bin-major kernel");
}

std::string SimConfig::label() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "n=%u c=%u lambda=%.6g", n, capacity,
                lambda());
  return buf;
}

double lambda_one_minus_2pow(std::uint32_t i) {
  return 1.0 - std::pow(2.0, -static_cast<double>(i));
}

std::uint64_t lambda_n_for(std::uint32_t n, std::uint32_t i) {
  const double exact = lambda_one_minus_2pow(i) * static_cast<double>(n);
  return static_cast<std::uint64_t>(std::llround(exact));
}

std::uint64_t suggested_burn_in(double lambda) {
  IBA_EXPECT(lambda >= 0.0 && lambda <= 1.0,
             "suggested_burn_in: lambda must lie in [0, 1]");
  const double slack = 1.0 - lambda;
  const double relaxation = slack > 0.0 ? 5.0 / slack : 2e5;
  return 2000 + static_cast<std::uint64_t>(std::min(relaxation, 2e5));
}

}  // namespace iba::sim
