#include "sim/sweep.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "telemetry/log.hpp"

namespace iba::sim {

SweepBuilder& SweepBuilder::over_capacity(std::uint32_t lo,
                                          std::uint32_t hi) {
  IBA_EXPECT(axis_ == Axis::kNone, "SweepBuilder: x-axis already chosen");
  IBA_EXPECT(lo >= 1 && lo <= hi, "SweepBuilder: bad capacity range");
  axis_ = Axis::kCapacity;
  axis_lo_ = lo;
  axis_hi_ = hi;
  return *this;
}

SweepBuilder& SweepBuilder::over_lambda_exponent(std::uint32_t lo,
                                                 std::uint32_t hi) {
  IBA_EXPECT(axis_ == Axis::kNone, "SweepBuilder: x-axis already chosen");
  IBA_EXPECT(lo >= 1 && lo <= hi, "SweepBuilder: bad exponent range");
  axis_ = Axis::kLambdaExp;
  axis_lo_ = lo;
  axis_hi_ = hi;
  return *this;
}

SweepBuilder& SweepBuilder::over_log2_n(std::uint32_t lo, std::uint32_t hi) {
  IBA_EXPECT(axis_ == Axis::kNone, "SweepBuilder: x-axis already chosen");
  IBA_EXPECT(lo >= 1 && lo <= hi && hi < 31, "SweepBuilder: bad n range");
  axis_ = Axis::kLog2N;
  axis_lo_ = lo;
  axis_hi_ = hi;
  return *this;
}

SweepBuilder& SweepBuilder::series_capacities(
    std::vector<std::uint32_t> capacities) {
  IBA_EXPECT(series_kind_ == Series::kNone,
             "SweepBuilder: series already chosen");
  IBA_EXPECT(!capacities.empty(), "SweepBuilder: empty series");
  series_kind_ = Series::kCapacity;
  series_values_ = std::move(capacities);
  return *this;
}

SweepBuilder& SweepBuilder::series_lambda_exponents(
    std::vector<std::uint32_t> exponents) {
  IBA_EXPECT(series_kind_ == Series::kNone,
             "SweepBuilder: series already chosen");
  IBA_EXPECT(!exponents.empty(), "SweepBuilder: empty series");
  series_kind_ = Series::kLambdaExp;
  series_values_ = std::move(exponents);
  return *this;
}

std::vector<SweepCell> SweepBuilder::build() const {
  IBA_EXPECT(axis_ != Axis::kNone, "SweepBuilder: choose an x-axis first");
  std::vector<std::uint32_t> series =
      series_kind_ == Series::kNone ? std::vector<std::uint32_t>{0}
                                    : series_values_;

  std::vector<SweepCell> cells;
  for (const std::uint32_t series_value : series) {
    for (std::uint32_t x = axis_lo_; x <= axis_hi_; ++x) {
      SweepCell cell;
      cell.config = base_;
      cell.x = x;
      // The λ the cell is *meant* to realize; used to reject cells whose
      // λ·n is non-integral (e.g. 1 − 2^-9 at n = 256).
      double intended_lambda = base_.lambda();

      // Apply the series dimension.
      switch (series_kind_) {
        case Series::kCapacity:
          cell.config.capacity = series_value;
          cell.series = "c=" + std::to_string(series_value);
          break;
        case Series::kLambdaExp:
          cell.config.lambda_n = lambda_n_for(cell.config.n, series_value);
          intended_lambda = lambda_one_minus_2pow(series_value);
          cell.series = "lambda=1-2^-" + std::to_string(series_value);
          break;
        case Series::kNone:
          cell.series = "all";
          break;
      }

      // Apply the x-axis dimension.
      switch (axis_) {
        case Axis::kCapacity:
          cell.config.capacity = x;
          break;
        case Axis::kLambdaExp:
          cell.config.lambda_n = lambda_n_for(cell.config.n, x);
          intended_lambda = lambda_one_minus_2pow(x);
          break;
        case Axis::kLog2N: {
          const double ratio = base_.n > 0 ? static_cast<double>(
                                                 base_.lambda_n) /
                                                 static_cast<double>(base_.n)
                                           : 0.0;
          cell.config.n = 1u << x;
          cell.config.lambda_n = static_cast<std::uint64_t>(
              std::llround(ratio * static_cast<double>(cell.config.n)));
          break;
        }
        case Axis::kNone:
          break;
      }

      // Series λ-exponents must re-resolve after an n change.
      if (series_kind_ == Series::kLambdaExp && axis_ == Axis::kLog2N) {
        cell.config.lambda_n = lambda_n_for(cell.config.n, series_value);
      }

      // Drop cells whose intended λ·n is non-integral for their n
      // (e.g. 1 − 2^-13 at n = 2^12).
      const double exact_lambda_n =
          intended_lambda * static_cast<double>(cell.config.n);
      if (cell.config.lambda_n > cell.config.n ||
          std::abs(exact_lambda_n - std::round(exact_lambda_n)) > 1e-9 ||
          static_cast<std::uint64_t>(std::llround(exact_lambda_n)) !=
              cell.config.lambda_n) {
        continue;
      }
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

std::vector<SweepOutcome> run_sweep(
    const std::vector<SweepCell>& cells,
    const std::function<void(const SweepOutcome&)>& on_cell,
    RunTelemetry telemetry) {
  telemetry::log_debug("sweep_start", {{"cells", cells.size()}});
  std::vector<SweepOutcome> outcomes;
  outcomes.reserve(cells.size());
  for (const SweepCell& cell : cells) {
    SweepOutcome outcome{
        cell, run_capped(cell.config, RunSpec::from_config(cell.config),
                         telemetry)};
    telemetry::log_debug("sweep_cell",
                         {{"series", cell.series},
                          {"x", cell.x},
                          {"n", cell.config.n},
                          {"capacity", cell.config.capacity},
                          {"wait_mean", outcome.result.wait_mean},
                          {"pool_mean", outcome.result.normalized_pool.mean()}});
    if (on_cell) on_cell(outcome);
    outcomes.push_back(std::move(outcome));
  }
  telemetry::log_debug("sweep_done", {{"cells", outcomes.size()}});
  return outcomes;
}

}  // namespace iba::sim
