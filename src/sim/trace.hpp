// Execution tracing and online invariant checking.
//
// TraceRecorder captures per-round series (pool, loads, deletions,
// waits) for post-hoc analysis or CSV export — e.g. to inspect the
// burn-in ramp the paper's "suitable length" refers to.
//
// Checked<P> wraps any AllocationProcess and cross-validates the flow
// identities every RoundMetrics must satisfy, turning silent accounting
// bugs into counted violations (used by tests and the failure-injection
// bench).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/process.hpp"
#include "io/csv.hpp"

namespace iba::sim {

/// Append-only per-round series storage.
class TraceRecorder {
 public:
  void observe(const core::RoundMetrics& m) {
    pool_.push_back(static_cast<double>(m.pool_size));
    total_load_.push_back(static_cast<double>(m.total_load));
    max_load_.push_back(static_cast<double>(m.max_load));
    deleted_.push_back(static_cast<double>(m.deleted));
    wait_max_.push_back(static_cast<double>(m.wait_max));
  }

  [[nodiscard]] std::size_t size() const noexcept { return pool_.size(); }
  [[nodiscard]] const std::vector<double>& pool() const noexcept {
    return pool_;
  }
  [[nodiscard]] const std::vector<double>& total_load() const noexcept {
    return total_load_;
  }
  [[nodiscard]] const std::vector<double>& max_load() const noexcept {
    return max_load_;
  }
  [[nodiscard]] const std::vector<double>& deleted() const noexcept {
    return deleted_;
  }
  [[nodiscard]] const std::vector<double>& wait_max() const noexcept {
    return wait_max_;
  }

  /// Dumps all series as CSV (round, pool, total_load, max_load,
  /// deleted, wait_max).
  void write_csv(const std::string& path) const {
    io::CsvWriter csv(path);
    csv.header(
        {"round", "pool", "total_load", "max_load", "deleted", "wait_max"});
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      csv.row(std::vector<double>{static_cast<double>(i + 1), pool_[i],
                                  total_load_[i], max_load_[i], deleted_[i],
                                  wait_max_[i]});
    }
  }

  void clear() noexcept {
    pool_.clear();
    total_load_.clear();
    max_load_.clear();
    deleted_.clear();
    wait_max_.clear();
  }

 private:
  std::vector<double> pool_;
  std::vector<double> total_load_;
  std::vector<double> max_load_;
  std::vector<double> deleted_;
  std::vector<double> wait_max_;
};

/// Flow identities checked by Checked<P>. check_wait_counts is optional
/// because processes without per-ball waiting times (e.g. repeated
/// balls-into-bins) legitimately report wait_count = 0.
struct CheckOptions {
  bool check_round_sequence = true;  ///< rounds increase by exactly 1
  bool check_pool_flow = true;       ///< thrown = accepted + pool_size
  bool check_load_flow = true;       ///< Δ total_load = accepted − deleted
  bool check_wait_counts = true;     ///< wait_count = deleted
};

/// Wraps a process (by reference) and validates every step's metrics.
template <core::AllocationProcess P>
class Checked {
 public:
  explicit Checked(P& process, CheckOptions options = {})
      : process_(process), options_(options), last_round_(process.round()) {
    if constexpr (requires { process.total_load(); }) {
      last_total_load_ = process.total_load();
    }
  }

  core::RoundMetrics step() {
    const auto m = process_.step();
    if (options_.check_round_sequence && m.round != last_round_ + 1) {
      note_violation("round sequence");
    }
    last_round_ = m.round;
    if (options_.check_pool_flow &&
        m.thrown + m.requeued != m.accepted + m.pool_size) {
      note_violation("pool flow");
    }
    if (options_.check_load_flow &&
        m.total_load != last_total_load_ + m.accepted - m.deleted -
                            m.requeued) {
      note_violation("load flow");
    }
    last_total_load_ = m.total_load;
    if (options_.check_wait_counts && m.wait_count != m.deleted) {
      note_violation("wait counts");
    }
    return m;
  }

  [[nodiscard]] std::uint32_t n() const noexcept { return process_.n(); }
  [[nodiscard]] std::uint64_t round() const noexcept {
    return process_.round();
  }

  [[nodiscard]] std::uint64_t violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] const std::vector<std::string>& violation_log()
      const noexcept {
    return violation_log_;
  }

 private:
  void note_violation(const char* what) {
    ++violations_;
    if (violation_log_.size() < 32) {  // keep the log bounded
      violation_log_.push_back(std::string(what) + " at round " +
                               std::to_string(last_round_));
    }
  }

  P& process_;
  CheckOptions options_;
  std::uint64_t last_round_ = 0;
  std::uint64_t last_total_load_ = 0;
  std::uint64_t violations_ = 0;
  std::vector<std::string> violation_log_;
};

}  // namespace iba::sim
