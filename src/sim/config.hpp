// Experiment configuration shared by the runner, the benches and the
// examples: system geometry (n, c, λ) plus measurement protocol (burn-in,
// measured rounds, seed), mirroring the paper's Section V setup.
#pragma once

#include <cstdint>
#include <string>

#include "core/capped.hpp"

namespace iba::sim {

/// One experiment cell. The paper's defaults: n = 2^15, burn-in "of
/// suitable length" (we auto-detect with a floor), 1000 measured rounds.
struct SimConfig {
  std::uint32_t n = 1u << 13;
  std::uint32_t capacity = 1;
  std::uint64_t lambda_n = 0;

  std::uint64_t burn_in = 0;         ///< fixed burn-in rounds (floor)
  bool auto_burn_in = true;          ///< extend until the pool stabilizes
  std::uint64_t max_burn_in = 50000; ///< safety cap for auto mode
  std::uint64_t measure_rounds = 1000;
  std::uint64_t seed = 1;

  /// Round hot-path kernel and shard count, forwarded to CappedConfig.
  /// Results are byte-identical for every (kernel, shards) combination;
  /// these only trade wall-clock (see docs/PERFORMANCE.md).
  core::RoundKernel kernel = core::RoundKernel::kBinMajor;
  std::uint32_t shards = 1;

  [[nodiscard]] double lambda() const noexcept {
    return n == 0 ? 0.0
                  : static_cast<double>(lambda_n) / static_cast<double>(n);
  }

  [[nodiscard]] core::CappedConfig to_capped() const;

  void validate() const;

  /// Human-readable cell label, e.g. "n=8192 c=2 λ=1-2^-10".
  [[nodiscard]] std::string label() const;
};

/// λ = 1 − 2^(−i), the grid of the paper's Figures 4/5 (right plots).
[[nodiscard]] double lambda_one_minus_2pow(std::uint32_t i);

/// λn for λ = 1 − 2^(−i) rounded to the nearest integer (exact when
/// 2^i divides n, which holds for the paper's power-of-two n).
[[nodiscard]] std::uint64_t lambda_n_for(std::uint32_t n, std::uint32_t i);

/// Principled burn-in: the mean-field relaxation time of CAPPED is
/// Θ(1/(1−λ)) rounds (the pool deficit decays like e^(−(1−λ)t)), so a
/// burn-in of 5/(1−λ) + 2000 rounds reaches equilibrium within < 1%.
/// Capped at 200000 rounds as a safety valve near λ = 1.
[[nodiscard]] std::uint64_t suggested_burn_in(double lambda);

}  // namespace iba::sim
