// The experiment runner: burn the process in (fixed floor plus optional
// stabilization detection), then measure a window of rounds, aggregating
// exactly the observables of the paper's Section V — normalized pool
// size, average and maximum waiting time — plus engineering metrics.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "core/process.hpp"
#include "fault/auditor.hpp"
#include "sim/config.hpp"
#include "stats/autocorrelation.hpp"
#include "stats/summary.hpp"
#include "telemetry/ball_trace.hpp"
#include "telemetry/phase_timers.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/round_trace.hpp"
#include "telemetry/timeseries.hpp"

namespace iba::sim {

/// Measurement protocol, decoupled from system geometry so the same spec
/// can drive any process.
struct RunSpec {
  std::uint64_t burn_in = 0;          ///< minimum burn-in rounds
  bool auto_burn_in = true;           ///< extend until stabilized
  std::uint64_t max_burn_in = 50000;  ///< cap for auto mode
  std::uint64_t stabilization_window = 200;
  double stabilization_tol = 0.02;    ///< relative window-mean agreement
  std::uint64_t measure_rounds = 1000;

  [[nodiscard]] static RunSpec from_config(const SimConfig& config) {
    RunSpec spec;
    spec.burn_in = config.burn_in;
    spec.auto_burn_in = config.auto_burn_in;
    spec.max_burn_in = config.max_burn_in;
    spec.measure_rounds = config.measure_rounds;
    return spec;
  }
};

/// Aggregated outcome of one (burn-in + measurement) run.
struct RunResult {
  std::uint64_t burn_in_used = 0;
  std::uint64_t measured_rounds = 0;

  stats::Summary pool;             ///< per-round pool size
  stats::Summary normalized_pool;  ///< pool / n (the paper's y-axis)
  stats::Summary max_load;         ///< per-round maximum bin load
  stats::Summary system_load;      ///< pool + in-bin balls, per round

  double wait_mean = 0.0;   ///< mean waiting time over measured deletions
  double wait_stddev = 0.0;
  std::uint64_t wait_max = 0;
  double wait_p99_upper = 0.0;  ///< dyadic upper bound on the p99
  std::uint64_t deletions = 0;

  double rounds_per_second = 0.0;
  double ns_per_ball = 0.0;
};

/// Optional observation hooks for run_experiment. All pointers may be
/// null; with none set the runner behaves exactly as before. The registry
/// receives only simulation-deterministic values (counts, loads, waits) —
/// never wall-clock — so replica registries can merge to byte-identical
/// exports. Wall-clock goes to `timers` (burn-in/measure, plus the
/// process's own throw/accept/delete split when it supports
/// set_phase_timers) and to the per-event step_ns of `trace`.
struct RunTelemetry {
  telemetry::Registry* registry = nullptr;
  telemetry::RoundTrace* trace = nullptr;   ///< measured rounds only
  telemetry::PhaseTimers* timers = nullptr;
  /// Per-ball span tracing (processes supporting set_ball_tracer only).
  /// The tracer observes the whole run; its buffered spans and wait-split
  /// histograms are cleared after burn-in so, like the wait statistics,
  /// they describe the stabilized system. Aggregates land in `registry`
  /// under the span_* names — simulation-deterministic, so the merge
  /// guarantee above still holds.
  telemetry::BallTracer* ball_trace = nullptr;
  /// Online invariant auditing (processes the auditor understands only —
  /// currently Capped). Observes every round, burn-in included; deep
  /// checks run at the auditor's own cadence. Violations never stop the
  /// run — inspect auditor->ok() afterwards.
  fault::InvariantAuditor* auditor = nullptr;
  /// Fixed-cadence columnar time series (processes supporting
  /// set_time_series only — currently Capped). Observes every round,
  /// burn-in included; content is a pure function of simulation state,
  /// so identical runs yield byte-identical renderings.
  telemetry::TimeSeries* timeseries = nullptr;
};

namespace detail {

/// Resolves registry handles once so the measurement loop pays one
/// integer add per instrument per round. Null registry → inert.
class RoundRecorder {
 public:
  explicit RoundRecorder(telemetry::Registry* registry) {
    if (registry == nullptr) return;
    rounds_ = &registry->counter("rounds_total");
    generated_ = &registry->counter("balls_generated_total");
    thrown_ = &registry->counter("balls_thrown_total");
    accepted_ = &registry->counter("balls_accepted_total");
    deleted_ = &registry->counter("balls_deleted_total");
    requeued_ = &registry->counter("balls_requeued_total");
    pool_gauge_ = &registry->gauge("pool_size");
    max_load_gauge_ = &registry->gauge("max_load");
    total_load_gauge_ = &registry->gauge("total_load");
    pool_hist_ = &registry->histogram("pool_size_rounds");
  }

  void observe(const core::RoundMetrics& m) noexcept {
    if (rounds_ == nullptr) return;
    rounds_->inc();
    generated_->inc(m.generated);
    thrown_->inc(m.thrown);
    accepted_->inc(m.accepted);
    deleted_->inc(m.deleted);
    requeued_->inc(m.requeued);
    pool_gauge_->set(static_cast<double>(m.pool_size));
    max_load_gauge_->set(static_cast<double>(m.max_load));
    total_load_gauge_->set(static_cast<double>(m.total_load));
    pool_hist_->observe(m.pool_size);
  }

 private:
  telemetry::Counter* rounds_ = nullptr;
  telemetry::Counter* generated_ = nullptr;
  telemetry::Counter* thrown_ = nullptr;
  telemetry::Counter* accepted_ = nullptr;
  telemetry::Counter* deleted_ = nullptr;
  telemetry::Counter* requeued_ = nullptr;
  telemetry::Gauge* pool_gauge_ = nullptr;
  telemetry::Gauge* max_load_gauge_ = nullptr;
  telemetry::Gauge* total_load_gauge_ = nullptr;
  telemetry::DyadicHistogram* pool_hist_ = nullptr;
};

}  // namespace detail

/// Burn-in + measurement over any AllocationProcess. Wait statistics are
/// reset after burn-in when the process supports it, so the reported
/// waiting times describe the stabilized system only.
template <core::AllocationProcess P>
RunResult run_experiment(P& process, const RunSpec& spec,
                         RunTelemetry telemetry = {}) {
  RunResult result;

  const auto audit = [&](const core::RoundMetrics& m) {
    if constexpr (requires { telemetry.auditor->observe(process, m); }) {
      if (telemetry.auditor != nullptr) telemetry.auditor->observe(process, m);
    } else {
      (void)m;
    }
  };

  if constexpr (requires { process.set_phase_timers(telemetry.timers); }) {
    process.set_phase_timers(telemetry.timers);
  }
  if constexpr (requires { process.set_ball_tracer(telemetry.ball_trace); }) {
    process.set_ball_tracer(telemetry.ball_trace);
  }
  if constexpr (requires { process.set_time_series(telemetry.timeseries); }) {
    process.set_time_series(telemetry.timeseries);
  }

  {
    telemetry::ScopedPhaseTimer burn_timer(telemetry.timers,
                                           telemetry::Phase::kBurnIn);
    std::uint64_t burn_balls = 0;

    // Fixed burn-in floor.
    for (std::uint64_t i = 0; i < spec.burn_in; ++i) {
      const auto m = process.step();
      burn_balls += m.thrown;
      audit(m);
    }
    result.burn_in_used = spec.burn_in;

    // Optional stabilization phase: keep burning until the last two
    // windows of the system-load series agree, or the cap is reached.
    if (spec.auto_burn_in && spec.stabilization_window > 0) {
      std::vector<double> series;
      series.reserve(spec.stabilization_window * 4);
      while (result.burn_in_used < spec.max_burn_in) {
        const auto m = process.step();
        audit(m);
        ++result.burn_in_used;
        burn_balls += m.thrown;
        series.push_back(static_cast<double>(m.pool_size + m.total_load));
        if (series.size() >= 2 * spec.stabilization_window &&
            series.size() % spec.stabilization_window == 0 &&
            stats::windows_agree(series, spec.stabilization_window,
                                 spec.stabilization_tol)) {
          break;
        }
      }
    }
    burn_timer.set_balls(burn_balls);
  }

  if constexpr (requires { process.reset_wait_stats(); }) {
    process.reset_wait_stats();
  }
  if (telemetry.ball_trace != nullptr) {
    telemetry.ball_trace->clear_completed();  // spans of the burn-in phase
  }

  // Measurement window.
  telemetry::ScopedPhaseTimer measure_timer(telemetry.timers,
                                            telemetry::Phase::kMeasure);
  detail::RoundRecorder recorder(telemetry.registry);
  std::uint64_t balls_processed = 0;
  double wait_sum = 0.0;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < spec.measure_rounds; ++i) {
    const bool timing_steps = telemetry.trace != nullptr;
    const auto step_start =
        timing_steps ? std::chrono::steady_clock::now()
                     : std::chrono::steady_clock::time_point{};
    const auto m = process.step();
    audit(m);
    if (timing_steps) {
      const auto step_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                               std::chrono::steady_clock::now() - step_start)
                               .count();
      (void)telemetry.trace->try_push(
          {m, static_cast<std::uint64_t>(step_ns)});
    }
    result.pool.add(static_cast<double>(m.pool_size));
    result.normalized_pool.add(static_cast<double>(m.pool_size) /
                               static_cast<double>(process.n()));
    result.max_load.add(static_cast<double>(m.max_load));
    result.system_load.add(static_cast<double>(m.pool_size + m.total_load));
    result.deletions += m.wait_count;
    wait_sum += m.wait_sum;
    if (m.wait_max > result.wait_max) result.wait_max = m.wait_max;
    balls_processed += m.thrown;
    recorder.observe(m);
  }
  measure_timer.set_balls(balls_processed);
  measure_timer.stop();
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();

  result.measured_rounds = spec.measure_rounds;
  if (result.deletions > 0) {
    result.wait_mean = wait_sum / static_cast<double>(result.deletions);
  }
  if constexpr (requires { process.waits(); }) {
    result.wait_stddev = process.waits().stddev();
    result.wait_p99_upper =
        static_cast<double>(process.waits().quantile_upper_bound(0.99));
  }
  if (elapsed > 0) {
    result.rounds_per_second =
        static_cast<double>(spec.measure_rounds) / elapsed;
    if (balls_processed > 0) {
      result.ns_per_ball =
          elapsed * 1e9 / static_cast<double>(balls_processed);
    }
  }

  if (telemetry.registry != nullptr) {
    telemetry.registry->counter("runs_total").inc();
    telemetry.registry->gauge("burn_in_rounds")
        .set(static_cast<double>(result.burn_in_used));
    if constexpr (requires { process.waits(); }) {
      telemetry.registry->histogram("wait_rounds")
          .merge_log2(process.waits().histogram(), wait_sum);
    }
    if (telemetry.ball_trace != nullptr) {
      telemetry::record_ball_trace(*telemetry.registry,
                                   *telemetry.ball_trace);
    }
  }
  if constexpr (requires { process.set_phase_timers(nullptr); }) {
    process.set_phase_timers(nullptr);  // sink may not outlive the process
  }
  if constexpr (requires { process.set_ball_tracer(nullptr); }) {
    process.set_ball_tracer(nullptr);
  }
  if constexpr (requires { process.set_time_series(nullptr); }) {
    process.set_time_series(nullptr);
  }
  return result;
}

/// Convenience: builds a Capped process from `config` and runs it.
[[nodiscard]] RunResult run_capped(const SimConfig& config);

/// Same, but with the measurement protocol overridden.
[[nodiscard]] RunResult run_capped(const SimConfig& config,
                                   const RunSpec& spec);

/// Same, with telemetry hooks observing the run.
[[nodiscard]] RunResult run_capped(const SimConfig& config,
                                   const RunSpec& spec,
                                   RunTelemetry telemetry);

}  // namespace iba::sim
