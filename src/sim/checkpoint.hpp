// Checkpoint persistence: save/restore a CAPPED process to/from disk so
// very long experiments (the paper's guarantees hold "at any, even
// exponentially large, time") can be split across invocations with a
// bit-identical continuation.
//
// Format v3 (docs/ROBUSTNESS.md, docs/CONTROL.md):
//  * line-oriented text body — trivially inspectable and diff-able —
//    carrying the full CappedSnapshot (config incl. kernel/shards/
//    backpressure and the adaptive-control configuration, engine, pool,
//    deferred arrivals, bin queues, cumulative wait statistics, and —
//    when control is enabled — the controller state: estimator rings,
//    policy memory, cooldown and admission limit, so a run killed
//    mid-adaptation, including mid-shrink drain, resumes bit-for-bit)
//    plus, optionally, the attached FaultPlan's dynamic state;
//  * a header line `iba-checkpoint 3 <crc32> <bytes>` binding the body
//    with a CRC32 and its exact length, so truncated or bit-flipped
//    files are rejected before any field is parsed;
//  * v2 files (predating the control plane) still load, with control
//    disabled;
//  * crash-safe writes: the file is written to `<path>.tmp`, flushed,
//    fsync'd, and atomically renamed over `path` — a crash mid-save
//    leaves the previous checkpoint intact.
//
// Loaders throw std::runtime_error whose message names the offending
// field ("truncated/invalid field: <name>", "CRC mismatch", ...); CLI
// front-ends map this to a non-zero exit without crashing.
#pragma once

#include <string>

#include "core/capped.hpp"
#include "fault/fault_plan.hpp"

namespace iba::sim {

/// Everything a resumed run needs: the process snapshot plus, when a
/// fault plan was attached, the plan's dynamic state (the schedule text
/// itself travels in `fault_schedule` so resume can rebuild the plan).
struct Checkpoint {
  core::CappedSnapshot snapshot;
  bool has_fault_state = false;
  std::string fault_schedule;  ///< canonical schedule text (may be "")
  std::uint64_t fault_seed = 0;
  fault::FaultPlan::State fault_state;
};

/// Atomically writes `checkpoint` to `path` (tmp + fsync + rename).
/// Throws std::runtime_error on IO failure; `path` keeps its previous
/// content in that case.
void save_checkpoint(const Checkpoint& checkpoint, const std::string& path);

/// Convenience: snapshot-only checkpoint (no fault plan attached).
void save_checkpoint(const core::CappedSnapshot& snapshot,
                     const std::string& path);

/// Reads and validates a checkpoint. Throws std::runtime_error on IO
/// errors, bad magic, unsupported version, CRC/length mismatch, or any
/// malformed field (the message names it).
[[nodiscard]] Checkpoint load_checkpoint_full(const std::string& path);

/// Convenience: loads just the process snapshot. Throws additionally
/// when the file carries fault-plan state (the caller would silently
/// drop it — use load_checkpoint_full).
[[nodiscard]] core::CappedSnapshot load_checkpoint(const std::string& path);

}  // namespace iba::sim
