// Checkpoint persistence: save/restore a CAPPED process to/from disk so
// very long experiments (the paper's guarantees hold "at any, even
// exponentially large, time") can be split across invocations with a
// bit-identical continuation.
//
// The format is a versioned, line-oriented text file — trivially
// inspectable and diff-able; see checkpoint.cpp for the grammar.
#pragma once

#include <string>

#include "core/capped.hpp"

namespace iba::sim {

/// Writes `snapshot` to `path`. Throws std::runtime_error on IO failure.
void save_checkpoint(const core::CappedSnapshot& snapshot,
                     const std::string& path);

/// Reads a snapshot from `path`. Throws std::runtime_error on IO or
/// format errors (wrong magic, truncation, inconsistent sizes).
[[nodiscard]] core::CappedSnapshot load_checkpoint(const std::string& path);

}  // namespace iba::sim
