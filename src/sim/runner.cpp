#include "sim/runner.hpp"

#include "core/capped.hpp"

namespace iba::sim {

RunResult run_capped(const SimConfig& config) {
  return run_capped(config, RunSpec::from_config(config));
}

RunResult run_capped(const SimConfig& config, const RunSpec& spec) {
  core::Capped process(config.to_capped(), core::Engine(config.seed));
  return run_experiment(process, spec);
}

RunResult run_capped(const SimConfig& config, const RunSpec& spec,
                     RunTelemetry telemetry) {
  core::Capped process(config.to_capped(), core::Engine(config.seed));
  return run_experiment(process, spec, telemetry);
}

}  // namespace iba::sim
