#include "sim/runner.hpp"

#include "core/capped.hpp"
#include "telemetry/log.hpp"

namespace iba::sim {

RunResult run_capped(const SimConfig& config) {
  return run_capped(config, RunSpec::from_config(config));
}

RunResult run_capped(const SimConfig& config, const RunSpec& spec) {
  return run_capped(config, spec, RunTelemetry{});
}

RunResult run_capped(const SimConfig& config, const RunSpec& spec,
                     RunTelemetry telemetry) {
  telemetry::log_debug("run_start", {{"n", config.n},
                                     {"capacity", config.capacity},
                                     {"lambda_n", config.lambda_n},
                                     {"seed", config.seed},
                                     {"measure_rounds", spec.measure_rounds},
                                     {"kernel", core::to_string(config.kernel)},
                                     {"shards", config.shards}});
  core::Capped process(config.to_capped(), core::Engine(config.seed));
  const RunResult result = run_experiment(process, spec, telemetry);
  telemetry::log_debug("run_done",
                       {{"n", config.n},
                        {"capacity", config.capacity},
                        {"burn_in_used", result.burn_in_used},
                        {"wait_mean", result.wait_mean},
                        {"wait_max", result.wait_max},
                        {"pool_mean", result.normalized_pool.mean()}});
  return result;
}

}  // namespace iba::sim
