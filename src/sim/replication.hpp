// Replication: runs R independent copies of an experiment with derived
// seeds (optionally across a thread pool) and aggregates the headline
// metrics with bootstrap confidence intervals. Replica r always receives
// derive_seed(master, r), so results are independent of thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "concurrency/thread_pool.hpp"
#include "rng/seed.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/runner.hpp"
#include "stats/bootstrap.hpp"
#include "telemetry/log.hpp"

namespace iba::sim {

/// Aggregate over replicas of one experiment cell.
struct ReplicationResult {
  std::vector<RunResult> runs;
  stats::ConfidenceInterval normalized_pool;
  stats::ConfidenceInterval wait_mean;
  stats::ConfidenceInterval wait_max;
};

namespace detail {

[[nodiscard]] inline ReplicationResult aggregate(std::vector<RunResult> runs,
                                                 std::uint64_t master_seed) {
  std::vector<double> pools, wait_means, wait_maxes;
  pools.reserve(runs.size());
  for (const RunResult& run : runs) {
    pools.push_back(run.normalized_pool.mean());
    wait_means.push_back(run.wait_mean);
    wait_maxes.push_back(static_cast<double>(run.wait_max));
  }
  rng::Xoshiro256pp ci_engine(rng::derive_seed(master_seed, 0xC1));
  ReplicationResult result;
  result.normalized_pool = stats::bootstrap_mean_ci(ci_engine, pools);
  result.wait_mean = stats::bootstrap_mean_ci(ci_engine, wait_means);
  result.wait_max = stats::bootstrap_mean_ci(ci_engine, wait_maxes);
  result.runs = std::move(runs);
  telemetry::log_debug("replicate_done",
                       {{"replications", result.runs.size()},
                        {"master_seed", master_seed},
                        {"wait_mean", result.wait_mean.point},
                        {"pool_mean", result.normalized_pool.point}});
  return result;
}

}  // namespace detail

/// Runs `fn(seed_r)` for r in [0, replications) sequentially.
/// `fn` must be a pure function of its seed.
template <typename RunFn>
[[nodiscard]] ReplicationResult replicate(RunFn&& fn,
                                          std::size_t replications,
                                          std::uint64_t master_seed) {
  IBA_EXPECT(replications > 0, "replicate: needs at least one replication");
  std::vector<RunResult> runs(replications);
  for (std::size_t r = 0; r < replications; ++r) {
    runs[r] = fn(rng::derive_seed(master_seed, r));
  }
  return detail::aggregate(std::move(runs), master_seed);
}

/// Parallel variant over a thread pool; bitwise-identical results to the
/// sequential version for the same master seed.
template <typename RunFn>
[[nodiscard]] ReplicationResult replicate_parallel(
    RunFn&& fn, std::size_t replications, std::uint64_t master_seed,
    concurrency::ThreadPool& pool) {
  IBA_EXPECT(replications > 0, "replicate: needs at least one replication");
  std::vector<RunResult> runs(replications);
  concurrency::parallel_for(pool, replications, [&](std::size_t r) {
    runs[r] = fn(rng::derive_seed(master_seed, r));
  });
  return detail::aggregate(std::move(runs), master_seed);
}

/// Telemetry-aware replication: `fn(seed, RunTelemetry)` records each
/// replica into a private registry; after all replicas finish, the
/// registries fold into `merged` in replica order — so the merged export
/// is byte-identical for a given master seed no matter how the replicas
/// were scheduled.
template <typename RunFn>
[[nodiscard]] ReplicationResult replicate(RunFn&& fn,
                                          std::size_t replications,
                                          std::uint64_t master_seed,
                                          telemetry::Registry& merged) {
  IBA_EXPECT(replications > 0, "replicate: needs at least one replication");
  std::vector<RunResult> runs(replications);
  std::vector<telemetry::Registry> registries(replications);
  for (std::size_t r = 0; r < replications; ++r) {
    runs[r] = fn(rng::derive_seed(master_seed, r),
                 RunTelemetry{&registries[r], nullptr, nullptr});
  }
  for (const telemetry::Registry& registry : registries) {
    merged.merge(registry);
  }
  return detail::aggregate(std::move(runs), master_seed);
}

/// Parallel telemetry-aware variant. Replicas write disjoint registries
/// concurrently; the deterministic in-order merge happens after the pool
/// drains, so the result is identical to the sequential overload.
template <typename RunFn>
[[nodiscard]] ReplicationResult replicate_parallel(
    RunFn&& fn, std::size_t replications, std::uint64_t master_seed,
    concurrency::ThreadPool& pool, telemetry::Registry& merged) {
  IBA_EXPECT(replications > 0, "replicate: needs at least one replication");
  std::vector<RunResult> runs(replications);
  std::vector<telemetry::Registry> registries(replications);
  concurrency::parallel_for(pool, replications, [&](std::size_t r) {
    runs[r] = fn(rng::derive_seed(master_seed, r),
                 RunTelemetry{&registries[r], nullptr, nullptr});
  });
  for (const telemetry::Registry& registry : registries) {
    merged.merge(registry);
  }
  return detail::aggregate(std::move(runs), master_seed);
}

}  // namespace iba::sim
