// Structured parameter sweeps: declaratively enumerate experiment cells
// over capacities, λ-exponents and sizes, with labels carried alongside,
// and run them all with one call — the programmatic counterpart of the
// bench binaries' hand-rolled loops.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/runner.hpp"

namespace iba::sim {

/// One enumerated experiment cell: its config plus the sweep coordinates
/// that produced it (series name + x value) for tables/plots.
struct SweepCell {
  SimConfig config;
  std::string series;
  double x = 0.0;
};

/// Outcome of a cell after running.
struct SweepOutcome {
  SweepCell cell;
  RunResult result;
};

/// Builder for cartesian sweeps over a base configuration. Exactly one
/// axis is the x-axis (over_*); additional series split the output into
/// labeled curves, matching the paper's figure structure.
class SweepBuilder {
 public:
  explicit SweepBuilder(SimConfig base) : base_(std::move(base)) {}

  /// x-axis: capacity c over [lo, hi].
  SweepBuilder& over_capacity(std::uint32_t lo, std::uint32_t hi);

  /// x-axis: λ = 1 − 2^(−i) for i in [lo, hi].
  SweepBuilder& over_lambda_exponent(std::uint32_t lo, std::uint32_t hi);

  /// x-axis: n over powers of two [2^lo, 2^hi].
  SweepBuilder& over_log2_n(std::uint32_t lo, std::uint32_t hi);

  /// Series split: one labeled curve per capacity value.
  SweepBuilder& series_capacities(std::vector<std::uint32_t> capacities);

  /// Series split: one labeled curve per λ-exponent.
  SweepBuilder& series_lambda_exponents(std::vector<std::uint32_t> exponents);

  /// Enumerates all cells (series × x-axis). Cells whose λn would be
  /// non-integral for their n are skipped.
  [[nodiscard]] std::vector<SweepCell> build() const;

 private:
  enum class Axis : std::uint8_t { kNone, kCapacity, kLambdaExp, kLog2N };
  enum class Series : std::uint8_t { kNone, kCapacity, kLambdaExp };

  SimConfig base_;
  Axis axis_ = Axis::kNone;
  std::uint32_t axis_lo_ = 0;
  std::uint32_t axis_hi_ = 0;
  Series series_kind_ = Series::kNone;
  std::vector<std::uint32_t> series_values_;
};

/// Runs every cell with run_capped, invoking `on_cell` (if set) after
/// each — e.g. for progress logging. When `telemetry` hooks are given,
/// every cell records into them (one registry accumulating the sweep).
[[nodiscard]] std::vector<SweepOutcome> run_sweep(
    const std::vector<SweepCell>& cells,
    const std::function<void(const SweepOutcome&)>& on_cell = nullptr,
    RunTelemetry telemetry = {});

}  // namespace iba::sim
