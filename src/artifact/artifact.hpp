// Versioned result artifacts — the golden-comparable record of one
// scenario run (docs/SCENARIOS.md).
//
// An artifact is a canonically-serialized text file: fixed field order,
// integers only (exact wait moments, dyadic histogram counts — never a
// rounded double), a format-version header and a CRC-32 trailer binding
// the body. Two runs of the same scenario + seed produce byte-identical
// artifacts regardless of round kernel, shard/thread count, telemetry
// build preset, or a kill-and-resume in the middle — which is what lets
// CI diff a fresh run against a committed golden with `cmp`.
//
// Everything in the artifact is derived from the simulation's own
// integer state (process counters, snapshot wait state, fault/control
// counters); nothing is read from the telemetry registry, so
// -DIBA_TELEMETRY=OFF builds emit the same bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace iba::artifact {

/// Artifact format version; bump when canonical_text() changes shape.
inline constexpr std::uint32_t kFormatVersion = 1;

/// One evaluated [expect] bound. `bound` and `observed` are canonical
/// strings (integers or exact rationals like "1234/4096") so the
/// pass/fail evidence itself is platform-deterministic.
struct ExpectationCheck {
  std::string name;
  std::string bound;
  std::string observed;
  bool pass = true;
};

/// The complete result of one scenario run. All accumulators are exact
/// unsigned integers; "measured" fields cover the post-burn-in window.
struct ResultArtifact {
  // -- identity ---------------------------------------------------------
  std::string scenario_name;
  std::string scenario_digest;  ///< Scenario::digest() (8 hex chars)
  std::uint64_t seed = 0;
  std::uint32_t n = 0;
  std::uint32_t capacity_initial = 0;
  std::uint64_t burn_in = 0;
  std::uint64_t rounds = 0;  ///< measured rounds

  // -- lifetime counters (burn-in + measured window) --------------------
  std::uint64_t generated_total = 0;
  std::uint64_t deleted_total = 0;
  std::uint64_t shed_total = 0;
  std::uint64_t deferred_end = 0;  ///< balls still deferred at end

  // -- measured-window per-round accumulators ---------------------------
  std::uint64_t pool_sum = 0;   ///< Σ end-of-round pool sizes
  std::uint64_t pool_min = 0;
  std::uint64_t pool_max = 0;
  std::uint64_t pool_last = 0;
  std::uint64_t load_sum = 0;   ///< Σ end-of-round total loads
  std::uint64_t max_load_peak = 0;
  std::uint64_t empty_bins_last = 0;
  std::uint64_t requeued_sum = 0;
  std::uint64_t faulted_bin_rounds = 0;  ///< Σ per-round faulted bins
  std::uint64_t shed_measured = 0;
  std::uint64_t oldest_age_max = 0;  ///< starvation depth peak

  // -- waiting times over the measured window (exact) -------------------
  std::uint64_t wait_count = 0;
  std::uint64_t wait_sum = 0;
  std::uint64_t wait_sumsq_hi = 0;
  std::uint64_t wait_sumsq_lo = 0;
  std::uint64_t wait_max = 0;
  std::uint64_t wait_p50 = 0;  ///< dyadic upper bound on the median
  std::uint64_t wait_p99 = 0;  ///< dyadic upper bound on the 99th pct
  std::vector<std::uint64_t> wait_histogram;  ///< Log2Histogram counts

  // -- fault injection (present iff the scenario had a schedule) --------
  bool has_faults = false;
  std::uint64_t crashes = 0;
  std::uint64_t repairs = 0;
  std::uint64_t straggler_skips = 0;

  // -- adaptive control (present iff a policy was enabled) --------------
  bool has_control = false;
  std::uint32_t capacity_final = 0;
  std::uint64_t control_changes = 0;
  std::uint64_t control_grows = 0;
  std::uint64_t control_shrinks = 0;

  // -- invariant audit (present iff [expect] audit = on) ----------------
  bool audited = false;
  std::uint64_t audit_rounds = 0;
  std::uint64_t audit_violations = 0;

  // -- evaluated [expect] bounds ----------------------------------------
  std::vector<ExpectationCheck> checks;

  [[nodiscard]] bool all_checks_pass() const noexcept {
    for (const ExpectationCheck& check : checks) {
      if (!check.pass) return false;
    }
    return true;
  }
};

/// The full canonical file content: `iba-artifact <version>` header,
/// fixed-order body, and a trailing `crc32 = <8 hex>` line over
/// everything before it. This is the exact byte sequence written to
/// disk and compared against goldens.
[[nodiscard]] std::string render_artifact(const ResultArtifact& artifact);

/// Atomically writes render_artifact() to `path` (tmp + fsync + rename,
/// same discipline as checkpoints). Throws std::runtime_error on IO
/// failure, leaving any previous file intact.
void write_artifact(const ResultArtifact& artifact, const std::string& path);

/// Validates artifact text: header line, version, and the CRC trailer
/// against the body. Throws std::runtime_error naming what is wrong
/// (corruption, truncation, version skew).
void verify_artifact_text(const std::string& text);

/// Reads `path` and verifies it, returning the raw text (for golden
/// comparison). Throws std::runtime_error on IO or validation failure.
[[nodiscard]] std::string read_artifact_text(const std::string& path);

}  // namespace iba::artifact
