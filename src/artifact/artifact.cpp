#include "artifact/artifact.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/crc32.hpp"

namespace iba::artifact {

namespace {

constexpr std::string_view kMagic = "iba-artifact";

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("artifact: " + message);
}

std::string hex32(std::uint32_t value) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 0; i < 8; ++i) {
    out[i] = kHex[(value >> (28 - 4 * i)) & 0xFu];
  }
  return out;
}

}  // namespace

std::string render_artifact(const ResultArtifact& artifact) {
  std::ostringstream out;
  out << kMagic << ' ' << kFormatVersion << '\n';
  out << "scenario = " << artifact.scenario_name << '\n';
  out << "digest = " << artifact.scenario_digest << '\n';
  out << "seed = " << artifact.seed << '\n';
  out << "n = " << artifact.n << '\n';
  out << "c = " << artifact.capacity_initial << '\n';
  out << "burn-in = " << artifact.burn_in << '\n';
  out << "rounds = " << artifact.rounds << '\n';

  out << "[counters]\n";
  out << "generated = " << artifact.generated_total << '\n';
  out << "deleted = " << artifact.deleted_total << '\n';
  out << "shed = " << artifact.shed_total << '\n';
  out << "deferred-end = " << artifact.deferred_end << '\n';

  out << "[measured]\n";
  out << "pool-sum = " << artifact.pool_sum << '\n';
  out << "pool-min = " << artifact.pool_min << '\n';
  out << "pool-max = " << artifact.pool_max << '\n';
  out << "pool-last = " << artifact.pool_last << '\n';
  out << "load-sum = " << artifact.load_sum << '\n';
  out << "max-load-peak = " << artifact.max_load_peak << '\n';
  out << "empty-bins-last = " << artifact.empty_bins_last << '\n';
  out << "requeued-sum = " << artifact.requeued_sum << '\n';
  out << "faulted-bin-rounds = " << artifact.faulted_bin_rounds << '\n';
  out << "shed-measured = " << artifact.shed_measured << '\n';
  out << "oldest-age-max = " << artifact.oldest_age_max << '\n';

  out << "[waits]\n";
  out << "count = " << artifact.wait_count << '\n';
  out << "sum = " << artifact.wait_sum << '\n';
  out << "sumsq-hi = " << artifact.wait_sumsq_hi << '\n';
  out << "sumsq-lo = " << artifact.wait_sumsq_lo << '\n';
  out << "max = " << artifact.wait_max << '\n';
  out << "p50-upper = " << artifact.wait_p50 << '\n';
  out << "p99-upper = " << artifact.wait_p99 << '\n';
  out << "histogram =";
  for (const std::uint64_t count : artifact.wait_histogram) {
    out << ' ' << count;
  }
  out << '\n';

  if (artifact.has_faults) {
    out << "[faults]\n";
    out << "crashes = " << artifact.crashes << '\n';
    out << "repairs = " << artifact.repairs << '\n';
    out << "straggler-skips = " << artifact.straggler_skips << '\n';
  }

  if (artifact.has_control) {
    out << "[control]\n";
    out << "capacity-final = " << artifact.capacity_final << '\n';
    out << "changes = " << artifact.control_changes << '\n';
    out << "grows = " << artifact.control_grows << '\n';
    out << "shrinks = " << artifact.control_shrinks << '\n';
  }

  if (artifact.audited) {
    out << "[audit]\n";
    out << "rounds = " << artifact.audit_rounds << '\n';
    out << "violations = " << artifact.audit_violations << '\n';
  }

  if (!artifact.checks.empty()) {
    out << "[expectations]\n";
    for (const ExpectationCheck& check : artifact.checks) {
      out << check.name << " = bound " << check.bound << " observed "
          << check.observed << ' ' << (check.pass ? "pass" : "FAIL") << '\n';
    }
  }

  out << "end\n";
  std::string body = out.str();
  body += "crc32 = " + hex32(common::crc32(body)) + '\n';
  return body;
}

void write_artifact(const ResultArtifact& artifact, const std::string& path) {
  const std::string text = render_artifact(artifact);
  const std::string tmp = path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) fail("cannot open for writing: " + tmp);
  bool ok = std::fwrite(text.data(), 1, text.size(), out) == text.size() &&
            std::fflush(out) == 0 && ::fsync(::fileno(out)) == 0;
  ok = (std::fclose(out) == 0) && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    fail("write error: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail("cannot rename " + tmp + " -> " + path);
  }
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dirfd = ::open(dir.c_str(), O_RDONLY);
  if (dirfd >= 0) {
    ::fsync(dirfd);
    ::close(dirfd);
  }
}

void verify_artifact_text(const std::string& text) {
  const std::size_t first_eol = text.find('\n');
  if (first_eol == std::string::npos) fail("truncated: no header line");
  const std::string header = text.substr(0, first_eol);
  std::istringstream parse(header);
  std::string magic;
  std::uint32_t version = 0;
  if (!(parse >> magic >> version) || magic != kMagic) {
    fail("bad header '" + header + "'");
  }
  if (version != kFormatVersion) {
    fail("unsupported version " + std::to_string(version) + " (expected " +
         std::to_string(kFormatVersion) + ")");
  }
  // The trailer is the final line: `crc32 = <8 hex>\n` over all bytes
  // before it.
  constexpr std::string_view kTrailerPrefix = "crc32 = ";
  constexpr std::size_t kTrailerLen = 8 + 8 + 1;  // prefix + hex + \n
  if (text.size() < kTrailerLen || text.back() != '\n') {
    fail("truncated: missing crc trailer");
  }
  const std::size_t trailer_at = text.size() - kTrailerLen;
  if (text.compare(trailer_at, kTrailerPrefix.size(), kTrailerPrefix) != 0 ||
      (trailer_at != 0 && text[trailer_at - 1] != '\n')) {
    fail("malformed crc trailer");
  }
  const std::string stated =
      text.substr(trailer_at + kTrailerPrefix.size(), 8);
  const std::string actual = hex32(
      common::crc32(std::string_view(text).substr(0, trailer_at)));
  if (stated != actual) {
    fail("crc mismatch: stated " + stated + ", computed " + actual);
  }
}

std::string read_artifact_text(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  verify_artifact_text(text);
  return text;
}

}  // namespace iba::artifact
