// Registry exporters: Prometheus text exposition and JSON-lines
// snapshots, both built on the io layer and both deterministic — metrics
// are emitted in name order with fixed number formatting, so identical
// registries produce identical bytes.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "telemetry/phase_timers.hpp"
#include "telemetry/registry.hpp"

namespace iba::telemetry {

/// Prometheus text exposition (one `# TYPE` header per metric; dyadic
/// histograms become cumulative `_bucket{le=...}` series plus `_sum` and
/// `_count`). Metric names are prefixed with "iba_" and sanitized to the
/// Prometheus charset.
void write_prometheus(const Registry& registry, std::ostream& out);

/// One JSON object on a single line: {"counters":{...},"gauges":{...},
/// "histograms":{...}} followed by '\n'. Appending one line per call
/// yields a JSON-lines stream of snapshots.
void write_json_line(const Registry& registry, std::ostream& out);

/// Writes one snapshot to `path`, choosing the format by extension:
/// .json/.jsonl → JSON lines, anything else (.prom, .txt) → Prometheus
/// text. Returns false when the file cannot be opened.
bool write_snapshot_file(const Registry& registry, const std::string& path);

/// Folds phase-timer totals into `registry` as counters
/// (phase_<name>_ns_total / _balls_total / _calls_total), so exporters
/// carry the per-phase timing alongside the simulation metrics. Note the
/// ns counters are wall-clock: merging them stays deterministic, but
/// re-running a workload will not reproduce them byte-for-byte.
void record_phase_timers(Registry& registry, const PhaseTimers& timers);

/// Replaces every character outside [a-zA-Z0-9_:] with '_' (and prefixes
/// '_' when the name starts with a digit).
[[nodiscard]] std::string sanitize_metric_name(std::string_view name);

/// Per-phase profile text for the scrape server's GET /profile: one line
/// per phase with accumulated ns, balls, calls and ns-per-ball (%.10g).
/// Wall-clock derived — diffable across scrapes, not across machines.
[[nodiscard]] std::string render_profile_text(const PhaseTimers& timers);

}  // namespace iba::telemetry
