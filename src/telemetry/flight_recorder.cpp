#include "telemetry/flight_recorder.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/crc32.hpp"

namespace iba::telemetry {

namespace {

constexpr std::string_view kMagic = "iba-postmortem";
constexpr std::uint32_t kBundleVersion = 1;

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("postmortem: " + message);
}

std::string hex32(std::uint32_t value) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 0; i < 8; ++i) {
    out[i] = kHex[(value >> (28 - 4 * i)) & 0xFu];
  }
  return out;
}

std::string decision_line(const RecordedDecision& d) {
  std::ostringstream out;
  out << "round " << d.round << " capacity " << d.old_capacity << " -> "
      << d.new_capacity << " pool-limit " << d.old_pool_limit << " -> "
      << d.new_pool_limit << " lambda-micro " << d.lambda_hat_micro;
  return out.str();
}

std::string event_line(const RecordedEvent& e) {
  std::ostringstream out;
  out << "round " << e.round << ' ' << e.kind << ' ' << e.detail;
  return out.str();
}

/// Strips newlines so a hostile detail cannot forge bundle structure.
std::string one_line(std::string text) {
  for (char& c : text) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return text;
}

}  // namespace

const char* trigger_name(TriggerKind kind) noexcept {
  constexpr const char* kNames[kTriggerKindCount] = {
      "auditor-violation", "expectation-failure", "shed-spike",
      "resume-mismatch", "manual"};
  return kNames[static_cast<std::size_t>(kind)];
}

bool trigger_from_name(const std::string& name, TriggerKind& kind) noexcept {
  for (std::size_t i = 0; i < kTriggerKindCount; ++i) {
    if (name == trigger_name(static_cast<TriggerKind>(i))) {
      kind = static_cast<TriggerKind>(i);
      return true;
    }
  }
  return false;
}

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(config) {
  if (config_.window == 0) fail("window must be at least 1");
}

void FlightRecorder::set_context(std::string scenario_name,
                                 std::string digest, std::uint64_t seed,
                                 std::uint64_t n) {
  scenario_name_ = one_line(std::move(scenario_name));
  digest_ = one_line(std::move(digest));
  seed_ = seed;
  n_ = n;
}

void FlightRecorder::note_decision(const RecordedDecision& decision) {
#if IBA_TELEMETRY_ENABLED
  decisions_.push_back(decision);
  while (decisions_.size() > config_.max_decisions) decisions_.pop_front();
#else
  (void)decision;
#endif
}

void FlightRecorder::note_event(std::uint64_t round, std::string kind,
                                std::string detail) {
#if IBA_TELEMETRY_ENABLED
  events_.push_back(
      {round, one_line(std::move(kind)), one_line(std::move(detail))});
  while (events_.size() > config_.max_events) events_.pop_front();
#else
  (void)round;
  (void)kind;
  (void)detail;
#endif
}

bool FlightRecorder::trigger(TriggerKind kind, std::uint64_t round,
                             const std::string& detail) {
#if IBA_TELEMETRY_ENABLED
  note_event(round, std::string("trigger:") + trigger_name(kind), detail);
  if (triggered_) return false;
  triggered_ = true;
  kind_ = kind;
  trigger_round_ = round;
  trigger_detail_ = one_line(detail);
  return true;
#else
  (void)kind;
  (void)round;
  (void)detail;
  return false;
#endif
}

std::string FlightRecorder::render_bundle() const {
  if (!triggered_) fail("render_bundle requires a latched trigger");
  std::ostringstream out;
  out << kMagic << ' ' << kBundleVersion << '\n';
  out << "trigger = " << trigger_name(kind_) << '\n';
  out << "round = " << trigger_round_ << '\n';
  out << "detail = " << trigger_detail_ << '\n';
  out << "scenario = " << scenario_name_ << '\n';
  out << "digest = " << digest_ << '\n';
  out << "seed = " << seed_ << '\n';
  out << "n = " << n_ << '\n';
  out << "engine = " << engine_fingerprint_ << '\n';

  out << "[decisions]\n";
  out << "count = " << decisions_.size() << '\n';
  for (const RecordedDecision& d : decisions_) {
    out << "decision = " << decision_line(d) << '\n';
  }

  out << "[events]\n";
  out << "count = " << events_.size() << '\n';
  for (const RecordedEvent& e : events_) {
    out << "event = " << event_line(e) << '\n';
  }

  out << "[timeseries]\n";
  if (series_ != nullptr) {
    out << series_->render_window(config_.window);
  } else {
    out << "cadence = 0\nsamples = 0\n";
  }

  out << "end\n";
  std::string body = out.str();
  body += "crc32 = " + hex32(common::crc32(body)) + '\n';
  return body;
}

void FlightRecorder::write_bundle(const std::string& path) const {
  const std::string text = render_bundle();
  const std::string tmp = path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) fail("cannot open for writing: " + tmp);
  bool ok = std::fwrite(text.data(), 1, text.size(), out) == text.size() &&
            std::fflush(out) == 0 && ::fsync(::fileno(out)) == 0;
  ok = (std::fclose(out) == 0) && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    fail("write error: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail("cannot rename " + tmp + " -> " + path);
  }
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dirfd = ::open(dir.c_str(), O_RDONLY);
  if (dirfd >= 0) {
    ::fsync(dirfd);
    ::close(dirfd);
  }
}

std::string FlightRecorder::state_text() const {
  std::ostringstream out;
  out << "scenario = " << scenario_name_ << '\n';
  out << "digest = " << digest_ << '\n';
  out << "seed = " << seed_ << '\n';
  out << "n = " << n_ << '\n';
  out << "triggered = " << (triggered_ ? 1 : 0) << '\n';
  out << "trigger-kind = " << trigger_name(kind_) << '\n';
  out << "trigger-round = " << trigger_round_ << '\n';
  out << "trigger-detail = " << trigger_detail_ << '\n';
  for (const RecordedDecision& d : decisions_) {
    out << "decision = " << d.round << ' ' << d.old_capacity << ' '
        << d.new_capacity << ' ' << d.old_pool_limit << ' '
        << d.new_pool_limit << ' ' << d.lambda_hat_micro << '\n';
  }
  for (const RecordedEvent& e : events_) {
    // kind is token-shaped (no spaces); detail takes the rest of line.
    out << "event = " << e.round << ' ' << e.kind << ' ' << e.detail << '\n';
  }
  return out.str();
}

void FlightRecorder::restore_state(const std::string& text) {
  decisions_.clear();
  events_.clear();
  triggered_ = false;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto eq = line.find(" = ");
    if (eq == std::string::npos) fail("malformed state line: " + line);
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 3);
    if (key == "scenario") {
      scenario_name_ = value;
    } else if (key == "digest") {
      digest_ = value;
    } else if (key == "seed") {
      seed_ = std::stoull(value);
    } else if (key == "n") {
      n_ = std::stoull(value);
    } else if (key == "triggered") {
      triggered_ = value == "1";
    } else if (key == "trigger-kind") {
      if (!trigger_from_name(value, kind_)) {
        fail("unknown trigger kind '" + value + "'");
      }
    } else if (key == "trigger-round") {
      trigger_round_ = std::stoull(value);
    } else if (key == "trigger-detail") {
      trigger_detail_ = value;
    } else if (key == "decision") {
      RecordedDecision d;
      std::istringstream parse(value);
      if (!(parse >> d.round >> d.old_capacity >> d.new_capacity >>
            d.old_pool_limit >> d.new_pool_limit >> d.lambda_hat_micro)) {
        fail("malformed decision state: " + value);
      }
      decisions_.push_back(d);
    } else if (key == "event") {
      RecordedEvent e;
      std::istringstream parse(value);
      if (!(parse >> e.round >> e.kind)) {
        fail("malformed event state: " + value);
      }
      std::getline(parse, e.detail);
      if (!e.detail.empty() && e.detail.front() == ' ') e.detail.erase(0, 1);
      events_.push_back(e);
    } else {
      fail("unknown state key '" + key + "'");
    }
  }
  while (decisions_.size() > config_.max_decisions) decisions_.pop_front();
  while (events_.size() > config_.max_events) events_.pop_front();
}

void verify_bundle_text(const std::string& text) {
  const std::size_t first_eol = text.find('\n');
  if (first_eol == std::string::npos) fail("truncated: no header line");
  const std::string header = text.substr(0, first_eol);
  std::istringstream parse(header);
  std::string magic;
  std::uint32_t version = 0;
  if (!(parse >> magic >> version) || magic != kMagic) {
    fail("bad header '" + header + "'");
  }
  if (version != kBundleVersion) {
    fail("unsupported version " + std::to_string(version) + " (expected " +
         std::to_string(kBundleVersion) + ")");
  }
  constexpr std::string_view kTrailerPrefix = "crc32 = ";
  constexpr std::size_t kTrailerLen = 8 + 8 + 1;
  if (text.size() < kTrailerLen || text.back() != '\n') {
    fail("truncated: missing crc trailer");
  }
  const std::size_t trailer_at = text.size() - kTrailerLen;
  if (text.compare(trailer_at, kTrailerPrefix.size(), kTrailerPrefix) != 0 ||
      (trailer_at != 0 && text[trailer_at - 1] != '\n')) {
    fail("malformed crc trailer");
  }
  const std::string stated = text.substr(trailer_at + kTrailerPrefix.size(), 8);
  const std::string actual =
      hex32(common::crc32(std::string_view(text).substr(0, trailer_at)));
  if (stated != actual) {
    fail("crc mismatch: stated " + stated + ", computed " + actual);
  }
}

PostmortemBundle read_bundle_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  PostmortemBundle bundle;
  bundle.text = buffer.str();
  verify_bundle_text(bundle.text);

  std::istringstream lines(bundle.text);
  std::string line;
  std::getline(lines, line);  // verified header
  {
    std::istringstream parse(line);
    std::string magic;
    parse >> magic >> bundle.version;
  }
  enum class Section { kHeader, kDecisions, kEvents, kTimeseries, kDone };
  Section section = Section::kHeader;
  while (std::getline(lines, line)) {
    if (line == "end") {
      section = Section::kDone;
      continue;
    }
    if (line == "[decisions]") {
      section = Section::kDecisions;
      continue;
    }
    if (line == "[events]") {
      section = Section::kEvents;
      continue;
    }
    if (line == "[timeseries]") {
      section = Section::kTimeseries;
      continue;
    }
    if (section == Section::kDone) continue;  // crc trailer
    const auto eq = line.find(" = ");
    if (eq == std::string::npos) fail("malformed bundle line: " + line);
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 3);
    switch (section) {
      case Section::kHeader:
        if (key == "trigger") bundle.trigger = value;
        else if (key == "round") bundle.round = std::stoull(value);
        else if (key == "detail") bundle.detail = value;
        else if (key == "scenario") bundle.scenario = value;
        else if (key == "digest") bundle.digest = value;
        else if (key == "seed") bundle.seed = std::stoull(value);
        else if (key == "n") bundle.n = std::stoull(value);
        else if (key == "engine") bundle.engine = value;
        else fail("unknown bundle key '" + key + "'");
        break;
      case Section::kDecisions:
        if (key == "decision") bundle.decisions.push_back(value);
        break;
      case Section::kEvents:
        if (key == "event") bundle.events.push_back(value);
        break;
      case Section::kTimeseries:
        if (key == "cadence") {
          bundle.cadence = std::stoull(value);
        } else if (key == "samples") {
          bundle.samples = std::stoull(value);
        } else if (key.rfind("col ", 0) == 0) {
          // Resolve the delta coding back into values.
          std::vector<std::uint64_t> values;
          std::istringstream parse(value);
          std::string token;
          while (parse >> token) {
            if (values.empty()) {
              values.push_back(std::stoull(token));
            } else {
              const auto delta =
                  static_cast<std::uint64_t>(std::stoll(token));
              values.push_back(values.back() + delta);
            }
          }
          bundle.series.emplace_back(key.substr(4), std::move(values));
        } else {
          fail("unknown timeseries key '" + key + "'");
        }
        break;
      case Section::kDone:
        break;
    }
  }
  return bundle;
}

}  // namespace iba::telemetry
