#include "telemetry/export.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string>

#include "io/json.hpp"

namespace iba::telemetry {

namespace {

constexpr std::string_view kPrefix = "iba_";

/// Fixed double formatting shared with io::JsonWriter ("%.10g"), so both
/// exporters agree and output is reproducible.
std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

void prometheus_histogram(std::ostream& out, const std::string& name,
                          const DyadicHistogram& histogram) {
  out << "# TYPE " << name << " histogram\n";
  const stats::Log2Histogram& buckets = histogram.buckets();
  std::uint64_t cumulative = 0;
  for (std::size_t bin = 0; bin < buckets.bin_count(); ++bin) {
    cumulative += buckets.count(bin);
    // Integer values in bin k are <= bin_hi(k)*2^shift - 1.
    out << name << "_bucket{le=\""
        << ((stats::Log2Histogram::bin_hi(bin) << histogram.shift()) - 1)
        << "\"} " << cumulative << '\n';
  }
  out << name << "_bucket{le=\"+Inf\"} " << histogram.count() << '\n';
  out << name << "_sum " << format_double(histogram.sum()) << '\n';
  out << name << "_count " << histogram.count() << '\n';
}

}  // namespace

std::string sanitize_metric_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && std::isdigit(static_cast<unsigned char>(name[0]))) {
    out += '_';
  }
  for (const char ch : name) {
    const auto uch = static_cast<unsigned char>(ch);
    out += (std::isalnum(uch) || ch == '_' || ch == ':') ? ch : '_';
  }
  return out;
}

void write_prometheus(const Registry& registry, std::ostream& out) {
  for (const auto& [name, counter] : registry.counters()) {
    const std::string full = std::string(kPrefix) + sanitize_metric_name(name);
    out << "# TYPE " << full << " counter\n"
        << full << ' ' << counter.value() << '\n';
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    const std::string full = std::string(kPrefix) + sanitize_metric_name(name);
    out << "# TYPE " << full << " gauge\n"
        << full << ' ' << format_double(gauge.value()) << '\n';
  }
  for (const auto& [name, histogram] : registry.histograms()) {
    prometheus_histogram(
        out, std::string(kPrefix) + sanitize_metric_name(name), histogram);
  }
}

void write_json_line(const Registry& registry, std::ostream& out) {
  io::JsonWriter json(out);
  json.begin_object();
  json.key("counters").begin_object();
  for (const auto& [name, counter] : registry.counters()) {
    json.key(name).value(counter.value());
  }
  json.end_object();
  json.key("gauges").begin_object();
  for (const auto& [name, gauge] : registry.gauges()) {
    json.key(name)
        .begin_object()
        .key("value")
        .value(gauge.value())
        .key("max")
        .value(gauge.max())
        .end_object();
  }
  json.end_object();
  json.key("histograms").begin_object();
  for (const auto& [name, histogram] : registry.histograms()) {
    json.key(name).begin_object();
    json.key("count").value(histogram.count());
    json.key("sum").value(histogram.sum());
    json.key("max").value(histogram.max());
    json.key("buckets").begin_array();
    const stats::Log2Histogram& buckets = histogram.buckets();
    for (std::size_t bin = 0; bin < buckets.bin_count(); ++bin) {
      if (buckets.count(bin) == 0) continue;
      json.begin_object()
          .key("le")
          .value((stats::Log2Histogram::bin_hi(bin) << histogram.shift()) - 1)
          .key("count")
          .value(buckets.count(bin))
          .end_object();
    }
    json.end_array().end_object();
  }
  json.end_object();
  json.end_object();
  out << '\n';
}

bool write_snapshot_file(const Registry& registry, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  const auto dot = path.rfind('.');
  const std::string ext = dot == std::string::npos ? "" : path.substr(dot);
  if (ext == ".json" || ext == ".jsonl") {
    write_json_line(registry, out);
  } else {
    write_prometheus(registry, out);
  }
  return static_cast<bool>(out);
}

void record_phase_timers(Registry& registry, const PhaseTimers& timers) {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const auto phase = static_cast<Phase>(i);
    if (timers.calls(phase) == 0) continue;
    const std::string base = std::string("phase_") + phase_name(phase);
    registry.counter(base + "_ns_total").inc(timers.ns(phase));
    registry.counter(base + "_balls_total").inc(timers.balls(phase));
    registry.counter(base + "_calls_total").inc(timers.calls(phase));
  }
}

std::string render_profile_text(const PhaseTimers& timers) {
  std::ostringstream out;
  out << "iba-profile 1\n";
  char buf[64];
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const auto phase = static_cast<Phase>(i);
    std::snprintf(buf, sizeof(buf), "%.10g", timers.ns_per_ball(phase));
    out << "phase " << phase_name(phase) << " ns = " << timers.ns(phase)
        << " balls = " << timers.balls(phase)
        << " calls = " << timers.calls(phase) << " ns-per-ball = " << buf
        << '\n';
  }
  return out.str();
}

}  // namespace iba::telemetry
