// Bounded per-round time series: the trajectory the aggregates flatten.
//
// A TimeSeries ingests one TimeSeriesSample per simulation round and
// keeps a columnar history in three power-of-two downsampling tiers —
// full cadence (1×), 16×, and 256× — each a fixed-capacity ring, so a
// million-round run records its whole shape in a few hundred KB: the
// recent past at full resolution, the older past progressively coarser.
//
// Determinism contract (the same one the registry keeps): samples carry
// only simulation-deterministic values — counts, loads, dyadic wait
// bounds, fixed-point λ̂ — never wall-clock, and folding is exact
// integer arithmetic. For a fixed (scenario, seed) the retained contents
// and every rendered byte are identical across the scalar / fused /
// sharded kernels and across kill-and-resume (state_text()/
// restore_state() round-trip the full ring + fold state through the
// checkpoint's `.record` sidecar).
//
// Per-column folding when 16 finer samples collapse into one coarser
// sample (and when `cadence` rounds collapse into one tier-0 sample):
//   kLast — gauges (pool depth, capacity, λ̂): the newest value wins;
//   kSum  — flows (generated, deleted, shed, requeued): exact sums, so
//           any tier integrates a flow over its covered rounds exactly
//           (tested: tier sums == full-resolution sums);
//   kMax  — peaks (max load, faulted bins): the window maximum.
//
// Rendered text (render_text / render_window) stores each column as its
// first value followed by signed deltas — long near-constant series
// (capacity, λ̂ in steady state) compress to runs of "+0" — while the
// in-memory rings stay raw u64 for O(1) ingestion. With
// -DIBA_TELEMETRY=OFF observe() compiles to nothing and the renders
// return an empty (header-only) series; the API stays source-compatible.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/telemetry_config.hpp"

namespace iba::telemetry {

/// One round's worth of simulation state, built by the process at the
/// end of step(). Plain integers only: λ̂ rides as a ×10⁶ fixed-point
/// value and the wait quantiles are the dyadic upper bounds, so a
/// sample is a pure function of simulation state.
struct TimeSeriesSample {
  std::uint64_t round = 0;
  std::uint64_t pool_size = 0;
  std::uint64_t total_load = 0;
  std::uint64_t max_load = 0;
  std::uint64_t generated = 0;
  std::uint64_t deleted = 0;
  std::uint64_t shed = 0;
  std::uint64_t deferred = 0;
  std::uint64_t requeued = 0;
  std::uint64_t faulted_bins = 0;
  std::uint64_t capacity = 0;
  std::uint64_t lambda_hat_micro = 0;  ///< λ̂ (EWMA) × 10⁶, 0 w/o control
  std::uint64_t control_changes = 0;   ///< cumulative applied decisions
  std::uint64_t wait_p50 = 0;          ///< dyadic upper bounds over the
  std::uint64_t wait_p95 = 0;          ///< recorder's current window
  std::uint64_t wait_p99 = 0;
};

struct TimeSeriesConfig {
  /// Rounds folded into one tier-0 sample (1 = every round).
  std::uint64_t cadence = 1;
  /// Samples retained per tier (ring capacity).
  std::uint64_t tier_capacity = 512;
};

class TimeSeries {
 public:
  static constexpr bool kEnabled = IBA_TELEMETRY_ENABLED != 0;
  static constexpr int kTiers = 3;
  static constexpr std::uint64_t kFold = 16;  ///< tier t+1 = 16 × tier t
  static constexpr std::size_t kColumns = 16;

  enum class Agg : std::uint8_t { kLast, kSum, kMax };

  /// Column order of a stored sample; parallel to column_aggs().
  [[nodiscard]] static const std::array<const char*, kColumns>&
  column_names() noexcept;
  [[nodiscard]] static const std::array<Agg, kColumns>&
  column_aggs() noexcept;

  explicit TimeSeries(TimeSeriesConfig config = {});

  /// Ingests one completed round. O(kColumns); no allocation after
  /// construction. Compiled to a no-op with -DIBA_TELEMETRY=OFF.
  void observe(const TimeSeriesSample& sample) noexcept;

  [[nodiscard]] const TimeSeriesConfig& config() const noexcept {
    return config_;
  }
  /// Rounds ingested so far.
  [[nodiscard]] std::uint64_t rounds_observed() const noexcept {
    return rounds_;
  }
  /// Samples ever emitted into `tier` (retained = min(this, capacity)).
  [[nodiscard]] std::uint64_t tier_emitted(int tier) const noexcept;
  [[nodiscard]] std::uint64_t tier_retained(int tier) const noexcept;
  /// Rounds covered by one sample of `tier`: cadence · 16^tier.
  [[nodiscard]] std::uint64_t tier_stride(int tier) const noexcept;
  /// Retained values of one column, oldest first.
  [[nodiscard]] std::vector<std::uint64_t> column(int tier,
                                                  std::size_t col) const;

  /// Full rendered series: header + every tier, columns delta-encoded.
  [[nodiscard]] std::string render_text() const;
  /// Only the newest `last_k` tier-0 samples (the flight recorder's
  /// full-resolution postmortem window).
  [[nodiscard]] std::string render_window(std::uint64_t last_k) const;

  /// Complete state (rings + fold accumulators + counters) as key=value
  /// text, for the checkpoint's `.record` sidecar.
  [[nodiscard]] std::string state_text() const;
  /// Restores a state_text() capture. Throws std::runtime_error on
  /// malformed input or a cadence/capacity mismatch.
  void restore_state(const std::string& text);

  void reset() noexcept;

 private:
  void fold_into(int tier, const std::array<std::uint64_t, kColumns>& row)
      noexcept;
  void emit(int tier) noexcept;

  TimeSeriesConfig config_;
  std::uint64_t rounds_ = 0;
  // Ring storage, row-major: data_[t][(i % cap) * kColumns + col] holds
  // column `col` of the i-th sample ever emitted into tier t.
  std::array<std::vector<std::uint64_t>, kTiers> data_;
  std::array<std::uint64_t, kTiers> emitted_{};
  // Fold accumulators: pending_[t] aggregates the next sample of tier t
  // (t = 0 folds `cadence` rounds; t ≥ 1 folds kFold tier-(t−1) samples).
  std::array<std::array<std::uint64_t, kColumns>, kTiers> pending_{};
  std::array<std::uint64_t, kTiers> pending_count_{};
};

}  // namespace iba::telemetry
