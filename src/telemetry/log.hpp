// Leveled structured logging: one event per line, key=value or JSON.
//
// The simulation layers log *events with fields*, not printf prose, so a
// production deployment can ship the stream straight into a log indexer
// while a human still reads it comfortably:
//
//   level=info event=cell_start cell="n=8192 c=2" burn_in=2000 rounds=1000
//   {"level":"info","event":"cell_start","cell":"n=8192 c=2",...}
//
// The global logger reads IBA_LOG_LEVEL (debug|info|warn|error|off) and
// IBA_LOG_FORMAT (kv|json) from the environment once at first use;
// defaults are info + kv to stderr. Unlike the instruments, the logger is
// NOT compiled out under -DIBA_TELEMETRY=OFF: it never sits on the
// per-ball hot path (call sites are per-cell / per-run), and an
// observability-free build still wants its error reporting.
#pragma once

#include <concepts>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string_view>

namespace iba::telemetry {

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo, kWarn, kError, kOff };
enum class LogFormat : std::uint8_t { kKeyValue, kJson };

[[nodiscard]] const char* log_level_name(LogLevel level) noexcept;

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-insensitive).
[[nodiscard]] std::optional<LogLevel> parse_log_level(
    std::string_view text) noexcept;

/// One key plus a typed value. Fields are consumed before the log call
/// returns, so string_views may point at temporaries of the call site.
class LogField {
 public:
  enum class Kind : std::uint8_t { kString, kInt, kUint, kDouble, kBool };

  constexpr LogField(std::string_view key, std::string_view value) noexcept
      : key_(key), kind_(Kind::kString), string_(value) {}
  constexpr LogField(std::string_view key, const char* value) noexcept
      : LogField(key, std::string_view(value)) {}
  constexpr LogField(std::string_view key, bool value) noexcept
      : key_(key), kind_(Kind::kBool), bool_(value) {}
  template <std::signed_integral T>
  constexpr LogField(std::string_view key, T value) noexcept
      : key_(key), kind_(Kind::kInt), int_(value) {}
  template <std::unsigned_integral T>
    requires(!std::same_as<T, bool>)
  constexpr LogField(std::string_view key, T value) noexcept
      : key_(key), kind_(Kind::kUint), uint_(value) {}
  template <std::floating_point T>
  constexpr LogField(std::string_view key, T value) noexcept
      : key_(key), kind_(Kind::kDouble), double_(value) {}

  [[nodiscard]] constexpr std::string_view key() const noexcept {
    return key_;
  }
  [[nodiscard]] constexpr Kind kind() const noexcept { return kind_; }
  [[nodiscard]] constexpr std::string_view string_value() const noexcept {
    return string_;
  }
  [[nodiscard]] constexpr std::int64_t int_value() const noexcept {
    return int_;
  }
  [[nodiscard]] constexpr std::uint64_t uint_value() const noexcept {
    return uint_;
  }
  [[nodiscard]] constexpr double double_value() const noexcept {
    return double_;
  }
  [[nodiscard]] constexpr bool bool_value() const noexcept { return bool_; }

 private:
  std::string_view key_;
  Kind kind_;
  union {
    std::string_view string_;
    std::int64_t int_;
    std::uint64_t uint_;
    double double_;
    bool bool_;
  };
};

/// Thread-safe leveled logger. Each emit builds the full line privately
/// and writes it to the sink under one lock, so concurrent events never
/// interleave mid-line. Formatting is deterministic (fields in call
/// order, "%.10g" doubles) and carries no timestamps, so test output and
/// replayed runs compare bytewise.
class Logger {
 public:
  /// A fresh logger: level/format as given, writing to `sink`.
  explicit Logger(std::ostream* sink, LogLevel level = LogLevel::kInfo,
                  LogFormat format = LogFormat::kKeyValue) noexcept
      : sink_(sink), level_(level), format_(format) {}

  /// The process-wide logger: stderr, configured once from IBA_LOG_LEVEL
  /// and IBA_LOG_FORMAT.
  [[nodiscard]] static Logger& global();

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }
  void set_format(LogFormat format) noexcept { format_ = format; }
  [[nodiscard]] LogFormat format() const noexcept { return format_; }
  void set_sink(std::ostream* sink) noexcept { sink_ = sink; }

  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return sink_ != nullptr && level >= level_ && level_ != LogLevel::kOff;
  }

  void log(LogLevel level, std::string_view event,
           std::initializer_list<LogField> fields = {});

  void debug(std::string_view event,
             std::initializer_list<LogField> fields = {}) {
    log(LogLevel::kDebug, event, fields);
  }
  void info(std::string_view event,
            std::initializer_list<LogField> fields = {}) {
    log(LogLevel::kInfo, event, fields);
  }
  void warn(std::string_view event,
            std::initializer_list<LogField> fields = {}) {
    log(LogLevel::kWarn, event, fields);
  }
  void error(std::string_view event,
             std::initializer_list<LogField> fields = {}) {
    log(LogLevel::kError, event, fields);
  }

 private:
  std::ostream* sink_;
  LogLevel level_;
  LogFormat format_;
  std::mutex mutex_;
};

/// Convenience forwarders to Logger::global().
inline void log_debug(std::string_view event,
                      std::initializer_list<LogField> fields = {}) {
  Logger::global().debug(event, fields);
}
inline void log_info(std::string_view event,
                     std::initializer_list<LogField> fields = {}) {
  Logger::global().info(event, fields);
}
inline void log_warn(std::string_view event,
                     std::initializer_list<LogField> fields = {}) {
  Logger::global().warn(event, fields);
}
inline void log_error(std::string_view event,
                      std::initializer_list<LogField> fields = {}) {
  Logger::global().error(event, fields);
}

}  // namespace iba::telemetry
