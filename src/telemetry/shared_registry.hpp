// Mutex-guarded registry wrapper for cross-thread aggregation: worker
// threads merge their private registries (or record directly inside
// with()), readers take consistent snapshots. Note that concurrent merges
// arrive in scheduling order — callers needing byte-reproducible exports
// across thread counts should instead keep one Registry per worker and
// merge them in a fixed order after joining (see sim::replicate_*).
#pragma once

#include <mutex>
#include <utility>

#include "telemetry/registry.hpp"

namespace iba::telemetry {

class SharedRegistry {
 public:
  /// Thread-safe merge of a privately built registry.
  void merge(const Registry& other) {
    const std::lock_guard lock(mutex_);
    registry_.merge(other);
  }

  /// Runs `fn(Registry&)` under the lock for direct recording.
  template <typename Fn>
  auto with(Fn&& fn) {
    const std::lock_guard lock(mutex_);
    return std::forward<Fn>(fn)(registry_);
  }

  /// Consistent copy for exporting while writers continue.
  [[nodiscard]] Registry snapshot() const {
    const std::lock_guard lock(mutex_);
    return registry_;
  }

 private:
  mutable std::mutex mutex_;
  Registry registry_;
};

}  // namespace iba::telemetry
