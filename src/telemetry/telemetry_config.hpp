// Compile-time switch for the telemetry subsystem.
//
// IBA_TELEMETRY_ENABLED defaults to 1. Configuring with -DIBA_TELEMETRY=OFF
// defines it to 0, which turns every instrument (counters, gauges,
// histograms, phase timers, the round trace) into a no-op with zero state
// and zero branches in hot loops, while keeping the full API compilable so
// call sites never need #ifdefs.
#pragma once

#ifndef IBA_TELEMETRY_ENABLED
#define IBA_TELEMETRY_ENABLED 1
#endif
