#include "telemetry/ball_trace.hpp"

#include <algorithm>
#include <ostream>

#include "common/assert.hpp"
#include "io/json.hpp"
#include "rng/splitmix64.hpp"

namespace iba::telemetry {

void write_span_json(const BallSpan& span, std::ostream& out) {
  io::JsonWriter json(out);
  json.begin_object();
  json.key("ball_id").value(span.ball_id);
  json.key("arrival").value(span.arrival_round);
  json.key("accept").value(span.accept_round);
  json.key("service").value(span.service_round);
  json.key("wait").value(span.wait());
  json.key("pool").value(span.pool_rounds);
  json.key("binq").value(span.bin_rounds);
  json.key("bin").value(static_cast<std::uint64_t>(span.accept_bin));
  json.key("depth").value(static_cast<std::uint64_t>(span.queue_depth));
  json.key("throws").value(static_cast<std::uint64_t>(span.throws));
  json.key("failed").value(static_cast<std::uint64_t>(span.failed_throws));
  json.key("requeues").value(static_cast<std::uint64_t>(span.requeues));
  json.key("attempts").begin_array();
  for (std::uint32_t i = 0; i < span.recorded_failed; ++i) {
    json.begin_object()
        .key("round")
        .value(span.failed[i].round)
        .key("bin")
        .value(static_cast<std::uint64_t>(span.failed[i].bin))
        .key("load")
        .value(static_cast<std::uint64_t>(span.failed[i].load))
        .end_object();
  }
  json.end_array();
  json.end_object();
  out << '\n';
}

#if IBA_TELEMETRY_ENABLED

std::uint64_t BallTracer::rng_hash(std::uint64_t x) noexcept {
  return rng::splitmix64_hash(x);
}

BallTracer::BallTracer(const BallTraceConfig& config)
    : config_(config),
      seed_mix_(rng::splitmix64_hash(config.seed)),
      threshold_(0),
      sample_all_(config.sample_rate >= 1.0),
      enabled_(config.sample_rate > 0.0) {
  IBA_EXPECT(config.sample_rate >= 0.0,
             "BallTraceConfig: sample_rate must be non-negative");
  IBA_EXPECT(config.completed_capacity > 0,
             "BallTraceConfig: completed_capacity must be positive");
  if (!sample_all_ && enabled_) {
    // rate * 2^64, computed without overflowing: rate < 1 here.
    threshold_ = static_cast<std::uint64_t>(
        config.sample_rate * 18446744073709551616.0);
    enabled_ = threshold_ != 0;
  }
}

void BallTracer::on_arrivals(std::uint64_t round, std::uint64_t first_ball_id,
                             std::uint64_t count) {
  round_ = round;
  if (!enabled_) return;
  std::vector<PoolEntry>* bucket = nullptr;
  for (std::uint64_t k = 0; k < count; ++k) {
    const std::uint64_t ball_id = first_ball_id + k;
    if (!is_sampled(ball_id)) continue;
    ++sampled_arrivals_;
    if (active_count() >= config_.max_active) {
      ++skipped_samples_;
      continue;
    }
    const std::uint32_t slot = alloc_slot();
    ActiveSpan& active = slots_[slot];
    active = ActiveSpan{};
    active.span.ball_id = ball_id;
    active.span.arrival_round = round;
    active.stint_start = round;
    active.last_accept = round;
    if (bucket == nullptr) bucket = &pool_shadow_[round];
    bucket->push_back({k, slot});  // k ascending keeps the bucket sorted
  }
}

void BallTracer::switch_label(std::uint64_t label) {
  flush_cursor();
  cursor_active_ = true;
  cur_label_ = label;
  cur_thrown_ = 0;
  cur_rejected_ = 0;
  const auto it = pool_shadow_.find(label);
  cur_entries_ = it == pool_shadow_.end() ? nullptr : &it->second;
  cur_entry_idx_ = 0;
}

void BallTracer::flush_cursor() {
  if (cursor_active_ && cur_rejected_ > 0) {
    rejected_total_[cur_label_] = cur_rejected_;
  }
  cursor_active_ = false;
  cur_entries_ = nullptr;
}

std::uint32_t BallTracer::alloc_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

std::vector<BallTracer::BinEntry>& BallTracer::bin_entries(std::uint32_t bin) {
  if (bin >= bin_shadow_.size()) bin_shadow_.resize(bin + std::size_t{1});
  return bin_shadow_[bin];
}

void BallTracer::on_throw(std::uint64_t label, std::uint32_t bin,
                          std::uint64_t load, bool accepted) {
  if (!enabled_) return;
  if (!cursor_active_ || label != cur_label_) switch_label(label);
  const std::uint64_t position = cur_thrown_++;
  const std::uint64_t reject_position = cur_rejected_;
  if (!accepted) ++cur_rejected_;
  if (cur_entries_ == nullptr || cur_entry_idx_ >= cur_entries_->size() ||
      (*cur_entries_)[cur_entry_idx_].position != position) {
    return;  // not a sampled ball
  }
  const std::uint32_t slot = (*cur_entries_)[cur_entry_idx_].slot;
  ++cur_entry_idx_;
  ActiveSpan& active = slots_[slot];
  ++active.span.throws;
  if (accepted) {
    active.span.pool_rounds += round_ - active.stint_start;
    active.span.accept_round = round_;
    active.span.accept_bin = bin;
    active.span.queue_depth = static_cast<std::uint32_t>(load);
    active.last_accept = round_;
    // The ball lands at the back of the queue; load only grows during
    // the throw phase, so push_back keeps the vector depth-sorted.
    bin_entries(bin).push_back({load, slot});
  } else {
    ++active.span.failed_throws;
    if (active.span.recorded_failed < kSpanAttemptCap) {
      active.span.failed[active.span.recorded_failed++] = {
          round_, bin, static_cast<std::uint32_t>(load)};
    }
    next_pool_[label].push_back({reject_position, slot});
  }
}

void BallTracer::complete_span(std::uint32_t slot,
                               [[maybe_unused]] std::uint64_t label) {
  ActiveSpan& active = slots_[slot];
  BallSpan& span = active.span;
  IBA_ASSERT(span.arrival_round == label);
  span.service_round = round_;
  span.bin_rounds += round_ - active.last_accept;
  IBA_ASSERT(span.pool_rounds + span.bin_rounds == span.wait());
  IBA_ASSERT(span.throws == span.failed_throws + span.requeues + 1);
  pool_wait_.observe(span.pool_rounds);
  bin_wait_.observe(span.bin_rounds);
  if (completed_.size() >= config_.completed_capacity) {
    completed_.pop_front();
    ++dropped_;
  }
  completed_.push_back(span);
  ++completed_total_;
  if (live_ring_ != nullptr) live_ring_->try_push(span);
  free_slots_.push_back(slot);
}

void BallTracer::on_delete(std::uint32_t bin, std::uint64_t label,
                           std::uint64_t position) {
  if (!enabled_ || bin >= bin_shadow_.size()) return;
  auto& entries = bin_shadow_[bin];
  auto it = std::lower_bound(
      entries.begin(), entries.end(), position,
      [](const BinEntry& e, std::uint64_t p) { return e.depth < p; });
  if (it != entries.end() && it->depth == position) {
    complete_span(it->slot, label);
    it = entries.erase(it);
  }
  for (; it != entries.end(); ++it) --it->depth;
}

void BallTracer::on_requeue(std::uint32_t bin, std::uint64_t label) {
  if (!enabled_) return;
  flush_cursor();
  // Requeued balls append after this round's rejected survivors of the
  // same label, in (bin, pop) order — see the position convention above.
  const auto rejected_it = rejected_total_.find(label);
  const std::uint64_t rejected =
      rejected_it == rejected_total_.end() ? 0 : rejected_it->second;
  const std::uint64_t position = rejected + requeued_so_far_[label]++;
  if (bin >= bin_shadow_.size()) return;
  auto& entries = bin_shadow_[bin];
  if (!entries.empty() && entries.front().depth == 0) {
    const std::uint32_t slot = entries.front().slot;
    entries.erase(entries.begin());
    for (auto& entry : entries) --entry.depth;
    ActiveSpan& active = slots_[slot];
    IBA_ASSERT(active.span.arrival_round == label);
    active.span.bin_rounds += round_ - active.last_accept;
    ++active.span.requeues;
    active.stint_start = round_;
    next_pool_[label].push_back({position, slot});
  } else {
    for (auto& entry : entries) --entry.depth;
  }
}

void BallTracer::on_round_end(std::uint64_t round) {
  round_ = round;
  if (!enabled_) return;
  flush_cursor();
  pool_shadow_.swap(next_pool_);
  next_pool_.clear();
  rejected_total_.clear();
  requeued_so_far_.clear();
}

void BallTracer::clear_completed() {
  completed_.clear();
  dropped_ = 0;
  pool_wait_ = DyadicHistogram{};
  bin_wait_ = DyadicHistogram{};
}

#endif  // IBA_TELEMETRY_ENABLED

void record_ball_trace(Registry& registry, const BallTracer& tracer) {
  registry.counter("spans_sampled_total").inc(tracer.sampled_arrivals());
  registry.counter("spans_completed_total").inc(tracer.completed_total());
  registry.counter("spans_skipped_total").inc(tracer.skipped_samples());
  registry.counter("spans_dropped_total").inc(tracer.dropped());
  registry.histogram("span_pool_rounds").merge(tracer.pool_wait());
  registry.histogram("span_binq_rounds").merge(tracer.bin_wait());
}

}  // namespace iba::telemetry
