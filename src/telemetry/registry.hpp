// Metrics registry: named counters, gauges, and dyadic histograms.
//
// A Registry hands out stable references to its instruments, so hot loops
// resolve a name once and then pay one integer add per event. Instruments
// live in name-ordered maps, which makes iteration — and therefore every
// exporter and merge — deterministic. With IBA_TELEMETRY_ENABLED=0 the
// registry stores nothing and every mutation compiles to a no-op.
//
// Merge semantics (used to combine replica registries):
//   counters    — sum
//   gauges      — elementwise max (a merged gauge reads as the peak)
//   histograms  — bucketwise sum; sum/max combine exactly
// Merging is commutative for counters/gauges/histogram buckets, but the
// callers in sim::replicate_* still merge in replica order so that
// floating-point sums — and thus exported bytes — are identical for a
// given master seed regardless of thread count.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/assert.hpp"
#include "stats/histogram.hpp"
#include "telemetry/telemetry_config.hpp"

namespace iba::telemetry {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept {
#if IBA_TELEMETRY_ENABLED
    value_ += delta;
#else
    (void)delta;
#endif
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

  void merge(const Counter& other) noexcept { value_ += other.value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time measurement (last value wins; the peak is kept too).
class Gauge {
 public:
  void set(double value) noexcept {
#if IBA_TELEMETRY_ENABLED
    value_ = value;
    if (!set_ || value > max_) max_ = value;
    set_ = true;
#else
    (void)value;
#endif
  }
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merged gauges read as the elementwise max across inputs.
  void merge(const Gauge& other) noexcept {
    if (!other.set_) return;
    if (!set_ || other.value_ > value_) value_ = other.value_;
    if (!set_ || other.max_ > max_) max_ = other.max_;
    set_ = true;
  }

 private:
  double value_ = 0.0;
  double max_ = 0.0;
  bool set_ = false;
};

/// Histogram of non-negative integers with one bucket per power of two
/// (reusing stats::Log2Histogram), plus the exact sum for mean/Prometheus
/// `_sum`. O(64) state, O(1) observe.
///
/// The dyadic range is configurable through `shift`: values are bucketed
/// at a granularity of 2^shift, so bucket k covers
/// [2^(k−1+shift), 2^(k+shift)). shift = 0 (the default) is the exact
/// layout of the paper's waiting-time analysis; a nanosecond series
/// recorded with shift = 10 buckets at ~µs resolution without growing
/// past 64 buckets. Two histograms with different shifts place the same
/// value in different buckets, so merging them would silently misalign —
/// merge() therefore requires identical shifts (see Registry::merge for
/// the named-metric error).
class DyadicHistogram {
 public:
  DyadicHistogram() noexcept = default;
  explicit DyadicHistogram(std::uint32_t shift) noexcept : shift_(shift) {}

  void observe(std::uint64_t value, std::uint64_t weight = 1) noexcept {
#if IBA_TELEMETRY_ENABLED
    hist_.add(value >> shift_, weight);
    sum_ += static_cast<double>(value) * static_cast<double>(weight);
    if (value > max_) max_ = value;
#else
    (void)value;
    (void)weight;
#endif
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return hist_.total(); }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] std::uint32_t shift() const noexcept { return shift_; }
  [[nodiscard]] std::uint64_t quantile_upper_bound(double q) const noexcept {
    const std::uint64_t bound = hist_.quantile_upper_bound(q);
    return shift_ == 0 ? bound : ((bound + 1) << shift_) - 1;
  }
  [[nodiscard]] const stats::Log2Histogram& buckets() const noexcept {
    return hist_;
  }

  /// True when `other`'s buckets mean the same value ranges as ours, i.e.
  /// bucketwise addition is meaningful.
  [[nodiscard]] bool layout_compatible(
      const DyadicHistogram& other) const noexcept {
    return shift_ == other.shift_;
  }

  /// Absorbs an externally accumulated Log2Histogram whose value sum is
  /// `value_sum` (e.g. a WaitRecorder's histogram plus its wait total).
  /// Raw Log2Histograms are always unshifted, so this requires shift == 0.
  void merge_log2(const stats::Log2Histogram& other, double value_sum) {
#if IBA_TELEMETRY_ENABLED
    IBA_EXPECT(shift_ == 0,
               "DyadicHistogram: merge_log2 into a shifted histogram would "
               "misalign dyadic buckets");
    hist_.merge(other);
    sum_ += value_sum;
    if (other.max() > max_) max_ = other.max();
#else
    (void)other;
    (void)value_sum;
#endif
  }

  /// Bucketwise sum. Throws ContractViolation when the bucket layouts
  /// (dyadic shifts) differ — the counts would land in the wrong ranges.
  void merge(const DyadicHistogram& other) {
#if IBA_TELEMETRY_ENABLED
    IBA_EXPECT(layout_compatible(other),
               "DyadicHistogram: cannot merge histograms with different "
               "dyadic shifts (" + std::to_string(shift_) + " vs " +
                   std::to_string(other.shift_) + ")");
    hist_.merge(other.hist_);
    sum_ += other.sum_;
    if (other.max_ > max_) max_ = other.max_;
#else
    (void)other;
#endif
  }

 private:
  stats::Log2Histogram hist_;
  double sum_ = 0.0;
  std::uint64_t max_ = 0;
  std::uint32_t shift_ = 0;
};

/// Named instrument store. counter()/gauge()/histogram() create on first
/// use and return references that stay valid for the registry's lifetime
/// (node-based maps). Not thread-safe; see concurrency notes in
/// docs/TELEMETRY.md and SharedRegistry for cross-thread merging.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  DyadicHistogram& histogram(std::string_view name);
  /// Resolves `name` as a histogram with the given dyadic shift, creating
  /// it on first use. Throws ContractViolation when the instrument
  /// already exists with a different shift — one name must mean one
  /// bucket layout.
  DyadicHistogram& histogram(std::string_view name, std::uint32_t shift);

  using CounterMap = std::map<std::string, Counter, std::less<>>;
  using GaugeMap = std::map<std::string, Gauge, std::less<>>;
  using HistogramMap = std::map<std::string, DyadicHistogram, std::less<>>;

  [[nodiscard]] const CounterMap& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const GaugeMap& gauges() const noexcept { return gauges_; }
  [[nodiscard]] const HistogramMap& histograms() const noexcept {
    return histograms_;
  }

  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Folds `other` in under the semantics documented above. Instruments
  /// present only in `other` are created here (histograms keep their
  /// dyadic shift). Throws ContractViolation — naming the metric — when
  /// a histogram exists on both sides with different bucket layouts,
  /// instead of silently misaligning the counts.
  void merge(const Registry& other);

  void clear() noexcept;

 private:
  CounterMap counters_;
  GaugeMap gauges_;
  HistogramMap histograms_;
};

}  // namespace iba::telemetry
