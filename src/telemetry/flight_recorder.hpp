// Black-box flight recorder: when a run goes wrong, capture why.
//
// A FlightRecorder rides beside a TimeSeries and accumulates bounded,
// simulation-deterministic context — recent control decisions, recent
// structured events (fault activity, resume markers, violations) — so
// that the first armed trigger can dump a complete postmortem bundle:
//
//   iba-postmortem 1
//   trigger = auditor-violation | expectation-failure | shed-spike |
//             resume-mismatch | manual
//   <identity: scenario, digest, seed, engine fingerprint>
//   [decisions]  recent applied control decisions
//   [events]     recent structured events, oldest first
//   [timeseries] last-K tier-0 samples at full resolution (delta-coded)
//   end
//   crc32 = <8 lowercase hex over everything above>
//
// Bundles are written through the same atomic tmp + fsync + rename path
// as artifacts and checkpoints, and carry a CRC trailer so a torn or
// corrupted bundle is rejected at read time, never misread.
//
// Determinism: every recorded field is a pure function of simulation
// state (λ̂ rides as ×10⁶ fixed point, no wall-clock anywhere), so for a
// fixed (scenario, seed) the bundle bytes are identical across the
// scalar / fused / sharded kernels — and across kill-and-resume, because
// state_text()/restore_state() carry the decision/event logs and the
// trigger latch through the checkpoint's `.record` sidecar. The recorder
// latches on the first trigger: later triggers are recorded as events
// but never overwrite the bundle of record.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/telemetry_config.hpp"
#include "telemetry/timeseries.hpp"

namespace iba::telemetry {

enum class TriggerKind : std::uint8_t {
  kAuditorViolation = 0,
  kExpectationFailure,
  kShedSpike,
  kResumeMismatch,
  kManual,
};

inline constexpr std::size_t kTriggerKindCount = 5;

[[nodiscard]] const char* trigger_name(TriggerKind kind) noexcept;
/// Inverse of trigger_name; returns false on an unknown name.
[[nodiscard]] bool trigger_from_name(const std::string& name,
                                     TriggerKind& kind) noexcept;

struct FlightRecorderConfig {
  /// Tier-0 samples included at full resolution in a bundle.
  std::uint64_t window = 64;
  std::size_t max_decisions = 64;  ///< bounded decision log (newest kept)
  std::size_t max_events = 64;     ///< bounded event log (newest kept)
};

/// One applied control decision, integer-only for byte determinism.
struct RecordedDecision {
  std::uint64_t round = 0;
  std::uint32_t old_capacity = 0;
  std::uint32_t new_capacity = 0;
  std::uint64_t old_pool_limit = 0;
  std::uint64_t new_pool_limit = 0;
  std::uint64_t lambda_hat_micro = 0;
};

/// One structured event (fault activity, violations, lifecycle marks).
/// `detail` must be single-line and simulation-deterministic.
struct RecordedEvent {
  std::uint64_t round = 0;
  std::string kind;
  std::string detail;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config = {});

  /// Attaches the time series whose tail becomes the bundle's
  /// [timeseries] section. May be null (section renders empty).
  void attach_time_series(const TimeSeries* series) noexcept {
    series_ = series;
  }

  /// Run identity stamped into every bundle.
  void set_context(std::string scenario_name, std::string digest,
                   std::uint64_t seed, std::uint64_t n);
  /// Engine fingerprint (e.g. CRC of the engine state words) at the
  /// moment of the trigger; callers refresh it just before trigger().
  void set_engine_fingerprint(std::string fingerprint) {
    engine_fingerprint_ = std::move(fingerprint);
  }

  void note_decision(const RecordedDecision& decision);
  void note_event(std::uint64_t round, std::string kind, std::string detail);

  /// Fires a trigger: latches the first one (recording it as the bundle
  /// of record) and logs every one as an event. Returns true when this
  /// call armed the latch — the caller should then write the bundle.
  bool trigger(TriggerKind kind, std::uint64_t round,
               const std::string& detail);

  [[nodiscard]] bool triggered() const noexcept { return triggered_; }
  [[nodiscard]] TriggerKind trigger_kind() const noexcept { return kind_; }
  [[nodiscard]] std::uint64_t trigger_round() const noexcept {
    return trigger_round_;
  }
  [[nodiscard]] const FlightRecorderConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::size_t decision_count() const noexcept {
    return decisions_.size();
  }
  [[nodiscard]] std::size_t event_count() const noexcept {
    return events_.size();
  }

  /// The complete bundle text, CRC trailer included. Requires a latched
  /// trigger.
  [[nodiscard]] std::string render_bundle() const;
  /// render_bundle() through the atomic tmp + fsync + rename path.
  void write_bundle(const std::string& path) const;

  /// Recorder state (logs + latch) for the checkpoint's `.record`
  /// sidecar; the attached TimeSeries serializes itself separately.
  [[nodiscard]] std::string state_text() const;
  void restore_state(const std::string& text);

 private:
  FlightRecorderConfig config_;
  const TimeSeries* series_ = nullptr;

  std::string scenario_name_ = "unknown";
  std::string digest_ = "0";
  std::uint64_t seed_ = 0;
  std::uint64_t n_ = 0;
  std::string engine_fingerprint_ = "0";

  std::deque<RecordedDecision> decisions_;
  std::deque<RecordedEvent> events_;

  bool triggered_ = false;
  TriggerKind kind_ = TriggerKind::kManual;
  std::uint64_t trigger_round_ = 0;
  std::string trigger_detail_;
};

/// Parsed view of a bundle file, for the postmortem CLI and tests.
struct PostmortemBundle {
  std::uint32_t version = 0;
  std::string trigger;
  std::uint64_t round = 0;
  std::string detail;
  std::string scenario;
  std::string digest;
  std::uint64_t seed = 0;
  std::uint64_t n = 0;
  std::string engine;
  std::vector<std::string> decisions;  ///< canonical decision lines
  std::vector<std::string> events;     ///< canonical event lines
  std::uint64_t cadence = 1;
  std::uint64_t samples = 0;
  /// Column name → reconstructed values (deltas already resolved).
  std::vector<std::pair<std::string, std::vector<std::uint64_t>>> series;
  std::string text;  ///< the verified raw text
};

/// Verifies magic/version/CRC; throws std::runtime_error on any damage.
void verify_bundle_text(const std::string& text);
/// Reads + verifies + parses a bundle file.
[[nodiscard]] PostmortemBundle read_bundle_file(const std::string& path);

}  // namespace iba::telemetry
