#include "telemetry/timeseries.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace iba::telemetry {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("timeseries: " + message);
}

// One column as `first +d -d ...`: the first retained value, then signed
// deltas (two's-complement wrap, so any u64 sequence round-trips).
void render_delta_row(std::ostringstream& out,
                      const std::vector<std::uint64_t>& values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i == 0) {
      out << ' ' << values[0];
    } else {
      const auto delta = static_cast<std::int64_t>(values[i] - values[i - 1]);
      out << ' ' << (delta >= 0 ? "+" : "") << delta;
    }
  }
}

}  // namespace

const std::array<const char*, TimeSeries::kColumns>&
TimeSeries::column_names() noexcept {
  static const std::array<const char*, kColumns> kNames = {
      "round",        "pool_size",    "total_load",
      "max_load",     "generated",    "deleted",
      "shed",         "deferred",     "requeued",
      "faulted_bins", "capacity",     "lambda_hat_micro",
      "control_changes", "wait_p50",  "wait_p95",
      "wait_p99"};
  return kNames;
}

const std::array<TimeSeries::Agg, TimeSeries::kColumns>&
TimeSeries::column_aggs() noexcept {
  using enum Agg;
  static const std::array<Agg, kColumns> kAggs = {
      kLast,  // round — a folded sample is stamped with its newest round
      kLast,  // pool_size
      kLast,  // total_load
      kMax,   // max_load
      kSum,   // generated
      kSum,   // deleted
      kSum,   // shed
      kLast,  // deferred (queue depth, a gauge)
      kSum,   // requeued
      kMax,   // faulted_bins
      kLast,  // capacity
      kLast,  // lambda_hat_micro
      kLast,  // control_changes (cumulative)
      kLast,  // wait_p50
      kLast,  // wait_p95
      kLast,  // wait_p99
  };
  return kAggs;
}

TimeSeries::TimeSeries(TimeSeriesConfig config) : config_(config) {
  if (config_.cadence == 0) fail("cadence must be at least 1");
  if (config_.tier_capacity == 0) fail("tier_capacity must be at least 1");
  for (auto& tier : data_) {
    tier.assign(config_.tier_capacity * kColumns, 0);
  }
}

void TimeSeries::fold_into(
    int tier, const std::array<std::uint64_t, kColumns>& row) noexcept {
  auto& pend = pending_[tier];
  if (pending_count_[tier] == 0) {
    pend = row;
  } else {
    const auto& aggs = column_aggs();
    for (std::size_t col = 0; col < kColumns; ++col) {
      switch (aggs[col]) {
        case Agg::kLast:
          pend[col] = row[col];
          break;
        case Agg::kSum:
          pend[col] += row[col];
          break;
        case Agg::kMax:
          pend[col] = std::max(pend[col], row[col]);
          break;
      }
    }
  }
  ++pending_count_[tier];
}

void TimeSeries::emit(int tier) noexcept {
  const std::uint64_t cap = config_.tier_capacity;
  const std::size_t slot =
      static_cast<std::size_t>(emitted_[tier] % cap) * kColumns;
  for (std::size_t col = 0; col < kColumns; ++col) {
    data_[tier][slot + col] = pending_[tier][col];
  }
  ++emitted_[tier];
  const std::array<std::uint64_t, kColumns> row = pending_[tier];
  pending_count_[tier] = 0;
  // Cascade: the finished sample is one constituent of the next tier's
  // fold; recursion depth is bounded by kTiers.
  if (tier + 1 < kTiers) {
    fold_into(tier + 1, row);
    if (pending_count_[tier + 1] == kFold) emit(tier + 1);
  }
}

void TimeSeries::observe(const TimeSeriesSample& sample) noexcept {
#if IBA_TELEMETRY_ENABLED
  ++rounds_;
  const std::array<std::uint64_t, kColumns> row = {
      sample.round,         sample.pool_size,    sample.total_load,
      sample.max_load,      sample.generated,    sample.deleted,
      sample.shed,          sample.deferred,     sample.requeued,
      sample.faulted_bins,  sample.capacity,     sample.lambda_hat_micro,
      sample.control_changes, sample.wait_p50,   sample.wait_p95,
      sample.wait_p99};
  fold_into(0, row);
  if (pending_count_[0] == config_.cadence) emit(0);
#else
  (void)sample;
#endif
}

std::uint64_t TimeSeries::tier_emitted(int tier) const noexcept {
  return emitted_[tier];
}

std::uint64_t TimeSeries::tier_retained(int tier) const noexcept {
  return std::min(emitted_[tier], config_.tier_capacity);
}

std::uint64_t TimeSeries::tier_stride(int tier) const noexcept {
  std::uint64_t stride = config_.cadence;
  for (int t = 0; t < tier; ++t) stride *= kFold;
  return stride;
}

std::vector<std::uint64_t> TimeSeries::column(int tier,
                                              std::size_t col) const {
  const std::uint64_t cap = config_.tier_capacity;
  const std::uint64_t retained = tier_retained(tier);
  const std::uint64_t first = emitted_[tier] - retained;
  std::vector<std::uint64_t> out;
  out.reserve(retained);
  for (std::uint64_t i = first; i < emitted_[tier]; ++i) {
    out.push_back(
        data_[tier][static_cast<std::size_t>(i % cap) * kColumns + col]);
  }
  return out;
}

std::string TimeSeries::render_text() const {
  std::ostringstream out;
  out << "iba-timeseries 1\n";
  out << "cadence = " << config_.cadence << '\n';
  out << "tier-capacity = " << config_.tier_capacity << '\n';
  out << "rounds = " << rounds_ << '\n';
  out << "columns =";
  for (const char* name : column_names()) out << ' ' << name;
  out << '\n';
  for (int tier = 0; tier < kTiers; ++tier) {
    out << "[tier " << tier << "]\n";
    out << "stride = " << tier_stride(tier) << '\n';
    out << "emitted = " << tier_emitted(tier) << '\n';
    out << "retained = " << tier_retained(tier) << '\n';
    for (std::size_t col = 0; col < kColumns; ++col) {
      out << "col " << column_names()[col] << " =";
      render_delta_row(out, column(tier, col));
      out << '\n';
    }
  }
  out << "end\n";
  return out.str();
}

std::string TimeSeries::render_window(std::uint64_t last_k) const {
  const std::uint64_t retained = tier_retained(0);
  const std::uint64_t take = std::min(last_k, retained);
  std::ostringstream out;
  out << "cadence = " << config_.cadence << '\n';
  out << "samples = " << take << '\n';
  for (std::size_t col = 0; col < kColumns; ++col) {
    std::vector<std::uint64_t> values = column(0, col);
    values.erase(values.begin(),
                 values.begin() + static_cast<std::ptrdiff_t>(
                                      values.size() - take));
    out << "col " << column_names()[col] << " =";
    render_delta_row(out, values);
    out << '\n';
  }
  return out.str();
}

std::string TimeSeries::state_text() const {
  std::ostringstream out;
  out << "cadence = " << config_.cadence << '\n';
  out << "tier-capacity = " << config_.tier_capacity << '\n';
  out << "rounds = " << rounds_ << '\n';
  for (int tier = 0; tier < kTiers; ++tier) {
    out << "emitted " << tier << " = " << emitted_[tier] << '\n';
    out << "pending " << tier << " = " << pending_count_[tier];
    for (std::size_t col = 0; col < kColumns; ++col) {
      out << ' ' << pending_[tier][col];
    }
    out << '\n';
    const std::uint64_t retained = tier_retained(tier);
    const std::uint64_t first = emitted_[tier] - retained;
    const std::uint64_t cap = config_.tier_capacity;
    for (std::uint64_t i = first; i < emitted_[tier]; ++i) {
      out << "row " << tier << ' ' << i << " =";
      const std::size_t slot = static_cast<std::size_t>(i % cap) * kColumns;
      for (std::size_t col = 0; col < kColumns; ++col) {
        out << ' ' << data_[tier][slot + col];
      }
      out << '\n';
    }
  }
  return out.str();
}

void TimeSeries::restore_state(const std::string& text) {
  reset();
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream parse(line);
    std::string key;
    parse >> key;
    std::string eq;
    if (key == "cadence" || key == "tier-capacity" || key == "rounds") {
      std::uint64_t value = 0;
      if (!(parse >> eq >> value) || eq != "=") fail("malformed: " + line);
      if (key == "cadence" && value != config_.cadence) {
        fail("cadence mismatch: state has " + std::to_string(value));
      }
      if (key == "tier-capacity" && value != config_.tier_capacity) {
        fail("tier-capacity mismatch: state has " + std::to_string(value));
      }
      if (key == "rounds") rounds_ = value;
    } else if (key == "emitted") {
      int tier = -1;
      std::uint64_t value = 0;
      if (!(parse >> tier >> eq >> value) || eq != "=" || tier < 0 ||
          tier >= kTiers) {
        fail("malformed: " + line);
      }
      emitted_[tier] = value;
    } else if (key == "pending") {
      int tier = -1;
      std::uint64_t count = 0;
      if (!(parse >> tier >> eq >> count) || eq != "=" || tier < 0 ||
          tier >= kTiers) {
        fail("malformed: " + line);
      }
      pending_count_[tier] = count;
      for (std::size_t col = 0; col < kColumns; ++col) {
        if (!(parse >> pending_[tier][col])) fail("malformed: " + line);
      }
    } else if (key == "row") {
      int tier = -1;
      std::uint64_t index = 0;
      if (!(parse >> tier >> index >> eq) || eq != "=" || tier < 0 ||
          tier >= kTiers) {
        fail("malformed: " + line);
      }
      const std::size_t slot =
          static_cast<std::size_t>(index % config_.tier_capacity) * kColumns;
      for (std::size_t col = 0; col < kColumns; ++col) {
        if (!(parse >> data_[tier][slot + col])) fail("malformed: " + line);
      }
    } else {
      fail("unknown key '" + key + "'");
    }
  }
  for (int tier = 0; tier < kTiers; ++tier) {
    if (pending_count_[tier] > (tier == 0 ? config_.cadence : kFold)) {
      fail("pending count exceeds fold width");
    }
  }
}

void TimeSeries::reset() noexcept {
  rounds_ = 0;
  emitted_.fill(0);
  pending_count_.fill(0);
  for (auto& pend : pending_) pend.fill(0);
  for (auto& tier : data_) {
    std::fill(tier.begin(), tier.end(), 0);
  }
}

}  // namespace iba::telemetry
