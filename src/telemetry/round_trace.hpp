// Bounded round-event tracing: a lock-free single-producer single-consumer
// ring of RoundMetrics-derived events with drop counting.
//
// The simulation thread pushes one RoundEvent per round; a tailer thread
// (exporter, live dashboard) pops at its own pace. When the consumer falls
// behind, events are dropped — and counted — instead of growing memory,
// so an arbitrarily long run can be tailed with a fixed footprint.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "core/metrics.hpp"
#include "telemetry/telemetry_config.hpp"

namespace iba::telemetry {

/// Wait-free SPSC ring over trivially copyable T. Capacity is rounded up
/// to a power of two. Exactly one producer thread may call try_push and
/// exactly one consumer thread may call try_pop.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t min_capacity)
      : slots_(std::bit_ceil(min_capacity < 2 ? std::size_t{2}
                                              : min_capacity)),
        mask_(slots_.size() - 1) {
    IBA_EXPECT(min_capacity > 0, "SpscRing: capacity must be positive");
  }

  /// Producer side. Returns false (and counts a drop) when full.
  bool try_push(const T& value) noexcept {
#if IBA_TELEMETRY_ENABLED
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head > mask_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
#else
    (void)value;
    return true;
#endif
  }

  /// Consumer side. Returns false when empty.
  bool try_pop(T& out) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    out = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Events rejected because the consumer was behind (producer-counted).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Events currently buffered. Exact only when both sides are quiescent.
  [[nodiscard]] std::size_t size() const noexcept {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_;
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< consumer cursor
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< producer cursor
  alignas(64) std::atomic<std::uint64_t> dropped_{0};
};

/// One traced simulation round: the full RoundMetrics snapshot plus the
/// wall-clock cost of the step that produced it (0 when not timed).
struct RoundEvent {
  core::RoundMetrics metrics;
  std::uint64_t step_ns = 0;
};

using RoundTrace = SpscRing<RoundEvent>;

}  // namespace iba::telemetry
