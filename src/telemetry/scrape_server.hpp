// Embedded scrape endpoint: a minimal HTTP/1.1 server over plain POSIX
// sockets (one listener thread, no dependencies) that exposes the live
// telemetry of a running simulation:
//
//   GET /metrics     Prometheus text from a SharedRegistry snapshot
//   GET /healthz     "ok" (liveness)
//   GET /spans       JSON-lines of recently completed ball spans
//   GET /timeseries  rendered per-round time series (delta-coded tiers)
//   GET /profile     per-phase ns / balls / ns-per-ball from PhaseTimers
//
// This is the production-shaped path the ROADMAP aims at: a scraper
// (Prometheus, curl, a dashboard) polls the process instead of tailing
// snapshot files. The server handles one connection at a time —
// scrape traffic, not serving traffic — and reads only the request line,
// which is all the three GET endpoints need.
//
// Lifecycle: construct with a port (0 picks an ephemeral port — see
// port() — which the smoke tests use), then stop() or destruct to join
// the listener thread. Responses are built from consistent snapshots, so
// the simulation threads are never blocked by a slow scraper.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/ball_trace.hpp"
#include "telemetry/shared_registry.hpp"

namespace iba::telemetry {

class ScrapeServer {
 public:
  /// Pulls recent spans for /spans; called per request, may return an
  /// empty vector. Null = /spans serves an empty body.
  using SpanSource = std::function<std::vector<BallSpan>()>;
  /// Renders a text body per request (for /timeseries and /profile).
  /// Sources must build their reply from a consistent snapshot — the
  /// listener thread calls them concurrently with the simulation. Null =
  /// the endpoint serves an empty body.
  using TextSource = std::function<std::string()>;

  /// Binds 0.0.0.0:`port` (0 = ephemeral) and starts the listener
  /// thread. Throws ContractViolation when the socket cannot be bound.
  ScrapeServer(std::uint16_t port, SharedRegistry& registry,
               SpanSource spans = nullptr, TextSource timeseries = nullptr,
               TextSource profile = nullptr);
  ~ScrapeServer();

  ScrapeServer(const ScrapeServer&) = delete;
  ScrapeServer& operator=(const ScrapeServer&) = delete;

  /// The bound port — the requested one, or the kernel-assigned port
  /// when constructed with 0.
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Requests served so far (all endpoints, including 404s).
  [[nodiscard]] std::uint64_t requests_served() const noexcept;

  /// Stops accepting and joins the listener thread. Idempotent.
  void stop();

 private:
  void serve();
  [[nodiscard]] std::string respond(const std::string& request_line);

  SharedRegistry& registry_;
  SpanSource spans_;
  TextSource timeseries_;
  TextSource profile_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace iba::telemetry
