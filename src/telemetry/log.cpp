#include "telemetry/log.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "io/json.hpp"

namespace iba::telemetry {

namespace {

/// Shared numeric formatting with the exporters, so a value reads the
/// same in a metrics snapshot and in the log stream.
std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

bool needs_quoting(std::string_view text) {
  if (text.empty()) return true;
  for (const char ch : text) {
    if (ch == ' ' || ch == '"' || ch == '=' || ch == '\\' || ch == '\n' ||
        ch == '\t') {
      return true;
    }
  }
  return false;
}

/// logfmt-style value: bare when unambiguous, otherwise quoted with
/// backslash escapes for quotes, backslashes and newlines/tabs.
void append_kv_value(std::string& out, std::string_view text) {
  if (!needs_quoting(text)) {
    out.append(text);
    return;
  }
  out += '"';
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += ch;
    }
  }
  out += '"';
}

void append_kv_field(std::string& out, const LogField& field) {
  out += ' ';
  out.append(field.key());
  out += '=';
  switch (field.kind()) {
    case LogField::Kind::kString:
      append_kv_value(out, field.string_value());
      break;
    case LogField::Kind::kInt:
      out += std::to_string(field.int_value());
      break;
    case LogField::Kind::kUint:
      out += std::to_string(field.uint_value());
      break;
    case LogField::Kind::kDouble:
      out += format_double(field.double_value());
      break;
    case LogField::Kind::kBool:
      out += field.bool_value() ? "true" : "false";
      break;
  }
}

void append_json_field(io::JsonWriter& json, const LogField& field) {
  json.key(field.key());
  switch (field.kind()) {
    case LogField::Kind::kString:
      json.value(field.string_value());
      break;
    case LogField::Kind::kInt:
      json.value(static_cast<std::int64_t>(field.int_value()));
      break;
    case LogField::Kind::kUint:
      json.value(field.uint_value());
      break;
    case LogField::Kind::kDouble:
      json.value(field.double_value());
      break;
    case LogField::Kind::kBool:
      json.value(field.bool_value());
      break;
  }
}

LogLevel level_from_env() {
  if (const char* env = std::getenv("IBA_LOG_LEVEL")) {
    if (const auto parsed = parse_log_level(env)) return *parsed;
  }
  return LogLevel::kInfo;
}

LogFormat format_from_env() {
  if (const char* env = std::getenv("IBA_LOG_FORMAT")) {
    std::string lowered(env);
    for (char& ch : lowered) {
      ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    }
    if (lowered == "json") return LogFormat::kJson;
  }
  return LogFormat::kKeyValue;
}

}  // namespace

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "info";
}

std::optional<LogLevel> parse_log_level(std::string_view text) noexcept {
  std::string lowered(text);
  for (char& ch : lowered) {
    ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  }
  if (lowered == "debug") return LogLevel::kDebug;
  if (lowered == "info") return LogLevel::kInfo;
  if (lowered == "warn" || lowered == "warning") return LogLevel::kWarn;
  if (lowered == "error") return LogLevel::kError;
  if (lowered == "off" || lowered == "none") return LogLevel::kOff;
  return std::nullopt;
}

Logger& Logger::global() {
  static Logger logger(&std::cerr, level_from_env(), format_from_env());
  return logger;
}

void Logger::log(LogLevel level, std::string_view event,
                 std::initializer_list<LogField> fields) {
  if (!enabled(level)) return;
  std::string line;
  if (format_ == LogFormat::kKeyValue) {
    line = "level=";
    line += log_level_name(level);
    line += " event=";
    append_kv_value(line, event);
    for (const LogField& field : fields) append_kv_field(line, field);
    line += '\n';
  } else {
    std::ostringstream out;
    io::JsonWriter json(out);
    json.begin_object();
    json.key("level").value(log_level_name(level));
    json.key("event").value(event);
    for (const LogField& field : fields) append_json_field(json, field);
    json.end_object();
    out << '\n';
    line = out.str();
  }
  const std::lock_guard lock(mutex_);
  if (sink_ != nullptr) {
    sink_->write(line.data(), static_cast<std::streamsize>(line.size()));
    sink_->flush();
  }
}

}  // namespace iba::telemetry
