#include "telemetry/registry.hpp"

namespace iba::telemetry {

#if IBA_TELEMETRY_ENABLED

Counter& Registry::counter(std::string_view name) {
  if (auto it = counters_.find(name); it != counters_.end()) {
    return it->second;
  }
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  if (auto it = gauges_.find(name); it != gauges_.end()) {
    return it->second;
  }
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

DyadicHistogram& Registry::histogram(std::string_view name) {
  if (auto it = histograms_.find(name); it != histograms_.end()) {
    return it->second;
  }
  return histograms_.emplace(std::string(name), DyadicHistogram{})
      .first->second;
}

DyadicHistogram& Registry::histogram(std::string_view name,
                                     std::uint32_t shift) {
  if (auto it = histograms_.find(name); it != histograms_.end()) {
    IBA_EXPECT(it->second.shift() == shift,
               "Registry: histogram '" + std::string(name) +
                   "' already exists with dyadic shift " +
                   std::to_string(it->second.shift()) + ", requested " +
                   std::to_string(shift));
    return it->second;
  }
  return histograms_.emplace(std::string(name), DyadicHistogram{shift})
      .first->second;
}

void Registry::merge(const Registry& other) {
  for (const auto& [name, c] : other.counters_) counter(name).merge(c);
  for (const auto& [name, g] : other.gauges_) gauge(name).merge(g);
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);  // adopt contents and layout
      continue;
    }
    IBA_EXPECT(it->second.layout_compatible(h),
               "Registry::merge: histogram '" + name +
                   "' bucket layouts differ (dyadic shift " +
                   std::to_string(it->second.shift()) + " vs " +
                   std::to_string(h.shift()) +
                   "); merging would misalign buckets");
    it->second.merge(h);
  }
}

#else  // IBA_TELEMETRY_ENABLED == 0: hand out shared dummies, store nothing.

namespace {
Counter g_null_counter;
Gauge g_null_gauge;
DyadicHistogram g_null_histogram;
}  // namespace

Counter& Registry::counter(std::string_view) { return g_null_counter; }
Gauge& Registry::gauge(std::string_view) { return g_null_gauge; }
DyadicHistogram& Registry::histogram(std::string_view) {
  return g_null_histogram;
}
DyadicHistogram& Registry::histogram(std::string_view, std::uint32_t) {
  return g_null_histogram;
}
void Registry::merge(const Registry&) {}

#endif

void Registry::clear() noexcept {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace iba::telemetry
