// Scoped phase timers: where does a round's time go?
//
// PhaseTimers accumulates nanoseconds and ball counts per simulation
// phase (throw / accept / delete inside a step, burn-in / measure around
// it), so a run can report per-phase ns-per-ball. ScopedPhaseTimer is the
// RAII instrument; constructed with a null sink it reads no clock at all,
// and with IBA_TELEMETRY_ENABLED=0 it compiles away entirely.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "telemetry/telemetry_config.hpp"

namespace iba::telemetry {

enum class Phase : std::uint8_t {
  kThrow = 0,   ///< sampling one bin per pool ball
  kAccept,      ///< bins accepting into their buffers
  kDelete,      ///< end-of-round service (one ball per non-empty bin)
  kBurnIn,      ///< whole rounds before the measurement window
  kMeasure,     ///< whole rounds inside the measurement window
};

inline constexpr std::size_t kPhaseCount = 5;

[[nodiscard]] constexpr const char* phase_name(Phase phase) noexcept {
  constexpr const char* kNames[kPhaseCount] = {"throw", "accept", "delete",
                                               "burn_in", "measure"};
  return kNames[static_cast<std::size_t>(phase)];
}

/// Per-phase accumulated wall time, call count and processed-ball count.
class PhaseTimers {
 public:
  void add(Phase phase, std::uint64_t ns, std::uint64_t balls) noexcept {
#if IBA_TELEMETRY_ENABLED
    const auto i = static_cast<std::size_t>(phase);
    ns_[i] += ns;
    balls_[i] += balls;
    ++calls_[i];
#else
    (void)phase;
    (void)ns;
    (void)balls;
#endif
  }

  [[nodiscard]] std::uint64_t ns(Phase phase) const noexcept {
    return ns_[static_cast<std::size_t>(phase)];
  }
  [[nodiscard]] std::uint64_t balls(Phase phase) const noexcept {
    return balls_[static_cast<std::size_t>(phase)];
  }
  [[nodiscard]] std::uint64_t calls(Phase phase) const noexcept {
    return calls_[static_cast<std::size_t>(phase)];
  }
  /// Nanoseconds per processed ball in `phase` (0 when no balls).
  [[nodiscard]] double ns_per_ball(Phase phase) const noexcept {
    const auto i = static_cast<std::size_t>(phase);
    return balls_[i] == 0 ? 0.0
                          : static_cast<double>(ns_[i]) /
                                static_cast<double>(balls_[i]);
  }

  void merge(const PhaseTimers& other) noexcept {
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      ns_[i] += other.ns_[i];
      balls_[i] += other.balls_[i];
      calls_[i] += other.calls_[i];
    }
  }

  void reset() noexcept {
    ns_.fill(0);
    balls_.fill(0);
    calls_.fill(0);
  }

 private:
  std::array<std::uint64_t, kPhaseCount> ns_{};
  std::array<std::uint64_t, kPhaseCount> balls_{};
  std::array<std::uint64_t, kPhaseCount> calls_{};
};

/// RAII timer: reads the clock at scope entry/exit and credits the
/// elapsed time (plus `balls`, adjustable via set_balls before exit) to
/// one phase of the sink. A null sink skips the clock reads.
class ScopedPhaseTimer {
 public:
  ScopedPhaseTimer(PhaseTimers* sink, Phase phase,
                   std::uint64_t balls = 0) noexcept
      : sink_(sink), phase_(phase), balls_(balls) {
#if IBA_TELEMETRY_ENABLED
    if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
#endif
  }

  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

  /// For phases whose ball count is only known at the end (e.g. delete).
  void set_balls(std::uint64_t balls) noexcept { balls_ = balls; }

  /// Ends the timed section now (instead of at scope exit).
  void stop() noexcept {
#if IBA_TELEMETRY_ENABLED
    if (sink_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    sink_->add(phase_, static_cast<std::uint64_t>(
                           std::chrono::duration_cast<std::chrono::nanoseconds>(
                               elapsed)
                               .count()),
               balls_);
    sink_ = nullptr;
#endif
  }

  ~ScopedPhaseTimer() { stop(); }

 private:
  PhaseTimers* sink_;
  Phase phase_;
  std::uint64_t balls_;
#if IBA_TELEMETRY_ENABLED
  std::chrono::steady_clock::time_point start_{};
#endif
};

}  // namespace iba::telemetry
