#include "telemetry/scrape_server.hpp"

#include <unistd.h>

#include <sstream>
#include <utility>

#include "common/assert.hpp"
#include "net/socket.hpp"
#include "telemetry/export.hpp"
#include "telemetry/log.hpp"

namespace iba::telemetry {

namespace {

constexpr int kPollTimeoutMs = 200;  // stop-flag latency bound

std::string http_response(int status, std::string_view reason,
                          std::string_view content_type,
                          std::string_view body) {
  std::ostringstream out;
  out << "HTTP/1.1 " << status << ' ' << reason << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return std::move(out).str();
}

}  // namespace

ScrapeServer::ScrapeServer(std::uint16_t port, SharedRegistry& registry,
                           SpanSource spans, TextSource timeseries,
                           TextSource profile)
    : registry_(registry),
      spans_(std::move(spans)),
      timeseries_(std::move(timeseries)),
      profile_(std::move(profile)) {
  try {
    net::Socket listener = net::listen_tcp("0.0.0.0", port, 8);
    port_ = net::local_port(listener);
    listen_fd_ = listener.release();
  } catch (const net::NetError& error) {
    IBA_EXPECT(false, std::string("ScrapeServer: ") + error.what());
  }

  thread_ = std::thread([this] { serve(); });
  log_info("scrape_server_started", {{"port", port_}});
}

ScrapeServer::~ScrapeServer() { stop(); }

std::uint64_t ScrapeServer::requests_served() const noexcept {
  return requests_.load(std::memory_order_relaxed);
}

void ScrapeServer::stop() {
  if (!stop_.exchange(true)) {
    log_info("scrape_server_stopping",
             {{"port", port_}, {"requests", requests_served()}});
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void ScrapeServer::serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    net::Socket client;
    try {
      client = net::accept_client(listen_fd_, kPollTimeoutMs);
    } catch (const net::NetError&) {
      continue;
    }
    if (!client.valid()) continue;  // timeout: re-check the stop flag

    // The request line is all we route on; read one chunk (a GET with no
    // body fits comfortably) and cut at the first CRLF. read_some retries
    // EINTR, so a signal never truncates the request line.
    char buf[2048];
    std::size_t n = 0;
    try {
      n = net::read_some(client.fd(), buf, sizeof(buf) - 1);
    } catch (const net::NetError&) {
      continue;  // peer went away before sending anything
    }
    if (n > 0) {
      buf[n] = '\0';
      std::string request_line(buf);
      if (const auto eol = request_line.find("\r\n");
          eol != std::string::npos) {
        request_line.resize(eol);
      }
      // write_full retries EINTR and loops over short writes — large
      // /timeseries or /metrics bodies arrive whole, where the previous
      // best-effort send() could truncate them under signal pressure.
      try {
        const std::string response = respond(request_line);
        net::write_full(client.fd(), response.data(), response.size());
      } catch (const net::NetError&) {
        // Peer closed mid-response; nothing to salvage.
      }
      requests_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

std::string ScrapeServer::respond(const std::string& request_line) {
  // "GET /path HTTP/1.1" → method, path.
  const auto first_space = request_line.find(' ');
  const auto second_space = request_line.find(' ', first_space + 1);
  const std::string method = request_line.substr(0, first_space);
  const std::string path =
      first_space == std::string::npos
          ? std::string()
          : request_line.substr(first_space + 1,
                                second_space - first_space - 1);
  if (method != "GET") {
    return http_response(405, "Method Not Allowed", "text/plain",
                         "only GET is supported\n");
  }
  if (path == "/healthz") {
    return http_response(200, "OK", "text/plain", "ok\n");
  }
  if (path == "/metrics") {
    const Registry snapshot = registry_.snapshot();
    std::ostringstream body;
    write_prometheus(snapshot, body);
    return http_response(200, "OK", "text/plain; version=0.0.4",
                         std::move(body).str());
  }
  if (path == "/spans") {
    std::ostringstream body;
    if (spans_) {
      for (const BallSpan& span : spans_()) write_span_json(span, body);
    }
    return http_response(200, "OK", "application/x-ndjson",
                         std::move(body).str());
  }
  if (path == "/timeseries") {
    return http_response(200, "OK", "text/plain",
                         timeseries_ ? timeseries_() : std::string());
  }
  if (path == "/profile") {
    return http_response(200, "OK", "text/plain",
                         profile_ ? profile_() : std::string());
  }
  return http_response(404, "Not Found", "text/plain", "not found\n");
}

}  // namespace iba::telemetry
