#include "telemetry/scrape_server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/assert.hpp"
#include "telemetry/export.hpp"
#include "telemetry/log.hpp"

namespace iba::telemetry {

namespace {

constexpr int kPollTimeoutMs = 200;  // stop-flag latency bound

std::string http_response(int status, std::string_view reason,
                          std::string_view content_type,
                          std::string_view body) {
  std::ostringstream out;
  out << "HTTP/1.1 " << status << ' ' << reason << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return std::move(out).str();
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return;  // peer went away; nothing to salvage
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

ScrapeServer::ScrapeServer(std::uint16_t port, SharedRegistry& registry,
                           SpanSource spans, TextSource timeseries,
                           TextSource profile)
    : registry_(registry),
      spans_(std::move(spans)),
      timeseries_(std::move(timeseries)),
      profile_(std::move(profile)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  IBA_EXPECT(listen_fd_ >= 0, "ScrapeServer: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 8) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    IBA_EXPECT(false, std::string("ScrapeServer: cannot listen on port ") +
                          std::to_string(port) + ": " + std::strerror(err));
  }

  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  thread_ = std::thread([this] { serve(); });
  log_info("scrape_server_started", {{"port", port_}});
}

ScrapeServer::~ScrapeServer() { stop(); }

std::uint64_t ScrapeServer::requests_served() const noexcept {
  return requests_.load(std::memory_order_relaxed);
}

void ScrapeServer::stop() {
  if (!stop_.exchange(true)) {
    log_info("scrape_server_stopping",
             {{"port", port_}, {"requests", requests_served()}});
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void ScrapeServer::serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollTimeoutMs);
    if (ready <= 0) continue;  // timeout (re-check stop flag) or EINTR

    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;

    // The request line is all we route on; read one chunk (a GET with no
    // body fits comfortably) and cut at the first CRLF.
    char buf[2048];
    const ssize_t n = ::recv(client, buf, sizeof(buf) - 1, 0);
    if (n > 0) {
      buf[n] = '\0';
      std::string request_line(buf);
      if (const auto eol = request_line.find("\r\n");
          eol != std::string::npos) {
        request_line.resize(eol);
      }
      send_all(client, respond(request_line));
      requests_.fetch_add(1, std::memory_order_relaxed);
    }
    ::close(client);
  }
}

std::string ScrapeServer::respond(const std::string& request_line) {
  // "GET /path HTTP/1.1" → method, path.
  const auto first_space = request_line.find(' ');
  const auto second_space = request_line.find(' ', first_space + 1);
  const std::string method = request_line.substr(0, first_space);
  const std::string path =
      first_space == std::string::npos
          ? std::string()
          : request_line.substr(first_space + 1,
                                second_space - first_space - 1);
  if (method != "GET") {
    return http_response(405, "Method Not Allowed", "text/plain",
                         "only GET is supported\n");
  }
  if (path == "/healthz") {
    return http_response(200, "OK", "text/plain", "ok\n");
  }
  if (path == "/metrics") {
    const Registry snapshot = registry_.snapshot();
    std::ostringstream body;
    write_prometheus(snapshot, body);
    return http_response(200, "OK", "text/plain; version=0.0.4",
                         std::move(body).str());
  }
  if (path == "/spans") {
    std::ostringstream body;
    if (spans_) {
      for (const BallSpan& span : spans_()) write_span_json(span, body);
    }
    return http_response(200, "OK", "application/x-ndjson",
                         std::move(body).str());
  }
  if (path == "/timeseries") {
    return http_response(200, "OK", "text/plain",
                         timeseries_ ? timeseries_() : std::string());
  }
  if (path == "/profile") {
    return http_response(200, "OK", "text/plain",
                         profile_ ? profile_() : std::string());
  }
  return http_response(404, "Not Found", "text/plain", "not found\n");
}

}  // namespace iba::telemetry
