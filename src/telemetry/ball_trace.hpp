// Ball-lifecycle span tracing: deterministic sampled per-ball traces.
//
// The paper's central quantity is per-ball — the waiting time of a ball
// from generation to deletion (Theorems 1–2) — but a registry only shows
// aggregates. A BallTracer follows a *sampled subset* of balls through
// their whole lifecycle and emits one BallSpan per serviced ball:
//
//   arrival round, every failed throw (target bin + load at rejection),
//   the accepting bin and queue position, crash-requeues, and the
//   service round — with the waiting time decomposed into pool time
//   (rounds spent re-throwing) and bin-queue time (rounds enqueued).
//
// Sampling is decided by a stable hash of the ball id (its global
// generation sequence number) mixed with the master seed, so identical
// seeds reproduce byte-identical span streams across runs and across
// replicate_parallel thread counts — the same determinism guarantee the
// registry gives.
//
// Shadow tracking. core::Capped stores balls as indistinguishable
// age-bucketed counts, so the tracer reconstructs identity from the event
// stream alone: it observes *every* throw/delete/requeue in simulation
// order and tracks sampled balls by their position within their age
// bucket. The position convention (a valid resolution of the paper's
// "ties arbitrary") is:
//   * arrivals occupy positions 0..count-1 of the new bucket in id order;
//   * throws visit a bucket's balls in position order, and rejected balls
//     re-enter the next round's bucket in throw order;
//   * crash-requeued balls append after that round's rejected survivors
//     of the same label, in (bin, pop) order.
// Every convention is deterministic, so the emitted spans are too.
//
// Memory is bounded: completed spans live in a ring (drop-and-count on
// overflow), active spans are capped (sampled arrivals beyond the cap are
// skipped and counted). With -DIBA_TELEMETRY=OFF the tracer compiles to
// an empty shell and the hooks in core::Capped vanish entirely.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <vector>

#include "telemetry/registry.hpp"
#include "telemetry/round_trace.hpp"
#include "telemetry/telemetry_config.hpp"

namespace iba::telemetry {

/// Failed-throw cap per span: attempts beyond this are counted in
/// failed_throws but not individually recorded, keeping BallSpan a
/// fixed-size trivially copyable record (ring/wire friendly).
inline constexpr std::uint32_t kSpanAttemptCap = 8;

/// One recorded rejection: the round, the sampled bin, and its load at
/// the moment of rejection (== capacity, recorded for self-description).
struct SpanAttempt {
  std::uint64_t round = 0;
  std::uint32_t bin = 0;
  std::uint32_t load = 0;
};

/// A completed ball lifecycle. Invariants (crash-free and crashing runs):
///   pool_rounds + bin_rounds == service_round - arrival_round  (the wait)
///   throws == failed_throws + requeues + 1
struct BallSpan {
  std::uint64_t ball_id = 0;        ///< global generation sequence number
  std::uint64_t arrival_round = 0;  ///< generation round (the pool label)
  std::uint64_t accept_round = 0;   ///< round of the *last* acceptance
  std::uint64_t service_round = 0;  ///< round the ball was deleted
  std::uint64_t pool_rounds = 0;    ///< rounds spent in the pool
  std::uint64_t bin_rounds = 0;     ///< rounds spent queued in bins
  std::uint32_t accept_bin = 0;     ///< bin that (last) accepted the ball
  std::uint32_t queue_depth = 0;    ///< queue position at last acceptance
  std::uint32_t throws = 0;         ///< total bin samples by this ball
  std::uint32_t failed_throws = 0;  ///< rejections (bin full)
  std::uint32_t requeues = 0;       ///< crash-requeues back into the pool
  std::uint32_t recorded_failed = 0;  ///< entries used in failed[]
  SpanAttempt failed[kSpanAttemptCap]{};

  /// Total waiting time, the paper's W.
  [[nodiscard]] std::uint64_t wait() const noexcept {
    return service_round - arrival_round;
  }
};

static_assert(std::is_trivially_copyable_v<BallSpan>,
              "BallSpan rides SpscRing and must be trivially copyable");

using SpanRing = SpscRing<BallSpan>;

/// Writes one span as a single JSON line (the /spans and --trace-spans
/// format documented in docs/TELEMETRY.md).
void write_span_json(const BallSpan& span, std::ostream& out);

struct BallTraceConfig {
  std::uint64_t seed = 0;        ///< master seed; mixes into the sampler
  double sample_rate = 0.01;     ///< fraction of balls traced, [0, 1]
  std::size_t completed_capacity = 4096;  ///< completed-span ring bound
  std::size_t max_active = 1 << 16;       ///< in-flight span bound
};

#if IBA_TELEMETRY_ENABLED

/// Observer attached to core::Capped via set_ball_tracer(). Not
/// thread-safe: one tracer per process instance, driven from the
/// simulation thread; consumers read completed() between steps or tail
/// the live ring.
class BallTracer {
 public:
  explicit BallTracer(const BallTraceConfig& config);

  // ---- hooks, called by core::Capped in simulation order ----

  /// `count` balls generated this round; their ids are
  /// first_ball_id .. first_ball_id + count - 1.
  void on_arrivals(std::uint64_t round, std::uint64_t first_ball_id,
                   std::uint64_t count);
  /// A ball of age bucket `label` sampled `bin`; `load` is the bin's
  /// load before the decision (the queue position when accepted, the
  /// rejection load — i.e. the capacity — when not).
  void on_throw(std::uint64_t label, std::uint32_t bin, std::uint64_t load,
                bool accepted);
  /// The ball at queue `position` of `bin` (label `label`) was serviced.
  void on_delete(std::uint32_t bin, std::uint64_t label,
                 std::uint64_t position);
  /// `bin` crashed and pops its front ball (label `label`) back into the
  /// pool. Called once per requeued ball, bins in index order.
  void on_requeue(std::uint32_t bin, std::uint64_t label);
  /// End of the round's bookkeeping; rolls the pool shadow forward.
  void on_round_end(std::uint64_t round);

  // ---- results ----

  /// Completed spans in completion order, oldest first (bounded by
  /// completed_capacity; see dropped()).
  [[nodiscard]] const std::deque<BallSpan>& completed() const noexcept {
    return completed_;
  }
  /// Completed spans evicted from the buffer to stay within bounds.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  /// Lifetime counts, never reset by clear_completed(): sampled arrivals,
  /// sampled arrivals skipped at the max_active bound, spans completed.
  [[nodiscard]] std::uint64_t sampled_arrivals() const noexcept {
    return sampled_arrivals_;
  }
  [[nodiscard]] std::uint64_t skipped_samples() const noexcept {
    return skipped_samples_;
  }
  [[nodiscard]] std::uint64_t completed_total() const noexcept {
    return completed_total_;
  }
  /// Spans currently in flight (arrived, not yet serviced).
  [[nodiscard]] std::uint64_t active_count() const noexcept {
    return slots_.size() - free_slots_.size();
  }
  /// Wait decomposition over completed spans since the last
  /// clear_completed(): rounds in the pool vs. rounds queued in a bin.
  [[nodiscard]] const DyadicHistogram& pool_wait() const noexcept {
    return pool_wait_;
  }
  [[nodiscard]] const DyadicHistogram& bin_wait() const noexcept {
    return bin_wait_;
  }

  /// Drops buffered spans and measurement histograms (e.g. after
  /// burn-in); in-flight spans and lifetime counters are kept.
  void clear_completed();

  /// Attaches an SPSC ring that every completed span is also pushed to
  /// (live tailing; drops are counted by the ring). nullptr detaches.
  void set_live_ring(SpanRing* ring) noexcept { live_ring_ = ring; }

  /// The sampling decision for a ball id — stable across runs: a ball is
  /// traced iff splitmix64(ball_id ^ mix(seed)) falls under the rate.
  [[nodiscard]] bool is_sampled(std::uint64_t ball_id) const noexcept {
    return sample_all_ ||
           (threshold_ != 0 &&
            rng_hash(ball_id ^ seed_mix_) < threshold_);
  }

  [[nodiscard]] const BallTraceConfig& config() const noexcept {
    return config_;
  }

 private:
  struct PoolEntry {
    std::uint64_t position;  ///< index within the age bucket
    std::uint32_t slot;
  };
  struct BinEntry {
    std::uint64_t depth;  ///< current queue position, 0 = front
    std::uint32_t slot;
  };
  struct ActiveSpan {
    BallSpan span;
    std::uint64_t stint_start = 0;  ///< round the current pool stint began
    std::uint64_t last_accept = 0;  ///< round of the last acceptance
  };

  static std::uint64_t rng_hash(std::uint64_t x) noexcept;

  void switch_label(std::uint64_t label);
  void flush_cursor();
  std::uint32_t alloc_slot();
  void complete_span(std::uint32_t slot, std::uint64_t label);
  std::vector<BinEntry>& bin_entries(std::uint32_t bin);

  BallTraceConfig config_;
  std::uint64_t seed_mix_;
  std::uint64_t threshold_;
  bool sample_all_;
  bool enabled_;  ///< false when the rate traces nothing — hooks no-op

  std::uint64_t round_ = 0;

  // Shadow state: sampled balls by position in their pool bucket / bin
  // queue. Vectors are kept sorted by position/depth.
  std::map<std::uint64_t, std::vector<PoolEntry>> pool_shadow_;
  std::map<std::uint64_t, std::vector<PoolEntry>> next_pool_;
  std::vector<std::vector<BinEntry>> bin_shadow_;
  std::vector<ActiveSpan> slots_;
  std::vector<std::uint32_t> free_slots_;

  // Throw-phase cursor: buckets arrive label by label, so per-ball work
  // is counter increments, not map lookups.
  bool cursor_active_ = false;
  std::uint64_t cur_label_ = 0;
  std::uint64_t cur_thrown_ = 0;
  std::uint64_t cur_rejected_ = 0;
  const std::vector<PoolEntry>* cur_entries_ = nullptr;
  std::size_t cur_entry_idx_ = 0;
  std::map<std::uint64_t, std::uint64_t> rejected_total_;   // per-round
  std::map<std::uint64_t, std::uint64_t> requeued_so_far_;  // per-round

  std::deque<BallSpan> completed_;
  SpanRing* live_ring_ = nullptr;
  std::uint64_t dropped_ = 0;
  std::uint64_t sampled_arrivals_ = 0;
  std::uint64_t skipped_samples_ = 0;
  std::uint64_t completed_total_ = 0;
  DyadicHistogram pool_wait_;
  DyadicHistogram bin_wait_;
};

#else  // IBA_TELEMETRY_ENABLED == 0: an empty shell with the same API.

class BallTracer {
 public:
  explicit BallTracer(const BallTraceConfig& config) : config_(config) {}

  void on_arrivals(std::uint64_t, std::uint64_t, std::uint64_t) noexcept {}
  void on_throw(std::uint64_t, std::uint32_t, std::uint64_t, bool) noexcept {}
  void on_delete(std::uint32_t, std::uint64_t, std::uint64_t) noexcept {}
  void on_requeue(std::uint32_t, std::uint64_t) noexcept {}
  void on_round_end(std::uint64_t) noexcept {}

  [[nodiscard]] const std::deque<BallSpan>& completed() const noexcept {
    return completed_;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t sampled_arrivals() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t skipped_samples() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t completed_total() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t active_count() const noexcept { return 0; }
  [[nodiscard]] const DyadicHistogram& pool_wait() const noexcept {
    return null_hist_;
  }
  [[nodiscard]] const DyadicHistogram& bin_wait() const noexcept {
    return null_hist_;
  }
  void clear_completed() noexcept {}
  void set_live_ring(SpanRing*) noexcept {}
  [[nodiscard]] bool is_sampled(std::uint64_t) const noexcept {
    return false;
  }
  [[nodiscard]] const BallTraceConfig& config() const noexcept {
    return config_;
  }

 private:
  BallTraceConfig config_;
  std::deque<BallSpan> completed_;
  DyadicHistogram null_hist_;
};

#endif

/// Folds a tracer's measurement aggregates into a registry under the
/// span_* metric names (see docs/TELEMETRY.md). Deterministic given the
/// tracer state, so replica merging stays thread-count invariant.
void record_ball_trace(Registry& registry, const BallTracer& tracer);

}  // namespace iba::telemetry
