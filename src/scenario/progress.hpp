// Measured-window accumulators, the `<checkpoint>.progress` sidecar,
// and the artifact-assembly helpers shared by every scenario runner —
// the single-process run_scenario (scenario/runner.cpp) and the
// distributed coordinator loop (dist/runner.cpp).
//
// Sharing is what keeps the two byte-identical: the accumulators, the
// sidecar format, the expectation evaluation and the artifact field
// fill are one implementation, so "same scenario + seed → same artifact
// bytes" holds across process topologies by construction, not by
// parallel maintenance of two copies.
//
// The process checkpoint carries the trajectory; Progress carries the
// runner's own state, so a resumed run finishes with accumulator values
// byte-identical to the uninterrupted run.
#pragma once

#include <cstdint>
#include <string>

#include "artifact/artifact.hpp"
#include "core/capped.hpp"
#include "core/metrics.hpp"
#include "scenario/scenario.hpp"

namespace iba::scenario {

/// Measured-window accumulators + run identity, persisted beside the
/// checkpoint as `<path>.progress`.
struct Progress {
  std::string digest;       ///< Scenario::digest() of the running config
  std::uint64_t seed = 0;   ///< effective seed (identity check on resume)
  std::uint64_t rounds_done = 0;
  std::uint64_t audit_rounds = 0;      ///< completed segments only
  std::uint64_t audit_violations = 0;  ///< completed segments only

  std::uint64_t pool_sum = 0;
  std::uint64_t pool_min = UINT64_MAX;
  std::uint64_t pool_max = 0;
  std::uint64_t pool_last = 0;
  std::uint64_t load_sum = 0;
  std::uint64_t max_load_peak = 0;
  std::uint64_t empty_bins_last = 0;
  std::uint64_t requeued_sum = 0;
  std::uint64_t faulted_bin_rounds = 0;
  std::uint64_t shed_measured = 0;
  std::uint64_t oldest_age_max = 0;
};

/// Atomically writes the CRC-bound sidecar (tmp + fsync + rename).
/// Throws std::runtime_error on IO failure.
void save_progress(const Progress& progress, const std::string& path);

/// Reads and validates a sidecar. Throws std::runtime_error on IO
/// errors, bad header, CRC mismatch, or malformed fields.
[[nodiscard]] Progress load_progress(const std::string& path);

/// Folds one measured-window (post-burn-in) round into the accumulators.
/// Callers update rounds_done themselves — burn-in rounds advance it
/// without contributing here.
void accumulate_progress(Progress& progress, const core::RoundMetrics& m);

/// Atomic text write (tmp + fsync + rename), shared by sidecars and
/// time-series outputs. Throws std::runtime_error prefixed with
/// `context` on failure, leaving any previous file intact.
void write_text_atomic(const std::string& text, const std::string& path,
                       const std::string& context);

/// Lifetime counters + wait state a finished run contributes to the
/// artifact — the process-side complement of Progress.
struct RunTotals {
  std::uint64_t generated_total = 0;
  std::uint64_t deleted_total = 0;
  std::uint64_t shed_total = 0;
  std::uint64_t deferred_end = 0;
  core::CappedWaitState waits;  ///< exact measured-window wait state
  std::uint64_t wait_p50 = 0;   ///< dyadic upper bounds (WaitRecorder)
  std::uint64_t wait_p99 = 0;
};

/// Fills the identity, lifetime, measured-window and wait fields of the
/// artifact from (scenario, seed, progress, totals). Fault, control and
/// audit fields stay with the caller; expectation checks are appended
/// by evaluate_expectations.
void fill_artifact(artifact::ResultArtifact& artifact, const Scenario& scn,
                   const std::string& digest, std::uint64_t seed,
                   const Progress& progress, const RunTotals& totals);

/// Evaluates the scenario's [expect] bounds against the artifact's
/// integer observations and appends the checks — exact-integer
/// comparisons, deterministic doubles (IEEE +−×÷ only).
void evaluate_expectations(const Scenario& scn,
                           artifact::ResultArtifact& artifact);

}  // namespace iba::scenario
