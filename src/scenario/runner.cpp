#include "scenario/runner.hpp"

#include "scenario/progress.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include <optional>

#include "common/assert.hpp"
#include "common/crc32.hpp"
#include "core/capped.hpp"
#include "fault/auditor.hpp"
#include "fault/fault_plan.hpp"
#include "sim/checkpoint.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/timeseries.hpp"

namespace iba::scenario {

namespace {

// ---------------------------------------------------------------------------
// The `<checkpoint>.record` sidecar: the recording state (time-series
// rings + flight-recorder logs/latch) is not part of checkpoint v3, so a
// recording run carries it beside the checkpoint the same way the
// progress sidecar carries the measured-window accumulators. Without it
// a resumed run could not reproduce the uninterrupted run's bundle or
// series bytes.

constexpr std::string_view kRecordMagic = "iba-scenario-record";
constexpr std::uint32_t kRecordVersion = 1;
constexpr std::string_view kRecordSplit = "--recorder--\n";

[[noreturn]] void fail_record(const std::string& message) {
  throw std::runtime_error("scenario record sidecar: " + message);
}

void save_record_sidecar(const telemetry::TimeSeries& series,
                         const telemetry::FlightRecorder& recorder,
                         const std::string& path) {
  const std::string body = series.state_text() +
                           std::string(kRecordSplit) + recorder.state_text();
  std::ostringstream out;
  out << kRecordMagic << ' ' << kRecordVersion << ' ' << common::crc32(body)
      << ' ' << body.size() << '\n'
      << body;
  write_text_atomic(out.str(), path, "scenario record sidecar");
}

void load_record_sidecar(telemetry::TimeSeries& series,
                         telemetry::FlightRecorder& recorder,
                         const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    fail_record("cannot open: " + path +
                " (resuming a recording run requires the .record sidecar "
                "of a recording run)");
  }
  std::string header;
  if (!std::getline(in, header)) fail_record("truncated header");
  std::istringstream head(header);
  std::string magic;
  std::uint32_t version = 0;
  std::uint32_t crc = 0;
  std::size_t bytes = 0;
  if (!(head >> magic >> version >> crc >> bytes) || magic != kRecordMagic) {
    fail_record("bad header '" + header + "'");
  }
  if (version != kRecordVersion) {
    fail_record("unsupported version " + std::to_string(version));
  }
  std::string body(bytes, '\0');
  in.read(body.data(), static_cast<std::streamsize>(bytes));
  if (static_cast<std::size_t>(in.gcount()) != bytes) {
    fail_record("truncated body");
  }
  if (common::crc32(body) != crc) fail_record("CRC mismatch");
  const std::size_t split = body.find(kRecordSplit);
  if (split == std::string::npos) fail_record("missing recorder section");
  series.restore_state(body.substr(0, split));
  recorder.restore_state(body.substr(split + kRecordSplit.size()));
}

/// CRC-32 of `text` as 8 lowercase hex digits (the digest rendering).
std::string crc_hex(const std::string& text) {
  const std::uint32_t crc = common::crc32(text);
  char buf[9];
  static constexpr char kHex[] = "0123456789abcdef";
  for (int i = 0; i < 8; ++i) {
    buf[i] = kHex[(crc >> (28 - 4 * i)) & 0xFu];
  }
  return std::string(buf, 8);
}

}  // namespace

RunOutcome run_scenario(const Scenario& scn, const RunOptions& options) {
  const std::uint32_t n = scn.n;
  const core::RoundKernel kernel = options.kernel.value_or(scn.kernel);
  const std::uint32_t shards =
      options.shards.value_or(kernel == core::RoundKernel::kBinMajor
                                  ? scn.shards
                                  : std::uint32_t{1});
  IBA_EXPECT(kernel == core::RoundKernel::kBinMajor || shards == 1,
             "run_scenario: the scalar kernel cannot shard");
  IBA_EXPECT(options.stop_after == 0 || !options.checkpoint_out.empty(),
             "run_scenario: stop_after requires checkpoint_out");
  const std::uint64_t seed = options.seed.value_or(scn.seed);
  const std::uint64_t total_rounds = scn.burn_in + scn.rounds;
  IBA_EXPECT(options.stop_after == 0 || options.stop_after < total_rounds,
             "run_scenario: stop_after must precede the scenario's end");
  const std::uint64_t checkpoint_every = !options.checkpoint_out.empty()
                                             ? (options.checkpoint_every > 0
                                                    ? options.checkpoint_every
                                                    : scn.checkpoint_every)
                                             : 0;

  const std::string digest = scn.digest();

  // -- recording ---------------------------------------------------------
  // Active when the scenario asks for it or any recording output is
  // requested. Inert (and the flags with it) with -DIBA_TELEMETRY=OFF.
  const bool recording =
      telemetry::TimeSeries::kEnabled &&
      (scn.record.timeseries || !options.timeseries_out.empty() ||
       !options.flight_recorder.empty() || !options.debug_trigger.empty());
  telemetry::TriggerKind debug_kind = telemetry::TriggerKind::kManual;
  IBA_EXPECT(
      options.debug_trigger.empty() ||
          telemetry::trigger_from_name(options.debug_trigger, debug_kind),
      "run_scenario: unknown debug trigger '" + options.debug_trigger + "'");
  std::optional<telemetry::TimeSeries> series;
  std::optional<telemetry::FlightRecorder> recorder;
  if (recording) {
    telemetry::TimeSeriesConfig ts_config;
    ts_config.cadence = scn.record.cadence;
    series.emplace(ts_config);
    telemetry::FlightRecorderConfig fr_config;
    fr_config.window = scn.record.window;
    recorder.emplace(fr_config);
    recorder->attach_time_series(&*series);
    recorder->set_context(scn.name, digest, seed, n);
  }

  std::unique_ptr<core::Capped> process;
  std::unique_ptr<fault::FaultPlan> plan;
  Progress progress;

  const std::uint32_t plan_ceiling =
      scn.control.enabled() ? scn.control.c_max : scn.capacity;

  if (!options.resume.empty()) {
    sim::Checkpoint ckpt = sim::load_checkpoint_full(options.resume);
    progress = load_progress(options.resume + ".progress");
    if (recording && !options.flight_recorder.empty() &&
        (progress.digest != digest || progress.seed != seed ||
         ckpt.snapshot.round != progress.rounds_done)) {
      // A broken resume is exactly what the black box is for: dump the
      // identity mismatch before the contract check aborts the run. This
      // bundle describes the failed stitch, so it is the one deliberate
      // exception to the bytes-identical-across-resume contract.
      recorder->trigger(telemetry::TriggerKind::kResumeMismatch,
                        ckpt.snapshot.round,
                        "expected digest " + digest + " seed " +
                            std::to_string(seed) + ", checkpoint has digest " +
                            progress.digest + " seed " +
                            std::to_string(progress.seed) + " round " +
                            std::to_string(progress.rounds_done));
      recorder->write_bundle(options.flight_recorder);
    }
    IBA_EXPECT(progress.digest == digest,
               "run_scenario: checkpoint belongs to a different scenario "
               "(digest mismatch)");
    IBA_EXPECT(progress.seed == seed,
               "run_scenario: checkpoint belongs to a different seed");
    IBA_EXPECT(ckpt.snapshot.round == progress.rounds_done,
               "run_scenario: checkpoint and progress sidecar disagree");
    IBA_EXPECT(progress.rounds_done < total_rounds,
               "run_scenario: checkpoint is already past the scenario's end");
    // Execution hints are free to change on resume — overwrite them in
    // the restored config before the process spins up its thread pool.
    ckpt.snapshot.config.kernel = kernel;
    ckpt.snapshot.config.shards = shards;
    process = std::make_unique<core::Capped>(ckpt.snapshot);
    if (ckpt.has_fault_state) {
      plan = std::make_unique<fault::FaultPlan>(
          fault::parse_schedule(ckpt.fault_schedule), n, plan_ceiling,
          ckpt.fault_seed);
      plan->restore(ckpt.fault_state);
    }
    if (recording) {
      load_record_sidecar(*series, *recorder, options.resume + ".record");
    }
  } else {
    core::CappedConfig config;
    config.n = n;
    config.capacity = scn.capacity;
    scn.arrival.apply_to(n, config.arrival, config.lambda_n);
    config.kernel = kernel;
    config.shards = shards;
    config.pool_limit = scn.pool_limit;
    config.backpressure = scn.backpressure;
    config.backoff_rounds = scn.backoff;
    config.control = scn.control;
    process = std::make_unique<core::Capped>(config, core::Engine(seed));
    if (!scn.fault_schedule.empty()) {
      plan = std::make_unique<fault::FaultPlan>(
          fault::parse_schedule(scn.fault_schedule), n, plan_ceiling,
          scn.fault_seed);
    }
    progress.digest = digest;
    progress.seed = seed;
  }
  if (plan != nullptr) process->set_fault_plan(plan.get());
  const std::unique_ptr<core::BinChoiceSampler> sampler =
      scn.arrival.make_sampler(n);
  if (sampler != nullptr) process->set_bin_sampler(sampler.get());
  if (recording) process->set_time_series(&*series);

  std::optional<fault::InvariantAuditor> auditor;
  if (scn.expect.audit) auditor.emplace(scn.expect.audit_every);

  // Poll baselines for the flight recorder: decisions and fault counters
  // are cumulative (and survive a resume via the process/plan state), so
  // per-round deltas against these pick up exactly the new activity.
  std::uint64_t seen_changes = 0;
  std::uint64_t seen_crashes = 0;
  std::uint64_t seen_repairs = 0;
  std::uint64_t seen_violations = 0;
  if (recording) {
    if (const control::Controller* ctl = process->controller()) {
      seen_changes = ctl->changes_total();
    }
    if (plan != nullptr) {
      seen_crashes = plan->crashes_total();
      seen_repairs = plan->repairs_total();
    }
  }

  // Fires a trigger; on the latching call stamps the engine fingerprint
  // (CRC of the master engine state — identical across kernels by the
  // decide-before-draw discipline) and writes the bundle.
  const auto fire = [&](telemetry::TriggerKind kind, std::uint64_t round,
                        const std::string& detail) {
    if (!recording) return;
    if (!recorder->triggered()) {
      const core::CappedSnapshot snap = process->snapshot();
      std::ostringstream words;
      for (const std::uint64_t word : snap.engine_state) words << word << ' ';
      recorder->set_engine_fingerprint(crc_hex(words.str()));
    }
    if (recorder->trigger(kind, round, detail) &&
        !options.flight_recorder.empty()) {
      recorder->write_bundle(options.flight_recorder);
    }
  };

  const auto save_state = [&] {
    sim::Checkpoint ckpt;
    ckpt.snapshot = process->snapshot();
    if (plan != nullptr) {
      ckpt.has_fault_state = true;
      ckpt.fault_schedule = fault::to_string(plan->schedule());
      ckpt.fault_seed = plan->seed();
      ckpt.fault_state = plan->state();
    }
    sim::save_checkpoint(ckpt, options.checkpoint_out);
    Progress saved = progress;
    if (auditor.has_value()) {
      saved.audit_rounds += auditor->rounds_audited();
      saved.audit_violations += auditor->violation_count();
    }
    save_progress(saved, options.checkpoint_out + ".progress");
    if (recording) {
      save_record_sidecar(*series, *recorder,
                          options.checkpoint_out + ".record");
    }
  };

  RunOutcome outcome;
  for (std::uint64_t round = progress.rounds_done + 1; round <= total_rounds;
       ++round) {
    if (scn.arrival.time_varying()) {
      process->set_lambda_n(scn.arrival.rate_at(round, n));
    }
    const core::RoundMetrics m = process->step();
    if (auditor.has_value()) auditor->observe(*process, m);
    if (recording) {
      if (const control::Controller* ctl = process->controller();
          ctl != nullptr && ctl->changes_total() > seen_changes) {
        seen_changes = ctl->changes_total();
        if (!ctl->decisions().empty()) {
          const control::DecisionRecord& d = ctl->decisions().back();
          telemetry::RecordedDecision rec;
          rec.round = d.round;
          rec.old_capacity = d.old_capacity;
          rec.new_capacity = d.new_capacity;
          rec.old_pool_limit = d.old_pool_limit;
          rec.new_pool_limit = d.new_pool_limit;
          rec.lambda_hat_micro =
              static_cast<std::uint64_t>(d.lambda_hat * 1e6 + 0.5);
          recorder->note_decision(rec);
        }
      }
      if (plan != nullptr) {
        if (plan->crashes_total() > seen_crashes) {
          recorder->note_event(
              round, "fault",
              "crashes +" +
                  std::to_string(plan->crashes_total() - seen_crashes));
          seen_crashes = plan->crashes_total();
        }
        if (plan->repairs_total() > seen_repairs) {
          recorder->note_event(
              round, "fault",
              "repairs +" +
                  std::to_string(plan->repairs_total() - seen_repairs));
          seen_repairs = plan->repairs_total();
        }
      }
      if (auditor.has_value() &&
          auditor->violation_count() > seen_violations) {
        seen_violations = auditor->violation_count();
        std::string detail = "invariant violation";
        if (!auditor->violations().empty()) {
          const auto& v = auditor->violations().back();
          detail = v.invariant + ": " + v.detail;
        }
        recorder->note_event(round, "audit-violation", detail);
        fire(telemetry::TriggerKind::kAuditorViolation, round, detail);
      }
      if (scn.record.shed_spike > 0 && m.shed > scn.record.shed_spike) {
        fire(telemetry::TriggerKind::kShedSpike, round,
             "shed " + std::to_string(m.shed) + " exceeds bound " +
                 std::to_string(scn.record.shed_spike));
      }
    }
    if (round > scn.burn_in) accumulate_progress(progress, m);
    progress.rounds_done = round;
    // Burn-in boundary: clear the cumulative wait statistics so the
    // measured window starts clean. Ordered before any checkpoint at
    // this round — the snapshot then carries the cleared state and a
    // resume does not double-reset.
    if (round == scn.burn_in) process->reset_wait_stats();
    if (checkpoint_every > 0 && round % checkpoint_every == 0 &&
        round != total_rounds) {
      save_state();
    }
    if (options.stop_after != 0 && round == options.stop_after) {
      save_state();
      outcome.complete = false;
      outcome.rounds_done = round;
      return outcome;
    }
  }
  outcome.rounds_done = total_rounds;

  // -- assemble the artifact -------------------------------------------
  artifact::ResultArtifact& result = outcome.artifact;
  const core::CappedSnapshot snapshot = process->snapshot();
  RunTotals totals;
  totals.generated_total = process->generated_total();
  totals.deleted_total = process->deleted_total();
  totals.shed_total = process->shed_total();
  totals.deferred_end = process->deferred_total();
  totals.waits = snapshot.waits;
  totals.wait_p50 = process->waits().quantile_upper_bound(0.5);
  totals.wait_p99 = process->waits().quantile_upper_bound(0.99);
  fill_artifact(result, scn, digest, seed, progress, totals);

  if (plan != nullptr) {
    result.has_faults = true;
    result.crashes = plan->crashes_total();
    result.repairs = plan->repairs_total();
    result.straggler_skips = plan->straggler_skips_total();
  }

  if (scn.control.enabled()) {
    result.has_control = true;
    result.capacity_final = process->capacity();
    result.control_changes = snapshot.controller.changes;
    result.control_grows = snapshot.controller.grows;
    result.control_shrinks = snapshot.controller.shrinks;
  }

  if (auditor.has_value()) {
    result.audited = true;
    result.audit_rounds = progress.audit_rounds + auditor->rounds_audited();
    result.audit_violations =
        progress.audit_violations + auditor->violation_count();
    outcome.audit_ok = result.audit_violations == 0;
    if (!outcome.audit_ok) {
      for (const auto& violation : auditor->violations()) {
        outcome.failures.push_back(
            "audit: round " + std::to_string(violation.round) + ": " +
            violation.invariant + ": " + violation.detail);
      }
      if (auditor->violations().empty()) {
        outcome.failures.push_back(
            "audit: violations recorded in an earlier (checkpointed) "
            "segment");
      }
    }
  }

  evaluate_expectations(scn, result);
  for (const artifact::ExpectationCheck& check : result.checks) {
    if (!check.pass) {
      outcome.expectations_ok = false;
      outcome.failures.push_back("expect: " + check.name + ": bound " +
                                 check.bound + ", observed " +
                                 check.observed);
    }
  }

  if (recording) {
    if (!outcome.expectations_ok) {
      fire(telemetry::TriggerKind::kExpectationFailure, total_rounds,
           outcome.failures.empty() ? std::string("expectation failed")
                                    : outcome.failures.front());
    }
    if (!options.debug_trigger.empty()) {
      fire(debug_kind, total_rounds,
           "debug trigger '" + options.debug_trigger + "'");
    }
    if (!options.timeseries_out.empty()) {
      write_text_atomic(series->render_text(), options.timeseries_out,
                        "scenario timeseries");
    }
  }

  if (!options.checkpoint_out.empty()) save_state();
  return outcome;
}

}  // namespace iba::scenario
