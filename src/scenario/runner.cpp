#include "scenario/runner.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "common/assert.hpp"
#include "common/crc32.hpp"
#include "core/capped.hpp"
#include "fault/auditor.hpp"
#include "fault/fault_plan.hpp"
#include "sim/checkpoint.hpp"

namespace iba::scenario {

namespace {

// ---------------------------------------------------------------------------
// Measured-window accumulators + the `<checkpoint>.progress` sidecar.
// The process checkpoint carries the trajectory; this carries the
// runner's own state, so a resumed run finishes with accumulator values
// byte-identical to the uninterrupted run.

struct Progress {
  std::string digest;       ///< Scenario::digest() of the running config
  std::uint64_t seed = 0;   ///< effective seed (identity check on resume)
  std::uint64_t rounds_done = 0;
  std::uint64_t audit_rounds = 0;      ///< completed segments only
  std::uint64_t audit_violations = 0;  ///< completed segments only

  std::uint64_t pool_sum = 0;
  std::uint64_t pool_min = UINT64_MAX;
  std::uint64_t pool_max = 0;
  std::uint64_t pool_last = 0;
  std::uint64_t load_sum = 0;
  std::uint64_t max_load_peak = 0;
  std::uint64_t empty_bins_last = 0;
  std::uint64_t requeued_sum = 0;
  std::uint64_t faulted_bin_rounds = 0;
  std::uint64_t shed_measured = 0;
  std::uint64_t oldest_age_max = 0;
};

constexpr std::string_view kProgressMagic = "iba-scenario-progress";
constexpr std::uint32_t kProgressVersion = 1;

[[noreturn]] void fail_progress(const std::string& message) {
  throw std::runtime_error("scenario progress: " + message);
}

std::string render_progress(const Progress& p) {
  std::ostringstream out;
  out << "digest = " << p.digest << '\n';
  out << "seed = " << p.seed << '\n';
  out << "rounds-done = " << p.rounds_done << '\n';
  out << "audit-rounds = " << p.audit_rounds << '\n';
  out << "audit-violations = " << p.audit_violations << '\n';
  out << "pool-sum = " << p.pool_sum << '\n';
  out << "pool-min = " << p.pool_min << '\n';
  out << "pool-max = " << p.pool_max << '\n';
  out << "pool-last = " << p.pool_last << '\n';
  out << "load-sum = " << p.load_sum << '\n';
  out << "max-load-peak = " << p.max_load_peak << '\n';
  out << "empty-bins-last = " << p.empty_bins_last << '\n';
  out << "requeued-sum = " << p.requeued_sum << '\n';
  out << "faulted-bin-rounds = " << p.faulted_bin_rounds << '\n';
  out << "shed-measured = " << p.shed_measured << '\n';
  out << "oldest-age-max = " << p.oldest_age_max << '\n';
  out << "end\n";
  return out.str();
}

void save_progress(const Progress& p, const std::string& path) {
  const std::string body = render_progress(p);
  std::ostringstream header;
  header << kProgressMagic << ' ' << kProgressVersion << ' '
         << common::crc32(body) << ' ' << body.size() << '\n';
  const std::string head = header.str();
  const std::string tmp = path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) fail_progress("cannot open for writing: " + tmp);
  bool ok = std::fwrite(head.data(), 1, head.size(), out) == head.size() &&
            std::fwrite(body.data(), 1, body.size(), out) == body.size() &&
            std::fflush(out) == 0 && ::fsync(::fileno(out)) == 0;
  ok = (std::fclose(out) == 0) && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    fail_progress("write error: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail_progress("cannot rename " + tmp + " -> " + path);
  }
}

Progress load_progress(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail_progress("cannot open: " + path);
  std::string header;
  if (!std::getline(in, header)) fail_progress("truncated header");
  std::istringstream head(header);
  std::string magic;
  std::uint32_t version = 0;
  std::uint32_t crc = 0;
  std::size_t bytes = 0;
  if (!(head >> magic >> version >> crc >> bytes) ||
      magic != kProgressMagic) {
    fail_progress("bad header '" + header + "'");
  }
  if (version != kProgressVersion) {
    fail_progress("unsupported version " + std::to_string(version));
  }
  std::string body(bytes, '\0');
  in.read(body.data(), static_cast<std::streamsize>(bytes));
  if (static_cast<std::size_t>(in.gcount()) != bytes) {
    fail_progress("truncated body");
  }
  if (common::crc32(body) != crc) fail_progress("CRC mismatch");

  Progress p;
  std::istringstream lines(body);
  std::string line;
  bool saw_end = false;
  const auto parse_u64 = [](const std::string& text, const char* what) {
    try {
      return static_cast<std::uint64_t>(std::stoull(text));
    } catch (const std::exception&) {
      fail_progress(std::string("invalid field ") + what + ": '" + text +
                    "'");
    }
  };
  while (std::getline(lines, line)) {
    if (line == "end") {
      saw_end = true;
      break;
    }
    const std::size_t eq = line.find(" = ");
    if (eq == std::string::npos) {
      fail_progress("malformed line '" + line + "'");
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 3);
    if (key == "digest") {
      p.digest = value;
    } else if (key == "seed") {
      p.seed = parse_u64(value, "seed");
    } else if (key == "rounds-done") {
      p.rounds_done = parse_u64(value, "rounds-done");
    } else if (key == "audit-rounds") {
      p.audit_rounds = parse_u64(value, "audit-rounds");
    } else if (key == "audit-violations") {
      p.audit_violations = parse_u64(value, "audit-violations");
    } else if (key == "pool-sum") {
      p.pool_sum = parse_u64(value, "pool-sum");
    } else if (key == "pool-min") {
      p.pool_min = parse_u64(value, "pool-min");
    } else if (key == "pool-max") {
      p.pool_max = parse_u64(value, "pool-max");
    } else if (key == "pool-last") {
      p.pool_last = parse_u64(value, "pool-last");
    } else if (key == "load-sum") {
      p.load_sum = parse_u64(value, "load-sum");
    } else if (key == "max-load-peak") {
      p.max_load_peak = parse_u64(value, "max-load-peak");
    } else if (key == "empty-bins-last") {
      p.empty_bins_last = parse_u64(value, "empty-bins-last");
    } else if (key == "requeued-sum") {
      p.requeued_sum = parse_u64(value, "requeued-sum");
    } else if (key == "faulted-bin-rounds") {
      p.faulted_bin_rounds = parse_u64(value, "faulted-bin-rounds");
    } else if (key == "shed-measured") {
      p.shed_measured = parse_u64(value, "shed-measured");
    } else if (key == "oldest-age-max") {
      p.oldest_age_max = parse_u64(value, "oldest-age-max");
    } else {
      fail_progress("unknown field '" + key + "'");
    }
  }
  if (!saw_end) fail_progress("missing end marker");
  return p;
}

// ---------------------------------------------------------------------------
// Expectation evaluation — exact-integer observations, deterministic
// double comparisons (IEEE +−×÷ only).

void evaluate_expectations(const Scenario& scn,
                           artifact::ResultArtifact& artifact) {
  const Expectations& expect = scn.expect;
  const auto add = [&artifact](std::string name, std::string bound,
                               std::string observed, bool pass) {
    artifact.checks.push_back({std::move(name), std::move(bound),
                               std::move(observed), pass});
  };
  const auto fmt = [](double value) { return detail::format_double(value); };

  if (expect.max_pool_over_n > 0.0) {
    // pool_max/n <= bound  ⇔  pool_max <= bound·n (one rounding, same
    // everywhere).
    const bool pass =
        static_cast<double>(artifact.pool_max) <=
        expect.max_pool_over_n * static_cast<double>(artifact.n);
    add("max-pool-over-n", fmt(expect.max_pool_over_n),
        std::to_string(artifact.pool_max) + "/" + std::to_string(artifact.n),
        pass);
  }
  if (expect.max_wait_mean > 0.0) {
    // wait_sum/wait_count <= bound  ⇔  wait_sum <= bound·count.
    const bool pass =
        static_cast<double>(artifact.wait_sum) <=
        expect.max_wait_mean * static_cast<double>(artifact.wait_count);
    add("max-wait-mean", fmt(expect.max_wait_mean),
        std::to_string(artifact.wait_sum) + "/" +
            std::to_string(artifact.wait_count),
        artifact.wait_count == 0 || pass);
  }
  if (expect.max_wait_p99 > 0) {
    add("max-wait-p99", std::to_string(expect.max_wait_p99),
        std::to_string(artifact.wait_p99),
        artifact.wait_p99 <= expect.max_wait_p99);
  }
  if (expect.max_wait_max > 0) {
    add("max-wait-max", std::to_string(expect.max_wait_max),
        std::to_string(artifact.wait_max),
        artifact.wait_max <= expect.max_wait_max);
  }
  if (expect.max_shed != UINT64_MAX) {
    add("max-shed", std::to_string(expect.max_shed),
        std::to_string(artifact.shed_total),
        artifact.shed_total <= expect.max_shed);
  }
}

}  // namespace

RunOutcome run_scenario(const Scenario& scn, const RunOptions& options) {
  const std::uint32_t n = scn.n;
  const core::RoundKernel kernel = options.kernel.value_or(scn.kernel);
  const std::uint32_t shards =
      options.shards.value_or(kernel == core::RoundKernel::kBinMajor
                                  ? scn.shards
                                  : std::uint32_t{1});
  IBA_EXPECT(kernel == core::RoundKernel::kBinMajor || shards == 1,
             "run_scenario: the scalar kernel cannot shard");
  IBA_EXPECT(options.stop_after == 0 || !options.checkpoint_out.empty(),
             "run_scenario: stop_after requires checkpoint_out");
  const std::uint64_t seed = options.seed.value_or(scn.seed);
  const std::uint64_t total_rounds = scn.burn_in + scn.rounds;
  IBA_EXPECT(options.stop_after == 0 || options.stop_after < total_rounds,
             "run_scenario: stop_after must precede the scenario's end");
  const std::uint64_t checkpoint_every = !options.checkpoint_out.empty()
                                             ? (options.checkpoint_every > 0
                                                    ? options.checkpoint_every
                                                    : scn.checkpoint_every)
                                             : 0;

  const std::string digest = scn.digest();

  std::unique_ptr<core::Capped> process;
  std::unique_ptr<fault::FaultPlan> plan;
  Progress progress;

  const std::uint32_t plan_ceiling =
      scn.control.enabled() ? scn.control.c_max : scn.capacity;

  if (!options.resume.empty()) {
    sim::Checkpoint ckpt = sim::load_checkpoint_full(options.resume);
    progress = load_progress(options.resume + ".progress");
    IBA_EXPECT(progress.digest == digest,
               "run_scenario: checkpoint belongs to a different scenario "
               "(digest mismatch)");
    IBA_EXPECT(progress.seed == seed,
               "run_scenario: checkpoint belongs to a different seed");
    IBA_EXPECT(ckpt.snapshot.round == progress.rounds_done,
               "run_scenario: checkpoint and progress sidecar disagree");
    IBA_EXPECT(progress.rounds_done < total_rounds,
               "run_scenario: checkpoint is already past the scenario's end");
    // Execution hints are free to change on resume — overwrite them in
    // the restored config before the process spins up its thread pool.
    ckpt.snapshot.config.kernel = kernel;
    ckpt.snapshot.config.shards = shards;
    process = std::make_unique<core::Capped>(ckpt.snapshot);
    if (ckpt.has_fault_state) {
      plan = std::make_unique<fault::FaultPlan>(
          fault::parse_schedule(ckpt.fault_schedule), n, plan_ceiling,
          ckpt.fault_seed);
      plan->restore(ckpt.fault_state);
    }
  } else {
    core::CappedConfig config;
    config.n = n;
    config.capacity = scn.capacity;
    scn.arrival.apply_to(n, config.arrival, config.lambda_n);
    config.kernel = kernel;
    config.shards = shards;
    config.pool_limit = scn.pool_limit;
    config.backpressure = scn.backpressure;
    config.backoff_rounds = scn.backoff;
    config.control = scn.control;
    process = std::make_unique<core::Capped>(config, core::Engine(seed));
    if (!scn.fault_schedule.empty()) {
      plan = std::make_unique<fault::FaultPlan>(
          fault::parse_schedule(scn.fault_schedule), n, plan_ceiling,
          scn.fault_seed);
    }
    progress.digest = digest;
    progress.seed = seed;
  }
  if (plan != nullptr) process->set_fault_plan(plan.get());
  const std::unique_ptr<core::BinChoiceSampler> sampler =
      scn.arrival.make_sampler(n);
  if (sampler != nullptr) process->set_bin_sampler(sampler.get());

  std::optional<fault::InvariantAuditor> auditor;
  if (scn.expect.audit) auditor.emplace(scn.expect.audit_every);

  const auto save_state = [&] {
    sim::Checkpoint ckpt;
    ckpt.snapshot = process->snapshot();
    if (plan != nullptr) {
      ckpt.has_fault_state = true;
      ckpt.fault_schedule = fault::to_string(plan->schedule());
      ckpt.fault_seed = plan->seed();
      ckpt.fault_state = plan->state();
    }
    sim::save_checkpoint(ckpt, options.checkpoint_out);
    Progress saved = progress;
    if (auditor.has_value()) {
      saved.audit_rounds += auditor->rounds_audited();
      saved.audit_violations += auditor->violation_count();
    }
    save_progress(saved, options.checkpoint_out + ".progress");
  };

  RunOutcome outcome;
  for (std::uint64_t round = progress.rounds_done + 1; round <= total_rounds;
       ++round) {
    if (scn.arrival.time_varying()) {
      process->set_lambda_n(scn.arrival.rate_at(round, n));
    }
    const core::RoundMetrics m = process->step();
    if (auditor.has_value()) auditor->observe(*process, m);
    if (round > scn.burn_in) {
      progress.pool_sum += m.pool_size;
      if (m.pool_size < progress.pool_min) progress.pool_min = m.pool_size;
      if (m.pool_size > progress.pool_max) progress.pool_max = m.pool_size;
      progress.pool_last = m.pool_size;
      progress.load_sum += m.total_load;
      if (m.max_load > progress.max_load_peak) {
        progress.max_load_peak = m.max_load;
      }
      progress.empty_bins_last = m.empty_bins;
      progress.requeued_sum += m.requeued;
      progress.faulted_bin_rounds += m.faulted_bins;
      progress.shed_measured += m.shed;
      if (m.oldest_pool_age > progress.oldest_age_max) {
        progress.oldest_age_max = m.oldest_pool_age;
      }
    }
    progress.rounds_done = round;
    // Burn-in boundary: clear the cumulative wait statistics so the
    // measured window starts clean. Ordered before any checkpoint at
    // this round — the snapshot then carries the cleared state and a
    // resume does not double-reset.
    if (round == scn.burn_in) process->reset_wait_stats();
    if (checkpoint_every > 0 && round % checkpoint_every == 0 &&
        round != total_rounds) {
      save_state();
    }
    if (options.stop_after != 0 && round == options.stop_after) {
      save_state();
      outcome.complete = false;
      outcome.rounds_done = round;
      return outcome;
    }
  }
  outcome.rounds_done = total_rounds;

  // -- assemble the artifact -------------------------------------------
  artifact::ResultArtifact& result = outcome.artifact;
  const core::CappedSnapshot snapshot = process->snapshot();
  result.scenario_name = scn.name;
  result.scenario_digest = digest;
  result.seed = seed;
  result.n = n;
  result.capacity_initial = scn.capacity;
  result.burn_in = scn.burn_in;
  result.rounds = scn.rounds;

  result.generated_total = process->generated_total();
  result.deleted_total = process->deleted_total();
  result.shed_total = process->shed_total();
  result.deferred_end = process->deferred_total();

  result.pool_sum = progress.pool_sum;
  result.pool_min = progress.pool_min == UINT64_MAX ? 0 : progress.pool_min;
  result.pool_max = progress.pool_max;
  result.pool_last = progress.pool_last;
  result.load_sum = progress.load_sum;
  result.max_load_peak = progress.max_load_peak;
  result.empty_bins_last = progress.empty_bins_last;
  result.requeued_sum = progress.requeued_sum;
  result.faulted_bin_rounds = progress.faulted_bin_rounds;
  result.shed_measured = progress.shed_measured;
  result.oldest_age_max = progress.oldest_age_max;

  result.wait_count = snapshot.waits.count;
  result.wait_sum = snapshot.waits.sum;
  result.wait_sumsq_hi = snapshot.waits.sumsq_hi;
  result.wait_sumsq_lo = snapshot.waits.sumsq_lo;
  result.wait_max = snapshot.waits.max;
  result.wait_p50 = process->waits().quantile_upper_bound(0.5);
  result.wait_p99 = process->waits().quantile_upper_bound(0.99);
  result.wait_histogram = snapshot.waits.histogram;

  if (plan != nullptr) {
    result.has_faults = true;
    result.crashes = plan->crashes_total();
    result.repairs = plan->repairs_total();
    result.straggler_skips = plan->straggler_skips_total();
  }

  if (scn.control.enabled()) {
    result.has_control = true;
    result.capacity_final = process->capacity();
    result.control_changes = snapshot.controller.changes;
    result.control_grows = snapshot.controller.grows;
    result.control_shrinks = snapshot.controller.shrinks;
  }

  if (auditor.has_value()) {
    result.audited = true;
    result.audit_rounds = progress.audit_rounds + auditor->rounds_audited();
    result.audit_violations =
        progress.audit_violations + auditor->violation_count();
    outcome.audit_ok = result.audit_violations == 0;
    if (!outcome.audit_ok) {
      for (const auto& violation : auditor->violations()) {
        outcome.failures.push_back(
            "audit: round " + std::to_string(violation.round) + ": " +
            violation.invariant + ": " + violation.detail);
      }
      if (auditor->violations().empty()) {
        outcome.failures.push_back(
            "audit: violations recorded in an earlier (checkpointed) "
            "segment");
      }
    }
  }

  evaluate_expectations(scn, result);
  for (const artifact::ExpectationCheck& check : result.checks) {
    if (!check.pass) {
      outcome.expectations_ok = false;
      outcome.failures.push_back("expect: " + check.name + ": bound " +
                                 check.bound + ", observed " +
                                 check.observed);
    }
  }

  if (!options.checkpoint_out.empty()) save_state();
  return outcome;
}

}  // namespace iba::scenario
