// scenario::ArrivalModel — the one reusable description of "what traffic
// hits the system" (docs/SCENARIOS.md). It composes three orthogonal
// axes:
//
//  * a rate pattern λ(t): constant, diurnal sinusoid, periodic bursts,
//    regime switches, or replay of a request-log trace;
//  * a per-round count distribution around that rate: the paper's exact
//    λn, Binomial(n, λ) or Poisson(λn) (core::ArrivalModel, footnote 2);
//  * a bin skew: uniform bin choice or Zipf/hot-key skew, realized as a
//    core::BinChoiceSampler so every kernel stays byte-identical.
//
// Determinism: rate_at() is a pure function of the (1-based) round
// number using only IEEE-754 +−×÷ and a fixed rational sine
// approximation — no libm transcendentals — so the same scenario file
// produces the same per-round rates on every platform, which is what
// lets golden artifacts be byte-compared in CI. The only randomness is
// in the distribution / skew draws, which consume the process engine.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/process.hpp"
#include "core/policies.hpp"
#include "rng/alias.hpp"

namespace iba::scenario {

/// The rate pattern λ(t) of an ArrivalModel.
enum class ArrivalPattern : std::uint8_t {
  kConstant,  ///< λ(t) = λ (the paper's model)
  kSinusoid,  ///< diurnal wave: λ(t) = λ + A·sin(2π(t+φ)/P)
  kBursts,    ///< λ(t) = burst rate inside periodic windows, λ outside
  kRegimes,   ///< piecewise-constant switches at scheduled rounds
  kTrace,     ///< replay per-round arrival counts from a trace file
};

[[nodiscard]] std::string_view to_string(ArrivalPattern p) noexcept;

/// How pool balls pick their bin.
enum class BinSkew : std::uint8_t {
  kUniform,  ///< uniform over [0, n) (the paper's model)
  kZipf,     ///< P[bin i] ∝ 1/(i+1)^s — hot-key skew toward low indices
};

[[nodiscard]] std::string_view to_string(BinSkew s) noexcept;

/// One regime of a kRegimes pattern: rate `lambda` from round `from` on
/// (1-based, inclusive) until the next regime takes over.
struct Regime {
  std::uint64_t from = 1;
  double lambda = 0.0;
};

/// Zipf bin-choice sampler over n bins: P[i] ∝ 1/(i+1)^s via a
/// Walker/Vose alias table (two engine draws per ball). Weights for
/// integral s are computed with exact IEEE division/multiplication so
/// the table — and therefore every trajectory — is platform-identical.
class ZipfBinSampler final : public core::BinChoiceSampler {
 public:
  ZipfBinSampler(std::uint32_t n, double s);

  void fill(core::Engine& engine, std::span<std::uint32_t> out) override {
    for (auto& choice : out) choice = table_.sample(engine);
  }

  [[nodiscard]] const rng::AliasTable& table() const noexcept {
    return table_;
  }

 private:
  rng::AliasTable table_;
};

/// Declarative arrival workload. Construct via the factories (benches)
/// or the scenario parser; validate() before use.
struct ArrivalModel {
  ArrivalPattern pattern = ArrivalPattern::kConstant;
  core::ArrivalModel distribution = core::ArrivalModel::kDeterministic;

  double lambda = 0.0;       ///< base rate (constant/sinusoid/bursts)
  double amplitude = 0.0;    ///< sinusoid amplitude (rate units)
  std::uint64_t period = 0;  ///< sinusoid / burst recurrence, rounds
  std::uint64_t phase = 0;   ///< sinusoid phase offset, rounds

  double burst_lambda = 0.0;      ///< rate inside a burst window
  std::uint64_t burst_width = 0;  ///< burst window length, rounds
  std::uint64_t burst_start = 0;  ///< first round of the first burst

  std::vector<Regime> regimes;  ///< ascending `from`; first at round 1

  std::vector<std::uint64_t> trace;  ///< per-round counts (kTrace)
  bool trace_loop = true;  ///< wrap at end of trace (else hold last)

  BinSkew skew = BinSkew::kUniform;
  double zipf_s = 1.0;

  /// The paper's constant-λ workload.
  [[nodiscard]] static ArrivalModel constant(
      double lambda,
      core::ArrivalModel distribution = core::ArrivalModel::kDeterministic);

  /// Throws common::ContractViolation when the model is unusable for n
  /// bins (rates outside [0, 1], empty trace, bad regime order, …).
  void validate(std::uint32_t n) const;

  /// λ·n for the 1-based round `round` — the integral per-round arrival
  /// rate the process should run at. Pure and platform-deterministic.
  [[nodiscard]] std::uint64_t rate_at(std::uint64_t round,
                                      std::uint32_t n) const;

  /// True when rate_at varies with the round (the runner then re-sets
  /// the process rate each round).
  [[nodiscard]] bool time_varying() const noexcept {
    return pattern != ArrivalPattern::kConstant;
  }

  /// Copies the arrival axes a core::CappedConfig understands: the
  /// round-1 rate and the count distribution. (Time variation and skew
  /// are applied by the runner via set_lambda_n / set_bin_sampler.)
  void apply_to(std::uint32_t n, core::ArrivalModel& distribution_out,
                std::uint64_t& lambda_n_out) const {
    distribution_out = distribution;
    lambda_n_out = rate_at(1, n);
  }

  /// The skew sampler for n bins, or nullptr for uniform choice.
  [[nodiscard]] std::unique_ptr<core::BinChoiceSampler> make_sampler(
      std::uint32_t n) const;
};

namespace detail {

/// sin(2πx) for x ∈ [0, 1) via Bhaskara I's rational approximation on
/// each half-wave (max error ~0.0016, plenty for synthetic diurnal
/// load). Uses only +−×÷ so the value is bit-identical on every
/// IEEE-754 platform — unlike libm's sin, whose rounding may differ
/// across libc versions and would silently fork golden artifacts.
[[nodiscard]] double sin_turn(double x) noexcept;

}  // namespace detail

}  // namespace iba::scenario
