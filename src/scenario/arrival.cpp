#include "scenario/arrival.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace iba::scenario {

namespace detail {

double sin_turn(double x) noexcept {
  // Bhaskara I: sin(θ) ≈ 16θ(π−θ) / (5π² − 4θ(π−θ)) on θ ∈ [0, π].
  // Work in turns: θ/π = 2x on the first half-wave. Negate on the
  // second. Inputs outside [0, 1) are reduced by the caller.
  const bool negative = x >= 0.5;
  const double h = negative ? x - 0.5 : x;  // half-wave position in [0, 0.5)
  const double t = 2.0 * h;                 // θ/π ∈ [0, 1)
  const double p = t * (1.0 - t);
  const double value = 16.0 * p / (5.0 - 4.0 * p);
  return negative ? -value : value;
}

namespace {

/// round(λ·n) clamped to [0, n], as a u64 — the one place a real rate
/// becomes an integral per-round count.
std::uint64_t quantize(double lambda, std::uint32_t n) noexcept {
  if (lambda <= 0.0) return 0;
  if (lambda >= 1.0) return n;
  const double exact = lambda * static_cast<double>(n);
  const auto rounded = static_cast<std::uint64_t>(exact + 0.5);
  return rounded > n ? n : rounded;
}

}  // namespace

}  // namespace detail

std::string_view to_string(ArrivalPattern p) noexcept {
  switch (p) {
    case ArrivalPattern::kConstant: return "constant";
    case ArrivalPattern::kSinusoid: return "sinusoid";
    case ArrivalPattern::kBursts: return "bursts";
    case ArrivalPattern::kRegimes: return "regimes";
    case ArrivalPattern::kTrace: return "trace";
  }
  return "?";
}

std::string_view to_string(BinSkew s) noexcept {
  switch (s) {
    case BinSkew::kUniform: return "none";
    case BinSkew::kZipf: return "zipf";
  }
  return "?";
}

ZipfBinSampler::ZipfBinSampler(std::uint32_t n, double s)
    : table_([n, s] {
        IBA_EXPECT(n >= 1, "ZipfBinSampler: n must be positive");
        IBA_EXPECT(s >= 0.0 && s <= 8.0,
                   "ZipfBinSampler: exponent must lie in [0, 8]");
        std::vector<double> weights(n);
        // Integral exponents use exact division/multiplication chains
        // (platform-identical); fractional exponents fall back to pow.
        const auto int_s = static_cast<int>(s);
        const bool integral = s == static_cast<double>(int_s);
        for (std::uint32_t i = 0; i < n; ++i) {
          const double rank = static_cast<double>(i) + 1.0;
          if (integral) {
            double denom = 1.0;
            for (int k = 0; k < int_s; ++k) denom *= rank;
            weights[i] = 1.0 / denom;
          } else {
            weights[i] = std::pow(rank, -s);
          }
        }
        return rng::AliasTable(weights);
      }()) {}

ArrivalModel ArrivalModel::constant(double lambda,
                                    core::ArrivalModel distribution) {
  ArrivalModel model;
  model.pattern = ArrivalPattern::kConstant;
  model.distribution = distribution;
  model.lambda = lambda;
  return model;
}

void ArrivalModel::validate(std::uint32_t n) const {
  IBA_EXPECT(n >= 1, "ArrivalModel: n must be positive");
  const auto check_rate = [](double rate, const char* what) {
    IBA_EXPECT(rate >= 0.0 && rate <= 1.0, what);
  };
  switch (pattern) {
    case ArrivalPattern::kConstant:
      check_rate(lambda, "ArrivalModel: lambda must lie in [0, 1]");
      break;
    case ArrivalPattern::kSinusoid:
      check_rate(lambda, "ArrivalModel: lambda must lie in [0, 1]");
      IBA_EXPECT(period >= 2, "ArrivalModel: sinusoid period must be >= 2");
      IBA_EXPECT(amplitude >= 0.0,
                 "ArrivalModel: amplitude must be non-negative");
      check_rate(lambda + amplitude,
                 "ArrivalModel: lambda + amplitude must not exceed 1");
      check_rate(lambda - amplitude,
                 "ArrivalModel: lambda - amplitude must not drop below 0");
      break;
    case ArrivalPattern::kBursts:
      check_rate(lambda, "ArrivalModel: lambda must lie in [0, 1]");
      check_rate(burst_lambda,
                 "ArrivalModel: burst-lambda must lie in [0, 1]");
      IBA_EXPECT(period >= 1, "ArrivalModel: burst period must be >= 1");
      IBA_EXPECT(burst_width >= 1 && burst_width <= period,
                 "ArrivalModel: burst-width must lie in [1, period]");
      IBA_EXPECT(burst_start >= 1,
                 "ArrivalModel: burst-start must be a round >= 1");
      break;
    case ArrivalPattern::kRegimes: {
      IBA_EXPECT(!regimes.empty(), "ArrivalModel: regimes must be non-empty");
      IBA_EXPECT(regimes.front().from == 1,
                 "ArrivalModel: first regime must start at round 1");
      std::uint64_t last = 0;
      for (const Regime& regime : regimes) {
        IBA_EXPECT(regime.from > last,
                   "ArrivalModel: regime rounds must be strictly ascending");
        check_rate(regime.lambda,
                   "ArrivalModel: regime lambda must lie in [0, 1]");
        last = regime.from;
      }
      break;
    }
    case ArrivalPattern::kTrace:
      IBA_EXPECT(!trace.empty(), "ArrivalModel: trace must be non-empty");
      for (const std::uint64_t count : trace) {
        IBA_EXPECT(count <= n,
                   "ArrivalModel: trace count must not exceed n (lambda <= 1)");
      }
      break;
  }
  if (skew == BinSkew::kZipf) {
    IBA_EXPECT(zipf_s >= 0.0 && zipf_s <= 8.0,
               "ArrivalModel: zipf-s must lie in [0, 8]");
  }
}

std::uint64_t ArrivalModel::rate_at(std::uint64_t round,
                                    std::uint32_t n) const {
  IBA_ASSERT(round >= 1);
  switch (pattern) {
    case ArrivalPattern::kConstant:
      return detail::quantize(lambda, n);
    case ArrivalPattern::kSinusoid: {
      const std::uint64_t pos = (round - 1 + phase) % period;
      const double x = static_cast<double>(pos) / static_cast<double>(period);
      return detail::quantize(lambda + amplitude * detail::sin_turn(x), n);
    }
    case ArrivalPattern::kBursts: {
      if (round < burst_start) return detail::quantize(lambda, n);
      const std::uint64_t pos = (round - burst_start) % period;
      return detail::quantize(pos < burst_width ? burst_lambda : lambda, n);
    }
    case ArrivalPattern::kRegimes: {
      double rate = regimes.front().lambda;
      for (const Regime& regime : regimes) {
        if (regime.from > round) break;
        rate = regime.lambda;
      }
      return detail::quantize(rate, n);
    }
    case ArrivalPattern::kTrace: {
      const std::uint64_t index = round - 1;
      if (index < trace.size()) return trace[index];
      if (trace_loop) return trace[index % trace.size()];
      return trace.back();
    }
  }
  return 0;
}

std::unique_ptr<core::BinChoiceSampler> ArrivalModel::make_sampler(
    std::uint32_t n) const {
  if (skew == BinSkew::kUniform) return nullptr;
  return std::make_unique<ZipfBinSampler>(n, zipf_s);
}

}  // namespace iba::scenario
