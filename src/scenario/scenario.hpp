// The declarative scenario format (docs/SCENARIOS.md) — one versioned
// text file that composes everything a run needs:
//
//   [scenario]      name
//   [system]        n, c, kernel, shards          (kernel/shards are
//                                                  execution hints)
//   [arrival]       rate pattern + distribution + bin skew
//   [faults]        a fault::schedule grammar string + fault seed
//   [backpressure]  pool-limit, mode, backoff
//   [control]       adaptive-control policy + knobs
//   [run]           rounds, burn-in, seed, checkpoint-every
//   [expect]        auditor on/off and pass/fail bounds
//   [record]        time-series / flight-recorder knobs (execution hints)
//
// Sections are `[name]` headers followed by `key = value` lines; `#`
// starts a comment. Unknown sections/keys, duplicates, missing required
// keys and out-of-domain values are rejected with a one-line diagnostic
// naming the file, line, section and key (the named-field style of
// fault::schedule) — CLI front-ends map ScenarioError to exit code 2.
//
// Determinism rule: same scenario + seed → byte-identical result
// artifacts, independent of kernel, shard count, thread count, and
// kill-and-resume. canonical_text()/digest() cover exactly the fields
// that determine the trajectory (kernel, shards and checkpoint cadence
// are excluded), so artifacts from different kernels carry the same
// digest and can be byte-compared against one golden.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "control/policy.hpp"
#include "core/policies.hpp"
#include "scenario/arrival.hpp"

namespace iba::scenario {

/// Parse/validation failure; the message names file:line, section and
/// key. CLI front-ends map this to exit code 2.
class ScenarioError : public std::runtime_error {
 public:
  explicit ScenarioError(const std::string& what)
      : std::runtime_error("scenario: " + what) {}
};

/// Pass/fail bounds evaluated against the finished run ([expect]).
/// Zero disables a bound, except max-shed where 0 is a meaningful
/// strict bound (UINT64_MAX disables it).
struct Expectations {
  bool audit = false;             ///< run the invariant auditor
  std::uint64_t audit_every = 64; ///< deep-scan cadence, rounds
  double max_pool_over_n = 0.0;   ///< bound on max pool/n (0 = off)
  double max_wait_mean = 0.0;     ///< bound on mean wait (0 = off)
  std::uint64_t max_wait_p99 = 0; ///< bound on dyadic p99 bound (0 = off)
  std::uint64_t max_wait_max = 0; ///< bound on max wait (0 = off)
  std::uint64_t max_shed = UINT64_MAX;  ///< bound on shed_total

  [[nodiscard]] bool any_bounds() const noexcept {
    return max_pool_over_n > 0.0 || max_wait_mean > 0.0 ||
           max_wait_p99 > 0 || max_wait_max > 0 || max_shed != UINT64_MAX;
  }
};

/// Recording knobs ([record]). Like kernel and shards these are
/// execution hints: they shape what gets observed, never the trajectory,
/// so they are excluded from canonical_text()/digest() — a scenario
/// records the same run bytes with or without a [record] section.
struct RecordSpec {
  bool timeseries = false;        ///< sample every-`cadence` rounds
  std::uint64_t cadence = 1;      ///< sampling cadence, rounds (>= 1)
  std::uint64_t window = 64;      ///< postmortem bundle window, samples
  std::uint64_t shed_spike = 0;   ///< per-round shed trigger bound (0 = off)
};

/// One parsed scenario. Field defaults are what an omitted optional
/// section leaves behind.
struct Scenario {
  std::string name = "unnamed";

  // [system]
  std::uint32_t n = 0;
  std::uint32_t capacity = 1;
  core::RoundKernel kernel = core::RoundKernel::kBinMajor;  ///< hint
  std::uint32_t shards = 1;                                 ///< hint

  // [arrival]
  ArrivalModel arrival;

  // [faults]
  std::string fault_schedule;  ///< canonical text, "" = no faults
  std::uint64_t fault_seed = 1;

  // [backpressure]
  std::uint64_t pool_limit = 0;
  core::BackpressureMode backpressure = core::BackpressureMode::kNone;
  std::uint32_t backoff = 4;

  // [control]
  control::ControlConfig control;

  // [run]
  std::uint64_t rounds = 0;   ///< measured rounds (required, >= 1)
  std::uint64_t burn_in = 0;  ///< fixed burn-in rounds before measuring
  std::uint64_t seed = 1;
  std::uint64_t checkpoint_every = 0;  ///< hint; 0 = off

  // [expect]
  Expectations expect;

  // [record] — execution hints, excluded from canonical_text()/digest()
  RecordSpec record;

  /// Canonical rendering of the semantic fields, in fixed order with
  /// normalized values. Execution hints (kernel, shards,
  /// checkpoint-every) are excluded; a trace replay contributes its
  /// counts, not its file path. Re-parsing the canonical text yields an
  /// equal scenario.
  [[nodiscard]] std::string canonical_text() const;

  /// CRC-32 of canonical_text(), rendered as 8 lowercase hex digits —
  /// the config digest stamped into result artifacts.
  [[nodiscard]] std::string digest() const;
};

/// Parses scenario text. `origin` names the source in diagnostics
/// (file path or "<string>"); `base_dir` resolves relative trace paths
/// ("" = current directory). Throws ScenarioError on any malformed or
/// out-of-domain input.
[[nodiscard]] Scenario parse_scenario(std::string_view text,
                                      const std::string& origin,
                                      const std::string& base_dir = "");

/// Reads and parses a scenario file. Throws ScenarioError when the file
/// cannot be read.
[[nodiscard]] Scenario load_scenario_file(const std::string& path);

namespace detail {

/// Shortest round-trip decimal rendering (std::to_chars) — canonical
/// and platform-deterministic, unlike printf %g. Used for every double
/// that lands in canonical scenario text or artifact bounds.
[[nodiscard]] std::string format_double(double value);

}  // namespace detail

}  // namespace iba::scenario
